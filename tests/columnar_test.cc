// Tests for the paper-scale columnar hot path: RecordColumns (SoA batches),
// the binary columnar extent codec, the decode_extent dispatch, and the
// worker-count byte-identity contract with columnar extents enabled.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agent/record.h"
#include "agent/record_columns.h"
#include "common/csv.h"
#include "core/simulation.h"
#include "dsa/cosmos.h"
#include "dsa/extent_codec.h"

namespace pingmesh {
namespace {

using agent::DecodeStats;
using agent::LatencyRecord;
using agent::RecordColumns;

LatencyRecord rec(SimTime ts, std::uint32_t src, std::uint32_t dst,
                  SimTime rtt = micros(250), bool success = true) {
  LatencyRecord r;
  r.timestamp = ts;
  r.src_ip = IpAddr(src);
  r.dst_ip = IpAddr(dst);
  r.src_port = static_cast<std::uint16_t>(40000 + ts % 1000);
  r.dst_port = 33100;
  r.success = success;
  r.rtt = rtt;
  return r;
}

/// A golden batch covering every field: plain connects, failures, payload
/// probes, both QoS classes, repeated and unique IPs, out-of-order and
/// duplicate timestamps.
std::vector<LatencyRecord> golden_batch() {
  std::vector<LatencyRecord> v;
  v.push_back(rec(seconds(10), 0x0A000001, 0x0A000102));
  v.push_back(rec(seconds(10), 0x0A000001, 0x0A000103, micros(310)));
  v.push_back(rec(seconds(12), 0x0A000002, 0x0A000102, millis(3), false));
  LatencyRecord payload = rec(seconds(9), 0x0A000003, 0x0A000001, micros(190));
  payload.kind = controller::ProbeKind::kTcpPayload;
  payload.qos = controller::QosClass::kLow;
  payload.payload_success = true;
  payload.payload_rtt = micros(420);
  payload.payload_bytes = 64 * 1024;
  v.push_back(payload);
  LatencyRecord http = rec(seconds(15), 0x0A000001, 0x0A000102, micros(500));
  http.kind = controller::ProbeKind::kHttpGet;
  http.payload_bytes = 800;
  v.push_back(http);
  return v;
}

// ---------------------------------------------------------------------------
// RecordColumns
// ---------------------------------------------------------------------------

TEST(RecordColumns, BytesPerRecordTracksRepresentation) {
  // The admission budget scales the whole fleet's buffer cap; pin the
  // computed value so a field added to LatencyRecord forces a conscious
  // update here and in record_columns.h.
  EXPECT_EQ(LatencyRecord::kApproxBytes, 44u);
  EXPECT_EQ(RecordColumns::kBytesPerRecord, LatencyRecord::kApproxBytes);
}

TEST(RecordColumns, RowRoundTripPreservesEveryField) {
  std::vector<LatencyRecord> batch = golden_batch();
  RecordColumns cols = agent::to_columns(batch);
  ASSERT_EQ(cols.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(csv::encode_row(cols.row(i).to_csv_row()),
              csv::encode_row(batch[i].to_csv_row()))
        << "row " << i;
  }
}

TEST(RecordColumns, EncodeCsvMatchesAosEncoder) {
  std::vector<LatencyRecord> batch = golden_batch();
  RecordColumns cols = agent::to_columns(batch);
  EXPECT_EQ(cols.encode_csv(), agent::encode_batch(batch));
  // Suffix encoding matches a suffix AoS batch.
  std::vector<LatencyRecord> tail(batch.begin() + 2, batch.end());
  EXPECT_EQ(cols.encode_csv(2), agent::encode_batch(tail));
}

TEST(RecordColumns, DropFrontIsStableAcrossCompaction) {
  RecordColumns cols;
  for (int i = 0; i < 100; ++i) {
    cols.push_back(rec(seconds(i), 0x0A000001, 0x0A000002, micros(100 + i)));
  }
  cols.drop_front(30);  // head offset only
  ASSERT_EQ(cols.size(), 70u);
  EXPECT_EQ(cols.row(0).timestamp, seconds(30));
  EXPECT_EQ(cols.timestamps()[0], seconds(30));
  cols.drop_front(40);  // forces compaction (head > live)
  ASSERT_EQ(cols.size(), 30u);
  EXPECT_EQ(cols.row(0).timestamp, seconds(70));
  EXPECT_EQ(cols.row(29).timestamp, seconds(99));
  cols.drop_front(1000);  // over-drop clears
  EXPECT_TRUE(cols.empty());
}

TEST(RecordColumns, ClearKeepsCapacityForArenaReuse) {
  RecordColumns cols;
  cols.reserve(64);
  for (int i = 0; i < 50; ++i) cols.push_back(rec(seconds(i), 1, 2));
  std::size_t cap = cols.capacity();
  EXPECT_GE(cap, 64u);
  cols.clear();
  EXPECT_TRUE(cols.empty());
  EXPECT_EQ(cols.capacity(), cap);
}

TEST(RecordColumns, AppendConcatenates) {
  RecordColumns a = agent::to_columns(golden_batch());
  RecordColumns b;
  b.push_back(rec(seconds(99), 7, 8));
  a.append(b);
  ASSERT_EQ(a.size(), golden_batch().size() + 1);
  EXPECT_EQ(a.row(a.size() - 1).timestamp, seconds(99));
}

// ---------------------------------------------------------------------------
// Columnar codec
// ---------------------------------------------------------------------------

TEST(ExtentCodec, RoundTripsGoldenBatch) {
  RecordColumns cols = agent::to_columns(golden_batch());
  std::string blob = dsa::encode_columnar(cols);
  DecodeStats stats;
  RecordColumns back = dsa::decode_columnar(blob, &stats);
  EXPECT_EQ(stats.rows_dropped, 0u);
  EXPECT_EQ(stats.rows_decoded, cols.size());
  // Field-exact equality via the canonical CSV rendering.
  EXPECT_EQ(back.encode_csv(), cols.encode_csv());
}

TEST(ExtentCodec, BinaryIsSmallerThanCsv) {
  // The headline claim: dictionary + delta + varint beats text. Use a
  // realistic batch (one src, few dsts, clustered timestamps).
  RecordColumns cols;
  for (int i = 0; i < 1000; ++i) {
    cols.push_back(rec(seconds(10) + millis(i), 0x0A000001,
                       0x0A000100 + static_cast<std::uint32_t>(i % 50),
                       micros(200 + i % 97)));
  }
  std::string binary = dsa::encode_columnar(cols);
  std::string csv = cols.encode_csv();
  EXPECT_LT(binary.size() * 3, csv.size())
      << "binary " << binary.size() << " vs csv " << csv.size();
}

TEST(ExtentCodec, ConcatenatedBlocksDecodeAsOneExtent) {
  RecordColumns a = agent::to_columns(golden_batch());
  RecordColumns b;
  b.push_back(rec(seconds(50), 0x0A000009, 0x0A00000A));
  std::string blob = dsa::encode_columnar(a) + dsa::encode_columnar(b);
  RecordColumns all = dsa::decode_columnar(blob);
  ASSERT_EQ(all.size(), a.size() + b.size());
  a.append(b);
  EXPECT_EQ(all.encode_csv(), a.encode_csv());
}

TEST(ExtentCodec, EmptyBatchRoundTrips) {
  RecordColumns empty;
  std::string blob = dsa::encode_columnar(empty);
  EXPECT_TRUE(dsa::decode_columnar(blob).empty());
}

TEST(ExtentCodec, TruncationAtEveryByteNeverCrashesAndCountsDrops) {
  RecordColumns cols = agent::to_columns(golden_batch());
  std::string blob = dsa::encode_columnar(cols);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    DecodeStats stats;
    RecordColumns out = dsa::decode_columnar(blob.substr(0, cut), &stats);
    // A truncated block never yields rows silently: whatever failed to
    // decode is accounted as dropped.
    if (cut > 0) EXPECT_GT(stats.rows_dropped, 0u) << "cut=" << cut;
    EXPECT_EQ(out.size(), stats.rows_decoded) << "cut=" << cut;
  }
}

TEST(ExtentCodec, BitFlipsNeverCrash) {
  RecordColumns cols = agent::to_columns(golden_batch());
  std::string blob = dsa::encode_columnar(cols);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = blob;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      DecodeStats stats;
      RecordColumns out = dsa::decode_columnar(mutated, &stats);
      EXPECT_EQ(out.size(), stats.rows_decoded);
    }
  }
}

TEST(ExtentCodec, AdversarialRowCountIsBounded) {
  // A block claiming 2^40 rows in 4 bytes must be rejected before any
  // allocation, not after.
  std::string evil;
  evil.push_back(static_cast<char>(0xC1));
  for (int i = 0; i < 5; ++i) evil.push_back(static_cast<char>(0xFF));
  evil.push_back(0x01);
  DecodeStats stats;
  RecordColumns out = dsa::decode_columnar(evil, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(stats.rows_dropped, 0u);
}

// ---------------------------------------------------------------------------
// decode_extent dispatch + Cosmos encoding metadata
// ---------------------------------------------------------------------------

TEST(ExtentCodec, DecodeExtentHandlesBothEncodings) {
  std::vector<LatencyRecord> batch = golden_batch();
  RecordColumns cols = agent::to_columns(batch);

  dsa::Extent csv_extent;
  csv_extent.data = agent::encode_batch(batch);
  csv_extent.encoding = dsa::ExtentEncoding::kCsv;

  dsa::Extent col_extent;
  col_extent.data = dsa::encode_columnar(cols);
  col_extent.encoding = dsa::ExtentEncoding::kColumnar;

  EXPECT_EQ(dsa::decode_extent(csv_extent).encode_csv(),
            dsa::decode_extent(col_extent).encode_csv());
}

TEST(Cosmos, AppendRollsOverOnEncodingChange) {
  dsa::CosmosStore store(/*extent_size_limit=*/1 << 20);
  dsa::CosmosStream& s = store.stream("t");
  s.append("a,b\n", 1, seconds(1), seconds(1), seconds(1),
           dsa::ExtentEncoding::kCsv);
  s.append("c,d\n", 1, seconds(2), seconds(2), seconds(2),
           dsa::ExtentEncoding::kCsv);
  ASSERT_EQ(s.extents().size(), 1u);  // same encoding: grows the open extent
  s.append("\xC1\x00", 1, seconds(3), seconds(3), seconds(3),
           dsa::ExtentEncoding::kColumnar);
  ASSERT_EQ(s.extents().size(), 2u);  // encoding change: new extent
  EXPECT_EQ(s.extents()[0].encoding, dsa::ExtentEncoding::kCsv);
  EXPECT_EQ(s.extents()[1].encoding, dsa::ExtentEncoding::kColumnar);
}

// ---------------------------------------------------------------------------
// Worker-count byte-identity with columnar extents
// ---------------------------------------------------------------------------

core::SimulationConfig fleet_config(int workers) {
  core::SimulationConfig cfg;
  topo::DcSpec spec;
  spec.name = "DC1";
  spec.region = "US West";
  spec.podsets = 2;
  spec.pods_per_podset = 3;
  spec.servers_per_pod = 4;
  cfg.dcs = {spec};
  cfg.seed = 20260807;
  cfg.worker_threads = workers;
  cfg.columnar_extents = true;
  cfg.agent.upload_batch_records = 20;
  return cfg;
}

TEST(ColumnarParallel, WorkerCountDoesNotChangeTheRecordStream) {
  std::string baseline;
  std::uint64_t baseline_probes = 0;
  for (int workers : {1, 4}) {
    core::PingmeshSimulation sim(fleet_config(workers));
    sim.run_for(minutes(10));
    std::string bytes = agent::encode_batch(sim.records_between(0, sim.now() + 1));
    EXPECT_EQ(sim.decode_rows_dropped(), 0u);
    if (workers == 1) {
      baseline = bytes;
      baseline_probes = sim.total_probes();
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(bytes, baseline) << "worker count changed the record stream";
      EXPECT_EQ(sim.total_probes(), baseline_probes);
    }
  }
}

TEST(ColumnarParallel, CsvAndColumnarExtentsDecodeIdentically) {
  // Same seed, both encodings: the scan path must hand SCOPE the exact
  // same records either way.
  std::string streams[2];
  for (int i = 0; i < 2; ++i) {
    core::SimulationConfig cfg = fleet_config(1);
    cfg.columnar_extents = (i == 1);
    core::PingmeshSimulation sim(cfg);
    sim.run_for(minutes(10));
    streams[i] = agent::encode_batch(sim.records_between(0, sim.now() + 1));
    EXPECT_EQ(sim.decode_rows_dropped(), 0u);
  }
  EXPECT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
}

}  // namespace
}  // namespace pingmesh

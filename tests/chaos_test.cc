// Chaos schedule engine tests: plan parsing, the determinism contract,
// property-based invariants under scripted fault schedules, and the
// random-plan hunt/shrink loop that must catch a deliberately planted
// defect (DESIGN.md §11).
#include <gtest/gtest.h>

#include <string>

#include "chaos/engine.h"
#include "chaos/injector.h"
#include "chaos/invariants.h"
#include "chaos/plan.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "topology/topology.h"

namespace pingmesh::chaos {
namespace {

// ---------------------------------------------------------------------------
// Plan text format
// ---------------------------------------------------------------------------

TEST(ChaosPlan, FullTaxonomyRoundTrips) {
  const std::string text =
      "# pingmesh chaos plan v1\n"
      "seed 99\n"
      "duration 30m\n"
      "settle 10m\n"
      "event link-loss switch=12 prob=0.01 start=5m end=15m\n"
      "event partition switch=3 start=6m end=9m\n"
      "event server-crash server=17 start=2m end=20m\n"
      "event controller-outage replica=all start=4m end=16m\n"
      "event slb-flap replica=1 period=90s start=3m end=12m\n"
      "event upload-fail prob=0.5 start=10m end=14m\n"
      "event upload-delay delay=45s start=8m end=11m\n"
      "event corrupt-extent start=13m\n"
      "event clock-skew server=9 skew=-2s start=7m end=18m\n"
      "event serve-restart replica=0 start=9m end=17m\n";
  auto plan = parse_plan(text);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 99u);
  EXPECT_EQ(plan->duration, minutes(30));
  EXPECT_EQ(plan->settle, minutes(10));
  ASSERT_EQ(plan->events.size(), 10u);
  EXPECT_EQ(plan->events[0].kind, ChaosEventKind::kLinkLoss);
  EXPECT_DOUBLE_EQ(plan->events[0].magnitude, 0.01);
  EXPECT_EQ(plan->events[1].magnitude, 1.0);  // partition forces 100%
  EXPECT_EQ(plan->events[3].entity, kEntityAll);
  EXPECT_EQ(plan->events[4].param, seconds(90));
  EXPECT_EQ(plan->events[8].param, -seconds(2));
  EXPECT_EQ(plan->events[9].kind, ChaosEventKind::kServeRestart);

  // Canonical serialization is lossless.
  auto replayed = parse_plan(to_text(*plan));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, *plan);
}

TEST(ChaosPlan, OmittedEndRunsToPlanDuration) {
  auto plan = parse_plan(
      "# pingmesh chaos plan v1\n"
      "duration 20m\n"
      "event controller-outage replica=0 start=5m\n");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->events.at(0).end, minutes(20));
}

TEST(ChaosPlan, MalformedInputsAreRejectedWithDiagnostics) {
  const char* bad[] = {
      "",                                                      // no header
      "seed 42\n",                                             // no header
      "# pingmesh chaos plan v2\nseed 1\n",                    // wrong header
      "# pingmesh chaos plan v1\nseed banana\n",               // bad number
      "# pingmesh chaos plan v1\nduration 5parsecs\n",         // bad unit
      "# pingmesh chaos plan v1\nevent warp-core-breach\n",    // unknown kind
      "# pingmesh chaos plan v1\nevent link-loss prob=2 start=0s end=1m\n",
      "# pingmesh chaos plan v1\nevent link-loss delay=3s\n",  // wrong field
      "# pingmesh chaos plan v1\nevent slb-flap replica=0 period=1ms start=0s end=1m\n",
      "# pingmesh chaos plan v1\nevent clock-skew server=0 skew=2h start=0s end=1m\n",
      "# pingmesh chaos plan v1\nevent link-loss prob=0.1 start=5m end=2m\n",
      // serve-restart names one replica; killing "all" at once is the
      // all-dead 503 path, exercised directly in serve_test instead.
      "# pingmesh chaos plan v1\nevent serve-restart replica=all start=0s end=1m\n",
      "# pingmesh chaos plan v1\nfrobnicate 12\n",             // unknown directive
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(parse_plan(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ChaosPlan, RandomPlansAreValidDeterministicAndRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosPlan plan = generate_random_plan(seed);
    EXPECT_EQ(validate_plan(plan), std::nullopt) << "seed " << seed;
    EXPECT_GE(plan.events.size(), 1u);
    EXPECT_LE(plan.events.size(), 5u);
    EXPECT_EQ(plan, generate_random_plan(seed)) << "generator not deterministic";
    auto replayed = parse_plan(to_text(plan));
    ASSERT_TRUE(replayed.has_value()) << to_text(plan);
    EXPECT_EQ(*replayed, plan);
  }
}

// ---------------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------------

// A ToR switch index in the canonical chaos topology (one small DC).
std::uint32_t chaos_config_tor(std::size_t which) {
  topo::Topology topo =
      topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  return topo.switches_in_dc(DcId{0}, topo::SwitchKind::kTor).at(which).value;
}

TEST(ChaosEngine, SamePlanIsBitIdenticalAtOneAndFourWorkers) {
  ChaosPlan plan;
  plan.seed = 2024;
  plan.duration = minutes(12);
  plan.settle = minutes(4);
  // Mixed schedule that exercises every order-sensitive path: a partial
  // controller outage (SLB rotation), upload chaos (CounterRng draws),
  // network loss, and skewed record timestamps.
  plan.events.push_back({ChaosEventKind::kControllerOutage, minutes(2), minutes(8), 0});
  plan.events.push_back(
      {ChaosEventKind::kLinkLoss, minutes(1), minutes(9), chaos_config_tor(1), 0.02});
  plan.events.push_back(
      {ChaosEventKind::kUploadFailure, minutes(3), minutes(7), 0, 0.4});
  plan.events.push_back(
      {ChaosEventKind::kClockSkew, minutes(2), minutes(10), 5, 0.0, seconds(3)});
  ASSERT_EQ(validate_plan(plan), std::nullopt);

  ChaosRunOptions serial;
  serial.worker_threads = 1;
  ChaosRunOptions parallel;
  parallel.worker_threads = 4;
  ChaosRunResult a = run_plan(plan, serial);
  ChaosRunResult b = run_plan(plan, parallel);

  EXPECT_EQ(a.total_probes, b.total_probes);
  EXPECT_EQ(a.records, b.records) << "uploaded record streams diverged";
  EXPECT_EQ(a.report.to_text(), b.report.to_text());
  EXPECT_TRUE(a.ok()) << a.report.to_text();
}

// ---------------------------------------------------------------------------
// Invariants under scripted schedules
// ---------------------------------------------------------------------------

TEST(ChaosEngine, RecordConservationHoldsUnderUploadChaos) {
  ChaosPlan plan;
  plan.seed = 7;
  plan.duration = minutes(14);
  plan.settle = minutes(5);
  plan.events.push_back(
      {ChaosEventKind::kUploadFailure, minutes(2), minutes(10), 0, 0.7});
  ChaosRunResult r = run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  // The chaos window actually bit: uploads failed and retry exhaustion
  // discarded data — yet every record stays accounted.
  EXPECT_GT(r.totals.uploads_failed, 0u);
  EXPECT_GT(r.totals.records_discarded, 0u);
  EXPECT_EQ(r.totals.probes_launched, r.totals.records_uploaded +
                                          r.totals.records_discarded +
                                          r.totals.records_buffered);
}

TEST(ChaosEngine, UploadRetryHighWaterMarkUnderChaos) {
  // PR-4 regression, now under chaos: records that ride a retried upload
  // must hit the local log exactly once (the high-water mark), however many
  // chaos-injected failures the batch survives.
  core::SimulationConfig base = core::chaos_test_config(11);
  base.agent.local_log_path = testing::TempDir() + "chaos_retry_log.bin";
  ChaosRunOptions opts;
  opts.base_config = &base;

  ChaosPlan plan;
  plan.seed = 11;
  plan.duration = minutes(12);
  plan.settle = minutes(4);
  plan.events.push_back(
      {ChaosEventKind::kUploadFailure, minutes(2), minutes(9), 0, 0.8});
  ChaosRunResult r = run_plan(plan, opts);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  EXPECT_GT(r.totals.log_dup_avoided, 0u)
      << "no retried batch exercised the local-log high-water mark";
  // Exactly-once: the log holds at most one entry per buffered record.
  EXPECT_LE(r.totals.records_logged,
            r.totals.records_uploaded + r.totals.records_discarded +
                r.totals.records_buffered);
}

TEST(ChaosEngine, SlbHalfOpenRecoveryUnderScheduledFlaps) {
  // PR-4 regression under chaos: a replica flapping through the SLB must be
  // removed from rotation while down and re-admitted half-open when it
  // recovers — permanently losing a controller replica is the bug class the
  // recovery_after fix addressed.
  ChaosPlan plan;
  plan.seed = 13;
  plan.duration = minutes(24);
  plan.settle = minutes(10);
  ChaosEvent flap;
  flap.kind = ChaosEventKind::kSlbFlap;
  flap.entity = 0;
  flap.param = minutes(2);
  flap.start = minutes(3);
  flap.end = minutes(20);
  plan.events.push_back(flap);
  ChaosRunResult r = run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  EXPECT_GT(r.totals.slb_half_open_trials, 0u)
      << "flap never drove the VIP through its half-open path";
  EXPECT_EQ(r.totals.slb_healthy, r.totals.slb_backends)
      << "replica not re-admitted after the flap window closed";
}

TEST(ChaosEngine, ServerCrashAndRestartKeepsLedger) {
  ChaosPlan plan;
  plan.seed = 17;
  plan.duration = minutes(16);
  plan.settle = minutes(6);
  plan.events.push_back({ChaosEventKind::kServerCrash, minutes(3), minutes(10), 5});
  plan.events.push_back({ChaosEventKind::kServerCrash, minutes(4), minutes(12), 40});
  ChaosRunResult r = run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  EXPECT_GT(r.total_probes, 0u);
}

TEST(ChaosEngine, ServeRestartRecoversReplicasDigestIdentical) {
  // The tentpole invariant: chaos-kill each query replica in turn; every
  // restart must rebuild its rollup from the persisted checkpoint + WAL
  // byte-identical to the durable writer, the front door must keep
  // answering while any replica lives, and the conservation ledger must
  // survive the whole schedule.
  ChaosPlan plan;
  plan.seed = 29;
  plan.duration = minutes(30);
  plan.settle = minutes(10);
  plan.events.push_back({ChaosEventKind::kServeRestart, minutes(5), minutes(12), 0});
  plan.events.push_back({ChaosEventKind::kServeRestart, minutes(14), minutes(21), 1});
  ChaosRunResult r = run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  ASSERT_TRUE(r.serve.ran);
  EXPECT_EQ(r.serve.restarts, 2u);
  EXPECT_EQ(r.serve.digest_matches, 2u);
  EXPECT_EQ(r.serve.digest_mismatches, 0u);
  EXPECT_TRUE(r.serve.final_digests_equal);
  EXPECT_TRUE(r.serve.conservation_ok);
  EXPECT_GT(r.serve.queries, 0u);
  EXPECT_EQ(r.serve.failed_with_replicas, 0u);
  const InvariantFinding* f = r.report.find("rollup-recovery");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->applicable);
  EXPECT_TRUE(f->ok) << f->detail;
}

TEST(ChaosEngine, PlansWithoutServeEventsReportRecoveryNotApplicable) {
  ChaosPlan plan;
  plan.seed = 31;
  plan.duration = minutes(12);
  plan.settle = minutes(4);
  plan.events.push_back({ChaosEventKind::kServerCrash, minutes(2), minutes(6), 3});
  ChaosRunResult r = run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  EXPECT_FALSE(r.serve.ran);
  const InvariantFinding* f = r.report.find("rollup-recovery");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->applicable);
}

TEST(ChaosEngine, ClockSkewKeepsStreamingAndBatchConsistent) {
  ChaosPlan plan;
  plan.seed = 19;
  plan.duration = minutes(14);
  plan.settle = minutes(5);
  // One agent far in the past (beyond the streaming horizon: late-dropped),
  // one slightly ahead — the ingest partition must still account for every
  // uploaded record.
  plan.events.push_back(
      {ChaosEventKind::kClockSkew, minutes(2), minutes(11), 3, 0.0, -minutes(2)});
  plan.events.push_back(
      {ChaosEventKind::kClockSkew, minutes(2), minutes(11), 9, 0.0, seconds(5)});
  ChaosRunResult r = run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  const InvariantFinding* f = r.report.find("streaming-batch");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->applicable);
}

TEST(ChaosEngine, CosmosLedgerSurvivesCorruptionAndExpiry) {
  core::SimulationConfig base = core::chaos_test_config(23);
  base.cosmos_retention = minutes(10);
  // Expiry works at extent granularity: shrink extents so the 20-minute run
  // rolls over several and the retention sweep has sealed extents to drop.
  base.cosmos_extent_limit = 64 * 1024;
  ChaosRunOptions opts;
  opts.base_config = &base;

  ChaosPlan plan;
  plan.seed = 23;
  plan.duration = minutes(20);
  plan.settle = minutes(10);
  ChaosEvent corrupt;
  corrupt.kind = ChaosEventKind::kExtentCorruption;
  corrupt.start = minutes(12);
  corrupt.end = minutes(12);
  plan.events.push_back(corrupt);
  plan.events.push_back(
      {ChaosEventKind::kUploadDelay, minutes(5), minutes(9), 0, 0.0, seconds(40)});
  ChaosRunResult r = run_plan(plan, opts);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  EXPECT_GT(r.totals.cosmos_expired, 0u) << "retention never expired an extent";
  EXPECT_EQ(r.totals.cosmos_appended, r.totals.cosmos_live + r.totals.cosmos_expired);
}

TEST(ChaosEngine, LoneTorFaultBlameLocalizes) {
  ChaosPlan plan;
  plan.seed = 29;
  plan.duration = minutes(14);
  plan.settle = minutes(5);
  plan.events.push_back(
      {ChaosEventKind::kLinkLoss, minutes(2), minutes(12), chaos_config_tor(2), 0.03});
  ChaosRunResult r = run_plan(plan);
  const InvariantFinding* f = r.report.find("blame-localization");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->applicable) << f->detail;
  EXPECT_TRUE(f->ok) << f->detail;
  EXPECT_TRUE(r.ok()) << r.report.to_text();
}

// ---------------------------------------------------------------------------
// Fail-closed: holds normally, and the planted defect is caught + shrunk
// ---------------------------------------------------------------------------

ChaosPlan outage_plan() {
  ChaosPlan plan;
  plan.seed = 31;
  plan.duration = minutes(20);
  plan.settle = minutes(8);
  ChaosEvent outage;
  outage.kind = ChaosEventKind::kControllerOutage;
  outage.entity = kEntityAll;
  outage.start = minutes(4);
  outage.end = minutes(16);
  plan.events.push_back(outage);
  return plan;
}

TEST(ChaosEngine, FailClosedHoldsThroughTotalControllerOutage) {
  ChaosRunResult r = run_plan(outage_plan());
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  const InvariantFinding* f = r.report.find("fail-closed");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->ok) << f->detail;
}

TEST(ChaosEngine, BrokenFailClosedThresholdIsCaught) {
  ChaosRunOptions broken;
  broken.break_fail_closed = true;
  ChaosRunResult r = run_plan(outage_plan(), broken);
  EXPECT_FALSE(r.ok());
  const InvariantFinding* f = r.report.find("fail-closed");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->ok);
}

TEST(ChaosEngine, HuntFindsPlantedDefectAndShrinksToReplayableRepro) {
  // Pick a generator seed whose random plan contains an all-replica
  // controller outage (the schedule shape that exposes a disabled
  // fail-closed threshold) and stays small so the shrink loop is cheap.
  std::uint64_t seed = 0;
  bool picked = false;
  for (std::uint64_t s = 1; s <= 400 && !picked; ++s) {
    ChaosPlan candidate = generate_random_plan(s);
    if (candidate.events.size() > 2) continue;
    for (const ChaosEvent& e : candidate.events) {
      if (e.kind == ChaosEventKind::kControllerOutage && e.entity == kEntityAll &&
          e.end - e.start >= minutes(8)) {
        seed = s;
        picked = true;
      }
    }
  }
  ASSERT_TRUE(picked) << "no suitable generator seed in range";

  ChaosRunOptions broken;
  broken.break_fail_closed = true;
  HuntResult hunt_result = hunt(seed, 1, broken);
  ASSERT_TRUE(hunt_result.found);
  EXPECT_EQ(hunt_result.seed, seed);
  EXPECT_LE(hunt_result.minimal.events.size(), 3u);
  EXPECT_GT(hunt_result.runs, 0);

  // The minimal plan is a complete reproducer: it round-trips through the
  // plan file format and still fails on replay...
  auto replayed = parse_plan(to_text(hunt_result.minimal));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, hunt_result.minimal);
  EXPECT_FALSE(run_plan(*replayed, broken).ok());
  // ...while the unbroken agent passes the same schedule.
  EXPECT_TRUE(run_plan(*replayed).ok());
}

// ---------------------------------------------------------------------------
// Injector plumbing
// ---------------------------------------------------------------------------

TEST(ChaosInjector, ArmRejectsInvalidPlans) {
  core::PingmeshSimulation sim(core::chaos_test_config(1));
  ChaosInjector injector(sim);
  ChaosPlan plan;
  plan.events.push_back(
      {ChaosEventKind::kLinkLoss, minutes(5), minutes(2), 0, 0.5});  // end < start
  EXPECT_THROW(injector.arm(plan), std::invalid_argument);
  EXPECT_EQ(injector.armed_events(), 0u);
}

TEST(ChaosInjector, ServerCrashSilencesAgentDuringWindow) {
  core::PingmeshSimulation sim(core::chaos_test_config(3));
  ChaosInjector injector(sim);
  ChaosPlan plan;
  plan.duration = minutes(10);
  plan.settle = minutes(2);
  plan.events.push_back({ChaosEventKind::kServerCrash, minutes(2), minutes(6), 7});
  injector.arm(plan);

  sim.run_until(minutes(2) - seconds(1));
  std::uint64_t before = sim.agent(ServerId{7}).probes_launched();
  EXPECT_GT(before, 0u);
  sim.run_until(minutes(6) - seconds(1));
  EXPECT_EQ(sim.agent(ServerId{7}).probes_launched(), before)
      << "crashed server kept probing";
  sim.run_until(minutes(10));
  EXPECT_GT(sim.agent(ServerId{7}).probes_launched(), before)
      << "server never came back";
}

}  // namespace
}  // namespace pingmesh::chaos

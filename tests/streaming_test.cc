// Tests for the streaming analytics path: LatencySketch correctness (merge
// algebra, quantile error bounds on benign and adversarial distributions),
// WindowedAggregator ring semantics at exact boundaries, OnlineDetector
// hysteresis + dedup, the shared open-alert registry, and the streaming-vs-
// batch cross-validation over a full simulation (DESIGN.md §8).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agent/record.h"
#include "common/rng.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/database.h"
#include "dsa/pa.h"
#include "netsim/fault.h"
#include "streaming/detector.h"
#include "streaming/sketch.h"
#include "streaming/window.h"
#include "topology/topology.h"

namespace pingmesh {
namespace {

using streaming::LatencySketch;
using streaming::OnlineDetector;
using streaming::WindowedAggregator;
using streaming::WindowStats;

// --- LatencySketch -----------------------------------------------------------

/// The sketch's own rank convention applied to the raw samples: the
/// ceil(q * n)-th ranked value (1-based), same as LatencyHistogram.
std::int64_t exact_rank_quantile(std::vector<std::int64_t> v, double q) {
  std::sort(v.begin(), v.end());
  auto target = static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  if (target == 0) target = 1;
  return v[target - 1];
}

void expect_quantiles_within_bound(const LatencySketch& sk,
                                   const std::vector<std::int64_t>& samples,
                                   const char* label) {
  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    std::int64_t exact = exact_rank_quantile(samples, q);
    std::int64_t est = sk.quantile(q);
    // The documented bound plus float-boundary slack: a value landing exactly
    // on a gamma^k boundary may round into the adjacent bucket, whose
    // representative still satisfies the sqrt(gamma) ratio against it.
    double tol = sk.relative_error_bound() * static_cast<double>(exact) * 1.001 + 2.0;
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(exact), tol)
        << label << " q=" << q;
  }
}

TEST(LatencySketch, EmptyAndSingleValue) {
  LatencySketch sk;
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.quantile(0.5), 0);
  EXPECT_EQ(sk.min(), 0);
  EXPECT_EQ(sk.max(), 0);
  sk.record(micros(237));
  // A single sample: every quantile clamps to the observed (exact) value.
  EXPECT_EQ(sk.count(), 1u);
  EXPECT_EQ(sk.p50(), micros(237));
  EXPECT_EQ(sk.p999(), micros(237));
  EXPECT_EQ(sk.min(), micros(237));
  EXPECT_EQ(sk.max(), micros(237));
  EXPECT_DOUBLE_EQ(sk.mean(), static_cast<double>(micros(237)));
}

TEST(LatencySketch, WeightedRecordMatchesRepeated) {
  LatencySketch a;
  LatencySketch b;
  a.record(micros(500), 10);
  for (int i = 0; i < 10; ++i) b.record(micros(500));
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.p50(), b.p50());
  EXPECT_EQ(a.p99(), b.p99());
}

TEST(LatencySketch, ErrorBoundUniform) {
  Rng rng(1);
  std::vector<std::int64_t> samples;
  LatencySketch sk;
  for (int i = 0; i < 20000; ++i) {
    auto v = static_cast<std::int64_t>(rng.uniform(5.0e4, 1.0e6));  // 50us..1ms
    samples.push_back(v);
    sk.record(v);
  }
  expect_quantiles_within_bound(sk, samples, "uniform");
}

TEST(LatencySketch, ErrorBoundLogNormal) {
  Rng rng(2);
  std::vector<std::int64_t> samples;
  LatencySketch sk;
  double log_median = std::log(2.0e5);  // 200us median
  for (int i = 0; i < 20000; ++i) {
    auto v = static_cast<std::int64_t>(std::exp(log_median + 0.6 * rng.normal()));
    v = std::clamp<std::int64_t>(v, micros(2), seconds(10));
    samples.push_back(v);
    sk.record(v);
  }
  expect_quantiles_within_bound(sk, samples, "lognormal");
}

TEST(LatencySketch, ErrorBoundBimodalAdversarial) {
  // Two tight modes three decades apart: quantiles sit right at the cliff,
  // the worst case for bucketed sketches.
  Rng rng(3);
  std::vector<std::int64_t> samples;
  LatencySketch sk;
  for (int i = 0; i < 20000; ++i) {
    std::int64_t v = rng.chance(0.2)
                         ? static_cast<std::int64_t>(rng.uniform(3.9e6, 4.1e6))
                         : static_cast<std::int64_t>(rng.uniform(1.9e5, 2.1e5));
    samples.push_back(v);
    sk.record(v);
  }
  expect_quantiles_within_bound(sk, samples, "bimodal");
}

TEST(LatencySketch, ErrorBoundHeavyTailAdversarial) {
  // Pareto(alpha=1.2) from 100us, clamped to 10s: the P999 lives deep in a
  // sparse tail spanning many octaves.
  Rng rng(4);
  std::vector<std::int64_t> samples;
  LatencySketch sk;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.uniform();
    if (u < 1e-9) u = 1e-9;
    auto v = static_cast<std::int64_t>(1.0e5 * std::pow(u, -1.0 / 1.2));
    v = std::min<std::int64_t>(v, seconds(10));
    samples.push_back(v);
    sk.record(v);
  }
  expect_quantiles_within_bound(sk, samples, "heavy-tail");
}

TEST(LatencySketch, MergeMatchesUnion) {
  Rng rng(5);
  LatencySketch a;
  LatencySketch b;
  LatencySketch whole;
  for (int i = 0; i < 5000; ++i) {
    auto v = static_cast<std::int64_t>(rng.uniform(1.0e4, 5.0e6));
    (i % 2 ? a : b).record(v);
    whole.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
  for (double q = 0.01; q < 1.0; q += 0.01) {
    EXPECT_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(LatencySketch, MergeIsAssociativeAndCommutative) {
  Rng rng(6);
  auto fill = [&rng](LatencySketch& sk, int n) {
    for (int i = 0; i < n; ++i) {
      sk.record(static_cast<std::int64_t>(rng.uniform(2.0e4, 2.0e6)));
    }
  };
  LatencySketch a;
  LatencySketch b;
  LatencySketch c;
  fill(a, 1000);
  fill(b, 1700);
  fill(c, 300);

  LatencySketch ab_c = a;  // (A + B) + C
  ab_c.merge(b);
  ab_c.merge(c);
  LatencySketch bc = b;  // A + (B + C)
  bc.merge(c);
  LatencySketch a_bc = a;
  a_bc.merge(bc);
  LatencySketch cba = c;  // (C + B) + A — commuted order
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_EQ(ab_c.count(), cba.count());
  for (double q = 0.005; q < 1.0; q += 0.005) {
    EXPECT_EQ(ab_c.quantile(q), a_bc.quantile(q)) << "q=" << q;
    EXPECT_EQ(ab_c.quantile(q), cba.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(ab_c.min(), cba.min());
  EXPECT_EQ(ab_c.max(), cba.max());
}

TEST(LatencySketch, MergeRejectsGeometryMismatch) {
  LatencySketch a;  // default 1%
  LatencySketch b(LatencySketch::Config{0.02, 1'000, 16 * kNanosPerSecond});
  EXPECT_FALSE(a.mergeable_with(b));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencySketch, OutOfRangeValuesClampButStayExactWhenAlone) {
  LatencySketch sk;
  sk.record(10);  // below min_value_ns: first bucket, clamped to observed
  EXPECT_EQ(sk.p50(), 10);
  LatencySketch high;
  high.record(120 * kNanosPerSecond);  // above max: saturating top bucket
  EXPECT_EQ(high.p50(), 120 * kNanosPerSecond);
}

TEST(LatencySketch, ClearKeepsGeometryAndAllocatesNothing) {
  LatencySketch sk;
  std::size_t buckets = sk.bucket_count();
  std::size_t mem = sk.memory_bytes();
  sk.record(micros(100), 50);
  sk.clear();
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.quantile(0.5), 0);
  EXPECT_EQ(sk.bucket_count(), buckets);
  EXPECT_EQ(sk.memory_bytes(), mem);
  sk.record(micros(300));
  EXPECT_EQ(sk.p50(), micros(300));
}

TEST(LatencySketch, MemoryIsSmallAndFixed) {
  LatencySketch sk;  // 1% over 1us..60s
  EXPECT_LT(sk.memory_bytes(), 16u * 1024u);
  std::size_t before = sk.memory_bytes();
  for (int i = 0; i < 100000; ++i) sk.record(micros(1) + i);
  EXPECT_EQ(sk.memory_bytes(), before);
}

// --- WindowedAggregator ------------------------------------------------------

class WindowTest : public ::testing::Test {
 protected:
  WindowTest()
      : topo_(topo::Topology::build({topo::small_dc_spec("DC1", "US West")})),
        agg_(topo_, WindowedAggregator::Config{}) {}

  [[nodiscard]] ServerId srv(std::uint32_t pod, std::size_t i) const {
    return topo_.pod(PodId{pod}).servers[i];
  }

  agent::LatencyRecord rec(std::uint32_t src_pod, std::uint32_t dst_pod, SimTime ts,
                           bool success, SimTime rtt, std::size_t i = 0) const {
    agent::LatencyRecord r;
    r.timestamp = ts;
    r.src_ip = topo_.server(srv(src_pod, i % 8)).ip;
    r.dst_ip = topo_.server(srv(dst_pod, i % 8)).ip;
    r.success = success;
    r.rtt = rtt;
    return r;
  }

  topo::Topology topo_;
  WindowedAggregator agg_;  // W = 10s, N = 6
};

TEST_F(WindowTest, IngestClassifiesLikeBatch) {
  // 4 clean, 2 one-SYN-drop (3s), 1 two-SYN-drop (9s), 3 failures.
  for (int i = 0; i < 4; ++i) agg_.ingest(rec(0, 1, seconds(1) + i, true, micros(200 + i)));
  agg_.ingest(rec(0, 1, seconds(2), true, seconds(3)));
  agg_.ingest(rec(0, 1, seconds(3), true, seconds(3) + millis(30)));
  agg_.ingest(rec(0, 1, seconds(4), true, seconds(9)));
  for (int i = 0; i < 3; ++i) agg_.ingest(rec(0, 1, seconds(5) + i, false, 0));

  auto s = agg_.query(PodId{0}, PodId{1}, seconds(9));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->probes, 10u);
  EXPECT_EQ(s->successes, 7u);
  EXPECT_EQ(s->failures, 3u);
  EXPECT_EQ(s->probes_3s, 2u);
  EXPECT_EQ(s->probes_9s, 1u);
  EXPECT_EQ(s->drop_signatures(), 3u);
  // Signatures never enter the latency sketch: p99 stays in the clean band.
  EXPECT_LT(s->p99_ns, millis(1));
  EXPECT_GE(s->p50_ns, micros(190));
  // Reverse direction unseen.
  EXPECT_FALSE(agg_.query(PodId{1}, PodId{0}, seconds(9)).has_value());
}

TEST_F(WindowTest, RecordAtExactBoundaryLandsInNewWindow) {
  agg_.ingest(rec(0, 0, seconds(10), true, micros(150)));
  auto lo = agg_.query_range(PodId{0}, PodId{0}, seconds(0), seconds(10));
  auto hi = agg_.query_range(PodId{0}, PodId{0}, seconds(10), seconds(20));
  ASSERT_TRUE(lo.has_value());
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(lo->probes, 0u);  // [0,10) does not contain ts=10
  EXPECT_EQ(hi->probes, 1u);  // [10,20) does
}

TEST_F(WindowTest, ExpiryAtExactHorizonBoundary) {
  agg_.ingest(rec(0, 0, seconds(5), true, micros(150)));
  // now=29: live horizon covers [0,10)..[20,30) -> included.
  auto s = agg_.query(PodId{0}, PodId{0}, seconds(29));
  ASSERT_TRUE(s.has_value());
  // Default N=6: live horizon at 29 is [-30, 30) -> sub-window [0,10) live.
  EXPECT_EQ(s->probes, 1u);
  // now=59: live horizon [0,10)..[50,60) still includes it (edge of ring).
  s = agg_.query(PodId{0}, PodId{0}, seconds(59));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->probes, 1u);
  // now=60: live horizon [10,70) — the record just aged out, exactly at the
  // boundary.
  s = agg_.query(PodId{0}, PodId{0}, seconds(60));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->probes, 0u);
}

TEST_F(WindowTest, LateRecordPastHorizonIsDroppedNotMisfiled) {
  agg_.ingest(rec(0, 0, seconds(65), true, micros(150)));  // slot 0 -> [60,70)
  EXPECT_EQ(agg_.late_dropped(), 0u);
  agg_.ingest(rec(0, 0, seconds(5), true, micros(150)));  // slot 0 already at 60
  EXPECT_EQ(agg_.late_dropped(), 1u);
  auto s = agg_.query_range(PodId{0}, PodId{0}, seconds(60), seconds(70));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->probes, 1u);  // the late record did not pollute the new window
  EXPECT_EQ(agg_.records_ingested(), 1u);
}

TEST_F(WindowTest, LateRecordWithinHorizonLandsInItsWindow) {
  agg_.ingest(rec(0, 0, seconds(65), true, micros(150)));
  agg_.ingest(rec(0, 0, seconds(45), true, micros(150)));  // late but retained slot
  EXPECT_EQ(agg_.late_dropped(), 0u);
  auto s = agg_.query_range(PodId{0}, PodId{0}, seconds(40), seconds(50));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->probes, 1u);
}

TEST_F(WindowTest, UnknownIpsAreSkippedLikeBatchFilter) {
  agent::LatencyRecord r = rec(0, 1, seconds(1), true, micros(200));
  r.dst_ip = IpAddr{0xdeadbeef};
  agg_.ingest(r);
  EXPECT_EQ(agg_.records_skipped(), 1u);
  EXPECT_EQ(agg_.records_ingested(), 0u);
  EXPECT_EQ(agg_.pair_count(), 0u);
}

TEST_F(WindowTest, QueryRangeRoundsOutwardToSubWindowBoundaries) {
  agg_.ingest(rec(0, 0, seconds(12), true, micros(150)));
  auto s = agg_.query_range(PodId{0}, PodId{0}, seconds(11), seconds(13));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->window_start, seconds(10));
  EXPECT_EQ(s->window_end, seconds(20));
  EXPECT_EQ(s->probes, 1u);
}

TEST_F(WindowTest, SteadyStateIngestKeepsMemoryFlat) {
  for (int w = 0; w < 3; ++w) agg_.ingest(rec(0, 1, seconds(10 * w), true, micros(200)));
  std::size_t warm = agg_.memory_bytes();
  // Hundreds more records across many ring wraps for the same pair: the
  // allocation-free contract means footprint must not move at all.
  for (int w = 3; w < 200; ++w) {
    for (int i = 0; i < 5; ++i) {
      agg_.ingest(rec(0, 1, seconds(10 * w) + i, true, micros(200 + i), i));
    }
  }
  EXPECT_EQ(agg_.memory_bytes(), warm);
  EXPECT_EQ(agg_.pair_count(), 1u);
}

// --- OnlineDetector ----------------------------------------------------------

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest()
      : topo_(topo::Topology::build({topo::small_dc_spec("DC1", "US West")})),
        agg_(topo_, WindowedAggregator::Config{}),
        det_(topo_, db_, streaming::DetectorConfig{}) {}

  agent::LatencyRecord rec(std::uint32_t src_pod, std::uint32_t dst_pod, SimTime ts,
                           bool success, SimTime rtt, std::size_t i = 0) const {
    agent::LatencyRecord r;
    r.timestamp = ts;
    r.src_ip = topo_.server(topo_.pod(PodId{src_pod}).servers[i % 8]).ip;
    r.dst_ip = topo_.server(topo_.pod(PodId{dst_pod}).servers[i % 8]).ip;
    r.success = success;
    r.rtt = rtt;
    return r;
  }

  /// Fill sub-window w with 12 records for (src, dst). Mode: 'c' clean,
  /// 'b' breach (4 of 12 carry a 3s SYN-drop signature), 'f' all failed,
  /// 's' slow (5 ms clean RTT), 'p' partial black-hole (4 of 12 fail, the
  /// rest clean — the ECMP-subset loss shape).
  void fill(std::uint32_t src, std::uint32_t dst, int w, char mode) {
    for (int i = 0; i < 12; ++i) {
      SimTime ts = seconds(10 * w) + i * millis(700);
      switch (mode) {
        case 'c': agg_.ingest(rec(src, dst, ts, true, micros(200) + i, i)); break;
        case 'b':
          agg_.ingest(i < 4 ? rec(src, dst, ts, true, seconds(3), i)
                            : rec(src, dst, ts, true, micros(200) + i, i));
          break;
        case 'f': agg_.ingest(rec(src, dst, ts, false, 0, i)); break;
        case 's': agg_.ingest(rec(src, dst, ts, true, millis(5) + i, i)); break;
        case 'p':
          agg_.ingest(i < 4 ? rec(src, dst, ts, false, 0, i)
                            : rec(src, dst, ts, true, micros(200) + i, i));
          break;
        default: FAIL() << "bad mode";
      }
    }
  }

  /// Alerts matching one streaming rule.
  [[nodiscard]] std::vector<dsa::AlertRow> alerts_for(const std::string& rule) const {
    std::vector<dsa::AlertRow> out;
    for (const auto& a : db_.alerts) {
      if (a.rule == rule) out.push_back(a);
    }
    return out;
  }

  topo::Topology topo_;
  dsa::Database db_;
  WindowedAggregator agg_;  // W = 10s, N = 6
  OnlineDetector det_;      // eval 10s, open_after 2, close_after 3
};

TEST_F(DetectorTest, DropSpikeOpensOnceThenReopensAfterClear) {
  // Phase 1: four breaching windows. Opens at the second evaluation and is
  // suppressed afterwards (one AlertRow for a persistent fault).
  for (int w = 0; w <= 3; ++w) {
    fill(0, 1, w, 'b');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  EXPECT_EQ(alerts_for("stream:drop_spike").size(), 1u);
  EXPECT_EQ(alerts_for("stream:drop_spike")[0].time, seconds(20));
  EXPECT_EQ(alerts_for("stream:drop_spike")[0].severity, dsa::AlertSeverity::kCritical);
  EXPECT_TRUE(db_.alert_open(alerts_for("stream:drop_spike")[0].scope, "stream:drop_spike"));

  // Phase 2: clean windows. The breach leaves the live horizon, and after
  // close_after consecutive clean evaluations the registry entry closes
  // without emitting a row.
  for (int w = 4; w <= 12; ++w) {
    fill(0, 1, w, 'c');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  EXPECT_EQ(alerts_for("stream:drop_spike").size(), 1u);
  EXPECT_FALSE(db_.alert_open(alerts_for("stream:drop_spike")[0].scope, "stream:drop_spike"));
  EXPECT_EQ(det_.alerts_closed(), 1u);

  // Phase 3: fault returns -> a second AlertRow (not a duplicate-suppressed
  // stale one).
  for (int w = 13; w <= 14; ++w) {
    fill(0, 1, w, 'b');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  EXPECT_EQ(alerts_for("stream:drop_spike").size(), 2u);
  EXPECT_EQ(det_.alerts_opened(), 2u);
  // No other rule fired along the way.
  EXPECT_EQ(db_.alerts.size(), 2u);
}

TEST_F(DetectorTest, SilentPairFromBootIsCriticalAfterHysteresis) {
  for (int w = 0; w <= 2; ++w) {
    fill(0, 2, w, 'f');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  auto silent = alerts_for("stream:silent_pair");
  ASSERT_EQ(silent.size(), 1u);
  EXPECT_EQ(silent[0].time, seconds(20));  // open_after = 2 evaluations
  EXPECT_EQ(silent[0].severity, dsa::AlertSeverity::kCritical);
  EXPECT_NE(silent[0].scope.find("->"), std::string::npos);
  EXPECT_EQ(db_.alerts.size(), 1u);  // no drop-spike (failures carry no signature)
}

TEST_F(DetectorTest, FailRateCatchesPartialBlackholeWithoutSilencingPair) {
  // A partial ToR black-hole fails a fraction of a pair's probes while the
  // rest connect fine — the shape the healing loop's trigger must catch.
  // 4/12 failures per window clears the 0.15 rate threshold once the live
  // horizon holds >= min_failures (8), i.e. from the second window; the
  // open_after=2 hysteresis then opens one critical fail_rate alert.
  for (int w = 0; w <= 3; ++w) {
    fill(0, 1, w, 'p');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  auto fail_rate = alerts_for("stream:fail_rate");
  ASSERT_EQ(fail_rate.size(), 1u);
  EXPECT_EQ(fail_rate[0].time, seconds(30));
  EXPECT_EQ(fail_rate[0].severity, dsa::AlertSeverity::kCritical);
  EXPECT_TRUE(db_.alert_open(fail_rate[0].scope, "stream:fail_rate"));
  // Successes keep flowing, so the pair is not silent; the failures carry
  // no SYN-drop latency signature, so no drop-spike either.
  EXPECT_EQ(alerts_for("stream:silent_pair").size(), 0u);
  EXPECT_EQ(alerts_for("stream:drop_spike").size(), 0u);

  // Fault clears: after close_after clean evaluations the alert closes.
  for (int w = 4; w <= 12; ++w) {
    fill(0, 1, w, 'c');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  EXPECT_FALSE(db_.alert_open(fail_rate[0].scope, "stream:fail_rate"));
  EXPECT_EQ(alerts_for("stream:fail_rate").size(), 1u);  // no duplicate row
}

TEST_F(DetectorTest, SilentPairWaitsForGracePeriodAfterLastSuccess) {
  fill(0, 3, 0, 'c');  // healthy window: last success ~9.7s
  for (int w = 1; w <= 5; ++w) {
    fill(0, 3, w, 'f');
    det_.evaluate(agg_, seconds(10 * (w + 1)));
    if (seconds(10 * (w + 1)) < seconds(50)) {
      // Before last_success + silent_after + one hysteresis step, nothing.
      EXPECT_EQ(alerts_for("stream:silent_pair").size(), 0u) << "w=" << w;
    }
  }
  // Breach first seen at t=40 (30s grace over), opens at t=50.
  auto silent = alerts_for("stream:silent_pair");
  ASSERT_EQ(silent.size(), 1u);
  EXPECT_EQ(silent[0].time, seconds(50));
}

TEST_F(DetectorTest, LatencyBoostAgainstFrozenBaseline) {
  for (int w = 0; w <= 5; ++w) {
    fill(1, 0, w, 'c');  // establish ~200us baseline
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  EXPECT_EQ(db_.alerts.size(), 0u);
  for (int w = 6; w <= 9; ++w) {
    fill(1, 0, w, 's');  // 5 ms: > 3x baseline and > 1 ms floor
    det_.evaluate(agg_, seconds(10 * (w + 1)));
  }
  auto boosts = alerts_for("stream:latency_boost");
  ASSERT_EQ(boosts.size(), 1u);  // opened once, then suppressed (and the
                                 // baseline is frozen while breaching)
  // The live-horizon median crosses 3x baseline once slow windows are the
  // majority (eval t=90); the 2-evaluation hysteresis opens at t=100.
  EXPECT_EQ(boosts[0].time, seconds(100));
  EXPECT_EQ(boosts[0].severity, dsa::AlertSeverity::kWarning);
  EXPECT_EQ(db_.alerts.size(), 1u);
}

TEST_F(DetectorTest, MinProbesGateSuppressesThinPairs) {
  for (int i = 0; i < 3; ++i) {
    agg_.ingest(rec(2, 3, seconds(1) + i, false, 0, static_cast<std::size_t>(i)));
  }
  det_.evaluate(agg_, seconds(10));
  det_.evaluate(agg_, seconds(20));
  EXPECT_EQ(db_.alerts.size(), 0u);
}

// --- open-alert registry + PA dedup ------------------------------------------

TEST(OpenAlertRegistry, OpenCloseLifecycle) {
  dsa::Database db;
  EXPECT_TRUE(db.open_alert("pod X", "rule", seconds(5)));
  EXPECT_FALSE(db.open_alert("pod X", "rule", seconds(10)));  // already open
  EXPECT_TRUE(db.open_alert("pod X", "other-rule", seconds(10)));
  EXPECT_TRUE(db.alert_open("pod X", "rule"));
  EXPECT_EQ(db.open_alert_count(), 2u);
  EXPECT_TRUE(db.close_alert("pod X", "rule"));
  EXPECT_FALSE(db.close_alert("pod X", "rule"));  // already closed
  EXPECT_FALSE(db.alert_open("pod X", "rule"));
  EXPECT_TRUE(db.open_alert("pod X", "rule", seconds(20)));  // can re-open
}

TEST(PaAlertDedup, PersistentBreachYieldsOneRowUntilCleared) {
  auto topo = topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  dsa::Database db;
  dsa::AlertThresholds thr;  // drop_rate 1e-3, min_probes 20
  auto add_row = [&db](SimTime t, std::uint64_t sigs) {
    dsa::PaCounterRow row;
    row.time = t;
    row.pod = PodId{0};
    row.probes = 500;
    row.drop_signatures = sigs;
    row.drop_rate = static_cast<double>(sigs) / 500.0;
    db.pa_counters.push_back(row);
  };

  add_row(minutes(5), 5);  // breach
  EXPECT_EQ(dsa::evaluate_pa_alerts(db, topo, thr, 0, minutes(5)), 1);
  add_row(minutes(10), 6);  // still breaching: dedup suppresses
  EXPECT_EQ(dsa::evaluate_pa_alerts(db, topo, thr, minutes(5), minutes(10)), 0);
  EXPECT_EQ(db.alerts.size(), 1u);
  add_row(minutes(15), 0);  // trusted clean window closes the condition
  EXPECT_EQ(dsa::evaluate_pa_alerts(db, topo, thr, minutes(10), minutes(15)), 0);
  add_row(minutes(20), 7);  // fresh breach pages again
  EXPECT_EQ(dsa::evaluate_pa_alerts(db, topo, thr, minutes(15), minutes(20)), 1);
  EXPECT_EQ(db.alerts.size(), 2u);
}

// --- end-to-end: cross-validation and detection freshness --------------------

TEST(StreamingCrossValidation, WindowsMatchBatchPodPairRows) {
  core::SimulationConfig cfg = core::streaming_test_config(7);
  // Widen the ring so every fresh batch window (written ~12..22 min after it
  // closes at this config's cadence) is still fully retained when compared.
  cfg.streaming.windows.sub_window = minutes(2);
  cfg.streaming.windows.sub_window_count = 32;  // 64-min horizon
  core::PingmeshSimulation sim(cfg);

  const streaming::WindowedAggregator& win = sim.streaming()->windows();
  // Streaming sketch (2%) + batch histogram bucket resolution + rounding.
  const double rel_tol = 0.05;
  std::size_t checked = 0;
  std::size_t next_row = 0;
  while (sim.now() < hours(2)) {
    sim.run_for(minutes(10));
    const auto& rows = sim.db().pod_pair_stats;
    for (; next_row < rows.size(); ++next_row) {
      const dsa::PodPairStatRow& row = rows[next_row];
      if (row.window_start <= sim.now() - win.horizon() + cfg.streaming.windows.sub_window) {
        continue;  // partly aged out of the ring; not comparable
      }
      auto s = win.query_range(row.src_pod, row.dst_pod, row.window_start, row.window_end);
      ASSERT_TRUE(s.has_value()) << "pair missing from streaming state";
      // Same records, same classification: the counters agree exactly.
      EXPECT_EQ(s->probes, row.probes) << "window@" << to_seconds(row.window_start);
      EXPECT_EQ(s->successes, row.successes);
      EXPECT_EQ(s->failures, row.failures);
      EXPECT_EQ(s->drop_signatures(), row.drop_signatures);
      // Percentiles agree within the two estimators' documented resolutions.
      if (row.p50_ns > 0 && s->p50_ns > 0) {
        double tol50 = rel_tol * static_cast<double>(std::max(row.p50_ns, s->p50_ns)) +
                       static_cast<double>(micros(2));
        EXPECT_NEAR(static_cast<double>(s->p50_ns), static_cast<double>(row.p50_ns), tol50)
            << "p50 window@" << to_seconds(row.window_start);
      }
      if (row.p99_ns > 0 && s->p99_ns > 0) {
        double tol99 = rel_tol * static_cast<double>(std::max(row.p99_ns, s->p99_ns)) +
                       static_cast<double>(micros(2));
        EXPECT_NEAR(static_cast<double>(s->p99_ns), static_cast<double>(row.p99_ns), tol99)
            << "p99 window@" << to_seconds(row.window_start);
      }
      ++checked;
    }
  }
  // Dozens of pod pairs per 10-min window over ~2 h: a real sample.
  EXPECT_GT(checked, 100u);
  EXPECT_GT(win.records_ingested(), 0u);
  EXPECT_EQ(win.late_dropped(), 0u);
}

TEST(StreamingDetection, BlackholeCaughtInUnderAMinute) {
  core::SimulationConfig cfg = core::streaming_test_config(5);
  core::PingmeshSimulation sim(cfg);
  sim.run_for(minutes(20));
  std::size_t alerts_before = sim.db().alerts.size();
  SimTime t0 = sim.now();

  // Full ToR blackhole on pod 0 (every src/dst pair pattern dead — the TCAM
  // corruption shape): failures, not 3s/9s signatures, so the PA path and
  // the drop-spike rule are structurally blind to it.
  SwitchId tor = sim.topology().pod(PodId{0}).tor;
  sim.faults().add_blackhole(tor, netsim::BlackholeMode::kSrcDstPair, 1.0, t0);
  sim.run_for(minutes(3));

  SimTime first_stream_alert = 0;
  bool found = false;
  for (std::size_t i = alerts_before; i < sim.db().alerts.size(); ++i) {
    const dsa::AlertRow& a = sim.db().alerts[i];
    if (a.rule.rfind("stream:", 0) == 0 && a.time >= t0) {
      if (!found || a.time < first_stream_alert) first_stream_alert = a.time;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "streaming detector never fired on a full ToR blackhole";
  EXPECT_LE(first_stream_alert - t0, seconds(60));

  // The batch path hasn't even produced a row *covering* the fault yet: its
  // newest window closed at or before t0 (freshness floor = window length +
  // ingestion delay; ~20 min in production, paper §3.5).
  for (const dsa::PodPairStatRow& row : sim.db().pod_pair_stats) {
    EXPECT_LE(row.window_end, t0);
  }
}

TEST(StreamingDeterminism, WorkerCountDoesNotChangeStreamingResults) {
  // The tap runs in the serial upload-drain phase and the detector on the
  // driver thread: the whole streaming path must be bit-identical for any
  // worker count (DESIGN.md §7).
  core::SimulationConfig cfg1 = core::streaming_test_config(42);
  core::SimulationConfig cfg4 = core::streaming_test_config(42);
  cfg1.worker_threads = 1;
  cfg4.worker_threads = 4;
  core::PingmeshSimulation sim1(cfg1);
  core::PingmeshSimulation sim4(cfg4);
  sim1.run_for(minutes(40));
  sim4.run_for(minutes(40));

  const auto& w1 = sim1.streaming()->windows();
  const auto& w4 = sim4.streaming()->windows();
  EXPECT_EQ(w1.records_ingested(), w4.records_ingested());
  EXPECT_EQ(w1.pair_count(), w4.pair_count());
  EXPECT_EQ(sim1.streaming()->detector().evaluations(),
            sim4.streaming()->detector().evaluations());
  ASSERT_EQ(sim1.db().alerts.size(), sim4.db().alerts.size());
  for (std::size_t i = 0; i < sim1.db().alerts.size(); ++i) {
    EXPECT_EQ(sim1.db().alerts[i].time, sim4.db().alerts[i].time);
    EXPECT_EQ(sim1.db().alerts[i].rule, sim4.db().alerts[i].rule);
    EXPECT_EQ(sim1.db().alerts[i].scope, sim4.db().alerts[i].scope);
  }
  for (const topo::Pod& pod : sim1.topology().pods()) {
    auto a = w1.query(pod.id, pod.id, sim1.now());
    auto b = w4.query(pod.id, pod.id, sim4.now());
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->probes, b->probes);
      EXPECT_EQ(a->successes, b->successes);
      EXPECT_EQ(a->p99_ns, b->p99_ns);
    }
  }
}

}  // namespace
}  // namespace pingmesh

// Tests for ScopeQL: lexing, parsing, evaluation, aggregation, ordering,
// error reporting — the declarative layer of the DSA pipeline.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "dsa/scopeql.h"
#include "topology/topology.h"

namespace pingmesh::dsa::scopeql {
namespace {

using agent::LatencyRecord;

topo::Topology small_dc() {
  return topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
}

LatencyRecord rec(IpAddr src, IpAddr dst, SimTime rtt, bool success = true) {
  LatencyRecord r;
  r.src_ip = src;
  r.dst_ip = dst;
  r.rtt = rtt;
  r.success = success;
  r.src_port = 40000;
  r.dst_port = 33100;
  return r;
}

std::vector<LatencyRecord> tiny_data() {
  IpAddr a(10, 0, 0, 1), b(10, 0, 0, 2), c(10, 0, 0, 3);
  return {
      rec(a, b, micros(200)),
      rec(a, b, micros(300)),
      rec(a, c, micros(400)),
      rec(b, c, micros(500), /*success=*/false),
      rec(b, a, seconds(3) + micros(250)),  // one SYN-drop signature
  };
}

TEST(ScopeQl, SelectWhereProjection) {
  Interpreter ql;
  auto result = ql.run("SELECT rtt, success FROM latency WHERE rtt >= 300us", tiny_data());
  EXPECT_EQ(result.columns, (std::vector<std::string>{"rtt", "success"}));
  ASSERT_EQ(result.rows.size(), 4u);  // 300us, 400us, 500us (failed), 3s
  EXPECT_EQ(result.rows[0][0], std::to_string(micros(300)));
  EXPECT_EQ(result.rows[0][1], "1");
}

TEST(ScopeQl, IpColumnsRenderDotted) {
  Interpreter ql;
  auto result = ql.run("SELECT src_ip, dst_ip FROM latency LIMIT 1", tiny_data());
  EXPECT_EQ(result.rows[0][0], "10.0.0.1");
  EXPECT_EQ(result.rows[0][1], "10.0.0.2");
}

TEST(ScopeQl, TimeSuffixLiterals) {
  Interpreter ql;
  auto r1 = ql.run("SELECT rtt FROM latency WHERE rtt > 2s", tiny_data());
  EXPECT_EQ(r1.rows.size(), 1u);
  auto r2 = ql.run("SELECT rtt FROM latency WHERE rtt = 200us", tiny_data());
  EXPECT_EQ(r2.rows.size(), 1u);
  auto r3 = ql.run("SELECT rtt FROM latency WHERE rtt < 1ms AND rtt > 250000", tiny_data());
  EXPECT_EQ(r3.rows.size(), 3u);  // 300us, 400us, 500us
}

TEST(ScopeQl, BooleanOperators) {
  Interpreter ql;
  auto result = ql.run(
      "SELECT rtt FROM latency WHERE NOT success OR rtt >= 3s", tiny_data());
  EXPECT_EQ(result.rows.size(), 2u);  // the failure + the 3s signature
}

TEST(ScopeQl, GlobalAggregates) {
  Interpreter ql;
  auto result = ql.run(
      "SELECT COUNT(*), MIN(rtt), MAX(rtt), AVG(rtt), SUM(success) FROM latency "
      "WHERE success",
      tiny_data());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "4");
  EXPECT_EQ(result.rows[0][1], std::to_string(micros(200)));
  EXPECT_EQ(result.rows[0][2], std::to_string(seconds(3) + micros(250)));
  EXPECT_EQ(result.rows[0][4], "4");
}

TEST(ScopeQl, DropRateAggregate) {
  Interpreter ql;
  auto result = ql.run("SELECT DROPRATE(), COUNT(*) FROM latency", tiny_data());
  ASSERT_EQ(result.rows.size(), 1u);
  // 1 signature / 4 successes = 0.25.
  EXPECT_EQ(result.rows[0][0], format_rate(0.25));
}

TEST(ScopeQl, PercentileAggregates) {
  std::vector<LatencyRecord> data;
  for (int i = 1; i <= 1000; ++i) {
    data.push_back(rec(IpAddr(10, 0, 0, 1), IpAddr(10, 0, 0, 2), micros(i)));
  }
  Interpreter ql;
  auto result = ql.run("SELECT P50(rtt), P99(rtt) FROM latency", data);
  double p50 = std::stod(result.rows[0][0]);
  double p99 = std::stod(result.rows[0][1]);
  EXPECT_NEAR(p50, micros(500), micros(25));
  EXPECT_NEAR(p99, micros(990), micros(40));
}

TEST(ScopeQl, GroupByWithTopologyFunctions) {
  topo::Topology topo = small_dc();
  std::vector<LatencyRecord> data;
  const topo::Pod& pod0 = topo.pods()[0];
  const topo::Pod& pod1 = topo.pods()[1];
  for (int i = 0; i < 10; ++i) {
    data.push_back(rec(topo.server(pod0.servers[0]).ip, topo.server(pod0.servers[1]).ip,
                       micros(100 + i)));
  }
  for (int i = 0; i < 5; ++i) {
    data.push_back(rec(topo.server(pod1.servers[0]).ip, topo.server(pod0.servers[1]).ip,
                       micros(300 + i)));
  }
  Interpreter ql(&topo);
  auto result = ql.run(
      "SELECT pod(src_ip), COUNT(*), MAX(rtt) FROM latency GROUP BY pod(src_ip) "
      "ORDER BY COUNT DESC",
      data);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0], std::to_string(pod0.id.value));
  EXPECT_EQ(result.rows[0][1], "10");
  EXPECT_EQ(result.rows[1][1], "5");
}

TEST(ScopeQl, TopologyFunctionWithoutTopologyThrows) {
  Interpreter ql;  // no topology attached
  EXPECT_THROW(ql.run("SELECT pod(src_ip) FROM latency", tiny_data()), QueryError);
}

TEST(ScopeQl, UnknownIpYieldsMinusOneGroup) {
  topo::Topology topo = small_dc();
  Interpreter ql(&topo);
  std::vector<LatencyRecord> foreign = {
      rec(IpAddr(192, 168, 1, 1), IpAddr(192, 168, 1, 2), micros(200))};
  auto result = ql.run(
      "SELECT dc(src_ip), COUNT(*) FROM latency GROUP BY dc(src_ip)", foreign);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "-1");  // 192.168.x.x is not in this topology
}

TEST(ScopeQl, OrderByAscDescAndLimit) {
  Interpreter ql;
  auto asc = ql.run("SELECT rtt FROM latency WHERE success ORDER BY rtt ASC LIMIT 2",
                    tiny_data());
  ASSERT_EQ(asc.rows.size(), 2u);
  EXPECT_EQ(asc.rows[0][0], std::to_string(micros(200)));
  auto desc =
      ql.run("SELECT rtt FROM latency WHERE success ORDER BY rtt DESC LIMIT 1", tiny_data());
  EXPECT_EQ(desc.rows[0][0], std::to_string(seconds(3) + micros(250)));
}

TEST(ScopeQl, TableRendering) {
  Interpreter ql;
  auto result = ql.run("SELECT COUNT(*) FROM latency", tiny_data());
  std::string table = result.to_table();
  EXPECT_NE(table.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(table.find("\n5"), std::string::npos);
}

TEST(ScopeQl, ErrorsArePrecise) {
  Interpreter ql;
  EXPECT_THROW(ql.run("SELEKT rtt FROM latency", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT rtt FROM nowhere", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT bogus_column FROM latency", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT rtt FROM latency WHERE rtt >", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT rtt FROM latency trailing", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT SUM(*) FROM latency", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT rtt, COUNT(*) FROM latency", tiny_data()), QueryError);
  EXPECT_THROW(ql.run("SELECT COUNT(*) FROM latency ORDER BY nope", tiny_data()),
               QueryError);
  EXPECT_THROW(ql.run("SELECT rtt FROM latency WHERE rtt > 3parsecs", tiny_data()),
               QueryError);
}

TEST(ScopeQl, CaseInsensitiveKeywords) {
  Interpreter ql;
  auto result =
      ql.run("select count(*) from latency where SUCCESS group by success", tiny_data());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "4");
}

}  // namespace
}  // namespace pingmesh::dsa::scopeql

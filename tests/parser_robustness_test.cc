// Malformed-input contracts for the four fuzzed parsers, driven from the
// same checked-in corpora the fuzz harnesses replay (tests/corpus/). Each
// parser has one documented failure mode and must hit exactly it:
//
//   xml::parse        — throws std::runtime_error with an "offset N" position
//   http parse_*      — returns std::nullopt
//   scopeql           — throws QueryError with an "offset N" position
//   cosmos_io load    — returns std::nullopt, or counts corrupt extents
//
// Anything else (crash, UB, unbounded allocation, wrong exception type) is
// a regression the corpus replay would also catch; here we additionally
// assert the *positive* properties of each mode.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "agent/record.h"
#include "common/xml.h"
#include "dsa/cosmos_io.h"
#include "dsa/scopeql.h"
#include "net/http.h"

namespace {

namespace fs = std::filesystem;

std::string corpus_dir(const std::string& parser) {
  return std::string(PINGMESH_CORPUS_DIR) + "/" + parser;
}

std::vector<std::string> corpus_files(const std::string& parser) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(corpus_dir(parser))) {
    if (entry.is_regular_file()) out.push_back(entry.path().string());
  }
  EXPECT_GE(out.size(), 3u) << "corpus " << parser << " went missing";
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- xml -------------------------------------------------------------------

TEST(XmlRobustness, CorpusParsesOrThrowsWithPosition) {
  for (const std::string& path : corpus_files("xml")) {
    std::string doc = slurp(path);
    try {
      auto root = pingmesh::xml::parse(doc);
      EXPECT_NE(root, nullptr) << path;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << path << ": " << e.what();
    }
  }
}

TEST(XmlRobustness, DepthBombThrowsInsteadOfOverflowingStack) {
  std::string bomb;
  for (std::size_t i = 0; i < pingmesh::xml::kMaxDepth + 50; ++i) bomb += "<d>";
  try {
    (void)pingmesh::xml::parse(bomb);
    FAIL() << "depth bomb parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("depth"), std::string::npos) << e.what();
  }
}

TEST(XmlRobustness, DepthJustBelowTheLimitStillParses) {
  std::string doc;
  for (std::size_t i = 0; i < pingmesh::xml::kMaxDepth; ++i) doc += "<d>";
  for (std::size_t i = 0; i < pingmesh::xml::kMaxDepth; ++i) doc += "</d>";
  EXPECT_NE(pingmesh::xml::parse(doc), nullptr);
}

TEST(XmlRobustness, OversizedDocumentIsRejectedUpFront) {
  // One element, padded with whitespace beyond the cap: rejected by size
  // before any parsing work happens.
  std::string doc(pingmesh::xml::kMaxDocumentBytes + 1, ' ');
  doc.replace(0, 7, "<a></a>");
  try {
    (void)pingmesh::xml::parse(doc);
    FAIL() << "oversized document parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("size cap"), std::string::npos) << e.what();
  }
}

// --- http ------------------------------------------------------------------

TEST(HttpRobustness, CorpusNeverThrows) {
  for (const std::string& path : corpus_files("http")) {
    std::string bytes = slurp(path);
    EXPECT_NO_THROW({
      (void)pingmesh::net::parse_request(bytes);
      (void)pingmesh::net::parse_response(bytes);
    }) << path;
  }
}

TEST(HttpRobustness, MalformedInputsReturnNullopt) {
  EXPECT_FALSE(pingmesh::net::parse_request("NOT_HTTP AT ALL\r\n\r\n").has_value());
  EXPECT_FALSE(pingmesh::net::parse_request("GET /x HTTP/1.1\r\n").has_value())
      << "incomplete head must not parse";
  // Truncated body: Content-Length promises more bytes than present.
  EXPECT_FALSE(
      pingmesh::net::parse_request("POST /u HTTP/1.1\r\ncontent-length: 5\r\n\r\nabc")
          .has_value());
  EXPECT_FALSE(pingmesh::net::parse_response("ICMP nope\r\n\r\n").has_value());
  // A Content-Length that overflows size_t parses as malformed, not as a
  // giant allocation.
  EXPECT_FALSE(pingmesh::net::parse_response(
                   "HTTP/1.1 200 OK\r\ncontent-length: 99999999999999999999\r\n\r\nx")
                   .has_value());
}

TEST(HttpRobustness, ValidCorpusMessagesRoundTrip) {
  auto req = pingmesh::net::parse_request(slurp(corpus_dir("http") + "/get_pinglist.req"));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/pinglist/10.0.0.1");
  auto resp = pingmesh::net::parse_response(slurp(corpus_dir("http") + "/ok_body.resp"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "hello world");
}

// --- scopeql ---------------------------------------------------------------

TEST(ScopeqlRobustness, CorpusRunsOrThrowsQueryErrorWithPosition) {
  pingmesh::dsa::scopeql::Interpreter interp;
  std::vector<pingmesh::agent::LatencyRecord> records(3);
  for (int i = 0; i < 3; ++i) {
    records[i].timestamp = 1000 * i;
    records[i].success = true;
    records[i].rtt = 100'000 + i;
  }
  for (const std::string& path : corpus_files("scopeql")) {
    std::string query = slurp(path);
    try {
      (void)interp.run(query, records);
    } catch (const pingmesh::dsa::scopeql::QueryError& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << path << ": " << e.what();
    }
  }
}

TEST(ScopeqlRobustness, IntegerOverflowIsAnErrorNotUb) {
  pingmesh::dsa::scopeql::Interpreter interp;
  std::vector<pingmesh::agent::LatencyRecord> records(1);
  EXPECT_THROW(
      (void)interp.run("SELECT COUNT(*) FROM latency WHERE rtt < "
                       "99999999999999999999999999999",
                       records),
      pingmesh::dsa::scopeql::QueryError);
  EXPECT_THROW((void)interp.run(
                   "SELECT COUNT(*) FROM latency WHERE timestamp < 9223372036854775807h",
                   records),
               pingmesh::dsa::scopeql::QueryError);
  // Near the boundary is still fine: INT64_MAX itself lexes.
  EXPECT_NO_THROW((void)interp.run(
      "SELECT COUNT(*) FROM latency WHERE rtt < 9223372036854775807", records));
}

TEST(ScopeqlRobustness, ParenBombThrowsDepthErrorNotStackOverflow) {
  pingmesh::dsa::scopeql::Interpreter interp;
  std::vector<pingmesh::agent::LatencyRecord> records(1);
  std::string query = "SELECT COUNT(*) FROM latency WHERE ";
  for (int i = 0; i < 5000; ++i) query += '(';
  query += '1';
  for (int i = 0; i < 5000; ++i) query += ')';
  query += " = 1";
  try {
    (void)interp.run(query, records);
    FAIL() << "paren bomb parsed";
  } catch (const pingmesh::dsa::scopeql::QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("depth"), std::string::npos) << e.what();
  }
}

// --- cosmos_io -------------------------------------------------------------

class CosmosCorpusLoader {
 public:
  static std::optional<pingmesh::dsa::LoadResult> load_bytes(const std::string& bytes,
                                                             std::size_t limit) {
    std::string path = testing::TempDir() + "/robustness_cosmos.pmcosmos";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto result = pingmesh::dsa::load_store(path, limit);
    std::remove(path.c_str());
    return result;
  }
};

TEST(CosmosIoRobustness, CorpusLoadsOrReturnsNullopt) {
  for (const std::string& path : corpus_files("cosmos_io")) {
    EXPECT_NO_THROW({ (void)pingmesh::dsa::load_store(path, 64 * 1024); }) << path;
  }
}

TEST(CosmosIoRobustness, ValidSeedLoadsBothExtents) {
  auto loaded =
      pingmesh::dsa::load_store(corpus_dir("cosmos_io") + "/valid_two_extents.pmcosmos");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->streams, 1u);
  EXPECT_EQ(loaded->extents, 2u);
  EXPECT_EQ(loaded->corrupt_dropped, 0u);
}

TEST(CosmosIoRobustness, CorruptChecksumIsDroppedAndCounted) {
  auto loaded =
      pingmesh::dsa::load_store(corpus_dir("cosmos_io") + "/corrupt_checksum.pmcosmos");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->extents, 0u);
  EXPECT_EQ(loaded->corrupt_dropped, 1u);
}

TEST(CosmosIoRobustness, GiantExtentHeaderIsUnparseableNotBadAlloc) {
  // The reproducer from the fuzz corpus: a header demanding ~100 TB.
  auto loaded = CosmosCorpusLoader::load_bytes(
      "PMCOSMOS1\nstream s 1\nextent 1 0 0 0 1 0 3 99999999999999\n", 64 * 1024);
  EXPECT_FALSE(loaded.has_value());
}

TEST(CosmosIoRobustness, ModeratelyOversizedExtentStillLoads) {
  // Up to 4x the limit is legal (a single oversized append); build one at
  // 2x and confirm the cap does not reject legitimate data.
  std::string payload(128, 'x');
  char header[128];
  std::snprintf(header, sizeof(header), "extent 1 0 0 0 1 %u 3 %zu\n",
                pingmesh::dsa::fnv1a(payload), payload.size());
  std::string file = std::string("PMCOSMOS1\nstream s 1\n") + header + payload + "\n";
  auto loaded = CosmosCorpusLoader::load_bytes(file, /*limit=*/64);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->extents, 1u);
}

TEST(CosmosIoRobustness, TruncatedPayloadIsUnparseable) {
  auto loaded = CosmosCorpusLoader::load_bytes(
      "PMCOSMOS1\nstream s 1\nextent 1 0 0 0 1 0 3 50\nshort", 64 * 1024);
  EXPECT_FALSE(loaded.has_value());
}

}  // namespace

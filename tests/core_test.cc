// Tests for the core module: the fleet driver, canonical scenarios, Cosmos
// persistence round-trips, the report renderer, and the netsim extensions
// (QoS classes, multi-RTT session model).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/stats.h"
#include "core/fleet.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/cosmos_io.h"
#include "dsa/report.h"

namespace pingmesh::core {
namespace {

controller::GeneratorConfig basic_gen() {
  controller::GeneratorConfig cfg;
  cfg.enable_inter_dc = false;
  cfg.payload_every_kth = 0;
  cfg.intra_pod_interval = seconds(30);
  cfg.intra_dc_interval = minutes(1);
  return cfg;
}

// ---------------------------------------------------------------------------
// FleetProbeDriver
// ---------------------------------------------------------------------------

TEST(FleetDriver, DenseFiresEveryTargetEveryRound) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 1);
  controller::PinglistGenerator gen(topo, basic_gen());
  FleetProbeDriver driver(topo, net, gen);
  std::uint64_t visits = 0;
  driver.run_dense(0, 3, seconds(10), [&](const FleetProbe&) { ++visits; });
  std::uint64_t per_round = 0;
  for (const auto& pl : gen.generate_all()) per_round += pl.targets.size();
  EXPECT_EQ(visits, per_round * 3);
  EXPECT_EQ(driver.probes_fired(), visits);
}

TEST(FleetDriver, IntervalModeRespectsTargetIntervals) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 2);
  controller::GeneratorConfig cfg = basic_gen();
  cfg.intra_pod_interval = seconds(30);
  cfg.intra_dc_interval = minutes(5);
  controller::PinglistGenerator gen(topo, cfg);
  FleetProbeDriver driver(topo, net, gen);
  std::uint64_t pod_probes = 0, dc_probes = 0;
  // 30 rounds of 10s = 300s: intra-pod targets fire 10x, intra-DC 1x.
  driver.run(0, 30, seconds(10), [&](const FleetProbe& p) {
    if (p.target->interval == seconds(30)) {
      ++pod_probes;
    } else {
      ++dc_probes;
    }
  });
  std::uint64_t pod_targets = 0, dc_targets = 0;
  for (const auto& pl : gen.generate_all()) {
    for (const auto& t : pl.targets) {
      (t.interval == seconds(30) ? pod_targets : dc_targets) += 1;
    }
  }
  EXPECT_EQ(pod_probes, pod_targets * 10);
  EXPECT_EQ(dc_probes, dc_targets * 1);
}

TEST(FleetDriver, SkipsDownedServers) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 3);
  net.faults().add_podset_down(topo.podsets()[0].id);
  controller::PinglistGenerator gen(topo, basic_gen());
  FleetProbeDriver driver(topo, net, gen);
  driver.run_dense(0, 1, seconds(10), [&](const FleetProbe& p) {
    EXPECT_NE(topo.server(p.src).podset, topo.podsets()[0].id);
  });
}

TEST(FleetDriver, FreshSourcePorts) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 4);
  controller::PinglistGenerator gen(topo, basic_gen());
  FleetProbeDriver driver(topo, net, gen);
  std::uint16_t last = 0;
  int checked = 0;
  driver.run_dense(0, 1, seconds(10), [&](const FleetProbe& p) {
    if (checked++ > 100) return;
    EXPECT_GE(p.src_port, 32768);
    EXPECT_NE(p.src_port, last);
    last = p.src_port;
  });
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

TEST(Scenarios, TableOneProfilesMatchLossPlan) {
  // intra-pod probe loss = 2*(2*nic + tor) must reproduce the paper column.
  static const double kPaperIntra[5] = {1.31e-5, 2.10e-5, 9.58e-6, 1.52e-5, 9.82e-6};
  for (std::size_t d = 0; d < 5; ++d) {
    netsim::DcProfile p = table1_profile(d);
    double intra = 2 * (2 * p.nic_drop + p.tor_drop);
    EXPECT_NEAR(intra, kPaperIntra[d], kPaperIntra[d] * 0.05) << "DC" << d + 1;
  }
  EXPECT_THROW(table1_profile(5), std::out_of_range);
}

TEST(Scenarios, TwoDcSpecsShape) {
  auto specs = two_dc_specs(false);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "DC1");
  auto topo = topo::Topology::build(specs);
  EXPECT_EQ(topo.dcs().size(), 2u);
}

// ---------------------------------------------------------------------------
// Cosmos persistence
// ---------------------------------------------------------------------------

TEST(CosmosIo, SaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/pm_cosmos_io_test.pm";
  dsa::CosmosStore store(64);
  store.stream("a/latency").append("row1,x\nrow2,y\n", 2, seconds(1), seconds(2), 0);
  store.stream("a/latency").append(std::string(100, 'z'), 1, seconds(3), seconds(3), 0);
  store.stream("b").append("solo", 1, seconds(9), seconds(9), 0);

  ASSERT_TRUE(dsa::save_store(store, path));
  auto loaded = dsa::load_store(path, 64);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->streams, 2u);
  EXPECT_EQ(loaded->extents, 3u);  // second append rolled to a new extent
  EXPECT_EQ(loaded->corrupt_dropped, 0u);
  EXPECT_EQ(loaded->store.total_records(), store.total_records());
  EXPECT_EQ(loaded->store.total_bytes(), store.total_bytes());

  const dsa::CosmosStream* a = loaded->store.find("a/latency");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->extents()[0].data, "row1,x\nrow2,y\n");
  EXPECT_EQ(a->extents()[0].first_ts, seconds(1));
  std::filesystem::remove(path);
}

TEST(CosmosIo, CorruptExtentDroppedOnLoad) {
  std::string path = ::testing::TempDir() + "/pm_cosmos_io_corrupt.pm";
  dsa::CosmosStore store(8);
  store.stream("s").append("extent-1", 1, 0, 0, 0);
  store.stream("s").append("extent-2", 1, 0, 0, 0);
  store.stream("s").corrupt_extent_for_test(0);
  ASSERT_TRUE(dsa::save_store(store, path));
  auto loaded = dsa::load_store(path, 8);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->extents, 1u);
  EXPECT_EQ(loaded->corrupt_dropped, 1u);
  std::filesystem::remove(path);
}

TEST(CosmosIo, MissingOrGarbageFile) {
  EXPECT_FALSE(dsa::load_store("/nonexistent/nowhere.pm").has_value());
  std::string path = ::testing::TempDir() + "/pm_cosmos_io_garbage.pm";
  std::ofstream(path) << "not a store";
  EXPECT_FALSE(dsa::load_store(path).has_value());
  std::filesystem::remove(path);
}

TEST(CosmosIo, AppendContinuesAfterRestore) {
  std::string path = ::testing::TempDir() + "/pm_cosmos_io_cont.pm";
  dsa::CosmosStore store(1 << 20);
  store.stream("s").append("first", 1, 0, 0, 0);
  ASSERT_TRUE(dsa::save_store(store, path));
  auto loaded = dsa::load_store(path, 1 << 20);
  ASSERT_TRUE(loaded.has_value());
  loaded->store.stream("s").append("second", 1, seconds(1), seconds(1), 0);
  EXPECT_EQ(loaded->store.stream("s").extents()[0].data, "firstsecond");
  EXPECT_TRUE(loaded->store.stream("s").extents()[0].verify());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Report, RendersAllSections) {
  SimulationConfig cfg = small_test_config(71);
  PingmeshSimulation sim(cfg);
  sim.services().add_service("Search", sim.topology().pods()[0].servers);
  sim.run_for(hours(2));
  std::string report = dsa::render_network_report(sim.db(), sim.topology(),
                                                  &sim.services());
  EXPECT_NE(report.find("PINGMESH NETWORK REPORT"), std::string::npos);
  EXPECT_NE(report.find("DC1"), std::string::npos);
  EXPECT_NE(report.find("Search"), std::string::npos);
  EXPECT_NE(report.find("worst pods"), std::string::npos);
  EXPECT_NE(report.find("alerts in window: 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// QoS classes in the simulator
// ---------------------------------------------------------------------------

TEST(Qos, LowPriorityQueuesLongerUnderCongestion) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 5);
  for (SwitchId spine : topo.dcs()[0].spines) {
    net.faults().add_congestion(spine, 6.0, 0.0);
  }
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pods()[4].servers[0];  // cross-podset
  LatencyHistogram high, low;
  for (int i = 0; i < 4000; ++i) {
    netsim::ProbeSpec spec;
    auto r1 = net.tcp_probe(a, b, static_cast<std::uint16_t>(32768 + i), 33100, spec, 0);
    spec.low_priority = true;
    auto r2 = net.tcp_probe(a, b, static_cast<std::uint16_t>(32768 + i), 33101, spec, 0);
    if (r1.success && r1.syn_transmissions == 1) high.record(r1.rtt);
    if (r2.success && r2.syn_transmissions == 1) low.record(r2.rtt);
  }
  EXPECT_GT(low.p99(), high.p99() * 2);
  EXPECT_GT(low.p50(), high.p50());
}

// ---------------------------------------------------------------------------
// Multi-RTT session model (§6.4)
// ---------------------------------------------------------------------------

TEST(Session, SmallerIcwNeedsMoreRoundTrips) {
  topo::Topology topo = topo::Topology::build(two_dc_specs(false));
  netsim::SimNetwork net(topo, 6);
  ServerId a = topo.dcs()[0].servers[0];
  ServerId b = topo.dcs()[1].servers[0];
  netsim::SessionSpec spec;
  spec.total_bytes = 256 * 1024;
  spec.icw_segments = 16;
  auto fast = net.tcp_session(a, b, 40000, 443, spec, 0);
  spec.icw_segments = 4;
  auto slow = net.tcp_session(a, b, 40001, 443, spec, 0);
  ASSERT_TRUE(fast.success);
  ASSERT_TRUE(slow.success);
  EXPECT_EQ(fast.round_trips, 4);  // 16+32+64+128 = 240 >= 180 segments
  EXPECT_EQ(slow.round_trips, 6);  // 4+8+...+128 = 252 >= 180
  EXPECT_GT(slow.finish_time, fast.finish_time);
}

TEST(Session, SinglePacketProbeBlindToIcw) {
  // The negative result as a unit test: probe RTT distribution is the same
  // whatever the ICW, because Pingmesh never opens a window.
  topo::Topology topo = topo::Topology::build(two_dc_specs(false));
  netsim::SimNetwork n1(topo, 7);
  netsim::SimNetwork n2(topo, 7);
  ServerId a = topo.dcs()[0].servers[0];
  ServerId b = topo.dcs()[1].servers[0];
  for (int i = 0; i < 50; ++i) {
    auto p1 = n1.tcp_probe(a, b, static_cast<std::uint16_t>(40000 + i), 33100, {}, 0);
    auto p2 = n2.tcp_probe(a, b, static_cast<std::uint16_t>(40000 + i), 33100, {}, 0);
    EXPECT_EQ(p1.rtt, p2.rtt);  // ICW does not appear in the probe path at all
  }
}

TEST(Session, TinyTransferTakesOneRoundTrip) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 9);
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pods()[1].servers[0];
  netsim::SessionSpec spec;
  spec.total_bytes = 500;  // one segment
  spec.icw_segments = 4;
  auto session = net.tcp_session(a, b, 40000, 443, spec, 0);
  ASSERT_TRUE(session.success);
  EXPECT_EQ(session.round_trips, 1);
  EXPECT_GT(session.finish_time, 0);
}

TEST(Session, FailsWhenDestinationDown) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "r")});
  netsim::SimNetwork net(topo, 8);
  net.faults().add_podset_down(topo.podsets()[1].id);
  ServerId a = topo.pods()[0].servers[0];
  ServerId b = topo.pod(topo.podsets()[1].pods[0]).servers[0];
  auto session = net.tcp_session(a, b, 40000, 443, {}, 0);
  EXPECT_FALSE(session.success);
}

// ---------------------------------------------------------------------------
// VIP mapping in the simulation facade
// ---------------------------------------------------------------------------

TEST(Vip, DipsShareLoadByPortHash) {
  SimulationConfig cfg = small_test_config(72);
  cfg.agent.pinglist_refresh = minutes(2);
  PingmeshSimulation sim(cfg);
  IpAddr vip(172, 16, 9, 9);
  const auto& pod = sim.topology().pods()[2];
  sim.register_vip(vip, {pod.servers[0], pod.servers[1], pod.servers[2]});
  sim.run_for(minutes(30));
  std::uint64_t vip_probes = 0;
  for (const auto& r : sim.records_between(0, sim.now())) {
    if (r.dst_ip == vip && r.success) ++vip_probes;
  }
  EXPECT_GT(vip_probes, 10u);
}

}  // namespace
}  // namespace pingmesh::core

// Tests for the sharded parallel fleet engine: ThreadPool semantics, the
// serial-vs-parallel bit-identity contract of the full simulation loop, and
// concurrent use of the stateless probe path (the test the thread sanitizer
// build exercises).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "agent/record.h"
#include "common/thread_pool.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace pingmesh {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ShardsAreDeterministicAndContiguous) {
  ThreadPool pool(3);
  // Record each shard's [begin, end) as seen by the body; repeated calls
  // must produce the same decomposition.
  for (int round = 0; round < 3; ++round) {
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> shards;
    pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(m);
      shards.emplace_back(begin, end);
    });
    std::sort(shards.begin(), shards.end());
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0], (std::pair<std::size_t, std::size_t>{0, 3}));
    EXPECT_EQ(shards[1], (std::pair<std::size_t, std::size_t>{3, 6}));
    EXPECT_EQ(shards[2], (std::pair<std::size_t, std::size_t>{6, 10}));
  }
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int call = 0; call < 200; ++call) {
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) total.fetch_add(i);
    });
  }
  EXPECT_EQ(total.load(), 200ull * (63ull * 64ull / 2));
}

TEST(ThreadPool, SmallRangesAndEmptyRange) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 3);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { count.fetch_add(100); });
  EXPECT_EQ(count.load(), 3);  // empty shards may or may not be invoked; no work
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id body_thread;
  pool.parallel_for(5, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ThreadPool, ClampsNonPositiveWorkerCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.worker_count(), 1);
}

// ---------------------------------------------------------------------------
// Stateless probe path under concurrency
// ---------------------------------------------------------------------------

// Identical (tuple, time) probes must produce identical outcomes no matter
// which thread fires them or in what order — the determinism contract the
// parallel fleet engine is built on. Run under the tsan build this also
// proves the probe path is race-free.
TEST(ParallelProbes, ConcurrentProbesMatchSerialOutcomes) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  netsim::SimNetwork net(topo, /*seed=*/99);
  ServerId src = topo.servers()[0].id;
  ServerId dst = topo.servers()[40].id;

  constexpr int kProbes = 200;
  std::vector<netsim::ProbeOutcome> serial(kProbes);
  for (int i = 0; i < kProbes; ++i) {
    serial[i] = net.tcp_probe(src, dst, static_cast<std::uint16_t>(32768 + i), 33100,
                              netsim::ProbeSpec{}, millis(i));
  }

  std::vector<netsim::ProbeOutcome> concurrent(kProbes);
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Interleaved assignment: thread t fires probes t, t+4, t+8, ...
      for (int i = t; i < kProbes; i += kThreads) {
        concurrent[i] = net.tcp_probe(src, dst, static_cast<std::uint16_t>(32768 + i),
                                      33100, netsim::ProbeSpec{}, millis(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int i = 0; i < kProbes; ++i) {
    EXPECT_EQ(serial[i].success, concurrent[i].success) << "probe " << i;
    EXPECT_EQ(serial[i].rtt, concurrent[i].rtt) << "probe " << i;
  }
}

// ---------------------------------------------------------------------------
// Full-loop bit-identity: 1 worker vs N workers
// ---------------------------------------------------------------------------

struct SimSnapshot {
  std::uint64_t probes = 0;
  std::string records;
  std::vector<dsa::SlaRow> sla;
};

SimSnapshot run_simulation(int workers) {
  core::SimulationConfig cfg = core::small_test_config(1234);
  cfg.worker_threads = workers;
  core::PingmeshSimulation sim(cfg);
  sim.run_for(minutes(20));
  SimSnapshot snap;
  snap.probes = sim.total_probes();
  snap.records = agent::encode_batch(sim.records_between(0, sim.now() + 1));
  snap.sla = sim.db().sla_rows;
  return snap;
}

TEST(ParallelSimulation, WorkerCountDoesNotChangeResults) {
  SimSnapshot serial = run_simulation(1);
  SimSnapshot parallel = run_simulation(4);

  EXPECT_GT(serial.probes, 0u);
  EXPECT_EQ(serial.probes, parallel.probes);
  EXPECT_EQ(serial.records, parallel.records);  // byte-identical stored stream

  ASSERT_EQ(serial.sla.size(), parallel.sla.size());
  for (std::size_t i = 0; i < serial.sla.size(); ++i) {
    const dsa::SlaRow& a = serial.sla[i];
    const dsa::SlaRow& b = parallel.sla[i];
    EXPECT_EQ(a.window_start, b.window_start);
    EXPECT_EQ(a.window_end, b.window_end);
    EXPECT_EQ(a.scope, b.scope);
    EXPECT_EQ(a.scope_id, b.scope_id);
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.drop_signatures, b.drop_signatures);
    EXPECT_EQ(a.p50_ns, b.p50_ns);
    EXPECT_EQ(a.p99_ns, b.p99_ns);
  }
}

TEST(ParallelSimulation, WorkerThreadsAccessorReflectsPool) {
  core::SimulationConfig cfg = core::small_test_config(5);
  cfg.worker_threads = 3;
  core::PingmeshSimulation sim(cfg);
  EXPECT_EQ(sim.worker_threads(), 3);

  core::SimulationConfig serial_cfg = core::small_test_config(5);
  core::PingmeshSimulation serial_sim(serial_cfg);
  EXPECT_EQ(serial_sim.worker_threads(), 1);
}

}  // namespace
}  // namespace pingmesh

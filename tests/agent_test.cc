// Tests for the Pingmesh Agent: probe scheduling, the §3.4.2 safety
// features (hard limits, fail-closed, bounded memory), counters, records,
// and the rotating local log.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "agent/agent.h"
#include "agent/counters.h"
#include "agent/record.h"
#include "agent/rotating_log.h"

namespace pingmesh::agent {
namespace {

class FakeUploader final : public Uploader {
 public:
  bool upload(const RecordColumns& batch) override {
    ++attempts;
    if (fail_count > 0) {
      --fail_count;
      return false;
    }
    std::vector<LatencyRecord> rows = batch.to_records();
    uploaded.insert(uploaded.end(), rows.begin(), rows.end());
    return true;
  }

  int attempts = 0;
  int fail_count = 0;
  std::vector<LatencyRecord> uploaded;
};

controller::Pinglist make_pinglist(int targets, SimTime interval = seconds(30)) {
  controller::Pinglist pl;
  pl.server_name = "test-server";
  pl.server_ip = IpAddr(10, 0, 0, 1);
  pl.version = 1;
  pl.min_probe_interval = seconds(10);
  for (int i = 0; i < targets; ++i) {
    controller::PingTarget t;
    t.ip = IpAddr(10, 0, 1, static_cast<std::uint8_t>(i + 1));
    t.port = 33100;
    t.interval = interval;
    pl.targets.push_back(t);
  }
  return pl;
}

controller::FetchResult ok_fetch(controller::Pinglist pl) {
  return controller::FetchResult{controller::FetchStatus::kOk,
                                 std::make_shared<const controller::Pinglist>(std::move(pl))};
}

AgentConfig test_config() {
  AgentConfig cfg;
  cfg.pinglist_refresh = minutes(10);
  cfg.upload_interval = minutes(1);
  cfg.upload_batch_records = 1000;
  return cfg;
}

ProbeResult ok_result(SimTime rtt = micros(250)) {
  ProbeResult r;
  r.success = true;
  r.rtt = rtt;
  return r;
}

TEST(Agent, FetchesPinglistOnFirstTick) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  auto actions = agent.tick(0);
  EXPECT_TRUE(actions.fetch_pinglist);
  EXPECT_TRUE(actions.probes.empty());
  EXPECT_FALSE(agent.probing_active());
}

TEST(Agent, AdoptsPinglistAndProbes) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(5)), 0);
  EXPECT_TRUE(agent.probing_active());
  EXPECT_EQ(agent.target_count(), 5u);

  // Within one full interval from adoption, every target fires exactly once
  // (start times are staggered across the interval).
  std::size_t fired = 0;
  for (SimTime t = 0; t <= seconds(30); t += seconds(1)) {
    fired += agent.tick(t).probes.size();
  }
  EXPECT_EQ(fired, 5u);
}

TEST(Agent, RespectsPerTargetInterval) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1, seconds(30))), 0);
  std::size_t fired = 0;
  for (SimTime t = 0; t < seconds(301); t += seconds(1)) {
    fired += agent.tick(t).probes.size();
  }
  // ~300s / 30s interval = 10 probes (+-1 for stagger)
  EXPECT_GE(fired, 9u);
  EXPECT_LE(fired, 11u);
}

TEST(Agent, HardMinimumIntervalClamped) {
  // "The minimum probe interval between any two servers is limited to 10
  // seconds ... hard coded in the source code."
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1, seconds(1))), 0);  // asks for 1s!
  std::size_t fired = 0;
  for (SimTime t = 0; t < seconds(100); t += seconds(1)) {
    fired += agent.tick(t).probes.size();
  }
  EXPECT_LE(fired, 11u);  // 100s / 10s floor
}

TEST(Agent, PayloadCapClamped) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  controller::Pinglist pl = make_pinglist(1);
  pl.targets[0].kind = controller::ProbeKind::kTcpPayload;
  pl.targets[0].payload_bytes = 10 * 1024 * 1024;  // 10MB!
  agent.tick(0);
  agent.on_pinglist(ok_fetch(std::move(pl)), 0);
  std::vector<ProbeRequest> probes;
  for (SimTime t = 0; t <= seconds(30) && probes.empty(); t += seconds(1)) {
    auto a = agent.tick(t);
    probes = a.probes;
  }
  ASSERT_FALSE(probes.empty());
  EXPECT_EQ(probes[0].target.payload_bytes, kHardMaxPayloadBytes);
}

TEST(Agent, FreshSourcePortPerProbe) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(10)), 0);
  std::set<std::uint16_t> ports;
  std::size_t fired = 0;
  for (SimTime t = 0; t <= seconds(30); t += seconds(1)) {
    for (const auto& p : agent.tick(t).probes) {
      ports.insert(p.src_port);
      ++fired;
      EXPECT_GE(p.src_port, 32768);
    }
  }
  EXPECT_EQ(ports.size(), fired);
}

TEST(Agent, FailClosedAfterThreeUnreachableFetches) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(3)), 0);
  EXPECT_TRUE(agent.probing_active());

  controller::FetchResult unreachable{controller::FetchStatus::kUnreachable, nullptr};
  SimTime t = 0;
  for (int i = 0; i < 3; ++i) {
    t += minutes(10);
    agent.tick(t);
    agent.on_pinglist(unreachable, t);
  }
  EXPECT_FALSE(agent.probing_active());
  EXPECT_EQ(agent.target_count(), 0u);
  // No probes while failed closed.
  for (SimTime tt = t; tt < t + minutes(5); tt += seconds(5)) {
    EXPECT_TRUE(agent.tick(tt).probes.empty());
  }
}

TEST(Agent, TwoFailuresThenSuccessKeepsProbing) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(3)), 0);
  controller::FetchResult unreachable{controller::FetchStatus::kUnreachable, nullptr};
  agent.on_pinglist(unreachable, minutes(10));
  agent.on_pinglist(unreachable, minutes(20));
  EXPECT_TRUE(agent.probing_active());
  agent.on_pinglist(ok_fetch(make_pinglist(3)), minutes(30));
  EXPECT_TRUE(agent.probing_active());
  EXPECT_EQ(agent.consecutive_fetch_failures(), 0);
}

TEST(Agent, NoPinglistStopsImmediately) {
  // "if the controller is up but there is no pinglist file available, the
  // Pingmesh Agent will remove all its existing ping peers and stop."
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(3)), 0);
  EXPECT_TRUE(agent.probing_active());
  agent.on_pinglist(controller::FetchResult{controller::FetchStatus::kNoPinglist, nullptr},
                    minutes(10));
  EXPECT_FALSE(agent.probing_active());
}

TEST(Agent, RecoversAfterFailClosed) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(controller::FetchResult{controller::FetchStatus::kNoPinglist, nullptr},
                    0);
  EXPECT_FALSE(agent.probing_active());
  // Next periodic fetch succeeds -> probing resumes.
  auto actions = agent.tick(minutes(10));
  EXPECT_TRUE(actions.fetch_pinglist);
  agent.on_pinglist(ok_fetch(make_pinglist(2)), minutes(10));
  EXPECT_TRUE(agent.probing_active());
}

TEST(Agent, UploadsOnBatchThreshold) {
  FakeUploader up;
  AgentConfig cfg = test_config();
  cfg.upload_batch_records = 10;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), cfg, up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  req.src_port = 40000;
  for (int i = 0; i < 10; ++i) agent.on_probe_result(req, ok_result(), seconds(i));
  EXPECT_EQ(up.uploaded.size(), 10u);
  EXPECT_EQ(agent.buffered_records(), 0u);
  EXPECT_EQ(agent.uploads_ok(), 1u);
}

TEST(Agent, UploadsOnTimer) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  agent.on_probe_result(req, ok_result(), seconds(5));
  EXPECT_EQ(up.uploaded.size(), 0u);
  agent.tick(minutes(2));  // upload_interval = 1min
  EXPECT_EQ(up.uploaded.size(), 1u);
}

TEST(Agent, RetriesThenDiscards) {
  // "If a server cannot upload its latency data, it will retry several
  // times. After that it will stop trying and discard the in-memory data."
  FakeUploader up;
  AgentConfig cfg = test_config();
  cfg.upload_batch_records = 5;
  cfg.upload_max_retries = 3;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), cfg, up);
  up.fail_count = 1000;  // uploader hard down
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  SimTime t = 0;
  for (int i = 0; i < 40; ++i) {
    t += minutes(2);
    agent.on_probe_result(req, ok_result(), t);
    agent.tick(t);
  }
  EXPECT_GT(agent.records_discarded(), 0u);
  EXPECT_LE(agent.buffered_records(), cfg.upload_batch_records + 1);
  EXPECT_GT(agent.uploads_failed(), 0u);
}

TEST(Agent, MemoryCapShedsOldest) {
  FakeUploader up;
  AgentConfig cfg = test_config();
  cfg.max_buffered_records = 50;
  cfg.upload_batch_records = 1000000;  // never batch-upload
  cfg.upload_interval = hours(10);     // never timer-upload
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), cfg, up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  for (int i = 0; i < 200; ++i) agent.on_probe_result(req, ok_result(), seconds(i));
  EXPECT_LE(agent.buffered_records(), 50u);
  EXPECT_GE(agent.records_discarded(), 150u);
}

TEST(Agent, FlushUploadsRemainder) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  agent.on_probe_result(req, ok_result(), seconds(1));
  agent.flush(seconds(2));
  EXPECT_EQ(up.uploaded.size(), 1u);
}

TEST(Agent, CountersTrackDropSignatures) {
  FakeUploader up;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), test_config(), up);
  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  for (int i = 0; i < 96; ++i) agent.on_probe_result(req, ok_result(micros(300)), seconds(i));
  agent.on_probe_result(req, ok_result(seconds(3) + micros(300)), seconds(100));
  agent.on_probe_result(req, ok_result(seconds(9) + micros(300)), seconds(101));
  ProbeResult failed;
  agent.on_probe_result(req, failed, seconds(102));

  CounterSnapshot snap = agent.collect_counters(seconds(110));
  EXPECT_EQ(snap.probes, 99u);
  EXPECT_EQ(snap.successes, 98u);
  EXPECT_EQ(snap.failures, 1u);
  EXPECT_EQ(snap.probes_3s, 1u);
  EXPECT_EQ(snap.probes_9s, 1u);
  EXPECT_NEAR(snap.drop_rate(), 2.0 / 98.0, 1e-9);
  EXPECT_GT(snap.p50_ns, 0);

  // collect() resets the window.
  CounterSnapshot next = agent.collect_counters(seconds(120));
  EXPECT_EQ(next.probes, 0u);
}

TEST(SynDropSignature, Bands) {
  EXPECT_EQ(syn_drop_signature(micros(250)), 0);
  EXPECT_EQ(syn_drop_signature(seconds(3) + micros(400)), 1);
  EXPECT_EQ(syn_drop_signature(seconds(9) + micros(400)), 2);
  EXPECT_EQ(syn_drop_signature(seconds(1)), 0);
  EXPECT_EQ(syn_drop_signature(seconds(7)), 0);
  EXPECT_EQ(syn_drop_signature(seconds(20)), 0);
}

TEST(Record, CsvRoundTrip) {
  LatencyRecord r;
  r.timestamp = millis(1234);
  r.src_ip = IpAddr(10, 0, 0, 1);
  r.dst_ip = IpAddr(10, 1, 0, 2);
  r.src_port = 40123;
  r.dst_port = 33100;
  r.kind = controller::ProbeKind::kTcpPayload;
  r.qos = controller::QosClass::kLow;
  r.success = true;
  r.rtt = micros(268);
  r.payload_success = true;
  r.payload_rtt = micros(326);
  r.payload_bytes = 1000;

  auto back = LatencyRecord::from_csv_row(r.to_csv_row());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->timestamp, r.timestamp);
  EXPECT_EQ(back->src_ip, r.src_ip);
  EXPECT_EQ(back->dst_ip, r.dst_ip);
  EXPECT_EQ(back->src_port, r.src_port);
  EXPECT_EQ(back->kind, r.kind);
  EXPECT_EQ(back->qos, r.qos);
  EXPECT_EQ(back->success, r.success);
  EXPECT_EQ(back->rtt, r.rtt);
  EXPECT_EQ(back->payload_rtt, r.payload_rtt);
  EXPECT_EQ(back->payload_bytes, r.payload_bytes);
}

TEST(Record, BatchRoundTripAndMalformedRows) {
  std::vector<LatencyRecord> batch(3);
  batch[0].rtt = 1;
  batch[1].rtt = 2;
  batch[2].rtt = 3;
  std::string csv_data = encode_batch(batch);
  csv_data += "not,a,valid,row\n";
  auto decoded = decode_batch(csv_data);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[2].rtt, 3);
}

TEST(Record, RejectsOutOfRangeEnums) {
  LatencyRecord r;
  auto row = r.to_csv_row();
  row[5] = "9";  // kind out of range
  EXPECT_FALSE(LatencyRecord::from_csv_row(row).has_value());
}

TEST(Agent, LocalLogAppendsEachRecordExactlyOnceAcrossRetries) {
  // Regression: perform_upload appended the whole batch to the local log on
  // *every* attempt, so a batch that survived N failed uploads landed in
  // the log N+1 times. The high-water mark must keep it to exactly once.
  std::string path = ::testing::TempDir() + "/pingmesh_agent_locallog_test.csv";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");

  FakeUploader up;
  AgentConfig cfg = test_config();
  cfg.upload_batch_records = 5;
  cfg.upload_max_retries = 5;
  cfg.local_log_path = path;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), cfg, up);
  up.fail_count = 2;

  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  req.src_port = 40000;
  // The 5th record fills the batch -> attempt 1 (fails); the two timer
  // ticks drive attempt 2 (fails) and attempt 3 (succeeds).
  for (int i = 0; i < 5; ++i) agent.on_probe_result(req, ok_result(), seconds(i));
  agent.tick(minutes(2));
  agent.tick(minutes(4));
  ASSERT_EQ(up.uploaded.size(), 5u);
  EXPECT_EQ(agent.uploads_failed(), 2u);
  EXPECT_EQ(agent.uploads_ok(), 1u);

  std::ifstream in(path, std::ios::binary);
  std::stringstream contents;
  contents << in.rdbuf();
  std::vector<LatencyRecord> logged = decode_batch(contents.str());
  EXPECT_EQ(logged.size(), 5u);  // 15 before the fix (5 records x 3 attempts)
  EXPECT_EQ(agent.records_logged(), 5u);
  EXPECT_EQ(agent.local_log_dup_avoided(), 10u);
  ASSERT_EQ(logged.size(), up.uploaded.size());
  for (std::size_t i = 0; i < logged.size(); ++i) {
    EXPECT_EQ(logged[i].timestamp, up.uploaded[i].timestamp) << i;
  }

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
}

TEST(Agent, LocalLogCoversRecordsBufferedAfterAFailedAttempt) {
  // Records that arrive between retries extend the unlogged suffix: they
  // must be logged exactly once too, not skipped and not duplicated.
  std::string path = ::testing::TempDir() + "/pingmesh_agent_locallog_suffix.csv";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");

  FakeUploader up;
  AgentConfig cfg = test_config();
  cfg.upload_batch_records = 3;
  cfg.upload_max_retries = 5;
  cfg.local_log_path = path;
  PingmeshAgent agent("s", IpAddr(10, 0, 0, 1), cfg, up);
  up.fail_count = 2;

  agent.tick(0);
  agent.on_pinglist(ok_fetch(make_pinglist(1)), 0);
  ProbeRequest req;
  req.target = make_pinglist(1).targets[0];
  for (int i = 0; i < 3; ++i) agent.on_probe_result(req, ok_result(), seconds(i));
  // Attempt 1 failed (3 records logged). Each later arrival re-fills the
  // batch past the threshold and retries: attempt 2 fails (only the one
  // new record may hit the log), attempt 3 succeeds with all 5.
  agent.on_probe_result(req, ok_result(), seconds(10));
  agent.on_probe_result(req, ok_result(), seconds(11));
  ASSERT_EQ(up.uploaded.size(), 5u);

  std::ifstream in(path, std::ios::binary);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(decode_batch(contents.str()).size(), 5u);
  EXPECT_EQ(agent.records_logged(), 5u);

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
}

TEST(RotatingLog, CapsSizeWithRotation) {
  std::string path = ::testing::TempDir() + "/pingmesh_rotlog_test.csv";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  RotatingLog log(path, 1000);
  std::string blob(400, 'x');
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(log.append(blob));
  // Current file never exceeds cap by more than one blob.
  EXPECT_LE(std::filesystem::file_size(path), 1200u);
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
}

TEST(RotatingLog, DisabledWhenNoPath) {
  RotatingLog log("", 1000);
  EXPECT_FALSE(log.enabled());
  EXPECT_TRUE(log.append("data"));  // no-op, no error
}

}  // namespace
}  // namespace pingmesh::agent

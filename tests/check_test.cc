// Contract-macro semantics: CHECK aborts in every build, DCHECK follows
// the build configuration (off under plain NDEBUG, on under
// PINGMESH_FORCE_DCHECK — the sanitizer configurations), and neither
// evaluates its condition more than once.
#include "common/check.h"

#include <gtest/gtest.h>

namespace {

TEST(CheckMacros, PassingCheckIsSilent) {
  int evals = 0;
  PINGMESH_CHECK([&] { ++evals; return true; }());
  PINGMESH_CHECK_MSG([&] { ++evals; return true; }(), "never shown");
  EXPECT_EQ(evals, 2);  // exactly once each
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(PINGMESH_CHECK(1 + 1 == 3), "PINGMESH_CHECK failed");
}

TEST(CheckMacrosDeathTest, FailingCheckMsgIncludesMessageAndExpression) {
  EXPECT_DEATH(PINGMESH_CHECK_MSG(false, "ring index out of range"),
               "false.*ring index out of range");
}

TEST(CheckMacros, DcheckMatchesBuildConfiguration) {
  int evals = 0;
#if defined(NDEBUG) && !defined(PINGMESH_FORCE_DCHECK)
  PINGMESH_DCHECK([&] { ++evals; return false; }());  // compiled, not evaluated
  EXPECT_EQ(evals, 0);
#else
  PINGMESH_DCHECK([&] { ++evals; return true; }());
  EXPECT_EQ(evals, 1);
  EXPECT_DEATH(PINGMESH_DCHECK(false), "PINGMESH_CHECK failed");
#endif
}

TEST(CheckMacros, WorksInsideExpressionsAndBranches) {
  // Macro must expand to a single void expression: legal in a comma
  // expression and an un-braced else branch.
  bool flag = true;
  if (flag)
    PINGMESH_CHECK(flag);
  else
    PINGMESH_CHECK(!flag);
  (PINGMESH_CHECK(true), (void)0);
}

}  // namespace

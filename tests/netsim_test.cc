// Tests for the network simulator: ECMP routing, fault injection, the TCP
// connect model, and the statistical behaviour of the latency/drop models.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/stats.h"
#include "netsim/ecmp.h"
#include "netsim/fault.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace pingmesh::netsim {
namespace {

topo::Topology two_dcs() {
  return topo::Topology::build(
      {topo::small_dc_spec("DC1", "US West"), topo::small_dc_spec("DC2", "Asia")});
}

FiveTuple tuple_between(const topo::Topology& t, ServerId a, ServerId b,
                        std::uint16_t sport = 40000, std::uint16_t dport = 33100) {
  return FiveTuple{t.server(a).ip, t.server(b).ip, sport, dport, 6};
}

// ---------------------------------------------------------------------------
// EcmpRouter
// ---------------------------------------------------------------------------

TEST(EcmpRouter, LoopbackIsEmpty) {
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  ServerId a = t.servers()[0].id;
  Path p = router.resolve(tuple_between(t, a, a));
  EXPECT_TRUE(p.hops.empty());
}

TEST(EcmpRouter, IntraPodPathIsOneTor) {
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  const topo::Pod& pod = t.pods()[0];
  Path p = router.resolve(tuple_between(t, pod.servers[0], pod.servers[1]));
  ASSERT_EQ(p.hops.size(), 1u);
  EXPECT_EQ(p.hops[0].sw, pod.tor);
  EXPECT_FALSE(p.cross_pod);
}

TEST(EcmpRouter, IntraPodsetPathShape) {
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  const topo::Pod& pod_a = t.pods()[0];
  const topo::Pod& pod_b = t.pods()[1];
  ASSERT_EQ(pod_a.podset, pod_b.podset);
  Path p = router.resolve(tuple_between(t, pod_a.servers[0], pod_b.servers[0]));
  ASSERT_EQ(p.hops.size(), 3u);
  EXPECT_EQ(p.hops[0].sw, pod_a.tor);
  EXPECT_EQ(t.sw(p.hops[1].sw).kind, topo::SwitchKind::kLeaf);
  EXPECT_EQ(p.hops[2].sw, pod_b.tor);
  EXPECT_TRUE(p.cross_pod);
  EXPECT_FALSE(p.cross_podset);
}

TEST(EcmpRouter, IntraDcPathShape) {
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  // pods 0..3 are podset 0; pods 4..7 podset 1 (same DC)
  const topo::Pod& pod_a = t.pods()[0];
  const topo::Pod& pod_b = t.pods()[4];
  ASSERT_NE(pod_a.podset, pod_b.podset);
  ASSERT_EQ(pod_a.dc, pod_b.dc);
  Path p = router.resolve(tuple_between(t, pod_a.servers[0], pod_b.servers[0]));
  ASSERT_EQ(p.hops.size(), 5u);
  EXPECT_EQ(t.sw(p.hops[2].sw).kind, topo::SwitchKind::kSpine);
  EXPECT_TRUE(p.cross_podset);
  EXPECT_FALSE(p.cross_dc);
}

TEST(EcmpRouter, CrossDcPathShape) {
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  ServerId a = t.dcs()[0].servers[0];
  ServerId b = t.dcs()[1].servers[0];
  Path p = router.resolve(tuple_between(t, a, b));
  ASSERT_EQ(p.hops.size(), 8u);
  EXPECT_TRUE(p.cross_dc);
  EXPECT_EQ(t.sw(p.hops[3].sw).kind, topo::SwitchKind::kBorder);
  EXPECT_EQ(t.sw(p.hops[4].sw).kind, topo::SwitchKind::kBorder);
  EXPECT_NE(t.sw(p.hops[3].sw).dc, t.sw(p.hops[4].sw).dc);
}

TEST(EcmpRouter, DeterministicPerTuple) {
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  FiveTuple tup = tuple_between(t, t.pods()[0].servers[0], t.pods()[4].servers[0]);
  Path p1 = router.resolve(tup);
  Path p2 = router.resolve(tup);
  ASSERT_EQ(p1.hops.size(), p2.hops.size());
  for (std::size_t i = 0; i < p1.hops.size(); ++i) EXPECT_EQ(p1.hops[i].sw, p2.hops[i].sw);
}

TEST(EcmpRouter, SourcePortSpreadsOverSpines) {
  // "a new TCP source port ... to explore the multi-path nature of the
  // network as much as possible" — varying ports must hit several spines.
  topo::Topology t = two_dcs();
  EcmpRouter router(t);
  ServerId a = t.pods()[0].servers[0];
  ServerId b = t.pods()[4].servers[0];
  std::set<std::uint32_t> spines;
  for (std::uint16_t port = 32768; port < 32768 + 256; ++port) {
    Path p = router.resolve(tuple_between(t, a, b, port));
    spines.insert(p.hops[2].sw.value);
  }
  EXPECT_GE(spines.size(), 3u);  // 4 spines in the small DC
}

TEST(EcmpRouter, EcmpIndexUniform) {
  // No choice should be starved across the port space.
  topo::Topology t = two_dcs();
  ServerId a = t.pods()[0].servers[0];
  ServerId b = t.pods()[4].servers[0];
  std::map<std::size_t, int> counts;
  const int kPorts = 4096;
  for (int i = 0; i < kPorts; ++i) {
    FiveTuple tup = tuple_between(t, a, b, static_cast<std::uint16_t>(20000 + i));
    ++counts[EcmpRouter::ecmp_index(tup, 0x5b1e, 8)];
  }
  for (const auto& [idx, n] : counts) {
    EXPECT_GT(n, kPorts / 8 / 2) << "choice " << idx << " starved";
  }
  EXPECT_EQ(counts.size(), 8u);
}

TEST(EcmpRouter, ReverseTupleSwapsEndpoints) {
  FiveTuple f{IpAddr(10, 0, 0, 1), IpAddr(10, 0, 0, 2), 1111, 2222, 6};
  FiveTuple r = reverse(f);
  EXPECT_EQ(r.src_ip, f.dst_ip);
  EXPECT_EQ(r.dst_ip, f.src_ip);
  EXPECT_EQ(r.src_port, f.dst_port);
  EXPECT_EQ(r.dst_port, f.src_port);
}

// Property sweep: structural invariants of every resolved path, across
// topology shapes and random endpoint pairs.
class PathInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PathInvariantTest, PathsAreStructurallyValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<topo::DcSpec> specs;
  int ndc = 1 + GetParam() % 3;
  for (int d = 0; d < ndc; ++d) {
    topo::DcSpec spec = topo::small_dc_spec("D" + std::to_string(d), "r");
    spec.podsets = 1 + static_cast<int>(rng.uniform_u32(3));
    spec.pods_per_podset = 1 + static_cast<int>(rng.uniform_u32(5));
    spec.servers_per_pod = 1 + static_cast<int>(rng.uniform_u32(6));
    spec.leaves_per_podset = 1 + static_cast<int>(rng.uniform_u32(3));
    spec.spines = 1 + static_cast<int>(rng.uniform_u32(6));
    specs.push_back(spec);
  }
  topo::Topology t = topo::Topology::build(specs);
  EcmpRouter router(t);

  auto n = static_cast<std::uint32_t>(t.server_count());
  for (int trial = 0; trial < 200; ++trial) {
    ServerId a{rng.uniform_u32(n)};
    ServerId b{rng.uniform_u32(n)};
    FiveTuple tup = tuple_between(t, a, b, static_cast<std::uint16_t>(32768 + trial));
    Path p = router.resolve(tup);
    const topo::Server& src = t.server(a);
    const topo::Server& dst = t.server(b);
    if (a == b) {
      EXPECT_TRUE(p.hops.empty());
      continue;
    }
    // Ends: first hop is the source ToR, last is the destination ToR.
    ASSERT_FALSE(p.hops.empty());
    EXPECT_EQ(p.hops.front().sw, src.tor);
    EXPECT_EQ(p.hops.back().sw, dst.tor);
    // Flags match topology relations.
    EXPECT_EQ(p.cross_pod, !(src.pod == dst.pod));
    EXPECT_EQ(p.cross_podset, !(src.podset == dst.podset));
    EXPECT_EQ(p.cross_dc, !(src.dc == dst.dc));
    // Tier sequence: Tor [Leaf [Spine [Border Border Spine] Leaf] Tor],
    // encoded by hop count given the relation.
    std::size_t expected = 1;
    if (p.cross_pod) expected = 3;
    if (p.cross_podset) expected = 5;
    if (p.cross_dc) expected = 8;
    EXPECT_EQ(p.hops.size(), expected);
    // Every hop is a real switch in a DC on the way.
    for (const Hop& hop : p.hops) {
      const topo::Switch& sw = t.sw(hop.sw);
      EXPECT_TRUE(sw.dc == src.dc || sw.dc == dst.dc);
      // Leaves on the path belong to an endpoint's podset.
      if (sw.kind == topo::SwitchKind::kLeaf) {
        EXPECT_TRUE(sw.podset == src.podset || sw.podset == dst.podset);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PathInvariantTest, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, BlackholeDeterministicPerTuple) {
  FaultInjector fi;
  SwitchId sw{3};
  fi.add_blackhole(sw, BlackholeMode::kSrcDstPair, 0.5, 0, FaultInjector::kForever, 99);
  FiveTuple t1{IpAddr(10, 0, 0, 1), IpAddr(10, 0, 1, 2), 40000, 33100, 6};
  bool first = fi.blackholes_tuple(sw, t1, seconds(1));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fi.blackholes_tuple(sw, t1, seconds(i)), first);
}

TEST(FaultInjector, SrcDstModeIgnoresPorts) {
  FaultInjector fi;
  SwitchId sw{3};
  fi.add_blackhole(sw, BlackholeMode::kSrcDstPair, 0.5);
  FiveTuple base{IpAddr(10, 0, 0, 1), IpAddr(10, 0, 1, 2), 40000, 33100, 6};
  bool flag = fi.blackholes_tuple(sw, base, 0);
  for (std::uint16_t p = 1000; p < 1100; ++p) {
    FiveTuple t = base;
    t.src_port = p;
    EXPECT_EQ(fi.blackholes_tuple(sw, t, 0), flag);
  }
}

TEST(FaultInjector, FiveTupleModeVariesWithPorts) {
  FaultInjector fi;
  SwitchId sw{3};
  fi.add_blackhole(sw, BlackholeMode::kFiveTuple, 0.5);
  FiveTuple base{IpAddr(10, 0, 0, 1), IpAddr(10, 0, 1, 2), 40000, 33100, 6};
  int holes = 0;
  for (std::uint16_t p = 1000; p < 1512; ++p) {
    FiveTuple t = base;
    t.src_port = p;
    if (fi.blackholes_tuple(sw, t, 0)) ++holes;
  }
  EXPECT_GT(holes, 128);  // ~50% of 512
  EXPECT_LT(holes, 384);
}

TEST(FaultInjector, FractionControlsPatternSpace) {
  FaultInjector fi;
  SwitchId sw{1};
  fi.add_blackhole(sw, BlackholeMode::kSrcDstPair, 0.1);
  int holes = 0;
  const int kPairs = 5000;
  for (int i = 0; i < kPairs; ++i) {
    FiveTuple t{IpAddr(static_cast<std::uint32_t>(0x0a000000 + i)),
                IpAddr(static_cast<std::uint32_t>(0x0a010000 + i * 7)), 40000, 33100, 6};
    if (fi.blackholes_tuple(sw, t, 0)) ++holes;
  }
  EXPECT_NEAR(static_cast<double>(holes) / kPairs, 0.1, 0.03);
}

TEST(FaultInjector, TimeWindows) {
  FaultInjector fi;
  SwitchId sw{2};
  fi.add_silent_random_drop(sw, 0.5, seconds(10), seconds(20));
  EXPECT_FALSE(fi.has_active_fault(sw, seconds(5)));
  EXPECT_TRUE(fi.has_active_fault(sw, seconds(10)));
  EXPECT_TRUE(fi.has_active_fault(sw, seconds(19)));
  EXPECT_FALSE(fi.has_active_fault(sw, seconds(20)));
}

TEST(FaultInjector, EffectsAggregate) {
  FaultInjector fi;
  SwitchId sw{5};
  fi.add_silent_random_drop(sw, 0.01);
  fi.add_congestion(sw, 4.0, 0.002);
  fi.add_fcs_errors(sw, 0.001);
  HopEffect e = fi.hop_effect(sw, FiveTuple{}, 0);
  EXPECT_FALSE(e.blackholed);
  EXPECT_NEAR(e.extra_drop_prob, 0.012, 1e-12);
  EXPECT_DOUBLE_EQ(e.queue_scale, 4.0);
  EXPECT_NEAR(e.per_kb_drop, 0.001, 1e-12);
}

TEST(FaultInjector, ReloadClearsOnlyBlackholes) {
  FaultInjector fi;
  SwitchId sw{4};
  fi.add_blackhole(sw, BlackholeMode::kSrcDstPair, 1.0);
  fi.add_silent_random_drop(sw, 0.01);
  EXPECT_EQ(fi.clear_blackholes_on(sw), 1);
  EXPECT_TRUE(fi.has_active_fault(sw, 0));  // silent drop remains
  EXPECT_EQ(fi.clear_all_on(sw), 1);
  EXPECT_FALSE(fi.has_active_fault(sw, 0));
}

TEST(FaultInjector, PodsetDown) {
  FaultInjector fi;
  fi.add_podset_down(PodsetId{1}, seconds(5), seconds(10));
  EXPECT_FALSE(fi.podset_down(PodsetId{1}, seconds(4)));
  EXPECT_TRUE(fi.podset_down(PodsetId{1}, seconds(7)));
  EXPECT_FALSE(fi.podset_down(PodsetId{2}, seconds(7)));
}

TEST(FaultInjector, RemoveById) {
  FaultInjector fi;
  SwitchId sw{9};
  FaultId id = fi.add_silent_random_drop(sw, 0.1);
  EXPECT_TRUE(fi.has_active_fault(sw, 0));
  fi.remove(id);
  EXPECT_FALSE(fi.has_active_fault(sw, 0));
}

TEST(FaultInjector, InvalidArgsThrow) {
  FaultInjector fi;
  EXPECT_THROW(fi.add_blackhole(SwitchId{1}, BlackholeMode::kSrcDstPair, 0.0),
               std::invalid_argument);
  EXPECT_THROW(fi.add_blackhole(SwitchId{1}, BlackholeMode::kSrcDstPair, 1.5),
               std::invalid_argument);
  EXPECT_THROW(fi.add_silent_random_drop(SwitchId{1}, 0.0), std::invalid_argument);
  EXPECT_THROW(fi.add_congestion(SwitchId{1}, 0.5, 0.0), std::invalid_argument);
}

TEST(FaultInjector, BlackholedSwitchListing) {
  FaultInjector fi;
  fi.add_blackhole(SwitchId{1}, BlackholeMode::kSrcDstPair, 0.5);
  fi.add_blackhole(SwitchId{2}, BlackholeMode::kFiveTuple, 0.5, seconds(100));
  auto now_list = fi.blackholed_switches(0);
  ASSERT_EQ(now_list.size(), 1u);
  EXPECT_EQ(now_list[0], SwitchId{1});
  EXPECT_EQ(fi.blackholed_switches(seconds(200)).size(), 2u);
}

// ---------------------------------------------------------------------------
// SimNetwork
// ---------------------------------------------------------------------------

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : topo_(two_dcs()), net_(topo_, 1234) {}

  ServerId server(std::size_t pod, std::size_t idx) const {
    return topo_.pods()[pod].servers[idx];
  }

  topo::Topology topo_;
  SimNetwork net_;
};

TEST_F(SimNetworkTest, CleanProbeSucceedsQuickly) {
  ProbeOutcome out = net_.tcp_probe(server(0, 0), server(0, 1), 40000, 33100, {}, 0);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.syn_transmissions, 1);
  EXPECT_GT(out.rtt, micros(50));
  EXPECT_LT(out.rtt, seconds(1));
}

TEST_F(SimNetworkTest, IntraPodMedianAroundPaperValue) {
  // Paper (Fig 4c): DC1 intra-pod P50 = 216us. Band-check 120..350us.
  std::vector<double> rtts;
  for (int i = 0; i < 4000; ++i) {
    ProbeOutcome out = net_.tcp_probe(server(0, 0), server(0, 1),
                                      static_cast<std::uint16_t>(32768 + i), 33100, {}, 0);
    if (out.success && out.syn_transmissions == 1) {
      rtts.push_back(static_cast<double>(out.rtt));
    }
  }
  double p50 = exact_quantile(rtts, 0.5);
  EXPECT_GT(p50, 120e3);
  EXPECT_LT(p50, 350e3);
}

TEST_F(SimNetworkTest, InterPodAddsTensOfMicroseconds) {
  // Paper: P50 difference intra- vs inter-pod is ~52us (small queuing).
  std::vector<double> intra, inter;
  for (int i = 0; i < 6000; ++i) {
    auto p1 = net_.tcp_probe(server(0, 0), server(0, 1),
                             static_cast<std::uint16_t>(32768 + i), 33100, {}, 0);
    auto p2 = net_.tcp_probe(server(0, 0), server(4, 1),
                             static_cast<std::uint16_t>(32768 + i), 33100, {}, 0);
    if (p1.success && p1.syn_transmissions == 1) intra.push_back(static_cast<double>(p1.rtt));
    if (p2.success && p2.syn_transmissions == 1) inter.push_back(static_cast<double>(p2.rtt));
  }
  double d = exact_quantile(inter, 0.5) - exact_quantile(intra, 0.5);
  EXPECT_GT(d, 15e3);   // at least ~15us
  EXPECT_LT(d, 200e3);  // well under 200us
}

TEST_F(SimNetworkTest, PayloadRttExceedsConnectRtt) {
  ProbeSpec spec;
  spec.payload_bytes = 1000;
  std::vector<double> connect, payload;
  for (int i = 0; i < 3000; ++i) {
    auto out = net_.tcp_probe(server(0, 0), server(1, 0),
                              static_cast<std::uint16_t>(32768 + i), 33100, spec, 0);
    if (out.success && out.payload_success && out.syn_transmissions == 1 &&
        out.payload_rtt < seconds(1)) {
      connect.push_back(static_cast<double>(out.rtt));
      payload.push_back(static_cast<double>(out.payload_rtt));
    }
  }
  EXPECT_GT(exact_quantile(payload, 0.5), exact_quantile(connect, 0.5));
}

TEST_F(SimNetworkTest, SynDropGives3sSignature) {
  // 30% random drop at the ToR: many probes should carry the 3s signature.
  SwitchId tor = topo_.pods()[0].tor;
  net_.faults().add_silent_random_drop(tor, 0.3);
  int sig3 = 0, sig9 = 0, clean = 0, fail = 0;
  for (int i = 0; i < 2000; ++i) {
    auto out = net_.tcp_probe(server(0, 0), server(0, 1),
                              static_cast<std::uint16_t>(32768 + i), 33100, {}, 0);
    if (!out.success) {
      ++fail;
      continue;
    }
    if (out.rtt >= seconds(8)) {
      ++sig9;
    } else if (out.rtt >= millis(2500)) {
      ++sig3;
    } else {
      ++clean;
    }
  }
  // Two packets cross the ToR; p(probe has >=1 drop) ~ 1-(0.7)^2 = 0.51.
  EXPECT_GT(sig3, 400);
  EXPECT_GT(sig9, 50);
  EXPECT_GT(clean, 400);
  // All three SYNs dropped: 0.51^3 ~ 13%.
  EXPECT_GT(fail, 100);
}

TEST_F(SimNetworkTest, BlackholeKillsConnectionDeterministically) {
  SwitchId tor = topo_.pods()[0].tor;
  net_.faults().add_blackhole(tor, BlackholeMode::kSrcDstPair, 1.0);
  for (int i = 0; i < 20; ++i) {
    auto out = net_.tcp_probe(server(0, 0), server(0, 1),
                              static_cast<std::uint16_t>(32768 + i), 33100, {}, 0);
    EXPECT_FALSE(out.success);
    EXPECT_TRUE(out.hit_blackhole);
    EXPECT_EQ(out.first_drop_switch, tor);
    EXPECT_EQ(out.syn_transmissions, 3);  // all retries exhausted
  }
}

TEST_F(SimNetworkTest, PodsetDownFailsProbesBothWays) {
  PodsetId ps = topo_.pods()[0].podset;
  net_.faults().add_podset_down(ps, 0, FaultInjector::kForever);
  EXPECT_FALSE(net_.server_up(server(0, 0), 0));
  // Probe into the dead podset from a live one (pod 4 is podset 1).
  auto out = net_.tcp_probe(server(4, 0), server(0, 0), 40000, 33100, {}, 0);
  EXPECT_FALSE(out.success);
}

TEST_F(SimNetworkTest, CrossDcLatencyIncludesWan) {
  WanProfile wan;
  wan.propagation_ms_oneway = 30.0;
  net_.set_wan_profile(DcId{0}, DcId{1}, wan);
  ServerId a = topo_.dcs()[0].servers[0];
  ServerId b = topo_.dcs()[1].servers[0];
  auto out = net_.tcp_probe(a, b, 40000, 33100, {}, 0);
  ASSERT_TRUE(out.success);
  EXPECT_GT(out.rtt, millis(60));   // 2 x 30ms propagation
  EXPECT_LT(out.rtt, millis(200));
}

TEST_F(SimNetworkTest, BaselineDropRateInPaperBand) {
  // §4.2: normal-condition drop rates live in 1e-4..1e-5. Estimate the
  // probe-level drop frequency for inter-pod traffic. Each probe launches at
  // a distinct time: outcomes are a pure function of (tuple, launch time),
  // so a repeated (tuple, time) pair would replay the identical packet
  // rather than contribute an independent trial.
  std::uint64_t probes = 0, dropped = 0;
  for (int i = 0; i < 300000; ++i) {
    auto out = net_.tcp_probe(server(0, i % 8), server(4, (i + 1) % 8),
                              static_cast<std::uint16_t>(32768 + (i % 28000)), 33100, {},
                              millis(i));
    ++probes;
    if (!out.success || out.syn_transmissions > 1) ++dropped;
  }
  double rate = static_cast<double>(dropped) / static_cast<double>(probes);
  EXPECT_GT(rate, 5e-6);
  EXPECT_LT(rate, 3e-4);
}

TEST_F(SimNetworkTest, TracerouteWalksThePath) {
  ServerId a = server(0, 0);
  ServerId b = server(4, 0);
  FiveTuple tup{topo_.server(a).ip, topo_.server(b).ip, 41000, 33100, 6};
  Path expected = net_.router().resolve(tup);
  for (std::size_t ttl = 1; ttl <= expected.hops.size(); ++ttl) {
    auto hop = net_.traceroute_hop(tup, static_cast<int>(ttl), 0);
    ASSERT_TRUE(hop.has_value()) << "ttl=" << ttl;
    EXPECT_EQ(*hop, expected.hops[ttl - 1].sw);
  }
  EXPECT_FALSE(net_.traceroute_hop(tup, static_cast<int>(expected.hops.size()) + 1, 0));
}

TEST_F(SimNetworkTest, GroundTruthAttributesDropSwitch) {
  SwitchId spine = topo_.dcs()[0].spines[0];
  net_.faults().add_silent_random_drop(spine, 1.0);  // drop everything it carries
  int attributed = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    auto out = net_.tcp_probe(server(0, 0), server(4, 0),
                              static_cast<std::uint16_t>(32768 + i), 33100, {}, 0);
    ++total;
    if (out.first_drop_switch == spine) ++attributed;
  }
  // 4 spines: ~1/4 of tuples ride the faulty one and always record it.
  EXPECT_GT(attributed, total / 10);
}

TEST_F(SimNetworkTest, SeedReproducibility) {
  SimNetwork n1(topo_, 777);
  SimNetwork n2(topo_, 777);
  for (int i = 0; i < 100; ++i) {
    auto a = n1.tcp_probe(server(0, 0), server(1, 0),
                          static_cast<std::uint16_t>(40000 + i), 33100, {}, 0);
    auto b = n2.tcp_probe(server(0, 0), server(1, 0),
                          static_cast<std::uint16_t>(40000 + i), 33100, {}, 0);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.rtt, b.rtt);
  }
}

TEST_F(SimNetworkTest, HeavierProfileHasFatterTail) {
  SimNetwork hot(topo_, 99);
  hot.set_dc_profile(DcId{0}, DcProfile::throughput_intensive());
  SimNetwork cool(topo_, 99);
  cool.set_dc_profile(DcId{0}, DcProfile::lightly_loaded());
  auto tail = [&](SimNetwork& n) {
    std::vector<double> rtts;
    for (int i = 0; i < 60000; ++i) {
      auto out = n.tcp_probe(server(0, 0), server(1, 0),
                             static_cast<std::uint16_t>(32768 + (i % 28000)), 33100, {}, 0);
      if (out.success && out.syn_transmissions == 1) {
        rtts.push_back(static_cast<double>(out.rtt));
      }
    }
    return exact_quantile(rtts, 0.9999);
  };
  EXPECT_GT(tail(hot), 2.0 * tail(cool));
}

}  // namespace
}  // namespace pingmesh::netsim

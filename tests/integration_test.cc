// End-to-end integration tests over the full closed loop:
// controller -> agents -> simulated network -> Cosmos -> SCOPE jobs ->
// database -> alerts/analyses, all on virtual time.
#include <gtest/gtest.h>

#include "analysis/heatmap.h"
#include "analysis/sla.h"
#include "chaos/injector.h"
#include "chaos/invariants.h"
#include "chaos/plan.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/scopeql.h"

namespace pingmesh::core {
namespace {

TEST(Integration, FullLoopProducesDataEverywhere) {
  PingmeshSimulation sim(small_test_config(1));
  sim.run_for(hours(1));

  // Agents probed.
  EXPECT_GT(sim.total_probes(), 10'000u);
  // Records reached Cosmos.
  const dsa::CosmosStream* stream = sim.cosmos().find(dsa::kLatencyStream);
  ASSERT_NE(stream, nullptr);
  EXPECT_GT(stream->total_records(), 0u);
  // 10-min jobs produced pod-pair rows; PA produced counter rows.
  EXPECT_FALSE(sim.db().pod_pair_stats.empty());
  EXPECT_FALSE(sim.db().pa_counters.empty());
  // No alerts on a healthy network.
  EXPECT_TRUE(sim.db().alerts.empty());
  // Watchdogs healthy.
  sim.watchdogs().run_checks(sim.now());
  EXPECT_TRUE(sim.watchdogs().all_healthy());
}

TEST(Integration, AgentsAdoptPinglistsAndStayActive) {
  PingmeshSimulation sim(small_test_config(2));
  sim.run_for(minutes(30));
  const auto& topo = sim.topology();
  for (const auto& server : topo.servers()) {
    const agent::PingmeshAgent& ag = sim.agent(server.id);
    EXPECT_TRUE(ag.probing_active()) << server.name;
    EXPECT_GT(ag.probes_launched(), 0u) << server.name;
    EXPECT_GT(ag.target_count(), 0u);
  }
}

TEST(Integration, SlaRowsCoverScopes) {
  SimulationConfig cfg = small_test_config(3);
  PingmeshSimulation sim(cfg);
  // Register a service over the first pod.
  const auto& pod = sim.topology().pods()[0];
  sim.services().add_service("Search", pod.servers);
  sim.run_for(hours(2));
  bool has_pod = false, has_dc = false, has_service = false;
  for (const auto& row : sim.db().sla_rows) {
    if (row.scope == dsa::SlaScope::kPod) has_pod = true;
    if (row.scope == dsa::SlaScope::kDc) has_dc = true;
    if (row.scope == dsa::SlaScope::kService) has_service = true;
  }
  EXPECT_TRUE(has_pod);
  EXPECT_TRUE(has_dc);
  EXPECT_TRUE(has_service);

  // The network-issue judge says "not the network" on a healthy run.
  analysis::IssueVerdict v = analysis::judge_network_issue(
      sim.db(), dsa::SlaScope::kService, 0, 0, sim.now());
  EXPECT_FALSE(v.network_issue);
  EXPECT_GT(v.probes, 0u);
}

TEST(Integration, CongestionFiresAlerts) {
  SimulationConfig cfg = small_test_config(4);
  PingmeshSimulation sim(cfg);
  // Congest every spine: queueing x50 and 2% drops — a real incident.
  for (SwitchId spine : sim.topology().dcs()[0].spines) {
    sim.faults().add_congestion(spine, 50.0, 0.02, minutes(10));
  }
  sim.run_for(hours(2));
  EXPECT_FALSE(sim.db().alerts.empty());
}

TEST(Integration, FailClosedWhenControllerWithdraws) {
  SimulationConfig cfg = small_test_config(5);
  cfg.agent.pinglist_refresh = minutes(2);
  PingmeshSimulation sim(cfg);
  sim.run_for(minutes(10));
  ServerId probe_server = sim.topology().servers()[0].id;
  EXPECT_TRUE(sim.agent(probe_server).probing_active());

  // Operator kill switch: withdraw all pinglists.
  sim.pinglist_source().set_serving(false);
  sim.run_for(minutes(10));
  for (const auto& server : sim.topology().servers()) {
    EXPECT_FALSE(sim.agent(server.id).probing_active()) << server.name;
  }

  // Re-serve: the fleet resumes on its own.
  sim.pinglist_source().set_serving(true);
  sim.run_for(minutes(10));
  EXPECT_TRUE(sim.agent(probe_server).probing_active());
}

TEST(Integration, PodsetDownShowsWhiteCrossPattern) {
  SimulationConfig cfg = small_test_config(6);
  PingmeshSimulation sim(cfg);
  sim.run_for(minutes(30));
  PodsetId down = sim.topology().podsets()[0].id;
  sim.faults().add_podset_down(down, sim.now(), netsim::FaultInjector::kForever);
  sim.run_for(minutes(40));

  // Build the heatmap from the latest complete 10-min window.
  analysis::Heatmap map(sim.topology(), DcId{0});
  map.load(sim.db().latest_pod_pair_window());
  analysis::PatternResult pattern = analysis::classify_pattern(map);
  EXPECT_EQ(pattern.pattern, analysis::LatencyPattern::kPodsetDown);
  EXPECT_EQ(pattern.podset, down);
}

TEST(Integration, VipMonitoringProbesDips) {
  SimulationConfig cfg = small_test_config(7);
  cfg.agent.pinglist_refresh = minutes(2);
  PingmeshSimulation sim(cfg);
  // VIP fronting two servers of pod 1.
  IpAddr vip(172, 16, 0, 1);
  const auto& pod1 = sim.topology().pods()[1];
  sim.register_vip(vip, {pod1.servers[0], pod1.servers[1]});
  sim.run_for(minutes(20));

  // Some records must target the VIP and succeed (delivered to a DIP).
  auto records = sim.records_between(0, sim.now());
  std::uint64_t vip_probes = 0, vip_ok = 0;
  for (const auto& r : records) {
    if (r.dst_ip == vip) {
      ++vip_probes;
      if (r.success) ++vip_ok;
    }
  }
  EXPECT_GT(vip_probes, 0u);
  EXPECT_GT(vip_ok, vip_probes * 9 / 10);
}

TEST(Integration, CosmosRetentionBoundsMemory) {
  SimulationConfig cfg = small_test_config(8);
  cfg.cosmos_retention = minutes(30);
  PingmeshSimulation sim(cfg);
  sim.run_for(hours(2));
  const dsa::CosmosStream* stream = sim.cosmos().find(dsa::kLatencyStream);
  ASSERT_NE(stream, nullptr);
  // Oldest retained extent is no older than retention + slack.
  for (const auto& extent : stream->extents()) {
    EXPECT_GE(extent.last_ts, sim.now() - cfg.cosmos_retention - minutes(10));
  }
}

TEST(Integration, DeterministicForSeed) {
  PingmeshSimulation a(small_test_config(99));
  PingmeshSimulation b(small_test_config(99));
  a.run_for(minutes(30));
  b.run_for(minutes(30));
  EXPECT_EQ(a.total_probes(), b.total_probes());
  ASSERT_EQ(a.db().pod_pair_stats.size(), b.db().pod_pair_stats.size());
  for (std::size_t i = 0; i < a.db().pod_pair_stats.size(); ++i) {
    EXPECT_EQ(a.db().pod_pair_stats[i].p99_ns, b.db().pod_pair_stats[i].p99_ns);
    EXPECT_EQ(a.db().pod_pair_stats[i].probes, b.db().pod_pair_stats[i].probes);
  }
}

TEST(Integration, UploaderOutageDiscardsButRecovers) {
  // Cosmos front-end outage: agents retry-then-discard (bounded memory,
  // §3.4.2) and the pipeline resumes once the store is back.
  SimulationConfig cfg = small_test_config(11);
  cfg.agent.upload_interval = seconds(30);
  cfg.agent.upload_max_retries = 2;
  PingmeshSimulation sim(cfg);
  sim.run_for(minutes(20));
  std::uint64_t records_before = sim.cosmos().total_records();
  ASSERT_GT(records_before, 0u);

  // Outage: uploads fail for 20 minutes.
  sim.uploader_for_test().set_available(false);
  sim.run_for(minutes(20));
  std::uint64_t discarded = 0;
  std::size_t max_buffered = 0;
  for (const auto& server : sim.topology().servers()) {
    discarded += sim.agent(server.id).records_discarded();
    max_buffered = std::max(max_buffered, sim.agent(server.id).buffered_records());
  }
  EXPECT_GT(discarded, 0u);  // retry-then-discard kicked in
  EXPECT_LE(max_buffered, cfg.agent.max_buffered_records);

  // Recovery.
  sim.uploader_for_test().set_available(true);
  sim.run_for(minutes(10));
  EXPECT_GT(sim.cosmos().total_records(), records_before);
}

TEST(Integration, PaPathAlertsWhileCosmosIsDown) {
  // §3.5 availability story: kill the Cosmos path entirely, inject a real
  // incident — alerts still fire through the 5-minute PA counter path.
  SimulationConfig cfg = small_test_config(13);
  PingmeshSimulation sim(cfg);
  sim.uploader_for_test().set_available(false);  // SCOPE path starved from t=0
  for (SwitchId spine : sim.topology().dcs()[0].spines) {
    sim.faults().add_congestion(spine, 50.0, 0.02, minutes(10));
  }
  sim.run_for(hours(1));
  ASSERT_EQ(sim.cosmos().total_records(), 0u);  // Cosmos really is down
  bool pa_alert = false;
  for (const auto& alert : sim.db().alerts) {
    if (alert.rule.rfind("pa:", 0) == 0) pa_alert = true;
  }
  EXPECT_TRUE(pa_alert);
}

TEST(Integration, PinglistVersionPropagatesOnRefresh) {
  // "a full fledged Pingmesh Controller which automatically updates
  // pinglists once network topology is updated or configuration is
  // adjusted" — agents pick up the new generation on their periodic fetch.
  SimulationConfig cfg = small_test_config(12);
  cfg.agent.pinglist_refresh = minutes(3);
  PingmeshSimulation sim(cfg);
  sim.run_for(minutes(5));
  ServerId probe_server = sim.topology().servers()[0].id;
  std::uint64_t v1 = sim.agent(probe_server).pinglist_version();

  // Configuration change: register a VIP (bumps the generator version).
  sim.register_vip(IpAddr(172, 16, 1, 1), {sim.topology().pods()[1].servers[0]});
  sim.run_for(minutes(5));
  std::uint64_t v2 = sim.agent(probe_server).pinglist_version();
  EXPECT_GT(v2, v1);
}

TEST(Integration, ScopeQlOverLivePipelineData) {
  // The declarative layer answers ad-hoc questions over what the agents
  // actually uploaded.
  SimulationConfig cfg = small_test_config(14);
  PingmeshSimulation sim(cfg);
  sim.run_for(minutes(40));
  auto records = sim.records_between(0, sim.now());
  ASSERT_FALSE(records.empty());

  dsa::scopeql::Interpreter ql(&sim.topology());
  auto per_pod = ql.run(
      "SELECT pod(src_ip), COUNT(*), P99(rtt) FROM latency WHERE success "
      "GROUP BY pod(src_ip) ORDER BY COUNT DESC",
      records);
  // Every pod of the small DC shows up, busiest first.
  EXPECT_EQ(per_pod.rows.size(), sim.topology().pods().size());
  EXPECT_GE(per_pod.raw_rows.front()[1], per_pod.raw_rows.back()[1]);
  for (const auto& row : per_pod.raw_rows) {
    EXPECT_GT(row[2], micros(100));  // P99 in a sane band
    EXPECT_LT(row[2], seconds(1));
  }

  auto totals = ql.run("SELECT COUNT(*), DROPRATE() FROM latency", records);
  EXPECT_EQ(static_cast<std::size_t>(totals.raw_rows[0][0]), records.size());
}

TEST(Integration, JobFreshnessMatchesPaperShape) {
  // 10-min jobs consume data ~20 minutes after generation (§3.5).
  SimulationConfig cfg = small_test_config(10);
  cfg.ingestion_delay = minutes(10);
  PingmeshSimulation sim(cfg);
  sim.run_for(hours(1));
  for (const auto& job : sim.jobs().stats()) {
    if (job.name == "pod-pair-10min") {
      EXPECT_GT(job.runs, 0u);
      EXPECT_GE(job.last_e2e_delay(), minutes(20));
      EXPECT_LE(job.last_e2e_delay(), minutes(35));
    }
  }
}

TEST(Integration, ChaosPodsetPacketDropCaseStudy) {
  // The paper's §5.2 case study, replayed as a chaos schedule: every switch
  // of one podset silently drops ~1% of packets mid-run. All three
  // detection surfaces must see it — drop-rate inference from the 10-minute
  // SCOPE windows, the Figure-8 heatmap pattern, and the streaming detector
  // within about one window of onset.
  SimulationConfig cfg = chaos_test_config(77);
  PingmeshSimulation sim(cfg);
  const topo::Topology& topo = sim.topology();
  const topo::Podset& podset0 = topo.podsets()[0];

  chaos::ChaosPlan plan;
  plan.seed = 77;
  plan.duration = minutes(50);
  plan.settle = minutes(5);
  auto add_loss = [&plan](SwitchId sw) {
    chaos::ChaosEvent e;
    e.kind = chaos::ChaosEventKind::kLinkLoss;
    e.entity = sw.value;
    e.magnitude = 0.01;
    e.start = minutes(20);
    e.end = minutes(50);
    plan.events.push_back(e);
  };
  for (PodId pod : podset0.pods) add_loss(topo.pod(pod).tor);
  for (SwitchId leaf : podset0.leaves) add_loss(leaf);

  chaos::ChaosInjector injector(sim);
  injector.arm(plan);
  sim.run_for(minutes(55));

  // Surface 1: drop-rate inference over the 10-minute pod-pair windows.
  // Pairs touching the faulted podset must sit far above the 1e-3 SLA line
  // while the rest of the DC stays near the floor.
  auto in_podset0 = [&topo, &podset0](PodId pod) {
    return topo.pod(pod).podset == podset0.id;
  };
  std::uint64_t bad_sig = 0, bad_probes = 0, clean_sig = 0, clean_probes = 0;
  for (const auto& row : sim.db().pod_pairs_between(minutes(30), minutes(40))) {
    if (in_podset0(row.src_pod) || in_podset0(row.dst_pod)) {
      bad_sig += row.drop_signatures;
      bad_probes += row.probes;
    } else {
      clean_sig += row.drop_signatures;
      clean_probes += row.probes;
    }
  }
  ASSERT_GT(bad_probes, 0u);
  ASSERT_GT(clean_probes, 0u);
  double bad_rate = static_cast<double>(bad_sig) / static_cast<double>(bad_probes);
  double clean_rate =
      static_cast<double>(clean_sig) / static_cast<double>(clean_probes);
  EXPECT_GT(bad_rate, 1e-3) << "faulted podset under the SLA line";
  EXPECT_GT(bad_rate, 10 * clean_rate + 1e-9)
      << "bad=" << bad_rate << " clean=" << clean_rate;

  // Surface 2: the heatmap shows the Figure-8(c) red cross on podset 0.
  analysis::Heatmap map(topo, DcId{0});
  map.load(sim.db().pod_pairs_between(minutes(30), minutes(40)));
  EXPECT_GT(map.fraction(analysis::CellColor::kRed), 0.0);
  analysis::PatternResult pattern = analysis::classify_pattern(map);
  EXPECT_EQ(pattern.pattern, analysis::LatencyPattern::kPodsetFailure);
  EXPECT_EQ(pattern.podset, podset0.id);

  // Surface 3: the streaming detector opens a drop-spike alert within about
  // one sliding window of fault onset — not after the next 10-minute job.
  SimTime first_alert = 0;
  for (const auto& alert : sim.db().alerts) {
    if (alert.rule == "stream:drop_spike" &&
        (first_alert == 0 || alert.time < first_alert)) {
      first_alert = alert.time;
    }
  }
  ASSERT_GT(first_alert, 0) << "streaming detector never fired";
  EXPECT_GE(first_alert, minutes(20));
  EXPECT_LE(first_alert, minutes(23)) << "alert latency beyond one window";

  // And the run as a whole still satisfies the system invariants.
  chaos::InvariantReport report = chaos::check_invariants(sim, plan);
  EXPECT_TRUE(report.all_ok()) << report.to_text();
}

}  // namespace
}  // namespace pingmesh::core

// Tests for the data storage and analysis pipeline: Cosmos store, SCOPE
// engine, jobs, job manager, alerting, uploader, PA.
#include <gtest/gtest.h>

#include "agent/record.h"
#include "common/clock.h"
#include "dsa/cosmos.h"
#include "dsa/database.h"
#include "dsa/jobs.h"
#include "dsa/pa.h"
#include "dsa/scan_cache.h"
#include "dsa/scope.h"
#include "dsa/uploader.h"
#include "topology/topology.h"

namespace pingmesh::dsa {
namespace {

using agent::LatencyRecord;

topo::Topology small_dc() {
  return topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
}

LatencyRecord make_record(const topo::Topology& t, ServerId src, ServerId dst,
                          SimTime ts, SimTime rtt, bool success = true) {
  LatencyRecord r;
  r.timestamp = ts;
  r.src_ip = t.server(src).ip;
  r.dst_ip = t.server(dst).ip;
  r.src_port = 40000;
  r.dst_port = 33100;
  r.success = success;
  r.rtt = rtt;
  return r;
}

// ---------------------------------------------------------------------------
// Cosmos
// ---------------------------------------------------------------------------

TEST(Cosmos, AppendAndScan) {
  CosmosStore store(/*extent_size_limit=*/256);
  CosmosStream& s = store.stream("test");
  s.append("hello\n", 1, seconds(1), seconds(1), seconds(2));
  s.append("world\n", 1, seconds(3), seconds(3), seconds(4));
  EXPECT_EQ(s.total_records(), 2u);
  EXPECT_EQ(s.total_bytes(), 12u);

  std::string seen;
  s.scan(0, seconds(10), [&](const Extent& e) { seen += e.data; });
  EXPECT_EQ(seen, "hello\nworld\n");
}

TEST(Cosmos, ExtentRollover) {
  CosmosStore store(/*extent_size_limit=*/10);
  CosmosStream& s = store.stream("test");
  for (int i = 0; i < 5; ++i) {
    s.append("0123456789", 1, seconds(i), seconds(i), seconds(i));
  }
  EXPECT_EQ(s.extents().size(), 5u);
}

TEST(Cosmos, ScanRespectsTimeWindow) {
  CosmosStore store(16);
  CosmosStream& s = store.stream("t");
  s.append("a", 1, seconds(1), seconds(1), 0);
  s.append("b", 1, seconds(5), seconds(5), 0);
  s.append("c", 1, seconds(9), seconds(9), 0);
  int count = 0;
  s.scan(seconds(4), seconds(8), [&](const Extent&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(Cosmos, ChecksumDetectsCorruption) {
  CosmosStore store(16);
  CosmosStream& s = store.stream("t");
  s.append("payload", 1, 0, 0, 0);
  EXPECT_TRUE(s.extents()[0].verify());
  s.corrupt_extent_for_test(0);
  EXPECT_FALSE(s.extents()[0].verify());
  int seen = 0;
  s.scan(0, seconds(1), [&](const Extent&) { ++seen; });
  EXPECT_EQ(seen, 0);
  EXPECT_EQ(s.corrupt_extents_skipped(), 1u);
}

TEST(Cosmos, ExpireReclaims) {
  CosmosStore store(8);
  CosmosStream& s = store.stream("t");
  s.append("olddata1", 1, seconds(1), seconds(1), 0);
  s.append("newdata2", 1, seconds(100), seconds(100), 0);
  std::uint64_t reclaimed = s.expire_before(seconds(50));
  EXPECT_EQ(reclaimed, 8u);
  EXPECT_EQ(s.extents().size(), 1u);
  EXPECT_EQ(s.total_records(), 1u);
}

TEST(Cosmos, ScanSkipsOldPrefixAfterInterleavedAppends) {
  // last_ts is not monotone across extents (batches from different agents
  // interleave); the prefix-max skip must still visit every overlapping
  // extent.
  CosmosStore store(4);
  CosmosStream& s = store.stream("t");
  s.append("aaaa", 1, seconds(10), seconds(10), 0);
  s.append("bbbb", 1, seconds(2), seconds(2), 0);  // older than its predecessor
  s.append("cccc", 1, seconds(20), seconds(20), 0);
  s.append("dddd", 1, seconds(15), seconds(15), 0);

  std::string seen;
  s.scan(seconds(1), seconds(30), [&](const Extent& e) { seen += e.data; });
  EXPECT_EQ(seen, "aaaabbbbccccdddd");

  seen.clear();
  s.scan(seconds(12), seconds(30), [&](const Extent& e) { seen += e.data; });
  EXPECT_EQ(seen, "ccccdddd");

  seen.clear();
  s.scan(seconds(14), seconds(16), [&](const Extent& e) { seen += e.data; });
  EXPECT_EQ(seen, "dddd");
}

TEST(Cosmos, ScanSkipStaysCorrectAfterExpire) {
  CosmosStore store(4);
  CosmosStream& s = store.stream("t");
  s.append("aaaa", 1, seconds(1), seconds(1), 0);
  s.append("bbbb", 1, seconds(50), seconds(50), 0);
  s.append("cccc", 1, seconds(5), seconds(5), 0);
  s.expire_before(seconds(2));  // drops only the first extent
  ASSERT_EQ(s.extents().size(), 2u);

  std::string seen;
  s.scan(seconds(3), seconds(60), [&](const Extent& e) { seen += e.data; });
  EXPECT_EQ(seen, "bbbbcccc");
}

TEST(Cosmos, ScanSkipHandlesRestoredExtents) {
  CosmosStream donor("d", 4);
  donor.append("xxxx", 1, seconds(7), seconds(7), 0);

  CosmosStream s("t", 4);
  s.append("aaaa", 1, seconds(3), seconds(3), 0);
  s.restore_extent(donor.extents()[0]);
  std::string seen;
  s.scan(seconds(5), seconds(10), [&](const Extent& e) { seen += e.data; });
  EXPECT_EQ(seen, "xxxx");
}

TEST(Cosmos, StoreAggregates) {
  CosmosStore store;
  store.stream("a").append("xx", 1, 0, 0, 0);
  store.stream("b").append("yyy", 2, 0, 0, 0);
  EXPECT_EQ(store.total_bytes(), 5u);
  EXPECT_EQ(store.total_records(), 3u);
  EXPECT_EQ(store.stream_names().size(), 2u);
  EXPECT_EQ(store.find("a")->name(), "a");
  EXPECT_EQ(store.find("zzz"), nullptr);
}

// ---------------------------------------------------------------------------
// DecodedExtentCache
// ---------------------------------------------------------------------------

/// Append one encoded record to the stream; returns the encoded blob.
std::string append_record(CosmosStream& s, const topo::Topology& t, SimTime ts) {
  LatencyRecord r = make_record(t, t.servers()[0].id, t.servers()[1].id, ts, millis(1));
  std::string blob = agent::encode_batch({r});
  s.append(blob, 1, ts, ts, ts);
  return blob;
}

TEST(DecodedExtentCache, HitsAfterFirstDecode) {
  topo::Topology t = small_dc();
  CosmosStream s("t", /*extent_size_limit=*/16);  // one record per extent
  append_record(s, t, seconds(1));
  append_record(s, t, seconds(2));

  DecodedExtentCache cache;
  auto first = scope::extract_records(s, 0, seconds(10), cache);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);

  auto second = scope::extract_records(s, 0, seconds(10), cache);
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(DecodedExtentCache, CachedScanMatchesUncachedScan) {
  topo::Topology t = small_dc();
  CosmosStream s("t", 64);
  for (int i = 1; i <= 20; ++i) append_record(s, t, seconds(i));

  DecodedExtentCache cache;
  for (SimTime from : {seconds(0), seconds(5), seconds(12)}) {
    auto plain = scope::extract_records(s, from, seconds(15));
    auto cached = scope::extract_records(s, from, seconds(15), cache);
    ASSERT_EQ(plain.size(), cached.size());
    EXPECT_EQ(agent::encode_batch(plain.rows()), agent::encode_batch(cached.rows()));
  }
}

TEST(DecodedExtentCache, GrownTailExtentIsRedecoded) {
  topo::Topology t = small_dc();
  CosmosStream s("t", 1 << 20);  // everything lands in one open extent
  append_record(s, t, seconds(1));

  DecodedExtentCache cache;
  EXPECT_EQ(scope::extract_records(s, 0, seconds(10), cache).size(), 1u);
  append_record(s, t, seconds(2));  // same extent, new checksum
  EXPECT_EQ(scope::extract_records(s, 0, seconds(10), cache).size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);  // second scan re-decoded, not served stale
}

TEST(DecodedExtentCache, ExpireDropsOldEntries) {
  topo::Topology t = small_dc();
  CosmosStream s("t", 16);
  append_record(s, t, seconds(1));
  append_record(s, t, seconds(100));

  DecodedExtentCache cache;
  scope::extract_records(s, 0, seconds(200), cache);
  EXPECT_EQ(cache.size(), 2u);
  cache.expire_before(seconds(50));
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DecodedExtentCache, EvictsOldestWhenFull) {
  topo::Topology t = small_dc();
  CosmosStream s("t", 16);
  for (int i = 1; i <= 5; ++i) append_record(s, t, seconds(i));

  DecodedExtentCache cache(/*max_entries=*/3);
  scope::extract_records(s, 0, seconds(10), cache);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 2u);
  // Results stay correct regardless of eviction.
  EXPECT_EQ(scope::extract_records(s, 0, seconds(10), cache).size(), 5u);
}

// ---------------------------------------------------------------------------
// SCOPE engine
// ---------------------------------------------------------------------------

TEST(Scope, WhereSelectOrder) {
  scope::DataSet<int> data({5, 3, 8, 1, 9, 2});
  auto result = data.where([](int v) { return v > 2; })
                    .select([](int v) { return v * 10; })
                    .order_by([](int v) { return v; });
  EXPECT_EQ(result.rows(), (std::vector<int>{30, 50, 80, 90}));
}

TEST(Scope, UnionAll) {
  scope::DataSet<int> a({1, 2});
  scope::DataSet<int> b({3});
  EXPECT_EQ(a.union_all(b).size(), 3u);
}

struct SumAgg {
  int total = 0;
  void add(const int& v) { total += v; }
  [[nodiscard]] int finish() const { return total; }
};

TEST(Scope, AggregateBy) {
  scope::DataSet<int> data({1, 2, 3, 4, 5, 6});
  auto groups = data.aggregate_by<SumAgg>([](int v) { return v % 2; });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, 0);
  EXPECT_EQ(groups[0].second, 12);  // 2+4+6
  EXPECT_EQ(groups[1].second, 9);   // 1+3+5
}

TEST(Scope, ExtractFromStream) {
  topo::Topology t = small_dc();
  CosmosStore store;
  CosmosStream& s = store.stream("latency");
  std::vector<LatencyRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(make_record(t, t.servers()[0].id, t.servers()[1].id, seconds(i),
                                micros(200 + i)));
  }
  s.append(agent::encode_batch(batch), batch.size(), seconds(0), seconds(9), seconds(10));
  auto data = scope::extract_records(s, seconds(2), seconds(5));
  EXPECT_EQ(data.size(), 3u);  // ts 2,3,4
  for (const auto& r : data.rows()) {
    EXPECT_GE(r.timestamp, seconds(2));
    EXPECT_LT(r.timestamp, seconds(5));
  }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

class JobsTest : public ::testing::Test {
 protected:
  JobsTest() : topo_(small_dc()) {
    ctx_.topo = &topo_;
    ctx_.services = &services_;
    ctx_.db = &db_;
  }

  void load_records(const std::vector<LatencyRecord>& records) {
    CosmosStream& s = store_.stream(kLatencyStream);
    s.append(agent::encode_batch(records), records.size(), 0, hours(1), hours(1));
  }

  topo::Topology topo_;
  topo::ServiceMap services_;
  Database db_;
  CosmosStore store_;
  JobContext ctx_;
};

TEST_F(JobsTest, PodPairJobAggregates) {
  const topo::Pod& pod0 = topo_.pods()[0];
  const topo::Pod& pod1 = topo_.pods()[1];
  std::vector<LatencyRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(
        make_record(topo_, pod0.servers[0], pod1.servers[0], seconds(i), micros(300)));
  }
  // One 3s drop signature + one failure.
  records.push_back(make_record(topo_, pod0.servers[0], pod1.servers[0], seconds(50),
                                seconds(3) + micros(300)));
  records.push_back(make_record(topo_, pod0.servers[0], pod1.servers[0], seconds(51),
                                0, /*success=*/false));
  load_records(records);

  run_pod_pair_job(*store_.find(kLatencyStream), ctx_, 0, minutes(10));
  ASSERT_EQ(db_.pod_pair_stats.size(), 1u);
  const PodPairStatRow& row = db_.pod_pair_stats[0];
  EXPECT_EQ(row.src_pod, pod0.id);
  EXPECT_EQ(row.dst_pod, pod1.id);
  EXPECT_EQ(row.probes, 52u);
  EXPECT_EQ(row.successes, 51u);
  EXPECT_EQ(row.failures, 1u);
  EXPECT_EQ(row.drop_signatures, 1u);
  EXPECT_NEAR(static_cast<double>(row.p50_ns), 300e3, 15e3);
}

TEST_F(JobsTest, SlaJobEmitsAllScopes) {
  const topo::Pod& pod0 = topo_.pods()[0];
  services_.add_service("Search", {pod0.servers[0], pod0.servers[1]});
  std::vector<LatencyRecord> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(
        make_record(topo_, pod0.servers[0], pod0.servers[1], seconds(i), micros(250)));
  }
  load_records(records);
  run_sla_job(*store_.find(kLatencyStream), ctx_, 0, hours(1), /*server rows=*/true);

  bool pod = false, podset = false, dc = false, service = false, server = false;
  for (const SlaRow& row : db_.sla_rows) {
    switch (row.scope) {
      case SlaScope::kPod: pod = true; break;
      case SlaScope::kPodset: podset = true; break;
      case SlaScope::kDc: dc = true; break;
      case SlaScope::kService: service = true; break;
      case SlaScope::kServer: server = true; break;
    }
  }
  EXPECT_TRUE(pod && podset && dc && service && server);

  auto series = db_.sla_series(SlaScope::kService, 0);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].probes, 30u);
}

TEST_F(JobsTest, DcDropJobSplitsIntraInterPod) {
  const topo::Pod& pod0 = topo_.pods()[0];
  const topo::Pod& pod1 = topo_.pods()[1];
  std::vector<LatencyRecord> records;
  // 1000 clean intra-pod + 10 with signature.
  for (int i = 0; i < 1000; ++i) {
    records.push_back(
        make_record(topo_, pod0.servers[0], pod0.servers[1], seconds(i), micros(216)));
  }
  for (int i = 0; i < 10; ++i) {
    records.push_back(make_record(topo_, pod0.servers[0], pod0.servers[1],
                                  seconds(1000 + i), seconds(3) + micros(216)));
  }
  // 1000 clean inter-pod + 40 with signature.
  for (int i = 0; i < 1000; ++i) {
    records.push_back(
        make_record(topo_, pod0.servers[0], pod1.servers[0], seconds(i), micros(268)));
  }
  for (int i = 0; i < 40; ++i) {
    records.push_back(make_record(topo_, pod0.servers[0], pod1.servers[0],
                                  seconds(1000 + i), seconds(3) + micros(268)));
  }
  load_records(records);
  run_dc_drop_job(*store_.find(kLatencyStream), ctx_, 0, days(1));
  ASSERT_EQ(db_.dc_drop_rows.size(), 1u);
  const DcDropRow& row = db_.dc_drop_rows[0];
  EXPECT_NEAR(row.intra_pod_drop_rate, 10.0 / 1010.0, 1e-6);
  EXPECT_NEAR(row.inter_pod_drop_rate, 40.0 / 1040.0, 1e-6);
  EXPECT_GT(row.inter_pod_drop_rate, row.intra_pod_drop_rate);
}

TEST_F(JobsTest, AlertsFireOnThresholds) {
  SlaRow bad;
  bad.scope = SlaScope::kService;
  bad.scope_id = 0;
  bad.probes = 1000;
  bad.successes = 990;
  bad.drop_signatures = 5;  // 5.05e-3 > 1e-3
  bad.p99_ns = millis(2);
  SlaRow slow = bad;
  slow.drop_signatures = 0;
  slow.p99_ns = millis(8);  // > 5ms
  SlaRow fine = bad;
  fine.drop_signatures = 0;
  fine.p99_ns = millis(1);
  SlaRow thin = bad;  // breaks thresholds but too few probes
  thin.probes = 5;
  thin.successes = 5;
  thin.drop_signatures = 3;

  int fired = evaluate_sla_alerts(ctx_, {bad, slow, fine, thin}, AlertThresholds{}, hours(1));
  EXPECT_EQ(fired, 2);
  ASSERT_EQ(db_.alerts.size(), 2u);
  EXPECT_EQ(db_.alerts[0].severity, AlertSeverity::kCritical);
  EXPECT_EQ(db_.alerts[1].severity, AlertSeverity::kWarning);
}

TEST(JobManager, WindowsFireAfterIngestionDelay) {
  JobManager jm(/*ingestion_delay=*/minutes(10));
  std::vector<std::pair<SimTime, SimTime>> windows;
  jm.register_job("10min", minutes(10),
                  [&](SimTime from, SimTime to) { windows.emplace_back(from, to); });

  jm.on_tick(minutes(10));  // window [0,10) not yet ingested
  EXPECT_TRUE(windows.empty());
  jm.on_tick(minutes(20));  // now [0,10) is complete + delay passed
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], std::make_pair(SimTime{0}, minutes(10)));
  jm.on_tick(minutes(55));  // catch up: [10,20), [20,30), [30,40)
  EXPECT_EQ(windows.size(), 4u);

  auto stats = jm.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].runs, 4u);
  // E2E freshness: ~20 min for the paper's 10-min jobs.
  EXPECT_GE(stats[0].last_e2e_delay(), minutes(10));
}

TEST(JobManager, InvalidPeriodThrows) {
  JobManager jm;
  EXPECT_THROW(jm.register_job("bad", 0, [](SimTime, SimTime) {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Uploader + PA
// ---------------------------------------------------------------------------

TEST(CosmosUploader, WritesBatches) {
  topo::Topology t = small_dc();
  CosmosStore store;
  VirtualClock clock(seconds(100));
  CosmosUploader up(store, kLatencyStream, clock);
  std::vector<LatencyRecord> batch = {
      make_record(t, t.servers()[0].id, t.servers()[1].id, seconds(1), micros(200)),
      make_record(t, t.servers()[0].id, t.servers()[1].id, seconds(2), micros(210)),
  };
  EXPECT_TRUE(up.upload(agent::to_columns(batch)));
  const CosmosStream* s = store.find(kLatencyStream);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total_records(), 2u);
  EXPECT_EQ(s->extents()[0].appended_at, seconds(100));
  EXPECT_EQ(s->extents()[0].first_ts, seconds(1));
  EXPECT_EQ(s->extents()[0].last_ts, seconds(2));
}

TEST(CosmosUploader, FailureInjection) {
  topo::Topology t = small_dc();
  CosmosStore store;
  VirtualClock clock;
  CosmosUploader up(store, kLatencyStream, clock);
  std::vector<LatencyRecord> batch = {
      make_record(t, t.servers()[0].id, t.servers()[1].id, 0, micros(200))};
  up.fail_next(2);
  EXPECT_FALSE(up.upload(agent::to_columns(batch)));
  EXPECT_FALSE(up.upload(agent::to_columns(batch)));
  EXPECT_TRUE(up.upload(agent::to_columns(batch)));
  up.set_available(false);
  EXPECT_FALSE(up.upload(agent::to_columns(batch)));
}

TEST(Pa, AggregatesPerPod) {
  topo::Topology t = small_dc();
  Database db;
  PerfcounterAggregator pa(t, db);
  const topo::Pod& pod0 = t.pods()[0];

  agent::CounterSnapshot s1;
  s1.probes = 100;
  s1.successes = 100;
  s1.probes_3s = 1;
  s1.p50_ns = micros(200);
  s1.p99_ns = millis(1);
  agent::CounterSnapshot s2 = s1;
  s2.probes_3s = 3;
  pa.collect(pod0.servers[0], s1);
  pa.collect(pod0.servers[1], s2);
  pa.flush(minutes(5));

  ASSERT_EQ(db.pa_counters.size(), 1u);
  const PaCounterRow& row = db.pa_counters[0];
  EXPECT_EQ(row.pod, pod0.id);
  EXPECT_EQ(row.probes, 200u);
  EXPECT_NEAR(row.drop_rate, 4.0 / 200.0, 1e-9);
  EXPECT_EQ(row.p50_ns, micros(200));

  // Flush clears the bucket.
  pa.flush(minutes(10));
  EXPECT_EQ(db.pa_counters.size(), 1u);
}

TEST(Pa, AlertsOnDropRateWithSignatureFloor) {
  topo::Topology t = small_dc();
  Database db;
  auto add_pa_row = [&](SimTime time, std::uint64_t signatures, double rate) {
    PaCounterRow row;
    row.time = time;
    row.pod = t.pods()[0].id;
    row.probes = 500;
    row.drop_signatures = signatures;
    row.drop_rate = rate;
    db.pa_counters.push_back(row);
  };
  // One signature in a small window: breaches 1e-3 numerically but is
  // statistically meaningless — must not page.
  add_pa_row(minutes(5), 1, 2e-3);
  EXPECT_EQ(evaluate_pa_alerts(db, t, AlertThresholds{}, 0, minutes(5)), 0);
  // A real incident: many signatures.
  add_pa_row(minutes(10), 12, 2.4e-2);
  EXPECT_EQ(evaluate_pa_alerts(db, t, AlertThresholds{}, minutes(5), minutes(10)), 1);
  ASSERT_EQ(db.alerts.size(), 1u);
  EXPECT_EQ(db.alerts[0].rule.rfind("pa:", 0), 0u);
  // Re-evaluating a later window does not double-fire on old rows.
  EXPECT_EQ(evaluate_pa_alerts(db, t, AlertThresholds{}, minutes(10), minutes(15)), 0);
}

TEST(LatencyAggregatorUnit, SeparatesSignaturesFromLatency) {
  topo::Topology t = small_dc();
  LatencyAggregator agg;
  agent::LatencyRecord r;
  r.success = true;
  r.rtt = micros(250);
  for (int i = 0; i < 99; ++i) agg.add(r);
  r.rtt = seconds(3) + micros(250);  // retransmit artifact
  agg.add(r);
  r.success = false;
  agg.add(r);
  auto result = agg.finish();
  EXPECT_EQ(result.probes, 101u);
  EXPECT_EQ(result.successes, 100u);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_EQ(result.drop_signatures, 1u);
  // The 3s RTT must not pollute the latency percentiles.
  EXPECT_LT(result.p99_ns, millis(1));
  EXPECT_NEAR(result.drop_rate(), 0.01, 1e-9);
}

TEST(Database, QueriesFilter) {
  Database db;
  for (int w = 0; w < 3; ++w) {
    PodPairStatRow row;
    row.window_start = minutes(10 * w);
    row.src_pod = PodId{0};
    row.dst_pod = PodId{1};
    db.pod_pair_stats.push_back(row);
  }
  EXPECT_EQ(db.latest_pod_pair_window().size(), 1u);
  EXPECT_EQ(db.latest_pod_pair_window()[0].window_start, minutes(20));
  EXPECT_EQ(db.pod_pairs_between(minutes(5), minutes(25)).size(), 2u);
  EXPECT_EQ(db.total_rows(), 3u);
}

}  // namespace
}  // namespace pingmesh::dsa

// Tests for the Pingmesh Controller: pinglist XML interchange, the pinglist
// generation algorithm (the three complete-graph levels), thresholds, the
// SLB/VIP model, and the RESTful distribution path over real sockets.
#include <gtest/gtest.h>

#include <set>

#include "controller/generator.h"
#include "controller/pinglist.h"
#include "controller/service.h"
#include "controller/slb.h"
#include "net/reactor.h"
#include "obs/metrics.h"
#include "topology/topology.h"

namespace pingmesh::controller {
namespace {

topo::Topology two_small_dcs() {
  return topo::Topology::build(
      {topo::small_dc_spec("DC1", "US West"), topo::small_dc_spec("DC2", "Asia")});
}

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.intra_pod_interval = seconds(30);
  cfg.intra_dc_interval = seconds(30);
  cfg.inter_dc_interval = minutes(1);
  return cfg;
}

// ---------------------------------------------------------------------------
// Pinglist XML
// ---------------------------------------------------------------------------

TEST(Pinglist, XmlRoundTrip) {
  Pinglist pl;
  pl.server_name = "DC1-PS0-P0-S0";
  pl.server_ip = IpAddr(10, 0, 0, 1);
  pl.version = 42;
  pl.min_probe_interval = seconds(10);
  PingTarget t1;
  t1.ip = IpAddr(10, 0, 0, 2);
  t1.port = 33100;
  t1.kind = ProbeKind::kTcpPayload;
  t1.payload_bytes = 1000;
  t1.interval = seconds(30);
  PingTarget t2;
  t2.ip = IpAddr(10, 1, 0, 7);
  t2.port = 33101;
  t2.kind = ProbeKind::kHttpGet;
  t2.qos = QosClass::kLow;
  t2.interval = minutes(5);
  t2.is_vip = true;
  pl.targets = {t1, t2};

  Pinglist parsed = Pinglist::from_xml(pl.to_xml());
  EXPECT_EQ(parsed.server_name, pl.server_name);
  EXPECT_EQ(parsed.server_ip, pl.server_ip);
  EXPECT_EQ(parsed.version, 42u);
  EXPECT_EQ(parsed.min_probe_interval, seconds(10));
  ASSERT_EQ(parsed.targets.size(), 2u);
  EXPECT_EQ(parsed.targets[0].ip, t1.ip);
  EXPECT_EQ(parsed.targets[0].kind, ProbeKind::kTcpPayload);
  EXPECT_EQ(parsed.targets[0].payload_bytes, 1000u);
  EXPECT_EQ(parsed.targets[1].qos, QosClass::kLow);
  EXPECT_TRUE(parsed.targets[1].is_vip);
  EXPECT_EQ(parsed.targets[1].interval, minutes(5));
}

TEST(Pinglist, MalformedXmlThrows) {
  EXPECT_THROW(Pinglist::from_xml("<NotAPinglist/>"), std::runtime_error);
  EXPECT_THROW(Pinglist::from_xml("<Pinglist ip=\"999.0.0.1\"/>"), std::runtime_error);
  EXPECT_THROW(Pinglist::from_xml("garbage"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// PinglistGenerator — the three complete graphs (§3.3.1)
// ---------------------------------------------------------------------------

TEST(Generator, Level1IntraPodCompleteGraph) {
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  const topo::Pod& pod = t.pods()[0];
  for (ServerId s : pod.servers) {
    Pinglist pl = gen.generate_for(s);
    std::set<std::uint32_t> pod_peer_ips;
    for (ServerId peer : pod.servers) {
      if (peer != s) pod_peer_ips.insert(t.server(peer).ip.v);
    }
    std::set<std::uint32_t> targeted;
    for (const PingTarget& target : pl.targets) {
      if (pod_peer_ips.contains(target.ip.v)) targeted.insert(target.ip.v);
    }
    EXPECT_EQ(targeted, pod_peer_ips) << "server " << t.server(s).name;
  }
}

TEST(Generator, Level2ServerIPingsServerI) {
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  // For server i under ToRx, every other pod in the DC contributes exactly
  // its server i as a target.
  const topo::Server& s = t.server(t.pods()[2].servers[3]);  // i = 3
  Pinglist pl = gen.generate_for(s.id);
  std::set<std::uint32_t> target_ips;
  for (const PingTarget& target : pl.targets) target_ips.insert(target.ip.v);
  for (const topo::Pod& pod : t.pods()) {
    if (pod.dc != s.dc || pod.id == s.pod) continue;
    IpAddr expected = t.server(pod.servers[3]).ip;
    EXPECT_TRUE(target_ips.contains(expected.v))
        << "missing level-2 peer in pod " << pod.id.value;
    // and NOT some other index of that pod (beyond pod-level targets)
    IpAddr wrong = t.server(pod.servers[5]).ip;
    EXPECT_FALSE(target_ips.contains(wrong.v));
  }
}

TEST(Generator, Level2CoversAllTorPairs) {
  // Aggregated over all servers, every ToR pair in a DC is probed: the
  // ToR-level virtual complete graph.
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  std::set<std::pair<std::uint32_t, std::uint32_t>> tor_pairs;
  for (const topo::Server& s : t.servers()) {
    if (!(s.dc == DcId{0})) continue;
    Pinglist pl = gen.generate_for(s.id);
    for (const PingTarget& target : pl.targets) {
      auto dst = t.find_server_by_ip(target.ip);
      if (!dst) continue;
      const topo::Server& d = t.server(*dst);
      if (d.dc == s.dc && !(d.pod == s.pod)) {
        tor_pairs.emplace(s.tor.value, d.tor.value);
      }
    }
  }
  std::size_t tors = t.switches_in_dc(DcId{0}, topo::SwitchKind::kTor).size();
  EXPECT_EQ(tor_pairs.size(), tors * (tors - 1));
}

TEST(Generator, Level3InterDcParticipants) {
  topo::Topology t = two_small_dcs();
  GeneratorConfig cfg = fast_config();
  cfg.interdc_servers_per_podset = 2;
  PinglistGenerator gen(t, cfg);

  auto participants = gen.interdc_participants(DcId{0});
  // 2 podsets x 2 servers each
  EXPECT_EQ(participants.size(), 4u);
  for (ServerId p : participants) EXPECT_TRUE(gen.is_interdc_participant(p));

  // A participant has targets in the other DC; a non-participant does not.
  Pinglist pl = gen.generate_for(participants[0]);
  bool has_remote = false;
  for (const PingTarget& target : pl.targets) {
    auto dst = t.find_server_by_ip(target.ip);
    if (dst && t.server(*dst).dc == DcId{1}) has_remote = true;
  }
  EXPECT_TRUE(has_remote);

  ServerId non_participant;
  for (const topo::Server& s : t.servers()) {
    if (s.dc == DcId{0} && !gen.is_interdc_participant(s.id)) {
      non_participant = s.id;
      break;
    }
  }
  ASSERT_TRUE(non_participant.valid());
  Pinglist pl2 = gen.generate_for(non_participant);
  for (const PingTarget& target : pl2.targets) {
    auto dst = t.find_server_by_ip(target.ip);
    if (dst) EXPECT_EQ(t.server(*dst).dc, DcId{0});
  }
}

TEST(Generator, InterDcDisabled) {
  topo::Topology t = two_small_dcs();
  GeneratorConfig cfg = fast_config();
  cfg.enable_inter_dc = false;
  PinglistGenerator gen(t, cfg);
  // Selection still exists (it carries VIP monitoring), but no pinglist
  // contains a cross-DC target.
  EXPECT_FALSE(gen.interdc_participants(DcId{0}).empty());
  for (const topo::Server& s : t.servers()) {
    for (const PingTarget& target : gen.generate_for(s.id).targets) {
      auto dst = t.find_server_by_ip(target.ip);
      ASSERT_TRUE(dst.has_value());
      EXPECT_EQ(t.server(*dst).dc, s.dc);
    }
  }
}

TEST(Generator, TargetCapEnforced) {
  topo::Topology t = two_small_dcs();
  GeneratorConfig cfg = fast_config();
  cfg.max_targets_per_server = 5;
  PinglistGenerator gen(t, cfg);
  for (const topo::Server& s : t.servers()) {
    EXPECT_LE(gen.generate_for(s.id).targets.size(), 5u);
  }
}

TEST(Generator, IntervalFloorApplied) {
  topo::Topology t = two_small_dcs();
  GeneratorConfig cfg = fast_config();
  cfg.intra_pod_interval = seconds(1);  // below the 10s floor
  PinglistGenerator gen(t, cfg);
  Pinglist pl = gen.generate_for(t.servers()[0].id);
  for (const PingTarget& target : pl.targets) {
    EXPECT_GE(target.interval, seconds(10));
  }
}

TEST(Generator, PayloadTargetsSprinkled) {
  topo::Topology t = two_small_dcs();
  GeneratorConfig cfg = fast_config();
  cfg.payload_every_kth = 4;
  PinglistGenerator gen(t, cfg);
  Pinglist pl = gen.generate_for(t.servers()[0].id);
  int with_payload = 0;
  for (const PingTarget& target : pl.targets) {
    if (target.kind == ProbeKind::kTcpPayload) {
      ++with_payload;
      EXPECT_EQ(target.payload_bytes, cfg.payload_bytes);
    }
  }
  EXPECT_GT(with_payload, 0);
  EXPECT_LT(with_payload, static_cast<int>(pl.targets.size()));
}

TEST(Generator, QosDuplicatesOnLowPriorityPort) {
  topo::Topology t = two_small_dcs();
  GeneratorConfig cfg = fast_config();
  cfg.enable_qos = true;
  PinglistGenerator gen(t, cfg);
  Pinglist pl = gen.generate_for(t.servers()[0].id);
  int high = 0, low = 0;
  for (const PingTarget& target : pl.targets) {
    if (target.qos == QosClass::kLow) {
      ++low;
      EXPECT_EQ(target.port, cfg.low_priority_port);
    } else {
      ++high;
    }
  }
  EXPECT_EQ(high, low);
}

TEST(Generator, DeterministicAcrossReplicas) {
  // "Every Pingmesh Controller server runs the same piece of code and
  // generates the same set of Pinglist files" — determinism is the
  // stateless-controller contract.
  topo::Topology t = two_small_dcs();
  PinglistGenerator a(t, fast_config());
  PinglistGenerator b(t, fast_config());
  for (const topo::Server& s : t.servers()) {
    EXPECT_EQ(a.generate_for(s.id).to_xml(), b.generate_for(s.id).to_xml());
  }
}

TEST(Generator, PaperScaleTargetCount) {
  // §3.3.1: "a server in Pingmesh needs to ping 2000-5000 peer servers" at
  // production scale. At our large-DC scale the shape holds: intra-pod
  // (servers_per_pod-1) + one per other ToR in the DC.
  topo::Topology t = topo::Topology::build({topo::large_dc_spec("DC1", "US West")});
  GeneratorConfig cfg = fast_config();
  cfg.enable_inter_dc = false;
  PinglistGenerator gen(t, cfg);
  Pinglist pl = gen.generate_for(t.servers()[0].id);
  // 39 pod peers + 159 other ToRs = 198
  EXPECT_EQ(pl.targets.size(), 39u + 159u);
}

// ---------------------------------------------------------------------------
// SLB / VIP
// ---------------------------------------------------------------------------

TEST(Slb, SpreadsOverHealthyBackends) {
  SlbVip vip;
  vip.add_backend("a");
  vip.add_backend("b");
  vip.add_backend("c");
  std::set<std::size_t> picked;
  for (std::uint64_t flow = 0; flow < 100; ++flow) {
    auto idx = vip.pick(flow);
    ASSERT_TRUE(idx.has_value());
    picked.insert(*idx);
  }
  EXPECT_EQ(picked.size(), 3u);
}

TEST(Slb, FailuresRemoveFromRotation) {
  // recovery_after beyond the pick count here: no half-open trial interferes.
  SlbVip vip(/*failure_threshold=*/3, /*recovery_after=*/1000);
  std::size_t a = vip.add_backend("a");
  vip.add_backend("b");
  for (int i = 0; i < 3; ++i) vip.report(a, false);
  EXPECT_EQ(vip.healthy_count(), 1u);
  EXPECT_EQ(vip.health_flips_down(), 1u);
  for (std::uint64_t flow = 0; flow < 50; ++flow) {
    EXPECT_EQ(vip.pick(flow), std::optional<std::size_t>{1});
  }
  // A successful health probe re-admits it.
  vip.report(a, true);
  EXPECT_EQ(vip.healthy_count(), 2u);
  EXPECT_EQ(vip.health_flips_up(), 1u);
}

TEST(Slb, RecoversBackendViaHalfOpenTrial) {
  // Regression: before half-open re-probing, an unhealthy backend was never
  // picked again, so no success could ever be reported for it and removal
  // was permanent (recovery required an out-of-band set_healthy call).
  SlbVip vip(/*failure_threshold=*/2, /*recovery_after=*/8);
  std::size_t a = vip.add_backend("a");
  std::size_t b = vip.add_backend("b");
  vip.report(a, false);
  vip.report(a, false);
  EXPECT_EQ(vip.healthy_count(), 1u);

  // Flows land on "b" until the trial window elapses; the 8th pick is the
  // half-open trial routed to "a".
  for (std::uint64_t flow = 0; flow < 7; ++flow) {
    EXPECT_EQ(vip.pick(flow), std::optional<std::size_t>{b});
  }
  EXPECT_EQ(vip.pick(7), std::optional<std::size_t>{a});
  EXPECT_EQ(vip.half_open_trials(), 1u);

  // The trial failed: "a" stays out and waits a full window again.
  vip.report(a, false);
  EXPECT_EQ(vip.healthy_count(), 1u);
  for (std::uint64_t flow = 0; flow < 7; ++flow) {
    EXPECT_EQ(vip.pick(100 + flow), std::optional<std::size_t>{b});
  }

  // The next trial succeeds: "a" rejoins rotation and gets hash-spread.
  EXPECT_EQ(vip.pick(999), std::optional<std::size_t>{a});
  vip.report(a, true);
  EXPECT_EQ(vip.healthy_count(), 2u);
  EXPECT_EQ(vip.health_flips_up(), 1u);
  std::set<std::size_t> seen;
  for (std::uint64_t flow = 0; flow < 50; ++flow) seen.insert(*vip.pick(flow));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Slb, HalfOpenTrialEmitsMetrics) {
  obs::MetricsRegistry reg;
  SlbVip vip(/*failure_threshold=*/1, /*recovery_after=*/2);
  vip.enable_observability(reg);
  std::size_t a = vip.add_backend("a");
  vip.add_backend("b");
  vip.report(a, false);
  for (std::uint64_t flow = 0; flow < 4; ++flow) vip.pick(flow);
  vip.report(a, true);
  std::string text = reg.expose({"slb."});
  EXPECT_NE(text.find("slb.health_flips_total{to=down} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("slb.health_flips_total{to=up} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("slb.picks_total 4"), std::string::npos) << text;
  EXPECT_NE(text.find("slb.healthy_backends 2"), std::string::npos) << text;
  EXPECT_GE(vip.half_open_trials(), 1u);
}

TEST(Slb, NoBackendsAtAll) {
  SlbVip vip(1);
  EXPECT_FALSE(vip.pick(1).has_value());
}

TEST(Slb, EmptyHealthySetProbesInsteadOfBlackholing) {
  // Regression: with every backend unhealthy, pick() used to return nullopt
  // forever — no pick meant no report(success), so a VIP whose backends all
  // restarted at once was permanently blackholed. Now the longest-waiting
  // unhealthy backend gets an immediate half-open trial.
  SlbVip vip(/*failure_threshold=*/1, /*recovery_after=*/1000);
  std::size_t a = vip.add_backend("a");
  vip.report(a, false);
  EXPECT_EQ(vip.healthy_count(), 0u);

  auto probe = vip.pick(1);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(*probe, a);
  EXPECT_EQ(vip.half_open_trials(), 1u);

  // Trial succeeded: the backend is back in rotation, VIP recovered.
  vip.report(a, true);
  EXPECT_EQ(vip.healthy_count(), 1u);
  EXPECT_EQ(vip.pick(2), std::optional<std::size_t>{a});
}

TEST(Slb, AllBackendsRestartSimultaneouslyThenRecover) {
  // The outage scenario itself: three backends all fail, probes rotate
  // across them (longest-waiting first), and a single success during the
  // outage is enough to restore service.
  SlbVip vip(/*failure_threshold=*/1, /*recovery_after=*/1000);
  std::size_t a = vip.add_backend("a");
  std::size_t b = vip.add_backend("b");
  std::size_t c = vip.add_backend("c");
  vip.report(a, false);
  vip.report(b, false);
  vip.report(c, false);
  EXPECT_EQ(vip.healthy_count(), 0u);

  // All went down at pick 0, so ties resolve to the lowest index; each
  // failed probe re-arms that backend, rotating the next probe onward.
  std::optional<std::size_t> p1 = vip.pick(10);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(*p1, a);
  vip.report(*p1, false);
  std::optional<std::size_t> p2 = vip.pick(11);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(*p2, b);
  vip.report(*p2, false);
  std::optional<std::size_t> p3 = vip.pick(12);
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(*p3, c);
  vip.report(*p3, true);  // "c" came back up first

  EXPECT_EQ(vip.healthy_count(), 1u);
  EXPECT_EQ(vip.half_open_trials(), 3u);
  for (std::uint64_t flow = 0; flow < 20; ++flow) {
    EXPECT_EQ(vip.pick(flow), std::optional<std::size_t>{c});
  }
}

// ---------------------------------------------------------------------------
// Distribution paths
// ---------------------------------------------------------------------------

TEST(DirectSource, ServesAndWithdraws) {
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  DirectPinglistSource source(t, gen);

  FetchResult r = source.fetch(t.servers()[0].ip);
  EXPECT_EQ(r.status, FetchStatus::kOk);
  ASSERT_TRUE(r.pinglist != nullptr);
  EXPECT_FALSE(r.pinglist->targets.empty());

  source.set_serving(false);
  EXPECT_EQ(source.fetch(t.servers()[0].ip).status, FetchStatus::kNoPinglist);
  source.set_serving(true);
  source.set_reachable(false);
  EXPECT_EQ(source.fetch(t.servers()[0].ip).status, FetchStatus::kUnreachable);

  source.set_reachable(true);
  EXPECT_EQ(source.fetch(IpAddr(1, 2, 3, 4)).status, FetchStatus::kNoPinglist);
}

TEST(HttpDistribution, EndToEndOverLoopback) {
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  net::Reactor reactor;
  ControllerHttpService svc(reactor, net::SockAddr::loopback(0), t, gen);

  SlbVip vip;
  vip.add_backend("controller-0");
  HttpPinglistSource source(reactor, vip, {net::SockAddr::loopback(svc.port())});

  const topo::Server& s = t.servers()[3];
  FetchResult r = source.fetch(s.ip);
  ASSERT_EQ(r.status, FetchStatus::kOk);
  ASSERT_TRUE(r.pinglist != nullptr);
  EXPECT_EQ(r.pinglist->server_ip, s.ip);
  EXPECT_EQ(r.pinglist->to_xml(), gen.generate_for(s.id).to_xml());

  // Unknown server -> 404 -> kNoPinglist (the fail-closed trigger).
  EXPECT_EQ(source.fetch(IpAddr(9, 9, 9, 9)).status, FetchStatus::kNoPinglist);

  // Withdrawal: the operator kill switch.
  svc.withdraw_all();
  EXPECT_EQ(source.fetch(s.ip).status, FetchStatus::kNoPinglist);
}

namespace {

/// GET `path` from a local ControllerHttpService; returns the status code.
int http_get_status(net::Reactor& reactor, std::uint16_t port, const std::string& path,
                    std::string* body = nullptr) {
  net::HttpClient client(reactor);
  std::optional<net::HttpResult> result;
  client.get(net::SockAddr::loopback(port), path, std::chrono::milliseconds(2000),
             [&result](const net::HttpResult& r) { result = r; });
  reactor.run_until([&result] { return result.has_value(); },
                    net::Reactor::Clock::now() + std::chrono::milliseconds(2500));
  if (!result || !result->ok) return -1;
  if (body != nullptr) *body = result->response.body;
  return result->response.status;
}

}  // namespace

TEST(HttpDistribution, ShortPinglistPathIsRejectedNotFatal) {
  // Regression: handle_pinglist took req.path.substr(len("/pinglist/"))
  // without checking the prefix, so a bare "/pinglist" request threw
  // std::out_of_range from the handler. It must answer 404 and keep serving.
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  net::Reactor reactor;
  ControllerHttpService svc(reactor, net::SockAddr::loopback(0), t, gen);

  EXPECT_EQ(http_get_status(reactor, svc.port(), "/pinglist"), 404);
  EXPECT_EQ(http_get_status(reactor, svc.port(), "/pinglist?x=1"), 404);
  // The service survived and still serves real pinglists.
  const topo::Server& s = t.servers()[0];
  EXPECT_EQ(http_get_status(reactor, svc.port(), "/pinglist/" + s.ip.str()), 200);
}

TEST(HttpDistribution, ServesFreshFilesAfterVersionChange) {
  // Regression: pinglists were generated once at construction; a topology
  // or config change (generator version bump) kept stale files on the wire
  // until an explicit regenerate() call.
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  net::Reactor reactor;
  ControllerHttpService svc(reactor, net::SockAddr::loopback(0), t, gen);
  const topo::Server& s = t.servers()[0];

  std::string body;
  ASSERT_EQ(http_get_status(reactor, svc.port(), "/pinglist/" + s.ip.str(), &body), 200);
  EXPECT_EQ(Pinglist::from_xml(body).version, gen.version());

  gen.set_version(7);
  ASSERT_EQ(http_get_status(reactor, svc.port(), "/pinglist/" + s.ip.str(), &body), 200);
  EXPECT_EQ(Pinglist::from_xml(body).version, 7u);
  EXPECT_GE(svc.regenerations(), 2u);

  // Withdrawal is sticky: a later version bump must not resurrect files.
  svc.withdraw_all();
  gen.set_version(8);
  EXPECT_EQ(http_get_status(reactor, svc.port(), "/pinglist/" + s.ip.str()), 404);
}

TEST(HttpDistribution, ConditionalGetRevalidatesWithoutRerender) {
  // The thundering-herd path: a re-poll with If-None-Match must come back
  // 304 before the render path runs, so an unchanged pinglist costs the
  // controller headers only. A generator version bump invalidates the
  // validator and the next conditional GET gets a fresh 200.
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  net::Reactor reactor;
  ControllerHttpService svc(reactor, net::SockAddr::loopback(0), t, gen);
  const topo::Server& s = t.servers()[0];
  const std::string path = "/pinglist/" + s.ip.str();

  net::HttpClient client(reactor);
  auto fetch = [&](const std::string& inm) {
    net::HttpRequest req{"GET", path, {}, ""};
    if (!inm.empty()) req.headers["if-none-match"] = inm;
    std::optional<net::HttpResult> result;
    client.request(net::SockAddr::loopback(svc.port()), std::move(req),
                   std::chrono::milliseconds(2000),
                   [&result](const net::HttpResult& r) { result = r; });
    reactor.run_until([&result] { return result.has_value(); },
                      net::Reactor::Clock::now() + std::chrono::milliseconds(2500));
    EXPECT_TRUE(result && result->ok);
    return result->response;
  };

  net::HttpResponse first = fetch("");
  ASSERT_EQ(first.status, 200);
  std::string etag = first.headers.at("etag");
  std::uint64_t renders = svc.files_rendered();

  // Herd re-poll: 8 revalidations, zero new renders, empty bodies.
  for (int i = 0; i < 8; ++i) {
    net::HttpResponse again = fetch(etag);
    EXPECT_EQ(again.status, 304);
    EXPECT_TRUE(again.body.empty());
  }
  EXPECT_EQ(svc.files_rendered(), renders);

  // Version bump: old validator no longer matches; exactly one re-render.
  gen.set_version(gen.version() + 1);
  net::HttpResponse fresh = fetch(etag);
  EXPECT_EQ(fresh.status, 200);
  EXPECT_NE(fresh.headers.at("etag"), etag);
  EXPECT_EQ(svc.files_rendered(), renders + 1);
}

TEST(HttpDistribution, PinglistSourceCachesAndRevalidates) {
  // HttpPinglistSource remembers (etag, parsed pinglist) per server: a 304
  // reuses the cached parse, so agents re-polling an unchanged controller
  // skip both the XML transfer and the parse.
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  net::Reactor reactor;
  ControllerHttpService svc(reactor, net::SockAddr::loopback(0), t, gen);
  SlbVip vip;
  vip.add_backend("controller-0");
  HttpPinglistSource source(reactor, vip, {net::SockAddr::loopback(svc.port())});
  const topo::Server& s = t.servers()[2];

  FetchResult cold = source.fetch(s.ip);
  ASSERT_EQ(cold.status, FetchStatus::kOk);
  EXPECT_EQ(source.revalidated(), 0u);

  FetchResult warm = source.fetch(s.ip);
  ASSERT_EQ(warm.status, FetchStatus::kOk);
  EXPECT_EQ(source.revalidated(), 1u);
  EXPECT_EQ(warm.pinglist.get(), cold.pinglist.get());  // cached parse reused

  gen.set_version(gen.version() + 1);
  FetchResult fresh = source.fetch(s.ip);
  ASSERT_EQ(fresh.status, FetchStatus::kOk);
  EXPECT_EQ(source.revalidated(), 1u);  // changed content: full 200 again
  EXPECT_EQ(fresh.pinglist->version, gen.version());
}

TEST(HttpDistribution, SlbFailsOverBetweenControllerReplicas) {
  // Two controller replicas behind one VIP: killing one removes it from
  // rotation after a few failures and fetches keep succeeding (§3.3.2).
  topo::Topology t = two_small_dcs();
  PinglistGenerator gen(t, fast_config());
  net::Reactor reactor;
  auto svc_a = std::make_unique<ControllerHttpService>(reactor, net::SockAddr::loopback(0),
                                                       t, gen);
  ControllerHttpService svc_b(reactor, net::SockAddr::loopback(0), t, gen);
  std::uint16_t port_a = svc_a->port();

  SlbVip vip(/*failure_threshold=*/2);
  vip.add_backend("controller-a");
  vip.add_backend("controller-b");
  HttpPinglistSource source(
      reactor, vip,
      {net::SockAddr::loopback(port_a), net::SockAddr::loopback(svc_b.port())},
      std::chrono::milliseconds(300));

  const topo::Server& s = t.servers()[0];
  // Warm: both replicas serve identical files.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(source.fetch(s.ip).status, FetchStatus::kOk);

  // Replica A dies.
  svc_a.reset();
  int ok = 0;
  for (int i = 0; i < 12; ++i) {
    if (source.fetch(s.ip).status == FetchStatus::kOk) ++ok;
  }
  // At most a couple of fetches hit the dead replica before the SLB pulls
  // it out of rotation; everything after that lands on B.
  EXPECT_GE(ok, 10);
  EXPECT_EQ(vip.healthy_count(), 1u);
  EXPECT_EQ(source.fetch(s.ip).status, FetchStatus::kOk);
}

TEST(HttpDistribution, UnreachableControllerReported) {
  net::Reactor reactor;
  SlbVip vip;
  vip.add_backend("controller-0");
  std::uint16_t dead_port;
  {
    net::Reactor tmp;
    net::HttpServer victim(tmp, net::SockAddr::loopback(0));
    dead_port = victim.port();
  }
  HttpPinglistSource source(reactor, vip, {net::SockAddr::loopback(dead_port)},
                            std::chrono::milliseconds(300));
  EXPECT_EQ(source.fetch(IpAddr(10, 0, 0, 1)).status, FetchStatus::kUnreachable);
}

}  // namespace
}  // namespace pingmesh::controller

// Tests for the real-socket layer: reactor, TCP probe client/server, HTTP.
// Everything runs over loopback with ephemeral ports.
#include <gtest/gtest.h>

#include <chrono>

#include "net/http.h"
#include "net/reactor.h"
#include "net/sockaddr.h"
#include "net/tcp_probe.h"

namespace pingmesh::net {
namespace {

using namespace std::chrono_literals;

TEST(SockAddr, Parsing) {
  SockAddr a = SockAddr::ipv4("127.0.0.1", 8080);
  EXPECT_EQ(a.port(), 8080);
  EXPECT_EQ(a.str(), "127.0.0.1:8080");
  EXPECT_EQ(a.ip().str(), "127.0.0.1");
  EXPECT_THROW(SockAddr::ipv4("not-an-ip", 1), std::invalid_argument);
}

TEST(SockAddr, FromIpAddr) {
  SockAddr a = SockAddr::ipv4(IpAddr(10, 1, 2, 3), 99);
  EXPECT_EQ(a.str(), "10.1.2.3:99");
}

TEST(Fd, MoveSemantics) {
  Fd a(::dup(0));
  ASSERT_TRUE(a.valid());
  int raw = a.get();
  Fd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), raw);
  b.reset();
  EXPECT_FALSE(b.valid());
}

TEST(Reactor, TimerFires) {
  Reactor r;
  bool fired = false;
  r.add_timer_after(10ms, [&] { fired = true; });
  bool ok = r.run_until([&] { return fired; }, Reactor::Clock::now() + 2s);
  EXPECT_TRUE(ok);
}

TEST(Reactor, TimerCancel) {
  Reactor r;
  bool fired = false;
  auto id = r.add_timer_after(10ms, [&] { fired = true; });
  r.cancel_timer(id);
  r.run_until([] { return false; }, Reactor::Clock::now() + 50ms);
  EXPECT_FALSE(fired);
}

TEST(Reactor, TimersFireInOrder) {
  Reactor r;
  std::vector<int> order;
  r.add_timer_after(30ms, [&] { order.push_back(3); });
  r.add_timer_after(10ms, [&] { order.push_back(1); });
  r.add_timer_after(20ms, [&] { order.push_back(2); });
  r.run_until([&] { return order.size() == 3; }, Reactor::Clock::now() + 2s);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// TCP probing over loopback
// ---------------------------------------------------------------------------

class TcpProbeTest : public ::testing::Test {
 protected:
  TcpProbeTest() : server_(reactor_, SockAddr::loopback(0)), prober_(reactor_) {}

  SockAddr server_addr() const { return SockAddr::loopback(server_.port()); }

  Reactor reactor_;
  TcpProbeServer server_;
  TcpProber prober_;
};

TEST_F(TcpProbeTest, ConnectOnlyProbe) {
  std::optional<TcpProbeResult> result;
  prober_.probe(server_addr(), 0, 2000ms, [&](const TcpProbeResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  EXPECT_TRUE(result->connected);
  EXPECT_GT(result->connect_ns, 0);
  EXPECT_LT(result->connect_ns, 1'000'000'000);
  EXPECT_FALSE(result->payload_ok);
  EXPECT_GT(result->src_port, 0);
}

TEST_F(TcpProbeTest, PayloadEchoProbe) {
  std::optional<TcpProbeResult> result;
  prober_.probe(server_addr(), 1000, 2000ms, [&](const TcpProbeResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  EXPECT_TRUE(result->connected);
  EXPECT_TRUE(result->payload_ok);
  EXPECT_GT(result->payload_ns, 0);
  EXPECT_EQ(server_.frames_echoed(), 1u);
}

TEST_F(TcpProbeTest, FreshSourcePortPerProbe) {
  std::vector<std::uint16_t> ports;
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    prober_.probe(server_addr(), 0, 2000ms, [&](const TcpProbeResult& r) {
      ports.push_back(r.src_port);
      ++done;
    });
  }
  ASSERT_TRUE(reactor_.run_until([&] { return done == 5; }, Reactor::Clock::now() + 3s));
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(std::unique(ports.begin(), ports.end()), ports.end());
}

TEST_F(TcpProbeTest, ManyConcurrentProbes) {
  const int kProbes = 200;
  int done = 0, ok = 0;
  for (int i = 0; i < kProbes; ++i) {
    prober_.probe(server_addr(), (i % 3 == 0) ? 256 : 0, 5000ms,
                  [&](const TcpProbeResult& r) {
                    ++done;
                    if (r.connected) ++ok;
                  });
  }
  ASSERT_TRUE(
      reactor_.run_until([&] { return done == kProbes; }, Reactor::Clock::now() + 10s));
  EXPECT_EQ(ok, kProbes);
  EXPECT_EQ(prober_.inflight(), 0u);
}

TEST_F(TcpProbeTest, ConnectionRefusedReported) {
  // Bind a listener, grab its port, then close it so connects are refused.
  std::uint16_t dead_port;
  {
    Reactor tmp;
    TcpProbeServer victim(tmp, SockAddr::loopback(0));
    dead_port = victim.port();
  }
  std::optional<TcpProbeResult> result;
  prober_.probe(SockAddr::loopback(dead_port), 0, 2000ms,
                [&](const TcpProbeResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  EXPECT_FALSE(result->connected);
  EXPECT_NE(result->error_errno, 0);
}

TEST_F(TcpProbeTest, OversizedFrameClosesConnection) {
  // The server rejects frames above its hard cap (agent safety).
  std::optional<TcpProbeResult> result;
  prober_.probe(server_addr(), static_cast<int>(TcpProbeServer::kMaxFrame) + 1, 2000ms,
                [&](const TcpProbeResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  EXPECT_TRUE(result->connected);
  EXPECT_FALSE(result->payload_ok);
}

// ---------------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------------

TEST(HttpParse, Request) {
  auto req = parse_request("GET /pinglist/10.0.0.1 HTTP/1.1\r\nhost: x\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/pinglist/10.0.0.1");
  EXPECT_EQ(req->headers.at("host"), "x");
}

TEST(HttpParse, RequestWithBody) {
  auto req = parse_request("POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "hello");
}

TEST(HttpParse, IncompleteReturnsNullopt) {
  EXPECT_FALSE(parse_request("GET /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhe").has_value());
  EXPECT_FALSE(parse_request("GET /x HT").has_value());
}

TEST(HttpParse, Response) {
  auto resp = parse_response("HTTP/1.1 404 Not Found\r\ncontent-length: 3\r\n\r\nnah");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->reason, "Not Found");
  EXPECT_EQ(resp->body, "nah");
}

TEST(HttpParse, SerializeRoundTrip) {
  HttpResponse r = HttpResponse::ok("payload", "application/xml");
  auto parsed = parse_response(serialize(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, "payload");
  EXPECT_EQ(parsed->headers.at("content-type"), "application/xml");
}

TEST(HttpParse, NotModifiedHasNoBodyDespiteContentLength) {
  // RFC 7230 §3.3.3: 304/204/1xx never carry a body; a Content-Length on a
  // 304 describes the entity that WOULD have been sent. The parser must not
  // wait for (or consume) body bytes.
  auto resp = parse_response("HTTP/1.1 304 Not Modified\r\ncontent-length: 128\r\n\r\n");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 304);
  EXPECT_TRUE(resp->body.empty());
  EXPECT_TRUE(resp->body_forbidden());
  auto no_content = parse_response("HTTP/1.1 204 No Content\r\ncontent-length: 9\r\n\r\n");
  ASSERT_TRUE(no_content.has_value());
  EXPECT_TRUE(no_content->body.empty());
}

TEST(HttpParse, HeadResponseParsesWithoutBodyBytes) {
  // A HEAD response advertises the entity's Content-Length but sends no
  // body; the caller signals HEAD context via the head_request flag.
  auto resp = parse_response("HTTP/1.1 200 OK\r\ncontent-length: 42\r\n\r\n",
                             /*head_request=*/true);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_TRUE(resp->body.empty());
  EXPECT_EQ(resp->headers.at("content-length"), "42");
}

TEST(HttpParse, SerializeHeadKeepsEntityContentLength) {
  HttpResponse r = HttpResponse::ok("hello world");
  std::string wire = serialize(r, /*head_request=*/true);
  EXPECT_NE(wire.find("content-length: 11"), std::string::npos);
  EXPECT_EQ(wire.find("hello world"), std::string::npos);  // no body on the wire
}

TEST(HttpParse, SerializeNotModified) {
  HttpResponse r = HttpResponse::not_modified("\"v7\"");
  std::string wire = serialize(r);
  EXPECT_NE(wire.find("304 Not Modified"), std::string::npos);
  EXPECT_NE(wire.find("etag: \"v7\""), std::string::npos);
  EXPECT_NE(wire.find("content-length: 0"), std::string::npos);
}

TEST(HttpParse, EtagMatch) {
  EXPECT_TRUE(etag_match("\"abc\"", "\"abc\""));
  EXPECT_FALSE(etag_match("\"abc\"", "\"xyz\""));
  // List form: any member may match.
  EXPECT_TRUE(etag_match("\"a\", \"b\", \"c\"", "\"b\""));
  // Wildcard matches any current representation.
  EXPECT_TRUE(etag_match("*", "\"whatever\""));
  // Weak validators compare equal for If-None-Match (weak comparison).
  EXPECT_TRUE(etag_match("W/\"abc\"", "\"abc\""));
  EXPECT_TRUE(etag_match("\"abc\"", "W/\"abc\""));
  EXPECT_TRUE(etag_match("W/\"abc\"", "W/\"abc\""));
  EXPECT_FALSE(etag_match("", "\"abc\""));
}

// RFC 9110 §8.8.3 / §13.1.2: weak validators inside LISTS, commas inside
// quoted tags, and hostile inputs — the cases the pre-fix parser got wrong
// (it split on commas before quotes and only stripped a leading W/).
TEST(HttpParse, EtagMatchRfc9110EdgeCases) {
  // A weak member mid-list must still match (weak comparison per member).
  EXPECT_TRUE(etag_match("\"a\", W/\"b\", \"c\"", "\"b\""));
  EXPECT_TRUE(etag_match("W/\"a\", W/\"b\"", "W/\"b\""));
  // A comma INSIDE a quoted tag is tag content, not a list separator.
  EXPECT_TRUE(etag_match("\"a,b\"", "\"a,b\""));
  EXPECT_FALSE(etag_match("\"a\", \"b\"", "\"a, b\""));
  EXPECT_FALSE(etag_match("\"a,b\"", "\"a\""));
  EXPECT_TRUE(etag_match("\"x\", \"a,b\", \"y\"", "\"a,b\""));
  // Whitespace variants around members.
  EXPECT_TRUE(etag_match("  \"a\" ,\"b\"  ", "\"b\""));
  EXPECT_TRUE(etag_match("W/ is not special here, \"q-1\"", "\"q-1\""));
  // W/ prefix is only a weakness marker when attached to a quoted tag;
  // "W/" alone or weak-of-nothing never equals a real tag.
  EXPECT_FALSE(etag_match("W/", "\"abc\""));
  EXPECT_FALSE(etag_match("W/\"\"", "\"abc\""));
  EXPECT_TRUE(etag_match("W/\"\"", "\"\""));
  // Unterminated quote: the rest of the header is one (non-matching) tag,
  // never an infinite loop or a false positive.
  EXPECT_FALSE(etag_match("\"abc", "\"abc\""));
  EXPECT_FALSE(etag_match("\"a\", \"unterminated", "\"b\""));
  EXPECT_TRUE(etag_match("\"b\", \"unterminated", "\"b\""));
  // `*` only counts as the wildcard when it is the whole member.
  EXPECT_FALSE(etag_match("\"*\"", "\"abc\""));
  // Empty list members (stray commas) are skipped, not matched.
  EXPECT_FALSE(etag_match(",,,", "\"a\""));
  EXPECT_TRUE(etag_match(", ,\"a\",", "\"a\""));
  // Legacy unquoted tokens (seen from non-conforming clients) compare as
  // opaque strings.
  EXPECT_TRUE(etag_match("abc", "abc"));
  EXPECT_FALSE(etag_match("abc", "\"abc\""));
}

class HttpTest : public ::testing::Test {
 protected:
  HttpTest() : server_(reactor_, SockAddr::loopback(0)), client_(reactor_) {
    server_.route("/hello", [](const HttpRequest&) { return HttpResponse::ok("world"); });
    server_.route("/echo", [](const HttpRequest& req) { return HttpResponse::ok(req.body); });
  }

  SockAddr addr() const { return SockAddr::loopback(server_.port()); }

  Reactor reactor_;
  HttpServer server_;
  HttpClient client_;
};

TEST_F(HttpTest, GetOk) {
  std::optional<HttpResult> result;
  client_.get(addr(), "/hello", 2000ms, [&](const HttpResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->response.status, 200);
  EXPECT_EQ(result->response.body, "world");
  EXPECT_GT(result->total_ns, 0);
}

TEST_F(HttpTest, NotFoundForUnknownRoute) {
  std::optional<HttpResult> result;
  client_.get(addr(), "/nope", 2000ms, [&](const HttpResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->response.status, 404);
}

TEST_F(HttpTest, PostBodyEchoed) {
  std::optional<HttpResult> result;
  HttpRequest req{"POST", "/echo", {}, "ping-body"};
  client_.request(addr(), req, 2000ms, [&](const HttpResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->response.body, "ping-body");
}

TEST_F(HttpTest, LongestPrefixWins) {
  server_.route("/", [](const HttpRequest&) { return HttpResponse::ok("root"); });
  server_.route("/hello/world", [](const HttpRequest&) { return HttpResponse::ok("deep"); });
  std::optional<HttpResult> r1, r2;
  client_.get(addr(), "/hello/world", 2000ms, [&](const HttpResult& r) { r1 = r; });
  client_.get(addr(), "/other", 2000ms, [&](const HttpResult& r) { r2 = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return r1 && r2; }, Reactor::Clock::now() + 3s));
  EXPECT_EQ(r1->response.body, "deep");
  EXPECT_EQ(r2->response.body, "root");
}

TEST_F(HttpTest, ManyConcurrentRequests) {
  const int kCalls = 100;
  int done = 0, ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    client_.get(addr(), "/hello", 5000ms, [&](const HttpResult& r) {
      ++done;
      if (r.ok && r.response.status == 200) ++ok;
    });
  }
  ASSERT_TRUE(
      reactor_.run_until([&] { return done == kCalls; }, Reactor::Clock::now() + 10s));
  EXPECT_EQ(ok, kCalls);
  EXPECT_EQ(server_.requests_served(), static_cast<std::uint64_t>(kCalls));
}

TEST_F(HttpTest, HeadRoutesLikeGetWithoutBody) {
  std::optional<HttpResult> result;
  client_.head(addr(), "/hello", 2000ms, [&](const HttpResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->response.status, 200);
  EXPECT_TRUE(result->response.body.empty());
  // Entity metadata survives: content-length names the GET body's size.
  EXPECT_EQ(result->response.headers.at("content-length"), "5");  // "world"
}

TEST_F(HttpTest, ConditionalGetRoundTrips304) {
  server_.route("/versioned", [](const HttpRequest& req) {
    std::string etag = "\"v1\"";
    if (auto it = req.headers.find("if-none-match");
        it != req.headers.end() && etag_match(it->second, etag)) {
      return HttpResponse::not_modified(std::move(etag));
    }
    HttpResponse resp = HttpResponse::ok("content");
    resp.headers["etag"] = etag;
    return resp;
  });
  std::optional<HttpResult> first, second;
  client_.get(addr(), "/versioned", 2000ms, [&](const HttpResult& r) { first = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return first.has_value(); },
                                 Reactor::Clock::now() + 3s));
  ASSERT_TRUE(first->ok);
  HttpRequest req{"GET", "/versioned", {{"if-none-match", first->response.headers.at("etag")}}, ""};
  client_.request(addr(), req, 2000ms, [&](const HttpResult& r) { second = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return second.has_value(); },
                                 Reactor::Clock::now() + 3s));
  ASSERT_TRUE(second->ok);
  EXPECT_EQ(second->response.status, 304);
  EXPECT_TRUE(second->response.body.empty());
}

TEST_F(HttpTest, ConnectionRefused) {
  std::uint16_t dead_port;
  {
    Reactor tmp;
    HttpServer victim(tmp, SockAddr::loopback(0));
    dead_port = victim.port();
  }
  std::optional<HttpResult> result;
  client_.get(SockAddr::loopback(dead_port), "/x", 1000ms,
              [&](const HttpResult& r) { result = r; });
  ASSERT_TRUE(reactor_.run_until([&] { return result.has_value(); },
                                 Reactor::Clock::now() + 3s));
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error_errno, 0);
}

}  // namespace
}  // namespace pingmesh::net

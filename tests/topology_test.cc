// Unit tests for the Clos topology model.
#include <gtest/gtest.h>

#include <set>

#include "topology/topology.h"

namespace pingmesh::topo {
namespace {

Topology two_small_dcs() {
  return Topology::build({small_dc_spec("DC1", "US West"), small_dc_spec("DC2", "Asia")});
}

TEST(Topology, BuildCounts) {
  Topology t = two_small_dcs();
  // small: 2 podsets x 4 pods x 8 servers = 64 servers per DC
  EXPECT_EQ(t.server_count(), 128u);
  EXPECT_EQ(t.dcs().size(), 2u);
  EXPECT_EQ(t.podsets().size(), 4u);
  EXPECT_EQ(t.pods().size(), 16u);
  // switches per DC: 4 spines + 2 borders + 2 podsets * (2 leaves) + 8 tors = 18
  EXPECT_EQ(t.switch_count(), 36u);
}

TEST(Topology, ContainmentCoordinatesConsistent) {
  Topology t = two_small_dcs();
  for (const Server& s : t.servers()) {
    const Pod& pod = t.pod(s.pod);
    EXPECT_EQ(pod.podset, s.podset);
    EXPECT_EQ(pod.dc, s.dc);
    EXPECT_EQ(pod.tor, s.tor);
    const Podset& ps = t.podset(s.podset);
    EXPECT_EQ(ps.dc, s.dc);
    // server is listed in its pod at index_in_pod
    ASSERT_LT(static_cast<std::size_t>(s.index_in_pod), pod.servers.size());
    EXPECT_EQ(pod.servers[static_cast<std::size_t>(s.index_in_pod)], s.id);
  }
}

TEST(Topology, UniqueIps) {
  Topology t = two_small_dcs();
  std::set<std::uint32_t> ips;
  for (const Server& s : t.servers()) ips.insert(s.ip.v);
  EXPECT_EQ(ips.size(), t.server_count());
}

TEST(Topology, IpLookup) {
  Topology t = two_small_dcs();
  for (const Server& s : t.servers()) {
    EXPECT_EQ(t.server_by_ip(s.ip), s.id);
  }
  EXPECT_FALSE(t.find_server_by_ip(IpAddr(1, 2, 3, 4)).has_value());
  EXPECT_THROW(t.server_by_ip(IpAddr(1, 2, 3, 4)), std::out_of_range);
}

TEST(Topology, Relations) {
  Topology t = two_small_dcs();
  const Pod& pod0 = t.pods()[0];
  ServerId a = pod0.servers[0];
  ServerId b = pod0.servers[1];
  EXPECT_TRUE(t.same_pod(a, b));
  EXPECT_TRUE(t.same_podset(a, b));
  EXPECT_TRUE(t.same_dc(a, b));

  const Pod& pod1 = t.pods()[1];  // same podset, different pod
  ServerId c = pod1.servers[0];
  EXPECT_FALSE(t.same_pod(a, c));
  EXPECT_TRUE(t.same_podset(a, c));

  // Server in the second DC.
  ServerId far = t.dcs()[1].servers.front();
  EXPECT_FALSE(t.same_dc(a, far));
}

TEST(Topology, SwitchQueries) {
  Topology t = two_small_dcs();
  DcId dc0{0};
  EXPECT_EQ(t.switches_in_dc(dc0, SwitchKind::kSpine).size(), 4u);
  EXPECT_EQ(t.switches_in_dc(dc0, SwitchKind::kBorder).size(), 2u);
  EXPECT_EQ(t.switches_in_dc(dc0, SwitchKind::kLeaf).size(), 4u);
  EXPECT_EQ(t.switches_in_dc(dc0, SwitchKind::kTor).size(), 8u);
  for (SwitchId sw : t.switches_in_dc(dc0, SwitchKind::kTor)) {
    EXPECT_EQ(t.sw(sw).kind, SwitchKind::kTor);
    EXPECT_EQ(t.sw(sw).dc, dc0);
  }
}

TEST(Topology, NamesAreDescriptive) {
  Topology t = two_small_dcs();
  EXPECT_EQ(t.servers()[0].name, "DC1-PS0-P0-S0");
  bool found_spine = false;
  for (const Switch& sw : t.switches()) {
    if (sw.kind == SwitchKind::kSpine && sw.name == "DC1-SP0") found_spine = true;
  }
  EXPECT_TRUE(found_spine);
}

TEST(Topology, InvalidSpecsThrow) {
  EXPECT_THROW(Topology::build({}), std::invalid_argument);
  DcSpec bad = small_dc_spec("X", "Y");
  bad.servers_per_pod = 0;
  EXPECT_THROW(Topology::build({bad}), std::invalid_argument);
  DcSpec huge = small_dc_spec("X", "Y");
  huge.podsets = 100;
  huge.pods_per_podset = 100;
  huge.servers_per_pod = 100;  // 1M > 65536 per-DC IP plan
  EXPECT_THROW(Topology::build({huge}), std::invalid_argument);
}

TEST(Topology, InvalidIdAccessThrows) {
  Topology t = two_small_dcs();
  EXPECT_THROW(t.server(ServerId{99999}), std::out_of_range);
  EXPECT_THROW(t.pod(PodId{99999}), std::out_of_range);
  EXPECT_THROW(t.dc(DcId{99}), std::out_of_range);
}

class SpecShapeTest : public ::testing::TestWithParam<DcSpec> {};

TEST_P(SpecShapeTest, StructuralInvariants) {
  Topology t = Topology::build({GetParam()});
  const DcSpec& spec = GetParam();
  const DataCenter& dc = t.dcs()[0];
  EXPECT_EQ(dc.podsets.size(), static_cast<std::size_t>(spec.podsets));
  EXPECT_EQ(dc.spines.size(), static_cast<std::size_t>(spec.spines));
  std::size_t servers = 0;
  for (PodsetId ps : dc.podsets) {
    EXPECT_EQ(t.podset(ps).pods.size(), static_cast<std::size_t>(spec.pods_per_podset));
    EXPECT_EQ(t.podset(ps).leaves.size(), static_cast<std::size_t>(spec.leaves_per_podset));
    for (PodId p : t.podset(ps).pods) {
      EXPECT_EQ(t.pod(p).servers.size(), static_cast<std::size_t>(spec.servers_per_pod));
      servers += t.pod(p).servers.size();
    }
  }
  EXPECT_EQ(servers, t.server_count());
}

INSTANTIATE_TEST_SUITE_P(Shapes, SpecShapeTest,
                         ::testing::Values(small_dc_spec("A", "r"),
                                           medium_dc_spec("B", "r"),
                                           large_dc_spec("C", "r")));

TEST(ServiceMap, MembershipAndReverseLookup) {
  Topology t = two_small_dcs();
  ServiceMap services;
  std::vector<ServerId> search_servers(t.dcs()[0].servers.begin(),
                                       t.dcs()[0].servers.begin() + 10);
  ServiceId search = services.add_service("Search", search_servers);
  ServiceId storage = services.add_service(
      "Storage", {t.dcs()[0].servers[5], t.dcs()[1].servers[0]});

  EXPECT_EQ(services.service_count(), 2u);
  EXPECT_EQ(services.name(search), "Search");
  EXPECT_EQ(services.servers(search).size(), 10u);

  auto both = services.services_of(t.dcs()[0].servers[5]);
  EXPECT_EQ(both.size(), 2u);
  auto none = services.services_of(t.dcs()[1].servers[5]);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(services.services_of(t.dcs()[1].servers[0]),
            (std::vector<ServiceId>{storage}));
  EXPECT_THROW(services.name(ServiceId{7}), std::out_of_range);
}

}  // namespace
}  // namespace pingmesh::topo

// Closed-loop self-healing tests (DESIGN.md §14): the planted-fault matrix
// (black-hole -> reload, spine silent-drop -> isolate+RMA, transient
// congestion -> deliberate no-action), the soak report's worker-count byte
// identity, the budget-exhaustion and day-rollover paths of the deferred
// reload queue, and the PR-4 / PR-9 chaos scenarios re-run with healing
// enabled to show repairs never fight SLB or serving-tier recovery.
#include <gtest/gtest.h>

#include <string>

#include "chaos/engine.h"
#include "chaos/injector.h"
#include "chaos/invariants.h"
#include "chaos/plan.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "heal/loop.h"
#include "heal/soak.h"
#include "topology/topology.h"

namespace pingmesh::heal {
namespace {

using chaos::ChaosEvent;
using chaos::ChaosEventKind;
using chaos::ChaosPlan;
using chaos::ChaosRunOptions;
using chaos::ChaosRunResult;
using chaos::HealIncidentSummary;
using chaos::InvariantFinding;

ChaosPlan heal_plan(std::uint64_t seed, SimTime duration, SimTime settle) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.duration = duration;
  plan.settle = settle;
  plan.heal = true;
  return plan;
}

ChaosEvent blackhole(std::uint32_t pod, double magnitude, SimTime start, SimTime end) {
  ChaosEvent e;
  e.kind = ChaosEventKind::kTorBlackhole;
  e.entity = pod;
  e.magnitude = magnitude;
  e.start = start;
  e.end = end;
  return e;
}

const HealIncidentSummary* find_incident(const ChaosRunResult& r, const std::string& action) {
  for (const HealIncidentSummary& inc : r.heal.incidents) {
    if (inc.action == action) return &inc;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Plan format: the heal directive and the new fault kinds
// ---------------------------------------------------------------------------

TEST(HealPlan, HealDirectiveAndNewKindsRoundTrip) {
  const std::string text =
      "# pingmesh chaos plan v1\n"
      "seed 7\n"
      "duration 20m\n"
      "settle 8m\n"
      "heal on\n"
      "event blackhole pod=3 prob=0.5 start=4m end=14m\n"
      "event spine-drop switch=1 prob=0.1 start=5m end=12m\n"
      "event congestion switch=9 prob=0.2 start=6m end=9m\n";
  auto plan = chaos::parse_plan(text);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->heal);
  ASSERT_EQ(plan->events.size(), 3u);
  EXPECT_EQ(plan->events[0].kind, ChaosEventKind::kTorBlackhole);
  EXPECT_DOUBLE_EQ(plan->events[0].magnitude, 0.5);
  EXPECT_EQ(plan->events[1].kind, ChaosEventKind::kSpineDrop);
  EXPECT_EQ(plan->events[2].kind, ChaosEventKind::kCongestion);

  auto replayed = chaos::parse_plan(chaos::to_text(*plan));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, *plan);

  // heal defaults off and `heal off` parses back to the default.
  auto off = chaos::parse_plan("# pingmesh chaos plan v1\nheal off\n");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->heal);
}

// ---------------------------------------------------------------------------
// Planted-fault matrix: one scripted fault per repair path
// ---------------------------------------------------------------------------

TEST(HealLoop, BlackholeIsCorroboratedThenReloadedWithinDeadline) {
  // A partial ToR black-hole: the streaming fail-rate rule must trigger,
  // the BlackholeDetector must corroborate the same ToR, and the budgeted
  // reload must clear the injected fault — all inside the repair deadline.
  ChaosPlan plan = heal_plan(41, minutes(20), minutes(8));
  plan.events.push_back(blackhole(2, 0.5, minutes(4), minutes(14)));
  ChaosRunResult r = chaos::run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();

  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 1u);
  EXPECT_EQ(r.heal.rmas_executed, 0u);
  const HealIncidentSummary* inc = find_incident(r, "reload");
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->state, "recovered");
  // Timeline ordering: detect -> corroborate -> repair -> recover.
  EXPECT_LE(inc->detect, inc->corroborate);
  EXPECT_LE(inc->corroborate, inc->repair);
  EXPECT_LT(inc->repair, inc->recover);
  // Detection within 2 sim-minutes of injection, repair within the deadline.
  EXPECT_GE(inc->detect, minutes(4));
  EXPECT_LE(inc->detect, minutes(4) + minutes(2));
  EXPECT_LE(inc->repair, minutes(4) + chaos::kHealRepairDeadline);
  // Repair restored the pairs: post-recovery SLA above the pre-repair rate.
  EXPECT_GE(inc->sla_before, 0.0);
  EXPECT_GT(inc->sla_after, inc->sla_before);

  const InvariantFinding* repaired = r.report.find("blackhole-repaired");
  ASSERT_NE(repaired, nullptr);
  EXPECT_TRUE(repaired->applicable);
  EXPECT_TRUE(repaired->ok) << repaired->detail;
  const InvariantFinding* corroborated = r.report.find("corroborated-repair");
  ASSERT_NE(corroborated, nullptr);
  EXPECT_TRUE(corroborated->applicable);
  EXPECT_TRUE(corroborated->ok) << corroborated->detail;
}

TEST(HealLoop, SpineSilentDropIsIsolatedAndRmad) {
  // Silent random drops on a spine: reload cannot fix the fault class, so
  // the corroborated path must go straight to isolate + RMA (§5.1), and no
  // reload budget may be burned on it.
  ChaosPlan plan = heal_plan(43, minutes(20), minutes(8));
  ChaosEvent e;
  e.kind = ChaosEventKind::kSpineDrop;
  e.entity = 1;
  e.magnitude = 0.12;
  e.start = minutes(4);
  e.end = minutes(14);
  plan.events.push_back(e);
  ChaosRunResult r = chaos::run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();

  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 0u);
  ASSERT_GE(r.heal.rmas_executed, 1u);
  const HealIncidentSummary* inc = find_incident(r, "isolate-rma");
  ASSERT_NE(inc, nullptr);
  // The localizer must blame the injected spine itself.
  core::SimulationConfig base = core::chaos_test_config(plan.seed);
  topo::Topology topo = topo::Topology::build(base.dcs);
  EXPECT_EQ(inc->sw, chaos::resolve_event_switch(topo, e));
  EXPECT_GT(inc->repair, 0);
  const InvariantFinding* corroborated = r.report.find("corroborated-repair");
  ASSERT_NE(corroborated, nullptr);
  EXPECT_TRUE(corroborated->ok) << corroborated->detail;
}

TEST(HealLoop, TransientCongestionGetsNoRepair) {
  // Congestion inflates latency and drops some probes, but it is not a
  // switch fault the loop can fix: triggers must expire uncorroborated and
  // no repair of either kind may fire.
  ChaosPlan plan = heal_plan(47, minutes(20), minutes(8));
  ChaosEvent e;
  e.kind = ChaosEventKind::kCongestion;
  e.entity = 9;
  e.magnitude = 0.2;
  e.start = minutes(4);
  e.end = minutes(8);
  plan.events.push_back(e);
  ChaosRunResult r = chaos::run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();

  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 0u);
  EXPECT_EQ(r.heal.rmas_executed, 0u);
  for (const HealIncidentSummary& inc : r.heal.incidents) {
    EXPECT_TRUE(inc.action == "none" || inc.action == "escalate")
        << "congestion produced repair action " << inc.action;
  }
}

// ---------------------------------------------------------------------------
// Reload budget: exhaustion surfaces deferred repairs, rollover executes them
// ---------------------------------------------------------------------------

TEST(HealLoop, BudgetExhaustionSurfacesDeferredRepairInReport) {
  // With a zero reload budget the corroborated blame must be parked, never
  // silently dropped: the incident stays deferred, the outcome counts the
  // parked request, and the blackhole-repaired invariant flags the miss.
  core::SimulationConfig base = core::chaos_test_config(53);
  base.repair.max_reloads_per_day = 0;
  ChaosRunOptions opts;
  opts.base_config = &base;
  ChaosPlan plan = heal_plan(53, minutes(20), minutes(8));
  plan.events.push_back(blackhole(1, 0.5, minutes(4), minutes(14)));
  ChaosRunResult r = chaos::run_plan(plan, opts);

  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 0u);
  EXPECT_EQ(r.heal.deferred_pending, 1u);
  ASSERT_EQ(r.heal.incidents.size(), 1u);
  EXPECT_TRUE(r.heal.incidents[0].deferred);
  EXPECT_EQ(r.heal.incidents[0].state, "corroborated");
  // The miss is surfaced, not hidden: the repair invariant must fail.
  const InvariantFinding* repaired = r.report.find("blackhole-repaired");
  ASSERT_NE(repaired, nullptr);
  EXPECT_TRUE(repaired->applicable);
  EXPECT_FALSE(repaired->ok);
}

TEST(HealLoop, DeferredReloadExecutesAtDayRolloverMidSoak) {
  // Two black-holes, budget of one reload per (shrunk) day: the second
  // blame is parked behind the budget and must execute the moment the day
  // rolls over mid-run — still inside its repair deadline.
  core::SimulationConfig base = core::chaos_test_config(59);
  base.repair.max_reloads_per_day = 1;
  base.repair.day_length = minutes(10);
  ChaosRunOptions opts;
  opts.base_config = &base;
  ChaosPlan plan = heal_plan(59, minutes(18), minutes(8));
  plan.events.push_back(blackhole(1, 0.5, minutes(2), minutes(8)));
  plan.events.push_back(blackhole(5, 0.5, minutes(5), minutes(16)));
  ChaosRunResult r = chaos::run_plan(plan, opts);
  EXPECT_TRUE(r.ok()) << r.report.to_text();

  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 2u);
  EXPECT_EQ(r.heal.deferred_executed, 1u);
  EXPECT_EQ(r.heal.deferred_pending, 0u);
  const HealIncidentSummary* parked = nullptr;
  for (const HealIncidentSummary& inc : r.heal.incidents) {
    if (inc.deferred) parked = &inc;
  }
  ASSERT_NE(parked, nullptr);
  EXPECT_EQ(parked->state, "recovered");
  // Parked within day 0, executed at the first tick of day 1.
  EXPECT_LT(parked->corroborate, minutes(10));
  EXPECT_GE(parked->repair, minutes(10));
  EXPECT_LE(parked->repair, minutes(5) + chaos::kHealRepairDeadline);
}

// ---------------------------------------------------------------------------
// Healing must not fight other recovery machinery (PR-4 / PR-9 scenarios)
// ---------------------------------------------------------------------------

TEST(HealLoop, SlbHalfOpenRecoveryUnaffectedByHealing) {
  // The PR-4 SLB chaos scenario with the loop attached: a flapping
  // controller replica is the SLB's problem, not a switch fault — the loop
  // must execute zero repairs while the VIP walks its half-open path and
  // re-admits the replica.
  ChaosPlan plan = heal_plan(13, minutes(24), minutes(10));
  ChaosEvent flap;
  flap.kind = ChaosEventKind::kSlbFlap;
  flap.entity = 0;
  flap.param = minutes(2);
  flap.start = minutes(3);
  flap.end = minutes(20);
  plan.events.push_back(flap);
  ChaosRunResult r = chaos::run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();

  EXPECT_GT(r.totals.slb_half_open_trials, 0u)
      << "flap never drove the VIP through its half-open path";
  EXPECT_EQ(r.totals.slb_healthy, r.totals.slb_backends)
      << "replica not re-admitted after the flap window closed";
  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 0u);
  EXPECT_EQ(r.heal.rmas_executed, 0u);
}

TEST(HealLoop, ServeRestartRecoveryUnaffectedByHealing) {
  // The PR-9 serving-tier chaos scenario with the loop attached: replica
  // kills and recoveries must still rebuild digest-identical, and the loop
  // must not mistake the restart churn for a network fault.
  ChaosPlan plan = heal_plan(29, minutes(30), minutes(10));
  plan.events.push_back({ChaosEventKind::kServeRestart, minutes(5), minutes(12), 0});
  plan.events.push_back({ChaosEventKind::kServeRestart, minutes(14), minutes(21), 1});
  ChaosRunResult r = chaos::run_plan(plan);
  EXPECT_TRUE(r.ok()) << r.report.to_text();

  ASSERT_TRUE(r.serve.ran);
  EXPECT_EQ(r.serve.restarts, 2u);
  EXPECT_EQ(r.serve.digest_mismatches, 0u);
  EXPECT_TRUE(r.serve.final_digests_equal);
  EXPECT_TRUE(r.serve.conservation_ok);
  EXPECT_EQ(r.serve.failed_with_replicas, 0u);
  ASSERT_TRUE(r.heal.ran);
  EXPECT_EQ(r.heal.reloads_executed, 0u);
  EXPECT_EQ(r.heal.rmas_executed, 0u);
}

// ---------------------------------------------------------------------------
// Soak runner: determinism and report integrity
// ---------------------------------------------------------------------------

TEST(SoakRunner, ReportIsByteIdenticalAtOneAndFourWorkers) {
  SoakConfig cfg;
  cfg.seed = 7;
  cfg.episodes = 2;
  cfg.episode_duration = minutes(20);

  cfg.worker_threads = 1;
  SoakReport serial = run_soak(cfg);
  cfg.worker_threads = 4;
  SoakReport sharded = run_soak(cfg);

  EXPECT_EQ(serial.to_json(), sharded.to_json());
  EXPECT_EQ(serial.to_text(), sharded.to_text());
  // And the fixed CI seed's gates hold at this smaller scale too.
  EXPECT_TRUE(serial.invariants_ok);
  EXPECT_EQ(serial.false_reloads, 0);
  EXPECT_EQ(serial.unrepaired_blackholes, 0);
  EXPECT_GT(serial.injected_blackholes, 0);
  EXPECT_GT(serial.mttd_n, 0);
  EXPECT_LE(serial.mttd_seconds(), 120.0);
}

TEST(SoakRunner, GeneratedPlansAreValidHealFocusedAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    chaos::ChaosPlan plan = generate_soak_plan(seed, minutes(30));
    EXPECT_TRUE(plan.heal);
    EXPECT_EQ(chaos::validate_plan(plan), std::nullopt);
    bool has_blackhole = false;
    for (const ChaosEvent& e : plan.events) {
      if (e.kind == ChaosEventKind::kTorBlackhole) {
        has_blackhole = true;
        EXPECT_GE(e.magnitude, 0.3);
        EXPECT_GE(e.end - e.start, minutes(10));
      }
    }
    EXPECT_TRUE(has_blackhole) << "soak plan " << seed << " has no black-hole to repair";
    EXPECT_EQ(chaos::to_text(plan), chaos::to_text(generate_soak_plan(seed, minutes(30))));
  }
}

TEST(SoakRunner, ZeroBudgetSoakSurfacesDeferralsInReport) {
  core::SimulationConfig base = core::chaos_test_config(7);
  base.repair.max_reloads_per_day = 0;
  SoakConfig cfg;
  cfg.seed = 7;
  cfg.episodes = 1;
  cfg.episode_duration = minutes(20);
  cfg.base_config = &base;
  SoakReport rep = run_soak(cfg);

  EXPECT_EQ(rep.reload_budget_per_day, 0);
  EXPECT_EQ(rep.reloads, 0);
  EXPECT_GE(rep.deferred_pending, 1);
  EXPECT_GE(rep.unrepaired_blackholes, 1);
  // The miss shows up as a violated invariant, never as a silent pass.
  EXPECT_FALSE(rep.invariants_ok);
}

}  // namespace
}  // namespace pingmesh::heal

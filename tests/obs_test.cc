// Tests for the observability layer (DESIGN.md §10): the MetricsRegistry
// units, the trace ring, and — through the full simulation — the golden
// exposition, the end-to-end data-path trace, and the SLB recovery loop
// observed via metrics.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agent/record.h"
#include "agent/record_columns.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "serve/rollup.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "streaming/sketch.h"

namespace pingmesh {
namespace {

using obs::MetricsRegistry;
using obs::TraceSink;
using obs::TraceSpan;
using obs::Tracer;

// --- MetricsRegistry units ---------------------------------------------------

TEST(Metrics, RegistrationIsIdempotentAndKeyedByLabels) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("demo.requests_total", "result=ok");
  obs::Counter& b = reg.counter("demo.requests_total", "result=ok");
  obs::Counter& c = reg.counter("demo.requests_total", "result=fail");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> one shared instrument
  EXPECT_NE(&a, &c);
  a.inc(2);
  b.inc();
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
  // One counter registered twice + one distinct label set.
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Metrics, NameAndLabelValidationFailClosed) {
  MetricsRegistry reg;
  // Metric names need at least two [a-z0-9_] segments joined by '.'.
  EXPECT_DEATH(reg.counter("nodots"), "two segments");
  EXPECT_DEATH(reg.counter("Upper.case"), "a-z0-9_");
  EXPECT_DEATH(reg.counter("trailing."), "");
  // Label keys are [a-z0-9_]; values are free-form (job names, states).
  EXPECT_DEATH(reg.counter("demo.x", "noequals"), "k=v");
  EXPECT_DEATH(reg.counter("demo.x", "Key=v"), "label keys");
  reg.counter("demo.x", "job=pod-pair-10min");  // dash in VALUE is legal
}

TEST(Metrics, ExposeRendersSortedPrometheusText) {
  MetricsRegistry reg;
  reg.counter("demo.requests_total", "result=ok").inc(3);
  reg.counter("demo.requests_total", "result=fail").inc();
  reg.gauge("demo.temperature").set(21.5);
  reg.gauge_fn("demo.live_items", "", [] { return 7.0; });
  obs::Histogram& h = reg.histogram("demo.latency_ns");
  // Mirror the observations into a reference sketch so the expected
  // quantiles come from the same geometry, not hand-picked constants.
  streaming::LatencySketch ref(MetricsRegistry::default_histogram_config());
  for (std::int64_t v : {250'000, 310'000, 4'000'000}) {
    h.observe(v);
    ref.record(v);
  }

  std::string expected;
  expected += "# TYPE demo.latency_ns summary\n";
  expected += "demo.latency_ns{quantile=0.5} " + std::to_string(ref.p50()) + "\n";
  expected += "demo.latency_ns{quantile=0.99} " + std::to_string(ref.p99()) + "\n";
  expected += "demo.latency_ns_count 3\n";
  expected += "# TYPE demo.live_items gauge\n";
  expected += "demo.live_items 7\n";
  expected += "# TYPE demo.requests_total counter\n";
  expected += "demo.requests_total{result=fail} 1\n";
  expected += "demo.requests_total{result=ok} 3\n";
  expected += "# TYPE demo.temperature gauge\n";
  expected += "demo.temperature 21.5\n";
  EXPECT_EQ(reg.expose(), expected);

  // Prefix filtering keeps only matching families (golden tests use this to
  // pin the deterministic subset).
  std::string filtered = reg.expose({"demo.requests"});
  EXPECT_NE(filtered.find("demo.requests_total{result=ok} 3"), std::string::npos);
  EXPECT_EQ(filtered.find("demo.temperature"), std::string::npos);
  EXPECT_EQ(filtered.find("demo.latency_ns"), std::string::npos);
}

// --- Serving-tier instruments ------------------------------------------------

// Regression: QueryService::enable_observability must register the full
// serve.* family — per-endpoint request counters and latency histograms,
// cache hit/miss, response status classes, and the callback gauges for
// cache size and rollup version — and they must move with traffic.
TEST(Metrics, ServeInstrumentsCoverRequestsCacheAndVersion) {
  topo::Topology topo = topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
  serve::RollupStore store(topo, nullptr, serve::RollupConfig{});
  agent::RecordColumns batch;
  agent::LatencyRecord r;
  r.timestamp = seconds(1);
  r.src_ip = topo.server(ServerId{0}).ip;
  r.dst_ip = topo.server(topo.pod(PodId{1}).servers[0]).ip;
  r.success = true;
  r.rtt = 500'000;
  batch.push_back(r);
  store.on_records(batch, seconds(2));

  MetricsRegistry reg;
  serve::QueryService svc(topo, store, nullptr);
  svc.enable_observability(reg);

  (void)svc.handle({"GET", "/query/heatmap?minutes=60", {}, ""});  // miss
  (void)svc.handle({"GET", "/query/heatmap?minutes=60", {}, ""});  // hit
  (void)svc.handle({"GET", "/query/topk?k=3&metric=bogus", {}, ""});  // 400

  std::string text = reg.expose({"serve."});
  EXPECT_NE(text.find("serve.requests_total{endpoint=heatmap} 2"), std::string::npos);
  EXPECT_NE(text.find("serve.requests_total{endpoint=topk} 1"), std::string::npos);
  EXPECT_NE(text.find("serve.cache_total{result=miss} 1"), std::string::npos);
  EXPECT_NE(text.find("serve.cache_total{result=hit} 1"), std::string::npos);
  EXPECT_NE(text.find("serve.responses_total{status=200} 2"), std::string::npos);
  EXPECT_NE(text.find("serve.responses_total{status=400} 1"), std::string::npos);
  EXPECT_NE(text.find("serve.request_latency_ns{endpoint=heatmap,"), std::string::npos);
  EXPECT_NE(text.find("serve.cache_entries 1"), std::string::npos);
  EXPECT_NE(text.find("serve.rollup_version"), std::string::npos);
}

// --- TraceSink / Tracer units ------------------------------------------------

TEST(Trace, KeyIsDeterministicPerRecordAndNeverZero) {
  std::uint64_t k1 = obs::trace_key(1'000'000, 0x0a000001, 0x0a000002, 4242);
  std::uint64_t k2 = obs::trace_key(1'000'000, 0x0a000001, 0x0a000002, 4242);
  std::uint64_t k3 = obs::trace_key(1'000'000, 0x0a000001, 0x0a000002, 4243);
  EXPECT_EQ(k1, k2);  // pure function of the record identity
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, 0u);  // 0 is reserved for infra spans
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceSink sink(/*capacity=*/3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    sink.record(TraceSpan{i, "stage" + std::to_string(i), SimTime(i), SimTime(i), ""});
  }
  EXPECT_EQ(sink.spans_recorded(), 5u);
  EXPECT_EQ(sink.spans_dropped(), 2u);
  std::vector<TraceSpan> kept = sink.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].trace, 3u);  // oldest retained first
  EXPECT_EQ(kept[1].trace, 4u);
  EXPECT_EQ(kept[2].trace, 5u);
}

TEST(Trace, SpansForAndTraceIdsOrderByJourneyLength) {
  TraceSink sink(16);
  Tracer tracer(obs::TraceConfig{true, 1, 16}, sink);
  tracer.span(7, "agent.probe", 0, 10);
  tracer.span(9, "agent.probe", 1, 11);
  tracer.span(7, "agent.upload", 20, 20);
  tracer.span(0, "dsa.job", 0, 600);  // infra span: excluded from trace_ids
  std::vector<TraceSpan> seven = sink.spans_for(7);
  ASSERT_EQ(seven.size(), 2u);
  EXPECT_EQ(seven[0].stage, "agent.probe");
  EXPECT_EQ(seven[1].stage, "agent.upload");
  std::vector<std::uint64_t> ids = sink.trace_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 7u);  // two spans beats one
  EXPECT_EQ(ids[1], 9u);
}

TEST(Trace, SamplingIsAPureFunctionOfTheKey) {
  TraceSink sink(4);
  Tracer every(obs::TraceConfig{true, 1, 4}, sink);
  Tracer fourth(obs::TraceConfig{true, 4, 4}, sink);
  Tracer off(obs::TraceConfig{false, 1, 4}, sink);
  EXPECT_TRUE(every.sampled(3));
  EXPECT_TRUE(fourth.sampled(8));
  EXPECT_FALSE(fourth.sampled(9));
  EXPECT_FALSE(off.sampled(8));
  off.span(8, "agent.probe", 0, 0);  // disabled tracer records nothing
  EXPECT_EQ(sink.spans_recorded(), 0u);
}

// --- Full-simulation coverage ------------------------------------------------

/// Deterministic metric families: everything except threadpool.* (busy-ns
/// and worker counts legitimately vary with the worker count).
std::vector<std::string> deterministic_prefixes() {
  return {"agent.", "controller.", "cosmos.", "dsa.", "slb.", "streaming."};
}

TEST(ObsSim, ExpositionCoversEverySubsystemAndIsWorkerCountInvariant) {
  core::SimulationConfig cfg = core::observability_test_config(/*seed=*/42);
  core::PingmeshSimulation serial(cfg);
  serial.run_for(minutes(30));

  core::SimulationConfig cfg4 = core::observability_test_config(/*seed=*/42);
  cfg4.worker_threads = 4;
  core::PingmeshSimulation sharded(cfg4);
  sharded.run_for(minutes(30));

  ASSERT_NE(serial.observability(), nullptr);
  std::string text = serial.observability()->metrics().expose(deterministic_prefixes());

  // One family per subsystem proves the wiring end to end.
  for (const char* needle : {
           "# TYPE agent.probes_total counter",
           "agent.probes_total{result=ok} ",
           "agent.uploads_total{result=ok} ",
           "agent.upload_batch_records{quantile=0.5} ",
           "controller.fetches_total{status=ok} ",
           "slb.picks_total ",
           "slb.healthy_backends 3",
           "cosmos.extents ",
           "dsa.uploads_total{result=ok} ",
           "dsa.job_runs_total{job=pod-pair-10min} ",
           "streaming.records_ingested_total ",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle << "\n"
                                                    << text;
  }

  // The probe pipeline is bit-reproducible, so the deterministic families
  // must render byte-identically at any worker count.
  EXPECT_EQ(text, sharded.observability()->metrics().expose(deterministic_prefixes()));

  // The thread-pool family exists too (values are run-dependent).
  std::string pool = sharded.observability()->metrics().expose({"threadpool."});
  EXPECT_NE(pool.find("threadpool.workers 4"), std::string::npos) << pool;
  EXPECT_NE(pool.find("threadpool.parallel_for_total "), std::string::npos);
}

TEST(ObsSim, TraceFollowsASampledRecordFromProbeToScan) {
  core::SimulationConfig cfg =
      core::observability_test_config(/*seed=*/42, /*sample_every=*/16);
  cfg.observability.trace.ring_capacity = 1u << 18;  // keep whole journeys
  core::PingmeshSimulation sim(cfg);
  // Long enough for the 10-min SCOPE window [0, 10min) to become available
  // (ingestion delay 2 min) and be scanned.
  sim.run_for(minutes(25));

  ASSERT_NE(sim.observability(), nullptr);
  const obs::TraceSink& sink = sim.observability()->sink();
  EXPECT_EQ(sink.spans_dropped(), 0u);

  const std::set<std::string> want = {"agent.probe",   "agent.buffer",
                                      "agent.upload",  "cosmos.append",
                                      "scope.scan",    "streaming.ingest"};
  bool found = false;
  for (std::uint64_t id : sink.trace_ids()) {
    std::vector<TraceSpan> spans = sink.spans_for(id);
    std::set<std::string> stages;
    for (const TraceSpan& s : spans) stages.insert(s.stage);
    if (!std::includes(stages.begin(), stages.end(), want.begin(), want.end())) {
      continue;
    }
    found = true;
    // Emission order is the journey order: the probe comes first, and no
    // later stage starts before the probe was launched.
    EXPECT_EQ(spans.front().stage, "agent.probe");
    for (const TraceSpan& s : spans) EXPECT_GE(s.start, spans.front().start);
    // The append span names the extent the batch landed in.
    for (const TraceSpan& s : spans) {
      if (s.stage == "cosmos.append") {
        EXPECT_NE(s.note.find("extent="), std::string::npos) << s.note;
      }
      if (s.stage == "scope.scan") {
        EXPECT_NE(s.note.find("cache="), std::string::npos) << s.note;
      }
    }
    break;
  }
  EXPECT_TRUE(found) << "no sampled record completed the full journey";

  // SCOPE job runs appear as infra spans under trace id 0.
  std::vector<TraceSpan> infra = sink.spans_for(0);
  bool job_span = false;
  for (const TraceSpan& s : infra) job_span |= s.stage == "dsa.job";
  EXPECT_TRUE(job_span);
}

TEST(ObsSim, SlbRemovesAndReadmitsAKilledControllerReplica) {
  core::SimulationConfig cfg = core::observability_test_config(/*seed=*/7);
  core::PingmeshSimulation sim(cfg);
  sim.run_for(minutes(6));
  const controller::SlbVip& vip = sim.controller_vip();
  EXPECT_EQ(vip.health_flips_down(), 0u);
  EXPECT_GT(vip.total_picks(), 0u);

  // Kill one replica: fetches hashed to it fail, the VIP takes it out of
  // rotation, and half-open trials keep re-probing it.
  sim.set_controller_replica_up(0, false);
  sim.run_for(minutes(30));
  EXPECT_GE(vip.health_flips_down(), 1u);
  EXPECT_GE(vip.half_open_trials(), 1u);
  std::uint64_t flips_up_before = vip.health_flips_up();

  // Revive it: the next trial succeeds and the replica rejoins.
  sim.set_controller_replica_up(0, true);
  sim.run_for(minutes(30));
  EXPECT_GE(vip.health_flips_up(), flips_up_before + 1);

  std::string text = sim.observability()->metrics().expose({"slb."});
  EXPECT_NE(text.find("slb.healthy_backends 3"), std::string::npos) << text;
  EXPECT_NE(text.find("slb.health_flips_total{to=down} "), std::string::npos);
  EXPECT_NE(text.find("slb.health_flips_total{to=up} "), std::string::npos);

  // The whole episode was invisible to the fleet: agents kept fetching
  // pinglists through the surviving replicas.
  std::string agents = sim.observability()->metrics().expose({"agent."});
  EXPECT_NE(agents.find("agent.pinglist_fetches_total{result=ok} "),
            std::string::npos);
}

}  // namespace
}  // namespace pingmesh

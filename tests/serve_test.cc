// Serving-tier tests: RollupStore seal/merge correctness (the disjointness
// contract, conservation ledger, determinism digest), the
// percentile-within-bounds property vs an exact rescan, robustness against
// late/skewed records (chaos: clock skew, controller outage replays), and
// the QueryService HTTP surface (JSON endpoints, ETag/304 revalidation,
// LRU cache coherence, loopback HTTP incl. HEAD).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/record.h"
#include "agent/record_columns.h"
#include "core/scenarios.h"
#include "core/simulation.h"
#include "dsa/cosmos.h"
#include "net/http.h"
#include "net/reactor.h"
#include "net/sockaddr.h"
#include "serve/persist.h"
#include "serve/query_service.h"
#include "serve/replica.h"
#include "serve/rollup.h"
#include "topology/topology.h"

namespace pingmesh {
namespace {

using serve::RollupConfig;
using serve::RollupStore;

/// Sim-paced widths for the worker-determinism probe (records span
/// minutes of sim time).
RollupConfig sim_rollup_config() {
  RollupConfig cfg;
  cfg.tier_width[0] = minutes(1);
  cfg.tier_width[1] = minutes(10);
  cfg.tier_width[2] = hours(1);
  cfg.seal_grace = seconds(5);
  return cfg;
}

/// Small nesting widths so every tier seals inside a test: 10 s -> 1 min
/// -> 10 min, 1 s grace.
RollupConfig test_config() {
  RollupConfig cfg;
  cfg.tier_width[0] = seconds(10);
  cfg.tier_width[1] = minutes(1);
  cfg.tier_width[2] = minutes(10);
  cfg.seal_grace = seconds(1);
  cfg.future_slack = seconds(30);
  return cfg;
}

class RollupTest : public ::testing::Test {
 protected:
  RollupTest() : topo_(topo::Topology::build({topo::small_dc_spec("DC1", "US West")})) {}

  /// One clean successful probe between two servers at `ts`.
  agent::LatencyRecord record(ServerId src, ServerId dst, SimTime ts, SimTime rtt,
                              bool success = true) {
    agent::LatencyRecord r;
    r.timestamp = ts;
    r.src_ip = topo_.server(src).ip;
    r.dst_ip = topo_.server(dst).ip;
    r.success = success;
    r.rtt = rtt;
    return r;
  }

  void feed(RollupStore& store, const std::vector<agent::LatencyRecord>& recs,
            SimTime now) {
    agent::RecordColumns batch;
    for (const auto& r : recs) batch.push_back(r);
    store.on_records(batch, now);
  }

  topo::Topology topo_;
};

TEST_F(RollupTest, RecordsLandInTierZeroAndAnswerQueries) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  feed(store, {record(a, b, seconds(1), 400'000), record(a, b, seconds(2), 600'000)},
       seconds(3));

  EXPECT_EQ(store.ingested(), 2u);
  EXPECT_EQ(store.placed(), 2u);
  auto stats = store.query_pair(topo_.server(a).pod, PodId{1}, 0, seconds(10));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->probes, 2u);
  EXPECT_EQ(stats->successes, 2u);
  EXPECT_TRUE(store.check_conservation());
}

TEST_F(RollupTest, SealCascadeErasesChildrenWithoutLosingCoverage) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  PodId src_pod = topo_.server(a).pod;

  // One probe per tier-0 window across two tier-1 windows (12 x 10 s).
  std::uint64_t placed = 0;
  for (int w = 0; w < 12; ++w) {
    feed(store, {record(a, b, seconds(10) * w + seconds(1), 500'000)},
         seconds(10) * w + seconds(2));
    ++placed;
  }
  EXPECT_EQ(store.placed(), placed);

  // Advance far enough that the first tier-1 window (0-60 s) seals: its
  // tier-0 children are erased, but the minute cell answers for them.
  store.advance(minutes(2) + seconds(5));
  EXPECT_EQ(store.sealed_until(1), minutes(2));
  auto all = store.query_pair(src_pod, PodId{1}, 0, minutes(3));
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->probes, placed);  // coverage degrades in resolution, never in count
  EXPECT_TRUE(store.check_conservation());

  // Sub-minute queries inside the sealed region now resolve at tier-1
  // granularity: the outward rounding still covers the minute.
  auto first_min = store.query_pair(src_pod, PodId{1}, 0, minutes(1));
  ASSERT_TRUE(first_min.has_value());
  EXPECT_EQ(first_min->probes, 6u);
}

TEST_F(RollupTest, DigestIsDeterministicUnderReplay) {
  RollupStore s1(topo_, nullptr, test_config());
  RollupStore s2(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{2}).servers[3]};

  std::uint64_t rng = 7;
  std::vector<agent::LatencyRecord> recs;
  for (int i = 0; i < 500; ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    SimTime ts = seconds(1) * (i / 4) + (rng % 1000);
    recs.push_back(record(a, b, ts, 300'000 + static_cast<SimTime>(rng % 400'000)));
  }
  for (std::size_t off = 0; off < recs.size(); off += 50) {
    std::vector<agent::LatencyRecord> chunk(
        recs.begin() + off, recs.begin() + std::min(off + 50, recs.size()));
    feed(s1, chunk, chunk.back().timestamp + seconds(1));
    feed(s2, chunk, chunk.back().timestamp + seconds(1));
  }
  EXPECT_EQ(s1.digest(), s2.digest());

  // A single extra record separates the digests.
  feed(s2, {record(a, b, minutes(3), 900'000)}, minutes(3) + seconds(1));
  EXPECT_NE(s1.digest(), s2.digest());
}

// The property-test satellite: merged 10 s -> 1 min -> 10 min cells must
// answer percentile queries within the DDSketch error bound of a full
// rescan of every record, even when the range spans all three tiers.
TEST_F(RollupTest, MergedTiersAnswerPercentilesWithinSketchBounds) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{3}).servers[1]};
  PodId src_pod = topo_.server(a).pod;

  // 40 minutes of records: by the end, early data lives in sealed tier-2
  // cells, the middle in tier-1, the tail in live tier-0.
  std::vector<SimTime> exact;
  std::uint64_t rng = 99;
  for (int i = 0; i < 8000; ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    SimTime ts = (minutes(40) * i) / 8000;
    SimTime rtt = 200'000 + static_cast<SimTime>(rng % 2'000'000);
    exact.push_back(rtt);
    feed(store, {record(a, b, ts, rtt)}, ts + seconds(1));
  }
  store.advance(minutes(41));
  ASSERT_GT(store.sealed_until(2), 0) << "tier 2 must have sealed for this property";
  EXPECT_TRUE(store.check_conservation());

  auto stats = store.query_pair(src_pod, PodId{3}, 0, minutes(41));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->probes, exact.size());

  std::sort(exact.begin(), exact.end());
  auto nearest_rank = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(exact.size())));
    return exact[std::max<std::size_t>(rank, 1) - 1];
  };
  const double bound = store.relative_error_bound() * 1.10;
  for (auto [q, got] : {std::pair<double, SimTime>{0.50, stats->p50_ns},
                        {0.99, stats->p99_ns},
                        {0.999, stats->p999_ns}}) {
    SimTime want = nearest_rank(q);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(want),
                static_cast<double>(want) * bound)
        << "q=" << q;
  }
}

TEST_F(RollupTest, LateRecordsIntoSealedWindowsAreDroppedNotMerged) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  PodId src_pod = topo_.server(a).pod;

  feed(store, {record(a, b, seconds(5), 500'000)}, seconds(6));
  store.advance(minutes(2));  // seals the 0-10 s window (and more)
  ASSERT_GT(store.sealed_until(0), seconds(10));
  auto before = store.query_pair(src_pod, PodId{1}, 0, minutes(2));
  ASSERT_TRUE(before.has_value());

  // A replayed/late record for the sealed window: counted, never placed.
  feed(store, {record(a, b, seconds(7), 100'000)}, minutes(2) + seconds(1));
  EXPECT_EQ(store.late_dropped(), 1u);
  auto after = store.query_pair(src_pod, PodId{1}, 0, minutes(2));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->probes, before->probes);
  EXPECT_EQ(after->p99_ns, before->p99_ns);  // history is immutable
  EXPECT_TRUE(store.check_conservation());
}

// Seal-boundary regression (the off-by-one audit): a record stamped EXACTLY
// at sealed_until(0) belongs to the first unsealed window — sealing is a
// strict `start < sealed_until` comparison — so it must be placed, not
// late-dropped, and must land in exactly one cell.
TEST_F(RollupTest, RecordStampedAtSealBoundaryLandsInUnsealedWindow) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  PodId src_pod = topo_.server(a).pod;

  feed(store, {record(a, b, seconds(1), 500'000)}, seconds(2));
  store.advance(seconds(21));  // watermark 20 s: windows [0,10) and [10,20) seal
  ASSERT_EQ(store.sealed_until(0), seconds(20));

  // Exactly on the boundary: first timestamp of the unsealed [20,30) window.
  feed(store, {record(a, b, seconds(20), 600'000)}, seconds(21));
  EXPECT_EQ(store.placed(), 2u);
  EXPECT_EQ(store.late_dropped(), 0u);

  // One tick before the boundary: inside the sealed [10,20) window.
  feed(store, {record(a, b, seconds(20) - 1, 600'000)}, seconds(21));
  EXPECT_EQ(store.placed(), 2u);
  EXPECT_EQ(store.late_dropped(), 1u);

  // The boundary record is queryable in its window and counted once.
  auto window = store.query_pair(src_pod, PodId{1}, seconds(20), seconds(30));
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->probes, 1u);
  auto all = store.query_pair(src_pod, PodId{1}, 0, seconds(30));
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->probes, 2u);
  EXPECT_TRUE(store.check_conservation());
}

TEST_F(RollupTest, ClockSkewedFutureRecordsAreRejected) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};

  feed(store, {record(a, b, seconds(1), 500'000)}, seconds(2));
  // An agent with a skewed clock stamps a record 10 minutes ahead of the
  // ingest watermark (> future_slack): rejected, or it would land in a
  // window that seals out from under genuinely-current arrivals.
  feed(store, {record(a, b, minutes(10), 500'000)}, seconds(3));
  EXPECT_EQ(store.rejected_future(), 1u);
  EXPECT_EQ(store.placed(), 1u);
  EXPECT_TRUE(store.check_conservation());

  // Within-slack future stamps are fine (bounded skew is normal).
  feed(store, {record(a, b, seconds(20), 500'000)}, seconds(4));
  EXPECT_EQ(store.placed(), 2u);
  EXPECT_EQ(store.rejected_future(), 1u);
}

TEST_F(RollupTest, UnknownIpsAreSkippedNotFatal) {
  RollupStore store(topo_, nullptr, test_config());
  agent::LatencyRecord r;
  r.timestamp = seconds(1);
  r.src_ip = IpAddr(0x7f000001);  // not in the topology
  r.dst_ip = topo_.server(ServerId{0}).ip;
  r.success = true;
  r.rtt = 500'000;
  agent::RecordColumns batch;
  batch.push_back(r);
  store.on_records(batch, seconds(2));
  EXPECT_EQ(store.skipped(), 1u);
  EXPECT_EQ(store.placed(), 0u);
  EXPECT_TRUE(store.check_conservation());
}

TEST_F(RollupTest, TierTwoEvictionBoundsMemoryAndKeepsLedger) {
  RollupConfig cfg = test_config();
  cfg.max_tier2_cells = 2;
  RollupStore store(topo_, nullptr, cfg);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  PodId src_pod = topo_.server(a).pod;

  // 6 tier-2 windows (10 min each) with one record apiece; only the newest
  // 2 sealed day-cells survive per series.
  for (int w = 0; w < 6; ++w) {
    feed(store, {record(a, b, minutes(10) * w + seconds(5), 500'000)},
         minutes(10) * w + seconds(6));
  }
  store.advance(minutes(70));
  EXPECT_GT(store.expired_records(), 0u);
  EXPECT_TRUE(store.check_conservation());
  auto all = store.query_pair(src_pod, PodId{1}, 0, minutes(70));
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->probes + store.expired_records(), store.placed());
}

TEST_F(RollupTest, ServiceScopeRollsUpSourceServersOnly) {
  topo::ServiceMap services;
  ServiceId search =
      services.add_service("Search", topo_.pod(PodId{0}).servers);
  ServiceId storage =
      services.add_service("Storage", topo_.pod(PodId{1}).servers);
  RollupStore store(topo_, &services, test_config());

  ServerId in_search{topo_.pod(PodId{0}).servers[0]};
  ServerId in_storage{topo_.pod(PodId{1}).servers[0]};
  // Search -> Storage probe: rolls into Search (source scope) only.
  feed(store, {record(in_search, in_storage, seconds(1), 500'000)}, seconds(2));

  auto search_stats = store.query_service(search, 0, seconds(10));
  ASSERT_TRUE(search_stats.has_value());
  EXPECT_EQ(search_stats->probes, 1u);
  EXPECT_FALSE(store.query_service(storage, 0, seconds(10)).has_value());
  EXPECT_TRUE(store.check_conservation());
}

TEST_F(RollupTest, FailuresAndRetransmitSignaturesClassify) {
  RollupStore store(topo_, nullptr, test_config());
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  PodId src_pod = topo_.server(a).pod;

  feed(store,
       {record(a, b, seconds(1), 500'000),
        record(a, b, seconds(2), 0, /*success=*/false),
        record(a, b, seconds(3), 3 * kNanosPerSecond + 500'000)},  // SYN retransmit
       seconds(4));
  auto stats = store.query_pair(src_pod, PodId{1}, 0, seconds(10));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->probes, 3u);
  EXPECT_EQ(stats->successes, 2u);
  EXPECT_EQ(stats->failures, 1u);
  EXPECT_EQ(stats->probes_3s, 1u);
}

// 1-vs-N-worker determinism: the same simulated fleet at different worker
// counts must produce byte-identical rollup digests (ingest is a serial
// driver-thread phase; worker count must not leak into cell contents).
TEST(RollupDeterminism, DigestIdenticalAcrossWorkerCounts) {
  std::uint64_t digests[2] = {0, 0};
  int workers[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    core::SimulationConfig cfg = core::streaming_test_config(7);
    cfg.worker_threads = workers[i];
    core::PingmeshSimulation sim(cfg);
    serve::RollupStore store(sim.topology(), nullptr, sim_rollup_config());
    serve::RecordTapFanout fanout;
    if (sim.streaming() != nullptr) fanout.add(sim.streaming());
    fanout.add(&store);
    sim.uploader_for_test().set_tap(&fanout);
    sim.run_for(minutes(6));
    EXPECT_GT(store.placed(), 0u) << "workers=" << workers[i];
    EXPECT_TRUE(store.check_conservation()) << "workers=" << workers[i];
    digests[i] = store.digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest()
      : topo_(topo::Topology::build({topo::small_dc_spec("DC1", "US West")})) {
    search_ = services_.add_service("Search", topo_.pod(PodId{0}).servers);
    store_ = std::make_unique<RollupStore>(topo_, &services_, test_config());
    ServerId a{topo_.pod(PodId{0}).servers[0]};
    ServerId b{topo_.pod(PodId{1}).servers[0]};
    ServerId c{topo_.pod(PodId{2}).servers[0]};
    agent::RecordColumns batch;
    for (int i = 0; i < 50; ++i) {
      agent::LatencyRecord r;
      r.timestamp = seconds(1) + i * 1'000'000;
      r.src_ip = topo_.server(a).ip;
      r.dst_ip = topo_.server(i % 2 == 0 ? b : c).ip;
      r.success = true;
      r.rtt = 400'000 + i * 10'000;
      batch.push_back(r);
    }
    store_->on_records(batch, seconds(5));
  }

  net::HttpResponse get(serve::QueryService& svc, const std::string& path,
                        const std::string& inm = "") {
    net::HttpRequest req{"GET", path, {}, ""};
    if (!inm.empty()) req.headers["if-none-match"] = inm;
    return svc.handle(req);
  }

  topo::Topology topo_;
  topo::ServiceMap services_;
  ServiceId search_{};
  std::unique_ptr<RollupStore> store_;
};

TEST_F(QueryServiceTest, HeatmapListsActivePairs) {
  serve::QueryService svc(topo_, *store_, &services_);
  auto resp = get(svc, "/query/heatmap?minutes=60");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"pairs\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"probes\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(resp.headers.find("etag"), resp.headers.end());
}

TEST_F(QueryServiceTest, SlaAnswersForServiceAnd404sUnknown) {
  serve::QueryService svc(topo_, *store_, &services_);
  auto resp = get(svc, "/query/sla?service=Search&minutes=60");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"service\":\"Search\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"probes\":50"), std::string::npos);
  EXPECT_EQ(get(svc, "/query/sla?service=NoSuch&minutes=60").status, 404);
}

TEST_F(QueryServiceTest, TopkOrdersWorstFirstAndRejectsBadMetric) {
  serve::QueryService svc(topo_, *store_, &services_);
  auto resp = get(svc, "/query/topk?k=5&metric=p99&minutes=60");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"metric\":\"p99\""), std::string::npos);
  EXPECT_EQ(get(svc, "/query/topk?k=5&metric=bogus&minutes=60").status, 400);
}

TEST_F(QueryServiceTest, EtagRevalidationAnd304Flow) {
  serve::QueryService svc(topo_, *store_, &services_);
  auto first = get(svc, "/query/heatmap?minutes=60");
  ASSERT_EQ(first.status, 200);
  std::string etag = first.headers.at("etag");

  // Unchanged store: revalidation is a 304 with no body.
  auto second = get(svc, "/query/heatmap?minutes=60", etag);
  EXPECT_EQ(second.status, 304);
  EXPECT_TRUE(second.body.empty());
  EXPECT_EQ(svc.not_modified(), 1u);

  // Version bump (new records) invalidates the validator: full 200 again,
  // with a fresh ETag.
  agent::RecordColumns more;
  agent::LatencyRecord r;
  r.timestamp = seconds(6);
  r.src_ip = topo_.server(ServerId{topo_.pod(PodId{0}).servers[0]}).ip;
  r.dst_ip = topo_.server(ServerId{topo_.pod(PodId{1}).servers[0]}).ip;
  r.success = true;
  r.rtt = 700'000;
  more.push_back(r);
  store_->on_records(more, seconds(7));

  auto third = get(svc, "/query/heatmap?minutes=60", etag);
  EXPECT_EQ(third.status, 200);
  EXPECT_NE(third.headers.at("etag"), etag);
}

TEST_F(QueryServiceTest, LruCacheHitsMissesAndEviction) {
  serve::QueryServiceConfig cfg;
  cfg.cache_capacity = 2;
  serve::QueryService svc(topo_, *store_, &services_, cfg);

  (void)get(svc, "/query/heatmap?minutes=10");
  (void)get(svc, "/query/heatmap?minutes=20");
  EXPECT_EQ(svc.cache_misses(), 2u);
  (void)get(svc, "/query/heatmap?minutes=10");  // hit
  EXPECT_EQ(svc.cache_hits(), 1u);

  // Third distinct path evicts the LRU entry (minutes=20).
  (void)get(svc, "/query/heatmap?minutes=30");
  EXPECT_EQ(svc.cache_size(), 2u);
  (void)get(svc, "/query/heatmap?minutes=20");  // miss again: was evicted
  EXPECT_EQ(svc.cache_misses(), 4u);

  // A store version bump makes every cached body stale: next request is a
  // miss even for a cached key (coherence is a version compare).
  agent::RecordColumns more;
  agent::LatencyRecord r;
  r.timestamp = seconds(8);
  r.src_ip = topo_.server(ServerId{topo_.pod(PodId{0}).servers[0]}).ip;
  r.dst_ip = topo_.server(ServerId{topo_.pod(PodId{1}).servers[0]}).ip;
  r.success = true;
  r.rtt = 700'000;
  more.push_back(r);
  store_->on_records(more, seconds(9));
  (void)get(svc, "/query/heatmap?minutes=30");
  EXPECT_EQ(svc.cache_misses(), 5u);
}

TEST_F(QueryServiceTest, UnknownEndpointIs404) {
  serve::QueryService svc(topo_, *store_, &services_);
  EXPECT_EQ(get(svc, "/query/nope").status, 404);
}

TEST_F(QueryServiceTest, HttpLoopbackServesGetHeadAndConditional) {
  net::Reactor reactor;
  serve::QueryService svc(reactor, net::SockAddr::loopback(0), topo_, *store_,
                          &services_);
  ASSERT_NE(svc.port(), 0);
  net::HttpClient client(reactor);
  net::SockAddr dst = net::SockAddr::loopback(svc.port());

  net::HttpResult got_get, got_head, got_cond;
  int done = 0;
  client.get(dst, "/query/heatmap?minutes=60", std::chrono::milliseconds(2000),
             [&](const net::HttpResult& r) { got_get = r; ++done; });
  client.head(dst, "/query/heatmap?minutes=60", std::chrono::milliseconds(2000),
              [&](const net::HttpResult& r) { got_head = r; ++done; });
  ASSERT_TRUE(reactor.run_until([&] { return done == 2; },
                                net::Reactor::Clock::now() + std::chrono::seconds(5)));
  ASSERT_TRUE(got_get.ok);
  EXPECT_EQ(got_get.response.status, 200);
  EXPECT_FALSE(got_get.response.body.empty());
  ASSERT_TRUE(got_head.ok);
  EXPECT_EQ(got_head.response.status, 200);
  EXPECT_TRUE(got_head.response.body.empty());  // HEAD: headers only
  EXPECT_EQ(got_head.response.headers.at("etag"), got_get.response.headers.at("etag"));

  net::HttpRequest cond{"GET",
                        "/query/heatmap?minutes=60",
                        {{"if-none-match", got_get.response.headers.at("etag")}},
                        ""};
  client.request(dst, std::move(cond), std::chrono::milliseconds(2000),
                 [&](const net::HttpResult& r) { got_cond = r; ++done; });
  ASSERT_TRUE(reactor.run_until([&] { return done == 3; },
                                net::Reactor::Clock::now() + std::chrono::seconds(5)));
  ASSERT_TRUE(got_cond.ok);
  EXPECT_EQ(got_cond.response.status, 304);
  EXPECT_TRUE(got_cond.response.body.empty());
}

// ---------------------------------------------------------------------------
// Crash consistency: WAL + checkpoint persistence and restart recovery
// ---------------------------------------------------------------------------

class PersistTest : public RollupTest {
 protected:
  void feed(serve::PersistentRollupStore& store,
            const std::vector<agent::LatencyRecord>& recs, SimTime now) {
    agent::RecordColumns batch;
    for (const auto& r : recs) batch.push_back(r);
    store.on_records(batch, now);
  }
  void feed(serve::ServeReplicaSet& rs, const std::vector<agent::LatencyRecord>& recs,
            SimTime now) {
    agent::RecordColumns batch;
    for (const auto& r : recs) batch.push_back(r);
    rs.on_records(batch, now);
  }

  dsa::CosmosStore cosmos_;
};

TEST_F(PersistTest, WalReplayRebuildsDigestByteIdentically) {
  serve::PersistentRollupStore durable(topo_, nullptr, test_config(), cosmos_);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  for (int i = 0; i < 30; ++i) {
    feed(durable, {record(a, b, seconds(i), 400'000 + i * 1'000)}, seconds(i + 1));
  }
  durable.advance(seconds(45));  // durable seal record
  ASSERT_GT(durable.wal_frames(), 0u);
  ASSERT_TRUE(durable.store().check_conservation());

  RollupStore recovered(topo_, nullptr, test_config());
  serve::RollupRecoveryStats st = serve::recover_rollup_store(recovered, cosmos_);
  EXPECT_GT(st.wal_frames_replayed, 0u);
  EXPECT_EQ(st.wal_bytes_dropped, 0u);
  EXPECT_EQ(recovered.digest(), durable.store().digest());
  EXPECT_EQ(recovered.version(), durable.store().version());
  EXPECT_EQ(recovered.sealed_until(0), durable.store().sealed_until(0));
  EXPECT_TRUE(recovered.check_conservation());
}

TEST_F(PersistTest, CheckpointPlusWalTailRecoversAndResumesSequence) {
  std::uint64_t final_digest = 0;
  std::uint64_t final_seq = 0;
  {
    serve::PersistentRollupStore durable(topo_, nullptr, test_config(), cosmos_);
    ServerId a{0};
    ServerId b{topo_.pod(PodId{2}).servers[0]};
    // Cross the tier-1 seal (60 s + 1 s grace) so a checkpoint segment fires
    // mid-ingest, then keep writing so a WAL tail rides past it.
    for (int i = 0; i < 15; ++i) {
      feed(durable, {record(a, b, seconds(10) * i + seconds(1), 500'000)},
           seconds(10) * i + seconds(2));
    }
    EXPECT_GT(durable.segments_written(), 0u);
    EXPECT_GT(durable.store().sealed_until(1), 0);
    final_digest = durable.store().digest();
    final_seq = durable.next_seq();
  }  // process "crash": only Cosmos survives

  serve::PersistentRollupStore reborn(topo_, nullptr, test_config(), cosmos_);
  EXPECT_TRUE(reborn.recovery().from_checkpoint);
  EXPECT_GT(reborn.recovery().wal_frames_replayed, 0u);  // the post-checkpoint tail
  EXPECT_EQ(reborn.store().digest(), final_digest);
  EXPECT_EQ(reborn.next_seq(), final_seq);  // WAL sequence resumes, never reuses
  EXPECT_TRUE(reborn.store().check_conservation());

  // The reborn store keeps ingesting durably from where it left off.
  ServerId a{0};
  ServerId b{topo_.pod(PodId{2}).servers[0]};
  feed(reborn, {record(a, b, seconds(151), 700'000)}, seconds(152));
  EXPECT_NE(reborn.store().digest(), final_digest);
  EXPECT_TRUE(reborn.store().check_conservation());
}

TEST_F(PersistTest, TornWalTailDropsOnlyTheTail) {
  serve::PersistentRollupStore durable(topo_, nullptr, test_config(), cosmos_);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  feed(durable, {record(a, b, seconds(1), 500'000), record(a, b, seconds(2), 600'000)},
       seconds(3));
  const std::uint64_t clean_digest = durable.store().digest();

  // A crash mid-append leaves a truncated frame at the end of the extent.
  std::string torn =
      serve::encode_wal_frame(durable.next_seq() + 1, seconds(9), "half-written");
  torn.resize(torn.size() / 2);
  const std::uint64_t seq = durable.next_seq() + 1;
  cosmos_.stream(serve::kRollupWalStream)
      .append(torn, 1, static_cast<SimTime>(seq), static_cast<SimTime>(seq), seconds(9),
              dsa::ExtentEncoding::kColumnar);

  RollupStore recovered(topo_, nullptr, test_config());
  serve::RollupRecoveryStats st = serve::recover_rollup_store(recovered, cosmos_);
  EXPECT_GT(st.wal_bytes_dropped, 0u);  // the torn tail is counted, not trusted
  EXPECT_EQ(recovered.digest(), clean_digest);  // ...and the clean prefix survives
  EXPECT_TRUE(recovered.check_conservation());
}

TEST_F(PersistTest, CorruptNewestSegmentFallsBackToOlderCheckpoint) {
  // A tiny extent limit seals every frame into its own extent, so corruption
  // and retention act per checkpoint — the at-scale geometry.
  dsa::CosmosStore small(64);
  serve::PersistentRollupStore durable(topo_, nullptr, test_config(), small);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  feed(durable, {record(a, b, seconds(1), 500'000)}, seconds(2));
  durable.checkpoint();
  feed(durable, {record(a, b, seconds(11), 600'000)}, seconds(12));
  durable.checkpoint();
  EXPECT_EQ(durable.segments_written(), 2u);

  ASSERT_TRUE(small.stream(serve::kRollupSegmentStream).corrupt_newest_extent());

  RollupStore recovered(topo_, nullptr, test_config());
  serve::RollupRecoveryStats st = serve::recover_rollup_store(recovered, small);
  EXPECT_GE(st.segments_quarantined, 1u);
  EXPECT_TRUE(st.from_checkpoint);  // the older checkpoint restored
  // The WAL retained frames back to the OLDEST live checkpoint, so rolling
  // forward from the fallback still converges on the pre-crash state.
  EXPECT_GT(st.wal_frames_replayed, 0u);
  EXPECT_EQ(recovered.digest(), durable.store().digest());
  EXPECT_TRUE(recovered.check_conservation());
}

TEST_F(PersistTest, GarbageSegmentStreamIsQuarantinedNotFatal) {
  cosmos_.stream(serve::kRollupSegmentStream)
      .append("PMRSEG1\nnot a real checkpoint", 1, 1, 1, seconds(1),
              dsa::ExtentEncoding::kColumnar);
  RollupStore recovered(topo_, nullptr, test_config());
  serve::RollupRecoveryStats st = serve::recover_rollup_store(recovered, cosmos_);
  EXPECT_FALSE(st.from_checkpoint);
  EXPECT_GE(st.segments_quarantined, 1u);
  EXPECT_EQ(recovered.ingested(), 0u);  // empty store, not a crash
  EXPECT_TRUE(recovered.check_conservation());
}

// ---------------------------------------------------------------------------
// ServeReplicaSet: replica-consistent ETags and restart recovery
// ---------------------------------------------------------------------------

TEST_F(PersistTest, EtagFromOneReplicaRevalidatesOnAnother) {
  serve::ServeReplicaSet rs(topo_, nullptr, test_config(), cosmos_);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  feed(rs, {record(a, b, seconds(1), 500'000), record(a, b, seconds(2), 700'000)},
       seconds(3));

  net::HttpRequest req{"GET", "/query/heatmap?minutes=60", {}, ""};
  serve::ReplicaQueryResult first = rs.query(req);
  ASSERT_EQ(first.response.status, 200);
  const std::string etag = first.response.headers.at("etag");

  // Kill the replica that answered: the conditional retry lands on the OTHER
  // replica, which must honor the first one's validator with a 304.
  rs.kill(first.replica);
  net::HttpRequest cond{
      "GET", "/query/heatmap?minutes=60", {{"if-none-match", etag}}, ""};
  serve::ReplicaQueryResult second = rs.query(cond);
  EXPECT_EQ(second.response.status, 304);
  EXPECT_TRUE(second.response.body.empty());
  EXPECT_NE(second.replica, first.replica);
  EXPECT_GE(second.dead_picks, 1u);  // the VIP routed around the corpse
}

TEST_F(PersistTest, KilledReplicaRecoversDigestIdenticalAndMissesNothing) {
  serve::ServeReplicaSet rs(topo_, nullptr, test_config(), cosmos_);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{2}).servers[1]};
  feed(rs, {record(a, b, seconds(1), 500'000)}, seconds(2));

  rs.kill(0);
  EXPECT_FALSE(rs.alive(0));
  EXPECT_EQ(rs.alive_count(), rs.replica_count() - 1);

  // Batches that arrive while replica 0 is dead reach it anyway via the WAL.
  feed(rs, {record(a, b, seconds(11), 600'000), record(a, b, seconds(12), 650'000)},
       seconds(13));
  rs.advance(seconds(30));

  rs.restart(0);
  ASSERT_TRUE(rs.alive(0));
  EXPECT_GT(rs.last_recovery(0).wal_frames_replayed, 0u);
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    ASSERT_NE(rs.replica_store(i), nullptr);
    EXPECT_EQ(rs.replica_store(i)->digest(), rs.writer().store().digest()) << i;
    EXPECT_TRUE(rs.replica_store(i)->check_conservation()) << i;
  }
}

TEST_F(PersistTest, AllReplicasDeadIs503ThenRecoveryServesAgain) {
  serve::ServeReplicaSet rs(topo_, nullptr, test_config(), cosmos_);
  ServerId a{0};
  ServerId b{topo_.pod(PodId{1}).servers[0]};
  feed(rs, {record(a, b, seconds(1), 500'000)}, seconds(2));

  for (std::size_t i = 0; i < rs.replica_count(); ++i) rs.kill(i);
  net::HttpRequest req{"GET", "/query/heatmap?minutes=60", {}, ""};
  serve::ReplicaQueryResult down = rs.query(req);
  EXPECT_EQ(down.response.status, 503);  // degraded, not wedged

  rs.restart(1);
  serve::ReplicaQueryResult up = rs.query(req);
  EXPECT_EQ(up.response.status, 200);  // the VIP probed its way back
  EXPECT_EQ(up.replica, 1u);
  EXPECT_EQ(rs.replica_store(1)->digest(), rs.writer().store().digest());
}

TEST_F(PersistTest, ColdStartOfWholeSetResumesFromCosmos) {
  std::uint64_t digest = 0;
  {
    serve::ServeReplicaSet rs(topo_, nullptr, test_config(), cosmos_);
    ServerId a{0};
    ServerId b{topo_.pod(PodId{1}).servers[0]};
    for (int i = 0; i < 8; ++i) {
      feed(rs, {record(a, b, seconds(10) * i + seconds(1), 500'000)},
           seconds(10) * i + seconds(2));
    }
    digest = rs.writer().store().digest();
    ASSERT_NE(digest, RollupStore(topo_, nullptr, test_config()).digest());
  }  // whole serving tier restarts

  serve::ServeReplicaSet reborn(topo_, nullptr, test_config(), cosmos_);
  EXPECT_EQ(reborn.writer().store().digest(), digest);
  for (std::size_t i = 0; i < reborn.replica_count(); ++i) {
    EXPECT_EQ(reborn.replica_store(i)->digest(), digest) << i;
  }
  net::HttpRequest req{"GET", "/query/heatmap?minutes=60", {}, ""};
  EXPECT_EQ(reborn.query(req).response.status, 200);
}

}  // namespace
}  // namespace pingmesh

SELECT # FROM latency

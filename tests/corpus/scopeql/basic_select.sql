SELECT src_ip, dst_ip, rtt FROM latency WHERE success = 1 ORDER BY rtt DESC LIMIT 10

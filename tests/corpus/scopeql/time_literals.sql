SELECT COUNT(rtt) FROM latency WHERE rtt >= 250us AND rtt < 3s AND NOT (qos = 0 OR timestamp < 1m)

// Unit tests for the common substrate: RNG, statistics sketches, XML, CSV,
// virtual clock and scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ascii_chart.h"
#include "common/clock.h"
#include "common/csv.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "common/xml.h"

namespace pingmesh {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123, 7);
  Rng b(124, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u32() == c2.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU32Unbiased) {
  Rng r(2);
  const std::uint32_t n = 10;
  std::vector<int> counts(n, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[r.uniform_u32(n)];
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], trials / static_cast<int>(n), trials / 50);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(3);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r(4);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoAboveScale) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ChanceProbability) {
  Rng r(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// ---------------------------------------------------------------------------
// CounterRng
// ---------------------------------------------------------------------------

TEST(CounterRng, DeterministicForKey) {
  CounterRng a(0xfeedULL);
  CounterRng b(0xfeedULL);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CounterRng, DifferentKeysDiffer) {
  CounterRng a(1);
  CounterRng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, IndependentInstancesShareNoState) {
  // The whole generator state is the key: draw i from a fresh instance
  // equals draw i from any other instance with the same key, regardless of
  // how many draws either has made. This is what makes probe outcomes
  // order-independent.
  CounterRng reference(0xabcULL);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(reference.next_u64());

  CounterRng replay(0xabcULL);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(replay.next_u64(), expected[static_cast<std::size_t>(i)]);
}

TEST(CounterRng, SharesDistributionHelpersWithRng) {
  CounterRng r(0x1234ULL);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_GE(r.exponential(2.0), 0.0);
    EXPECT_GE(r.pareto(3.0, 1.5), 3.0);
  }
  int hits = 0;
  const int n = 100000;
  CounterRng c(0x5678ULL);
  for (int i = 0; i < n; ++i) {
    if (c.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(CounterRng, UniformU32RangeUnbiased) {
  CounterRng r(7);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_u32(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(MixKey, OrderAndArityMatter) {
  EXPECT_NE(mix_key(1, 2), mix_key(2, 1));
  EXPECT_NE(mix_key(1, 2, 3), mix_key(3, 2, 1));
  EXPECT_NE(mix_key(1, 2, 3), mix_key(1, 2, 3, 0));
  EXPECT_EQ(mix_key(1, 2, 3, 4), mix_key(1, 2, 3, 4));
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(250'000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(static_cast<double>(h.p50()), 250'000, 250'000 * 0.05);
  EXPECT_EQ(h.min(), 250'000);
  EXPECT_EQ(h.max(), 250'000);
}

TEST(LatencyHistogram, ClampsBelowMinimum) {
  LatencyHistogram h(1'000);
  h.record(1);  // below min_value
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1);
}

TEST(LatencyHistogram, QuantileAccuracyUniform) {
  LatencyHistogram h;
  Rng r(7);
  std::vector<double> exact;
  for (int i = 0; i < 100000; ++i) {
    auto v = static_cast<std::int64_t>(r.uniform(10'000, 10'000'000));
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    double want = exact_quantile(exact, q);
    double got = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(got, want, want * 0.05) << "q=" << q;
  }
}

TEST(LatencyHistogram, QuantileAccuracyHeavyTail) {
  LatencyHistogram h;
  Rng r(8);
  std::vector<double> exact;
  for (int i = 0; i < 100000; ++i) {
    auto v = static_cast<std::int64_t>(r.pareto(50'000, 1.1));
    v = std::min<std::int64_t>(v, seconds(100));
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  for (double q : {0.5, 0.99, 0.9999}) {
    double want = exact_quantile(exact, q);
    double got = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(got, want, want * 0.08) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeMatchesCombined) {
  LatencyHistogram a, b, all;
  Rng r(9);
  for (int i = 0; i < 20000; ++i) {
    auto v = static_cast<std::int64_t>(r.lognormal(12, 1.0));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.p50(), all.p50());
  EXPECT_EQ(a.p999(), all.p999());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(LatencyHistogram, MergeGeometryMismatchThrows) {
  LatencyHistogram a(1'000), b(2'000);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencyHistogram, ClearResets) {
  LatencyHistogram h;
  h.record(12345);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0);
}

TEST(LatencyHistogram, CdfPointsMonotone) {
  LatencyHistogram h;
  Rng r(10);
  for (int i = 0; i < 10000; ++i) h.record(static_cast<std::int64_t>(r.uniform(1e3, 1e8)));
  auto points = h.cdf_points();
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(LatencyHistogram, InvalidGeometryThrows) {
  EXPECT_THROW(LatencyHistogram(0), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1000, 0), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1000, 32, 0), std::invalid_argument);
}

// Property sweep: quantiles are within relative error across distributions.
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, QuantilesWithinRelativeError) {
  int seed = GetParam();
  Rng r(static_cast<std::uint64_t>(seed));
  LatencyHistogram h;
  std::vector<double> exact;
  int which = seed % 3;
  for (int i = 0; i < 30000; ++i) {
    double v = 0;
    switch (which) {
      case 0: v = r.uniform(2'000, 5'000'000); break;
      case 1: v = r.exponential(300'000) + 1'000; break;
      default: v = r.lognormal(11.5, 1.4); break;
    }
    auto iv = std::max<std::int64_t>(1, static_cast<std::int64_t>(v));
    h.record(iv);
    exact.push_back(static_cast<double>(iv));
  }
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    double want = exact_quantile(exact, q);
    EXPECT_NEAR(static_cast<double>(h.quantile(q)), want, std::max(want * 0.06, 2000.0))
        << "seed=" << seed << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// RunningStat
// ---------------------------------------------------------------------------

TEST(RunningStat, Moments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.record(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-9);
}

TEST(RunningStat, MergeEqualsCombined) {
  RunningStat a, b, all;
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double v = r.normal(5, 3);
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(FormatHelpers, Latency) {
  EXPECT_EQ(format_latency_ns(500), "500ns");
  EXPECT_EQ(format_latency_ns(216'000), "216us");
  EXPECT_EQ(format_latency_ns(1'340'000), "1.34ms");
  EXPECT_EQ(format_latency_ns(3'000'000'000), "3.00s");
}

// ---------------------------------------------------------------------------
// XML
// ---------------------------------------------------------------------------

TEST(Xml, EscapeRoundTrip) {
  std::string nasty = "a<b>&\"c'd";
  EXPECT_EQ(xml::unescape(xml::escape(nasty)), nasty);
}

TEST(Xml, WriterBasicShape) {
  xml::Writer w;
  w.open("Root").attr("x", std::int64_t{5});
  w.open("Child").attr("name", "a&b").close();
  w.leaf("Note", "hello");
  w.close();
  std::string doc = w.str();
  EXPECT_NE(doc.find("<Root x=\"5\">"), std::string::npos);
  EXPECT_NE(doc.find("name=\"a&amp;b\""), std::string::npos);
  EXPECT_NE(doc.find("<Note>hello</Note>"), std::string::npos);
}

TEST(Xml, WriterUnclosedThrows) {
  xml::Writer w;
  w.open("Root");
  EXPECT_THROW((void)w.str(), std::logic_error);
}

TEST(Xml, ParseRoundTrip) {
  xml::Writer w;
  w.open("Pinglist").attr("server", "srv-1").attr("count", std::int64_t{3});
  w.open("Target").attr("ip", "10.0.0.1").attr("weight", 2.5).close();
  w.open("Target").attr("ip", "10.0.0.2").close();
  w.close();
  auto root = xml::parse(w.str());
  EXPECT_EQ(root->name, "Pinglist");
  EXPECT_EQ(root->attr_or("server", ""), "srv-1");
  EXPECT_EQ(root->attr_int("count", -1), 3);
  auto targets = root->children_named("Target");
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0]->attr_or("ip", ""), "10.0.0.1");
  EXPECT_DOUBLE_EQ(targets[0]->attr_double("weight", 0), 2.5);
  EXPECT_EQ(targets[1]->attr_or("ip", ""), "10.0.0.2");
}

TEST(Xml, ParseTextContent) {
  auto root = xml::parse("<a><b>hello &amp; goodbye</b></a>");
  ASSERT_NE(root->child("b"), nullptr);
  EXPECT_EQ(root->child("b")->text, "hello & goodbye");
}

TEST(Xml, ParseSkipsCommentsAndProlog) {
  auto root = xml::parse(
      "<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><!-- inner --><b/></a>");
  EXPECT_EQ(root->name, "a");
  EXPECT_NE(root->child("b"), nullptr);
}

TEST(Xml, ParseMalformedThrows) {
  EXPECT_THROW(xml::parse("<a><b></a>"), std::runtime_error);       // mismatched
  EXPECT_THROW(xml::parse("<a"), std::runtime_error);               // truncated
  EXPECT_THROW(xml::parse("<a></a><b></b>"), std::runtime_error);   // two roots
  EXPECT_THROW(xml::parse("<a x=5></a>"), std::runtime_error);      // unquoted attr
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(Csv, SimpleRow) {
  EXPECT_EQ(csv::encode_row({"a", "b", "c"}), "a,b,c");
}

TEST(Csv, QuotingRoundTrip) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote", "multi\nline", ""};
  std::string encoded = csv::encode_row(fields) + "\n";
  auto rows = csv::parse(encoded);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], fields);
}

TEST(Csv, MultipleRowsWithCrLf) {
  auto rows = csv::parse("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, LastRowWithoutNewline) {
  auto rows = csv::parse("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(Types, IpAddrFormatting) {
  EXPECT_EQ(IpAddr(10, 1, 2, 3).str(), "10.1.2.3");
  EXPECT_EQ(IpAddr(0).str(), "0.0.0.0");
  EXPECT_EQ(IpAddr(0xffffffffu).str(), "255.255.255.255");
}

TEST(Types, StrongIdsCompare) {
  ServerId a{1}, b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_FALSE(ServerId{}.valid());
  EXPECT_TRUE(a.valid());
}

TEST(Types, TimeHelpers) {
  EXPECT_EQ(millis(3), 3'000'000);
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_micros(micros(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_seconds(minutes(1)), 60.0);
}

// ---------------------------------------------------------------------------
// ascii_chart
// ---------------------------------------------------------------------------

TEST(AsciiChart, LinearBarsScaleWithValues) {
  std::string chart = ascii_chart({{"a", 10.0}, {"b", 5.0}, {"c", 0.0}},
                                  AsciiChartOptions{.width = 10});
  // 'a' has the full bar, 'b' half, 'c' none.
  EXPECT_NE(chart.find("a |##########"), std::string::npos);
  EXPECT_NE(chart.find("b |#####"), std::string::npos);
  EXPECT_NE(chart.find("c |          "), std::string::npos);
}

TEST(AsciiChart, LogScaleSeparatesDecades) {
  std::string chart = ascii_chart({{"base", 1e-5}, {"incident", 1e-3}},
                                  AsciiChartOptions{.width = 20, .log_scale = true});
  auto count_hashes = [&](const std::string& label) {
    auto pos = chart.find(label);
    int n = 0;
    for (std::size_t i = pos; i < chart.size() && chart[i] != '\n'; ++i) {
      if (chart[i] == '#') ++n;
    }
    return n;
  };
  EXPECT_GT(count_hashes("incident"), count_hashes("base"));
  EXPECT_GT(count_hashes("base"), 0);  // log scale keeps small values visible
}

TEST(AsciiChart, EmptySeries) { EXPECT_EQ(ascii_chart({}), ""); }

// ---------------------------------------------------------------------------
// Log
// ---------------------------------------------------------------------------

TEST(Log, SinkCapturesAndLevelFilters) {
  std::vector<std::string> captured;
  Log::set_sink([&](LogLevel level, std::string_view component, std::string_view msg) {
    captured.push_back(std::string(log_level_name(level)) + "/" + std::string(component) +
                       "/" + std::string(msg));
  });
  Log::set_min_level(LogLevel::kWarn);
  Log::info("agent", "ignored");
  Log::warn("agent", "kept");
  Log::error("dsa", "also kept");
  Log::set_sink(nullptr);
  Log::set_min_level(LogLevel::kInfo);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "WARN/agent/kept");
  EXPECT_EQ(captured[1], "ERROR/dsa/also kept");
}

// ---------------------------------------------------------------------------
// EventScheduler
// ---------------------------------------------------------------------------

TEST(EventScheduler, FiresInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule_at(seconds(3), [&](SimTime) { order.push_back(3); });
  sched.schedule_at(seconds(1), [&](SimTime) { order.push_back(1); });
  sched.schedule_at(seconds(2), [&](SimTime) { order.push_back(2); });
  sched.run_until(seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), seconds(10));
}

TEST(EventScheduler, StableOrderAtSameInstant) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(seconds(1), [&order, i](SimTime) { order.push_back(i); });
  }
  sched.run_until(seconds(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, RecurringUntilCancelled) {
  EventScheduler sched;
  int fires = 0;
  sched.schedule_every(seconds(1), [&](SimTime) { return ++fires < 4; });
  sched.run_until(seconds(100));
  EXPECT_EQ(fires, 4);
}

TEST(EventScheduler, RecurringSeesAdvancingClock) {
  EventScheduler sched;
  std::vector<SimTime> times;
  sched.schedule_every(seconds(2), [&](SimTime now) {
    times.push_back(now);
    return times.size() < 3;
  });
  sched.run_until(seconds(10));
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(2), seconds(4), seconds(6)}));
}

TEST(EventScheduler, PastSchedulingThrows) {
  EventScheduler sched;
  sched.run_until(seconds(5));
  EXPECT_THROW(sched.schedule_at(seconds(1), [](SimTime) {}), std::invalid_argument);
}

TEST(EventScheduler, EventsMayScheduleEvents) {
  EventScheduler sched;
  int count = 0;
  sched.schedule_at(seconds(1), [&](SimTime now) {
    ++count;
    sched.schedule_at(now + seconds(1), [&](SimTime) { ++count; });
  });
  sched.run_until(seconds(5));
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace pingmesh

// Middle link of the taint chain: no primitive of its own, but it calls
// one — the violation must still point at wall_nanos via this hop.
#pragma once

#include <cstdint>

#include "common/util.h"

namespace pingmesh::analysis {

inline std::uint64_t jitter(std::uint64_t base) { return base ^ wall_nanos(); }

}  // namespace pingmesh::analysis

// A wallclock helper that escaped common/clock: direct taint.
#pragma once

#include <chrono>
#include <cstdint>

namespace pingmesh {

inline std::uint64_t wall_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace pingmesh

// Shard-parallel root: calls parallel_for, so everything it reaches must be
// deterministic. jitter -> wall_nanos is the tainted chain.
#include <cstdint>

#include "analysis/helper.h"
#include "common/thread_pool.h"

namespace pingmesh::core {

void run_shards(ThreadPool& pool, std::uint64_t* out, int n) {
  pool.parallel_for(0, n, [&](int i) {
    out[i] = analysis::jitter(static_cast<std::uint64_t>(i));
  });
}

}  // namespace pingmesh::core

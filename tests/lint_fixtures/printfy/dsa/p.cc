#include <cstdio>
#include <iostream>
void report(int n) {
  printf("n=%d\n", n);
  std::cout << n;
}

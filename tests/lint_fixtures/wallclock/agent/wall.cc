#include <chrono>
#include <ctime>
#include <sys/time.h>
void sample() {
  auto a = std::chrono::system_clock::now();
  auto b = time(nullptr);
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  (void)a; (void)b;
}

#pragma once
#include "core/fleet.h"
#include "streaming/sketch.h"

#pragma once
#include <cstdint>
// A comment mentioning rand() and system_clock and printf( is not code.
inline const char* kDoc = "strings with rand() and time( are not code either";
inline std::uint64_t twice(std::uint64_t x) { return 2 * x; }

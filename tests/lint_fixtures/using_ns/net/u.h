#pragma once
#include <string>
using namespace std;

#include "obs/metrics.h"

namespace pingmesh::dsa {

// A module-local singleton registry: exactly what the rule forbids.
static obs::MetricsRegistry g_registry;

obs::MetricsRegistry& global_metrics() { return g_registry; }

}  // namespace pingmesh::dsa

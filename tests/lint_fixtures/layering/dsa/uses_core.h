#pragma once
#include "core/fleet.h"
#include "common/types.h"

#pragma once

#include <cstdint>

#include "common/util.h"

namespace pingmesh::analysis {

inline std::uint64_t jitter(std::uint64_t base) { return base ^ wall_nanos(); }

}  // namespace pingmesh::analysis

// Same chain as determinism_taint/, but the primitive user is annotated as
// an intentional consumer — the whole tree must scan clean.
#pragma once

#include <chrono>
#include <cstdint>

namespace pingmesh {

inline std::uint64_t wall_nanos() {  // lint: determinism-sink
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace pingmesh

#include <cstdio>
#include <ctime>
// lint: allow-file(printf)
void emit() {
  printf("suppressed at file scope\n");
  auto t = time(nullptr);  // lint: allow(wallclock)
  (void)t;
}

// The corrected twin of lock_discipline/: every guarded access holds mu_
// (directly or via PM_REQUIRES), so the tree scans clean.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace pingmesh::obs {

class Store {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    sum_ += v;
  }
  int sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
  }

 private:
  void flush_locked() PM_REQUIRES(mu_);

  mutable std::mutex mu_;
  int sum_ PM_GUARDED_BY(mu_) = 0;
};

}  // namespace pingmesh::obs

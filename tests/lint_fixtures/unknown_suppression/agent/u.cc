// A typoed rule name in a suppression must be a hard error, not a silent
// no-op that leaves the real violation unsuppressed forever.
namespace pingmesh::agent {

int x = 0;  // lint: allow(wallclok)

}  // namespace pingmesh::agent

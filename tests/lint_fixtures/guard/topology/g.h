#include <cstdint>
inline std::uint32_t unguarded() { return 7; }

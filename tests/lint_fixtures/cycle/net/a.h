#pragma once
#include "net/b.h"

#pragma once
#include "net/a.h"

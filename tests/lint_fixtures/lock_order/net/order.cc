// A three-mutex acquisition-order cycle (a -> b -> c -> a) plus one
// self-deadlocking re-acquisition. No single function misbehaves — only the
// global lock-order graph sees the cycle.
#include <mutex>

namespace pingmesh::net {

std::mutex a;
std::mutex b;
std::mutex c;
std::mutex d;

void fab() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}

void fbc() {
  std::lock_guard<std::mutex> lb(b);
  std::lock_guard<std::mutex> lc(c);
}

void fca() {
  std::lock_guard<std::mutex> lc(c);
  std::lock_guard<std::mutex> la(a);
}

void fdd() {
  std::lock_guard<std::mutex> l1(d);
  std::lock_guard<std::mutex> l2(d);  // BAD: d already held
}

}  // namespace pingmesh::net

#include "obs/store.h"

namespace pingmesh::obs {

void Store::flush_locked() { sum_ = 0; }

}  // namespace pingmesh::obs

// Two lock-discipline violations: sum() reads a guarded field unlocked, and
// flush() calls a PM_REQUIRES function without the lock. add() is the
// correct pattern and must stay silent.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace pingmesh::obs {

class Store {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    sum_ += v;
  }
  int sum() const { return sum_; }   // BAD: guarded field, no lock
  void flush() { flush_locked(); }   // BAD: callee requires mu_

 private:
  void flush_locked() PM_REQUIRES(mu_);

  mutable std::mutex mu_;
  int sum_ PM_GUARDED_BY(mu_) = 0;
};

}  // namespace pingmesh::obs

#include <cstdlib>
#include <random>
int jitter() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return rand() + static_cast<int>(gen());
}

// Same cycle as lock_order/, but the file opts out wholesale — e.g. a
// module with a documented external ordering contract.
// lint: allow-file(lock-order)
#include <mutex>

namespace pingmesh::net {

std::mutex a;
std::mutex b;
std::mutex c;

void fab() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}

void fbc() {
  std::lock_guard<std::mutex> lb(b);
  std::lock_guard<std::mutex> lc(c);
}

void fca() {
  std::lock_guard<std::mutex> lc(c);
  std::lock_guard<std::mutex> la(a);
}

}  // namespace pingmesh::net

// Tests for the analysis layer: drop-rate inference validated against
// simulator ground truth (the paper validated against NIC/ToR counters),
// black-hole detection, silent-drop localization, heatmaps and pattern
// classification, and the network-issue judgement.
#include <gtest/gtest.h>

#include "agent/record.h"
#include "analysis/blackhole.h"
#include "analysis/droprate.h"
#include "analysis/heatmap.h"
#include "analysis/length_dependence.h"
#include "analysis/server_selection.h"
#include "analysis/silentdrop.h"
#include "analysis/sla.h"
#include "core/fleet.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace pingmesh::analysis {
namespace {

using agent::LatencyRecord;

topo::Topology one_small_dc() {
  return topo::Topology::build({topo::small_dc_spec("DC1", "US West")});
}

controller::GeneratorConfig fleet_config() {
  controller::GeneratorConfig cfg;
  cfg.intra_pod_interval = seconds(10);
  cfg.intra_dc_interval = seconds(10);
  cfg.enable_inter_dc = false;
  cfg.payload_every_kth = 0;  // keep it to connect probes
  return cfg;
}

/// Drive the fleet and collect LatencyRecords (plus ground-truth drops).
struct FleetRun {
  std::vector<LatencyRecord> records;
  std::uint64_t ground_truth_probes_with_drops = 0;
  std::uint64_t successful_probes = 0;
};

FleetRun run_fleet(const topo::Topology& topo, netsim::SimNetwork& net, int rounds,
                   controller::GeneratorConfig cfg = fleet_config()) {
  controller::PinglistGenerator gen(topo, cfg);
  core::FleetProbeDriver driver(topo, net, gen);
  FleetRun out;
  driver.run_dense(0, rounds, seconds(10), [&](const core::FleetProbe& p) {
    LatencyRecord r;
    r.timestamp = p.time;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.src_port = p.src_port;
    r.dst_port = p.target->port;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    out.records.push_back(r);
    if (p.outcome.success) {
      ++out.successful_probes;
      if (p.outcome.packets_dropped > 0) ++out.ground_truth_probes_with_drops;
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Drop-rate inference (§4.2)
// ---------------------------------------------------------------------------

TEST(DropRate, HeuristicCountsSignatures) {
  std::vector<LatencyRecord> records(10);
  for (auto& r : records) {
    r.success = true;
    r.rtt = micros(300);
  }
  records[0].rtt = seconds(3) + micros(300);  // one SYN drop
  records[1].rtt = seconds(9) + micros(300);  // two SYN drops, counted once
  records[2].success = false;                 // excluded from denominator
  DropEstimate e = estimate_drop_rate(records);
  EXPECT_EQ(e.successful_probes, 9u);
  EXPECT_EQ(e.failed_probes, 1u);
  EXPECT_EQ(e.probes_3s, 1u);
  EXPECT_EQ(e.probes_9s, 1u);
  EXPECT_NEAR(e.rate(), 2.0 / 9.0, 1e-12);
}

TEST(DropRate, ValidatedAgainstGroundTruthSingleTor) {
  // The paper: "We have verified the accuracy of the heuristic for a single
  // ToR network by counting the NIC and ToR packet drops." Same experiment:
  // elevated ToR loss, heuristic estimate vs simulator ground truth.
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 42);
  netsim::DcProfile profile;
  profile.tor_drop = 2e-3;  // elevated so a short run has signal
  profile.host_stall_prob = 0;  // keep RTTs clean for signature bands
  net.set_dc_profile(DcId{0}, profile);

  controller::GeneratorConfig cfg = fleet_config();
  cfg.intra_dc_interval = hours(10);  // only intra-pod (single-ToR) traffic
  FleetRun run = run_fleet(topo, net, 120, cfg);

  DropEstimate est = estimate_drop_rate(run.records);
  double truth = static_cast<double>(run.ground_truth_probes_with_drops) /
                 static_cast<double>(run.successful_probes);
  ASSERT_GT(run.successful_probes, 10000u);
  ASSERT_GT(est.probes_3s, 10u);
  EXPECT_NEAR(est.rate(), truth, truth * 0.35 + 1e-4);
}

TEST(DropRate, PerPairStats) {
  std::vector<LatencyRecord> records;
  LatencyRecord r;
  r.src_ip = IpAddr(10, 0, 0, 1);
  r.dst_ip = IpAddr(10, 0, 0, 2);
  r.success = true;
  r.rtt = micros(200);
  records.push_back(r);
  r.success = false;
  records.push_back(r);
  r.dst_ip = IpAddr(10, 0, 0, 3);
  records.push_back(r);
  auto pairs = per_pair_stats(records);
  EXPECT_EQ(pairs.size(), 2u);
  PairKey k{IpAddr(10, 0, 0, 1), IpAddr(10, 0, 0, 2)};
  EXPECT_EQ(pairs[k].probes, 2u);
  EXPECT_EQ(pairs[k].failures, 1u);
  EXPECT_DOUBLE_EQ(pairs[k].failure_rate(), 0.5);
}

// ---------------------------------------------------------------------------
// Length-dependent loss (§4.1: why payload pings exist)
// ---------------------------------------------------------------------------

namespace {

FleetRun run_payload_fleet(const topo::Topology& topo, netsim::SimNetwork& net,
                           int rounds) {
  controller::GeneratorConfig cfg = fleet_config();
  cfg.payload_every_kth = 1;  // every probe carries payload
  cfg.payload_bytes = 1100;
  controller::PinglistGenerator gen(topo, cfg);
  core::FleetProbeDriver driver(topo, net, gen);
  FleetRun out;
  driver.run_dense(0, rounds, seconds(10), [&](const core::FleetProbe& p) {
    LatencyRecord r;
    r.timestamp = p.time;
    r.src_ip = topo.server(p.src).ip;
    r.dst_ip = p.target->ip;
    r.kind = p.target->kind;
    r.payload_bytes = p.target->payload_bytes;
    r.success = p.outcome.success;
    r.rtt = p.outcome.rtt;
    r.payload_success = p.outcome.payload_success;
    r.payload_rtt = p.outcome.payload_rtt;
    out.records.push_back(r);
  });
  return out;
}

}  // namespace

TEST(LengthDependence, FcsFaultFlagged) {
  // Bit-error-driven loss on a leaf: 1100-byte payloads die ~17x more often
  // than 64-byte SYNs. The payload/SYN loss ratio exposes it.
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 31);
  for (SwitchId leaf : topo.podsets()[0].leaves) {
    net.faults().add_fcs_errors(leaf, /*per_kb_drop=*/0.01);
  }
  FleetRun run = run_payload_fleet(topo, net, 6);
  LengthDependenceReport report = detect_length_dependent_loss(run.records);
  ASSERT_GE(report.payload_probes, 500u);
  EXPECT_TRUE(report.length_dependent);
  EXPECT_GT(report.ratio(), 5.0);
  EXPECT_GT(report.payload_loss_rate, 1e-3);
}

TEST(LengthDependence, UniformLossNotFlagged) {
  // Silent random drops hit every packet size alike: no flag.
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 32);
  net.faults().add_silent_random_drop(topo.dcs()[0].spines[0], 0.02);
  FleetRun run = run_payload_fleet(topo, net, 6);
  LengthDependenceReport report = detect_length_dependent_loss(run.records);
  EXPECT_FALSE(report.length_dependent);
}

TEST(LengthDependence, CleanNetworkNotFlagged) {
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 33);
  FleetRun run = run_payload_fleet(topo, net, 4);
  LengthDependenceReport report = detect_length_dependent_loss(run.records);
  EXPECT_FALSE(report.length_dependent);
  EXPECT_LT(report.payload_loss_rate, 1e-3);
}

TEST(LengthDependence, ThinDataNeverFlags) {
  std::vector<LatencyRecord> few(10);
  for (auto& r : few) {
    r.success = true;
    r.kind = controller::ProbeKind::kTcpPayload;
    r.payload_success = false;  // 100% loss but only 10 samples
  }
  EXPECT_FALSE(detect_length_dependent_loss(few).length_dependent);
}

// ---------------------------------------------------------------------------
// Black-hole detection (§5.1)
// ---------------------------------------------------------------------------

TEST(Blackhole, DetectsSingleBadTor) {
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 7);
  SwitchId bad_tor = topo.pods()[2].tor;
  net.faults().add_blackhole(bad_tor, netsim::BlackholeMode::kSrcDstPair, 0.05);

  FleetRun run = run_fleet(topo, net, 5);
  BlackholeDetector detector;
  BlackholeReport report = detector.detect(run.records, topo);

  ASSERT_EQ(report.candidates.size(), 1u) << "expected exactly the seeded ToR";
  EXPECT_EQ(report.candidates[0].tor, bad_tor);
  EXPECT_GT(report.candidates[0].score(), 0.02);
  EXPECT_TRUE(report.escalations.empty());
}

TEST(Blackhole, FiveTupleModeAlsoDetected) {
  // Type-2 black-holes need the fresh-port-per-probe behaviour to show as
  // partial pair failure; with entry fraction 0.5 a pair fails ~half its
  // probes, above the 0.4 symptom threshold.
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 8);
  SwitchId bad_tor = topo.pods()[5].tor;
  net.faults().add_blackhole(bad_tor, netsim::BlackholeMode::kFiveTuple, 0.5);

  FleetRun run = run_fleet(topo, net, 8);
  BlackholeReport report = BlackholeDetector().detect(run.records, topo);
  bool found = false;
  for (const TorScore& c : report.candidates) {
    if (c.tor == bad_tor) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Blackhole, CleanNetworkHasNoCandidates) {
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 9);
  FleetRun run = run_fleet(topo, net, 5);
  BlackholeReport report = BlackholeDetector().detect(run.records, topo);
  EXPECT_TRUE(report.candidates.empty());
  EXPECT_TRUE(report.escalations.empty());
}

TEST(Blackhole, PodsetWideSymptomEscalates) {
  // All ToRs of podset 0 black-holing: not a ToR problem — Leaf/Spine
  // investigation is escalated instead of auto-reloading.
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 10);
  for (PodId pod : topo.podsets()[0].pods) {
    net.faults().add_blackhole(topo.pod(pod).tor, netsim::BlackholeMode::kSrcDstPair, 0.06,
                               0, netsim::FaultInjector::kForever,
                               /*salt=*/pod.value);
  }
  FleetRun run = run_fleet(topo, net, 6);
  BlackholeReport report = BlackholeDetector().detect(run.records, topo);
  ASSERT_EQ(report.escalations.size(), 1u);
  EXPECT_EQ(report.escalations[0], topo.podsets()[0].id);
  for (const TorScore& c : report.candidates) {
    EXPECT_FALSE(c.podset == topo.podsets()[0].id)
        << "escalated podset must not also be auto-reloaded";
  }
}

// Property sweep: the detector finds the seeded ToR across black-hole
// modes, corruption fractions and placements, without false escalations.
struct BlackholeSweepCase {
  netsim::BlackholeMode mode;
  double fraction;
  int pod_index;
  int rounds;
};

class BlackholeSweepTest : public ::testing::TestWithParam<BlackholeSweepCase> {};

TEST_P(BlackholeSweepTest, SeededTorIsFound) {
  const BlackholeSweepCase& c = GetParam();
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 40 + static_cast<std::uint64_t>(c.pod_index));
  SwitchId bad_tor = topo.pods()[static_cast<std::size_t>(c.pod_index)].tor;
  net.faults().add_blackhole(bad_tor, c.mode, c.fraction);

  FleetRun run = run_fleet(topo, net, c.rounds);
  BlackholeReport report = BlackholeDetector().detect(run.records, topo);
  bool found = false;
  for (const TorScore& candidate : report.candidates) {
    if (candidate.tor == bad_tor) found = true;
  }
  EXPECT_TRUE(found) << "mode=" << static_cast<int>(c.mode) << " fraction=" << c.fraction
                     << " pod=" << c.pod_index;
  EXPECT_LE(report.candidates.size(), 2u) << "too many false candidates";
  EXPECT_TRUE(report.escalations.empty());
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndFractions, BlackholeSweepTest,
    ::testing::Values(
        BlackholeSweepCase{netsim::BlackholeMode::kSrcDstPair, 0.04, 1, 6},
        BlackholeSweepCase{netsim::BlackholeMode::kSrcDstPair, 0.10, 3, 6},
        BlackholeSweepCase{netsim::BlackholeMode::kSrcDstPair, 0.20, 6, 6},
        BlackholeSweepCase{netsim::BlackholeMode::kFiveTuple, 0.30, 0, 12},
        BlackholeSweepCase{netsim::BlackholeMode::kFiveTuple, 0.50, 4, 10},
        BlackholeSweepCase{netsim::BlackholeMode::kFiveTuple, 0.75, 7, 8}));

// ---------------------------------------------------------------------------
// Silent random packet drops (§5.2)
// ---------------------------------------------------------------------------

TEST(SilentDrop, LocalizesFaultySpine) {
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 11);
  SwitchId bad_spine = topo.dcs()[0].spines[2];
  net.faults().add_silent_random_drop(bad_spine, 0.02);

  FleetRun run = run_fleet(topo, net, 30);
  SilentDropLocalizer localizer;
  SilentDropReport report = localizer.localize(run.records, topo, net, 0);

  ASSERT_TRUE(report.incident);
  EXPECT_EQ(report.affected_dc, DcId{0});
  EXPECT_EQ(report.tier, SuspectTier::kSpine);
  EXPECT_GT(report.cross_podset_rate, report.intra_podset_rate * 3);
  ASSERT_TRUE(report.culprit.valid());
  EXPECT_EQ(report.culprit, bad_spine);
  EXPECT_GT(report.culprit_loss, 0.005);
}

TEST(SilentDrop, NoIncidentOnCleanNetwork) {
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 12);
  FleetRun run = run_fleet(topo, net, 10);
  SilentDropLocalizer localizer;
  EXPECT_FALSE(localizer.detect_affected_dc(run.records, topo).has_value());
  EXPECT_FALSE(localizer.localize(run.records, topo, net, 0).incident);
}

TEST(SilentDrop, TracerouteDiscoversFullPath) {
  topo::Topology topo = one_small_dc();
  netsim::SimNetwork net(topo, 13);
  ServerId a = topo.podsets()[0].pods[0].value == 0 ? topo.pods()[0].servers[0]
                                                    : topo.pods()[0].servers[0];
  ServerId b = topo.pods()[4].servers[0];  // other podset
  FiveTuple tup{topo.server(a).ip, topo.server(b).ip, 40321, 33100, 6};
  auto hops = tcp_traceroute(net, tup, 0);
  ASSERT_EQ(hops.size(), 5u);  // tor-leaf-spine-leaf-tor
  EXPECT_EQ(topo.sw(hops[2]).kind, topo::SwitchKind::kSpine);
}

// ---------------------------------------------------------------------------
// Heatmap + pattern classification (§6.3)
// ---------------------------------------------------------------------------

class HeatmapTest : public ::testing::Test {
 protected:
  HeatmapTest() : topo_(one_small_dc()), map_(topo_, DcId{0}) {}

  dsa::PodPairStatRow row(PodId src, PodId dst, SimTime p99, std::uint64_t successes = 100,
                          std::uint64_t signatures = 0) {
    dsa::PodPairStatRow r;
    r.src_pod = src;
    r.dst_pod = dst;
    r.probes = successes;
    r.successes = successes;
    r.drop_signatures = signatures;
    r.p99_ns = p99;
    return r;
  }

  /// All pod pairs with a painter function deciding the P99.
  std::vector<dsa::PodPairStatRow> paint(
      const std::function<dsa::PodPairStatRow(PodId, PodId)>& painter) {
    std::vector<dsa::PodPairStatRow> rows;
    for (const topo::Pod& a : topo_.pods()) {
      for (const topo::Pod& b : topo_.pods()) rows.push_back(painter(a.id, b.id));
    }
    return rows;
  }

  topo::Topology topo_;
  Heatmap map_;
};

TEST_F(HeatmapTest, ColorThresholds) {
  map_.load({row(PodId{0}, PodId{1}, millis(1)), row(PodId{0}, PodId{2}, millis(4) + 1),
             row(PodId{0}, PodId{3}, millis(6)),
             row(PodId{0}, PodId{4}, millis(1), /*successes=*/0)});
  EXPECT_EQ(map_.cell(0, 1), CellColor::kGreen);
  EXPECT_EQ(map_.cell(0, 2), CellColor::kYellow);
  EXPECT_EQ(map_.cell(0, 3), CellColor::kRed);
  EXPECT_EQ(map_.cell(0, 4), CellColor::kWhite);
  EXPECT_EQ(map_.cell(1, 0), CellColor::kWhite);  // no data loaded
}

TEST_F(HeatmapTest, HighDropRateIsRedEvenIfFast) {
  map_.load({row(PodId{0}, PodId{1}, millis(1), 1000, 10)});  // 1% drops
  EXPECT_EQ(map_.cell(0, 1), CellColor::kRed);
}

TEST_F(HeatmapTest, NormalPattern) {
  map_.load(paint([&](PodId a, PodId b) { return row(a, b, millis(1)); }));
  PatternResult r = classify_pattern(map_);
  EXPECT_EQ(r.pattern, LatencyPattern::kNormal);
  EXPECT_GE(r.green_fraction, 0.95);
}

TEST_F(HeatmapTest, PodsetDownPattern) {
  PodsetId down = topo_.podsets()[0].id;
  map_.load(paint([&](PodId a, PodId b) {
    bool involved = topo_.pod(a).podset == down || topo_.pod(b).podset == down;
    return involved ? row(a, b, millis(1), /*successes=*/0) : row(a, b, millis(1));
  }));
  PatternResult r = classify_pattern(map_);
  EXPECT_EQ(r.pattern, LatencyPattern::kPodsetDown);
  EXPECT_EQ(r.podset, down);
}

TEST_F(HeatmapTest, PodsetFailurePattern) {
  PodsetId bad = topo_.podsets()[1].id;
  map_.load(paint([&](PodId a, PodId b) {
    bool involved = topo_.pod(a).podset == bad || topo_.pod(b).podset == bad;
    return involved ? row(a, b, millis(9)) : row(a, b, millis(1));
  }));
  PatternResult r = classify_pattern(map_);
  EXPECT_EQ(r.pattern, LatencyPattern::kPodsetFailure);
  EXPECT_EQ(r.podset, bad);
}

TEST_F(HeatmapTest, SpineFailurePattern) {
  map_.load(paint([&](PodId a, PodId b) {
    bool cross = !(topo_.pod(a).podset == topo_.pod(b).podset);
    return cross ? row(a, b, millis(9)) : row(a, b, millis(1));
  }));
  PatternResult r = classify_pattern(map_);
  EXPECT_EQ(r.pattern, LatencyPattern::kSpineFailure);
}

TEST_F(HeatmapTest, AsciiAndPpmRender) {
  map_.load(paint([&](PodId a, PodId b) { return row(a, b, millis(1)); }));
  std::string ascii = map_.ascii();
  EXPECT_EQ(ascii.size(), 8u * 9u);  // 8 pods: 8 rows of 8 chars + newline
  EXPECT_EQ(ascii[0], 'G');
  std::string ppm = map_.to_ppm(2);
  EXPECT_EQ(ppm.substr(0, 2), "P6");
  EXPECT_NE(ppm.find("16 16"), std::string::npos);
}

// ---------------------------------------------------------------------------
// "Is it a network issue?" (§4.3)
// ---------------------------------------------------------------------------

TEST(NetworkIssueJudge, Verdicts) {
  dsa::Database db;
  auto add_row = [&](std::uint64_t signatures, SimTime p99) {
    dsa::SlaRow r;
    r.scope = dsa::SlaScope::kService;
    r.scope_id = 1;
    r.window_start = 0;
    r.window_end = hours(1);
    r.probes = 10000;
    r.successes = 9990;
    r.drop_signatures = signatures;
    r.p99_ns = p99;
    db.sla_rows.push_back(r);
  };

  add_row(0, micros(550));
  IssueVerdict healthy = judge_network_issue(db, dsa::SlaScope::kService, 1, 0, hours(1));
  EXPECT_FALSE(healthy.network_issue);
  EXPECT_NE(healthy.evidence.find("not a network issue"), std::string::npos);

  db.sla_rows.clear();
  add_row(50, micros(550));  // 5e-3 drop rate
  IssueVerdict drops = judge_network_issue(db, dsa::SlaScope::kService, 1, 0, hours(1));
  EXPECT_TRUE(drops.network_issue);

  db.sla_rows.clear();
  add_row(0, millis(20));
  IssueVerdict slow = judge_network_issue(db, dsa::SlaScope::kService, 1, 0, hours(1));
  EXPECT_TRUE(slow.network_issue);

  // Thin data -> conservative "not the network".
  dsa::Database empty;
  IssueVerdict thin = judge_network_issue(empty, dsa::SlaScope::kService, 1, 0, hours(1));
  EXPECT_FALSE(thin.network_issue);
  EXPECT_NE(thin.evidence.find("insufficient"), std::string::npos);
}

TEST(ServerSelection, RanksByDropRateThenLatency) {
  dsa::Database db;
  auto add_server_row = [&](std::uint32_t id, std::uint64_t signatures, SimTime p99) {
    dsa::SlaRow r;
    r.scope = dsa::SlaScope::kServer;
    r.scope_id = id;
    r.window_start = 0;
    r.window_end = hours(1);
    r.probes = 1000;
    r.successes = 1000;
    r.drop_signatures = signatures;
    r.p99_ns = p99;
    db.sla_rows.push_back(r);
  };
  add_server_row(1, 0, millis(1));   // clean & fast: best
  add_server_row(2, 0, millis(4));   // clean, slower
  add_server_row(3, 20, millis(1));  // drops 2%: worst measured
  // server 4 has no data at all: unknown, ranks last.

  auto ranked = rank_servers_for_selection(
      db, {ServerId{4}, ServerId{3}, ServerId{2}, ServerId{1}});
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].server, ServerId{1});
  EXPECT_EQ(ranked[1].server, ServerId{2});
  EXPECT_EQ(ranked[2].server, ServerId{3});
  EXPECT_EQ(ranked[3].server, ServerId{4});
  EXPECT_NEAR(ranked[2].drop_rate, 0.02, 1e-9);
  EXPECT_EQ(ranked[3].probes, 0u);
}

TEST(ServerSelection, WindowFilterApplies) {
  dsa::Database db;
  dsa::SlaRow old_row;
  old_row.scope = dsa::SlaScope::kServer;
  old_row.scope_id = 1;
  old_row.window_start = 0;
  old_row.window_end = hours(1);
  old_row.probes = 1000;
  old_row.successes = 1000;
  old_row.drop_signatures = 100;  // terrible, but ancient
  db.sla_rows.push_back(old_row);

  SelectionOptions opts;
  opts.window_start = hours(10);  // only recent data counts
  auto ranked = rank_servers_for_selection(db, {ServerId{1}}, opts);
  EXPECT_EQ(ranked[0].probes, 0u);  // the old window was excluded
}

TEST(NetworkIssueJudge, TimeSeries) {
  dsa::Database db;
  for (int w = 0; w < 5; ++w) {
    dsa::SlaRow r;
    r.scope = dsa::SlaScope::kService;
    r.scope_id = 3;
    r.window_start = hours(w);
    r.window_end = hours(w + 1);
    r.probes = 100;
    r.successes = 100;
    r.drop_signatures = static_cast<std::uint64_t>(w);
    r.p99_ns = micros(500 + 10 * w);
    db.sla_rows.push_back(r);
  }
  auto series = sla_time_series(db, dsa::SlaScope::kService, 3);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_LT(series[0].drop_rate, series[4].drop_rate);
  EXPECT_EQ(series[2].window_start, hours(2));
}

}  // namespace
}  // namespace pingmesh::analysis

// Tests for the Autopilot substrate: watchdogs and the repair service.
#include <gtest/gtest.h>

#include "autopilot/repair.h"
#include "autopilot/service_manager.h"
#include "autopilot/watchdog.h"

namespace pingmesh::autopilot {
namespace {

TEST(Watchdog, RunsAllChecksAndStamps) {
  WatchdogService ws;
  ws.register_check("always-ok", [](SimTime) {
    CheckResult r;
    r.health = Health::kOk;
    r.message = "fine";
    return r;
  });
  ws.register_check("always-bad", [](SimTime) {
    CheckResult r;
    r.health = Health::kError;
    r.message = "broken";
    return r;
  });
  const auto& results = ws.run_checks(seconds(42));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "always-ok");
  EXPECT_EQ(results[0].checked_at, seconds(42));
  EXPECT_FALSE(ws.all_healthy());
  EXPECT_EQ(ws.runs(), 1u);
}

TEST(Watchdog, ThresholdCheckHelper) {
  double value = 10.0;
  auto check = WatchdogService::threshold_check([&] { return value; }, 45.0, "MB");
  EXPECT_EQ(check(0).health, Health::kOk);
  value = 50.0;
  EXPECT_EQ(check(0).health, Health::kError);
}

TEST(Repair, ExecutesReloadAndAppliesEffect) {
  std::vector<std::uint32_t> reloaded;
  RepairService rs(RepairConfig{}, [&](SwitchId sw) { reloaded.push_back(sw.value); },
                   nullptr);
  EXPECT_TRUE(rs.request_reload(SwitchId{7}, "blackhole", hours(1)));
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded[0], 7u);
  ASSERT_EQ(rs.history().size(), 1u);
  EXPECT_TRUE(rs.history()[0].executed);
  EXPECT_EQ(rs.history()[0].reason, "blackhole");
}

TEST(Repair, DailyBudgetEnforced) {
  // "we limit the algorithm to reload at most 20 switches per day"
  int applied = 0;
  RepairService rs(RepairConfig{.max_reloads_per_day = 20},
                   [&](SwitchId) { ++applied; }, nullptr);
  int executed = 0;
  for (std::uint32_t i = 0; i < 30; ++i) {
    if (rs.request_reload(SwitchId{i}, "bh", hours(1))) ++executed;
  }
  EXPECT_EQ(executed, 20);
  EXPECT_EQ(applied, 20);
  EXPECT_EQ(rs.reloads_remaining_today(hours(1)), 0);
  EXPECT_EQ(rs.history().size(), 30u);  // deferred requests are recorded
}

TEST(Repair, BudgetResetsNextDay) {
  RepairService rs(RepairConfig{.max_reloads_per_day = 2}, nullptr, nullptr);
  EXPECT_TRUE(rs.request_reload(SwitchId{1}, "bh", hours(1)));
  EXPECT_TRUE(rs.request_reload(SwitchId{2}, "bh", hours(2)));
  EXPECT_FALSE(rs.request_reload(SwitchId{3}, "bh", hours(3)));
  // Next day.
  EXPECT_TRUE(rs.request_reload(SwitchId{3}, "bh", days(1) + hours(1)));
  EXPECT_EQ(rs.reloads_remaining_today(days(1) + hours(1)), 1);
}

TEST(Repair, DeferredReloadQueuedAndExecutedOnRollover) {
  // A budget-refused reload is parked, not dropped: retry_deferred is a
  // no-op while the day's budget is spent, then executes the queue oldest-
  // first the moment the day rolls over (day_of uses the configured
  // day_length, so a soak can shrink the day to cross the boundary mid-run).
  std::vector<std::uint32_t> reloaded;
  RepairService rs(RepairConfig{.max_reloads_per_day = 1, .day_length = minutes(10)},
                   [&](SwitchId sw) { reloaded.push_back(sw.value); }, nullptr);
  EXPECT_TRUE(rs.request_reload(SwitchId{1}, "bh A", minutes(1)));
  EXPECT_FALSE(rs.request_reload(SwitchId{2}, "bh B", minutes(2)));
  ASSERT_EQ(rs.deferred().size(), 1u);
  EXPECT_EQ(rs.deferred()[0].sw, SwitchId{2});
  // Still day 0: nothing executes.
  EXPECT_TRUE(rs.retry_deferred(minutes(5)).empty());
  EXPECT_EQ(rs.deferred().size(), 1u);
  // Day 1: the parked reload executes and leaves the queue.
  auto executed = rs.retry_deferred(minutes(11));
  ASSERT_EQ(executed.size(), 1u);
  EXPECT_EQ(executed[0], SwitchId{2});
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded[1], 2u);
  EXPECT_TRUE(rs.deferred().empty());
  EXPECT_EQ(rs.deferred_executed_total(), 1u);
  // The execution is a second history record carrying the deferral age.
  const auto& last = rs.history().back();
  EXPECT_TRUE(last.executed);
  EXPECT_NE(last.reason.find("deferred since"), std::string::npos);
}

TEST(Repair, RmaIsolatesImmediatelyAndUnbudgeted) {
  std::vector<std::uint32_t> isolated;
  RepairService rs(RepairConfig{.max_reloads_per_day = 0}, nullptr,
                   [&](SwitchId sw) { isolated.push_back(sw.value); });
  rs.isolate_and_rma(SwitchId{5}, "silent random drops", hours(1));
  ASSERT_EQ(isolated.size(), 1u);
  ASSERT_EQ(rs.rma_queue().size(), 1u);
  EXPECT_EQ(rs.rma_queue()[0], SwitchId{5});
}

TEST(ServiceManager, TerminatesOverBudgetService) {
  // "Once the maximum memory usage exceeds the cap, the Pingmesh Agent will
  // be terminated."
  ServiceManager sm;
  std::size_t memory = 10 * 1024 * 1024;
  int killed = 0;
  sm.manage("pingmesh-agent", ResourceBudget{.max_memory_bytes = 45 * 1024 * 1024},
            [&] { return memory; }, nullptr, [&] {
              ++killed;
              memory = 1024;  // restart resets usage
            });
  EXPECT_EQ(sm.enforce(minutes(1)), 0);
  memory = 100 * 1024 * 1024;  // leak!
  EXPECT_EQ(sm.enforce(minutes(2)), 1);
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(sm.enforce(minutes(3)), 0);  // healthy after restart
  EXPECT_EQ(sm.total_terminations(), 1u);
  EXPECT_EQ(sm.services()[0].terminations, 1u);
}

TEST(ServiceManager, CpuBudgetEnforced) {
  ServiceManager sm;
  double cpu = 0.01;
  int killed = 0;
  sm.manage("agent", ResourceBudget{.max_cpu_fraction = 0.05}, nullptr,
            [&] { return cpu; }, [&] { ++killed; cpu = 0.0; });
  sm.enforce(0);
  EXPECT_EQ(killed, 0);
  cpu = 0.80;  // busy loop bug
  sm.enforce(seconds(1));
  EXPECT_EQ(killed, 1);
}

TEST(ServiceManager, MissingProbesAreUnchecked) {
  ServiceManager sm;
  sm.manage("opaque", ResourceBudget{.max_memory_bytes = 1}, nullptr, nullptr, nullptr);
  EXPECT_EQ(sm.enforce(0), 0);  // nothing to measure, nothing to kill
}

}  // namespace
}  // namespace pingmesh::autopilot

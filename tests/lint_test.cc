// Tests for the pingmesh_lint rule engine: every rule must trip on its
// fixture tree (tests/lint_fixtures/<case>/), suppressions must silence
// exactly the named rule, and — the tier-1 gate — the real src/ tree must
// come back clean.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace lint = pingmesh::lint;

namespace {

std::string fixture(const std::string& name) {
  return std::string(PINGMESH_LINT_FIXTURE_DIR) + "/" + name;
}

TEST(LintRules, LayeringViolationFires) {
  lint::Report r = lint::run_tree(fixture("layering"));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "layering");
  EXPECT_EQ(r.violations[0].file, "dsa/uses_core.h");
  EXPECT_EQ(r.violations[0].line, 2);  // the "core/fleet.h" include
  // "common/types.h" is a lower layer: must not fire.
}

TEST(LintRules, IncludeCycleFires) {
  lint::Report r = lint::run_tree(fixture("cycle"));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "include-cycle");
  EXPECT_NE(r.violations[0].message.find("net/a.h"), std::string::npos);
  EXPECT_NE(r.violations[0].message.find("net/b.h"), std::string::npos);
}

TEST(LintRules, WallclockFires) {
  lint::Report r = lint::run_tree(fixture("wallclock"));
  std::set<int> lines;
  for (const auto& v : r.violations) {
    EXPECT_EQ(v.rule, "wallclock");
    lines.insert(v.line);
  }
  // system_clock, time(nullptr), gettimeofday — three distinct lines.
  EXPECT_EQ(lines.size(), 3u);
}

TEST(LintRules, RngFires) {
  lint::Report r = lint::run_tree(fixture("rng"));
  for (const auto& v : r.violations) EXPECT_EQ(v.rule, "rng");
  // random_device, mt19937, rand() — at least three findings.
  EXPECT_GE(r.violations.size(), 3u);
}

TEST(LintRules, UsingNamespaceInHeaderFires) {
  lint::Report r = lint::run_tree(fixture("using_ns"));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "using-namespace-header");
  EXPECT_EQ(r.violations[0].line, 3);
}

TEST(LintRules, PrintfFamilyFires) {
  lint::Report r = lint::run_tree(fixture("printfy"));
  ASSERT_EQ(r.violations.size(), 2u);  // printf(...) and std::cout
  EXPECT_EQ(r.violations[0].rule, "printf");
  EXPECT_EQ(r.violations[1].rule, "printf");
}

TEST(LintRules, MetricsGlobalFires) {
  lint::Report r = lint::run_tree(fixture("metrics_global"));
  ASSERT_EQ(r.violations.size(), 2u);  // static MetricsRegistry + global_metrics()
  EXPECT_EQ(r.violations[0].rule, "metrics-global");
  EXPECT_EQ(r.violations[1].rule, "metrics-global");
  EXPECT_EQ(r.violations[0].file, "dsa/g.cc");
}

TEST(LintRules, ServeBoundaryFiresBothWays) {
  // core/uses_serve.h includes serve/ (nothing in src/ may consume the
  // serving tier) and serve/uses_core.h includes core/ (off the serve
  // allow-list). Both are layer 3, so plain layering stays silent — the
  // boundary rule is what catches them.
  lint::Report r = lint::run_tree(fixture("serve_boundary"));
  ASSERT_EQ(r.violations.size(), 2u);
  for (const auto& v : r.violations) EXPECT_EQ(v.rule, "serve-boundary");
  EXPECT_EQ(r.violations[0].file, "core/uses_serve.h");
  EXPECT_EQ(r.violations[0].line, 2);  // the "serve/rollup.h" include
  EXPECT_EQ(r.violations[1].file, "serve/uses_core.h");
  EXPECT_EQ(r.violations[1].line, 2);  // the "core/fleet.h" include
  // streaming/sketch.h is allow-listed for serve: must not fire.
}

TEST(LintRules, MissingHeaderGuardFires) {
  lint::Report r = lint::run_tree(fixture("guard"));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "header-guard");
  EXPECT_EQ(r.violations[0].file, "topology/g.h");
}

TEST(LintRules, SuppressionsSilenceExactlyTheNamedRule) {
  // s.cc has a file-scope allow(printf) and a line-scope allow(wallclock):
  // both violations present, both suppressed, nothing else fires.
  lint::Report r = lint::run_tree(fixture("suppressed"));
  EXPECT_TRUE(r.violations.empty())
      << (r.violations.empty() ? "" : r.violations[0].rule + ": " + r.violations[0].message);
}

TEST(LintRules, CleanTreeIsClean) {
  lint::Report r = lint::run_tree(fixture("clean"));
  EXPECT_EQ(r.files_scanned, 1u);
  EXPECT_TRUE(r.violations.empty());
}

TEST(LintRules, DeterminismTaintFollowsTransitiveChain) {
  // core/engine.cc calls parallel_for (a shard-parallel root); the body
  // reaches analysis::jitter which reaches common/util.h's wall_nanos,
  // which touches steady_clock. Only the direct primitive user is flagged,
  // and the message carries the concrete call path.
  lint::Report r = lint::run_tree(fixture("determinism_taint"));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "determinism-taint");
  EXPECT_EQ(r.violations[0].file, "common/util.h");
  EXPECT_NE(r.violations[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(r.violations[0].message.find("run_shards -> jitter -> wall_nanos"),
            std::string::npos);
}

TEST(LintRules, DeterminismSinkDirectiveStopsTheTaint) {
  // Identical tree, but wall_nanos carries `// lint: determinism-sink`:
  // the sink neither fires nor propagates taint to its callers.
  lint::Report r = lint::run_tree(fixture("determinism_taint_sink"));
  EXPECT_TRUE(r.violations.empty())
      << (r.violations.empty() ? "" : r.violations[0].rule + ": " + r.violations[0].message);
}

TEST(LintRules, LockDisciplineCatchesUnlockedFieldAndRequiresCall) {
  // sum() reads a PM_GUARDED_BY field without the mutex; flush() calls a
  // PM_REQUIRES function without it. add() (the correct pattern) and the
  // .cc definition of flush_locked (covered by its decl's PM_REQUIRES)
  // must both stay silent.
  lint::Report r = lint::run_tree(fixture("lock_discipline"));
  ASSERT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.violations[0].rule, "lock-discipline");
  EXPECT_EQ(r.violations[0].file, "obs/store.h");
  EXPECT_NE(r.violations[0].message.find("'sum_' is PM_GUARDED_BY(mu_)"),
            std::string::npos);
  EXPECT_EQ(r.violations[1].rule, "lock-discipline");
  EXPECT_NE(r.violations[1].message.find("'Store::flush_locked' which PM_REQUIRES(mu_)"),
            std::string::npos);
}

TEST(LintRules, LockDisciplineAcceptsTheAnnotatedTwin) {
  lint::Report r = lint::run_tree(fixture("lock_discipline_ok"));
  EXPECT_TRUE(r.violations.empty())
      << (r.violations.empty() ? "" : r.violations[0].rule + ": " + r.violations[0].message);
}

TEST(LintRules, LockOrderCycleAndDoubleLockFire) {
  // fab/fbc/fca individually nest two locks innocently; only the global
  // graph sees a -> b -> c -> a. fdd re-acquires d while holding it.
  lint::Report r = lint::run_tree(fixture("lock_order"));
  ASSERT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.violations[0].rule, "lock-order");
  EXPECT_NE(r.violations[0].message.find(
                "net/order.cc::a -> net/order.cc::b -> net/order.cc::c -> "
                "net/order.cc::a"),
            std::string::npos);
  EXPECT_EQ(r.violations[1].rule, "lock-discipline");
  EXPECT_EQ(r.violations[1].line, 30);
  EXPECT_NE(r.violations[1].message.find("'d' is already held"), std::string::npos);
}

TEST(LintRules, AllowFileSilencesLockOrder) {
  lint::Report r = lint::run_tree(fixture("lock_order_suppressed"));
  EXPECT_TRUE(r.violations.empty())
      << (r.violations.empty() ? "" : r.violations[0].rule + ": " + r.violations[0].message);
}

TEST(LintRules, UnknownRuleInSuppressionIsAHardError) {
  lint::Report r = lint::run_tree(fixture("unknown_suppression"));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "unknown-suppression");
  EXPECT_NE(r.violations[0].message.find("unknown rule 'wallclok'"), std::string::npos);
}

TEST(LintRules, OptionsRestrictWhichRulesRun) {
  // The lock_order fixture trips lock-order and lock-discipline; narrowing
  // Options to one rule must drop the other finding.
  lint::Options only_order;
  only_order.rules = {"lock-order"};
  lint::Report r = lint::run_tree(fixture("lock_order"), only_order);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "lock-order");
}

TEST(LintRules, ReportIsByteStableAcrossRuns) {
  auto render = [](const lint::Report& r) {
    std::string out;
    for (const auto& v : r.violations) {
      out += v.file + ":" + std::to_string(v.line) + " " + v.rule + " " + v.message + "\n";
    }
    return out;
  };
  std::string a = render(lint::run_tree(fixture("lock_order")));
  std::string b = render(lint::run_tree(fixture("lock_order")));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(render(lint::run_tree(fixture("determinism_taint"))),
            render(lint::run_tree(fixture("determinism_taint"))));
}

TEST(LintJson, EscapesAndStructuresViolations) {
  std::vector<lint::Violation> vs;
  vs.push_back({"net/a.h", 3, "printf", "bad \"quote\"\\slash\n\ttab"});
  std::string j = lint::violations_to_json(vs);
  EXPECT_NE(j.find("\"file\":\"net/a.h\""), std::string::npos);
  EXPECT_NE(j.find("\"line\":3"), std::string::npos);
  EXPECT_NE(j.find("\"rule\":\"printf\""), std::string::npos);
  EXPECT_NE(j.find("bad \\\"quote\\\"\\\\slash\\n\\ttab"), std::string::npos);
  EXPECT_EQ(lint::violations_to_json({}).find("[]"), 0u);
}

// The acceptance gate: the real source tree passes every rule. This is the
// same check the `pingmesh_lint` ctest performs via the binary; asserting
// it here too means a violation points at the rule engine output in a
// gtest failure message.
TEST(LintRules, RealSourceTreeIsClean) {
  lint::Report r = lint::run_tree(PINGMESH_SRC_DIR);
  EXPECT_GT(r.files_scanned, 90u);
  for (const auto& v : r.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] " << v.message;
  }
}

TEST(LintLexer, StripsCommentsAndStrings) {
  auto cooked = lint::strip_comments_and_strings({
      "int x = 1; // rand() in a comment",
      "const char* s = \"rand() in a string\";",
      "/* block rand()",
      "   still comment */ int y = 2;",
  });
  EXPECT_EQ(cooked[0].find("rand"), std::string::npos);
  EXPECT_EQ(cooked[1].find("rand"), std::string::npos);
  EXPECT_EQ(cooked[2].find("rand"), std::string::npos);
  EXPECT_NE(cooked[3].find("int y = 2;"), std::string::npos);
  // Positions survive: 'int x' still starts at column 0.
  EXPECT_EQ(cooked[0].rfind("int x", 0), 0u);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  auto cooked = lint::strip_comments_and_strings({"std::size_t n = 100'000; rand();"});
  // If 100'000 opened a char literal the rand() call would be blanked.
  EXPECT_NE(cooked[0].find("rand()"), std::string::npos);
}

TEST(LintLexer, RawStringsAreBlanked) {
  auto cooked = lint::strip_comments_and_strings({
      "auto q = R\"(SELECT rand() FROM latency)\"; time(nullptr);",
  });
  EXPECT_EQ(cooked[0].find("SELECT"), std::string::npos);
  EXPECT_NE(cooked[0].find("time(nullptr)"), std::string::npos);
}

TEST(LintLexer, MultiLineRawString) {
  auto cooked = lint::strip_comments_and_strings({
      "auto q = R\"sql(line one rand()",
      "line two system_clock)sql\"; int z = 3;",
  });
  EXPECT_EQ(cooked[0].find("rand"), std::string::npos);
  EXPECT_EQ(cooked[1].find("system_clock"), std::string::npos);
  EXPECT_NE(cooked[1].find("int z = 3;"), std::string::npos);
}

TEST(LintLexer, EncodingPrefixedRawStringsAreBlanked) {
  // u8R/uR/UR/LR are raw-string openers too; before the fix they fell into
  // the ordinary-string path and the first embedded quote "ended" them.
  auto cooked = lint::strip_comments_and_strings({
      "auto a = u8R\"(one rand())\"; int keep1 = 1;",
      "auto b = LR\"(two system_clock)\"; int keep2 = 2;",
      "auto c = uR\"x(three \" quote)x\"; auto d = UR\"(four mt19937)\"; int keep3 = 3;",
  });
  EXPECT_EQ(cooked[0].find("rand"), std::string::npos);
  EXPECT_NE(cooked[0].find("keep1"), std::string::npos);
  EXPECT_EQ(cooked[1].find("system_clock"), std::string::npos);
  EXPECT_NE(cooked[1].find("keep2"), std::string::npos);
  EXPECT_EQ(cooked[2].find("quote"), std::string::npos);
  EXPECT_EQ(cooked[2].find("mt19937"), std::string::npos);
  EXPECT_NE(cooked[2].find("keep3"), std::string::npos);
}

TEST(LintLexer, IdentifierTailRIsNotARawStringPrefix) {
  // `fooR"..."` — the R belongs to a longer identifier, so this is an
  // ordinary string literal, blanked up to its closing quote.
  auto cooked = lint::strip_comments_and_strings({
      "auto s = fooR\"(not raw)\"; rand();",
  });
  EXPECT_EQ(cooked[0].find("not raw"), std::string::npos);
  EXPECT_NE(cooked[0].find("rand()"), std::string::npos);
}

TEST(LintLexer, FakeCloseInsideRawStringDoesNotEndIt) {
  // `)x"` inside an R"outer(...)outer" body is content, not a terminator.
  auto cooked = lint::strip_comments_and_strings({
      "auto q = R\"outer(body )x\" more rand())outer\"; int keep = 4;",
  });
  EXPECT_EQ(cooked[0].find("rand"), std::string::npos);
  EXPECT_NE(cooked[0].find("keep"), std::string::npos);
}

TEST(LintLexer, InvalidRawDelimiterFallsBackToOrdinaryString) {
  // A backslash cannot appear in a raw-string delimiter, so `R"\(...` is
  // lexed as an ordinary string and ends at the next quote.
  auto cooked = lint::strip_comments_and_strings({
      "auto s = R\"\\(oops\"; rand();",
  });
  EXPECT_EQ(cooked[0].find("oops"), std::string::npos);
  EXPECT_NE(cooked[0].find("rand()"), std::string::npos);
}

TEST(LintLayers, ModuleMapMatchesDesignDag) {
  EXPECT_EQ(lint::module_layer("common"), 0);
  EXPECT_EQ(lint::module_layer("net"), 1);
  EXPECT_EQ(lint::module_layer("topology"), 1);
  EXPECT_EQ(lint::module_layer("netsim"), 1);
  EXPECT_EQ(lint::module_layer("agent"), 2);
  EXPECT_EQ(lint::module_layer("controller"), 2);
  EXPECT_EQ(lint::module_layer("dsa"), 2);
  EXPECT_EQ(lint::module_layer("streaming"), 2);
  EXPECT_EQ(lint::module_layer("analysis"), 2);
  EXPECT_EQ(lint::module_layer("obs"), 2);
  EXPECT_EQ(lint::module_layer("autopilot"), 3);
  EXPECT_EQ(lint::module_layer("core"), 3);
  EXPECT_EQ(lint::module_layer("serve"), 3);
  EXPECT_EQ(lint::module_layer("no_such_module"), -1);
}

TEST(LintRules, RuleCatalogIsStable) {
  auto names = lint::rule_names();
  std::set<std::string> expected = {"layering",   "include-cycle",
                                    "wallclock",  "rng",
                                    "using-namespace-header", "printf",
                                    "header-guard", "metrics-global",
                                    "serve-boundary", "determinism-taint",
                                    "lock-discipline", "lock-order",
                                    "unknown-suppression"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

}  // namespace

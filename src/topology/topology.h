// Data center network topology model (paper §2.1, Figure 1).
//
// Structure: a Region holds multiple DataCenters connected by an inter-DC
// WAN. Inside a DC, servers connect to a top-of-rack (ToR) switch forming a
// Pod; tens of Pods plus a tier of Leaf switches form a Podset; Podsets
// connect through a tier of Spine switches; Border routers attach the DC to
// the inter-DC network.
//
// The model is intentionally flat: entities live in indexed vectors and
// carry their containment coordinates, so lookups used on the simulator hot
// path are O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace pingmesh::topo {

enum class SwitchKind : std::uint8_t { kTor, kLeaf, kSpine, kBorder };

const char* switch_kind_name(SwitchKind kind);

struct Server {
  ServerId id;
  IpAddr ip;
  std::string name;
  DcId dc;
  PodsetId podset;
  PodId pod;
  SwitchId tor;
  int index_in_pod = 0;  // used by the level-2 pinglist pairing rule
};

struct Switch {
  SwitchId id;
  SwitchKind kind = SwitchKind::kTor;
  std::string name;
  DcId dc;
  PodsetId podset;  // invalid for Spine/Border
};

struct Pod {
  PodId id;
  DcId dc;
  PodsetId podset;
  SwitchId tor;
  std::vector<ServerId> servers;
};

struct Podset {
  PodsetId id;
  DcId dc;
  std::vector<PodId> pods;
  std::vector<SwitchId> leaves;
};

struct DataCenter {
  DcId id;
  std::string name;    // e.g. "DC1"
  std::string region;  // e.g. "US West"
  std::vector<PodsetId> podsets;
  std::vector<SwitchId> spines;
  std::vector<SwitchId> borders;
  std::vector<ServerId> servers;  // all servers, in pod order
};

/// Shape of one data center for the builder.
struct DcSpec {
  std::string name;
  std::string region;
  int podsets = 2;
  int pods_per_podset = 20;
  int servers_per_pod = 40;
  int leaves_per_podset = 4;
  int spines = 16;
  int borders = 2;
};

/// Immutable multi-DC topology. Build once via Topology::build().
class Topology {
 public:
  static Topology build(const std::vector<DcSpec>& specs);

  // -- entity access ------------------------------------------------------
  [[nodiscard]] const Server& server(ServerId id) const { return at(servers_, id.value, "server"); }
  [[nodiscard]] const Switch& sw(SwitchId id) const { return at(switches_, id.value, "switch"); }
  [[nodiscard]] const Pod& pod(PodId id) const { return at(pods_, id.value, "pod"); }
  [[nodiscard]] const Podset& podset(PodsetId id) const { return at(podsets_, id.value, "podset"); }
  [[nodiscard]] const DataCenter& dc(DcId id) const { return at(dcs_, id.value, "dc"); }

  [[nodiscard]] const std::vector<Server>& servers() const { return servers_; }
  [[nodiscard]] const std::vector<Switch>& switches() const { return switches_; }
  [[nodiscard]] const std::vector<Pod>& pods() const { return pods_; }
  [[nodiscard]] const std::vector<Podset>& podsets() const { return podsets_; }
  [[nodiscard]] const std::vector<DataCenter>& dcs() const { return dcs_; }

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }

  /// Lookup by IP; throws std::out_of_range for unknown addresses.
  [[nodiscard]] ServerId server_by_ip(IpAddr ip) const;
  /// Lookup by IP; nullopt for unknown addresses.
  [[nodiscard]] std::optional<ServerId> find_server_by_ip(IpAddr ip) const;

  // -- relationship helpers -----------------------------------------------
  [[nodiscard]] bool same_pod(ServerId a, ServerId b) const;
  [[nodiscard]] bool same_podset(ServerId a, ServerId b) const;
  [[nodiscard]] bool same_dc(ServerId a, ServerId b) const;

  /// Servers under one ToR (== pod membership).
  [[nodiscard]] const std::vector<ServerId>& servers_in_pod(PodId id) const {
    return pod(id).servers;
  }

  /// All switches of a given kind within a DC.
  [[nodiscard]] std::vector<SwitchId> switches_in_dc(DcId id, SwitchKind kind) const;

 private:
  template <class T>
  static const T& at(const std::vector<T>& v, std::uint32_t i, const char* what) {
    if (i >= v.size()) throw std::out_of_range(std::string("invalid ") + what + " id");
    return v[i];
  }

  std::vector<Server> servers_;
  std::vector<Switch> switches_;
  std::vector<Pod> pods_;
  std::vector<Podset> podsets_;
  std::vector<DataCenter> dcs_;
  std::unordered_map<IpAddr, ServerId> by_ip_;
};

/// Canonical small/medium/large shapes used by tests, examples, and benches.
DcSpec small_dc_spec(std::string name, std::string region);    // 2 podsets x 4 pods x 8 servers
DcSpec medium_dc_spec(std::string name, std::string region);   // 4 podsets x 10 pods x 20 servers
DcSpec large_dc_spec(std::string name, std::string region);    // 8 podsets x 20 pods x 40 servers

/// Assignment of servers to application services (for per-service SLA,
/// paper §4.3 "network SLA can be tracked ... per service").
class ServiceMap {
 public:
  /// Register a service over an explicit server set; returns its id.
  ServiceId add_service(std::string name, std::vector<ServerId> servers);

  [[nodiscard]] const std::string& name(ServiceId id) const;
  [[nodiscard]] const std::vector<ServerId>& servers(ServiceId id) const;
  [[nodiscard]] std::size_t service_count() const { return names_.size(); }

  /// Services a server belongs to (possibly several).
  [[nodiscard]] std::vector<ServiceId> services_of(ServerId server) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<ServerId>> members_;
  std::unordered_map<ServerId, std::vector<ServiceId>> by_server_;
};

}  // namespace pingmesh::topo

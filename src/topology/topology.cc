#include "topology/topology.h"

#include <cstdio>

namespace pingmesh::topo {

const char* switch_kind_name(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::kTor: return "ToR";
    case SwitchKind::kLeaf: return "Leaf";
    case SwitchKind::kSpine: return "Spine";
    case SwitchKind::kBorder: return "Border";
  }
  return "?";
}

namespace {

std::string make_name(const std::string& dc, const char* kind, int a, int b = -1) {
  char buf[96];
  if (b >= 0) {
    std::snprintf(buf, sizeof(buf), "%s-PS%d-%s%d", dc.c_str(), a, kind, b);
  } else {
    std::snprintf(buf, sizeof(buf), "%s-%s%d", dc.c_str(), kind, a);
  }
  return buf;
}

}  // namespace

Topology Topology::build(const std::vector<DcSpec>& specs) {
  if (specs.empty()) throw std::invalid_argument("at least one DC required");
  if (specs.size() > 200) throw std::invalid_argument("too many DCs (ip plan limit)");
  Topology t;
  for (std::size_t d = 0; d < specs.size(); ++d) {
    const DcSpec& spec = specs[d];
    if (spec.podsets < 1 || spec.pods_per_podset < 1 || spec.servers_per_pod < 1 ||
        spec.leaves_per_podset < 1 || spec.spines < 1 || spec.borders < 1) {
      throw std::invalid_argument("DcSpec dimensions must be >= 1");
    }
    const auto servers_in_dc = static_cast<std::int64_t>(spec.podsets) *
                               spec.pods_per_podset * spec.servers_per_pod;
    if (servers_in_dc > 65536) {
      throw std::invalid_argument("DC exceeds 65536 servers (ip plan limit)");
    }

    DcId dc_id{static_cast<std::uint32_t>(d)};
    DataCenter dc;
    dc.id = dc_id;
    dc.name = spec.name;
    dc.region = spec.region;

    // Spine tier.
    for (int s = 0; s < spec.spines; ++s) {
      SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
      t.switches_.push_back(Switch{id, SwitchKind::kSpine,
                                   make_name(spec.name, "SP", s), dc_id, PodsetId{}});
      dc.spines.push_back(id);
    }
    // Border routers.
    for (int b = 0; b < spec.borders; ++b) {
      SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
      t.switches_.push_back(Switch{id, SwitchKind::kBorder,
                                   make_name(spec.name, "BR", b), dc_id, PodsetId{}});
      dc.borders.push_back(id);
    }

    std::uint32_t server_index_in_dc = 0;
    for (int ps = 0; ps < spec.podsets; ++ps) {
      PodsetId podset_id{static_cast<std::uint32_t>(t.podsets_.size())};
      Podset podset;
      podset.id = podset_id;
      podset.dc = dc_id;

      for (int l = 0; l < spec.leaves_per_podset; ++l) {
        SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
        t.switches_.push_back(Switch{id, SwitchKind::kLeaf,
                                     make_name(spec.name, "LF", ps, l), dc_id, podset_id});
        podset.leaves.push_back(id);
      }

      for (int p = 0; p < spec.pods_per_podset; ++p) {
        PodId pod_id{static_cast<std::uint32_t>(t.pods_.size())};
        SwitchId tor_id{static_cast<std::uint32_t>(t.switches_.size())};
        t.switches_.push_back(Switch{tor_id, SwitchKind::kTor,
                                     make_name(spec.name, "T", ps, p), dc_id, podset_id});
        Pod pod;
        pod.id = pod_id;
        pod.dc = dc_id;
        pod.podset = podset_id;
        pod.tor = tor_id;

        for (int s = 0; s < spec.servers_per_pod; ++s) {
          ServerId sid{static_cast<std::uint32_t>(t.servers_.size())};
          // IP plan: 10.(dc).(hi).(lo) — up to 65536 servers per DC.
          IpAddr ip(static_cast<std::uint32_t>((10u << 24) |
                                               (static_cast<std::uint32_t>(d) << 16) |
                                               server_index_in_dc));
          char sname[96];
          std::snprintf(sname, sizeof(sname), "%s-PS%d-P%d-S%d", spec.name.c_str(), ps, p, s);
          t.servers_.push_back(Server{sid, ip, sname, dc_id, podset_id, pod_id, tor_id, s});
          t.by_ip_.emplace(ip, sid);
          pod.servers.push_back(sid);
          dc.servers.push_back(sid);
          ++server_index_in_dc;
        }
        podset.pods.push_back(pod_id);
        t.pods_.push_back(std::move(pod));
      }
      dc.podsets.push_back(podset_id);
      t.podsets_.push_back(std::move(podset));
    }
    t.dcs_.push_back(std::move(dc));
  }
  return t;
}

ServerId Topology::server_by_ip(IpAddr ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) throw std::out_of_range("unknown server ip " + ip.str());
  return it->second;
}

std::optional<ServerId> Topology::find_server_by_ip(IpAddr ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  return it->second;
}

bool Topology::same_pod(ServerId a, ServerId b) const {
  return server(a).pod == server(b).pod;
}

bool Topology::same_podset(ServerId a, ServerId b) const {
  return server(a).podset == server(b).podset;
}

bool Topology::same_dc(ServerId a, ServerId b) const {
  return server(a).dc == server(b).dc;
}

std::vector<SwitchId> Topology::switches_in_dc(DcId id, SwitchKind kind) const {
  std::vector<SwitchId> out;
  const DataCenter& d = dc(id);
  switch (kind) {
    case SwitchKind::kSpine: return d.spines;
    case SwitchKind::kBorder: return d.borders;
    case SwitchKind::kLeaf:
      for (PodsetId ps : d.podsets) {
        const auto& leaves = podset(ps).leaves;
        out.insert(out.end(), leaves.begin(), leaves.end());
      }
      return out;
    case SwitchKind::kTor:
      for (PodsetId ps : d.podsets) {
        for (PodId p : podset(ps).pods) out.push_back(pod(p).tor);
      }
      return out;
  }
  return out;
}

DcSpec small_dc_spec(std::string name, std::string region) {
  DcSpec s;
  s.name = std::move(name);
  s.region = std::move(region);
  s.podsets = 2;
  s.pods_per_podset = 4;
  s.servers_per_pod = 8;
  s.leaves_per_podset = 2;
  s.spines = 4;
  s.borders = 2;
  return s;
}

DcSpec medium_dc_spec(std::string name, std::string region) {
  DcSpec s;
  s.name = std::move(name);
  s.region = std::move(region);
  s.podsets = 4;
  s.pods_per_podset = 10;
  s.servers_per_pod = 20;
  s.leaves_per_podset = 4;
  s.spines = 8;
  s.borders = 2;
  return s;
}

DcSpec large_dc_spec(std::string name, std::string region) {
  DcSpec s;
  s.name = std::move(name);
  s.region = std::move(region);
  s.podsets = 8;
  s.pods_per_podset = 20;
  s.servers_per_pod = 40;
  s.leaves_per_podset = 8;
  s.spines = 16;
  s.borders = 4;
  return s;
}

ServiceId ServiceMap::add_service(std::string name, std::vector<ServerId> servers) {
  ServiceId id{static_cast<std::uint32_t>(names_.size())};
  names_.push_back(std::move(name));
  for (ServerId s : servers) by_server_[s].push_back(id);
  members_.push_back(std::move(servers));
  return id;
}

const std::string& ServiceMap::name(ServiceId id) const {
  if (id.value >= names_.size()) throw std::out_of_range("invalid service id");
  return names_[id.value];
}

const std::vector<ServerId>& ServiceMap::servers(ServiceId id) const {
  if (id.value >= members_.size()) throw std::out_of_range("invalid service id");
  return members_[id.value];
}

std::vector<ServiceId> ServiceMap::services_of(ServerId server) const {
  auto it = by_server_.find(server);
  return it != by_server_.end() ? it->second : std::vector<ServiceId>{};
}

}  // namespace pingmesh::topo

#include "obs/trace.h"

#include <algorithm>
#include <map>

namespace pingmesh::obs {

void TraceSink::record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[recorded_ % capacity_] = std::move(span);
  }
  ++recorded_;
}

std::vector<TraceSpan> TraceSink::spans_for(std::uint64_t trace) const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = ring_.size();
  std::size_t oldest = recorded_ > capacity_ ? recorded_ % capacity_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceSpan& s = ring_[(oldest + i) % n];
    if (s.trace == trace) out.push_back(s);
  }
  return out;
}

std::vector<TraceSpan> TraceSink::snapshot() const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = ring_.size();
  std::size_t oldest = recorded_ > capacity_ ? recorded_ % capacity_ : 0;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(oldest + i) % n]);
  return out;
}

std::vector<std::uint64_t> TraceSink::trace_ids() const {
  std::map<std::uint64_t, std::size_t> counts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceSpan& s : ring_) {
      if (s.trace != 0) ++counts[s.trace];
    }
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(counts.size());
  for (const auto& [id, _] : counts) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), [&](std::uint64_t a, std::uint64_t b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  return ids;
}

std::uint64_t TraceSink::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t TraceSink::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

}  // namespace pingmesh::obs

// Data-path tracing: follow a sampled LatencyRecord end-to-end.
//
// A LatencyRecord has no room for a trace id (the CSV schema is pinned by
// the Cosmos extents), so a record's identity is *derived*: trace_key()
// mixes the fields that uniquely identify one probe — (timestamp, src ip,
// dst ip, src port) — into a 64-bit key. Every stage that touches the
// record (agent buffering, upload attempts, Cosmos extent append, the
// scan-cache path of the SCOPE jobs, streaming ingest) recomputes the key
// from the record it is holding and, if the key is sampled, emits a span.
// No context threading, no schema change, and the sampling decision is a
// pure function of the record — deterministic across runs and worker
// counts, never an RNG draw.
//
// Spans land in a fixed-capacity ring (TraceSink): tracing is bounded
// memory by construction, mirroring the agent's own §3.4.2 discipline.
// Infra-level spans with no record identity (SCOPE job runs, alert
// evaluations) use trace id 0.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/rng.h"
#include "common/types.h"

namespace pingmesh::obs {

struct TraceConfig {
  bool enabled = false;
  /// Sample 1-in-N record keys (1 = every record). The decision is
  /// key % sample_every == 0 on the mixed key, so it is stable per record.
  std::uint64_t sample_every = 64;
  /// Span ring capacity; the oldest spans are overwritten when full.
  std::size_t ring_capacity = 8192;
};

struct TraceSpan {
  std::uint64_t trace = 0;  ///< record key; 0 = infra span (no record identity)
  std::string stage;        ///< e.g. "agent.probe", "cosmos.append"
  SimTime start = 0;
  SimTime end = 0;
  std::string note;  ///< k=v details ("rtt=253000;success=1")
};

/// Identity of one probe's record, recomputable at any pipeline stage.
constexpr std::uint64_t trace_key(SimTime timestamp, std::uint32_t src_ip,
                                  std::uint32_t dst_ip, std::uint16_t src_port) {
  std::uint64_t ips =
      (static_cast<std::uint64_t>(src_ip) << 32) | static_cast<std::uint64_t>(dst_ip);
  std::uint64_t key =
      mix_key(static_cast<std::uint64_t>(timestamp), ips, src_port);
  return key == 0 ? 1 : key;  // 0 is reserved for infra spans
}

/// Fixed-capacity span ring. Thread-safe: parallel tick shards emit spans
/// concurrently; the mutex is uncontended off the sampled path.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 8192)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(TraceSpan span);

  /// Every retained span of one trace, in emission order.
  [[nodiscard]] std::vector<TraceSpan> spans_for(std::uint64_t trace) const;
  /// Every retained span, oldest first.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;
  /// Distinct non-infra trace ids among retained spans, ordered by
  /// descending span count (most complete journey first), ties by id.
  [[nodiscard]] std::vector<std::uint64_t> trace_ids() const;

  [[nodiscard]] std::uint64_t spans_recorded() const;
  [[nodiscard]] std::uint64_t spans_dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  // insertion position = recorded_ % capacity_
  std::vector<TraceSpan> ring_ PM_GUARDED_BY(mu_);
  std::uint64_t recorded_ PM_GUARDED_BY(mu_) = 0;
};

/// Hands components the sampling decision and the sink. Components hold a
/// `const Tracer*` (null or disabled = zero work beyond one branch).
class Tracer {
 public:
  Tracer(TraceConfig cfg, TraceSink& sink) : cfg_(cfg), sink_(&sink) {}

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }

  /// Should this record key be traced?
  [[nodiscard]] bool sampled(std::uint64_t key) const {
    if (!cfg_.enabled) return false;
    if (cfg_.sample_every <= 1) return true;
    return key % cfg_.sample_every == 0;
  }

  void span(std::uint64_t trace, std::string_view stage, SimTime start, SimTime end,
            std::string note = {}) const {
    if (!cfg_.enabled) return;
    sink_->record(TraceSpan{trace, std::string(stage), start, end, std::move(note)});
  }

  [[nodiscard]] const TraceConfig& config() const { return cfg_; }
  [[nodiscard]] TraceSink& sink() const { return *sink_; }

 private:
  TraceConfig cfg_;
  TraceSink* sink_;
};

}  // namespace pingmesh::obs

// MetricsRegistry — the fleet-wide metrics substrate (paper §3.5: "All
// Pingmesh services are monitored ... latency data generation, data
// analysis pipeline, alerting accuracy" — a measurement system must itself
// be measurable to be trusted).
//
// Three instrument kinds, all named `subsystem.metric` with optional
// `{label=value,...}` labels:
//
//  - Counter: monotonically increasing u64. Lock-free (one relaxed atomic
//    add), safe to bump from parallel tick shards.
//  - Gauge: a settable double (atomic store), or a callback (`gauge_fn`)
//    evaluated lazily at exposition time — the polling form, used to mirror
//    existing component accessors (cache hit counts, pool stats) without
//    coupling those components to this module.
//  - Histogram: a LatencySketch behind a tiny spinlock. Bucket increments
//    are commutative, so concurrent observers from any thread interleaving
//    produce identical counts — exposition quantiles of a deterministic
//    workload are deterministic at any worker count.
//
// Registration is idempotent: counter(name, labels) returns the same
// instrument for the same key, so N agents sharing one registry share one
// fleet-wide counter. Returned pointers are stable for the registry's
// lifetime (instruments are heap-allocated, never rehashed away).
//
// Ownership: there is NO process-global registry, by design and by lint
// rule (`metrics-global`): every instrumented component takes a
// MetricsRegistry& at enable_observability() time. The simulation owns one
// per run, so two simulations in one test never share state.
//
// expose() writes a Prometheus-style text exposition, sorted by
// (name, labels) for byte-stable golden tests. Histograms render as
// summaries (quantile lines + _count); the _sum line is deliberately
// omitted — float accumulation order varies across worker counts, and the
// golden snapshot test pins the exposition bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "streaming/sketch.h"

namespace pingmesh::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// LatencySketch behind a spinlock: observe() is a few atomic ops plus a
/// bucket increment, cheap enough for the fleet tick path.
class Histogram {
 public:
  explicit Histogram(streaming::LatencySketch::Config cfg) : sketch_(cfg) {}

  void observe(std::int64_t value) {
    lock();
    sketch_.record(value);
    unlock();
  }

  /// Copy of the sketch for quantile queries (exposition, tests).
  [[nodiscard]] streaming::LatencySketch snapshot() const {
    lock();
    streaming::LatencySketch copy = sketch_;
    unlock();
    return copy;
  }

 private:
  void lock() const {
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const { busy_.clear(std::memory_order_release); }

  mutable std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  streaming::LatencySketch sketch_;
};

class MetricsRegistry {
 public:
  /// Default sketch geometry for histograms: 1% relative error over
  /// 1 us .. 60 s — covers clean RTTs through the SYN-retransmit band.
  static streaming::LatencySketch::Config default_histogram_config() {
    return streaming::LatencySketch::Config{};
  }

  /// Get-or-create. `name` must be `subsystem.metric` ([a-z0-9_] segments,
  /// '.'-separated); `labels` must be empty or `k=v[,k=v...]`. Returns a
  /// stable reference shared by every caller using the same (name, labels).
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels,
                       streaming::LatencySketch::Config cfg);

  /// Register (or replace) a callback gauge, evaluated at expose() time.
  /// The callback must stay valid for the registry's lifetime.
  void gauge_fn(std::string_view name, std::string_view labels,
                std::function<double()> fn);

  /// Prometheus-style text exposition of every instrument, sorted by
  /// (name, labels).
  [[nodiscard]] std::string expose() const;
  /// Same, restricted to metrics whose name starts with any given prefix —
  /// the golden-snapshot tests use this to pin only deterministic metrics.
  [[nodiscard]] std::string expose(const std::vector<std::string>& name_prefixes) const;

  [[nodiscard]] std::size_t instrument_count() const;

 private:
  struct Key {
    std::string name;
    std::string labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  static void validate_name(std::string_view name);
  static void validate_labels(std::string_view labels);

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ PM_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ PM_GUARDED_BY(mu_);
  std::map<Key, std::function<double()>> gauge_fns_ PM_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ PM_GUARDED_BY(mu_);
};

}  // namespace pingmesh::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pingmesh::obs {

namespace {

bool valid_segment_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

/// Render a double the way the golden tests can pin: integral values (the
/// overwhelming case — counts mirrored through gauges) print as integers,
/// the rest with %.6g.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string render_line(const std::string& name, const std::string& labels,
                        const std::string& value) {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
  return out;
}

/// Merge a histogram's labels with the quantile label.
std::string with_quantile(const std::string& labels, const char* q) {
  std::string merged = labels;
  if (!merged.empty()) merged += ',';
  merged += "quantile=";
  merged += q;
  return merged;
}

bool matches_any_prefix(const std::string& name,
                        const std::vector<std::string>* prefixes) {
  if (prefixes == nullptr) return true;
  for (const std::string& p : *prefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

void MetricsRegistry::validate_name(std::string_view name) {
  bool seen_dot = false;
  bool segment_open = false;
  for (char c : name) {
    if (c == '.') {
      PINGMESH_CHECK_MSG(segment_open, "metric name has an empty segment");
      seen_dot = true;
      segment_open = false;
    } else {
      PINGMESH_CHECK_MSG(valid_segment_char(c),
                         "metric name must be [a-z0-9_] segments joined by '.'");
      segment_open = true;
    }
  }
  PINGMESH_CHECK_MSG(seen_dot && segment_open,
                     "metric name must be 'subsystem.metric' (at least two segments)");
}

void MetricsRegistry::validate_labels(std::string_view labels) {
  if (labels.empty()) return;
  // k=v[,k=v...] with [a-z0-9_] keys; values may additionally use [-.:A-Z].
  std::size_t pos = 0;
  while (pos <= labels.size()) {
    std::size_t comma = labels.find(',', pos);
    std::string_view pair = labels.substr(
        pos, comma == std::string_view::npos ? labels.size() - pos : comma - pos);
    std::size_t eq = pair.find('=');
    PINGMESH_CHECK_MSG(eq != std::string_view::npos && eq > 0 && eq + 1 < pair.size(),
                       "metric labels must be k=v[,k=v...]");
    for (char c : pair.substr(0, eq)) {
      PINGMESH_CHECK_MSG(valid_segment_char(c), "metric label keys must be [a-z0-9_]");
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view labels) {
  validate_name(name);
  validate_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{std::string(name), std::string(labels)}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  validate_name(name);
  validate_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key{std::string(name), std::string(labels)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view labels) {
  return histogram(name, labels, default_histogram_config());
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view labels,
                                      streaming::LatencySketch::Config cfg) {
  validate_name(name);
  validate_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key{std::string(name), std::string(labels)}];
  if (!slot) slot = std::make_unique<Histogram>(cfg);
  return *slot;
}

void MetricsRegistry::gauge_fn(std::string_view name, std::string_view labels,
                               std::function<double()> fn) {
  validate_name(name);
  validate_labels(labels);
  PINGMESH_CHECK_MSG(fn != nullptr, "gauge_fn requires a callback");
  std::lock_guard<std::mutex> lock(mu_);
  gauge_fns_[Key{std::string(name), std::string(labels)}] = std::move(fn);
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + gauge_fns_.size() + histograms_.size();
}

std::string MetricsRegistry::expose() const { return expose({}); }

std::string MetricsRegistry::expose(const std::vector<std::string>& name_prefixes) const {
  const std::vector<std::string>* filter =
      name_prefixes.empty() ? nullptr : &name_prefixes;

  struct Entry {
    const Key* key;
    const char* type;
    std::string body;
  };
  std::vector<Entry> entries;
  // Callback gauges are evaluated OUTSIDE mu_: a callback registered by
  // another subsystem may take that subsystem's lock, and that subsystem may
  // call registry methods under the same lock — evaluating under mu_ would
  // close a lock-order cycle. Key pointers stay valid across the unlock
  // (std::map nodes are stable and the registry never erases).
  std::vector<std::pair<const Key*, std::function<double()>>> fns;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, c] : counters_) {
      if (!matches_any_prefix(key.name, filter)) continue;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(c->value()));
      entries.push_back({&key, "counter", render_line(key.name, key.labels, buf)});
    }
    for (const auto& [key, g] : gauges_) {
      if (!matches_any_prefix(key.name, filter)) continue;
      entries.push_back(
          {&key, "gauge", render_line(key.name, key.labels, format_value(g->value()))});
    }
    for (const auto& [key, fn] : gauge_fns_) {
      if (!matches_any_prefix(key.name, filter)) continue;
      fns.emplace_back(&key, fn);
    }
    for (const auto& [key, h] : histograms_) {
      if (!matches_any_prefix(key.name, filter)) continue;
      streaming::LatencySketch sk = h->snapshot();
      std::string body;
      body += render_line(key.name, with_quantile(key.labels, "0.5"),
                          format_value(static_cast<double>(sk.p50())));
      body += render_line(key.name, with_quantile(key.labels, "0.99"),
                          format_value(static_cast<double>(sk.p99())));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(sk.count()));
      body += render_line(key.name + "_count", key.labels, buf);
      entries.push_back({&key, "summary", std::move(body)});
    }
  }

  for (const auto& [key, fn] : fns) {
    entries.push_back(
        {key, "gauge", render_line(key->name, key->labels, format_value(fn()))});
  }

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return *a.key < *b.key;
  });

  std::string out;
  const std::string* last_name = nullptr;
  for (const Entry& e : entries) {
    if (last_name == nullptr || *last_name != e.key->name) {
      out += "# TYPE ";
      out += e.key->name;
      out += ' ';
      out += e.type;
      out += '\n';
      last_name = &e.key->name;
    }
    out += e.body;
  }
  return out;
}

}  // namespace pingmesh::obs

// The per-run observability bundle: one MetricsRegistry + one TraceSink +
// its Tracer, owned together. PingmeshSimulation holds one of these behind
// SimulationConfig.observability; real-socket drivers can own one the same
// way. There is deliberately no global instance (lint rule metrics-global).
#pragma once

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pingmesh::obs {

struct ObservabilityConfig {
  bool enabled = false;  ///< master switch: off = no registry, zero overhead
  TraceConfig trace;     ///< span tracing (independent sub-switch)
};

class Observability {
 public:
  explicit Observability(ObservabilityConfig cfg)
      : cfg_(cfg), sink_(cfg.trace.ring_capacity), tracer_(cfg.trace, sink_) {}

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceSink& sink() { return sink_; }
  [[nodiscard]] const TraceSink& sink() const { return sink_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] const ObservabilityConfig& config() const { return cfg_; }

 private:
  ObservabilityConfig cfg_;
  MetricsRegistry metrics_;
  TraceSink sink_;
  Tracer tracer_;
};

}  // namespace pingmesh::obs

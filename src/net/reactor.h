// Single-threaded epoll reactor — the Linux equivalent of the IO Completion
// Port model the paper's agent library uses on Windows (§3.4.2): efficient
// asynchronous network IO able to drive thousands of concurrent probe
// connections from one light-weight thread.
//
// Semantics:
//  - add()/modify()/remove() register level-triggered interest per fd;
//  - timers live in a min-heap; epoll_wait timeout is derived from the
//    nearest deadline;
//  - callbacks may add/remove registrations (including their own). A
//    callback whose fd was removed earlier in the same dispatch batch is
//    skipped. Handlers must tolerate rare spurious wakeups (fd number reuse
//    within one batch).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/fd.h"

namespace pingmesh::net {

class Reactor {
 public:
  using IoCallback = std::function<void(std::uint32_t epoll_events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Register interest; `events` is an EPOLL* mask (EPOLLIN, EPOLLOUT, ...).
  void add(int fd, std::uint32_t events, IoCallback cb);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  [[nodiscard]] bool watching(int fd) const { return callbacks_.contains(fd); }

  TimerId add_timer(Clock::time_point deadline, TimerCallback cb);
  TimerId add_timer_after(std::chrono::nanoseconds delay, TimerCallback cb) {
    return add_timer(Clock::now() + delay, std::move(cb));
  }
  void cancel_timer(TimerId id);

  /// Dispatch one batch of ready events / due timers. Blocks up to
  /// `max_wait` (clamped by the nearest timer). Returns number of events +
  /// timers dispatched.
  int run_once(std::chrono::milliseconds max_wait = std::chrono::milliseconds(100));

  /// Run until stop() is called.
  void run();
  void stop() { stopped_ = true; }

  /// Run until `pred()` is true or `deadline` passes; returns pred().
  bool run_until(const std::function<bool()>& pred, Clock::time_point deadline);

  [[nodiscard]] std::size_t watched_fds() const { return callbacks_.size(); }
  [[nodiscard]] std::size_t pending_timers() const { return timer_count_; }

 private:
  struct Timer {
    Clock::time_point deadline;
    TimerId id;
    bool operator>(const Timer& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return id > o.id;
    }
  };

  int fire_due_timers();

  Fd epoll_;
  std::unordered_map<int, IoCallback> callbacks_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timer_heap_;
  std::unordered_map<TimerId, TimerCallback> timer_cbs_;  // absent => cancelled
  std::size_t timer_count_ = 0;
  TimerId next_timer_ = 1;
  bool stopped_ = false;
};

}  // namespace pingmesh::net

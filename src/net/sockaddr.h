// Small value wrapper around sockaddr_in (IPv4 only — the paper's data
// centers are IPv4; nothing here precludes adding v6 later).
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/types.h"

namespace pingmesh::net {

struct SockAddr {
  sockaddr_in sa{};

  SockAddr() {
    sa.sin_family = AF_INET;
  }

  static SockAddr ipv4(const std::string& dotted, std::uint16_t port) {
    SockAddr a;
    a.sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, dotted.c_str(), &a.sa.sin_addr) != 1) {
      throw std::invalid_argument("bad IPv4 address: " + dotted);
    }
    return a;
  }

  static SockAddr ipv4(IpAddr ip, std::uint16_t port) {
    SockAddr a;
    a.sa.sin_port = htons(port);
    a.sa.sin_addr.s_addr = htonl(ip.v);
    return a;
  }

  static SockAddr loopback(std::uint16_t port) { return ipv4("127.0.0.1", port); }

  static SockAddr any(std::uint16_t port) {
    SockAddr a;
    a.sa.sin_port = htons(port);
    a.sa.sin_addr.s_addr = htonl(INADDR_ANY);
    return a;
  }

  [[nodiscard]] std::uint16_t port() const { return ntohs(sa.sin_port); }
  [[nodiscard]] IpAddr ip() const { return IpAddr(ntohl(sa.sin_addr.s_addr)); }

  [[nodiscard]] const sockaddr* raw() const {
    return reinterpret_cast<const sockaddr*>(&sa);
  }
  [[nodiscard]] sockaddr* raw() { return reinterpret_cast<sockaddr*>(&sa); }
  [[nodiscard]] static socklen_t len() { return sizeof(sockaddr_in); }

  [[nodiscard]] std::string str() const {
    char buf[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf));
    return std::string(buf) + ":" + std::to_string(port());
  }
};

}  // namespace pingmesh::net

// Asynchronous TCP probing: the measurement primitive of the Pingmesh Agent
// (paper §3.4). Every probe is a brand-new connection from a fresh ephemeral
// source port — "to explore the multi-path nature of the network as much as
// possible, and ... reduce the number of concurrent TCP connections".
//
// Two probe shapes:
//  - connect-only: RTT of SYN / SYN-ACK (the connect() completion time);
//  - payload echo: after connect, send a length-prefixed payload; the
//    responder echoes it back; the echo round-trip is measured separately.
//
// Wire format of the echo protocol: 4-byte big-endian payload length, then
// that many bytes. The server echoes the same frame back.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fd.h"
#include "net/reactor.h"
#include "net/sockaddr.h"

namespace pingmesh::net {

/// Responder side: accepts connections and echoes length-prefixed frames.
/// Plays the "server part" of the agent (§3.4.1: "the Pingmesh Agent needs
/// to act as both client and server").
class TcpProbeServer {
 public:
  /// Binds and listens immediately; port 0 selects an ephemeral port.
  TcpProbeServer(Reactor& reactor, const SockAddr& bind_addr, int backlog = 128);
  ~TcpProbeServer();
  TcpProbeServer(const TcpProbeServer&) = delete;
  TcpProbeServer& operator=(const TcpProbeServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t connections_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t frames_echoed() const { return echoed_; }
  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }

  /// Maximum accepted frame size; larger frames close the connection
  /// (agent safety: probe payload length is hard-limited, §3.4.2).
  static constexpr std::uint32_t kMaxFrame = 64 * 1024;

 private:
  struct Conn {
    Fd fd;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
  };

  void on_accept(std::uint32_t events);
  void on_conn(int fd, std::uint32_t events);
  void close_conn(int fd);

  Reactor& reactor_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t echoed_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
};

struct TcpProbeResult {
  bool connected = false;
  std::int64_t connect_ns = 0;  ///< SYN -> established
  bool payload_ok = false;
  std::int64_t payload_ns = 0;  ///< payload sent -> echo fully received
  bool timed_out = false;
  int error_errno = 0;          ///< errno when the probe failed locally
  std::uint16_t src_port = 0;   ///< ephemeral port actually used
};

/// Client side: fires one-shot probes; many may be in flight concurrently.
class TcpProber {
 public:
  using Callback = std::function<void(const TcpProbeResult&)>;

  explicit TcpProber(Reactor& reactor) : reactor_(reactor) {}
  ~TcpProber();
  TcpProber(const TcpProber&) = delete;
  TcpProber& operator=(const TcpProber&) = delete;

  /// Launch a probe to `dst`. `payload_bytes` 0 = connect-only. The
  /// callback is invoked exactly once (success, error, or timeout).
  void probe(const SockAddr& dst, int payload_bytes, std::chrono::milliseconds timeout,
             Callback cb);

  [[nodiscard]] std::size_t inflight() const { return probes_.size(); }
  [[nodiscard]] std::uint64_t launched() const { return launched_; }

 private:
  enum class State { kConnecting, kSending, kReadingEcho };

  struct Probe {
    Fd fd;
    State state = State::kConnecting;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point payload_start;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::vector<std::uint8_t> in;
    std::size_t expect_in = 0;
    Reactor::TimerId timer = 0;
    Callback cb;
    TcpProbeResult result;
  };

  void on_event(int fd, std::uint32_t events);
  void finish(int fd, Probe& p);

  Reactor& reactor_;
  std::unordered_map<int, std::unique_ptr<Probe>> probes_;
  std::uint64_t launched_ = 0;
};

}  // namespace pingmesh::net

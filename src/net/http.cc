#include "net/http.h"

#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <system_error>

namespace pingmesh::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

Fd make_nonblocking_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Fd(fd);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse "Name: value" header lines from `head` (excluding the first line).
void parse_headers(std::string_view head,
                   std::map<std::string, std::string, std::less<>>& out) {
  std::size_t pos = 0;
  while (pos < head.size()) {
    auto eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 1;
    auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    out[to_lower(trim(line.substr(0, colon)))] = std::string(trim(line.substr(colon + 1)));
  }
}

/// Body length promised by the headers. A missing Content-Length means an
/// empty body (0); a header that is present but not a valid size_t — trailing
/// junk, negative, or numeric overflow — makes the whole message malformed
/// (nullopt) rather than being silently treated as 0.
std::optional<std::size_t> content_length(
    const std::map<std::string, std::string, std::less<>>& headers) {
  auto it = headers.find("content-length");
  if (it == headers.end()) return 0;
  std::size_t v = 0;
  auto [p, ec] = std::from_chars(it->second.data(), it->second.data() + it->second.size(), v);
  if (ec != std::errc{} || p != it->second.data() + it->second.size()) return std::nullopt;
  return v;
}

/// If a full message (head + Content-Length body) is present in `data`,
/// returns the byte count it occupies; otherwise 0. `body_omitted(msg)` is
/// consulted after the head parses: when true (HEAD exchanges, 304/204
/// statuses) the message completes at the end of the header block and any
/// Content-Length only describes the entity that was *not* sent.
template <class Msg, class HeadParser, class BodyOmitted>
std::size_t try_parse_message(std::string_view data, HeadParser head_parser,
                              BodyOmitted body_omitted, Msg& out) {
  auto head_end = data.find("\r\n\r\n");
  std::size_t sep = 4;
  if (head_end == std::string_view::npos) {
    head_end = data.find("\n\n");
    sep = 2;
    if (head_end == std::string_view::npos) return 0;
  }
  std::string_view head = data.substr(0, head_end);
  auto first_eol = head.find('\n');
  std::string_view first_line = trim(head.substr(0, first_eol));
  std::string_view rest = first_eol == std::string_view::npos ? std::string_view{}
                                                              : head.substr(first_eol + 1);
  Msg msg;
  if (!head_parser(first_line, msg)) return 0;
  parse_headers(rest, msg.headers);
  std::optional<std::size_t> body_len = content_length(msg.headers);
  if (!body_len.has_value()) return 0;
  if (body_omitted(msg)) *body_len = 0;
  std::size_t total = head_end + sep + *body_len;
  if (data.size() < total) return 0;
  msg.body = std::string(data.substr(head_end + sep, *body_len));
  out = std::move(msg);
  return total;
}

template <class Msg>
bool never_omits_body(const Msg&) {
  return false;
}

bool parse_request_line(std::string_view line, HttpRequest& req) {
  auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  auto sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  req.method = std::string(line.substr(0, sp1));
  req.path = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return line.substr(sp2 + 1).starts_with("HTTP/");
}

bool parse_status_line(std::string_view line, HttpResponse& resp) {
  if (!line.starts_with("HTTP/")) return false;
  auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  auto sp2 = line.find(' ', sp1 + 1);
  std::string_view code = line.substr(sp1 + 1, sp2 == std::string_view::npos
                                                   ? std::string_view::npos
                                                   : sp2 - sp1 - 1);
  int status = 0;
  auto [p, ec] = std::from_chars(code.data(), code.data() + code.size(), status);
  (void)p;
  if (ec != std::errc{}) return false;
  resp.status = status;
  resp.reason = sp2 == std::string_view::npos ? "" : std::string(line.substr(sp2 + 1));
  return true;
}

}  // namespace

HttpResponse HttpResponse::ok(std::string body, std::string content_type) {
  HttpResponse r;
  r.body = std::move(body);
  r.headers["content-type"] = std::move(content_type);
  return r;
}

HttpResponse HttpResponse::not_found(std::string message) {
  HttpResponse r;
  r.status = 404;
  r.reason = "Not Found";
  r.body = std::move(message);
  return r;
}

HttpResponse HttpResponse::error(int status, std::string reason, std::string message) {
  HttpResponse r;
  r.status = status;
  r.reason = std::move(reason);
  r.body = std::move(message);
  return r;
}

HttpResponse HttpResponse::not_modified(std::string etag) {
  HttpResponse r;
  r.status = 304;
  r.reason = "Not Modified";
  r.headers["etag"] = std::move(etag);
  return r;
}

bool etag_match(std::string_view header, std::string_view etag) {
  // RFC 9110 §8.8.3 / §13.1.2: If-None-Match uses the *weak* comparison
  // (ignore W/ on either side, compare opaque parts byte-wise) and the
  // list is parsed quote-aware — a comma is a list separator only OUTSIDE
  // a quoted entity-tag, since etagc allows ',' inside the quotes. The
  // naive split-on-comma this replaces truncated such tags and then
  // matched the fragments against the wrong resource.
  auto opaque = [](std::string_view tag) {
    if (tag.starts_with("W/")) tag.remove_prefix(2);
    return tag;
  };
  const std::string_view target = opaque(trim(etag));
  std::size_t pos = 0;
  while (pos < header.size()) {
    // Skip OWS and empty list members.
    while (pos < header.size() &&
           (header[pos] == ' ' || header[pos] == '\t' || header[pos] == ',')) {
      ++pos;
    }
    if (pos >= header.size()) break;
    std::size_t start = pos;
    if (header[pos] == '*' ) {
      // `*` matches any current representation (only valid alone, but a
      // lenient reader honors it wherever it appears).
      return true;
    }
    if (header.compare(pos, 2, "W/") == 0) pos += 2;
    if (pos < header.size() && header[pos] == '"') {
      // Quoted entity-tag: consume through the closing quote; commas in
      // the opaque part belong to the tag, not the list.
      std::size_t close = header.find('"', pos + 1);
      if (close == std::string_view::npos) {
        pos = header.size();  // unterminated: take the rest as one tag
      } else {
        pos = close + 1;
      }
    } else {
      // Legacy unquoted token (seen from lax clients): up to next comma.
      std::size_t comma = header.find(',', pos);
      pos = comma == std::string_view::npos ? header.size() : comma;
    }
    std::string_view one = trim(header.substr(start, pos - start));
    if (!one.empty() && opaque(one) == target) return true;
  }
  return false;
}

std::string serialize(const HttpResponse& resp, bool head_request) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " + resp.reason + "\r\n";
  for (const auto& [k, v] : resp.headers) {
    if (k == "content-length" || k == "connection") continue;
    out += k + ": " + v + "\r\n";
  }
  bool omit_body = head_request || resp.body_forbidden();
  // HEAD keeps the entity's Content-Length (the client learns the size
  // without the bytes); body-forbidden statuses always advertise 0.
  std::size_t advertised = resp.body_forbidden() ? 0 : resp.body.size();
  out += "content-length: " + std::to_string(advertised) + "\r\n";
  out += "connection: close\r\n\r\n";
  if (!omit_body) out += resp.body;
  return out;
}

std::string serialize(const HttpRequest& req, const std::string& host) {
  std::string out = req.method + " " + req.path + " HTTP/1.1\r\n";
  out += "host: " + host + "\r\n";
  for (const auto& [k, v] : req.headers) {
    if (k == "content-length" || k == "host" || k == "connection") continue;
    out += k + ": " + v + "\r\n";
  }
  if (!req.body.empty()) out += "content-length: " + std::to_string(req.body.size()) + "\r\n";
  out += "connection: close\r\n\r\n";
  out += req.body;
  return out;
}

std::optional<HttpRequest> parse_request(std::string_view data) {
  HttpRequest req;
  if (try_parse_message(data, parse_request_line, never_omits_body<HttpRequest>, req) == 0) {
    return std::nullopt;
  }
  return req;
}

std::optional<HttpResponse> parse_response(std::string_view data, bool head_request) {
  HttpResponse resp;
  auto omitted = [head_request](const HttpResponse& r) {
    return head_request || r.body_forbidden();
  };
  if (try_parse_message(data, parse_status_line, omitted, resp) == 0) return std::nullopt;
  return resp;
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(Reactor& reactor, const SockAddr& bind_addr) : reactor_(reactor) {
  listener_ = make_nonblocking_socket();
  int one = 1;
  ::setsockopt(listener_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listener_.get(), bind_addr.raw(), SockAddr::len()) != 0) throw_errno("bind");
  if (::listen(listener_.get(), 128) != 0) throw_errno("listen");
  SockAddr actual;
  socklen_t alen = SockAddr::len();
  if (::getsockname(listener_.get(), actual.raw(), &alen) != 0) throw_errno("getsockname");
  port_ = actual.port();
  reactor_.add(listener_.get(), EPOLLIN, [this](std::uint32_t ev) { on_accept(ev); });
}

HttpServer::~HttpServer() {
  for (auto& [fd, conn] : conns_) reactor_.remove(fd);
  conns_.clear();
  if (listener_.valid()) reactor_.remove(listener_.get());
}

void HttpServer::route(std::string prefix, Handler handler) {
  routes_.emplace_back(std::move(prefix), std::move(handler));
  std::stable_sort(routes_.begin(), routes_.end(), [](const auto& a, const auto& b) {
    return a.first.size() > b.first.size();
  });
}

const HttpServer::Handler* HttpServer::match(const std::string& path) const {
  for (const auto& [prefix, handler] : routes_) {
    if (path.starts_with(prefix)) return &handler;
  }
  return nullptr;
}

void HttpServer::on_accept(std::uint32_t /*events*/) {
  for (;;) {
    int cfd = ::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(cfd);
    reactor_.add(cfd, EPOLLIN, [this, cfd](std::uint32_t ev) { on_conn(cfd, ev); });
    conns_.emplace(cfd, std::move(conn));
  }
}

void HttpServer::close_conn(int fd) {
  reactor_.remove(fd);
  conns_.erase(fd);
}

void HttpServer::try_dispatch(int fd, Conn& c) {
  HttpRequest req;
  std::size_t consumed = try_parse_message(std::string_view(c.in), parse_request_line,
                                           never_omits_body<HttpRequest>, req);
  if (consumed == 0) {
    if (c.in.size() > kMaxHead + kMaxBody) close_conn(fd);
    return;
  }
  c.in.erase(0, consumed);
  // HEAD routes exactly like GET; the serializer strips the body while
  // keeping the entity's Content-Length (RFC 7231 §4.3.2).
  const Handler* handler = match(req.path);
  HttpResponse resp =
      handler ? (*handler)(req) : HttpResponse::not_found("no route for " + req.path);
  ++served_;
  c.out = serialize(resp, req.method == "HEAD");
  c.out_off = 0;
  c.responding = true;
  reactor_.modify(fd, EPOLLOUT);
  on_conn(fd, EPOLLOUT);  // try immediate write
}

void HttpServer::on_conn(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }

  if (!c.responding && (events & EPOLLIN)) {
    char buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        close_conn(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(fd);
      return;
    }
    try_dispatch(fd, c);
    return;
  }

  if (c.responding) {
    while (c.out_off < c.out.size()) {
      ssize_t n = ::send(fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                         MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_conn(fd);
      return;
    }
    close_conn(fd);  // connection: close semantics
  }
}

// ---------------------------------------------------------------------------
// HttpClient
// ---------------------------------------------------------------------------

HttpClient::~HttpClient() {
  for (auto& [fd, call] : calls_) {
    reactor_.remove(fd);
    if (call->timer) reactor_.cancel_timer(call->timer);
  }
  calls_.clear();
}

void HttpClient::request(const SockAddr& dst, HttpRequest req,
                         std::chrono::milliseconds timeout, Callback cb) {
  // lint: determinism-sink -- measures real network latency on the live
  // fetch path; simulation drivers never route through HttpClient.
  auto call = std::make_unique<Call>();
  call->cb = std::move(cb);
  call->start = std::chrono::steady_clock::now();
  call->head = req.method == "HEAD";
  call->out = serialize(req, dst.str());

  try {
    call->fd = make_nonblocking_socket();
  } catch (const std::system_error& e) {
    HttpResult r;
    r.error_errno = e.code().value();
    call->cb(r);
    return;
  }
  int fd = call->fd.get();

  int rc = ::connect(fd, dst.raw(), SockAddr::len());
  if (rc != 0 && errno != EINPROGRESS) {
    HttpResult r;
    r.error_errno = errno;
    call->cb(r);
    return;
  }

  call->timer = reactor_.add_timer_after(timeout, [this, fd] {
    auto it = calls_.find(fd);
    if (it == calls_.end()) return;
    it->second->timer = 0;
    HttpResult r;
    r.timed_out = true;
    finish(fd, std::move(r));
  });

  reactor_.add(fd, EPOLLOUT, [this, fd](std::uint32_t ev) { on_event(fd, ev); });
  calls_.emplace(fd, std::move(call));
}

void HttpClient::finish(int fd, HttpResult result) {
  // lint: determinism-sink -- wall-clock end of the real-network timing
  // started in request().
  auto node = calls_.extract(fd);
  if (node.empty()) return;
  if (node.mapped()->timer) reactor_.cancel_timer(node.mapped()->timer);
  reactor_.remove(fd);
  result.total_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - node.mapped()->start)
                        .count();
  Callback cb = std::move(node.mapped()->cb);
  node.mapped()->fd.reset();
  cb(result);
}

void HttpClient::on_event(int fd, std::uint32_t events) {
  auto it = calls_.find(fd);
  if (it == calls_.end()) return;
  Call& c = *it->second;

  if (!c.connected) {
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0) err = errno;
    if ((events & (EPOLLERR | EPOLLHUP)) && err == 0) err = ECONNREFUSED;
    if (err != 0) {
      HttpResult r;
      r.error_errno = err;
      finish(fd, std::move(r));
      return;
    }
    c.connected = true;
  }

  // Write phase.
  while (c.out_off < c.out.size()) {
    ssize_t n = ::send(fd, c.out.data() + c.out_off, c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    HttpResult r;
    r.error_errno = errno;
    finish(fd, std::move(r));
    return;
  }
  if (c.out_off == c.out.size() && c.out_off != 0) {
    reactor_.modify(fd, EPOLLIN);
  }

  // Read phase.
  if (events & (EPOLLIN | EPOLLHUP)) {
    char buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {  // server closed: response should be complete
        HttpResult r;
        if (auto resp = parse_response(c.in, c.head)) {
          r.ok = true;
          r.response = std::move(*resp);
        } else {
          r.error_errno = EPROTO;
        }
        finish(fd, std::move(r));
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      HttpResult r;
      r.error_errno = errno;
      finish(fd, std::move(r));
      return;
    }
    // Fast path: complete message with Content-Length already in buffer.
    if (auto resp = parse_response(c.in, c.head)) {
      HttpResult r;
      r.ok = true;
      r.response = std::move(*resp);
      finish(fd, std::move(r));
    }
  }
}

}  // namespace pingmesh::net

// Minimal asynchronous HTTP/1.1 server and client over the Reactor.
//
// Serves two paper roles:
//  - the Pingmesh Controller's "simple RESTful Web API for the Pingmesh
//    Agents to retrieve their Pinglist files" (§3.3.2);
//  - HTTP pings ("Pingmesh uses TCP and HTTP instead of ICMP or UDP for
//    probing", §3.4.1).
//
// Scope: request line + headers + Content-Length bodies, Connection: close
// semantics (each exchange is one connection — matching the probe model of
// a new connection per probe). No chunked encoding, no pipelining.
//
// Conditional-request machinery for the serving tier (DESIGN.md §13): the
// serializer/parser understand body-less messages — 304 Not Modified and
// 204 No Content carry no body regardless of Content-Length (RFC 7230
// §3.3.3), and HEAD exchanges keep the entity's Content-Length while
// omitting the bytes. etag_match() implements If-None-Match comparison
// (list form, `*`, weak validators).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fd.h"
#include "net/reactor.h"
#include "net/sockaddr.h"

namespace pingmesh::net {

struct HttpRequest {
  std::string method;
  std::string path;  // includes query string if any
  std::map<std::string, std::string, std::less<>> headers;  // lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string, std::less<>> headers;
  std::string body;

  static HttpResponse ok(std::string body, std::string content_type = "text/plain");
  static HttpResponse not_found(std::string message = "not found");
  static HttpResponse error(int status, std::string reason, std::string message = "");
  /// 304 with the validator echoed back; must_not carry a body.
  static HttpResponse not_modified(std::string etag);

  /// True for statuses that never carry a body (1xx, 204, 304).
  [[nodiscard]] bool body_forbidden() const {
    return status == 204 || status == 304 || (status >= 100 && status < 200);
  }
};

/// If-None-Match comparison: `header` is the raw If-None-Match value (a
/// single validator, a comma-separated list, or `*`); `etag` is the
/// resource's current entity tag including quotes. Uses RFC 9110's weak
/// comparison — W/ prefixes strip on both sides — and parses the list
/// quote-aware, so commas inside a quoted entity-tag are part of the tag,
/// not separators. Safe on arbitrary header bytes (fuzzed).
[[nodiscard]] bool etag_match(std::string_view header, std::string_view etag);

/// Serialize a response (adds Content-Length and Connection: close). With
/// `head_request`, the entity's Content-Length is kept but the body bytes
/// are omitted — the HEAD contract. Body-forbidden statuses always
/// serialize without a body.
std::string serialize(const HttpResponse& resp, bool head_request = false);
/// Serialize a request (adds Content-Length for non-empty bodies and Host).
std::string serialize(const HttpRequest& req, const std::string& host);

class HttpServer {
 public:
  /// Handler receives the parsed request; returning the response completes
  /// the exchange and closes the connection.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Reactor& reactor, const SockAddr& bind_addr);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for paths beginning with `prefix` (longest prefix
  /// wins). Register "/" as the fallback.
  void route(std::string prefix, Handler handler);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

  static constexpr std::size_t kMaxHead = 64 * 1024;
  static constexpr std::size_t kMaxBody = 4 * 1024 * 1024;

 private:
  struct Conn {
    Fd fd;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    bool responding = false;
  };

  void on_accept(std::uint32_t events);
  void on_conn(int fd, std::uint32_t events);
  void close_conn(int fd);
  void try_dispatch(int fd, Conn& c);
  [[nodiscard]] const Handler* match(const std::string& path) const;

  Reactor& reactor_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::uint64_t served_ = 0;
  std::vector<std::pair<std::string, Handler>> routes_;  // kept longest-first
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
};

struct HttpResult {
  bool ok = false;          ///< response fully received
  HttpResponse response;    ///< valid when ok
  bool timed_out = false;
  int error_errno = 0;
  std::int64_t total_ns = 0;  ///< connect -> full response (the "HTTP ping" RTT)
};

class HttpClient {
 public:
  using Callback = std::function<void(const HttpResult&)>;

  explicit HttpClient(Reactor& reactor) : reactor_(reactor) {}
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  void get(const SockAddr& dst, const std::string& path,
           std::chrono::milliseconds timeout, Callback cb) {
    request(dst, HttpRequest{"GET", path, {}, ""}, timeout, std::move(cb));
  }
  void head(const SockAddr& dst, const std::string& path,
            std::chrono::milliseconds timeout, Callback cb) {
    request(dst, HttpRequest{"HEAD", path, {}, ""}, timeout, std::move(cb));
  }
  void request(const SockAddr& dst, HttpRequest req, std::chrono::milliseconds timeout,
               Callback cb);

  [[nodiscard]] std::size_t inflight() const { return calls_.size(); }

 private:
  struct Call {
    Fd fd;
    std::chrono::steady_clock::time_point start;
    std::string out;
    std::size_t out_off = 0;
    std::string in;
    Reactor::TimerId timer = 0;
    Callback cb;
    bool connected = false;
    bool head = false;  ///< HEAD request: the response has no body bytes
  };

  void on_event(int fd, std::uint32_t events);
  void finish(int fd, HttpResult result);

  Reactor& reactor_;
  std::unordered_map<int, std::unique_ptr<Call>> calls_;
};

/// Parse helpers (exposed for tests). `head_request` tells the response
/// parser the exchange was a HEAD, so the message completes at the end of
/// the header block whatever Content-Length promises.
std::optional<HttpRequest> parse_request(std::string_view head_and_body);
std::optional<HttpResponse> parse_response(std::string_view head_and_body,
                                           bool head_request = false);

}  // namespace pingmesh::net

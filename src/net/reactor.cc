#include "net/reactor.h"

#include <sys/epoll.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace pingmesh::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Reactor::Reactor() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) throw_errno("epoll_create1");
}

Reactor::~Reactor() = default;

void Reactor::add(int fd, std::uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl ADD");
  callbacks_[fd] = std::move(cb);
}

void Reactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) throw_errno("epoll_ctl MOD");
}

void Reactor::remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  // Removal may race with the fd having been closed already; ignore ENOENT/EBADF.
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

Reactor::TimerId Reactor::add_timer(Clock::time_point deadline, TimerCallback cb) {
  TimerId id = next_timer_++;
  timer_heap_.push(Timer{deadline, id});
  timer_cbs_[id] = std::move(cb);
  ++timer_count_;
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  if (timer_cbs_.erase(id) > 0 && timer_count_ > 0) --timer_count_;
}

int Reactor::fire_due_timers() {
  int fired = 0;
  auto now = Clock::now();
  while (!timer_heap_.empty() && timer_heap_.top().deadline <= now) {
    Timer t = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_cbs_.find(t.id);
    if (it == timer_cbs_.end()) continue;  // cancelled
    TimerCallback cb = std::move(it->second);
    timer_cbs_.erase(it);
    if (timer_count_ > 0) --timer_count_;
    cb();
    ++fired;
  }
  return fired;
}

int Reactor::run_once(std::chrono::milliseconds max_wait) {
  int dispatched = fire_due_timers();
  if (dispatched > 0) max_wait = std::chrono::milliseconds(0);

  auto timeout = max_wait;
  if (!timer_heap_.empty()) {
    auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        timer_heap_.top().deadline - Clock::now());
    if (until < timeout) timeout = until;
  }
  if (timeout.count() < 0) timeout = std::chrono::milliseconds(0);

  std::array<epoll_event, 128> events{};
  int n = ::epoll_wait(epoll_.get(), events.data(), static_cast<int>(events.size()),
                       static_cast<int>(timeout.count()));
  if (n < 0) {
    if (errno == EINTR) return dispatched;
    throw_errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    int fd = events[static_cast<std::size_t>(i)].data.fd;
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;  // removed earlier in this batch
    // Copy: the callback may remove/replace its own registration.
    IoCallback cb = it->second;
    cb(events[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  dispatched += fire_due_timers();
  return dispatched;
}

void Reactor::run() {
  stopped_ = false;
  while (!stopped_) run_once();
}

bool Reactor::run_until(const std::function<bool()>& pred, Clock::time_point deadline) {
  while (!pred()) {
    if (Clock::now() >= deadline) return pred();
    run_once(std::chrono::milliseconds(20));
  }
  return true;
}

}  // namespace pingmesh::net

#include "net/tcp_probe.h"

#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace pingmesh::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

Fd make_nonblocking_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Fd(fd);
}

void put_u32_be(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32_be(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpProbeServer
// ---------------------------------------------------------------------------

TcpProbeServer::TcpProbeServer(Reactor& reactor, const SockAddr& bind_addr, int backlog)
    : reactor_(reactor) {
  listener_ = make_nonblocking_socket();
  int one = 1;
  ::setsockopt(listener_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listener_.get(), bind_addr.raw(), SockAddr::len()) != 0) throw_errno("bind");
  if (::listen(listener_.get(), backlog) != 0) throw_errno("listen");

  SockAddr actual;
  socklen_t alen = SockAddr::len();
  if (::getsockname(listener_.get(), actual.raw(), &alen) != 0) throw_errno("getsockname");
  port_ = actual.port();

  reactor_.add(listener_.get(), EPOLLIN, [this](std::uint32_t ev) { on_accept(ev); });
}

TcpProbeServer::~TcpProbeServer() {
  for (auto& [fd, conn] : conns_) reactor_.remove(fd);
  conns_.clear();
  if (listener_.valid()) reactor_.remove(listener_.get());
}

void TcpProbeServer::on_accept(std::uint32_t /*events*/) {
  for (;;) {
    int cfd = ::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept errors: drop and keep serving
    }
    ++accepted_;
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(cfd);
    reactor_.add(cfd, EPOLLIN, [this, cfd](std::uint32_t ev) { on_conn(cfd, ev); });
    conns_.emplace(cfd, std::move(conn));
  }
}

void TcpProbeServer::close_conn(int fd) {
  reactor_.remove(fd);
  conns_.erase(fd);
}

void TcpProbeServer::on_conn(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }

  if (events & EPOLLIN) {
    std::uint8_t buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.insert(c.in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) {  // peer closed (connect-only probe)
        close_conn(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(fd);
      return;
    }
    // Frame complete? Echo it.
    while (c.in.size() >= 4) {
      std::uint32_t frame_len = get_u32_be(c.in.data());
      if (frame_len > kMaxFrame) {  // oversized: protocol violation
        close_conn(fd);
        return;
      }
      if (c.in.size() < 4 + frame_len) break;
      put_u32_be(c.out, frame_len);
      c.out.insert(c.out.end(), c.in.begin() + 4, c.in.begin() + 4 + frame_len);
      c.in.erase(c.in.begin(), c.in.begin() + 4 + frame_len);
      ++echoed_;
    }
  }

  // Flush pending output.
  while (c.out_off < c.out.size()) {
    ssize_t n = ::send(fd, c.out.data() + c.out_off, c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      reactor_.modify(fd, EPOLLIN | EPOLLOUT);
      return;
    }
    if (errno == EINTR) continue;
    close_conn(fd);
    return;
  }
  if (c.out_off > 0 && c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    reactor_.modify(fd, EPOLLIN);
  }
}

// ---------------------------------------------------------------------------
// TcpProber
// ---------------------------------------------------------------------------

TcpProber::~TcpProber() {
  for (auto& [fd, p] : probes_) {
    reactor_.remove(fd);
    if (p->timer) reactor_.cancel_timer(p->timer);
  }
  probes_.clear();
}

void TcpProber::probe(const SockAddr& dst, int payload_bytes,
                      std::chrono::milliseconds timeout, Callback cb) {
  ++launched_;
  auto p = std::make_unique<Probe>();
  p->cb = std::move(cb);
  p->start = std::chrono::steady_clock::now();

  try {
    p->fd = make_nonblocking_socket();
  } catch (const std::system_error& e) {
    p->result.error_errno = e.code().value();
    p->cb(p->result);
    return;
  }
  int fd = p->fd.get();

  if (payload_bytes > 0) {
    auto len = static_cast<std::uint32_t>(payload_bytes);
    put_u32_be(p->out, len);
    p->out.resize(4 + len, std::uint8_t{0xA5});
    p->expect_in = 4 + len;
  }

  int rc = ::connect(fd, dst.raw(), SockAddr::len());
  if (rc != 0 && errno != EINPROGRESS) {
    p->result.error_errno = errno;
    Callback done = std::move(p->cb);
    TcpProbeResult res = p->result;
    done(res);
    return;
  }

  // Record the ephemeral source port (new for every probe by construction:
  // a fresh socket gets a fresh port from the kernel).
  SockAddr local;
  socklen_t llen = SockAddr::len();
  if (::getsockname(fd, local.raw(), &llen) == 0) p->result.src_port = local.port();

  p->timer = reactor_.add_timer_after(timeout, [this, fd] {
    auto it = probes_.find(fd);
    if (it == probes_.end()) return;
    it->second->timer = 0;
    it->second->result.timed_out = true;
    finish(fd, *it->second);
  });

  reactor_.add(fd, EPOLLOUT, [this, fd](std::uint32_t ev) { on_event(fd, ev); });
  probes_.emplace(fd, std::move(p));
}

void TcpProber::finish(int fd, Probe& p) {
  if (p.timer) reactor_.cancel_timer(p.timer);
  reactor_.remove(fd);
  auto node = probes_.extract(fd);
  // `p` lives inside node; invoke the callback after removing bookkeeping so
  // the callback may immediately launch new probes.
  Callback cb = std::move(node.mapped()->cb);
  TcpProbeResult result = node.mapped()->result;
  node.mapped()->fd.reset();
  cb(result);
}

void TcpProber::on_event(int fd, std::uint32_t events) {
  auto it = probes_.find(fd);
  if (it == probes_.end()) return;
  Probe& p = *it->second;

  if (p.state == State::kConnecting) {
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0) err = errno;
    if ((events & (EPOLLERR | EPOLLHUP)) && err == 0) err = ECONNREFUSED;
    if (err != 0) {
      p.result.error_errno = err;
      finish(fd, p);
      return;
    }
    auto now = std::chrono::steady_clock::now();
    p.result.connected = true;
    p.result.connect_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - p.start).count();
    if (p.out.empty()) {  // connect-only probe
      finish(fd, p);
      return;
    }
    p.state = State::kSending;
    p.payload_start = now;
    // fall through to send
  }

  if (p.state == State::kSending) {
    while (p.out_off < p.out.size()) {
      ssize_t n = ::send(fd, p.out.data() + p.out_off, p.out.size() - p.out_off,
                         MSG_NOSIGNAL);
      if (n > 0) {
        p.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        reactor_.modify(fd, EPOLLOUT);
        return;
      }
      if (errno == EINTR) continue;
      p.result.error_errno = errno;
      finish(fd, p);
      return;
    }
    p.state = State::kReadingEcho;
    reactor_.modify(fd, EPOLLIN);
    return;
  }

  if (p.state == State::kReadingEcho && (events & (EPOLLIN | EPOLLHUP | EPOLLERR))) {
    std::uint8_t buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        p.in.insert(p.in.end(), buf, buf + n);
        if (p.in.size() >= p.expect_in) {
          p.result.payload_ok = true;
          p.result.payload_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() - p.payload_start)
                                    .count();
          finish(fd, p);
          return;
        }
        continue;
      }
      if (n == 0) {  // server closed before full echo
        p.result.error_errno = ECONNRESET;
        finish(fd, p);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      p.result.error_errno = errno;
      finish(fd, p);
      return;
    }
  }
}

}  // namespace pingmesh::net

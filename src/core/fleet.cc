#include "core/fleet.h"

namespace pingmesh::core {

FleetProbeDriver::FleetProbeDriver(const topo::Topology& topo, netsim::SimNetwork& net,
                                   const controller::PinglistGenerator& generator)
    : topo_(&topo), net_(&net) {
  pinglists_ = generator.generate_all();
  next_due_.resize(pinglists_.size());
  for (std::size_t i = 0; i < pinglists_.size(); ++i) {
    next_due_[i].assign(pinglists_[i].targets.size(), 0);
  }
}

void FleetProbeDriver::fire(ServerId src, const controller::PingTarget& target,
                            SimTime now, const Visitor& visit) {
  ++probes_fired_;
  if (ephemeral_ < 32768 || ephemeral_ >= 60999) ephemeral_ = 32768;
  std::uint16_t src_port = ephemeral_++;

  FleetProbe probe;
  probe.time = now;
  probe.src = src;
  probe.target = &target;
  probe.src_port = src_port;

  auto dst = topo_->find_server_by_ip(target.ip);
  if (dst) {
    probe.dst = *dst;
    netsim::ProbeSpec spec;
    if (target.kind == controller::ProbeKind::kTcpPayload) {
      spec.payload_bytes = static_cast<int>(target.payload_bytes);
    }
    spec.low_priority = target.qos == controller::QosClass::kLow;
    probe.outcome = net_->tcp_probe(src, *dst, src_port, target.port, spec, now);
  }
  visit(probe);
}

void FleetProbeDriver::run_impl(SimTime start, int rounds, SimTime round_interval,
                                bool dense, const Visitor& visit) {
  for (int round = 0; round < rounds; ++round) {
    SimTime now = start + round * round_interval;
    for (std::size_t s = 0; s < pinglists_.size(); ++s) {
      ServerId src{static_cast<std::uint32_t>(s)};
      if (!net_->server_up(src, now)) continue;
      const auto& targets = pinglists_[s].targets;
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (!dense) {
          if (now < next_due_[s][t]) continue;
          next_due_[s][t] = now + targets[t].interval;
        }
        fire(src, targets[t], now, visit);
      }
    }
  }
}

void FleetProbeDriver::run(SimTime start, int rounds, SimTime round_interval,
                           const Visitor& visit) {
  run_impl(start, rounds, round_interval, /*dense=*/false, visit);
}

void FleetProbeDriver::run_dense(SimTime start, int rounds, SimTime round_interval,
                                 const Visitor& visit) {
  run_impl(start, rounds, round_interval, /*dense=*/true, visit);
}

}  // namespace pingmesh::core

// PingmeshSimulation: the full closed loop on virtual time.
//
//   Controller (pinglist generation, pull-based distribution)
//     -> Agents on every server (probe scheduling, safety, counters)
//       -> SimNetwork (ECMP, latency/drop models, fault injection)
//     -> Cosmos (uploaded record batches)
//       -> SCOPE jobs via JobManager (10-min / 1-h / 1-day)
//         -> Database -> alerts / heatmaps / SLA tracking
//     -> Perfcounter Aggregator (5-min fast path)
//   plus Autopilot repair (budgeted ToR reloads, RMA isolation).
//
// Everything runs on one EventScheduler, so a simulated day of a
// medium-size deployment executes in seconds and is bit-reproducible from
// the seed.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "agent/agent.h"
#include "autopilot/repair.h"
#include "autopilot/watchdog.h"
#include "common/annotations.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "controller/generator.h"
#include "controller/service.h"
#include "controller/slb.h"
#include "obs/observability.h"
#include "dsa/cosmos.h"
#include "dsa/database.h"
#include "dsa/jobs.h"
#include "dsa/pa.h"
#include "dsa/scan_cache.h"
#include "dsa/uploader.h"
#include "netsim/simnet.h"
#include "streaming/pipeline.h"
#include "topology/topology.h"

namespace pingmesh::core {

struct SimulationConfig {
  std::vector<topo::DcSpec> dcs;
  std::uint64_t seed = 42;
  controller::GeneratorConfig generator;
  agent::AgentConfig agent;
  SimTime agent_tick = seconds(10);       ///< driver granularity (probe due check)
  SimTime pa_period = minutes(5);         ///< Perfcounter Aggregator cadence
  SimTime job_tick = minutes(1);          ///< JobManager wake-up cadence
  SimTime ingestion_delay = minutes(10);  ///< Cosmos->SCOPE availability delay
  SimTime cosmos_retention = hours(1);    ///< expire raw data older than this
  /// Extent rollover size for the Cosmos store. Expiry works at extent
  /// granularity, so retention tests shrink this to force rollover within a
  /// short simulated run.
  std::size_t cosmos_extent_limit = 4 * 1024 * 1024;
  bool include_server_sla_rows = false;
  dsa::AlertThresholds thresholds;
  /// Near-real-time analytics path (off by default): taps record batches at
  /// upload time into sliding windows + the online detector (DESIGN.md §8).
  streaming::StreamingConfig streaming;
  /// Fleet-wide observability (off by default): the shared MetricsRegistry
  /// plus the sampled data-path tracer (DESIGN.md §10). Zero overhead when
  /// disabled — no registry is constructed and every hook stays null.
  obs::ObservabilityConfig observability;
  /// Autopilot repair service knobs: the §5.1 daily reload budget and the
  /// budget accounting period (tests/soaks shrink the day so rollover
  /// happens inside a short run).
  autopilot::RepairConfig repair;
  /// Controller replicas behind the pinglist VIP (§3.3.2). Every replica
  /// serves the identical generator output; the SLB spreads fetches and
  /// removes/readmits replicas as they fail/recover.
  int controller_replicas = 3;
  /// Worker threads for the agent tick path (1 = serial). Results are
  /// bit-identical for any value: probe outcomes are pure functions of
  /// (seed, five-tuple, time) and uploads drain in server-id order after a
  /// barrier, so the thread count only changes wall-clock time.
  int worker_threads = 1;
  /// Extent payload encoding for the latency stream (DESIGN.md §12): true
  /// stores binary columnar extents (the paper-scale fast path), false the
  /// paper's CSV. Scans decode either; decoded records are identical.
  bool columnar_extents = true;
};

class PingmeshSimulation {
 public:
  explicit PingmeshSimulation(SimulationConfig config);

  // --- simulation control --------------------------------------------------
  void run_for(SimTime duration) { scheduler_.run_until(scheduler_.now() + duration); }
  void run_until(SimTime t) { scheduler_.run_until(t); }
  [[nodiscard]] SimTime now() const { return scheduler_.now(); }

  // --- component access ----------------------------------------------------
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  netsim::SimNetwork& net() { return net_; }
  netsim::FaultInjector& faults() { return net_.faults(); }
  controller::PinglistGenerator& generator() { return generator_; }
  controller::DirectPinglistSource& pinglist_source() { return source_; }
  dsa::CosmosStore& cosmos() { return cosmos_; }
  [[nodiscard]] const dsa::CosmosStore& cosmos() const { return cosmos_; }
  dsa::Database& db() { return db_; }
  [[nodiscard]] const dsa::Database& db() const { return db_; }
  dsa::JobManager& jobs() { return jobs_; }
  dsa::PerfcounterAggregator& pa() { return pa_; }
  /// The streaming pipeline; null unless config().streaming.enabled.
  [[nodiscard]] streaming::StreamingPipeline* streaming() { return streaming_.get(); }
  [[nodiscard]] const streaming::StreamingPipeline* streaming() const {
    return streaming_.get();
  }
  autopilot::RepairService& repair() { return repair_; }
  [[nodiscard]] const autopilot::RepairService& repair() const { return repair_; }
  autopilot::WatchdogService& watchdogs() { return watchdogs_; }
  topo::ServiceMap& services() { return services_; }
  EventScheduler& scheduler() { return scheduler_; }
  agent::PingmeshAgent& agent(ServerId id) { return *agents_.at(id.value); }
  [[nodiscard]] const agent::PingmeshAgent& agent(ServerId id) const {
    return *agents_.at(id.value);
  }
  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  /// Failure injection on the upload path (Cosmos front-end outages).
  dsa::CosmosUploader& uploader_for_test() { return uploader_; }

  /// Attach an additional record tap to the upload-drain phase. The
  /// uploader has a single tap slot; the sim multiplexes the streaming
  /// pipeline and externally attached consumers (serving harnesses, chaos)
  /// through an internal fanout, in attach order. Driver thread only, and
  /// before run_for; `tap` must outlive the simulation. (Tests that call
  /// uploader_for_test().set_tap() directly still replace the whole slot.)
  void add_record_tap(dsa::RecordTap* tap);

  /// Observability layer; null unless config().observability.enabled.
  [[nodiscard]] obs::Observability* observability() { return obs_.get(); }
  [[nodiscard]] const obs::Observability* observability() const { return obs_.get(); }
  /// The SLB VIP in front of the controller replica set. Driver-thread
  /// read-only inspection between ticks; no worker shard is running, so the
  /// unlocked read cannot race pick/report.
  [[nodiscard]] const controller::SlbVip& controller_vip() const {
    return controller_vip_;  // lint: allow(lock-discipline)
  }
  /// Kill / revive one controller replica (failure injection). Call only
  /// from the driver thread between ticks — i.e. between run_for() segments
  /// or from a scheduler event (the chaos injector's path) — because
  /// replica state is read by worker shards during the tick itself.
  void set_controller_replica_up(std::size_t replica, bool up);
  /// Replica count is fixed at construction; size() never races the
  /// per-element flips the mutex guards.
  [[nodiscard]] std::size_t controller_replica_count() const {
    return replica_up_.size();  // lint: allow(lock-discipline)
  }

  /// Register a VIP with its destination (DIP) pool (paper §6.2 "VIP
  /// monitoring"). Probes to the VIP address are load-balanced over the
  /// DIPs by source-port hash.
  void register_vip(IpAddr vip, std::vector<ServerId> dips);

  /// Records currently scannable in the latency stream over [from, to).
  [[nodiscard]] std::vector<agent::LatencyRecord> records_between(SimTime from,
                                                                  SimTime to) const;

  // --- aggregate statistics -------------------------------------------------
  [[nodiscard]] std::uint64_t total_probes() const {
    return total_probes_.load(std::memory_order_relaxed);
  }
  /// Decoded-extent cache statistics (SCOPE scan path).
  [[nodiscard]] const dsa::DecodedExtentCache& scan_cache() const { return scan_cache_; }
  /// Malformed rows dropped while decoding extents on the scan path. Must
  /// stay 0 unless extents were deliberately corrupted (chaos invariant).
  [[nodiscard]] std::uint64_t decode_rows_dropped() const {
    return scan_cache_.rows_dropped();
  }
  /// Worker parallelism actually in use (>= 1).
  [[nodiscard]] int worker_threads() const { return pool_ ? pool_->worker_count() : 1; }

 private:
  void tick_agents(SimTime now);
  void collect_pa(SimTime now);
  void tick_jobs(SimTime now);
  void wire_observability();
  agent::ProbeResult execute_probe(ServerId src, const agent::ProbeRequest& req,
                                   SimTime now);
  controller::FetchResult fetch_pinglist(IpAddr server_ip, SimTime now);

  /// The uploader's one tap slot, multiplexed (see add_record_tap).
  struct TapFanout final : dsa::RecordTap {
    std::vector<dsa::RecordTap*> taps;
    void on_records(const agent::RecordColumns& batch, SimTime now) override {
      for (dsa::RecordTap* t : taps) t->on_records(batch, now);
    }
  };

  SimulationConfig config_;
  TapFanout tap_fanout_;
  std::unique_ptr<obs::Observability> obs_;  // null when observability off
  topo::Topology topo_;
  netsim::SimNetwork net_;
  controller::PinglistGenerator generator_;
  controller::DirectPinglistSource source_;
  controller::SlbVip controller_vip_ PM_GUARDED_BY(vip_mutex_);
  // by backend index; flipped between ticks
  std::vector<char> replica_up_ PM_GUARDED_BY(vip_mutex_);
  std::mutex vip_mutex_;  // guards VIP pick/report from worker shards
  EventScheduler scheduler_;
  dsa::CosmosStore cosmos_;
  dsa::Database db_;
  topo::ServiceMap services_;
  dsa::CosmosUploader uploader_;
  dsa::JobManager jobs_;
  dsa::PerfcounterAggregator pa_;
  std::unique_ptr<streaming::StreamingPipeline> streaming_;  // null when disabled
  autopilot::RepairService repair_;
  autopilot::WatchdogService watchdogs_;
  dsa::JobContext job_ctx_;
  mutable dsa::DecodedExtentCache scan_cache_;
  std::unique_ptr<ThreadPool> pool_;  // null when worker_threads == 1
  /// Per-shard TickActions arenas, indexed by shard. Shard i always runs on
  /// the same pool thread, so its scratch stays core-local across ticks and
  /// the steady-state tick allocates nothing.
  std::vector<agent::PingmeshAgent::TickActions> shard_scratch_;
  std::vector<std::unique_ptr<agent::PingmeshAgent>> agents_;  // by ServerId
  std::unordered_map<IpAddr, std::vector<ServerId>> vips_;
  std::atomic<std::uint64_t> total_probes_{0};
  SimTime last_pa_alert_check_ = 0;
};

}  // namespace pingmesh::core

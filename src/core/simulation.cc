#include "core/simulation.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace pingmesh::core {

PingmeshSimulation::PingmeshSimulation(SimulationConfig config)
    : config_(std::move(config)),
      topo_(topo::Topology::build(config_.dcs)),
      net_(topo_, config_.seed),
      generator_(topo_, config_.generator),
      source_(topo_, generator_),
      scheduler_(0),
      cosmos_(config_.cosmos_extent_limit),
      uploader_(cosmos_, dsa::kLatencyStream, scheduler_.clock()),
      jobs_(config_.ingestion_delay),
      pa_(topo_, db_),
      repair_(config_.repair,
              [this](SwitchId sw) { net_.faults().clear_blackholes_on(sw); },
              [this](SwitchId sw) { net_.faults().clear_all_on(sw); }),
      watchdogs_() {
  job_ctx_.topo = &topo_;
  job_ctx_.services = &services_;
  job_ctx_.db = &db_;
  job_ctx_.scan_cache = &scan_cache_;
  jobs_.register_standard_jobs(cosmos_.stream(dsa::kLatencyStream), job_ctx_,
                               config_.thresholds, config_.include_server_sla_rows);

  // Controller replica set behind the SLB VIP (§3.3.2). Every replica
  // serves the same generator output (source_); the VIP only decides which
  // replica a fetch lands on and whether that replica is alive.
  int replicas = std::max(1, config_.controller_replicas);
  for (int i = 0; i < replicas; ++i) {
    controller_vip_.add_backend("controller-" + std::to_string(i));
    replica_up_.push_back(1);
  }

  if (config_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.worker_threads);
  }
  shard_scratch_.resize(pool_ ? static_cast<std::size_t>(pool_->worker_count()) : 1);

  uploader_.set_encoding(config_.columnar_extents ? dsa::ExtentEncoding::kColumnar
                                                  : dsa::ExtentEncoding::kCsv);

  if (config_.streaming.enabled) {
    // The tap runs in the serial upload-drain phase of tick_agents and the
    // detector on its own scheduler event, so the whole streaming path is
    // driver-thread-only regardless of worker_threads (DESIGN.md §7).
    streaming_ = std::make_unique<streaming::StreamingPipeline>(topo_, db_,
                                                                config_.streaming);
    add_record_tap(streaming_.get());
    scheduler_.schedule_every(config_.streaming.detector.eval_period,
                              [this](SimTime now) {
                                streaming_->tick(now);
                                return true;
                              });
  }

  agents_.reserve(topo_.server_count());
  for (const topo::Server& s : topo_.servers()) {
    agents_.push_back(std::make_unique<agent::PingmeshAgent>(s.name, s.ip, config_.agent,
                                                             uploader_));
    // Uploads always drain in the serial phase of tick_agents, whatever the
    // worker count, so serial and parallel runs take the identical path.
    agents_.back()->set_deferred_uploads(true);
  }

  // Standard watchdogs (§3.5): pinglists generated, data stored, SLAs fresh.
  watchdogs_.register_check("pinglists-generated", [this](SimTime) {
    autopilot::CheckResult r;
    auto pl = generator_.generate_for(ServerId{0});
    r.health = pl.targets.empty() ? autopilot::Health::kError : autopilot::Health::kOk;
    r.message = std::to_string(pl.targets.size()) + " targets for server 0";
    return r;
  });
  watchdogs_.register_check("pingmesh-data-stored", [this](SimTime now) {
    autopilot::CheckResult r;
    const dsa::CosmosStream* s = cosmos_.find(dsa::kLatencyStream);
    bool ok = now < minutes(30) || (s != nullptr && s->total_records() > 0);
    r.health = ok ? autopilot::Health::kOk : autopilot::Health::kError;
    r.message = s ? std::to_string(s->total_records()) + " records stored" : "no stream";
    return r;
  });
  watchdogs_.register_check("dsa-slas-fresh", [this](SimTime now) {
    autopilot::CheckResult r;
    SimTime newest = 0;
    for (const auto& row : db_.sla_rows) newest = std::max(newest, row.window_end);
    bool ok = now < hours(2) + config_.ingestion_delay || newest + hours(3) > now;
    r.health = ok ? autopilot::Health::kOk : autopilot::Health::kError;
    r.message = "newest SLA window ends at " + std::to_string(to_seconds(newest)) + "s";
    return r;
  });

  if (config_.observability.enabled) wire_observability();

  // Drivers.
  scheduler_.schedule_every(config_.agent_tick, [this](SimTime now) {
    tick_agents(now);
    return true;
  });
  scheduler_.schedule_every(config_.pa_period, [this](SimTime now) {
    collect_pa(now);
    return true;
  });
  scheduler_.schedule_every(config_.job_tick, [this](SimTime now) {
    tick_jobs(now);
    return true;
  });
}

void PingmeshSimulation::wire_observability() {
  obs_ = std::make_unique<obs::Observability>(config_.observability);
  obs::MetricsRegistry& reg = obs_->metrics();
  const obs::Tracer* tracer = &obs_->tracer();

  source_.enable_observability(reg);
  {
    // Setup path, but the VIP is annotated vip_mutex_-guarded; take the
    // lock so the discipline holds everywhere outside the constructor.
    std::lock_guard<std::mutex> lock(vip_mutex_);
    controller_vip_.enable_observability(reg);
  }
  uploader_.enable_observability(reg, tracer);
  jobs_.enable_observability(reg, tracer);
  scan_cache_.set_observability(tracer, &scheduler_.clock());
  for (auto& ag : agents_) ag->enable_observability(reg, tracer);
  if (streaming_) streaming_->set_tracer(tracer);

  // Polled gauges over components that must stay obs-free (common/ is a
  // lower layer than obs) or that already keep their own counters.
  reg.gauge_fn("threadpool.workers", "",
               [this] { return static_cast<double>(worker_threads()); });
  reg.gauge_fn("threadpool.parallel_for_total", "", [this] {
    return pool_ ? static_cast<double>(pool_->stats().parallel_for_calls) : 0.0;
  });
  reg.gauge_fn("threadpool.items_total", "", [this] {
    return pool_ ? static_cast<double>(pool_->stats().items_total) : 0.0;
  });
  // Real elapsed time, not virtual: excluded from golden snapshots.
  reg.gauge_fn("threadpool.busy_ns_total", "", [this] {
    return pool_ ? static_cast<double>(pool_->stats().busy_ns_total) : 0.0;
  });
  reg.gauge_fn("cosmos.extents", "", [this] {
    const dsa::CosmosStream* s = cosmos_.find(dsa::kLatencyStream);
    return s ? static_cast<double>(s->extents().size()) : 0.0;
  });
  reg.gauge_fn("cosmos.records_total", "",
               [this] { return static_cast<double>(cosmos_.total_records()); });
  reg.gauge_fn("cosmos.bytes_total", "",
               [this] { return static_cast<double>(cosmos_.total_bytes()); });
  reg.gauge_fn("dsa.scan_cache_hits_total", "",
               [this] { return static_cast<double>(scan_cache_.hits()); });
  reg.gauge_fn("dsa.scan_cache_misses_total", "",
               [this] { return static_cast<double>(scan_cache_.misses()); });
  reg.gauge_fn("dsa.scan_cache_evictions_total", "",
               [this] { return static_cast<double>(scan_cache_.evictions()); });
  reg.gauge_fn("dsa.scan_cache_entries", "",
               [this] { return static_cast<double>(scan_cache_.size()); });
  reg.gauge_fn("dsa.decode_rows_dropped_total", "",
               [this] { return static_cast<double>(scan_cache_.rows_dropped()); });
  if (streaming_) {
    reg.gauge_fn("streaming.records_ingested_total", "", [this] {
      return static_cast<double>(streaming_->windows().records_ingested());
    });
    reg.gauge_fn("streaming.records_skipped_total", "", [this] {
      return static_cast<double>(streaming_->windows().records_skipped());
    });
    reg.gauge_fn("streaming.late_dropped_total", "", [this] {
      return static_cast<double>(streaming_->windows().late_dropped());
    });
    reg.gauge_fn("streaming.window_expiries_total", "", [this] {
      return static_cast<double>(streaming_->windows().window_expiries());
    });
    reg.gauge_fn("streaming.pair_count", "", [this] {
      return static_cast<double>(streaming_->windows().pair_count());
    });
    reg.gauge_fn("streaming.evaluations_total", "", [this] {
      return static_cast<double>(streaming_->detector().evaluations());
    });
    reg.gauge_fn("streaming.alerts_opened_total", "", [this] {
      return static_cast<double>(streaming_->detector().alerts_opened());
    });
    reg.gauge_fn("streaming.alerts_closed_total", "", [this] {
      return static_cast<double>(streaming_->detector().alerts_closed());
    });
  }
}

void PingmeshSimulation::set_controller_replica_up(std::size_t replica, bool up) {
  std::lock_guard<std::mutex> lock(vip_mutex_);
  replica_up_.at(replica) = up ? 1 : 0;
}

void PingmeshSimulation::add_record_tap(dsa::RecordTap* tap) {
  tap_fanout_.taps.push_back(tap);
  uploader_.set_tap(&tap_fanout_);
}

controller::FetchResult PingmeshSimulation::fetch_pinglist(IpAddr server_ip, SimTime now) {
  std::optional<std::size_t> pick;
  bool up = false;
  {
    // Fetches run in the serial phase of tick_agents (driver thread only);
    // the mutex stays as a guard-rail for any future caller. The picked
    // replica depends only on (flow hash, rotation state), and rotation
    // state evolves in server-id order, so outcomes are identical at any
    // worker count.
    std::lock_guard<std::mutex> lock(vip_mutex_);
    pick = controller_vip_.pick(mix64(server_ip.v ^ static_cast<std::uint64_t>(now)));
    if (pick) up = replica_up_[*pick] != 0;
  }
  if (!pick) return controller::FetchResult{controller::FetchStatus::kUnreachable, {}};
  if (!up) {
    std::lock_guard<std::mutex> lock(vip_mutex_);
    controller_vip_.report(*pick, false);
    return controller::FetchResult{controller::FetchStatus::kUnreachable, {}};
  }
  controller::FetchResult r = source_.fetch(server_ip);
  {
    std::lock_guard<std::mutex> lock(vip_mutex_);
    // A kNoPinglist answer is still a live replica; only transport-level
    // unreachability counts against its health.
    controller_vip_.report(*pick, r.status != controller::FetchStatus::kUnreachable);
  }
  return r;
}

void PingmeshSimulation::register_vip(IpAddr vip, std::vector<ServerId> dips) {
  vips_[vip] = std::move(dips);
  controller::PingTarget t;
  t.ip = vip;
  t.port = config_.generator.http_port;
  t.kind = controller::ProbeKind::kHttpGet;
  t.interval = config_.generator.inter_dc_interval;
  t.is_vip = true;
  // Rebuild the generator config with the VIP appended; bump the version so
  // agents pick it up on their next pinglist refresh.
  controller::GeneratorConfig cfg = generator_.config();
  cfg.vip_targets.push_back(t);
  std::uint64_t version = generator_.version() + 1;
  generator_ = controller::PinglistGenerator(topo_, cfg);
  generator_.set_version(version);
}

agent::ProbeResult PingmeshSimulation::execute_probe(ServerId src,
                                                     const agent::ProbeRequest& req,
                                                     SimTime now) {
  total_probes_.fetch_add(1, std::memory_order_relaxed);
  IpAddr dst_ip = req.target.ip;
  // VIP targets resolve to a DIP by source-port hash (the SLB data plane).
  auto vip_it = vips_.find(dst_ip);
  if (vip_it != vips_.end() && !vip_it->second.empty()) {
    const auto& dips = vip_it->second;
    ServerId dip = dips[mix64(req.src_port) % dips.size()];
    dst_ip = topo_.server(dip).ip;
  }

  auto dst = topo_.find_server_by_ip(dst_ip);
  if (!dst) return agent::ProbeResult{};  // unknown target: failed probe

  netsim::ProbeSpec spec;
  if (req.target.kind == controller::ProbeKind::kTcpPayload) {
    spec.payload_bytes = static_cast<int>(req.target.payload_bytes);
  } else if (req.target.kind == controller::ProbeKind::kHttpGet) {
    // HTTP ping: request + response ride the payload path (~300 B each way).
    spec.payload_bytes = 300;
  }
  spec.low_priority = req.target.qos == controller::QosClass::kLow;
  netsim::ProbeOutcome out =
      net_.tcp_probe(src, *dst, req.src_port, req.target.port, spec, now);
  agent::ProbeResult r;
  r.success = out.success;
  r.rtt = out.rtt;
  r.payload_success = out.payload_success;
  r.payload_rtt = out.payload_rtt;
  return r;
}

void PingmeshSimulation::tick_agents(SimTime now) {
  // Parallel phase: every server's agent work (pinglist fetch, probe
  // scheduling, probe execution, record buffering) touches only that
  // agent's state plus thread-safe shared components (const SimNetwork
  // probe path, const generator, atomic counters). Static sharding keeps
  // shard membership deterministic; probe outcomes are pure functions of
  // (seed, tuple, now), so the result is bit-identical for any thread count.
  const auto& servers = topo_.servers();
  // Pinglist fetches are only *noted* during the parallel phase and
  // performed after the barrier: the SLB VIP's pick/report sequence mutates
  // rotation state, so running it from worker shards would make fetch
  // outcomes depend on thread interleaving whenever a replica is down
  // (exactly the chaos scenarios). Serial server-id order matches what the
  // 1-worker path always did.
  std::vector<char> wants_fetch(servers.size(), 0);
  // Each shard refills its own TickActions arena (shard-affine: shard i is
  // pinned to one pool thread), so the steady-state tick performs no probe-
  // vector allocations at all.
  auto shard = [this, now, &servers, &wants_fetch](int shard_index, std::size_t begin,
                                                   std::size_t end) {
    agent::PingmeshAgent::TickActions& actions =
        shard_scratch_[static_cast<std::size_t>(shard_index)];
    for (std::size_t i = begin; i < end; ++i) {
      const topo::Server& s = servers[i];
      if (!net_.server_up(s.id, now)) continue;  // podset power-down: agent is gone
      agent::PingmeshAgent& ag = *agents_[s.id.value];
      ag.tick(now, actions);
      if (actions.fetch_pinglist) wants_fetch[i] = 1;
      for (const agent::ProbeRequest& req : actions.probes) {
        ag.on_probe_result(req, execute_probe(s.id, req, now), now);
      }
    }
  };
  if (pool_) {
    pool_->parallel_for_shards(servers.size(), shard);
  } else {
    shard(0, 0, servers.size());
  }

  // Serial phase 1 (after the barrier): pinglist fetches in server-id
  // order. A newly adopted pinglist may have probes due immediately; they
  // run here too (refresh ticks only, so the serialization is cheap).
  agent::PingmeshAgent::TickActions& more = shard_scratch_[0];  // free after barrier
  for (const topo::Server& s : servers) {
    if (wants_fetch[s.id.value] == 0) continue;
    agent::PingmeshAgent& ag = *agents_[s.id.value];
    ag.on_pinglist(fetch_pinglist(s.ip, now), now);
    ag.tick(now, more);
    for (const agent::ProbeRequest& req : more.probes) {
      ag.on_probe_result(req, execute_probe(s.id, req, now), now);
    }
  }

  // Serial phase 2: drain deferred uploads in server-id order so the
  // single-threaded Uploader/CosmosStore sees a deterministic record
  // stream.
  for (const topo::Server& s : servers) {
    if (!net_.server_up(s.id, now)) continue;
    agents_[s.id.value]->service_uploads(now);
  }
}

void PingmeshSimulation::collect_pa(SimTime now) {
  for (const topo::Server& s : topo_.servers()) {
    if (!net_.server_up(s.id, now)) continue;
    pa_.collect(s.id, agents_[s.id.value]->collect_counters(now));
  }
  pa_.flush(now);
  // The fast alerting path: independent of Cosmos/SCOPE (§3.5).
  dsa::evaluate_pa_alerts(db_, topo_, config_.thresholds, last_pa_alert_check_, now);
  last_pa_alert_check_ = now;
}

void PingmeshSimulation::tick_jobs(SimTime now) {
  jobs_.on_tick(now);
  // Raw latency data is kept for a bounded window (the paper keeps two
  // months at production scale; the simulation keeps enough for the jobs
  // plus slack).
  SimTime horizon = now - config_.cosmos_retention;
  if (horizon > 0) {
    cosmos_.stream(dsa::kLatencyStream).expire_before(horizon);
    scan_cache_.expire_before(horizon);
  }
}

std::vector<agent::LatencyRecord> PingmeshSimulation::records_between(SimTime from,
                                                                      SimTime to) const {
  const dsa::CosmosStream* s = cosmos_.find(dsa::kLatencyStream);
  if (s == nullptr) return {};
  return dsa::scope::extract_records(*s, from, to, scan_cache_).rows();
}

}  // namespace pingmesh::core

#include "core/scenarios.h"

#include <stdexcept>

namespace pingmesh::core {

std::vector<topo::DcSpec> two_dc_specs(bool medium) {
  if (medium) {
    return {topo::medium_dc_spec("DC1", "US West"), topo::medium_dc_spec("DC2", "US Central")};
  }
  return {topo::small_dc_spec("DC1", "US West"), topo::small_dc_spec("DC2", "US Central")};
}

void apply_dc1_dc2_profiles(netsim::SimNetwork& net) {
  net.set_dc_profile(DcId{0}, netsim::DcProfile::throughput_intensive());
  net.set_dc_profile(DcId{1}, netsim::DcProfile::latency_sensitive());
  netsim::WanProfile wan;
  wan.propagation_ms_oneway = 18.0;  // US West <-> US Central long haul
  net.set_wan_profile(DcId{0}, DcId{1}, wan);
}

std::vector<topo::DcSpec> five_dc_specs() {
  return {
      topo::medium_dc_spec("DC1", "US West"),
      topo::medium_dc_spec("DC2", "US Central"),
      topo::medium_dc_spec("DC3", "US East"),
      topo::medium_dc_spec("DC4", "Europe"),
      topo::medium_dc_spec("DC5", "Asia"),
  };
}

const std::vector<std::string>& table1_dc_labels() {
  static const std::vector<std::string> labels = {
      "DC1 (US West)", "DC2 (US Central)", "DC3 (US East)", "DC4 (Europe)", "DC5 (Asia)",
  };
  return labels;
}

netsim::DcProfile table1_profile(std::size_t dc_index) {
  // Element loss rates solved from the paper's Table 1 under the path
  // model: intra-pod probe loss = 2*(2*nic + tor), inter-pod (5-hop) loss
  // = 2*(2*nic + 2*tor + 2*leaf + spine). See EXPERIMENTS.md.
  struct Loss {
    double nic, tor, leaf, spine;
  };
  static constexpr Loss kLoss[5] = {
      {2.20e-6, 2.15e-6, 7.00e-6, 1.50e-5},  // DC1: 1.31e-5 / 7.55e-5
      {3.50e-6, 3.50e-6, 6.00e-6, 1.20e-5},  // DC2: 2.10e-5 / 7.63e-5
      {1.60e-6, 1.59e-6, 4.00e-6, 5.60e-6},  // DC3: 9.58e-6 / 4.00e-5
      {2.50e-6, 2.60e-6, 5.00e-6, 6.40e-6},  // DC4: 1.52e-5 / 5.32e-5
      {1.65e-6, 1.61e-6, 0.40e-6, 0.38e-6},  // DC5: 9.82e-6 / 1.54e-5
  };
  if (dc_index >= 5) throw std::out_of_range("table1_profile index");
  netsim::DcProfile p;  // moderate latency defaults
  p.nic_drop = kLoss[dc_index].nic;
  p.tor_drop = kLoss[dc_index].tor;
  p.leaf_drop = kLoss[dc_index].leaf;
  p.spine_drop = kLoss[dc_index].spine;
  p.border_drop = kLoss[dc_index].leaf;
  return p;
}

void apply_table1_profiles(netsim::SimNetwork& net) {
  for (std::size_t i = 0; i < 5; ++i) {
    net.set_dc_profile(DcId{static_cast<std::uint32_t>(i)}, table1_profile(i));
  }
}

SimulationConfig default_config(std::uint64_t seed) {
  SimulationConfig cfg;
  cfg.dcs = two_dc_specs(/*medium=*/true);
  cfg.seed = seed;
  cfg.generator.intra_pod_interval = minutes(2);
  cfg.generator.intra_dc_interval = minutes(2);
  cfg.generator.inter_dc_interval = minutes(10);
  cfg.agent_tick = seconds(30);
  return cfg;
}

SimulationConfig small_test_config(std::uint64_t seed) {
  SimulationConfig cfg;
  cfg.dcs = {topo::small_dc_spec("DC1", "US West")};
  cfg.seed = seed;
  cfg.generator.intra_pod_interval = seconds(30);
  cfg.generator.intra_dc_interval = seconds(30);
  cfg.generator.enable_inter_dc = false;
  cfg.agent_tick = seconds(10);
  cfg.ingestion_delay = minutes(2);
  cfg.agent.pinglist_refresh = minutes(5);
  cfg.agent.upload_interval = seconds(30);
  return cfg;
}

SimulationConfig streaming_test_config(std::uint64_t seed) {
  SimulationConfig cfg = small_test_config(seed);
  // Ingest freshness is bounded by the upload cadence: records sit in the
  // agent buffer for at most upload_interval before the tap sees them.
  cfg.agent.upload_interval = seconds(10);
  cfg.streaming.enabled = true;
  return cfg;
}

SimulationConfig chaos_test_config(std::uint64_t seed) {
  SimulationConfig cfg = streaming_test_config(seed);
  cfg.agent.pinglist_refresh = minutes(2);
  return cfg;
}

SimulationConfig observability_test_config(std::uint64_t seed, std::uint64_t sample_every) {
  SimulationConfig cfg = streaming_test_config(seed);
  cfg.observability.enabled = true;
  cfg.observability.trace.enabled = true;
  cfg.observability.trace.sample_every = sample_every;
  return cfg;
}

}  // namespace pingmesh::core

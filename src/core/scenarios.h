// Canonical experiment scenarios mapping the paper's evaluation setups onto
// the simulator. Every bench and several integration tests start from one
// of these so the configurations live in exactly one place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "netsim/profile.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace pingmesh::core {

/// DC1/DC2 of §4.1: DC1 is throughput-intensive (storage + MapReduce, ~90%
/// CPU), DC2 is an interactive, latency-sensitive Search DC.
std::vector<topo::DcSpec> two_dc_specs(bool medium = true);
void apply_dc1_dc2_profiles(netsim::SimNetwork& net);

/// The five DCs of Table 1 with per-DC loss profiles calibrated so that the
/// paper's band (intra-pod ~1e-5, inter-pod severalfold higher, DC5's WAN-
/// isolated fabric cleanest) reproduces.
std::vector<topo::DcSpec> five_dc_specs();
netsim::DcProfile table1_profile(std::size_t dc_index);
void apply_table1_profiles(netsim::SimNetwork& net);

/// Human labels for the Table 1 DCs ("DC1 (US West)" ...).
const std::vector<std::string>& table1_dc_labels();

/// A ready-to-run medium two-DC full-loop simulation config.
SimulationConfig default_config(std::uint64_t seed = 42);

/// Small config for fast integration tests (one small DC).
SimulationConfig small_test_config(std::uint64_t seed = 42);

/// small_test_config with the streaming analytics path enabled and a fast
/// upload cadence, so records reach the sliding windows with seconds-level
/// freshness (the sub-minute-detection scenario; DESIGN.md §8).
SimulationConfig streaming_test_config(std::uint64_t seed = 42);

/// streaming_test_config with chaos-friendly cadences: a 2-minute pinglist
/// refresh so a controller outage spanning a few refreshes exercises the
/// agent fail-closed path within a short run. The default base config of
/// chaos::run_plan (DESIGN.md §11).
SimulationConfig chaos_test_config(std::uint64_t seed = 42);

/// streaming_test_config with the observability layer on: the fleet-wide
/// MetricsRegistry plus the sampled data-path tracer (DESIGN.md §10).
/// `sample_every` controls trace sampling (1 = trace every record).
SimulationConfig observability_test_config(std::uint64_t seed = 42,
                                           std::uint64_t sample_every = 64);

}  // namespace pingmesh::core

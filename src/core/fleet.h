// FleetProbeDriver: the scale path for experiments.
//
// The full PingmeshSimulation exercises every component including agent
// buffering and the DSA pipeline; that fidelity costs memory and time. Tail
// experiments (Figure 4's P99.99 needs tens of millions of samples) only
// need the *measurement plane*: who probes whom, through the simulated
// network, with results aggregated on the fly. This driver iterates the
// controller-generated pinglists directly and hands each probe outcome to a
// visitor — no records are buffered.
#pragma once

#include <functional>
#include <vector>

#include "controller/generator.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace pingmesh::core {

struct FleetProbe {
  SimTime time = 0;
  ServerId src;
  ServerId dst;                           ///< invalid for unresolvable targets
  const controller::PingTarget* target = nullptr;
  std::uint16_t src_port = 0;
  netsim::ProbeOutcome outcome;
};

class FleetProbeDriver {
 public:
  using Visitor = std::function<void(const FleetProbe&)>;

  FleetProbeDriver(const topo::Topology& topo, netsim::SimNetwork& net,
                   const controller::PinglistGenerator& generator);

  /// Run rounds of probing from `start`, one round every `round_interval`.
  /// In each round a server fires each pinglist target whose interval has
  /// elapsed since its last probe. Servers in powered-down podsets skip
  /// their rounds; probes into them fail.
  void run(SimTime start, int rounds, SimTime round_interval, const Visitor& visit);

  /// Probe every target of every server exactly once per round, ignoring
  /// per-target intervals (maximum sample throughput for tail studies).
  void run_dense(SimTime start, int rounds, SimTime round_interval, const Visitor& visit);

  [[nodiscard]] std::uint64_t probes_fired() const { return probes_fired_; }

 private:
  void fire(ServerId src, const controller::PingTarget& target, SimTime now,
            const Visitor& visit);
  void run_impl(SimTime start, int rounds, SimTime round_interval, bool dense,
                const Visitor& visit);

  const topo::Topology* topo_;
  netsim::SimNetwork* net_;
  std::vector<controller::Pinglist> pinglists_;     // by ServerId
  std::vector<std::vector<SimTime>> next_due_;      // per server, per target
  std::uint16_t ephemeral_ = 32768;
  std::uint64_t probes_fired_ = 0;
};

}  // namespace pingmesh::core

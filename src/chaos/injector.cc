#include "chaos/injector.h"

#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "dsa/cosmos.h"

namespace pingmesh::chaos {

namespace {

/// Salt for deriving per-event uploader chaos seeds from the plan seed.
constexpr std::uint64_t kUploadChaosSalt = 0xC4A05u;

/// Salt for deriving per-event black-hole TCAM patterns from the plan seed.
constexpr std::uint64_t kBlackholeSalt = 0xB1AC0u;

std::vector<std::size_t> resolve_replicas(std::uint32_t entity, std::size_t count) {
  std::vector<std::size_t> out;
  if (entity == kEntityAll) {
    for (std::size_t i = 0; i < count; ++i) out.push_back(i);
  } else {
    out.push_back(entity % count);
  }
  return out;
}

}  // namespace

SwitchId resolve_event_switch(const topo::Topology& topo, const ChaosEvent& event) {
  switch (event.kind) {
    case ChaosEventKind::kTorBlackhole: {
      const auto& pods = topo.pods();
      return pods[event.entity % pods.size()].tor;
    }
    case ChaosEventKind::kSpineDrop: {
      // Spines in topology order; fall back to the whole switch table on a
      // (degenerate) spineless topology so the event is still applicable.
      std::vector<SwitchId> spines;
      for (const topo::Switch& sw : topo.switches()) {
        if (sw.kind == topo::SwitchKind::kSpine) spines.push_back(sw.id);
      }
      if (spines.empty()) {
        return SwitchId{static_cast<std::uint32_t>(event.entity % topo.switch_count())};
      }
      return spines[event.entity % spines.size()];
    }
    default:
      return SwitchId{static_cast<std::uint32_t>(event.entity % topo.switch_count())};
  }
}

void ChaosInjector::arm(const ChaosPlan& plan) {
  if (auto err = validate_plan(plan)) {
    throw std::invalid_argument("chaos plan invalid: " + *err);
  }
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    arm_event(plan.events[i], plan, i);
    ++armed_;
  }
}

void ChaosInjector::arm_event(const ChaosEvent& event, const ChaosPlan& plan,
                              std::size_t event_index) {
  core::PingmeshSimulation& sim = *sim_;
  EventScheduler& sched = sim.scheduler();
  const auto& topo = sim.topology();
  switch (event.kind) {
    case ChaosEventKind::kLinkLoss: {
      SwitchId sw{static_cast<std::uint32_t>(event.entity % topo.switch_count())};
      sim.faults().add_silent_random_drop(sw, event.magnitude, event.start, event.end);
      break;
    }
    case ChaosEventKind::kPartition: {
      SwitchId sw{static_cast<std::uint32_t>(event.entity % topo.switch_count())};
      sim.faults().add_silent_random_drop(sw, 1.0, event.start, event.end);
      break;
    }
    case ChaosEventKind::kServerCrash: {
      ServerId server{static_cast<std::uint32_t>(event.entity % topo.server_count())};
      sim.faults().add_server_down(server, event.start, event.end);
      break;
    }
    case ChaosEventKind::kControllerOutage: {
      auto replicas = resolve_replicas(event.entity, sim.controller_replica_count());
      sched.schedule_at(event.start, [&sim, replicas](SimTime) {
        for (std::size_t r : replicas) sim.set_controller_replica_up(r, false);
      });
      sched.schedule_at(event.end, [&sim, replicas](SimTime) {
        for (std::size_t r : replicas) sim.set_controller_replica_up(r, true);
      });
      break;
    }
    case ChaosEventKind::kSlbFlap: {
      auto replicas = resolve_replicas(event.entity, sim.controller_replica_count());
      // Toggle down/up every `param` within the window; k-th toggle leaves
      // the replicas down when k is even. The end event always restores up,
      // whatever parity the window length produced.
      bool down = true;
      for (SimTime t = event.start; t < event.end; t += event.param) {
        bool to_up = !down;
        sched.schedule_at(t, [&sim, replicas, to_up](SimTime) {
          for (std::size_t r : replicas) sim.set_controller_replica_up(r, to_up);
        });
        down = !down;
      }
      sched.schedule_at(event.end, [&sim, replicas](SimTime) {
        for (std::size_t r : replicas) sim.set_controller_replica_up(r, true);
      });
      break;
    }
    case ChaosEventKind::kUploadFailure: {
      double prob = event.magnitude;
      std::uint64_t seed = mix_key(plan.seed, kUploadChaosSalt,
                                   static_cast<std::uint64_t>(event_index));
      sched.schedule_at(event.start, [&sim, prob, seed](SimTime) {
        sim.uploader_for_test().set_chaos_failure(prob, seed);
      });
      sched.schedule_at(event.end, [&sim](SimTime) {
        sim.uploader_for_test().set_chaos_failure(0.0, 0);
      });
      break;
    }
    case ChaosEventKind::kUploadDelay: {
      SimTime delay = event.param;
      sched.schedule_at(event.start, [&sim, delay](SimTime) {
        sim.uploader_for_test().set_chaos_delay(delay);
      });
      sched.schedule_at(event.end, [&sim](SimTime) {
        sim.uploader_for_test().set_chaos_delay(0);
      });
      break;
    }
    case ChaosEventKind::kExtentCorruption: {
      sched.schedule_at(event.start, [&sim](SimTime) {
        sim.cosmos().stream(dsa::kLatencyStream).corrupt_newest_extent();
      });
      break;
    }
    case ChaosEventKind::kClockSkew: {
      ServerId server{static_cast<std::uint32_t>(event.entity % topo.server_count())};
      SimTime skew = event.param;
      sched.schedule_at(event.start, [&sim, server, skew](SimTime) {
        sim.agent(server).set_clock_skew(skew);
      });
      sched.schedule_at(event.end, [&sim, server](SimTime) {
        sim.agent(server).set_clock_skew(0);
      });
      break;
    }
    case ChaosEventKind::kTorBlackhole: {
      SwitchId sw = resolve_event_switch(topo, event);
      std::uint64_t salt = mix_key(plan.seed, kBlackholeSalt,
                                   static_cast<std::uint64_t>(event_index));
      sim.faults().add_blackhole(sw, netsim::BlackholeMode::kSrcDstPair,
                                 event.magnitude, event.start, event.end, salt);
      break;
    }
    case ChaosEventKind::kSpineDrop: {
      SwitchId sw = resolve_event_switch(topo, event);
      sim.faults().add_silent_random_drop(sw, event.magnitude, event.start, event.end);
      break;
    }
    case ChaosEventKind::kCongestion: {
      SwitchId sw = resolve_event_switch(topo, event);
      sim.faults().add_congestion(sw, 4.0, event.magnitude, event.start, event.end);
      break;
    }
    case ChaosEventKind::kServeRestart: {
      if (serve_.replica_count == 0) break;  // no serving harness attached
      std::size_t r = event.entity % serve_.replica_count;
      sched.schedule_at(event.start, [kill = serve_.kill, r](SimTime) { kill(r); });
      sched.schedule_at(event.end,
                        [restart = serve_.restart, r](SimTime) { restart(r); });
      break;
    }
  }
}

}  // namespace pingmesh::chaos

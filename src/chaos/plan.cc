#include "chaos/plan.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>

namespace pingmesh::chaos {

namespace {

constexpr std::string_view kHeader = "# pingmesh chaos plan v1";

struct KindName {
  ChaosEventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ChaosEventKind::kLinkLoss, "link-loss"},
    {ChaosEventKind::kPartition, "partition"},
    {ChaosEventKind::kServerCrash, "server-crash"},
    {ChaosEventKind::kControllerOutage, "controller-outage"},
    {ChaosEventKind::kSlbFlap, "slb-flap"},
    {ChaosEventKind::kUploadFailure, "upload-fail"},
    {ChaosEventKind::kUploadDelay, "upload-delay"},
    {ChaosEventKind::kExtentCorruption, "corrupt-extent"},
    {ChaosEventKind::kClockSkew, "clock-skew"},
    {ChaosEventKind::kServeRestart, "serve-restart"},
    {ChaosEventKind::kTorBlackhole, "blackhole"},
    {ChaosEventKind::kSpineDrop, "spine-drop"},
    {ChaosEventKind::kCongestion, "congestion"},
};
static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) == kChaosEventKindCount);

/// Which value field each kind's windowed semantics use.
bool kind_uses_window(ChaosEventKind k) {
  return k != ChaosEventKind::kExtentCorruption;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s == "all") {
    out = kEntityAll;
    return true;
  }
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xffffffffu) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// Integer + unit suffix; optional leading '-'. Overflow-checked.
bool parse_time(std::string_view s, SimTime& out) {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  std::size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') ++digits;
  if (digits == 0) return false;
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + digits, value);
  if (ec != std::errc{} || ptr != s.data() + digits) return false;
  std::string_view unit = s.substr(digits);
  SimTime scale = 0;
  if (unit == "ns") scale = 1;
  else if (unit == "us") scale = kNanosPerMicro;
  else if (unit == "ms") scale = kNanosPerMilli;
  else if (unit == "s") scale = kNanosPerSecond;
  else if (unit == "m") scale = kNanosPerMinute;
  else if (unit == "h") scale = kNanosPerHour;
  else if (unit == "d") scale = kNanosPerDay;
  else return false;
  if (value > std::numeric_limits<SimTime>::max() / scale) return false;
  out = value * scale;
  if (negative) out = -out;
  return true;
}

std::string format_time(SimTime t) { return std::to_string(t) + "ns"; }

std::string format_prob(double p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

std::optional<std::string> validate_event(const ChaosEvent& e, SimTime duration) {
  (void)duration;
  if (e.start < 0) return "event start must be >= 0";
  if (kind_uses_window(e.kind) && e.end < e.start) return "event end precedes start";
  switch (e.kind) {
    case ChaosEventKind::kLinkLoss:
      if (!(e.magnitude > 0.0) || e.magnitude > 1.0) return "link-loss prob not in (0, 1]";
      break;
    case ChaosEventKind::kUploadFailure:
      if (!(e.magnitude > 0.0) || e.magnitude > 1.0) {
        return "upload-fail prob not in (0, 1]";
      }
      break;
    case ChaosEventKind::kSlbFlap: {
      if (e.param < seconds(1)) return "slb-flap period must be >= 1s";
      // Bounded toggle count: the injector pre-schedules every toggle.
      if ((e.end - e.start) / e.param > 4096) return "slb-flap would toggle > 4096 times";
      break;
    }
    case ChaosEventKind::kUploadDelay:
      if (e.param < 0 || e.param > hours(1)) return "upload-delay not in [0, 1h]";
      break;
    case ChaosEventKind::kClockSkew:
      if (e.param < -hours(1) || e.param > hours(1)) return "clock-skew not in [-1h, 1h]";
      break;
    case ChaosEventKind::kTorBlackhole:
      if (!(e.magnitude > 0.0) || e.magnitude > 1.0) return "blackhole prob not in (0, 1]";
      break;
    case ChaosEventKind::kSpineDrop:
      if (!(e.magnitude > 0.0) || e.magnitude > 1.0) return "spine-drop prob not in (0, 1]";
      break;
    case ChaosEventKind::kCongestion:
      if (!(e.magnitude > 0.0) || e.magnitude > 0.5) return "congestion prob not in (0, 0.5]";
      break;
    case ChaosEventKind::kPartition:
    case ChaosEventKind::kServerCrash:
    case ChaosEventKind::kControllerOutage:
    case ChaosEventKind::kExtentCorruption:
    case ChaosEventKind::kServeRestart:
      break;
  }
  if (e.entity == kEntityAll && e.kind != ChaosEventKind::kControllerOutage &&
      e.kind != ChaosEventKind::kSlbFlap) {
    return "entity 'all' is only valid for controller-outage / slb-flap";
  }
  return std::nullopt;
}

/// The k=v key each kind uses for its entity in the text form.
const char* entity_key(ChaosEventKind k) {
  switch (k) {
    case ChaosEventKind::kLinkLoss:
    case ChaosEventKind::kPartition:
    case ChaosEventKind::kSpineDrop:
    case ChaosEventKind::kCongestion:
      return "switch";
    case ChaosEventKind::kTorBlackhole:
      return "pod";
    case ChaosEventKind::kServerCrash:
    case ChaosEventKind::kClockSkew:
      return "server";
    case ChaosEventKind::kControllerOutage:
    case ChaosEventKind::kSlbFlap:
    case ChaosEventKind::kServeRestart:
      return "replica";
    default:
      return nullptr;  // no entity in the text form
  }
}

/// The k=v key each kind uses for its SimTime param.
const char* param_key(ChaosEventKind k) {
  switch (k) {
    case ChaosEventKind::kSlbFlap: return "period";
    case ChaosEventKind::kUploadDelay: return "delay";
    case ChaosEventKind::kClockSkew: return "skew";
    default: return nullptr;
  }
}

bool kind_has_prob(ChaosEventKind k) {
  return k == ChaosEventKind::kLinkLoss || k == ChaosEventKind::kUploadFailure ||
         k == ChaosEventKind::kTorBlackhole || k == ChaosEventKind::kSpineDrop ||
         k == ChaosEventKind::kCongestion;
}

}  // namespace

const char* chaos_event_kind_name(ChaosEventKind kind) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "?";
}

std::optional<ChaosEventKind> parse_chaos_event_kind(std::string_view name) {
  for (const KindName& kn : kKindNames) {
    if (name == kn.name) return kn.kind;
  }
  return std::nullopt;
}

std::optional<std::string> validate_plan(const ChaosPlan& plan) {
  if (plan.duration <= 0) return std::string("duration must be positive");
  if (plan.settle < 0) return std::string("settle must be >= 0");
  if (plan.events.size() > kMaxPlanEvents) return std::string("too many events");
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    if (auto err = validate_event(plan.events[i], plan.duration)) {
      return "event " + std::to_string(i + 1) + ": " + *err;
    }
  }
  return std::nullopt;
}

std::optional<ChaosPlan> parse_plan(std::string_view text, std::string* error) {
  auto fail = [error](std::size_t line_no, const std::string& why) -> std::optional<ChaosPlan> {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + why;
    return std::nullopt;
  };
  if (text.size() > kMaxPlanBytes) return fail(0, "plan exceeds size cap");

  ChaosPlan plan;
  plan.events.clear();
  bool saw_header = false;
  // `end` omitted in the text means "until end of plan"; resolved after the
  // duration directive is known (directives may come in any order).
  std::vector<std::size_t> open_ended;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (line_no == 1 && line != kHeader) return fail(line_no, "bad header");
      if (line == kHeader) saw_header = true;
      continue;
    }

    std::size_t sp = line.find(' ');
    std::string_view word = line.substr(0, sp);
    std::string_view rest = sp == std::string_view::npos ? std::string_view{}
                                                         : trim(line.substr(sp + 1));
    if (word == "seed") {
      if (!parse_u64(rest, plan.seed)) return fail(line_no, "bad seed");
    } else if (word == "duration") {
      if (!parse_time(rest, plan.duration)) return fail(line_no, "bad duration");
    } else if (word == "settle") {
      if (!parse_time(rest, plan.settle)) return fail(line_no, "bad settle");
    } else if (word == "heal") {
      if (rest == "on") plan.heal = true;
      else if (rest == "off") plan.heal = false;
      else return fail(line_no, "heal takes 'on' or 'off'");
    } else if (word == "event") {
      if (plan.events.size() >= kMaxPlanEvents) return fail(line_no, "too many events");
      std::size_t ksp = rest.find(' ');
      std::string_view kind_name = rest.substr(0, ksp);
      auto kind = parse_chaos_event_kind(kind_name);
      if (!kind) return fail(line_no, "unknown event kind");
      ChaosEvent e;
      e.kind = *kind;
      bool saw_end = false;
      std::string_view fields = ksp == std::string_view::npos ? std::string_view{}
                                                              : trim(rest.substr(ksp + 1));
      while (!fields.empty()) {
        std::size_t fsp = fields.find(' ');
        std::string_view field = fields.substr(0, fsp);
        fields = fsp == std::string_view::npos ? std::string_view{}
                                               : trim(fields.substr(fsp + 1));
        std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) return fail(line_no, "field without '='");
        std::string_view key = field.substr(0, eq);
        std::string_view value = field.substr(eq + 1);
        if (key == "start") {
          if (!parse_time(value, e.start)) return fail(line_no, "bad start");
        } else if (key == "end") {
          if (!parse_time(value, e.end)) return fail(line_no, "bad end");
          saw_end = true;
        } else if (key == "prob") {
          if (!kind_has_prob(e.kind)) return fail(line_no, "prob not valid for this kind");
          if (!parse_double(value, e.magnitude)) return fail(line_no, "bad prob");
        } else if (entity_key(e.kind) != nullptr && key == entity_key(e.kind)) {
          if (!parse_u32(value, e.entity)) return fail(line_no, "bad entity");
        } else if (param_key(e.kind) != nullptr && key == param_key(e.kind)) {
          if (!parse_time(value, e.param)) return fail(line_no, "bad time value");
        } else {
          return fail(line_no, "unknown field '" + std::string(key) + "'");
        }
      }
      if (e.kind == ChaosEventKind::kPartition) e.magnitude = 1.0;
      if (!saw_end) {
        if (kind_uses_window(e.kind)) open_ended.push_back(plan.events.size());
        else e.end = e.start;
      }
      plan.events.push_back(e);
    } else {
      return fail(line_no, "unknown directive '" + std::string(word) + "'");
    }
  }
  if (!saw_header) return fail(1, "missing '# pingmesh chaos plan v1' header");
  for (std::size_t idx : open_ended) plan.events[idx].end = plan.duration;
  if (auto err = validate_plan(plan)) return fail(0, *err);
  return plan;
}

std::string to_text(const ChaosPlan& plan) {
  std::string out;
  out += kHeader;
  out += '\n';
  out += "seed " + std::to_string(plan.seed) + '\n';
  out += "duration " + format_time(plan.duration) + '\n';
  out += "settle " + format_time(plan.settle) + '\n';
  if (plan.heal) out += "heal on\n";
  for (const ChaosEvent& e : plan.events) {
    out += "event ";
    out += chaos_event_kind_name(e.kind);
    if (const char* ek = entity_key(e.kind)) {
      out += ' ';
      out += ek;
      out += '=';
      out += e.entity == kEntityAll ? "all" : std::to_string(e.entity);
    }
    if (kind_has_prob(e.kind)) out += " prob=" + format_prob(e.magnitude);
    if (const char* pk = param_key(e.kind)) {
      out += ' ';
      out += pk;
      out += '=';
      out += format_time(e.param);
    }
    out += " start=" + format_time(e.start);
    if (kind_uses_window(e.kind)) out += " end=" + format_time(e.end);
    out += '\n';
  }
  return out;
}

}  // namespace pingmesh::chaos

// Property-based system invariants checked after a chaos run.
//
// Each invariant is a property that must hold for ANY (seed, plan), not an
// expectation about one scripted scenario — the random-plan generator
// exercises them across the whole fault space (DESIGN.md §11):
//
//   record-conservation   every launched probe is uploaded, discarded, or
//                         still buffered — per agent and fleet-wide;
//   cosmos-ledger         appended == live + expired on the latency stream,
//                         and uploads acknowledged to agents all arrived;
//   fail-closed           no agent was ever still probing at its third
//                         consecutive failed pinglist fetch (§3.4.2);
//   streaming-batch       the sliding windows ingested exactly the record
//                         stream the uploads delivered (partitioned into
//                         ingested / skipped / late, nothing lost);
//   blame-localization    a single-switch loss fault shows up worst on pod
//                         pairs under that switch, nowhere else;
//   decode-integrity      the extent scan path decoded every uploaded row;
//                         zero rows dropped unless the plan corrupts
//                         extents deliberately (then not applicable);
//   bounded-buffer        no agent's buffer exceeded its configured cap;
//   rollup-recovery       every restarted query replica rebuilt from the
//                         persisted rollup segments + WAL digest-identical
//                         to the durable writer — at each restart and at
//                         run end — with the rollup conservation ledger
//                         intact and no 503 while a replica was alive;
//   blackhole-repaired    under healing, every injected ToR black-hole that
//                         the loop could plausibly catch (strong enough,
//                         window long enough, detection not masked by an
//                         upload/controller outage) saw a repair executed
//                         on its switch within the repair deadline;
//   corroborated-repair   under healing, no repair ever executed without a
//                         prior batch-corroborated blame on that switch —
//                         streaming alerts alone must never reboot gear.
//
// Checks that don't apply to a given plan (e.g. blame-localization for a
// plan without a lone network fault) report applicable=false rather than a
// vacuous pass, so the report distinguishes "held" from "not exercised".
#pragma once

#include <string>
#include <vector>

#include "chaos/plan.h"
#include "core/simulation.h"

namespace pingmesh::chaos {

struct InvariantFinding {
  std::string name;
  bool ok = true;
  bool applicable = true;
  std::string detail;  ///< human-readable evidence (counts, offending agent)
};

struct InvariantReport {
  std::vector<InvariantFinding> findings;

  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] const InvariantFinding* find(std::string_view name) const;
  /// Deterministic multi-line rendering (the 1-vs-N-worker identity test
  /// compares these byte-for-byte).
  [[nodiscard]] std::string to_text() const;
};

/// Fleet-wide counter roll-up collected alongside the invariant checks;
/// chaos run results carry one so tests and `pingmeshctl chaos` can print
/// the ledger without re-walking the fleet.
struct FleetTotals {
  std::uint64_t probes_launched = 0;
  std::uint64_t records_uploaded = 0;
  std::uint64_t records_discarded = 0;
  std::uint64_t records_buffered = 0;
  std::uint64_t records_logged = 0;
  std::uint64_t log_dup_avoided = 0;
  std::uint64_t uploads_ok = 0;
  std::uint64_t uploads_failed = 0;
  std::uint64_t cosmos_appended = 0;
  std::uint64_t cosmos_expired = 0;
  std::uint64_t cosmos_live = 0;
  std::uint64_t cosmos_corrupt_records = 0;
  std::size_t slb_backends = 0;
  std::size_t slb_healthy = 0;
  std::uint64_t slb_half_open_trials = 0;
};

[[nodiscard]] FleetTotals collect_totals(const core::PingmeshSimulation& sim);

/// Outcome of the serving-tier harness a chaos run attaches when the plan
/// holds serve-restart events (engine.cc): every restart's recovered
/// digest compared against the durable writer's, final cross-replica
/// digest agreement, the rollup conservation ledger, and front-door
/// availability while at least one replica was alive. Feeds the
/// "rollup-recovery" invariant.
struct ServeChaosOutcome {
  bool ran = false;
  std::size_t restarts = 0;
  std::size_t digest_matches = 0;     ///< restart recovered digest == writer's
  std::size_t digest_mismatches = 0;
  bool final_digests_equal = false;   ///< every live replica == writer at end
  bool conservation_ok = false;       ///< writer + replicas ledger identities
  std::uint64_t queries = 0;          ///< periodic front-door probes issued
  std::uint64_t failed_with_replicas = 0;  ///< 503s while a replica was alive
};

/// Summary of one closed-loop healing incident, mirrored out of
/// heal::Incident by the engine so the invariant checker (and the soak
/// report) consume a plain value type instead of including the heal module.
struct HealIncidentSummary {
  SwitchId sw;          ///< blamed switch; invalid for escalate/expire
  std::string state;    ///< incident_state_name()
  std::string action;   ///< incident_action_name()
  SimTime detect = 0;
  SimTime corroborate = 0;
  SimTime repair = 0;
  SimTime recover = 0;
  bool deferred = false;
  bool escalated_rma = false;
  std::size_t triggers = 0;
  double sla_before = -1.0;
  double sla_after = -1.0;
};

/// Outcome of the healing loop a chaos run attaches when the plan sets
/// `heal on` (engine.cc). Feeds the blackhole-repaired and
/// corroborated-repair invariants and the soak report.
struct HealChaosOutcome {
  bool ran = false;
  std::uint64_t triggers_seen = 0;
  std::vector<HealIncidentSummary> incidents;
  // Mirrored from the RepairService before the simulation is torn down.
  std::uint64_t reloads_executed = 0;
  std::uint64_t rmas_executed = 0;
  std::uint64_t deferred_executed = 0;  ///< budget-parked, later executed
  std::uint64_t deferred_pending = 0;   ///< still parked at run end
};

/// Repair deadline the blackhole-repaired invariant holds the loop to:
/// inject -> detect -> corroborate -> executed repair within this much sim
/// time. Detection lands within ~2 simulated minutes (the perf gate);
/// corroboration adds a batch lookback plus loop ticks.
constexpr SimTime kHealRepairDeadline = minutes(6);

/// Run every invariant against the post-run simulation state. `plan` gates
/// plan-dependent checks (blame localization needs a lone network fault);
/// `serve` (optional) feeds the rollup-recovery check, `heal` (optional)
/// the closed-loop repair checks — when null or not ran, those findings
/// report not-applicable.
[[nodiscard]] InvariantReport check_invariants(const core::PingmeshSimulation& sim,
                                               const ChaosPlan& plan,
                                               const ServeChaosOutcome* serve = nullptr,
                                               const HealChaosOutcome* heal = nullptr);

}  // namespace pingmesh::chaos

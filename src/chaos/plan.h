// ChaosPlan — a seeded, declarative schedule of timed fault events.
//
// A plan is the unit of chaos testing (DESIGN.md §11): a seed, a run
// duration, a settle period, and a list of events, each applied and
// reverted at exact sim ticks by the ChaosInjector. The determinism
// contract is (seed, plan) => bit-identical run, at any worker count, so a
// plan file is a complete reproducer — the random-plan generator prints
// shrunken failing plans in this format and `pingmeshctl chaos run` replays
// them.
//
// Text format (hardened like the other untrusted-byte parsers; fuzzed by
// tools/fuzz/fuzz_chaos_plan.cc):
//
//   # pingmesh chaos plan v1
//   seed 42
//   duration 30m
//   settle 10m
//   event link-loss switch=12 prob=0.01 start=5m end=15m
//   event controller-outage replica=all start=4m end=16m
//   heal on
//   event blackhole pod=3 prob=0.5 start=5m
//
// `heal on` attaches the self-healing loop to the run; `blackhole`
// (entity = pod index, prob = corrupted entry fraction), `spine-drop`
// (silent random drops on a spine) and `congestion` are the fault kinds
// the loop repairs or deliberately ignores.
//
// Times take an integer plus a unit suffix (ns/us/ms/s/m/h/d); the
// serializer always emits exact nanoseconds so round-trips are lossless.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace pingmesh::chaos {

enum class ChaosEventKind : std::uint8_t {
  kLinkLoss,          ///< silent random drop on one switch (prob = magnitude)
  kPartition,         ///< 100% drop on one switch (ToR/leaf/spine cut off)
  kServerCrash,       ///< one server down, restarts at end
  kControllerOutage,  ///< controller replica (or all) unreachable
  kSlbFlap,           ///< replica toggles up/down every `param` until end
  kUploadFailure,     ///< Cosmos front-end fails uploads with prob = magnitude
  kUploadDelay,       ///< accepted uploads land with appended_at += param
  kExtentCorruption,  ///< newest extent's payload bit-flipped at start
  kClockSkew,         ///< one agent stamps records at now + param (signed)
  kServeRestart,      ///< query replica killed at start, recovered at end
  kTorBlackhole,      ///< ToR black-holes a fraction of src/dst patterns
  kSpineDrop,         ///< silent random drop on a spine (RMA-class fault)
  kCongestion,        ///< queue inflation + overflow drops on one switch
};

/// Number of distinct event kinds (generator/shrinker iteration).
constexpr int kChaosEventKindCount = 13;

const char* chaos_event_kind_name(ChaosEventKind kind);
std::optional<ChaosEventKind> parse_chaos_event_kind(std::string_view name);

/// `entity` value meaning "every instance" (controller-outage, slb-flap).
constexpr std::uint32_t kEntityAll = 0xffffffffu;

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kLinkLoss;
  SimTime start = 0;        ///< activation tick
  SimTime end = 0;          ///< reversion tick ([start, end) window)
  std::uint32_t entity = 0; ///< switch / server / replica index (kind-specific)
  double magnitude = 0.0;   ///< probability for link-loss / upload-failure
  SimTime param = 0;        ///< flap period / upload delay / clock skew (signed)

  bool operator==(const ChaosEvent&) const = default;
};

struct ChaosPlan {
  std::uint64_t seed = 42;
  SimTime duration = minutes(30);  ///< chaos window the events live in
  SimTime settle = minutes(10);    ///< fault-free tail before invariants run
  /// Attach the self-healing loop (heal::HealingLoop) to the run: streaming
  /// alerts are corroborated against the batch localizers and confirmed
  /// blame drives the repair service, which actually clears the injected
  /// fault. Serialized as a `heal on` directive so a plan file remains a
  /// complete reproducer; the repair invariants only apply when set.
  bool heal = false;
  std::vector<ChaosEvent> events;

  bool operator==(const ChaosPlan&) const = default;
};

/// Hard caps enforced by the parser (adversarial-input bounds).
constexpr std::size_t kMaxPlanBytes = 256 * 1024;
constexpr std::size_t kMaxPlanEvents = 1024;

/// Parse the text format. Returns nullopt on any malformed input; when
/// `error` is non-null it receives a one-line diagnostic with the line
/// number. Never throws; safe on arbitrary bytes.
std::optional<ChaosPlan> parse_plan(std::string_view text, std::string* error = nullptr);

/// Serialize to the canonical text form: parse_plan(to_text(p)) == p for
/// any plan that parses or validates.
std::string to_text(const ChaosPlan& plan);

/// Structural validation shared by parse_plan and programmatic plan
/// construction: window ordering, probability ranges, flap-toggle bounds.
/// Returns nullopt when valid, else a diagnostic.
std::optional<std::string> validate_plan(const ChaosPlan& plan);

}  // namespace pingmesh::chaos

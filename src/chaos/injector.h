// ChaosInjector — applies a ChaosPlan to a live PingmeshSimulation.
//
// arm() translates every plan event into the simulation's existing fault
// surfaces: windowed netsim faults for network events, and scheduler events
// (which run on the driver thread between agent ticks) for everything that
// flips component state — controller replicas, SLB flaps, uploader chaos
// knobs, extent corruption, agent clock skew. Nothing here introduces a new
// failure mechanism; the injector is the single front door to the knobs
// that used to be scattered across tests (DESIGN.md §11).
//
// Entity indices in events are taken modulo the relevant population
// (switches, servers, replicas), so randomly generated plans are always
// applicable to any topology.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "chaos/plan.h"
#include "core/simulation.h"

namespace pingmesh::chaos {

/// The switch a switch-targeting event resolves to on `topo` (the same
/// modulo clamping the injector applies when arming). Shared with the
/// invariant checker and the healing-loop soak so "which switch did the
/// plan fault?" has exactly one answer. Only meaningful for kLinkLoss,
/// kPartition, kTorBlackhole, kSpineDrop and kCongestion.
SwitchId resolve_event_switch(const topo::Topology& topo, const ChaosEvent& event);

class ChaosInjector {
 public:
  /// Serving-tier fault surface (serve-restart events). The simulation has
  /// no built-in query replicas — the chaos engine owns a ServeReplicaSet
  /// and exposes its kill/restart here; without hooks the event is a no-op.
  struct ServeHooks {
    std::function<void(std::size_t)> kill;
    std::function<void(std::size_t)> restart;
    std::size_t replica_count = 0;
  };

  explicit ChaosInjector(core::PingmeshSimulation& sim) : sim_(&sim) {}

  /// Schedule every event of `plan` onto the simulation. Must be called
  /// before the events' start times (normally at sim time 0). The plan must
  /// validate; throws std::invalid_argument otherwise.
  void arm(const ChaosPlan& plan);

  /// Install the serving-tier hooks; call before arm().
  void set_serve_hooks(ServeHooks hooks) { serve_ = std::move(hooks); }

  /// Events actually armed (after entity clamping; for introspection).
  [[nodiscard]] std::size_t armed_events() const { return armed_; }

 private:
  void arm_event(const ChaosEvent& event, const ChaosPlan& plan,
                 std::size_t event_index);

  core::PingmeshSimulation* sim_;
  ServeHooks serve_;
  std::size_t armed_ = 0;
};

}  // namespace pingmesh::chaos

// Chaos run engine: execute a ChaosPlan against a fresh simulation and
// check the system invariants; generate random plans; shrink failing plans
// to minimal reproducers (DESIGN.md §11).
//
// The determinism contract: run_plan is a pure function of
// (plan, options) — same plan, same options => byte-identical record
// stream and invariant report, at any worker_threads value. That is what
// makes a shrunken plan file a complete reproducer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "chaos/invariants.h"
#include "chaos/plan.h"
#include "core/simulation.h"

namespace pingmesh::chaos {

struct ChaosRunOptions {
  int worker_threads = 1;
  /// Deliberately disable the agent's §3.4.2 fail-closed threshold — the
  /// planted defect the random-plan hunter must find and shrink. Test
  /// infrastructure only.
  bool break_fail_closed = false;
  /// Base SimulationConfig; null = core::chaos_test_config(). The plan's
  /// seed and the options' worker_threads always override the base.
  const core::SimulationConfig* base_config = nullptr;
};

struct ChaosRunResult {
  std::uint64_t total_probes = 0;
  /// CSV-encoded stream of every record that reached Cosmos, in scan order
  /// (the byte string the 1-vs-N-worker identity test compares).
  std::string records;
  InvariantReport report;
  FleetTotals totals;
  /// Serving-tier harness outcome; ran only when the plan holds
  /// serve-restart events (otherwise default-initialized, ran == false).
  ServeChaosOutcome serve;
  /// Closed-loop healing outcome; ran only when the plan sets `heal on`
  /// (otherwise default-initialized, ran == false).
  HealChaosOutcome heal;

  [[nodiscard]] bool ok() const { return report.all_ok(); }
};

/// Build a simulation, arm the plan, run duration + settle, check
/// invariants. Throws std::invalid_argument for invalid plans.
ChaosRunResult run_plan(const ChaosPlan& plan, const ChaosRunOptions& options = {});

/// Seeded random plan: 1–5 events drawn from the full kind taxonomy with
/// magnitudes/windows in ranges that matter at chaos_test_config scale.
/// Pure function of (seed, duration).
ChaosPlan generate_random_plan(std::uint64_t seed, SimTime duration = minutes(30));

/// Greedy ddmin-style shrink: repeatedly drop single events while
/// `still_fails(candidate)` stays true. Returns a plan that still fails but
/// loses any one more event only by passing.
ChaosPlan shrink_plan(const ChaosPlan& plan,
                      const std::function<bool(const ChaosPlan&)>& still_fails);

struct HuntResult {
  bool found = false;
  ChaosPlan minimal;        ///< shrunken failing plan (valid when found)
  std::uint64_t seed = 0;   ///< generator seed that produced the failure
  int runs = 0;             ///< total simulations executed (search + shrink)
};

/// Random-plan search: generate and run plans for seeds start_seed,
/// start_seed+1, ... until one violates an invariant (then shrink it) or
/// `attempts` plans all pass.
HuntResult hunt(std::uint64_t start_seed, int attempts,
                const ChaosRunOptions& options = {});

}  // namespace pingmesh::chaos

#include "chaos/engine.h"

#include <algorithm>
#include <memory>

#include "agent/record.h"
#include "chaos/injector.h"
#include "common/rng.h"
#include "core/scenarios.h"
#include "heal/loop.h"
#include "serve/replica.h"

namespace pingmesh::chaos {

namespace {

/// Rollup geometry for chaos runs: tiers shrunk (1 min → 10 min → 1 h,
/// 5 s grace) so plenty of seals — and therefore WAL seal records and
/// tier-1 checkpoint segments — happen inside a 30–40 minute plan.
serve::RollupConfig chaos_rollup_config() {
  serve::RollupConfig cfg;
  cfg.tier_width[0] = minutes(1);
  cfg.tier_width[1] = minutes(10);
  cfg.tier_width[2] = hours(1);
  cfg.seal_grace = seconds(5);
  return cfg;
}

}  // namespace

ChaosRunResult run_plan(const ChaosPlan& plan, const ChaosRunOptions& options) {
  core::SimulationConfig cfg = options.base_config != nullptr
                                   ? *options.base_config
                                   : core::chaos_test_config(plan.seed);
  cfg.seed = plan.seed;
  cfg.worker_threads = options.worker_threads;
  if (options.break_fail_closed) {
    cfg.agent.controller_failure_threshold = 1 << 30;
  }

  core::PingmeshSimulation sim(cfg);
  ChaosInjector injector(sim);

  // Attach the replicated serving tier only when the plan exercises it, so
  // plans without serve-restart events keep their exact pre-existing
  // byte-for-byte behavior (the harness writes WAL/segment streams into
  // the same CosmosStore).
  const bool wants_serve =
      std::any_of(plan.events.begin(), plan.events.end(), [](const ChaosEvent& e) {
        return e.kind == ChaosEventKind::kServeRestart;
      });
  ChaosRunResult result;
  std::unique_ptr<serve::ServeReplicaSet> replicas;
  if (wants_serve) {
    result.serve.ran = true;
    replicas = std::make_unique<serve::ServeReplicaSet>(
        sim.topology(), &sim.services(), chaos_rollup_config(), sim.cosmos());
    sim.add_record_tap(replicas.get());

    ChaosInjector::ServeHooks hooks;
    hooks.replica_count = replicas->replica_count();
    hooks.kill = [rs = replicas.get()](std::size_t i) { rs->kill(i); };
    hooks.restart = [rs = replicas.get(), out = &result.serve](std::size_t i) {
      rs->restart(i);
      ++out->restarts;
      // The WAL is write-ahead and complete, so the recovered store must be
      // digest-identical to the durable writer at this instant.
      if (rs->replica_store(i)->digest() == rs->writer().store().digest()) {
        ++out->digest_matches;
      } else {
        ++out->digest_mismatches;
      }
    };
    injector.set_serve_hooks(std::move(hooks));

    // Periodic front-door probe: a 503 is only acceptable while every
    // replica is dead (graceful degradation, never a blackhole).
    sim.scheduler().schedule_every(minutes(1), [rs = replicas.get(),
                                                out = &result.serve](SimTime) {
      net::HttpRequest req;
      req.method = "GET";
      req.path = "/query/heatmap?minutes=10";
      const std::size_t alive = rs->alive_count();
      serve::ReplicaQueryResult r = rs->query(req);
      ++out->queries;
      if (r.response.status == 503 && alive > 0) ++out->failed_with_replicas;
      return true;
    });
  }

  // Attach the self-healing loop only when the plan opts in, so non-healing
  // plans keep their exact pre-existing byte-for-byte behavior (the loop's
  // repairs mutate fault state mid-run).
  std::unique_ptr<heal::HealingLoop> healer;
  if (plan.heal) {
    result.heal.ran = true;
    healer = std::make_unique<heal::HealingLoop>(sim);
    healer->attach();
  }

  injector.arm(plan);
  sim.run_for(plan.duration + plan.settle);

  if (healer) {
    result.heal.triggers_seen = healer->triggers_seen();
    for (const autopilot::RepairRecord& r : sim.repair().history()) {
      if (!r.executed) continue;
      if (r.action == autopilot::RepairAction::kReload) ++result.heal.reloads_executed;
      else ++result.heal.rmas_executed;
    }
    result.heal.deferred_executed = sim.repair().deferred_executed_total();
    result.heal.deferred_pending = sim.repair().deferred().size();
    for (const heal::Incident& inc : healer->incidents()) {
      HealIncidentSummary s;
      s.sw = inc.sw;
      s.state = heal::incident_state_name(inc.state);
      s.action = heal::incident_action_name(inc.action);
      s.detect = inc.detect;
      s.corroborate = inc.corroborate;
      s.repair = inc.repair;
      s.recover = inc.recover;
      s.deferred = inc.deferred;
      s.escalated_rma = inc.escalated_rma;
      s.triggers = inc.triggers.size();
      s.sla_before = inc.sla_before;
      s.sla_after = inc.sla_after;
      result.heal.incidents.push_back(std::move(s));
    }
  }

  if (replicas) {
    const std::uint64_t want = replicas->writer().store().digest();
    result.serve.final_digests_equal = true;
    result.serve.conservation_ok = replicas->writer().store().check_conservation();
    for (std::size_t i = 0; i < replicas->replica_count(); ++i) {
      const serve::RollupStore* store = replicas->replica_store(i);
      if (store == nullptr) continue;  // event window still open at run end
      if (store->digest() != want) result.serve.final_digests_equal = false;
      if (!store->check_conservation()) result.serve.conservation_ok = false;
    }
  }

  result.total_probes = sim.total_probes();
  result.records = agent::encode_batch(sim.records_between(0, sim.now() + 1));
  result.report = check_invariants(sim, plan, wants_serve ? &result.serve : nullptr,
                                   plan.heal ? &result.heal : nullptr);
  result.totals = collect_totals(sim);
  return result;
}

ChaosPlan generate_random_plan(std::uint64_t seed, SimTime duration) {
  Rng rng(mix_key(seed, 0xC4A05917u));
  ChaosPlan plan;
  plan.seed = seed;
  plan.duration = duration;
  plan.settle = duration / 3;

  auto rand_window = [&rng, duration](SimTime min_len, SimTime max_len) {
    SimTime latest_start = std::max<SimTime>(seconds(1), duration - min_len);
    SimTime start = seconds(rng.uniform_u32(
        static_cast<std::uint32_t>(latest_start / kNanosPerSecond)));
    SimTime len = min_len + seconds(rng.uniform_u32(static_cast<std::uint32_t>(
                                std::max<SimTime>(1, (max_len - min_len)) /
                                kNanosPerSecond)));
    return std::pair<SimTime, SimTime>{start, std::min(start + len, duration)};
  };

  int n = 1 + static_cast<int>(rng.uniform_u32(5));
  bool has_heal_kind = false;
  for (int i = 0; i < n; ++i) {
    ChaosEvent e;
    std::uint32_t draw = rng.uniform_u32(100);
    if (draw < 25) {
      // Controller outage, weighted toward all-replica (the scenario that
      // exercises fail-closed) and toward windows long enough to span
      // several pinglist refreshes at the 2-minute chaos cadence.
      e.kind = ChaosEventKind::kControllerOutage;
      e.entity = rng.chance(0.6) ? kEntityAll : rng.uniform_u32(3);
      e.start = minutes(2) + seconds(rng.uniform_u32(8 * 60));
      e.end = std::min<SimTime>(e.start + minutes(10) + seconds(rng.uniform_u32(4 * 60)),
                                duration);
    } else if (draw < 45) {
      e.kind = ChaosEventKind::kLinkLoss;
      e.entity = rng.uniform_u32(4096);
      e.magnitude = rng.uniform(0.005, 0.05);
      auto [s, t] = rand_window(minutes(5), minutes(15));
      e.start = s;
      e.end = t;
    } else if (draw < 55) {
      e.kind = ChaosEventKind::kServerCrash;
      e.entity = rng.uniform_u32(4096);
      auto [s, t] = rand_window(minutes(3), minutes(12));
      e.start = s;
      e.end = t;
    } else if (draw < 63) {
      e.kind = ChaosEventKind::kUploadFailure;
      e.magnitude = rng.uniform(0.1, 0.9);
      auto [s, t] = rand_window(minutes(3), minutes(10));
      e.start = s;
      e.end = t;
    } else if (draw < 70) {
      e.kind = ChaosEventKind::kSlbFlap;
      e.entity = rng.chance(0.5) ? kEntityAll : rng.uniform_u32(3);
      e.param = seconds(30 + rng.uniform_u32(180));
      auto [s, t] = rand_window(minutes(4), minutes(12));
      e.start = s;
      e.end = t;
    } else if (draw < 76) {
      e.kind = ChaosEventKind::kClockSkew;
      e.entity = rng.uniform_u32(4096);
      e.param = seconds(1 + rng.uniform_u32(120));
      if (rng.chance(0.5)) e.param = -e.param;
      auto [s, t] = rand_window(minutes(3), minutes(12));
      e.start = s;
      e.end = t;
    } else if (draw < 81) {
      e.kind = ChaosEventKind::kUploadDelay;
      e.param = seconds(30 + rng.uniform_u32(600));
      auto [s, t] = rand_window(minutes(3), minutes(10));
      e.start = s;
      e.end = t;
    } else if (draw < 85) {
      e.kind = ChaosEventKind::kPartition;
      e.entity = rng.uniform_u32(4096);
      e.magnitude = 1.0;
      auto [s, t] = rand_window(minutes(3), minutes(10));
      e.start = s;
      e.end = t;
    } else if (draw < 88) {
      e.kind = ChaosEventKind::kExtentCorruption;
      e.start = minutes(5) + seconds(rng.uniform_u32(15 * 60));
      e.end = e.start;
    } else if (draw < 94) {
      // Partial ToR black-hole, strong and long enough that the healing
      // loop must catch and repair it within the deadline invariant.
      e.kind = ChaosEventKind::kTorBlackhole;
      e.entity = rng.uniform_u32(4096);
      e.magnitude = rng.uniform(0.25, 0.7);
      auto [s, t] = rand_window(minutes(8), minutes(18));
      e.start = s;
      e.end = t;
      has_heal_kind = true;
    } else if (draw < 97) {
      e.kind = ChaosEventKind::kSpineDrop;
      e.entity = rng.uniform_u32(4096);
      e.magnitude = rng.uniform(0.05, 0.15);
      auto [s, t] = rand_window(minutes(8), minutes(16));
      e.start = s;
      e.end = t;
      has_heal_kind = true;
    } else {
      e.kind = ChaosEventKind::kCongestion;
      e.entity = rng.uniform_u32(4096);
      e.magnitude = rng.uniform(0.05, 0.3);
      auto [s, t] = rand_window(minutes(3), minutes(8));
      e.start = s;
      e.end = t;
      has_heal_kind = true;
    }
    plan.events.push_back(e);
  }
  // Heal-kind plans always run the loop; a slice of the rest does too, so
  // the hunt exercises healing against faults the loop must NOT touch.
  plan.heal = has_heal_kind || rng.chance(0.35);
  return plan;
}

ChaosPlan shrink_plan(const ChaosPlan& plan,
                      const std::function<bool(const ChaosPlan&)>& still_fails) {
  ChaosPlan current = plan;
  bool progressed = true;
  while (progressed && current.events.size() > 1) {
    progressed = false;
    for (std::size_t i = 0; i < current.events.size(); ++i) {
      ChaosPlan candidate = current;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progressed = true;
        break;  // restart the removal pass on the smaller plan
      }
    }
  }
  return current;
}

HuntResult hunt(std::uint64_t start_seed, int attempts, const ChaosRunOptions& options) {
  HuntResult result;
  for (int i = 0; i < attempts; ++i) {
    std::uint64_t seed = start_seed + static_cast<std::uint64_t>(i);
    ChaosPlan plan = generate_random_plan(seed);
    ++result.runs;
    if (run_plan(plan, options).ok()) continue;
    result.found = true;
    result.seed = seed;
    result.minimal = shrink_plan(plan, [&result, &options](const ChaosPlan& candidate) {
      ++result.runs;
      return !run_plan(candidate, options).ok();
    });
    return result;
  }
  return result;
}

}  // namespace pingmesh::chaos

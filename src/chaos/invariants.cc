#include "chaos/invariants.h"

#include <algorithm>
#include <map>
#include <optional>

#include "agent/counters.h"
#include "chaos/injector.h"
#include "dsa/cosmos.h"

namespace pingmesh::chaos {

namespace {

/// §3.4.2 hard contract: by the third consecutive missed pinglist fetch the
/// agent must have stopped probing. Checked against this constant, not the
/// configured threshold, so a run with the threshold disabled (the
/// deliberately-broken mode the plan hunter must catch) still violates.
constexpr int kFailClosedContract = 3;

/// Minimum probes a pod pair needs in the fault window before the blame
/// check trusts its drop-rate estimate.
constexpr std::uint64_t kBlameMinProbes = 50;

InvariantFinding make(std::string name, bool ok, std::string detail) {
  InvariantFinding f;
  f.name = std::move(name);
  f.ok = ok;
  f.detail = std::move(detail);
  return f;
}

InvariantFinding not_applicable(std::string name, std::string why) {
  InvariantFinding f;
  f.name = std::move(name);
  f.applicable = false;
  f.detail = std::move(why);
  return f;
}

InvariantFinding check_record_conservation(const core::PingmeshSimulation& sim) {
  std::size_t n = sim.topology().server_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = sim.agent(ServerId{static_cast<std::uint32_t>(i)});
    std::uint64_t accounted =
        a.records_uploaded() + a.records_discarded() + a.buffered_records();
    if (a.probes_launched() != accounted) {
      return make("record-conservation", false,
                  "agent " + a.name() + ": launched " +
                      std::to_string(a.probes_launched()) + " != uploaded " +
                      std::to_string(a.records_uploaded()) + " + discarded " +
                      std::to_string(a.records_discarded()) + " + buffered " +
                      std::to_string(a.buffered_records()));
    }
  }
  FleetTotals t = collect_totals(sim);
  return make("record-conservation", true,
              "launched=" + std::to_string(t.probes_launched) +
                  " uploaded=" + std::to_string(t.records_uploaded) +
                  " discarded=" + std::to_string(t.records_discarded) +
                  " buffered=" + std::to_string(t.records_buffered));
}

InvariantFinding check_cosmos_ledger(const core::PingmeshSimulation& sim) {
  const dsa::CosmosStream* stream = sim.cosmos().find(dsa::kLatencyStream);
  FleetTotals t = collect_totals(sim);
  if (stream == nullptr) {
    return make("cosmos-ledger", t.records_uploaded == 0,
                "no latency stream; fleet reported " +
                    std::to_string(t.records_uploaded) + " uploaded records");
  }
  std::uint64_t appended = stream->appended_records_total();
  std::uint64_t live = stream->total_records();
  std::uint64_t expired = stream->expired_records_total();
  if (appended != live + expired) {
    return make("cosmos-ledger", false,
                "appended " + std::to_string(appended) + " != live " +
                    std::to_string(live) + " + expired " + std::to_string(expired));
  }
  if (t.records_uploaded != appended) {
    return make("cosmos-ledger", false,
                "agents uploaded " + std::to_string(t.records_uploaded) +
                    " records but the stream appended " + std::to_string(appended));
  }
  return make("cosmos-ledger", true,
              "appended=" + std::to_string(appended) + " live=" + std::to_string(live) +
                  " expired=" + std::to_string(expired) +
                  " corrupt=" + std::to_string(stream->corrupt_records()));
}

InvariantFinding check_fail_closed(const core::PingmeshSimulation& sim) {
  std::size_t n = sim.topology().server_count();
  int worst = 0;
  std::string offender;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = sim.agent(ServerId{static_cast<std::uint32_t>(i)});
    if (a.peak_fetch_failures_while_probing() > worst) {
      worst = a.peak_fetch_failures_while_probing();
      offender = a.name();
    }
  }
  if (worst >= kFailClosedContract) {
    return make("fail-closed", false,
                "agent " + offender + " was still probing at " + std::to_string(worst) +
                    " consecutive failed fetches (contract: stop before " +
                    std::to_string(kFailClosedContract) + ")");
  }
  return make("fail-closed", true,
              "peak consecutive failed fetches while probing: " + std::to_string(worst));
}

InvariantFinding check_streaming_batch(const core::PingmeshSimulation& sim) {
  const streaming::StreamingPipeline* p = sim.streaming();
  if (p == nullptr) return not_applicable("streaming-batch", "streaming disabled");
  FleetTotals t = collect_totals(sim);
  const auto& w = p->windows();
  std::uint64_t tapped = w.records_ingested() + w.records_skipped() + w.late_dropped();
  if (tapped != t.records_uploaded) {
    return make("streaming-batch", false,
                "tap saw " + std::to_string(tapped) + " records (ingested " +
                    std::to_string(w.records_ingested()) + " + skipped " +
                    std::to_string(w.records_skipped()) + " + late " +
                    std::to_string(w.late_dropped()) + ") but agents uploaded " +
                    std::to_string(t.records_uploaded));
  }
  return make("streaming-batch", true,
              "ingested=" + std::to_string(w.records_ingested()) +
                  " skipped=" + std::to_string(w.records_skipped()) +
                  " late=" + std::to_string(w.late_dropped()));
}

/// The lone network-fault event of `plan` targeting a ToR, if the plan has
/// exactly one network-affecting event at all.
std::optional<ChaosEvent> lone_tor_fault(const core::PingmeshSimulation& sim,
                                         const ChaosPlan& plan) {
  std::optional<ChaosEvent> fault;
  for (const ChaosEvent& e : plan.events) {
    switch (e.kind) {
      case ChaosEventKind::kLinkLoss:
      case ChaosEventKind::kPartition:
      case ChaosEventKind::kServerCrash:
        if (fault) return std::nullopt;  // more than one network fault
        fault = e;
        break;
      default:
        break;
    }
  }
  if (!fault || fault->kind == ChaosEventKind::kServerCrash) return std::nullopt;
  if (fault->kind == ChaosEventKind::kLinkLoss && fault->magnitude < 0.005) {
    return std::nullopt;  // too faint to localize reliably
  }
  const auto& topo = sim.topology();
  SwitchId sw{static_cast<std::uint32_t>(fault->entity % topo.switch_count())};
  if (topo.sw(sw).kind != topo::SwitchKind::kTor) return std::nullopt;
  fault->entity = sw.value;  // resolved switch index
  return fault;
}

InvariantFinding check_blame_localization(const core::PingmeshSimulation& sim,
                                          const ChaosPlan& plan) {
  auto fault = lone_tor_fault(sim, plan);
  if (!fault) {
    return not_applicable("blame-localization",
                          "plan has no lone ToR loss fault to localize");
  }
  const auto& topo = sim.topology();
  // The pod under the faulted ToR.
  std::optional<PodId> faulted_pod;
  for (const auto& pod : topo.pods()) {
    if (pod.tor.value == fault->entity) faulted_pod = pod.id;
  }
  if (!faulted_pod) {
    return not_applicable("blame-localization", "faulted switch maps to no pod");
  }

  struct PairAcc {
    std::uint64_t probes = 0;
    std::uint64_t bad = 0;  // failures + SYN-retransmit signatures
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairAcc> pairs;
  SimTime to = std::min(fault->end, plan.duration);
  if (plan.heal) {
    // The healing loop may clear the fault mid-window (a reload/RMA removes
    // the injected fault records); records after the first executed repair
    // on the faulted switch carry no blame signal.
    for (const autopilot::RepairRecord& r : sim.repair().history()) {
      if (r.executed && r.sw.value == fault->entity) {
        to = std::min(to, r.time);
        break;
      }
    }
    if (to <= fault->start) {
      return not_applicable("blame-localization",
                            "fault repaired before any record window accrued");
    }
  }
  for (const auto& r : sim.records_between(fault->start, to)) {
    auto src = topo.find_server_by_ip(r.src_ip);
    auto dst = topo.find_server_by_ip(r.dst_ip);
    if (!src || !dst) continue;
    PairAcc& acc = pairs[{topo.server(*src).pod.value, topo.server(*dst).pod.value}];
    ++acc.probes;
    if (!r.success || agent::syn_drop_signature(r.rtt) != 0) ++acc.bad;
  }

  // Worst pair by bad-fraction among pairs with enough probes; ties are
  // impossible to localize, so require the winner to be strictly worst.
  double worst_rate = -1.0;
  std::pair<std::uint32_t, std::uint32_t> worst{0, 0};
  std::uint64_t considered = 0;
  for (const auto& [pp, acc] : pairs) {
    if (acc.probes < kBlameMinProbes) continue;
    ++considered;
    double rate = static_cast<double>(acc.bad) / static_cast<double>(acc.probes);
    if (rate > worst_rate) {
      worst_rate = rate;
      worst = pp;
    }
  }
  if (considered == 0 || worst_rate <= 0.0) {
    return not_applicable("blame-localization",
                          "too few records in the fault window to localize");
  }
  bool involves = worst.first == faulted_pod->value || worst.second == faulted_pod->value;
  std::string detail = "worst pair pod" + std::to_string(worst.first) + "->pod" +
                       std::to_string(worst.second) + " bad-rate " +
                       std::to_string(worst_rate) + "; faulted pod" +
                       std::to_string(faulted_pod->value);
  return make("blame-localization", involves, std::move(detail));
}

InvariantFinding check_decode_integrity(const core::PingmeshSimulation& sim,
                                        const ChaosPlan& plan) {
  // Force a full scan so every live extent is decoded (CSV or columnar)
  // before the drop counter is read — an idle cache would vacuously pass.
  (void)sim.records_between(0, plan.duration + plan.settle + 1);
  std::uint64_t dropped = sim.decode_rows_dropped();
  for (const ChaosEvent& e : plan.events) {
    if (e.kind == ChaosEventKind::kExtentCorruption) {
      return not_applicable("decode-integrity",
                            "plan corrupts extents deliberately; dropped " +
                                std::to_string(dropped) + " rows");
    }
  }
  return make("decode-integrity", dropped == 0,
              "scan path dropped " + std::to_string(dropped) +
                  " malformed rows (must be 0 without deliberate corruption)");
}

InvariantFinding check_rollup_recovery(const ServeChaosOutcome* serve) {
  if (serve == nullptr || !serve->ran) {
    return not_applicable("rollup-recovery", "plan has no serve-restart events");
  }
  bool ok = serve->digest_mismatches == 0 && serve->final_digests_equal &&
            serve->conservation_ok && serve->failed_with_replicas == 0;
  return make("rollup-recovery", ok,
              "restarts=" + std::to_string(serve->restarts) + " digest-matches=" +
                  std::to_string(serve->digest_matches) + " mismatches=" +
                  std::to_string(serve->digest_mismatches) + " final-equal=" +
                  (serve->final_digests_equal ? "yes" : "no") + " conservation=" +
                  (serve->conservation_ok ? "ok" : "VIOLATED") + " queries=" +
                  std::to_string(serve->queries) + " 503-with-replicas=" +
                  std::to_string(serve->failed_with_replicas));
}

/// Event kinds that can mask black-hole detection end-to-end: fail-closed
/// stops probing during a controller outage / SLB flap, and upload chaos
/// starves or delays the record stream both detection paths read. A plan
/// containing any of these is not a fair test of the repair deadline.
bool masks_heal_detection(ChaosEventKind k) {
  return k == ChaosEventKind::kControllerOutage || k == ChaosEventKind::kSlbFlap ||
         k == ChaosEventKind::kUploadFailure || k == ChaosEventKind::kUploadDelay;
}

InvariantFinding check_blackhole_repaired(const core::PingmeshSimulation& sim,
                                          const ChaosPlan& plan,
                                          const HealChaosOutcome* heal) {
  if (heal == nullptr || !heal->ran) {
    return not_applicable("blackhole-repaired", "healing loop not attached");
  }
  for (const ChaosEvent& e : plan.events) {
    if (masks_heal_detection(e.kind)) {
      return not_applicable("blackhole-repaired",
                            "plan masks detection (controller/upload chaos)");
    }
  }
  const auto& topo = sim.topology();
  const auto& history = sim.repair().history();
  int checked = 0;
  for (const ChaosEvent& e : plan.events) {
    if (e.kind != ChaosEventKind::kTorBlackhole) continue;
    // Only black-holes the loop can plausibly catch: strong enough for the
    // fail-rate rule, active for at least the repair deadline, and with the
    // deadline inside the simulated run.
    if (e.magnitude < 0.15) continue;
    if (e.end - e.start < kHealRepairDeadline) continue;
    if (e.start + kHealRepairDeadline > plan.duration + plan.settle) continue;
    ++checked;
    SwitchId sw = resolve_event_switch(topo, e);
    bool repaired = false;
    for (const autopilot::RepairRecord& r : history) {
      if (r.executed && r.sw == sw && r.time <= e.start + kHealRepairDeadline) {
        repaired = true;
        break;
      }
    }
    if (!repaired) {
      return make("blackhole-repaired", false,
                  "black-hole on switch " + std::to_string(sw.value) + " injected at " +
                      std::to_string(e.start) + "ns had no executed repair by " +
                      std::to_string(e.start + kHealRepairDeadline) + "ns");
    }
  }
  if (checked == 0) {
    return not_applicable("blackhole-repaired",
                          "no catchable black-hole event in the plan");
  }
  return make("blackhole-repaired", true,
              std::to_string(checked) + " injected black-hole(s) repaired within " +
                  std::to_string(kHealRepairDeadline / kNanosPerMinute) + "min");
}

InvariantFinding check_corroborated_repair(const core::PingmeshSimulation& sim,
                                           const HealChaosOutcome* heal) {
  if (heal == nullptr || !heal->ran) {
    return not_applicable("corroborated-repair", "healing loop not attached");
  }
  std::size_t executed = 0;
  for (const autopilot::RepairRecord& r : sim.repair().history()) {
    if (!r.executed) continue;
    ++executed;
    bool corroborated = false;
    for (const HealIncidentSummary& inc : heal->incidents) {
      if (inc.sw == r.sw && inc.corroborate > 0 && inc.corroborate <= r.time) {
        corroborated = true;
        break;
      }
    }
    if (!corroborated) {
      return make("corroborated-repair", false,
                  "repair on switch " + std::to_string(r.sw.value) + " at " +
                      std::to_string(r.time) +
                      "ns has no prior corroborated blame (reason: " + r.reason + ")");
    }
  }
  return make("corroborated-repair", true,
              std::to_string(executed) + " executed repair(s), all corroborated; " +
                  std::to_string(heal->incidents.size()) + " incident(s), " +
                  std::to_string(heal->triggers_seen) + " trigger(s)");
}

InvariantFinding check_bounded_buffer(const core::PingmeshSimulation& sim) {
  std::size_t cap = sim.config().agent.max_buffered_records;
  std::size_t n = sim.topology().server_count();
  std::size_t worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst,
                     sim.agent(ServerId{static_cast<std::uint32_t>(i)}).buffered_records());
  }
  return make("bounded-buffer", worst <= cap,
              "max buffered " + std::to_string(worst) + " / cap " + std::to_string(cap));
}

}  // namespace

bool InvariantReport::all_ok() const {
  return std::all_of(findings.begin(), findings.end(),
                     [](const InvariantFinding& f) { return f.ok; });
}

const InvariantFinding* InvariantReport::find(std::string_view name) const {
  for (const InvariantFinding& f : findings) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string InvariantReport::to_text() const {
  std::string out;
  for (const InvariantFinding& f : findings) {
    out += f.name;
    out += ": ";
    out += !f.applicable ? "N/A" : (f.ok ? "OK" : "VIOLATED");
    if (!f.detail.empty()) {
      out += " (";
      out += f.detail;
      out += ")";
    }
    out += '\n';
  }
  return out;
}

FleetTotals collect_totals(const core::PingmeshSimulation& sim) {
  FleetTotals t;
  std::size_t n = sim.topology().server_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = sim.agent(ServerId{static_cast<std::uint32_t>(i)});
    t.probes_launched += a.probes_launched();
    t.records_uploaded += a.records_uploaded();
    t.records_discarded += a.records_discarded();
    t.records_buffered += a.buffered_records();
    t.records_logged += a.records_logged();
    t.log_dup_avoided += a.local_log_dup_avoided();
    t.uploads_ok += a.uploads_ok();
    t.uploads_failed += a.uploads_failed();
  }
  if (const dsa::CosmosStream* s = sim.cosmos().find(dsa::kLatencyStream)) {
    t.cosmos_appended = s->appended_records_total();
    t.cosmos_expired = s->expired_records_total();
    t.cosmos_live = s->total_records();
    t.cosmos_corrupt_records = s->corrupt_records();
  }
  const auto& vip = sim.controller_vip();
  t.slb_backends = vip.backend_count();
  t.slb_healthy = vip.healthy_count();
  t.slb_half_open_trials = vip.half_open_trials();
  return t;
}

InvariantReport check_invariants(const core::PingmeshSimulation& sim,
                                 const ChaosPlan& plan, const ServeChaosOutcome* serve,
                                 const HealChaosOutcome* heal) {
  InvariantReport report;
  report.findings.push_back(check_record_conservation(sim));
  report.findings.push_back(check_cosmos_ledger(sim));
  report.findings.push_back(check_fail_closed(sim));
  report.findings.push_back(check_streaming_batch(sim));
  report.findings.push_back(check_blame_localization(sim, plan));
  report.findings.push_back(check_decode_integrity(sim, plan));
  report.findings.push_back(check_bounded_buffer(sim));
  report.findings.push_back(check_rollup_recovery(serve));
  report.findings.push_back(check_blackhole_repaired(sim, plan, heal));
  report.findings.push_back(check_corroborated_repair(sim, heal));
  return report;
}

}  // namespace pingmesh::chaos

// The Pingmesh Generator — "the core of the Pingmesh Controller" (§3.3.1).
//
// It realizes the paper's three levels of complete graphs:
//   level 1 (intra-pod):  servers under one ToR form a complete graph;
//   level 2 (intra-DC):   ToR switches are virtual nodes of a complete
//                         graph, realized as "for any ToR-pair (ToRx, ToRy),
//                         let server i in ToRx ping server i in ToRy";
//   level 3 (inter-DC):   DCs are virtual nodes of a complete graph,
//                         realized by a few selected servers per podset.
//
// Probing is asymmetric on purpose: "even when two servers are in the
// pinglists of each other, they measure network latency separately",
// so every server computes its own drop rate and latency locally.
//
// The controller bounds the work: a threshold on the total number of
// targets per server, and a floor on the probe interval.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "controller/pinglist.h"
#include "topology/topology.h"

namespace pingmesh::controller {

struct GeneratorConfig {
  std::uint16_t tcp_port = 33100;          ///< agent's high-priority probe port
  std::uint16_t low_priority_port = 33101; ///< extra port for QoS class low
  std::uint16_t http_port = 33180;         ///< agent's HTTP ping port

  SimTime intra_pod_interval = minutes(1);
  SimTime intra_dc_interval = minutes(1);
  SimTime inter_dc_interval = minutes(5);

  /// Hard floor (paper: minimum probe interval between any two servers is
  /// limited to 10 seconds; hard coded in the agent too).
  SimTime min_interval_floor = seconds(10);

  /// Threshold on a server's total probe targets ("The Pingmesh Controller
  /// uses threshold values to limit the total number of probes of a
  /// server"). Paper-scale pinglists are 2000-5000 peers.
  std::size_t max_targets_per_server = 5000;

  /// Fraction of targets probed with payload echo in addition to
  /// SYN/SYN-ACK (payload pings detect length-dependent drops, §4.1).
  /// Realized deterministically: every k-th target gets payload.
  std::uint32_t payload_every_kth = 4;
  std::uint32_t payload_bytes = 1000;  ///< 800-1200 B in the paper

  bool enable_inter_dc = true;
  /// Servers selected per podset as inter-DC ping participants.
  int interdc_servers_per_podset = 2;
  /// Cap on selected peer servers per remote DC.
  int interdc_peers_per_dc = 4;

  /// QoS monitoring (§6.2): duplicate intra-DC targets on the low-priority
  /// port/class.
  bool enable_qos = false;

  /// VIP monitoring (§6.2): additional HTTP targets probed by every server
  /// in the VIP's DC... realized here as: every selected inter-DC server
  /// also probes the configured VIPs.
  std::vector<PingTarget> vip_targets;
};

class PinglistGenerator {
 public:
  PinglistGenerator(const topo::Topology& topo, GeneratorConfig config);

  /// Pinglist for one server. Deterministic: same topology + config +
  /// version -> same pinglist (every controller replica serves identical
  /// files, which is what makes the controller stateless, §3.3.2).
  [[nodiscard]] Pinglist generate_for(ServerId server) const;

  /// Pinglists for the whole fleet.
  [[nodiscard]] std::vector<Pinglist> generate_all() const;

  /// The servers of `dc` selected as inter-DC probe participants.
  [[nodiscard]] std::vector<ServerId> interdc_participants(DcId dc) const;

  /// Is this server an inter-DC participant?
  [[nodiscard]] bool is_interdc_participant(ServerId server) const;

  [[nodiscard]] const GeneratorConfig& config() const { return config_; }
  void set_version(std::uint64_t v) { version_ = v; }
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  void add_target(Pinglist& pl, IpAddr ip, SimTime interval, std::size_t& ordinal) const;

  const topo::Topology* topo_;
  GeneratorConfig config_;
  std::uint64_t version_ = 1;
  std::vector<std::vector<ServerId>> interdc_by_dc_;  // indexed by DcId
  std::vector<bool> is_participant_;                  // indexed by ServerId
};

}  // namespace pingmesh::controller

#include "controller/pinglist_cache.h"

namespace pingmesh::controller {

std::shared_ptr<const Pinglist> PinglistCache::get(ServerId server) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_.at(server.value);
  const std::uint64_t current = gen_->version();
  if (slot.pinglist != nullptr && slot.version == current) {
    ++hits_;
    return slot.pinglist;
  }
  slot.pinglist = std::make_shared<const Pinglist>(gen_->generate_for(server));
  slot.version = current;
  ++rebuilds_;
  return slot.pinglist;
}

}  // namespace pingmesh::controller

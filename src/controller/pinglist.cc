#include "controller/pinglist.h"

#include <stdexcept>

#include "common/xml.h"

namespace pingmesh::controller {

const char* qos_class_name(QosClass c) {
  switch (c) {
    case QosClass::kHigh: return "high";
    case QosClass::kLow: return "low";
  }
  return "?";
}

const char* probe_kind_name(ProbeKind k) {
  switch (k) {
    case ProbeKind::kTcpConnect: return "tcp";
    case ProbeKind::kTcpPayload: return "tcp-payload";
    case ProbeKind::kHttpGet: return "http";
  }
  return "?";
}

namespace {

ProbeKind parse_probe_kind(const std::string& s) {
  if (s == "tcp") return ProbeKind::kTcpConnect;
  if (s == "tcp-payload") return ProbeKind::kTcpPayload;
  if (s == "http") return ProbeKind::kHttpGet;
  throw std::runtime_error("unknown probe kind: " + s);
}

QosClass parse_qos(const std::string& s) {
  if (s == "high") return QosClass::kHigh;
  if (s == "low") return QosClass::kLow;
  throw std::runtime_error("unknown qos class: " + s);
}

}  // namespace

std::string Pinglist::to_xml() const {
  xml::Writer w;
  w.open("Pinglist");
  w.attr("server", server_name);
  w.attr("ip", server_ip.str());
  w.attr("version", static_cast<std::int64_t>(version));
  w.attr("minIntervalNs", min_probe_interval);
  for (const PingTarget& t : targets) {
    w.open("Target");
    w.attr("ip", t.ip.str());
    w.attr("port", static_cast<std::int64_t>(t.port));
    w.attr("kind", probe_kind_name(t.kind));
    w.attr("qos", qos_class_name(t.qos));
    if (t.payload_bytes > 0) w.attr("payloadBytes", static_cast<std::int64_t>(t.payload_bytes));
    w.attr("intervalNs", t.interval);
    if (t.is_vip) w.attr("vip", "true");
    w.close();
  }
  w.close();
  return w.str();
}

namespace {

IpAddr parse_ip(const std::string& dotted) {
  std::uint32_t parts[4] = {0, 0, 0, 0};
  int part = 0;
  std::uint32_t acc = 0;
  bool any = false;
  for (char c : dotted) {
    if (c == '.') {
      if (!any || part >= 3) throw std::runtime_error("bad ip: " + dotted);
      parts[part++] = acc;
      acc = 0;
      any = false;
    } else if (c >= '0' && c <= '9') {
      acc = acc * 10 + static_cast<std::uint32_t>(c - '0');
      if (acc > 255) throw std::runtime_error("bad ip: " + dotted);
      any = true;
    } else {
      throw std::runtime_error("bad ip: " + dotted);
    }
  }
  if (!any || part != 3) throw std::runtime_error("bad ip: " + dotted);
  parts[3] = acc;
  return IpAddr(static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3]));
}

}  // namespace

Pinglist Pinglist::from_xml(std::string_view doc) {
  auto root = xml::parse(doc);
  if (root->name != "Pinglist") throw std::runtime_error("root element is not Pinglist");
  Pinglist pl;
  pl.server_name = root->attr_or("server", "");
  pl.server_ip = parse_ip(root->attr_or("ip", "0.0.0.0"));
  pl.version = static_cast<std::uint64_t>(root->attr_int("version", 0));
  pl.min_probe_interval = root->attr_int("minIntervalNs", 0);
  for (const xml::Element* el : root->children_named("Target")) {
    PingTarget t;
    t.ip = parse_ip(el->attr_or("ip", "0.0.0.0"));
    t.port = static_cast<std::uint16_t>(el->attr_int("port", 0));
    t.kind = parse_probe_kind(el->attr_or("kind", "tcp"));
    t.qos = parse_qos(el->attr_or("qos", "high"));
    t.payload_bytes = static_cast<std::uint32_t>(el->attr_int("payloadBytes", 0));
    t.interval = el->attr_int("intervalNs", 0);
    t.is_vip = el->attr_or("vip", "false") == "true";
    pl.targets.push_back(t);
  }
  return pl;
}

}  // namespace pingmesh::controller

// Incremental pinglist materialization.
//
// The controller used to regenerate a server's pinglist from scratch on
// every fetch (and the HTTP service regenerated the whole fleet's files on
// any version bump). At paper scale — 100k servers x ~2500 peers — a full
// regeneration is ~250M target entries, far too much work to repeat when a
// topology change only matters to the servers that actually fetch next.
//
// PinglistCache keeps one slot per server holding the last materialized
// pinglist and the generator version it was built from. A fetch returns the
// cached list while the version matches and rebuilds only that server's
// slot when the generator moved — delta updates with work proportional to
// the fetch rate, not the fleet size. Version-bump semantics are unchanged:
// a bumped generator version still reaches every agent on its next refresh
// (the PR-4 stale-pinglist guard keys off Pinglist::version, which the
// rebuilt slot carries).
//
// Slots hand out shared_ptr<const Pinglist>, so a reader's list stays valid
// even if the slot is rebuilt underneath it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/annotations.h"
#include "controller/generator.h"
#include "controller/pinglist.h"
#include "topology/topology.h"

namespace pingmesh::controller {

class PinglistCache {
 public:
  PinglistCache(const topo::Topology& topo, const PinglistGenerator& gen)
      : topo_(&topo), gen_(&gen), slots_(topo.server_count()) {}

  /// The server's pinglist at the generator's current version; rebuilds the
  /// slot iff its version is stale. Thread-safe.
  std::shared_ptr<const Pinglist> get(ServerId server);

  /// Slots rebuilt since construction (fleet-wide regeneration work).
  [[nodiscard]] std::uint64_t rebuilds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rebuilds_;
  }
  /// Fetches served straight from a fresh slot.
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }

 private:
  struct Slot {
    std::shared_ptr<const Pinglist> pinglist;
    std::uint64_t version = 0;
  };

  const topo::Topology* topo_;
  const PinglistGenerator* gen_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_ PM_GUARDED_BY(mutex_);
  std::uint64_t rebuilds_ PM_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ PM_GUARDED_BY(mutex_) = 0;
};

}  // namespace pingmesh::controller

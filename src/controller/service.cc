#include "controller/service.h"

#include "net/http.h"

namespace pingmesh::controller {

// ---------------------------------------------------------------------------
// DirectPinglistSource
// ---------------------------------------------------------------------------

FetchResult DirectPinglistSource::fetch(IpAddr server_ip) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  if (!reachable_) {
    if (fetch_unreachable_ != nullptr) fetch_unreachable_->inc();
    return FetchResult{FetchStatus::kUnreachable, nullptr};
  }
  if (!serving_) {
    if (fetch_none_ != nullptr) fetch_none_->inc();
    return FetchResult{FetchStatus::kNoPinglist, nullptr};
  }
  auto server = topo_->find_server_by_ip(server_ip);
  if (!server) {
    if (fetch_none_ != nullptr) fetch_none_->inc();
    return FetchResult{FetchStatus::kNoPinglist, nullptr};
  }
  if (fetch_ok_ != nullptr) fetch_ok_->inc();
  return FetchResult{FetchStatus::kOk, cache_.get(*server)};
}

void DirectPinglistSource::enable_observability(obs::MetricsRegistry& registry) {
  fetch_ok_ = &registry.counter("controller.fetches_total", "status=ok");
  fetch_none_ = &registry.counter("controller.fetches_total", "status=none");
  fetch_unreachable_ = &registry.counter("controller.fetches_total", "status=unreachable");
}

// ---------------------------------------------------------------------------
// ControllerHttpService
// ---------------------------------------------------------------------------

ControllerHttpService::ControllerHttpService(net::Reactor& reactor,
                                             const net::SockAddr& bind_addr,
                                             const topo::Topology& topo,
                                             const PinglistGenerator& gen)
    : topo_(&topo), gen_(&gen), server_(reactor, bind_addr) {
  for (const topo::Server& s : topo_->servers()) ip_index_.emplace(s.ip.str(), s.id);
  regenerate();
  // Both the canonical "/pinglist/<ip>" form and the bare "/pinglist" path
  // land in handle_pinglist; the handler itself validates the prefix, so a
  // short or malformed path is a 404, not an out-of-range substr.
  server_.route("/pinglist",
                [this](const net::HttpRequest& req) { return handle_pinglist(req); });
  server_.route("/pinglist/",
                [this](const net::HttpRequest& req) { return handle_pinglist(req); });
  server_.route("/health", [](const net::HttpRequest&) {
    return net::HttpResponse::ok("ok");
  });
}

void ControllerHttpService::regenerate() {
  // Invalidate, don't materialize: each server's XML re-renders on its next
  // request, so a topology change costs work proportional to the request
  // rate instead of the fleet size.
  files_.clear();
  withdrawn_ = false;
  served_version_ = gen_->version();
  ++regenerations_;
  if (regen_counter_ != nullptr) regen_counter_->inc();
}

void ControllerHttpService::withdraw_all() {
  files_.clear();
  withdrawn_ = true;
}

void ControllerHttpService::enable_observability(obs::MetricsRegistry& registry) {
  req_ok_ = &registry.counter("controller.pinglist_requests_total", "result=ok");
  req_miss_ = &registry.counter("controller.pinglist_requests_total", "result=miss");
  req_bad_path_ = &registry.counter("controller.pinglist_requests_total", "result=bad_path");
  req_not_modified_ =
      &registry.counter("controller.pinglist_requests_total", "result=not_modified");
  regen_counter_ = &registry.counter("controller.pinglist_regenerations_total");
}

net::HttpResponse ControllerHttpService::handle_pinglist(const net::HttpRequest& req) {
  constexpr std::string_view kPrefix = "/pinglist/";
  if (!std::string_view(req.path).starts_with(kPrefix)) {
    if (req_bad_path_ != nullptr) req_bad_path_->inc();
    return net::HttpResponse::not_found("expected /pinglist/<ip>");
  }
  std::string ip = req.path.substr(kPrefix.size());
  if (auto q = ip.find('?'); q != std::string::npos) ip.resize(q);
  // Withdrawn state is sticky — the kill switch must not be undone by a
  // version bump; only an explicit regenerate() resumes serving.
  auto known = ip_index_.find(ip);
  if (withdrawn_ || known == ip_index_.end()) {
    if (req_miss_ != nullptr) req_miss_->inc();
    return net::HttpResponse::not_found("no pinglist for " + ip);
  }
  // Each distinct generator version served counts as one (lazy)
  // regeneration, so version-driven refreshes stay visible to operators
  // even though no fleet-wide materialization happens anymore.
  if (gen_->version() != served_version_) {
    served_version_ = gen_->version();
    ++regenerations_;
    if (regen_counter_ != nullptr) regen_counter_->inc();
  }
  // Conditional GET: the validator is (generator version, server ip), so an
  // agent re-polling an unchanged pinglist revalidates with a 304 before
  // any XML is rendered — a 100k-agent herd against a stable topology costs
  // zero regeneration work, only header exchanges.
  std::string etag = "\"pl-" + std::to_string(gen_->version()) + "-" + ip + "\"";
  if (auto inm = req.headers.find("if-none-match");
      inm != req.headers.end() && net::etag_match(inm->second, etag)) {
    if (req_not_modified_ != nullptr) req_not_modified_->inc();
    return net::HttpResponse::not_modified(std::move(etag));
  }
  FileSlot& slot = files_[ip];
  if (slot.xml.empty() || slot.version != gen_->version()) {
    slot.xml = gen_->generate_for(known->second).to_xml();
    slot.version = gen_->version();
    ++files_rendered_;
  }
  if (req_ok_ != nullptr) req_ok_->inc();
  net::HttpResponse resp = net::HttpResponse::ok(slot.xml, "application/xml");
  resp.headers["etag"] = std::move(etag);
  return resp;
}

// ---------------------------------------------------------------------------
// HttpPinglistSource
// ---------------------------------------------------------------------------

HttpPinglistSource::HttpPinglistSource(net::Reactor& reactor, SlbVip& vip,
                                       std::vector<net::SockAddr> backends,
                                       std::chrono::milliseconds timeout)
    : reactor_(&reactor), vip_(&vip), backends_(std::move(backends)), timeout_(timeout) {}

FetchResult HttpPinglistSource::fetch(IpAddr server_ip) {
  auto pick = vip_->pick(++flow_seq_);
  if (!pick) return FetchResult{FetchStatus::kUnreachable, nullptr};
  std::size_t idx = *pick;
  if (idx >= backends_.size()) return FetchResult{FetchStatus::kUnreachable, nullptr};

  net::HttpClient client(*reactor_);
  std::optional<net::HttpResult> result;
  net::HttpRequest req{"GET", "/pinglist/" + server_ip.str(), {}, ""};
  // Revalidate instead of refetch: present the validator from the last 200
  // for this server, so an unchanged pinglist costs a 304 with no XML body
  // and no parse (the agent-side half of the thundering-herd fix).
  auto cached = cached_.find(server_ip.v);
  if (cached != cached_.end()) req.headers["if-none-match"] = cached->second.etag;
  client.request(backends_[idx], std::move(req), timeout_,
                 [&result](const net::HttpResult& r) { result = r; });
  reactor_->run_until([&result] { return result.has_value(); },
                      net::Reactor::Clock::now() + timeout_ + std::chrono::milliseconds(200));

  if (!result || (!result->ok && !result->timed_out && result->error_errno == 0)) {
    vip_->report(idx, false);
    return FetchResult{FetchStatus::kUnreachable, nullptr};
  }
  if (result->timed_out || !result->ok) {
    vip_->report(idx, false);
    return FetchResult{FetchStatus::kUnreachable, nullptr};
  }
  vip_->report(idx, true);
  if (result->response.status == 304 && cached != cached_.end()) {
    ++revalidated_;
    return FetchResult{FetchStatus::kOk, cached->second.pinglist};
  }
  if (result->response.status == 404) {
    cached_.erase(server_ip.v);
    return FetchResult{FetchStatus::kNoPinglist, nullptr};
  }
  if (result->response.status != 200) {
    cached_.erase(server_ip.v);
    return FetchResult{FetchStatus::kUnreachable, nullptr};
  }
  try {
    auto list = std::make_shared<const Pinglist>(Pinglist::from_xml(result->response.body));
    if (auto etag = result->response.headers.find("etag");
        etag != result->response.headers.end()) {
      cached_[server_ip.v] = CachedList{etag->second, list};
    }
    return FetchResult{FetchStatus::kOk, list};
  } catch (const std::exception&) {
    return FetchResult{FetchStatus::kUnreachable, nullptr};
  }
}

}  // namespace pingmesh::controller

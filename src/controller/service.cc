#include "controller/service.h"

#include "net/http.h"

namespace pingmesh::controller {

// ---------------------------------------------------------------------------
// DirectPinglistSource
// ---------------------------------------------------------------------------

FetchResult DirectPinglistSource::fetch(IpAddr server_ip) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  if (!reachable_) return FetchResult{FetchStatus::kUnreachable, std::nullopt};
  if (!serving_) return FetchResult{FetchStatus::kNoPinglist, std::nullopt};
  auto server = topo_->find_server_by_ip(server_ip);
  if (!server) return FetchResult{FetchStatus::kNoPinglist, std::nullopt};
  return FetchResult{FetchStatus::kOk, gen_->generate_for(*server)};
}

// ---------------------------------------------------------------------------
// ControllerHttpService
// ---------------------------------------------------------------------------

ControllerHttpService::ControllerHttpService(net::Reactor& reactor,
                                             const net::SockAddr& bind_addr,
                                             const topo::Topology& topo,
                                             const PinglistGenerator& gen)
    : topo_(&topo), gen_(&gen), server_(reactor, bind_addr) {
  regenerate();
  server_.route("/pinglist/",
                [this](const net::HttpRequest& req) { return handle_pinglist(req); });
  server_.route("/health", [](const net::HttpRequest&) {
    return net::HttpResponse::ok("ok");
  });
}

void ControllerHttpService::regenerate() {
  files_.clear();
  for (const topo::Server& s : topo_->servers()) {
    files_[s.ip.str()] = gen_->generate_for(s.id).to_xml();
  }
}

void ControllerHttpService::withdraw_all() { files_.clear(); }

net::HttpResponse ControllerHttpService::handle_pinglist(const net::HttpRequest& req) {
  constexpr std::string_view kPrefix = "/pinglist/";
  std::string ip = req.path.substr(kPrefix.size());
  if (auto q = ip.find('?'); q != std::string::npos) ip.resize(q);
  auto it = files_.find(ip);
  if (it == files_.end()) return net::HttpResponse::not_found("no pinglist for " + ip);
  return net::HttpResponse::ok(it->second, "application/xml");
}

// ---------------------------------------------------------------------------
// HttpPinglistSource
// ---------------------------------------------------------------------------

HttpPinglistSource::HttpPinglistSource(net::Reactor& reactor, SlbVip& vip,
                                       std::vector<net::SockAddr> backends,
                                       std::chrono::milliseconds timeout)
    : reactor_(&reactor), vip_(&vip), backends_(std::move(backends)), timeout_(timeout) {}

FetchResult HttpPinglistSource::fetch(IpAddr server_ip) {
  auto pick = vip_->pick(++flow_seq_);
  if (!pick) return FetchResult{FetchStatus::kUnreachable, std::nullopt};
  std::size_t idx = *pick;
  if (idx >= backends_.size()) return FetchResult{FetchStatus::kUnreachable, std::nullopt};

  net::HttpClient client(*reactor_);
  std::optional<net::HttpResult> result;
  client.get(backends_[idx], "/pinglist/" + server_ip.str(), timeout_,
             [&result](const net::HttpResult& r) { result = r; });
  reactor_->run_until([&result] { return result.has_value(); },
                      net::Reactor::Clock::now() + timeout_ + std::chrono::milliseconds(200));

  if (!result || (!result->ok && !result->timed_out && result->error_errno == 0)) {
    vip_->report(idx, false);
    return FetchResult{FetchStatus::kUnreachable, std::nullopt};
  }
  if (result->timed_out || !result->ok) {
    vip_->report(idx, false);
    return FetchResult{FetchStatus::kUnreachable, std::nullopt};
  }
  vip_->report(idx, true);
  if (result->response.status == 404) {
    return FetchResult{FetchStatus::kNoPinglist, std::nullopt};
  }
  if (result->response.status != 200) {
    return FetchResult{FetchStatus::kUnreachable, std::nullopt};
  }
  try {
    return FetchResult{FetchStatus::kOk, Pinglist::from_xml(result->response.body)};
  } catch (const std::exception&) {
    return FetchResult{FetchStatus::kUnreachable, std::nullopt};
  }
}

}  // namespace pingmesh::controller

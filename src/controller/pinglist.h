// Pinglist: the only artifact exchanged between the Pingmesh Controller and
// the Pingmesh Agents (paper §6.2 — "Pingmesh Controller and Pingmesh Agent
// interact only through the pinglist files, which are standard XML files,
// via standard Web API"). That loose coupling is deliberate and is what let
// the paper's system grow QoS probing, VIP monitoring etc. without
// architectural change.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace pingmesh::controller {

/// Traffic class for QoS monitoring (paper §6.2 "QoS monitoring": pinglists
/// are generated for both high and low priority DSCP classes; the agent
/// listens on an extra port for the low-priority class).
enum class QosClass : std::uint8_t { kHigh = 0, kLow = 1 };

const char* qos_class_name(QosClass c);

/// Kind of probe the agent should launch at this target.
enum class ProbeKind : std::uint8_t {
  kTcpConnect = 0,  ///< SYN/SYN-ACK RTT only
  kTcpPayload = 1,  ///< connect + payload echo
  kHttpGet = 2,     ///< HTTP ping (and VIP monitoring)
};

const char* probe_kind_name(ProbeKind k);

struct PingTarget {
  IpAddr ip;
  std::uint16_t port = 0;
  ProbeKind kind = ProbeKind::kTcpConnect;
  QosClass qos = QosClass::kHigh;
  std::uint32_t payload_bytes = 0;   ///< for kTcpPayload
  SimTime interval = 0;              ///< desired probe interval
  bool is_vip = false;               ///< VIP monitoring target (§6.2)
};

struct Pinglist {
  std::string server_name;
  IpAddr server_ip;
  std::uint64_t version = 0;          ///< topology/config generation number
  SimTime min_probe_interval = 0;     ///< controller-side floor echoed to agents
  std::vector<PingTarget> targets;

  /// Serialize to the XML interchange format.
  [[nodiscard]] std::string to_xml() const;
  /// Parse; throws std::runtime_error on malformed documents.
  static Pinglist from_xml(std::string_view doc);
};

}  // namespace pingmesh::controller

// Software Load-Balancer / VIP model (paper §3.3.2).
//
// "A Pingmesh Controller has a set of servers behind a single VIP. ...
// Every Pingmesh Controller server runs the same piece of code and
// generates the same set of Pinglist files ... once a Pingmesh Controller
// server stops functioning, it is automatically removed from rotation by
// the SLB."
//
// We model the SLB at the library level: a VIP owns a set of backend
// endpoints with health state; pick() spreads flows over healthy backends
// by flow hash; health probes run in the caller's loop (the real Ananta
// data plane is out of scope — the behaviour that matters to Pingmesh is
// rotation, automatic removal, and automatic *re-admission*).
//
// Re-admission works half-open, circuit-breaker style: an unhealthy
// backend that has sat out of rotation for `recovery_after` picks gets one
// trial flow routed to it. If the caller reports success the backend flips
// healthy and rejoins rotation; on failure it waits out another
// `recovery_after` picks. Before this, report(success) could only re-admit
// a backend that was still being picked — which an unhealthy backend never
// was, so removal was permanent.
//
// Thread-safety: SlbVip itself is unsynchronized. Its one concurrent owner
// (PingmeshSimulation) guards every pick()/report() behind vip_mutex_ and
// annotates the field PM_GUARDED_BY(vip_mutex_), so pingmesh_lint's
// lock-discipline pass enforces the external locking there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"

namespace pingmesh::controller {

class SlbVip {
 public:
  struct Backend {
    std::string endpoint;  ///< opaque address (e.g. "127.0.0.1:8080" or a name)
    bool healthy = true;
    std::uint64_t picks = 0;
    int consecutive_failures = 0;
    /// pick() sequence number at which this backend went unhealthy (or was
    /// last given a half-open trial); rotation re-tries it recovery_after
    /// picks later.
    std::uint64_t unhealthy_since_pick = 0;
  };

  /// `failure_threshold`: consecutive failures before a backend is taken
  /// out of rotation. `recovery_after`: VIP-wide picks an unhealthy backend
  /// sits out before its next half-open trial.
  explicit SlbVip(int failure_threshold = 3, std::uint64_t recovery_after = 16)
      : failure_threshold_(failure_threshold), recovery_after_(recovery_after) {}

  std::size_t add_backend(std::string endpoint);

  /// Choose a backend for a flow; flows hash-spread over healthy backends,
  /// except that an unhealthy backend due for a half-open trial takes
  /// priority (it gets this one flow as its probe). When the healthy set
  /// is fully empty (all backends restarted at once), the longest-waiting
  /// unhealthy backend gets an immediate trial instead of the VIP
  /// blackholing — nullopt only when there are no backends at all.
  std::optional<std::size_t> pick(std::uint64_t flow_hash);

  /// Report the outcome of a request to backend `idx`; failures accumulate
  /// and remove the backend from rotation at the threshold; a success while
  /// out of rotation re-admits it (half-open trial succeeded).
  void report(std::size_t idx, bool success);

  void set_healthy(std::size_t idx, bool healthy);

  /// Register slb.* instruments on `registry`. Optional; without it the
  /// VIP just keeps its local counters.
  void enable_observability(obs::MetricsRegistry& registry);

  [[nodiscard]] const Backend& backend(std::size_t idx) const { return backends_.at(idx); }
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] std::size_t healthy_count() const;
  [[nodiscard]] std::uint64_t total_picks() const { return total_picks_; }
  [[nodiscard]] std::uint64_t half_open_trials() const { return half_open_trials_; }
  [[nodiscard]] std::uint64_t health_flips_down() const { return flips_down_; }
  [[nodiscard]] std::uint64_t health_flips_up() const { return flips_up_; }

 private:
  void flip_health(Backend& b, bool healthy);

  std::vector<Backend> backends_;
  int failure_threshold_;
  std::uint64_t recovery_after_;
  std::uint64_t total_picks_ = 0;
  std::uint64_t half_open_trials_ = 0;
  std::uint64_t flips_down_ = 0;
  std::uint64_t flips_up_ = 0;

  struct ObsHooks {
    obs::Counter* picks = nullptr;
    obs::Counter* trials = nullptr;
    obs::Counter* flips_down = nullptr;
    obs::Counter* flips_up = nullptr;
    obs::Gauge* healthy_backends = nullptr;
  };
  ObsHooks hooks_{};
};

}  // namespace pingmesh::controller

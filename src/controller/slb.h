// Software Load-Balancer / VIP model (paper §3.3.2).
//
// "A Pingmesh Controller has a set of servers behind a single VIP. ...
// Every Pingmesh Controller server runs the same piece of code and
// generates the same set of Pinglist files ... once a Pingmesh Controller
// server stops functioning, it is automatically removed from rotation by
// the SLB."
//
// We model the SLB at the library level: a VIP owns a set of backend
// endpoints with health state; pick() spreads flows over healthy backends
// by flow hash; health probes run in the caller's loop (the real Ananta
// data plane is out of scope — the behaviour that matters to Pingmesh is
// rotation and automatic removal).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pingmesh::controller {

class SlbVip {
 public:
  struct Backend {
    std::string endpoint;  ///< opaque address (e.g. "127.0.0.1:8080" or a name)
    bool healthy = true;
    std::uint64_t picks = 0;
    int consecutive_failures = 0;
  };

  /// Failures before a backend is taken out of rotation.
  explicit SlbVip(int failure_threshold = 3) : failure_threshold_(failure_threshold) {}

  std::size_t add_backend(std::string endpoint);

  /// Choose a healthy backend for a flow; flows hash-spread over backends.
  /// nullopt when none are healthy.
  std::optional<std::size_t> pick(std::uint64_t flow_hash);

  /// Report the outcome of a request to backend `idx`; failures accumulate
  /// and remove the backend from rotation at the threshold; a success while
  /// out of rotation re-admits it (health probe recovered).
  void report(std::size_t idx, bool success);

  void set_healthy(std::size_t idx, bool healthy);

  [[nodiscard]] const Backend& backend(std::size_t idx) const { return backends_.at(idx); }
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] std::size_t healthy_count() const;

 private:
  std::vector<Backend> backends_;
  int failure_threshold_;
};

}  // namespace pingmesh::controller

#include "controller/generator.h"

#include <algorithm>

namespace pingmesh::controller {

PinglistGenerator::PinglistGenerator(const topo::Topology& topo, GeneratorConfig config)
    : topo_(&topo), config_(std::move(config)) {
  // Select inter-DC participants: the first `interdc_servers_per_podset`
  // servers of each podset, spread over its pods (first server of pod 0,
  // first server of pod 1, ...). Deterministic by construction.
  // The selection is computed even when inter-DC probing is disabled: the
  // same "selected servers" carry VIP monitoring targets (§6.2).
  interdc_by_dc_.resize(topo.dcs().size());
  is_participant_.assign(topo.server_count(), false);
  for (const topo::DataCenter& dc : topo.dcs()) {
    auto& selected = interdc_by_dc_[dc.id.value];
    for (PodsetId ps_id : dc.podsets) {
      const topo::Podset& ps = topo.podset(ps_id);
      int taken = 0;
      for (PodId pod_id : ps.pods) {
        if (taken >= config_.interdc_servers_per_podset) break;
        const topo::Pod& pod = topo.pod(pod_id);
        if (pod.servers.empty()) continue;
        ServerId s = pod.servers.front();
        selected.push_back(s);
        is_participant_[s.value] = true;
        ++taken;
      }
    }
  }
}

void PinglistGenerator::add_target(Pinglist& pl, IpAddr ip, SimTime interval,
                                   std::size_t& ordinal) const {
  if (pl.targets.size() >= config_.max_targets_per_server) return;
  PingTarget t;
  t.ip = ip;
  t.port = config_.tcp_port;
  t.interval = std::max(interval, config_.min_interval_floor);
  // Every k-th target additionally exercises the payload path.
  if (config_.payload_every_kth > 0 && ordinal % config_.payload_every_kth == 0) {
    t.kind = ProbeKind::kTcpPayload;
    t.payload_bytes = config_.payload_bytes;
  }
  ++ordinal;
  pl.targets.push_back(t);
  // QoS monitoring: mirror the target on the low-priority class.
  if (config_.enable_qos && pl.targets.size() < config_.max_targets_per_server) {
    PingTarget low = t;
    low.kind = ProbeKind::kTcpConnect;
    low.payload_bytes = 0;
    low.qos = QosClass::kLow;
    low.port = config_.low_priority_port;
    pl.targets.push_back(low);
  }
}

Pinglist PinglistGenerator::generate_for(ServerId server) const {
  const topo::Topology& topo = *topo_;
  const topo::Server& self = topo.server(server);
  Pinglist pl;
  pl.server_name = self.name;
  pl.server_ip = self.ip;
  pl.version = version_;
  pl.min_probe_interval = config_.min_interval_floor;
  std::size_t ordinal = static_cast<std::size_t>(server.value);  // stagger payload picks

  // Level 1: complete graph among servers under the same ToR.
  for (ServerId peer : topo.pod(self.pod).servers) {
    if (peer == server) continue;
    add_target(pl, topo.server(peer).ip, config_.intra_pod_interval, ordinal);
  }

  // Level 2: ToR-level complete graph within the DC. "For any ToR-pair
  // (ToRx, ToRy), let server i in ToRx ping server i in ToRy."
  const topo::DataCenter& dc = topo.dc(self.dc);
  for (PodsetId ps_id : dc.podsets) {
    for (PodId pod_id : topo.podset(ps_id).pods) {
      if (pod_id == self.pod) continue;
      const topo::Pod& peer_pod = topo.pod(pod_id);
      if (peer_pod.servers.empty()) continue;
      // Same index i; wrap if the peer pod has fewer servers.
      std::size_t i = static_cast<std::size_t>(self.index_in_pod) % peer_pod.servers.size();
      add_target(pl, topo.server(peer_pod.servers[i]).ip, config_.intra_dc_interval, ordinal);
    }
  }

  // Level 3: DC-level complete graph among selected servers.
  if (config_.enable_inter_dc && is_participant_[server.value]) {
    for (const topo::DataCenter& peer_dc : topo.dcs()) {
      if (peer_dc.id == self.dc) continue;
      const auto& peers = interdc_by_dc_[peer_dc.id.value];
      int taken = 0;
      // Start at an offset derived from this server so that load spreads
      // over the remote DC's participants.
      std::size_t start = peers.empty() ? 0 : server.value % peers.size();
      for (std::size_t k = 0; k < peers.size() && taken < config_.interdc_peers_per_dc; ++k) {
        ServerId peer = peers[(start + k) % peers.size()];
        add_target(pl, topo.server(peer).ip, config_.inter_dc_interval, ordinal);
        ++taken;
      }
    }
  }

  // VIP monitoring rides on the selected servers (works with or without
  // inter-DC probing).
  if (is_participant_[server.value]) {
    for (const PingTarget& vip : config_.vip_targets) {
      if (pl.targets.size() >= config_.max_targets_per_server) break;
      PingTarget t = vip;
      t.is_vip = true;
      if (t.interval < config_.min_interval_floor) t.interval = config_.min_interval_floor;
      pl.targets.push_back(t);
    }
  }

  return pl;
}

std::vector<Pinglist> PinglistGenerator::generate_all() const {
  std::vector<Pinglist> out;
  out.reserve(topo_->server_count());
  for (const topo::Server& s : topo_->servers()) out.push_back(generate_for(s.id));
  return out;
}

std::vector<ServerId> PinglistGenerator::interdc_participants(DcId dc) const {
  if (dc.value >= interdc_by_dc_.size()) return {};
  return interdc_by_dc_[dc.value];
}

bool PinglistGenerator::is_interdc_participant(ServerId server) const {
  return server.value < is_participant_.size() && is_participant_[server.value];
}

}  // namespace pingmesh::controller

// Pinglist distribution: the agent-facing fetch abstraction plus the two
// controller implementations — an in-process one for simulation and an HTTP
// RESTful web service (paper §3.3.2) for real-socket deployments.
//
// The controller is pull-only and stateless: "The Pingmesh Agents need to
// periodically ask the Controller for Pinglist files and the Pingmesh
// Controller does not push any data".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "controller/generator.h"
#include "controller/pinglist.h"
#include "controller/slb.h"
#include "net/http.h"
#include "obs/metrics.h"

namespace pingmesh::controller {

/// Outcome of one pinglist fetch attempt, as the agent perceives it. The
/// distinction matters for the agent's fail-closed rule (§3.4.2): both
/// "cannot connect to its controller 3 times" and "the controller is up but
/// there is no pinglist file available" stop the agent.
enum class FetchStatus : std::uint8_t {
  kOk,
  kUnreachable,  ///< connect/transport failure
  kNoPinglist,   ///< controller answered but has no file for this server
};

struct FetchResult {
  FetchStatus status = FetchStatus::kUnreachable;
  std::optional<Pinglist> pinglist;
};

/// Synchronous fetch interface used by simulation drivers and tests.
class PinglistSource {
 public:
  virtual ~PinglistSource() = default;
  virtual FetchResult fetch(IpAddr server_ip) = 0;
};

/// In-process controller: wraps the generator; can simulate outage
/// (unreachable) and pinglist withdrawal ("we can stop the Pingmesh Agent
/// from working by simply removing all the pinglist files").
///
/// fetch() is safe to call from concurrent driver shards: generation is
/// const over immutable state and the fetch counter is atomic. The
/// reachable/serving toggles must only be flipped between ticks.
class DirectPinglistSource final : public PinglistSource {
 public:
  DirectPinglistSource(const topo::Topology& topo, const PinglistGenerator& gen)
      : topo_(&topo), gen_(&gen) {}

  FetchResult fetch(IpAddr server_ip) override;

  void set_reachable(bool reachable) { reachable_ = reachable; }
  void set_serving(bool serving) { serving_ = serving; }
  [[nodiscard]] std::uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }

  /// Register controller.fetches_total{status=...} counters. The counters
  /// are atomic, so instrumented fetch() stays shard-safe.
  void enable_observability(obs::MetricsRegistry& registry);

 private:
  const topo::Topology* topo_;
  const PinglistGenerator* gen_;
  bool reachable_ = true;
  bool serving_ = true;
  std::atomic<std::uint64_t> fetches_{0};
  obs::Counter* fetch_ok_ = nullptr;
  obs::Counter* fetch_none_ = nullptr;
  obs::Counter* fetch_unreachable_ = nullptr;
};

/// The controller's RESTful web service. Serves:
///   GET /pinglist/<dotted-ip>   -> 200 with the pinglist XML, or 404
///   GET /health                 -> 200 "ok"
/// Pinglist files are pre-generated (the real controller stores them on SSD
/// and serves them statically), refreshed via regenerate(), and — because a
/// live controller outlasts its first topology — re-generated lazily when
/// the generator's pinglist version moves past what was served.
class ControllerHttpService {
 public:
  ControllerHttpService(net::Reactor& reactor, const net::SockAddr& bind_addr,
                        const topo::Topology& topo, const PinglistGenerator& gen);

  /// Re-run the generator (topology or config changed).
  void regenerate();
  /// Withdraw all pinglist files (fail-closed drill). Sticks until the next
  /// explicit regenerate() — a version bump alone does not undo a withdrawal.
  void withdraw_all();

  /// Register controller.pinglist_* instruments.
  void enable_observability(obs::MetricsRegistry& registry);

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] std::uint64_t requests_served() const { return server_.requests_served(); }
  [[nodiscard]] std::uint64_t regenerations() const { return regenerations_; }

 private:
  net::HttpResponse handle_pinglist(const net::HttpRequest& req);
  void refresh_if_stale();

  const topo::Topology* topo_;
  const PinglistGenerator* gen_;
  std::unordered_map<std::string, std::string> files_;  // dotted ip -> XML
  std::uint64_t generated_version_ = 0;  ///< gen_->version() when files_ was built
  bool withdrawn_ = false;
  std::uint64_t regenerations_ = 0;
  obs::Counter* req_ok_ = nullptr;
  obs::Counter* req_miss_ = nullptr;
  obs::Counter* req_bad_path_ = nullptr;
  obs::Counter* regen_counter_ = nullptr;
  net::HttpServer server_;
};

/// Agent-side HTTP fetch through an SLB VIP: picks a healthy controller
/// backend per request, reports outcomes so failed backends leave rotation.
/// Synchronous (drives the reactor until the response or timeout) — the
/// agent fetches rarely, so blocking its driver thread briefly is the
/// simple, correct choice.
class HttpPinglistSource final : public PinglistSource {
 public:
  HttpPinglistSource(net::Reactor& reactor, SlbVip& vip,
                     std::vector<net::SockAddr> backends,
                     std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  FetchResult fetch(IpAddr server_ip) override;

 private:
  net::Reactor* reactor_;
  SlbVip* vip_;
  std::vector<net::SockAddr> backends_;
  std::chrono::milliseconds timeout_;
  std::uint64_t flow_seq_ = 0;
};

}  // namespace pingmesh::controller

// Pinglist distribution: the agent-facing fetch abstraction plus the two
// controller implementations — an in-process one for simulation and an HTTP
// RESTful web service (paper §3.3.2) for real-socket deployments.
//
// The controller is pull-only and stateless: "The Pingmesh Agents need to
// periodically ask the Controller for Pinglist files and the Pingmesh
// Controller does not push any data".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "controller/generator.h"
#include "controller/pinglist.h"
#include "controller/slb.h"
#include "net/http.h"

namespace pingmesh::controller {

/// Outcome of one pinglist fetch attempt, as the agent perceives it. The
/// distinction matters for the agent's fail-closed rule (§3.4.2): both
/// "cannot connect to its controller 3 times" and "the controller is up but
/// there is no pinglist file available" stop the agent.
enum class FetchStatus : std::uint8_t {
  kOk,
  kUnreachable,  ///< connect/transport failure
  kNoPinglist,   ///< controller answered but has no file for this server
};

struct FetchResult {
  FetchStatus status = FetchStatus::kUnreachable;
  std::optional<Pinglist> pinglist;
};

/// Synchronous fetch interface used by simulation drivers and tests.
class PinglistSource {
 public:
  virtual ~PinglistSource() = default;
  virtual FetchResult fetch(IpAddr server_ip) = 0;
};

/// In-process controller: wraps the generator; can simulate outage
/// (unreachable) and pinglist withdrawal ("we can stop the Pingmesh Agent
/// from working by simply removing all the pinglist files").
///
/// fetch() is safe to call from concurrent driver shards: generation is
/// const over immutable state and the fetch counter is atomic. The
/// reachable/serving toggles must only be flipped between ticks.
class DirectPinglistSource final : public PinglistSource {
 public:
  DirectPinglistSource(const topo::Topology& topo, const PinglistGenerator& gen)
      : topo_(&topo), gen_(&gen) {}

  FetchResult fetch(IpAddr server_ip) override;

  void set_reachable(bool reachable) { reachable_ = reachable; }
  void set_serving(bool serving) { serving_ = serving; }
  [[nodiscard]] std::uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  const topo::Topology* topo_;
  const PinglistGenerator* gen_;
  bool reachable_ = true;
  bool serving_ = true;
  std::atomic<std::uint64_t> fetches_{0};
};

/// The controller's RESTful web service. Serves:
///   GET /pinglist/<dotted-ip>   -> 200 with the pinglist XML, or 404
///   GET /health                 -> 200 "ok"
/// Pinglist files are pre-generated (the real controller stores them on SSD
/// and serves them statically) and refreshed via regenerate().
class ControllerHttpService {
 public:
  ControllerHttpService(net::Reactor& reactor, const net::SockAddr& bind_addr,
                        const topo::Topology& topo, const PinglistGenerator& gen);

  /// Re-run the generator (topology or config changed).
  void regenerate();
  /// Withdraw all pinglist files (fail-closed drill).
  void withdraw_all();

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] std::uint64_t requests_served() const { return server_.requests_served(); }

 private:
  net::HttpResponse handle_pinglist(const net::HttpRequest& req);

  const topo::Topology* topo_;
  const PinglistGenerator* gen_;
  std::unordered_map<std::string, std::string> files_;  // dotted ip -> XML
  net::HttpServer server_;
};

/// Agent-side HTTP fetch through an SLB VIP: picks a healthy controller
/// backend per request, reports outcomes so failed backends leave rotation.
/// Synchronous (drives the reactor until the response or timeout) — the
/// agent fetches rarely, so blocking its driver thread briefly is the
/// simple, correct choice.
class HttpPinglistSource final : public PinglistSource {
 public:
  HttpPinglistSource(net::Reactor& reactor, SlbVip& vip,
                     std::vector<net::SockAddr> backends,
                     std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  FetchResult fetch(IpAddr server_ip) override;

 private:
  net::Reactor* reactor_;
  SlbVip* vip_;
  std::vector<net::SockAddr> backends_;
  std::chrono::milliseconds timeout_;
  std::uint64_t flow_seq_ = 0;
};

}  // namespace pingmesh::controller

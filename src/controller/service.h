// Pinglist distribution: the agent-facing fetch abstraction plus the two
// controller implementations — an in-process one for simulation and an HTTP
// RESTful web service (paper §3.3.2) for real-socket deployments.
//
// The controller is pull-only and stateless: "The Pingmesh Agents need to
// periodically ask the Controller for Pinglist files and the Pingmesh
// Controller does not push any data".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "controller/generator.h"
#include "controller/pinglist.h"
#include "controller/pinglist_cache.h"
#include "controller/slb.h"
#include "net/http.h"
#include "obs/metrics.h"

namespace pingmesh::controller {

/// Outcome of one pinglist fetch attempt, as the agent perceives it. The
/// distinction matters for the agent's fail-closed rule (§3.4.2): both
/// "cannot connect to its controller 3 times" and "the controller is up but
/// there is no pinglist file available" stop the agent.
enum class FetchStatus : std::uint8_t {
  kOk,
  kUnreachable,  ///< connect/transport failure
  kNoPinglist,   ///< controller answered but has no file for this server
};

struct FetchResult {
  FetchStatus status = FetchStatus::kUnreachable;
  /// Non-null iff status == kOk. Shared, not owned: at paper scale the
  /// controller hands the same materialized pinglist to its caches and
  /// every fetcher instead of copying ~2500 targets per fetch.
  std::shared_ptr<const Pinglist> pinglist;
};

/// Synchronous fetch interface used by simulation drivers and tests.
class PinglistSource {
 public:
  virtual ~PinglistSource() = default;
  virtual FetchResult fetch(IpAddr server_ip) = 0;
};

/// In-process controller: wraps the generator; can simulate outage
/// (unreachable) and pinglist withdrawal ("we can stop the Pingmesh Agent
/// from working by simply removing all the pinglist files").
///
/// Fetches go through a PinglistCache: a server's list is generated once
/// per generator version and shared to every subsequent fetcher — a
/// topology change only costs regeneration for servers that actually fetch
/// afterwards.
///
/// fetch() is safe to call from concurrent driver shards: the cache is
/// internally locked and the fetch counter is atomic. The
/// reachable/serving toggles must only be flipped between ticks.
class DirectPinglistSource final : public PinglistSource {
 public:
  DirectPinglistSource(const topo::Topology& topo, const PinglistGenerator& gen)
      : topo_(&topo), cache_(topo, gen) {}

  FetchResult fetch(IpAddr server_ip) override;

  void set_reachable(bool reachable) { reachable_ = reachable; }
  void set_serving(bool serving) { serving_ = serving; }
  [[nodiscard]] std::uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const PinglistCache& cache() const { return cache_; }

  /// Register controller.fetches_total{status=...} counters. The counters
  /// are atomic, so instrumented fetch() stays shard-safe.
  void enable_observability(obs::MetricsRegistry& registry);

 private:
  const topo::Topology* topo_;
  PinglistCache cache_;
  bool reachable_ = true;
  bool serving_ = true;
  std::atomic<std::uint64_t> fetches_{0};
  obs::Counter* fetch_ok_ = nullptr;
  obs::Counter* fetch_none_ = nullptr;
  obs::Counter* fetch_unreachable_ = nullptr;
};

/// The controller's RESTful web service. Serves:
///   GET /pinglist/<dotted-ip>   -> 200 with the pinglist XML (+ ETag),
///                                  304 on If-None-Match revalidation, or 404
///   GET /health                 -> 200 "ok"
/// Pinglist XML is materialized lazily, one server at a time, on first
/// request after a version change — never the whole fleet at once (the old
/// eager regenerate() was O(servers x targets) per topology change). A
/// served file is memoized together with the generator version it was
/// rendered from, so the stale-pinglist guard semantics are unchanged: a
/// version bump invalidates exactly the slots that get requested again.
class ControllerHttpService {
 public:
  ControllerHttpService(net::Reactor& reactor, const net::SockAddr& bind_addr,
                        const topo::Topology& topo, const PinglistGenerator& gen);

  /// Drop all memoized files and resume serving (topology or config
  /// changed, or recovery from withdraw_all). Files re-render on demand.
  void regenerate();
  /// Withdraw all pinglist files (fail-closed drill). Sticks until the next
  /// explicit regenerate() — a version bump alone does not undo a withdrawal.
  void withdraw_all();

  /// Register controller.pinglist_* instruments.
  void enable_observability(obs::MetricsRegistry& registry);

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] std::uint64_t requests_served() const { return server_.requests_served(); }
  [[nodiscard]] std::uint64_t regenerations() const { return regenerations_; }
  /// Per-server XML renders performed (the incremental work counter).
  [[nodiscard]] std::uint64_t files_rendered() const { return files_rendered_; }

 private:
  struct FileSlot {
    std::uint64_t version = 0;
    std::string xml;
  };

  net::HttpResponse handle_pinglist(const net::HttpRequest& req);

  const topo::Topology* topo_;
  const PinglistGenerator* gen_;
  std::unordered_map<std::string, ServerId> ip_index_;  // dotted ip -> server
  std::unordered_map<std::string, FileSlot> files_;     // dotted ip -> memo
  bool withdrawn_ = false;
  std::uint64_t served_version_ = 0;  // generator version last counted
  std::uint64_t regenerations_ = 0;
  std::uint64_t files_rendered_ = 0;
  obs::Counter* req_ok_ = nullptr;
  obs::Counter* req_miss_ = nullptr;
  obs::Counter* req_bad_path_ = nullptr;
  obs::Counter* req_not_modified_ = nullptr;
  obs::Counter* regen_counter_ = nullptr;
  net::HttpServer server_;
};

/// Agent-side HTTP fetch through an SLB VIP: picks a healthy controller
/// backend per request, reports outcomes so failed backends leave rotation.
/// Synchronous (drives the reactor until the response or timeout) — the
/// agent fetches rarely, so blocking its driver thread briefly is the
/// simple, correct choice.
///
/// Conditional GET: the source remembers the last 200's ETag + parsed list
/// per server and presents If-None-Match on refetch; a 304 reuses the
/// cached list with no body transfer and no XML parse.
class HttpPinglistSource final : public PinglistSource {
 public:
  HttpPinglistSource(net::Reactor& reactor, SlbVip& vip,
                     std::vector<net::SockAddr> backends,
                     std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  FetchResult fetch(IpAddr server_ip) override;

  /// Fetches answered by 304 revalidation (cached list reused).
  [[nodiscard]] std::uint64_t revalidated() const { return revalidated_; }

 private:
  struct CachedList {
    std::string etag;
    std::shared_ptr<const Pinglist> pinglist;
  };

  net::Reactor* reactor_;
  SlbVip* vip_;
  std::vector<net::SockAddr> backends_;
  std::chrono::milliseconds timeout_;
  std::uint64_t flow_seq_ = 0;
  std::uint64_t revalidated_ = 0;
  std::unordered_map<std::uint32_t, CachedList> cached_;  // key: server ip
};

}  // namespace pingmesh::controller

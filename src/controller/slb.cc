#include "controller/slb.h"

namespace pingmesh::controller {

std::size_t SlbVip::add_backend(std::string endpoint) {
  backends_.push_back(Backend{std::move(endpoint), true, 0, 0});
  return backends_.size() - 1;
}

std::optional<std::size_t> SlbVip::pick(std::uint64_t flow_hash) {
  std::size_t healthy = healthy_count();
  if (healthy == 0) return std::nullopt;
  std::size_t target = static_cast<std::size_t>(mix64(flow_hash) % healthy);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!backends_[i].healthy) continue;
    if (target-- == 0) {
      ++backends_[i].picks;
      return i;
    }
  }
  return std::nullopt;  // unreachable
}

void SlbVip::report(std::size_t idx, bool success) {
  Backend& b = backends_.at(idx);
  if (success) {
    b.consecutive_failures = 0;
    b.healthy = true;
  } else {
    if (++b.consecutive_failures >= failure_threshold_) b.healthy = false;
  }
}

void SlbVip::set_healthy(std::size_t idx, bool healthy) {
  Backend& b = backends_.at(idx);
  b.healthy = healthy;
  if (healthy) b.consecutive_failures = 0;
}

std::size_t SlbVip::healthy_count() const {
  std::size_t n = 0;
  for (const Backend& b : backends_) {
    if (b.healthy) ++n;
  }
  return n;
}

}  // namespace pingmesh::controller

#include "controller/slb.h"

namespace pingmesh::controller {

std::size_t SlbVip::add_backend(std::string endpoint) {
  backends_.push_back(Backend{std::move(endpoint), true, 0, 0, 0});
  if (hooks_.healthy_backends != nullptr) {
    hooks_.healthy_backends->set(static_cast<double>(healthy_count()));
  }
  return backends_.size() - 1;
}

void SlbVip::enable_observability(obs::MetricsRegistry& registry) {
  hooks_.picks = &registry.counter("slb.picks_total");
  hooks_.trials = &registry.counter("slb.half_open_trials_total");
  hooks_.flips_down = &registry.counter("slb.health_flips_total", "to=down");
  hooks_.flips_up = &registry.counter("slb.health_flips_total", "to=up");
  hooks_.healthy_backends = &registry.gauge("slb.healthy_backends");
  hooks_.healthy_backends->set(static_cast<double>(healthy_count()));
}

std::optional<std::size_t> SlbVip::pick(std::uint64_t flow_hash) {
  ++total_picks_;
  if (hooks_.picks != nullptr) hooks_.picks->inc();

  // Half-open trials first: an unhealthy backend that has sat out long
  // enough gets this flow as its recovery probe.
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& b = backends_[i];
    if (b.healthy) continue;
    if (total_picks_ - b.unhealthy_since_pick < recovery_after_) continue;
    b.unhealthy_since_pick = total_picks_;  // re-arm for the next trial
    ++b.picks;
    ++half_open_trials_;
    if (hooks_.trials != nullptr) hooks_.trials->inc();
    return i;
  }

  std::size_t healthy = healthy_count();
  if (healthy == 0) {
    // Every backend is out of rotation (e.g. they all restarted at once).
    // Returning nullopt here would blackhole the VIP permanently: with no
    // picks succeeding, report(success) is never called and no backend can
    // rejoin. Instead grant an immediate half-open trial to the backend
    // that has waited longest (ties to the lowest index); re-arming it
    // rotates the probe across backends on subsequent picks.
    if (backends_.empty()) return std::nullopt;
    std::size_t probe = 0;
    for (std::size_t i = 1; i < backends_.size(); ++i) {
      if (backends_[i].unhealthy_since_pick < backends_[probe].unhealthy_since_pick) {
        probe = i;
      }
    }
    Backend& b = backends_[probe];
    b.unhealthy_since_pick = total_picks_;
    ++b.picks;
    ++half_open_trials_;
    if (hooks_.trials != nullptr) hooks_.trials->inc();
    return probe;
  }
  std::size_t target = static_cast<std::size_t>(mix64(flow_hash) % healthy);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!backends_[i].healthy) continue;
    if (target-- == 0) {
      ++backends_[i].picks;
      return i;
    }
  }
  return std::nullopt;  // unreachable
}

void SlbVip::flip_health(Backend& b, bool healthy) {
  if (b.healthy == healthy) return;
  b.healthy = healthy;
  if (healthy) {
    ++flips_up_;
    if (hooks_.flips_up != nullptr) hooks_.flips_up->inc();
  } else {
    b.unhealthy_since_pick = total_picks_;
    ++flips_down_;
    if (hooks_.flips_down != nullptr) hooks_.flips_down->inc();
  }
  if (hooks_.healthy_backends != nullptr) {
    hooks_.healthy_backends->set(static_cast<double>(healthy_count()));
  }
}

void SlbVip::report(std::size_t idx, bool success) {
  Backend& b = backends_.at(idx);
  if (success) {
    b.consecutive_failures = 0;
    flip_health(b, true);
  } else {
    if (++b.consecutive_failures >= failure_threshold_) flip_health(b, false);
  }
}

void SlbVip::set_healthy(std::size_t idx, bool healthy) {
  Backend& b = backends_.at(idx);
  flip_health(b, healthy);
  if (healthy) b.consecutive_failures = 0;
}

std::size_t SlbVip::healthy_count() const {
  std::size_t n = 0;
  for (const Backend& b : backends_) {
    if (b.healthy) ++n;
  }
  return n;
}

}  // namespace pingmesh::controller

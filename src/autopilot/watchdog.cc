#include "autopilot/watchdog.h"

#include <cstdio>

namespace pingmesh::autopilot {

const char* health_name(Health h) {
  switch (h) {
    case Health::kOk: return "ok";
    case Health::kWarning: return "warning";
    case Health::kError: return "error";
  }
  return "?";
}

void WatchdogService::register_check(std::string name, CheckFn fn) {
  checks_.emplace_back(std::move(name), std::move(fn));
}

const std::vector<CheckResult>& WatchdogService::run_checks(SimTime now) {
  latest_.clear();
  latest_.reserve(checks_.size());
  for (auto& [name, fn] : checks_) {
    CheckResult r = fn(now);
    r.name = name;
    r.checked_at = now;
    latest_.push_back(std::move(r));
  }
  ++runs_;
  return latest_;
}

bool WatchdogService::all_healthy() const {
  for (const CheckResult& r : latest_) {
    if (r.health != Health::kOk) return false;
  }
  return true;
}

WatchdogService::CheckFn WatchdogService::threshold_check(std::function<double()> value_fn,
                                                          double max_ok, std::string unit) {
  return [value_fn = std::move(value_fn), max_ok, unit = std::move(unit)](SimTime) {
    CheckResult r;
    double v = value_fn();
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.3g %s (budget %.3g)", v, unit.c_str(), max_ok);
    r.message = buf;
    r.health = v <= max_ok ? Health::kOk : Health::kError;
    return r;
  };
}

}  // namespace pingmesh::autopilot

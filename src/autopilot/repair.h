// Repair Service (paper §2.3: Autopilot's RS "performs repair action by
// taking commands from DM"; §5.1: "We then invoke a network repairing
// service to safely restart the ToRs. ... we limit the algorithm to reload
// at most 20 switches per day. This is to limit the maximum number of
// switch reboots.")
//
// Two repair actions:
//  - reload: fixes black-holes (TCAM/ECMP corruption clears on reboot);
//    budgeted per day;
//  - RMA / isolate: for silent random drops, which "cannot be fixed by
//    switch reload and we have to RMA the faulty switch or components" —
//    the switch is isolated from live traffic immediately and queued for
//    replacement.
//
// Budget-deferred reloads are queued, not dropped: retry_deferred()
// executes them the moment the day rolls over and budget frees up, so a
// black-hole flagged at 23:59 is reloaded at 00:00 instead of waiting for
// the detector to re-flag it from scratch (the healing loop calls
// retry_deferred on every tick).
//
// The actual effect on the network is delegated to callbacks so the service
// works identically against the simulator and (hypothetically) real gear.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace pingmesh::autopilot {

enum class RepairAction : std::uint8_t { kReload, kIsolateAndRma };

struct RepairRecord {
  SimTime time = 0;
  SwitchId sw;
  RepairAction action = RepairAction::kReload;
  std::string reason;
  bool executed = false;  ///< false when deferred by the daily budget
};

struct RepairConfig {
  int max_reloads_per_day = 20;
  /// Budget accounting period. A real deployment uses calendar days; tests
  /// and soaks shrink it so budget rollover happens inside a short run.
  SimTime day_length = kNanosPerDay;
};

/// A reload request parked by an exhausted daily budget, waiting for the
/// day to roll over.
struct DeferredReload {
  SwitchId sw;
  std::string reason;
  SimTime requested = 0;
};

class RepairService {
 public:
  /// `reload_fn` / `isolate_fn` apply the effect (e.g. clear fault state in
  /// the simulator). They may be empty for dry runs.
  RepairService(RepairConfig config, std::function<void(SwitchId)> reload_fn,
                std::function<void(SwitchId)> isolate_fn)
      : config_(config), reload_fn_(std::move(reload_fn)), isolate_fn_(std::move(isolate_fn)) {}

  /// Request a reload. Returns true if executed now, false if the daily
  /// budget is exhausted — then the request is recorded AND queued, and
  /// retry_deferred() executes it as soon as budget frees up.
  bool request_reload(SwitchId sw, std::string reason, SimTime now);

  /// Isolate a switch from live traffic and queue it for RMA. Not budgeted:
  /// a spine dropping packets silently is a live-site emergency.
  void isolate_and_rma(SwitchId sw, std::string reason, SimTime now);

  /// Execute queued deferred reloads, oldest first, while today's budget
  /// allows. Returns the switches reloaded by this call (in order).
  std::vector<SwitchId> retry_deferred(SimTime now);

  [[nodiscard]] int reloads_executed_today(SimTime now) const;
  [[nodiscard]] int reloads_remaining_today(SimTime now) const;
  [[nodiscard]] const std::vector<RepairRecord>& history() const { return history_; }
  [[nodiscard]] const std::vector<SwitchId>& rma_queue() const { return rma_queue_; }
  /// Reloads still parked behind the budget (surfaced by soak reports).
  [[nodiscard]] const std::vector<DeferredReload>& deferred() const { return deferred_; }
  /// Deferred requests that were eventually executed by retry_deferred().
  [[nodiscard]] std::uint64_t deferred_executed_total() const { return deferred_executed_; }
  [[nodiscard]] const RepairConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::int64_t day_of(SimTime t) const { return t / config_.day_length; }
  void execute_reload(SwitchId sw, std::string reason, SimTime now);
  void drop_deferred(SwitchId sw);

  RepairConfig config_;
  std::function<void(SwitchId)> reload_fn_;
  std::function<void(SwitchId)> isolate_fn_;
  std::vector<RepairRecord> history_;
  std::vector<SwitchId> rma_queue_;
  std::vector<DeferredReload> deferred_;
  std::uint64_t deferred_executed_ = 0;
};

}  // namespace pingmesh::autopilot

// Watchdog framework (paper §2.3 / §3.5): Autopilot's Watchdog Service
// "monitors and reports the health status of various hardware and
// software"; "All the components of Pingmesh have watchdogs to watch
// whether they are running correctly or not, e.g., whether pinglists are
// generated correctly, whether the CPU and memory usages are within
// budget, whether pingmesh data are reported and stored, whether DSA
// reports network SLAs in time".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace pingmesh::autopilot {

enum class Health : std::uint8_t { kOk, kWarning, kError };

const char* health_name(Health h);

struct CheckResult {
  std::string name;
  Health health = Health::kOk;
  std::string message;
  SimTime checked_at = 0;
};

class WatchdogService {
 public:
  using CheckFn = std::function<CheckResult(SimTime now)>;

  /// Register a named check; the function should fill health + message
  /// (name/checked_at are stamped by the service).
  void register_check(std::string name, CheckFn fn);

  /// Run all checks; results are retained as the latest report.
  const std::vector<CheckResult>& run_checks(SimTime now);

  [[nodiscard]] const std::vector<CheckResult>& latest() const { return latest_; }
  [[nodiscard]] bool all_healthy() const;
  [[nodiscard]] std::size_t check_count() const { return checks_.size(); }
  [[nodiscard]] std::uint64_t runs() const { return runs_; }

  /// Convenience: build a threshold check over a numeric probe function.
  static CheckFn threshold_check(std::function<double()> value_fn, double max_ok,
                                 std::string unit);

 private:
  std::vector<std::pair<std::string, CheckFn>> checks_;
  std::vector<CheckResult> latest_;
  std::uint64_t runs_ = 0;
};

}  // namespace pingmesh::autopilot

#include "autopilot/service_manager.h"

namespace pingmesh::autopilot {

std::size_t ServiceManager::manage(std::string name, ResourceBudget budget,
                                   std::function<std::size_t()> memory_probe,
                                   std::function<double()> cpu_probe,
                                   std::function<void()> terminate) {
  ManagedService service;
  service.name = std::move(name);
  service.budget = budget;
  service.memory_probe = std::move(memory_probe);
  service.cpu_probe = std::move(cpu_probe);
  service.terminate = std::move(terminate);
  services_.push_back(std::move(service));
  return services_.size() - 1;
}

int ServiceManager::enforce(SimTime now) {
  int terminated = 0;
  for (ManagedService& service : services_) {
    service.last_checked = now;
    bool over = false;
    if (service.memory_probe &&
        service.memory_probe() > service.budget.max_memory_bytes) {
      over = true;
    }
    if (service.cpu_probe && service.cpu_probe() > service.budget.max_cpu_fraction) {
      over = true;
    }
    if (over) {
      if (service.terminate) service.terminate();
      ++service.terminations;
      ++total_terminations_;
      ++terminated;
    }
  }
  return terminated;
}

}  // namespace pingmesh::autopilot

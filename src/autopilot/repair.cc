#include "autopilot/repair.h"

namespace pingmesh::autopilot {

bool RepairService::request_reload(SwitchId sw, std::string reason, SimTime now) {
  RepairRecord rec;
  rec.time = now;
  rec.sw = sw;
  rec.action = RepairAction::kReload;
  rec.reason = std::move(reason);
  rec.executed = reloads_executed_today(now) < config_.max_reloads_per_day;
  if (rec.executed && reload_fn_) reload_fn_(sw);
  history_.push_back(std::move(rec));
  return history_.back().executed;
}

void RepairService::isolate_and_rma(SwitchId sw, std::string reason, SimTime now) {
  RepairRecord rec;
  rec.time = now;
  rec.sw = sw;
  rec.action = RepairAction::kIsolateAndRma;
  rec.reason = std::move(reason);
  rec.executed = true;
  if (isolate_fn_) isolate_fn_(sw);
  rma_queue_.push_back(sw);
  history_.push_back(std::move(rec));
}

int RepairService::reloads_executed_today(SimTime now) const {
  std::int64_t today = day_of(now);
  int n = 0;
  for (const RepairRecord& r : history_) {
    if (r.action == RepairAction::kReload && r.executed && day_of(r.time) == today) ++n;
  }
  return n;
}

int RepairService::reloads_remaining_today(SimTime now) const {
  int rem = config_.max_reloads_per_day - reloads_executed_today(now);
  return rem > 0 ? rem : 0;
}

}  // namespace pingmesh::autopilot

#include "autopilot/repair.h"

#include <algorithm>

namespace pingmesh::autopilot {

void RepairService::execute_reload(SwitchId sw, std::string reason, SimTime now) {
  RepairRecord rec;
  rec.time = now;
  rec.sw = sw;
  rec.action = RepairAction::kReload;
  rec.reason = std::move(reason);
  rec.executed = true;
  if (reload_fn_) reload_fn_(sw);
  history_.push_back(std::move(rec));
}

void RepairService::drop_deferred(SwitchId sw) {
  deferred_.erase(std::remove_if(deferred_.begin(), deferred_.end(),
                                 [sw](const DeferredReload& d) { return d.sw == sw; }),
                  deferred_.end());
}

bool RepairService::request_reload(SwitchId sw, std::string reason, SimTime now) {
  if (reloads_executed_today(now) < config_.max_reloads_per_day) {
    // A reload moots any parked request for the same switch.
    drop_deferred(sw);
    execute_reload(sw, std::move(reason), now);
    return true;
  }
  RepairRecord rec;
  rec.time = now;
  rec.sw = sw;
  rec.action = RepairAction::kReload;
  rec.reason = reason;
  rec.executed = false;
  history_.push_back(std::move(rec));
  bool already_parked = std::any_of(deferred_.begin(), deferred_.end(),
                                    [sw](const DeferredReload& d) { return d.sw == sw; });
  if (!already_parked) deferred_.push_back(DeferredReload{sw, std::move(reason), now});
  return false;
}

void RepairService::isolate_and_rma(SwitchId sw, std::string reason, SimTime now) {
  RepairRecord rec;
  rec.time = now;
  rec.sw = sw;
  rec.action = RepairAction::kIsolateAndRma;
  rec.reason = std::move(reason);
  rec.executed = true;
  if (isolate_fn_) isolate_fn_(sw);
  // RMA replaces the switch outright; a parked reload would reboot the
  // fresh hardware for nothing.
  drop_deferred(sw);
  rma_queue_.push_back(sw);
  history_.push_back(std::move(rec));
}

std::vector<SwitchId> RepairService::retry_deferred(SimTime now) {
  std::vector<SwitchId> executed;
  while (!deferred_.empty() &&
         reloads_executed_today(now) < config_.max_reloads_per_day) {
    DeferredReload d = deferred_.front();
    deferred_.erase(deferred_.begin());
    execute_reload(d.sw, d.reason + " [deferred since " +
                             std::to_string(d.requested / kNanosPerSecond) + "s]",
                   now);
    ++deferred_executed_;
    executed.push_back(d.sw);
  }
  return executed;
}

int RepairService::reloads_executed_today(SimTime now) const {
  std::int64_t today = day_of(now);
  int n = 0;
  for (const RepairRecord& r : history_) {
    if (r.action == RepairAction::kReload && r.executed && day_of(r.time) == today) ++n;
  }
  return n;
}

int RepairService::reloads_remaining_today(SimTime now) const {
  int rem = config_.max_reloads_per_day - reloads_executed_today(now);
  return rem > 0 ? rem : 0;
}

}  // namespace pingmesh::autopilot

// Service Manager (paper §2.3): the Autopilot shared service "that manages
// the life-cycle and resource usage of other applications. Shared services
// must be light-weight with low CPU, memory, and bandwidth resource usage,
// and they need to be reliable without resource leakage and crashes."
//
// §3.4.2 relies on it for the agent's outermost safety net: "The CPU and
// maximum memory usages of the Pingmesh Agent are confined by the OS. Once
// the maximum memory usage exceeds the cap, the Pingmesh Agent will be
// terminated." This model enforces declared budgets against polled usage
// probes and terminates + restarts offenders.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace pingmesh::autopilot {

struct ResourceBudget {
  std::size_t max_memory_bytes = 45 * 1024 * 1024;  ///< the paper's agent cap
  double max_cpu_fraction = 0.05;                   ///< of one core
};

struct ManagedService {
  std::string name;
  ResourceBudget budget;
  std::function<std::size_t()> memory_probe;  ///< current bytes
  std::function<double()> cpu_probe;          ///< current fraction of a core
  std::function<void()> terminate;            ///< kill + restart hook
  bool running = true;
  std::uint64_t terminations = 0;
  SimTime last_checked = 0;
};

class ServiceManager {
 public:
  /// Register a service; probes may be empty (that resource is unchecked).
  std::size_t manage(std::string name, ResourceBudget budget,
                     std::function<std::size_t()> memory_probe,
                     std::function<double()> cpu_probe, std::function<void()> terminate);

  /// Poll every service; terminate (and count) the ones over budget.
  /// Returns the number of terminations this round. Terminated services
  /// are considered restarted immediately (Autopilot restarts crashed
  /// shared services).
  int enforce(SimTime now);

  [[nodiscard]] const std::vector<ManagedService>& services() const { return services_; }
  [[nodiscard]] std::uint64_t total_terminations() const { return total_terminations_; }

 private:
  std::vector<ManagedService> services_;
  std::uint64_t total_terminations_ = 0;
};

}  // namespace pingmesh::autopilot

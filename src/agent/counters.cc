#include "agent/counters.h"

namespace pingmesh::agent {

// Default LatencySketch geometry: 1% relative error, 1 us .. 60 s. All
// agents share it so the PA path can merge their window sketches directly.
PerfCounters::PerfCounters(SimTime window_start)
    : window_start_(window_start), sketch_() {
  cur_.window_start = window_start;
}

void PerfCounters::record_probe(bool success, SimTime rtt) {
  ++cur_.probes;
  if (!success) {
    ++cur_.failures;
    return;
  }
  ++cur_.successes;
  switch (syn_drop_signature(rtt)) {
    case 1:
      ++cur_.probes_3s;
      return;
    case 2:
      ++cur_.probes_9s;
      return;
    default:
      sketch_.record(rtt);
  }
}

CounterSnapshot PerfCounters::peek(SimTime now) const {
  CounterSnapshot s = cur_;
  s.window_end = now;
  s.p50_ns = sketch_.p50();
  s.p99_ns = sketch_.p99();
  s.latency = sketch_;
  return s;
}

CounterSnapshot PerfCounters::collect(SimTime now) {
  CounterSnapshot s = peek(now);
  cur_ = CounterSnapshot{};
  cur_.window_start = now;
  sketch_.clear();
  window_start_ = now;
  return s;
}

}  // namespace pingmesh::agent

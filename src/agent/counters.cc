#include "agent/counters.h"

namespace pingmesh::agent {

PerfCounters::PerfCounters(SimTime window_start)
    : window_start_(window_start), hist_(/*min_value=*/1'000, /*octaves=*/32,
                                         /*sub_buckets_per_octave=*/32) {
  cur_.window_start = window_start;
}

void PerfCounters::record_probe(bool success, SimTime rtt) {
  ++cur_.probes;
  if (!success) {
    ++cur_.failures;
    return;
  }
  ++cur_.successes;
  switch (syn_drop_signature(rtt)) {
    case 1:
      ++cur_.probes_3s;
      return;
    case 2:
      ++cur_.probes_9s;
      return;
    default:
      hist_.record(rtt);
  }
}

CounterSnapshot PerfCounters::peek(SimTime now) const {
  CounterSnapshot s = cur_;
  s.window_end = now;
  s.p50_ns = hist_.p50();
  s.p99_ns = hist_.p99();
  return s;
}

CounterSnapshot PerfCounters::collect(SimTime now) {
  CounterSnapshot s = peek(now);
  cur_ = CounterSnapshot{};
  cur_.window_start = now;
  hist_.clear();
  window_start_ = now;
  return s;
}

}  // namespace pingmesh::agent

#include "agent/record.h"

#include <charconv>

#include "common/csv.h"

namespace pingmesh::agent {

namespace {

std::string u64s(std::uint64_t v) { return std::to_string(v); }
std::string i64s(std::int64_t v) { return std::to_string(v); }

std::optional<std::int64_t> parse_i64(const std::string& s) {
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

const std::vector<std::string>& LatencyRecord::csv_header() {
  static const std::vector<std::string> header = {
      "timestamp_ns", "src_ip",  "dst_ip",     "src_port",        "dst_port",
      "kind",         "qos",     "success",    "rtt_ns",          "payload_success",
      "payload_rtt_ns", "payload_bytes"};
  return header;
}

std::vector<std::string> LatencyRecord::to_csv_row() const {
  return {
      i64s(timestamp),
      u64s(src_ip.v),
      u64s(dst_ip.v),
      u64s(src_port),
      u64s(dst_port),
      u64s(static_cast<std::uint8_t>(kind)),
      u64s(static_cast<std::uint8_t>(qos)),
      success ? "1" : "0",
      i64s(rtt),
      payload_success ? "1" : "0",
      i64s(payload_rtt),
      u64s(payload_bytes),
  };
}

std::optional<LatencyRecord> LatencyRecord::from_csv_row(
    const std::vector<std::string>& row) {
  if (row.size() != csv_header().size()) return std::nullopt;
  LatencyRecord r;
  auto ts = parse_i64(row[0]);
  auto src = parse_i64(row[1]);
  auto dst = parse_i64(row[2]);
  auto sp = parse_i64(row[3]);
  auto dp = parse_i64(row[4]);
  auto kind = parse_i64(row[5]);
  auto qos = parse_i64(row[6]);
  auto success = parse_i64(row[7]);
  auto rtt = parse_i64(row[8]);
  auto psuccess = parse_i64(row[9]);
  auto prtt = parse_i64(row[10]);
  auto pbytes = parse_i64(row[11]);
  if (!ts || !src || !dst || !sp || !dp || !kind || !qos || !success || !rtt ||
      !psuccess || !prtt || !pbytes) {
    return std::nullopt;
  }
  if (*kind > 2 || *qos > 1) return std::nullopt;
  r.timestamp = *ts;
  r.src_ip = IpAddr(static_cast<std::uint32_t>(*src));
  r.dst_ip = IpAddr(static_cast<std::uint32_t>(*dst));
  r.src_port = static_cast<std::uint16_t>(*sp);
  r.dst_port = static_cast<std::uint16_t>(*dp);
  r.kind = static_cast<controller::ProbeKind>(*kind);
  r.qos = static_cast<controller::QosClass>(*qos);
  r.success = *success != 0;
  r.rtt = *rtt;
  r.payload_success = *psuccess != 0;
  r.payload_rtt = *prtt;
  r.payload_bytes = static_cast<std::uint32_t>(*pbytes);
  return r;
}

std::string encode_batch(const std::vector<LatencyRecord>& records) {
  std::string out;
  out.reserve(records.size() * 64);
  for (const LatencyRecord& r : records) {
    out += csv::encode_row(r.to_csv_row());
    out += '\n';
  }
  return out;
}

std::vector<LatencyRecord> decode_batch(std::string_view csv_data,
                                        DecodeStats* stats) {
  std::vector<LatencyRecord> out;
  std::size_t pos = 0;
  std::vector<std::string> row;
  while (csv::parse_row(csv_data, pos, row)) {
    if (row.size() == 1 && row[0].empty()) continue;  // blank line
    if (auto r = LatencyRecord::from_csv_row(row)) {
      out.push_back(*r);
    } else if (stats != nullptr) {
      ++stats->rows_dropped;
    }
  }
  if (stats != nullptr) stats->rows_decoded += out.size();
  return out;
}

}  // namespace pingmesh::agent

// LatencyRecord: the unit of measurement data flowing from every Pingmesh
// Agent into the storage and analysis pipeline. Encoded as CSV for upload
// (the agent "provides latency data as ... CSV files", §6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "controller/pinglist.h"

namespace pingmesh::agent {

struct LatencyRecord {
  SimTime timestamp = 0;  ///< probe launch time
  IpAddr src_ip;
  IpAddr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  controller::ProbeKind kind = controller::ProbeKind::kTcpConnect;
  controller::QosClass qos = controller::QosClass::kHigh;
  bool success = false;           ///< TCP connection established (or HTTP 200)
  SimTime rtt = 0;                ///< connect RTT, incl. SYN retransmit waits
  bool payload_success = false;
  SimTime payload_rtt = 0;
  std::uint32_t payload_bytes = 0;

  [[nodiscard]] std::vector<std::string> to_csv_row() const;
  static std::optional<LatencyRecord> from_csv_row(const std::vector<std::string>& row);

  /// CSV column headers, in row order.
  static const std::vector<std::string>& csv_header();

  /// In-memory footprint estimate for the agent's memory budget.
  static constexpr std::size_t kApproxBytes = 64;
};

/// Encode a batch as CSV (header-free; streams are schema-on-read like the
/// paper's Cosmos extents).
std::string encode_batch(const std::vector<LatencyRecord>& records);
/// Decode a CSV batch, skipping malformed rows.
std::vector<LatencyRecord> decode_batch(std::string_view csv_data);

}  // namespace pingmesh::agent

// LatencyRecord: the unit of measurement data flowing from every Pingmesh
// Agent into the storage and analysis pipeline. Encoded as CSV for upload
// (the agent "provides latency data as ... CSV files", §6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "controller/pinglist.h"

namespace pingmesh::agent {

struct LatencyRecord {
  SimTime timestamp = 0;  ///< probe launch time
  IpAddr src_ip;
  IpAddr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  controller::ProbeKind kind = controller::ProbeKind::kTcpConnect;
  controller::QosClass qos = controller::QosClass::kHigh;
  bool success = false;           ///< TCP connection established (or HTTP 200)
  SimTime rtt = 0;                ///< connect RTT, incl. SYN retransmit waits
  bool payload_success = false;
  SimTime payload_rtt = 0;
  std::uint32_t payload_bytes = 0;

  [[nodiscard]] std::vector<std::string> to_csv_row() const;
  static std::optional<LatencyRecord> from_csv_row(const std::vector<std::string>& row);

  /// CSV column headers, in row order.
  static const std::vector<std::string>& csv_header();

  /// Per-record footprint in the agent's buffer, for the memory budget.
  /// The buffer is columnar (RecordColumns), so the footprint is exactly
  /// the sum of the column element sizes — computed, not guessed, and
  /// pinned by a static_assert in record_columns.h plus a unit test. (The
  /// old hand-written constant of 64 drifted from the real representation;
  /// a wrong value here scales the whole fleet's admission budget.)
  static constexpr std::size_t kApproxBytes =
      sizeof(SimTime)                // timestamp
      + 2 * sizeof(std::uint32_t)    // src_ip, dst_ip
      + 2 * sizeof(std::uint16_t)    // src_port, dst_port
      + 3 * sizeof(std::uint8_t)     // kind, qos, success
      + sizeof(SimTime)              // rtt
      + sizeof(std::uint8_t)         // payload_success
      + sizeof(SimTime)              // payload_rtt
      + sizeof(std::uint32_t);       // payload_bytes
};

/// Row-level accounting for batch decoders. Malformed rows used to be
/// skipped silently; every decode path now reports them so the scan layer
/// can count drops into the obs MetricsRegistry and the chaos
/// record-conservation invariant can assert zero for non-corruption plans.
struct DecodeStats {
  std::uint64_t rows_decoded = 0;
  std::uint64_t rows_dropped = 0;
};

/// Encode a batch as CSV (header-free; streams are schema-on-read like the
/// paper's Cosmos extents).
std::string encode_batch(const std::vector<LatencyRecord>& records);
/// Decode a CSV batch. Malformed rows are skipped and counted into
/// `stats` (if given) — never silently lost.
std::vector<LatencyRecord> decode_batch(std::string_view csv_data,
                                        DecodeStats* stats = nullptr);

}  // namespace pingmesh::agent

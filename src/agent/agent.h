// PingmeshAgent — the per-server measurement engine (paper §3.4).
//
// "Its task is simple: downloads pinglist from the Pingmesh Controller;
// pings the servers in the pinglist; then uploads the ping result to DSA."
// Simple task, hardest component: it runs on *every* server, so it must be
// fail-closed. The safety features of §3.4.2 are implemented here:
//
//  - hard-coded floors/caps (minimum 10 s per-peer probe interval, 64 KB
//    max payload) that clamp whatever the pinglist asks for;
//  - fail-closed on controller loss: after 3 consecutive failed pinglist
//    fetches, or a fetch that finds no pinglist, the agent drops all its
//    ping peers and stops probing (it still responds to pings — responding
//    is the transport driver's job and never stops);
//  - bounded memory: the record buffer is capped; when an upload has failed
//    too many times the buffered data is discarded, never accumulated;
//  - a size-capped local log of the latency data.
//
// The class is a passive, transport-agnostic state machine: a driver calls
// tick() to learn what to do (fetch the pinglist / launch probes) and feeds
// results back. That makes the exact same logic testable on virtual time,
// runnable against the flow simulator, and runnable against real sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agent/counters.h"
#include "agent/record.h"
#include "agent/record_columns.h"
#include "agent/rotating_log.h"
#include "common/types.h"
#include "controller/pinglist.h"
#include "controller/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pingmesh::agent {

/// Transport-agnostic probe outcome fed back into the agent.
struct ProbeResult {
  bool success = false;
  SimTime rtt = 0;
  bool payload_success = false;
  SimTime payload_rtt = 0;
};

/// A probe the agent wants launched. The source port is fresh per probe
/// ("every probing needs to be a new connection and uses a new TCP source
/// port", §3.4.1).
struct ProbeRequest {
  controller::PingTarget target;
  std::uint16_t src_port = 0;
};

/// Destination of uploaded record batches (Cosmos in production; the DSA
/// module's store here; fakes in tests). Batches arrive columnar — the
/// agent's buffer is handed over by reference, so an upload moves zero
/// record bytes; implementations must not retain the reference past the
/// call.
class Uploader {
 public:
  virtual ~Uploader() = default;
  virtual bool upload(const RecordColumns& batch) = 0;
};

struct AgentConfig {
  SimTime pinglist_refresh = minutes(10);
  SimTime upload_interval = minutes(1);
  std::size_t upload_batch_records = 2000;   ///< upload when buffer reaches this
  int upload_max_retries = 3;                ///< then discard (bounded memory)
  std::size_t max_buffered_records = 100'000;
  int controller_failure_threshold = 3;      ///< fail-closed after N fetch failures
  std::string local_log_path;                ///< empty = local log disabled
  std::size_t local_log_max_bytes = 16 * 1024 * 1024;
};

/// Hard-coded safety limits (paper: "These limits are hard coded in the
/// source code", bounding Pingmesh's worst-case traffic).
constexpr SimTime kHardMinProbeInterval = seconds(10);
constexpr std::uint32_t kHardMaxPayloadBytes = 64 * 1024;

class PingmeshAgent {
 public:
  struct TickActions {
    bool fetch_pinglist = false;
    std::vector<ProbeRequest> probes;
  };

  PingmeshAgent(std::string server_name, IpAddr server_ip, AgentConfig config,
                Uploader& uploader);

  /// Advance to `now`; returns the work the driver should perform.
  TickActions tick(SimTime now);
  /// Arena-reuse variant for hot-loop drivers: clears and refills `out`
  /// (its probe vector keeps capacity across ticks, so a steady-state tick
  /// allocates nothing).
  void tick(SimTime now, TickActions& out);

  /// Deliver the outcome of a pinglist fetch the driver performed.
  void on_pinglist(const controller::FetchResult& result, SimTime now);

  /// Deliver one probe outcome.
  void on_probe_result(const ProbeRequest& request, const ProbeResult& result,
                       SimTime now);

  /// Force an upload attempt of whatever is buffered (shutdown path).
  void flush(SimTime now);

  /// Chaos hook: offset applied to record timestamps (a skewed server
  /// clock). Probing and upload scheduling stay on true sim time — only the
  /// measurement timestamps the agent stamps into its records drift, which
  /// is what a real clock-skew incident looks like downstream.
  void set_clock_skew(SimTime skew) { clock_skew_ = skew; }
  [[nodiscard]] SimTime clock_skew() const { return clock_skew_; }

  /// Wire this agent into a shared metrics registry (and optionally the
  /// data-path tracer). Instruments are fleet-wide: every agent registering
  /// the same metric name shares the same counter. Call before the first
  /// tick; safe to skip entirely (all hooks default to off).
  void enable_observability(obs::MetricsRegistry& registry,
                            const obs::Tracer* tracer = nullptr);

  /// Deferred-upload mode for multi-threaded drivers: while enabled, upload
  /// triggers (batch full / timer due) only mark the agent upload-pending
  /// instead of calling the Uploader. The driver runs many agents' probe
  /// work in parallel, then — after its barrier — drains pending uploads in
  /// server-id order via service_uploads(), so the Uploader and everything
  /// behind it stay single-threaded and see a deterministic record stream.
  void set_deferred_uploads(bool on) { defer_uploads_ = on; }
  /// Perform the upload marked pending during this tick, if any. Must be
  /// called from the (single) driver thread, outside any parallel section.
  void service_uploads(SimTime now);
  [[nodiscard]] bool upload_pending() const { return upload_pending_; }

  // --- introspection -------------------------------------------------------
  [[nodiscard]] bool probing_active() const { return probing_active_; }
  [[nodiscard]] std::size_t target_count() const { return targets_.size(); }
  [[nodiscard]] std::size_t buffered_records() const { return buffer_.size(); }
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() * LatencyRecord::kApproxBytes;
  }
  [[nodiscard]] std::uint64_t pinglist_version() const { return pinglist_version_; }
  [[nodiscard]] std::uint64_t probes_launched() const { return probes_launched_; }
  [[nodiscard]] std::uint64_t uploads_ok() const { return uploads_ok_; }
  [[nodiscard]] std::uint64_t uploads_failed() const { return uploads_failed_; }
  [[nodiscard]] std::uint64_t records_discarded() const { return records_discarded_; }
  /// Records acknowledged by the uploader (conservation ledger: every
  /// launched probe ends up uploaded, discarded, or still buffered).
  [[nodiscard]] std::uint64_t records_uploaded() const { return records_uploaded_; }
  /// Records appended to the local log (by the exactly-once contract).
  [[nodiscard]] std::uint64_t records_logged() const { return records_logged_; }
  /// Retried records whose re-append to the local log was skipped — each
  /// would have been a duplicate log entry before the high-water-mark fix.
  [[nodiscard]] std::uint64_t local_log_dup_avoided() const { return log_dup_avoided_; }
  [[nodiscard]] int consecutive_fetch_failures() const { return fetch_failures_; }
  /// Highest consecutive-failed-fetch count ever observed while the agent
  /// was still probing. The §3.4.2 fail-closed contract says this can never
  /// reach 3: by the third missed fetch the agent must already have shut
  /// probing down. Latched (not reset by recovery) so a past violation
  /// stays visible to post-run invariant checks.
  [[nodiscard]] int peak_fetch_failures_while_probing() const {
    return peak_fetch_failures_while_probing_;
  }
  [[nodiscard]] IpAddr ip() const { return ip_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// PA collection point: finish the current counter window.
  CounterSnapshot collect_counters(SimTime now) { return counters_.collect(now); }
  [[nodiscard]] CounterSnapshot peek_counters(SimTime now) const {
    return counters_.peek(now);
  }

 private:
  struct TargetState {
    controller::PingTarget target;
    SimTime next_due = 0;
  };

  void adopt_pinglist(const controller::Pinglist& pl, SimTime now);
  void fail_closed();
  void maybe_upload(SimTime now, bool force);
  void perform_upload(SimTime now);
  std::uint16_t next_src_port();

  std::string name_;
  IpAddr ip_;
  AgentConfig config_;
  Uploader* uploader_;
  RotatingLog local_log_;

  bool probing_active_ = false;
  std::uint64_t pinglist_version_ = 0;
  std::vector<TargetState> targets_;
  SimTime next_fetch_ = 0;
  int fetch_failures_ = 0;
  int peak_fetch_failures_while_probing_ = 0;
  bool fetch_outstanding_ = false;
  SimTime clock_skew_ = 0;

  // Columnar record buffer doubling as this agent's arena: clear() after a
  // successful upload keeps column capacity, so the steady state re-fills
  // warmed storage instead of re-allocating (the old std::deque paid block
  // allocations continuously).
  RecordColumns buffer_;
  // Local-log exactly-once bookkeeping: records are numbered by the order
  // they entered buffer_ (buffered_total_); logged_total_ is the high-water
  // sequence already appended to the local log, so a batch that rides a
  // retry is only logged for its unlogged suffix.
  std::uint64_t buffered_total_ = 0;
  std::uint64_t logged_total_ = 0;
  std::uint64_t records_logged_ = 0;
  std::uint64_t log_dup_avoided_ = 0;
  SimTime next_upload_ = 0;
  bool upload_timer_armed_ = false;
  int upload_failures_ = 0;
  bool defer_uploads_ = false;
  bool upload_pending_ = false;

  PerfCounters counters_;
  std::uint16_t ephemeral_port_ = 32768;

  std::uint64_t probes_launched_ = 0;
  std::uint64_t uploads_ok_ = 0;
  std::uint64_t uploads_failed_ = 0;
  std::uint64_t records_discarded_ = 0;
  std::uint64_t records_uploaded_ = 0;

  /// Cached registry instruments (shared fleet-wide); null until
  /// enable_observability().
  struct ObsHooks {
    obs::Counter* probes_ok = nullptr;
    obs::Counter* probes_failed = nullptr;
    obs::Counter* fetches_ok = nullptr;
    obs::Counter* fetches_none = nullptr;
    obs::Counter* fetches_unreachable = nullptr;
    obs::Counter* uploads_ok = nullptr;
    obs::Counter* uploads_failed = nullptr;
    obs::Counter* records_uploaded = nullptr;
    obs::Counter* records_shed = nullptr;
    obs::Counter* records_discarded = nullptr;
    obs::Counter* retry_exhausted = nullptr;
    obs::Counter* fail_closed = nullptr;
    obs::Counter* log_records = nullptr;
    obs::Counter* log_dup_avoided = nullptr;
    obs::Histogram* upload_batch = nullptr;
    obs::Histogram* buffer_occupancy = nullptr;
  };
  ObsHooks hooks_{};
  const obs::Tracer* tracer_ = nullptr;
};

}  // namespace pingmesh::agent

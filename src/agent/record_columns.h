// RecordColumns: struct-of-arrays batch representation for LatencyRecord.
//
// The agent buffer and the upload/scan hot paths used to move probe results
// as std::vector<LatencyRecord> (array-of-structs) and std::deque, paying a
// heap allocation per batch and poor cache behaviour per column scan. At
// paper scale (~100k servers, §3: tens of TB/day) that churn dominates the
// tick. RecordColumns keeps each field in its own contiguous array:
//
//  - clear() drops the rows but keeps every column's capacity, so a
//    per-shard instance acts as an arena that is reused tick after tick;
//  - drop_front() is amortized O(1) via a head offset (the agent's
//    shed-oldest path), compacting only when more than half the storage
//    is dead;
//  - column() accessors expose the raw arrays for SIMD-friendly scans
//    (the dsa scan cache filters on the timestamp column without
//    materializing rows).
//
// Row order is preserved: row(i) materializes the i-th LatencyRecord
// exactly as it was pushed, so CSV encodings produced from a RecordColumns
// are byte-identical to the AoS path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "agent/record.h"
#include "common/types.h"

namespace pingmesh::agent {

class RecordColumns {
 public:
  /// Exact per-row footprint of the columnar storage. Must match the
  /// budget constant the agent uses for admission control.
  static constexpr std::size_t kBytesPerRecord =
      sizeof(SimTime)                // timestamp
      + 2 * sizeof(std::uint32_t)    // src_ip, dst_ip
      + 2 * sizeof(std::uint16_t)    // src_port, dst_port
      + 3 * sizeof(std::uint8_t)     // kind, qos, success
      + sizeof(SimTime)              // rtt
      + sizeof(std::uint8_t)         // payload_success
      + sizeof(SimTime)              // payload_rtt
      + sizeof(std::uint32_t);       // payload_bytes
  static_assert(kBytesPerRecord == LatencyRecord::kApproxBytes,
                "LatencyRecord::kApproxBytes must track the columnar "
                "representation; update both together");

  [[nodiscard]] std::size_t size() const { return timestamp_.size() - head_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void push_back(const LatencyRecord& r);

  /// Materialize row i (0 == oldest retained row).
  [[nodiscard]] LatencyRecord row(std::size_t i) const;

  /// Drop the n oldest rows (amortized O(1); storage is compacted lazily).
  void drop_front(std::size_t n);

  /// Drop all rows but keep column capacity — the arena-reuse path.
  void clear();

  /// Release all storage (capacity included).
  void reset();

  void reserve(std::size_t n);
  [[nodiscard]] std::size_t capacity() const { return timestamp_.capacity(); }

  /// Append all rows of `other` to this batch.
  void append(const RecordColumns& other);

  /// Raw column access for scans. Index 0 is the oldest retained row;
  /// pointers are invalidated by any mutation.
  [[nodiscard]] const SimTime* timestamps() const { return timestamp_.data() + head_; }
  [[nodiscard]] const std::uint32_t* src_ips() const { return src_ip_.data() + head_; }
  [[nodiscard]] const std::uint32_t* dst_ips() const { return dst_ip_.data() + head_; }
  [[nodiscard]] const std::uint16_t* src_ports() const { return src_port_.data() + head_; }
  [[nodiscard]] const std::uint16_t* dst_ports() const { return dst_port_.data() + head_; }
  [[nodiscard]] const std::uint8_t* kinds() const { return kind_.data() + head_; }
  [[nodiscard]] const std::uint8_t* qos() const { return qos_.data() + head_; }
  [[nodiscard]] const std::uint8_t* successes() const { return success_.data() + head_; }
  [[nodiscard]] const SimTime* rtts() const { return rtt_.data() + head_; }
  [[nodiscard]] const std::uint8_t* payload_successes() const {
    return payload_success_.data() + head_;
  }
  [[nodiscard]] const SimTime* payload_rtts() const { return payload_rtt_.data() + head_; }
  [[nodiscard]] const std::uint32_t* payload_bytes() const {
    return payload_bytes_.data() + head_;
  }

  /// Materialize rows [from, size()) as an AoS vector.
  [[nodiscard]] std::vector<LatencyRecord> to_records(std::size_t from = 0) const;

  /// CSV-encode rows [from, size()) — byte-identical to
  /// agent::encode_batch over the same rows.
  [[nodiscard]] std::string encode_csv(std::size_t from = 0) const;

 private:
  void compact();

  std::size_t head_ = 0;  // rows [0, head_) in the vectors are dead
  std::vector<SimTime> timestamp_;
  std::vector<std::uint32_t> src_ip_;
  std::vector<std::uint32_t> dst_ip_;
  std::vector<std::uint16_t> src_port_;
  std::vector<std::uint16_t> dst_port_;
  std::vector<std::uint8_t> kind_;
  std::vector<std::uint8_t> qos_;
  std::vector<std::uint8_t> success_;
  std::vector<SimTime> rtt_;
  std::vector<std::uint8_t> payload_success_;
  std::vector<SimTime> payload_rtt_;
  std::vector<std::uint32_t> payload_bytes_;
};

/// Build a RecordColumns from an AoS batch.
RecordColumns to_columns(const std::vector<LatencyRecord>& records);

}  // namespace pingmesh::agent

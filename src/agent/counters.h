// Agent-local performance counters (paper §3.5): "the Pingmesh Agent
// performs local calculation on the latency data and produces a set of
// performance counters including the packet drop rate, the network latency
// at 50th the 99th percentile". These are the counters the Autopilot
// Perfcounter Aggregator collects on its faster 5-minute pipeline.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "streaming/sketch.h"

namespace pingmesh::agent {

/// SYN-drop signature of a successful probe's connect RTT (paper §4.2):
/// an RTT around 3 s means the first SYN was lost (initial RTO), around
/// 9 s means two SYNs were lost (3 s + doubled 6 s). Returns 0, 1, or 2.
[[nodiscard]] constexpr int syn_drop_signature(SimTime rtt) {
  // Generous bands: the residual RTT after the retransmit wait is sub-second.
  if (rtt >= seconds(2) + millis(500) && rtt < seconds(6)) return 1;
  if (rtt >= seconds(8) && rtt < seconds(15)) return 2;
  return 0;
}

struct CounterSnapshot {
  SimTime window_start = 0;
  SimTime window_end = 0;
  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;      ///< connect never completed
  std::uint64_t probes_3s = 0;     ///< one-SYN-drop signatures
  std::uint64_t probes_9s = 0;     ///< two-SYN-drop signatures
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  /// Mergeable sketch of the window's clean RTTs. Lets the Perfcounter
  /// Aggregator compute true pod-level percentiles by merging server
  /// sketches instead of probe-weighted means of server p50/p99 (empty when
  /// a snapshot was built by hand from bare counters — consumers fall back
  /// to the scalar fields then).
  streaming::LatencySketch latency;

  /// The paper's drop-rate estimator:
  ///   (probes with 3s rtt + probes with 9s rtt) / total successful probes.
  [[nodiscard]] double drop_rate() const {
    if (successes == 0) return 0.0;
    return static_cast<double>(probes_3s + probes_9s) / static_cast<double>(successes);
  }
};

/// Windowed counters; collect() returns the finished window and starts a
/// fresh one.
class PerfCounters {
 public:
  explicit PerfCounters(SimTime window_start = 0);

  /// Record one probe outcome. Only clean RTTs (no retransmit signature)
  /// enter the latency percentiles — a 3 s connect is a drop artifact, not
  /// a latency sample.
  void record_probe(bool success, SimTime rtt);

  [[nodiscard]] CounterSnapshot peek(SimTime now) const;
  CounterSnapshot collect(SimTime now);

  /// Approximate memory footprint (agent memory budget accounting). The
  /// sketch is fixed-size, so agent memory is bounded regardless of probe
  /// volume (§3.4.2 safety requirement).
  [[nodiscard]] std::size_t memory_bytes() const { return sketch_.memory_bytes(); }

 private:
  SimTime window_start_;
  CounterSnapshot cur_{};
  streaming::LatencySketch sketch_;
};

}  // namespace pingmesh::agent

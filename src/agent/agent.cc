#include "agent/agent.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace pingmesh::agent {

PingmeshAgent::PingmeshAgent(std::string server_name, IpAddr server_ip,
                             AgentConfig config, Uploader& uploader)
    : name_(std::move(server_name)),
      ip_(server_ip),
      config_(std::move(config)),
      uploader_(&uploader),
      local_log_(config_.local_log_path, config_.local_log_max_bytes),
      counters_(0) {}

std::uint16_t PingmeshAgent::next_src_port() {
  // Ephemeral range sweep; a fresh port per probe re-rolls every ECMP choice.
  if (ephemeral_port_ < 32768 || ephemeral_port_ >= 60999) ephemeral_port_ = 32768;
  return ephemeral_port_++;
}

void PingmeshAgent::adopt_pinglist(const controller::Pinglist& pl, SimTime now) {
  pinglist_version_ = pl.version;
  targets_.clear();
  targets_.reserve(pl.targets.size());
  for (controller::PingTarget t : pl.targets) {
    // Safety clamps — enforced here regardless of what the controller says.
    t.interval = std::max({t.interval, pl.min_probe_interval, kHardMinProbeInterval});
    t.payload_bytes = std::min(t.payload_bytes, kHardMaxPayloadBytes);
    TargetState ts;
    ts.target = t;
    // Stagger first probes across the interval so a fleet restart does not
    // synchronize its probe bursts.
    std::uint64_t h = mix64((static_cast<std::uint64_t>(t.ip.v) << 16) ^ t.port ^ ip_.v);
    ts.next_due = now + static_cast<SimTime>(h % static_cast<std::uint64_t>(t.interval));
    targets_.push_back(ts);
  }
  probing_active_ = true;
}

void PingmeshAgent::enable_observability(obs::MetricsRegistry& registry,
                                         const obs::Tracer* tracer) {
  hooks_.probes_ok = &registry.counter("agent.probes_total", "result=ok");
  hooks_.probes_failed = &registry.counter("agent.probes_total", "result=fail");
  hooks_.fetches_ok = &registry.counter("agent.pinglist_fetches_total", "result=ok");
  hooks_.fetches_none = &registry.counter("agent.pinglist_fetches_total", "result=none");
  hooks_.fetches_unreachable =
      &registry.counter("agent.pinglist_fetches_total", "result=unreachable");
  hooks_.uploads_ok = &registry.counter("agent.uploads_total", "result=ok");
  hooks_.uploads_failed = &registry.counter("agent.uploads_total", "result=fail");
  hooks_.records_uploaded = &registry.counter("agent.records_uploaded_total");
  hooks_.records_shed = &registry.counter("agent.records_shed_total");
  hooks_.records_discarded = &registry.counter("agent.records_discarded_total");
  hooks_.retry_exhausted = &registry.counter("agent.upload_retry_exhausted_total");
  hooks_.fail_closed = &registry.counter("agent.fail_closed_total");
  hooks_.log_records = &registry.counter("agent.local_log_records_total");
  hooks_.log_dup_avoided = &registry.counter("agent.local_log_dup_avoided_total");
  // Count-valued histograms: unit-1 floor, range wide enough for the
  // buffer cap.
  streaming::LatencySketch::Config counts;
  counts.min_value_ns = 1;
  counts.max_value_ns = 1'000'000;
  hooks_.upload_batch = &registry.histogram("agent.upload_batch_records", "", counts);
  hooks_.buffer_occupancy = &registry.histogram("agent.buffer_occupancy", "", counts);
  tracer_ = tracer;
}

void PingmeshAgent::fail_closed() {
  // "the Pingmesh Agent will remove all its existing ping peers and stop
  // all its ping activities. (It will still react to pings though.)"
  if (probing_active_ && hooks_.fail_closed != nullptr) hooks_.fail_closed->inc();
  targets_.clear();
  probing_active_ = false;
}

PingmeshAgent::TickActions PingmeshAgent::tick(SimTime now) {
  TickActions actions;
  tick(now, actions);
  return actions;
}

void PingmeshAgent::tick(SimTime now, TickActions& out) {
  out.fetch_pinglist = false;
  out.probes.clear();

  if (!fetch_outstanding_ && now >= next_fetch_) {
    out.fetch_pinglist = true;
    fetch_outstanding_ = true;
  }

  if (probing_active_) {
    for (TargetState& ts : targets_) {
      if (now < ts.next_due) continue;
      ProbeRequest req;
      req.target = ts.target;
      req.src_port = next_src_port();
      out.probes.push_back(req);
      ++probes_launched_;
      ts.next_due = now + ts.target.interval;
    }
  }

  maybe_upload(now, /*force=*/false);
}

void PingmeshAgent::on_pinglist(const controller::FetchResult& result, SimTime now) {
  fetch_outstanding_ = false;
  next_fetch_ = now + config_.pinglist_refresh;
  switch (result.status) {
    case controller::FetchStatus::kOk:
      if (hooks_.fetches_ok != nullptr) hooks_.fetches_ok->inc();
      fetch_failures_ = 0;
      if (result.pinglist) {
        adopt_pinglist(*result.pinglist, now);
      } else {
        fail_closed();  // protocol violation: treat as no pinglist
      }
      return;
    case controller::FetchStatus::kNoPinglist:
      // Controller is up but serves no file: stop immediately. This is the
      // operator's remote kill switch.
      if (hooks_.fetches_none != nullptr) hooks_.fetches_none->inc();
      fetch_failures_ = 0;
      fail_closed();
      return;
    case controller::FetchStatus::kUnreachable:
      if (hooks_.fetches_unreachable != nullptr) hooks_.fetches_unreachable->inc();
      if (++fetch_failures_ >= config_.controller_failure_threshold) fail_closed();
      // Latched safety witness: if the agent is still probing after this
      // missed fetch was fully handled, record how deep the failure streak
      // ran. The chaos invariant checker asserts this never reaches 3.
      if (probing_active_) {
        peak_fetch_failures_while_probing_ =
            std::max(peak_fetch_failures_while_probing_, fetch_failures_);
      }
      return;
  }
}

void PingmeshAgent::on_probe_result(const ProbeRequest& request, const ProbeResult& result,
                                    SimTime now) {
  LatencyRecord rec;
  rec.timestamp = std::max<SimTime>(0, now + clock_skew_);
  rec.src_ip = ip_;
  rec.dst_ip = request.target.ip;
  rec.src_port = request.src_port;
  rec.dst_port = request.target.port;
  rec.kind = request.target.kind;
  rec.qos = request.target.qos;
  rec.success = result.success;
  rec.rtt = result.rtt;
  rec.payload_success = result.payload_success;
  rec.payload_rtt = result.payload_rtt;
  rec.payload_bytes = request.target.payload_bytes;

  counters_.record_probe(result.success, result.rtt);
  if (hooks_.probes_ok != nullptr) {
    (result.success ? hooks_.probes_ok : hooks_.probes_failed)->inc();
  }

  if (buffer_.size() >= config_.max_buffered_records) {
    // Bounded memory: shed the oldest record rather than grow.
    buffer_.drop_front(1);
    ++records_discarded_;
    if (hooks_.records_shed != nullptr) hooks_.records_shed->inc();
  }
  buffer_.push_back(rec);
  ++buffered_total_;
  if (hooks_.buffer_occupancy != nullptr) {
    hooks_.buffer_occupancy->observe(static_cast<std::int64_t>(buffer_.size()));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    std::uint64_t key = obs::trace_key(rec.timestamp, rec.src_ip.v, rec.dst_ip.v,
                                       rec.src_port);
    if (tracer_->sampled(key)) {
      tracer_->span(key, "agent.probe", now, now + result.rtt,
                    std::string("success=") + (result.success ? "1" : "0") +
                        ";rtt=" + std::to_string(result.rtt));
      tracer_->span(key, "agent.buffer", now, now,
                    "occupancy=" + std::to_string(buffer_.size()));
    }
  }
  PINGMESH_DCHECK(buffer_.size() <= config_.max_buffered_records);
  maybe_upload(now, /*force=*/false);
}

void PingmeshAgent::maybe_upload(SimTime now, bool force) {
  if (!upload_timer_armed_) {
    next_upload_ = now + config_.upload_interval;
    upload_timer_armed_ = true;
  }
  bool batch_full = buffer_.size() >= config_.upload_batch_records;
  bool timer_due = now >= next_upload_ && !buffer_.empty();
  if (!force && !batch_full && !timer_due) return;
  if (defer_uploads_) {
    // The trigger fired, but the actual upload waits for the driver's
    // serial phase (service_uploads) so the Uploader is never entered from
    // a worker thread.
    upload_pending_ = true;
    return;
  }
  perform_upload(now);
}

void PingmeshAgent::service_uploads(SimTime now) {
  if (!upload_pending_) return;
  upload_pending_ = false;
  perform_upload(now);
}

void PingmeshAgent::perform_upload(SimTime now) {
  if (buffer_.empty()) {
    next_upload_ = now + config_.upload_interval;
    return;
  }

  const std::size_t batch_size = buffer_.size();

  // Local log: each record is appended exactly once, however many upload
  // attempts it rides. The buffer's records occupy the sequence range
  // [buffered_total_ - buffer_.size(), buffered_total_); everything below
  // logged_total_ already hit the log on an earlier (failed) attempt.
  std::uint64_t base = buffered_total_ - buffer_.size();
  std::uint64_t already = std::max(logged_total_, base) - base;
  if (local_log_.enabled()) {
    if (already < batch_size) {
      std::uint64_t fresh = batch_size - already;
      local_log_.append(buffer_.encode_csv(static_cast<std::size_t>(already)));
      records_logged_ += fresh;
      if (hooks_.log_records != nullptr) hooks_.log_records->inc(fresh);
    }
    if (already > 0) {
      log_dup_avoided_ += already;
      if (hooks_.log_dup_avoided != nullptr) hooks_.log_dup_avoided->inc(already);
    }
  }
  logged_total_ = buffered_total_;

  int attempt = upload_failures_ + 1;
  // The buffer itself is the batch: columnar handoff, no AoS copy.
  bool ok = uploader_->upload(buffer_);
  if (hooks_.upload_batch != nullptr) {
    hooks_.upload_batch->observe(static_cast<std::int64_t>(batch_size));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    std::string note = std::string("result=") + (ok ? "ok" : "fail") +
                       ";attempt=" + std::to_string(attempt) +
                       ";batch=" + std::to_string(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      LatencyRecord r = buffer_.row(i);
      std::uint64_t key = obs::trace_key(r.timestamp, r.src_ip.v, r.dst_ip.v, r.src_port);
      if (tracer_->sampled(key)) tracer_->span(key, "agent.upload", now, now, note);
    }
  }

  if (ok) {
    buffer_.clear();
    upload_failures_ = 0;
    ++uploads_ok_;
    records_uploaded_ += batch_size;
    if (hooks_.uploads_ok != nullptr) {
      hooks_.uploads_ok->inc();
      hooks_.records_uploaded->inc(batch_size);
    }
  } else {
    ++uploads_failed_;
    if (hooks_.uploads_failed != nullptr) hooks_.uploads_failed->inc();
    if (++upload_failures_ > config_.upload_max_retries) {
      // "After that it will stop trying and discard the in-memory data.
      // This is to ensure the Pingmesh Agent uses bounded memory resource."
      records_discarded_ += buffer_.size();
      if (hooks_.records_discarded != nullptr) {
        hooks_.records_discarded->inc(buffer_.size());
        hooks_.retry_exhausted->inc();
      }
      buffer_.clear();
      upload_failures_ = 0;
    }
  }
  // Bounded-retry contract (§3.2): the failure counter never exceeds the
  // configured retry budget, so buffered data cannot be retried forever.
  PINGMESH_DCHECK(upload_failures_ <= config_.upload_max_retries);
  next_upload_ = now + config_.upload_interval;
}

void PingmeshAgent::flush(SimTime now) { maybe_upload(now, /*force=*/true); }

}  // namespace pingmesh::agent

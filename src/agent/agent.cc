#include "agent/agent.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace pingmesh::agent {

PingmeshAgent::PingmeshAgent(std::string server_name, IpAddr server_ip,
                             AgentConfig config, Uploader& uploader)
    : name_(std::move(server_name)),
      ip_(server_ip),
      config_(std::move(config)),
      uploader_(&uploader),
      local_log_(config_.local_log_path, config_.local_log_max_bytes),
      counters_(0) {}

std::uint16_t PingmeshAgent::next_src_port() {
  // Ephemeral range sweep; a fresh port per probe re-rolls every ECMP choice.
  if (ephemeral_port_ < 32768 || ephemeral_port_ >= 60999) ephemeral_port_ = 32768;
  return ephemeral_port_++;
}

void PingmeshAgent::adopt_pinglist(const controller::Pinglist& pl, SimTime now) {
  pinglist_version_ = pl.version;
  targets_.clear();
  targets_.reserve(pl.targets.size());
  for (controller::PingTarget t : pl.targets) {
    // Safety clamps — enforced here regardless of what the controller says.
    t.interval = std::max({t.interval, pl.min_probe_interval, kHardMinProbeInterval});
    t.payload_bytes = std::min(t.payload_bytes, kHardMaxPayloadBytes);
    TargetState ts;
    ts.target = t;
    // Stagger first probes across the interval so a fleet restart does not
    // synchronize its probe bursts.
    std::uint64_t h = mix64((static_cast<std::uint64_t>(t.ip.v) << 16) ^ t.port ^ ip_.v);
    ts.next_due = now + static_cast<SimTime>(h % static_cast<std::uint64_t>(t.interval));
    targets_.push_back(ts);
  }
  probing_active_ = true;
}

void PingmeshAgent::fail_closed() {
  // "the Pingmesh Agent will remove all its existing ping peers and stop
  // all its ping activities. (It will still react to pings though.)"
  targets_.clear();
  probing_active_ = false;
}

PingmeshAgent::TickActions PingmeshAgent::tick(SimTime now) {
  TickActions actions;

  if (!fetch_outstanding_ && now >= next_fetch_) {
    actions.fetch_pinglist = true;
    fetch_outstanding_ = true;
  }

  if (probing_active_) {
    for (TargetState& ts : targets_) {
      if (now < ts.next_due) continue;
      ProbeRequest req;
      req.target = ts.target;
      req.src_port = next_src_port();
      actions.probes.push_back(req);
      ++probes_launched_;
      ts.next_due = now + ts.target.interval;
    }
  }

  maybe_upload(now, /*force=*/false);
  return actions;
}

void PingmeshAgent::on_pinglist(const controller::FetchResult& result, SimTime now) {
  fetch_outstanding_ = false;
  next_fetch_ = now + config_.pinglist_refresh;
  switch (result.status) {
    case controller::FetchStatus::kOk:
      fetch_failures_ = 0;
      if (result.pinglist) {
        adopt_pinglist(*result.pinglist, now);
      } else {
        fail_closed();  // protocol violation: treat as no pinglist
      }
      return;
    case controller::FetchStatus::kNoPinglist:
      // Controller is up but serves no file: stop immediately. This is the
      // operator's remote kill switch.
      fetch_failures_ = 0;
      fail_closed();
      return;
    case controller::FetchStatus::kUnreachable:
      if (++fetch_failures_ >= config_.controller_failure_threshold) fail_closed();
      return;
  }
}

void PingmeshAgent::on_probe_result(const ProbeRequest& request, const ProbeResult& result,
                                    SimTime now) {
  LatencyRecord rec;
  rec.timestamp = now;
  rec.src_ip = ip_;
  rec.dst_ip = request.target.ip;
  rec.src_port = request.src_port;
  rec.dst_port = request.target.port;
  rec.kind = request.target.kind;
  rec.qos = request.target.qos;
  rec.success = result.success;
  rec.rtt = result.rtt;
  rec.payload_success = result.payload_success;
  rec.payload_rtt = result.payload_rtt;
  rec.payload_bytes = request.target.payload_bytes;

  counters_.record_probe(result.success, result.rtt);

  if (buffer_.size() >= config_.max_buffered_records) {
    // Bounded memory: shed the oldest record rather than grow.
    buffer_.pop_front();
    ++records_discarded_;
  }
  buffer_.push_back(rec);
  PINGMESH_DCHECK(buffer_.size() <= config_.max_buffered_records);
  maybe_upload(now, /*force=*/false);
}

void PingmeshAgent::maybe_upload(SimTime now, bool force) {
  if (!upload_timer_armed_) {
    next_upload_ = now + config_.upload_interval;
    upload_timer_armed_ = true;
  }
  bool batch_full = buffer_.size() >= config_.upload_batch_records;
  bool timer_due = now >= next_upload_ && !buffer_.empty();
  if (!force && !batch_full && !timer_due) return;
  if (defer_uploads_) {
    // The trigger fired, but the actual upload waits for the driver's
    // serial phase (service_uploads) so the Uploader is never entered from
    // a worker thread.
    upload_pending_ = true;
    return;
  }
  perform_upload(now);
}

void PingmeshAgent::service_uploads(SimTime now) {
  if (!upload_pending_) return;
  upload_pending_ = false;
  perform_upload(now);
}

void PingmeshAgent::perform_upload(SimTime now) {
  if (buffer_.empty()) {
    next_upload_ = now + config_.upload_interval;
    return;
  }

  std::vector<LatencyRecord> batch(buffer_.begin(), buffer_.end());
  local_log_.append(encode_batch(batch));

  if (uploader_->upload(batch)) {
    buffer_.clear();
    upload_failures_ = 0;
    ++uploads_ok_;
  } else {
    ++uploads_failed_;
    if (++upload_failures_ > config_.upload_max_retries) {
      // "After that it will stop trying and discard the in-memory data.
      // This is to ensure the Pingmesh Agent uses bounded memory resource."
      records_discarded_ += buffer_.size();
      buffer_.clear();
      upload_failures_ = 0;
    }
  }
  // Bounded-retry contract (§3.2): the failure counter never exceeds the
  // configured retry budget, so buffered data cannot be retried forever.
  PINGMESH_DCHECK(upload_failures_ <= config_.upload_max_retries);
  next_upload_ = now + config_.upload_interval;
}

void PingmeshAgent::flush(SimTime now) { maybe_upload(now, /*force=*/true); }

}  // namespace pingmesh::agent

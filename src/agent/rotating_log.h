// Size-capped local log of latency records (paper §3.4.2: "The Pingmesh
// Agent also writes the latency data to local disk as log files. The size
// of log files is limited to a configurable size."). One rotation
// generation is kept (<path> and <path>.1).
#pragma once

#include <cstdint>
#include <string>

namespace pingmesh::agent {

class RotatingLog {
 public:
  /// Empty path disables the log entirely.
  RotatingLog(std::string path, std::size_t max_bytes);

  /// Append a blob (already CSV-encoded batch); rotates first when the
  /// current file would exceed the cap. Returns false on IO error (the
  /// agent treats local-log failure as non-fatal).
  bool append(std::string_view blob);

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] std::size_t current_size() const { return current_size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  bool rotate();

  std::string path_;
  std::size_t max_bytes_;
  std::size_t current_size_ = 0;
};

}  // namespace pingmesh::agent

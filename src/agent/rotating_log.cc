#include "agent/rotating_log.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace pingmesh::agent {

RotatingLog::RotatingLog(std::string path, std::size_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  if (!enabled()) return;
  std::error_code ec;
  auto size = std::filesystem::file_size(path_, ec);
  current_size_ = ec ? 0 : static_cast<std::size_t>(size);
}

bool RotatingLog::rotate() {
  std::error_code ec;
  std::filesystem::rename(path_, path_ + ".1", ec);
  if (ec) {
    // Rename can fail if the file never existed; try removing the stale one.
    std::filesystem::remove(path_ + ".1", ec);
    std::filesystem::rename(path_, path_ + ".1", ec);
  }
  current_size_ = 0;
  return true;
}

bool RotatingLog::append(std::string_view blob) {
  if (!enabled()) return true;
  if (current_size_ + blob.size() > max_bytes_ && current_size_ > 0) rotate();
  std::ofstream out(path_, std::ios::app | std::ios::binary);
  if (!out) return false;
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) return false;
  current_size_ += blob.size();
  return true;
}

}  // namespace pingmesh::agent

#include "agent/record_columns.h"

#include "common/csv.h"

namespace pingmesh::agent {

void RecordColumns::push_back(const LatencyRecord& r) {
  timestamp_.push_back(r.timestamp);
  src_ip_.push_back(r.src_ip.v);
  dst_ip_.push_back(r.dst_ip.v);
  src_port_.push_back(r.src_port);
  dst_port_.push_back(r.dst_port);
  kind_.push_back(static_cast<std::uint8_t>(r.kind));
  qos_.push_back(static_cast<std::uint8_t>(r.qos));
  success_.push_back(r.success ? 1 : 0);
  rtt_.push_back(r.rtt);
  payload_success_.push_back(r.payload_success ? 1 : 0);
  payload_rtt_.push_back(r.payload_rtt);
  payload_bytes_.push_back(r.payload_bytes);
}

LatencyRecord RecordColumns::row(std::size_t i) const {
  const std::size_t j = head_ + i;
  LatencyRecord r;
  r.timestamp = timestamp_[j];
  r.src_ip = IpAddr(src_ip_[j]);
  r.dst_ip = IpAddr(dst_ip_[j]);
  r.src_port = src_port_[j];
  r.dst_port = dst_port_[j];
  r.kind = static_cast<controller::ProbeKind>(kind_[j]);
  r.qos = static_cast<controller::QosClass>(qos_[j]);
  r.success = success_[j] != 0;
  r.rtt = rtt_[j];
  r.payload_success = payload_success_[j] != 0;
  r.payload_rtt = payload_rtt_[j];
  r.payload_bytes = payload_bytes_[j];
  return r;
}

void RecordColumns::drop_front(std::size_t n) {
  if (n >= size()) {
    clear();
    return;
  }
  head_ += n;
  if (head_ > size()) compact();
}

void RecordColumns::compact() {
  const std::size_t live = timestamp_.size() - head_;
  auto shift = [this, live](auto& col) {
    for (std::size_t i = 0; i < live; ++i) col[i] = col[head_ + i];
    col.resize(live);
  };
  shift(timestamp_);
  shift(src_ip_);
  shift(dst_ip_);
  shift(src_port_);
  shift(dst_port_);
  shift(kind_);
  shift(qos_);
  shift(success_);
  shift(rtt_);
  shift(payload_success_);
  shift(payload_rtt_);
  shift(payload_bytes_);
  head_ = 0;
}

void RecordColumns::clear() {
  head_ = 0;
  timestamp_.clear();
  src_ip_.clear();
  dst_ip_.clear();
  src_port_.clear();
  dst_port_.clear();
  kind_.clear();
  qos_.clear();
  success_.clear();
  rtt_.clear();
  payload_success_.clear();
  payload_rtt_.clear();
  payload_bytes_.clear();
}

void RecordColumns::reset() {
  clear();
  timestamp_.shrink_to_fit();
  src_ip_.shrink_to_fit();
  dst_ip_.shrink_to_fit();
  src_port_.shrink_to_fit();
  dst_port_.shrink_to_fit();
  kind_.shrink_to_fit();
  qos_.shrink_to_fit();
  success_.shrink_to_fit();
  rtt_.shrink_to_fit();
  payload_success_.shrink_to_fit();
  payload_rtt_.shrink_to_fit();
  payload_bytes_.shrink_to_fit();
}

void RecordColumns::reserve(std::size_t n) {
  timestamp_.reserve(n);
  src_ip_.reserve(n);
  dst_ip_.reserve(n);
  src_port_.reserve(n);
  dst_port_.reserve(n);
  kind_.reserve(n);
  qos_.reserve(n);
  success_.reserve(n);
  rtt_.reserve(n);
  payload_success_.reserve(n);
  payload_rtt_.reserve(n);
  payload_bytes_.reserve(n);
}

void RecordColumns::append(const RecordColumns& other) {
  const std::size_t n = other.size();
  auto cat = [n](auto& dst, const auto* src) { dst.insert(dst.end(), src, src + n); };
  cat(timestamp_, other.timestamps());
  cat(src_ip_, other.src_ips());
  cat(dst_ip_, other.dst_ips());
  cat(src_port_, other.src_ports());
  cat(dst_port_, other.dst_ports());
  cat(kind_, other.kinds());
  cat(qos_, other.qos());
  cat(success_, other.successes());
  cat(rtt_, other.rtts());
  cat(payload_success_, other.payload_successes());
  cat(payload_rtt_, other.payload_rtts());
  cat(payload_bytes_, other.payload_bytes());
}

std::vector<LatencyRecord> RecordColumns::to_records(std::size_t from) const {
  std::vector<LatencyRecord> out;
  const std::size_t n = size();
  if (from >= n) return out;
  out.reserve(n - from);
  for (std::size_t i = from; i < n; ++i) out.push_back(row(i));
  return out;
}

std::string RecordColumns::encode_csv(std::size_t from) const {
  std::string out;
  const std::size_t n = size();
  if (from >= n) return out;
  out.reserve((n - from) * 64);
  for (std::size_t i = from; i < n; ++i) {
    out += csv::encode_row(row(i).to_csv_row());
    out += '\n';
  }
  return out;
}

RecordColumns to_columns(const std::vector<LatencyRecord>& records) {
  RecordColumns cols;
  cols.reserve(records.size());
  for (const LatencyRecord& r : records) cols.push_back(r);
  return cols;
}

}  // namespace pingmesh::agent

#include "netsim/simnet.h"

#include <algorithm>
#include <stdexcept>

namespace pingmesh::netsim {

namespace {

constexpr double kNsPerUs = 1000.0;

// Context salts separating the counter streams of draws that can share a
// (tuple, time) pair.
constexpr std::uint64_t kSaltPacket = 0x70616b74;      // "pakt"
constexpr std::uint64_t kSaltEcho = 0x6563686f;        // "echo"
constexpr std::uint64_t kSaltTraceroute = 0x74726163;  // "trac"

std::uint64_t wan_key(DcId a, DcId b) {
  std::uint32_t lo = std::min(a.value, b.value);
  std::uint32_t hi = std::max(a.value, b.value);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::uint64_t tuple_key(const FiveTuple& t) {
  std::uint64_t ips = (static_cast<std::uint64_t>(t.src_ip.v) << 32) | t.dst_ip.v;
  std::uint64_t rest = (static_cast<std::uint64_t>(t.src_port) << 32) |
                       (static_cast<std::uint64_t>(t.dst_port) << 16) | t.protocol;
  return mix_key(ips, rest);
}

}  // namespace

SimNetwork::SimNetwork(const topo::Topology& topo, std::uint64_t seed)
    : topo_(&topo), router_(topo), seed_(seed) {
  dc_profiles_.assign(topo.dcs().size(), DcProfile{});
}

CounterRng SimNetwork::stream_for(const FiveTuple& tuple, SimTime now,
                                  std::uint64_t salt) const {
  return CounterRng(
      mix_key(seed_, tuple_key(tuple), static_cast<std::uint64_t>(now), salt));
}

void SimNetwork::set_dc_profile(DcId dc, const DcProfile& profile) {
  if (dc.value >= dc_profiles_.size()) throw std::out_of_range("invalid dc id");
  dc_profiles_[dc.value] = profile;
}

const DcProfile& SimNetwork::dc_profile(DcId dc) const {
  if (dc.value >= dc_profiles_.size()) throw std::out_of_range("invalid dc id");
  return dc_profiles_[dc.value];
}

void SimNetwork::set_wan_profile(DcId a, DcId b, const WanProfile& profile) {
  wan_profiles_[wan_key(a, b)] = profile;
}

const WanProfile& SimNetwork::wan_between(DcId a, DcId b) const {
  auto it = wan_profiles_.find(wan_key(a, b));
  return it != wan_profiles_.end() ? it->second : default_wan_;
}

double SimNetwork::element_baseline_drop(const topo::Switch& sw,
                                         const DcProfile& prof) const {
  switch (sw.kind) {
    case topo::SwitchKind::kTor: return prof.tor_drop;
    case topo::SwitchKind::kLeaf: return prof.leaf_drop;
    case topo::SwitchKind::kSpine: return prof.spine_drop;
    case topo::SwitchKind::kBorder: return prof.border_drop;
  }
  return 0.0;
}

SimTime SimNetwork::sample_host_tx(const DcProfile& prof, CounterRng& rng) {
  double us = prof.host_tx_us + rng.exponential(prof.host_tx_exp_us * (0.5 + prof.host_load));
  return static_cast<SimTime>(us * kNsPerUs);
}

SimTime SimNetwork::sample_host_rx(const DcProfile& prof, CounterRng& rng) {
  double us = prof.host_rx_us + rng.exponential(prof.host_rx_exp_us * (0.5 + prof.host_load));
  if (rng.chance(prof.host_stall_prob)) {
    // Non-realtime OS under load: the receiving process does not get
    // scheduled for a long time (paper §4.1: "the server OS is not a
    // real-time operating system").
    double stall_ms = rng.pareto(prof.host_stall_xm_ms, prof.host_stall_alpha);
    stall_ms = std::min(stall_ms, prof.host_stall_cap_ms);
    us += stall_ms * 1000.0;
  }
  return static_cast<SimTime>(us * kNsPerUs);
}

SimTime SimNetwork::sample_hop_latency(const DcProfile& prof, double queue_scale,
                                       int size_bytes, CounterRng& rng) {
  double us = prof.hop_base_us + prof.per_kb_us * (static_cast<double>(size_bytes) / 1024.0);
  us += rng.exponential(prof.queue_exp_us) * queue_scale;
  if (rng.chance(std::min(1.0, prof.burst_prob * queue_scale))) {
    us += rng.exponential(prof.burst_queue_us) * queue_scale;
  }
  return static_cast<SimTime>(us * kNsPerUs);
}

bool SimNetwork::server_up(ServerId server, SimTime now) const {
  return !faults_.podset_down(topo_->server(server).podset, now) &&
         !faults_.server_down(server, now);
}

PacketResult SimNetwork::send_packet(const FiveTuple& tuple, int size_bytes, SimTime now,
                                     bool low_priority) const {
  packets_sent_.fetch_add(1, std::memory_order_relaxed);
  PacketResult r;

  ServerId src = topo_->server_by_ip(tuple.src_ip);
  ServerId dst = topo_->server_by_ip(tuple.dst_ip);
  const topo::Server& s = topo_->server(src);
  const topo::Server& d = topo_->server(dst);
  if (faults_.podset_down(s.podset, now) || faults_.podset_down(d.podset, now)) {
    r.drop_site = DropSite::kPodsetDown;
    return r;
  }
  // A crashed server sends nothing and answers nothing.
  if (faults_.server_down(src, now)) {
    r.drop_site = DropSite::kSrcHost;
    return r;
  }
  if (faults_.server_down(dst, now)) {
    r.drop_site = DropSite::kDstHost;
    return r;
  }

  const DcProfile& src_prof = dc_profiles_[s.dc.value];
  const DcProfile& dst_prof = dc_profiles_[d.dc.value];

  // All randomness for this packet comes from one counter stream keyed by
  // (seed, tuple, launch time): the packet's fate is a pure function of its
  // identity, independent of what other packets are in flight.
  CounterRng rng = stream_for(tuple, now, kSaltPacket);

  // Source NIC / host send-side drop.
  if (rng.chance(src_prof.nic_drop)) {
    r.drop_site = DropSite::kSrcHost;
    return r;
  }

  SimTime latency = sample_host_tx(src_prof, rng);
  Path path = router_.resolve(tuple);

  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const topo::Switch& sw = topo_->sw(path.hops[i].sw);
    const DcProfile& hop_prof = dc_profiles_[sw.dc.value];
    HopEffect eff = faults_.hop_effect(sw.id, tuple, now);

    if (eff.blackholed) {
      r.drop_site = DropSite::kSwitch;
      r.drop_switch = sw.id;
      r.blackholed = true;
      return r;
    }
    double p_drop = element_baseline_drop(sw, hop_prof) + eff.extra_drop_prob +
                    eff.per_kb_drop * (static_cast<double>(size_bytes) / 1024.0);
    if (rng.chance(std::min(1.0, p_drop))) {
      r.drop_site = DropSite::kSwitch;
      r.drop_switch = sw.id;
      return r;
    }
    // DSCP low priority waits behind the high-priority queue; the penalty
    // grows with whatever congestion the hop is under.
    double queue_scale = eff.queue_scale * (low_priority ? 1.0 + eff.queue_scale : 1.0);
    latency += sample_hop_latency(hop_prof, queue_scale, size_bytes, rng);

    // WAN segment between the two border routers.
    if (path.cross_dc && i + 1 < path.hops.size()) {
      const topo::Switch& next_sw = topo_->sw(path.hops[i + 1].sw);
      if (sw.kind == topo::SwitchKind::kBorder &&
          next_sw.kind == topo::SwitchKind::kBorder && sw.dc != next_sw.dc) {
        const WanProfile& wan = wan_between(sw.dc, next_sw.dc);
        if (rng.chance(wan.drop)) {
          r.drop_site = DropSite::kSwitch;
          r.drop_switch = sw.id;  // attribute to the egress border
          return r;
        }
        double wan_ms = wan.propagation_ms_oneway + rng.exponential(wan.jitter_ms);
        latency += static_cast<SimTime>(wan_ms * 1'000'000.0);
      }
    }
  }

  // Destination NIC / receive-side drop, then receive-path latency.
  if (rng.chance(dst_prof.nic_drop)) {
    r.drop_site = DropSite::kDstHost;
    return r;
  }
  latency += sample_host_rx(dst_prof, rng);

  r.delivered = true;
  r.latency = latency;
  return r;
}

ProbeOutcome SimNetwork::tcp_probe(ServerId src, ServerId dst, std::uint16_t src_port,
                                   std::uint16_t dst_port, const ProbeSpec& spec,
                                   SimTime now) const {
  ProbeOutcome out;
  const topo::Server& s = topo_->server(src);
  const topo::Server& d = topo_->server(dst);
  FiveTuple fwd{s.ip, d.ip, src_port, dst_port, 6};
  FiveTuple rev = reverse(fwd);

  auto note_drop = [&out](const PacketResult& pr) {
    ++out.packets_dropped;
    if (pr.blackholed) out.hit_blackhole = true;
    if (!out.first_drop_switch.valid() && pr.drop_site == DropSite::kSwitch) {
      out.first_drop_switch = pr.drop_switch;
    }
  };

  // --- connection establishment with SYN retransmission -------------------
  SimTime wait = 0;
  SimTime rto = kSynInitialRto;
  for (int attempt = 0; attempt <= kSynRetries; ++attempt) {
    out.syn_transmissions = attempt + 1;
    PacketResult syn = send_packet(fwd, 64, now + wait, spec.low_priority);
    if (syn.delivered) {
      PacketResult synack = send_packet(rev, 64, now + wait + syn.latency, spec.low_priority);
      if (synack.delivered) {
        out.success = true;
        out.rtt = wait + syn.latency + synack.latency;
        break;
      }
      note_drop(synack);
    } else {
      note_drop(syn);
    }
    wait += rto;
    rto *= 2;
  }
  if (!out.success) return out;

  // --- optional payload echo ----------------------------------------------
  if (spec.payload_bytes > 0) {
    const DcProfile& dst_prof = dc_profiles_[d.dc.value];
    SimTime start = now + out.rtt;
    SimTime pwait = 0;
    SimTime prto = kDataRto;
    for (int attempt = 0; attempt <= kDataRetries; ++attempt) {
      PacketResult data = send_packet(fwd, spec.payload_bytes, start + pwait, spec.low_priority);
      if (data.delivered) {
        // User-space processing at the responder before echoing back.
        CounterRng erng = stream_for(fwd, start + pwait, kSaltEcho);
        double echo_us =
            dst_prof.user_echo_base_us +
            erng.exponential(dst_prof.user_echo_load_us * (0.5 + dst_prof.host_load));
        SimTime echo_proc = static_cast<SimTime>(echo_us * kNsPerUs);
        PacketResult echo = send_packet(rev, spec.payload_bytes,
                                        start + pwait + data.latency + echo_proc,
                                        spec.low_priority);
        if (echo.delivered) {
          out.payload_success = true;
          out.payload_rtt = pwait + data.latency + echo_proc + echo.latency;
          break;
        }
        note_drop(echo);
      } else {
        note_drop(data);
      }
      pwait += prto;
      prto *= 2;
    }
  }
  return out;
}

SessionOutcome SimNetwork::tcp_session(ServerId src, ServerId dst, std::uint16_t src_port,
                                       std::uint16_t dst_port, const SessionSpec& spec,
                                       SimTime now) const {
  SessionOutcome out;
  ProbeOutcome connect = tcp_probe(src, dst, src_port, dst_port, ProbeSpec{}, now);
  if (!connect.success) return out;

  const topo::Server& s = topo_->server(src);
  const topo::Server& d = topo_->server(dst);
  FiveTuple fwd{s.ip, d.ip, src_port, dst_port, 6};
  FiveTuple rev = reverse(fwd);

  auto segments = static_cast<std::int64_t>(
      (spec.total_bytes + spec.mss - 1) / std::max(1, spec.mss));
  std::int64_t window = std::max(1, spec.icw_segments);
  std::int64_t sent = 0;
  SimTime t = connect.rtt;

  // Slow start without loss-driven window reduction: each round trip ships
  // the current window (sampled as one full-size data packet + ack, the
  // window's pipelined segments arriving back-to-back), then doubles it.
  // Lost data or ack packets cost a retransmission timeout.
  while (sent < segments) {
    ++out.round_trips;
    for (;;) {
      PacketResult data = send_packet(fwd, spec.mss, now + t);
      if (data.delivered) {
        PacketResult ack = send_packet(rev, 64, now + t + data.latency);
        if (ack.delivered) {
          t += data.latency + ack.latency;
          break;
        }
      }
      t += kDataRto;
      if (t > seconds(120)) return out;  // give up: session failed
    }
    sent += window;
    window *= 2;
  }
  out.success = true;
  out.finish_time = t;
  return out;
}

std::optional<SwitchId> SimNetwork::traceroute_hop(const FiveTuple& tuple, int ttl,
                                                   SimTime now) const {
  if (ttl < 1) return std::nullopt;
  ServerId src = topo_->server_by_ip(tuple.src_ip);
  ServerId dst = topo_->server_by_ip(tuple.dst_ip);
  const topo::Server& s = topo_->server(src);
  const topo::Server& d = topo_->server(dst);
  if (faults_.podset_down(s.podset, now) || faults_.podset_down(d.podset, now)) {
    return std::nullopt;
  }
  if (faults_.server_down(src, now) || faults_.server_down(dst, now)) {
    return std::nullopt;
  }
  Path path = router_.resolve(tuple);
  if (static_cast<std::size_t>(ttl) > path.hops.size()) return std::nullopt;

  packets_sent_.fetch_add(1, std::memory_order_relaxed);
  CounterRng rng = stream_for(tuple, now, kSaltTraceroute);
  // The probe must survive hops 1..ttl-1; the hop at `ttl` answers.
  for (int i = 0; i < ttl; ++i) {
    const topo::Switch& sw = topo_->sw(path.hops[static_cast<std::size_t>(i)].sw);
    const DcProfile& prof = dc_profiles_[sw.dc.value];
    HopEffect eff = faults_.hop_effect(sw.id, tuple, now);
    bool is_answering_hop = (i == ttl - 1);
    if (!is_answering_hop) {
      if (eff.blackholed) return std::nullopt;
      double p_drop = element_baseline_drop(sw, prof) + eff.extra_drop_prob;
      if (rng.chance(std::min(1.0, p_drop))) return std::nullopt;
    }
    // The answering hop replies even if it black-holes transit traffic of
    // this pattern (TTL-expired handling is control-plane).
  }
  return path.hops[static_cast<std::size_t>(ttl - 1)].sw;
}

}  // namespace pingmesh::netsim

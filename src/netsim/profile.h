// Per-data-center behavioural profiles for the simulator.
//
// The paper's §4.1 contrasts two DCs: DC1 (US West) is throughput-intensive
// (distributed storage + MapReduce, ~90% average CPU, hundreds of Mb/s per
// server) and DC2 (US Central) hosts an interactive Search service
// (latency-sensitive, moderate CPU, bursty traffic). Their P50/P90 latencies
// are close, but tails diverge hard: P99.99 of 1397.63 ms vs 105.84 ms.
// The profile parameters below reproduce that separation: busy hosts
// occasionally stall for very long (non-realtime OS scheduling under load),
// while switch queueing contributes only tens of microseconds at the median.
#pragma once

namespace pingmesh::netsim {

struct DcProfile {
  // --- end-host stack (per packet, nanosecond math done in the model) ---
  double host_tx_us = 24.0;      ///< send-path latency (syscall, DMA, NIC)
  double host_tx_exp_us = 6.0;   ///< exponential jitter on the send path
  double host_rx_us = 70.0;      ///< receive path (interrupt, stack, wakeup)
  double host_rx_exp_us = 12.0;  ///< exponential jitter on the receive path
  double host_load = 0.5;        ///< 0..1 CPU utilization; scales jitter
  double host_stall_prob = 2e-4; ///< probability of an OS scheduling stall on rx
  double host_stall_xm_ms = 8.0;    ///< Pareto scale of the stall
  double host_stall_alpha = 1.2;    ///< Pareto shape (lower = heavier tail)
  double host_stall_cap_ms = 400.0; ///< stall ceiling
  double user_echo_base_us = 30.0;  ///< payload echo: user-space processing
  double user_echo_load_us = 15.0;  ///< extra echo latency scaled by host_load

  // --- switch traversal ---
  double hop_base_us = 3.0;      ///< cut-through-ish forwarding latency per hop
  double queue_exp_us = 4.5;     ///< light per-hop queueing (exp mean)
  double burst_prob = 0.015;     ///< per-hop chance of a queue buildup
  double burst_queue_us = 350.0; ///< queue buildup magnitude (exp mean)
  double per_kb_us = 0.8;        ///< serialization per KB per hop (10GbE-ish)

  // --- baseline packet loss (per packet per element traversed) ---
  double nic_drop = 3e-6;
  double tor_drop = 2.5e-6;
  double leaf_drop = 4.0e-6;
  double spine_drop = 5.0e-6;
  double border_drop = 4.0e-6;

  /// DC1-style: storage/MapReduce, hot hosts, sustained throughput.
  static DcProfile throughput_intensive() {
    DcProfile p;
    p.host_load = 0.9;
    p.host_stall_prob = 1.0e-3;
    p.host_stall_xm_ms = 10.0;
    p.host_stall_alpha = 0.62;     // very heavy tail -> second-scale P99.99
    p.host_stall_cap_ms = 1400.0;
    p.burst_prob = 0.02;
    p.burst_queue_us = 420.0;
    return p;
  }

  /// DC2-style: interactive Search, moderate CPU, bursty fan-in/fan-out.
  static DcProfile latency_sensitive() {
    DcProfile p;
    p.host_load = 0.45;
    p.host_stall_prob = 1.0e-3;
    p.host_stall_xm_ms = 6.0;
    p.host_stall_alpha = 1.2;
    p.host_stall_cap_ms = 160.0;
    p.burst_prob = 0.025;          // bursty traffic -> frequent small buildups
    p.burst_queue_us = 300.0;
    return p;
  }

  /// Lightly loaded DC (used for Table 1's DC3/DC5-style low-drop profiles).
  static DcProfile lightly_loaded() {
    DcProfile p;
    p.host_load = 0.25;
    p.host_stall_prob = 6e-5;
    p.host_stall_cap_ms = 120.0;
    p.burst_prob = 0.01;
    return p;
  }
};

/// Inter-DC WAN characteristics between a DC pair.
struct WanProfile {
  double propagation_ms_oneway = 15.0;  ///< long-haul fiber propagation
  double jitter_ms = 0.8;               ///< exponential WAN jitter
  double drop = 2e-6;                   ///< per-packet long-haul loss
};

}  // namespace pingmesh::netsim

// ECMP path resolution over the Clos topology (paper §2.1).
//
// "ECMP uses the hash value of the TCP/UDP five-tuple for next hop
// selection. As a result, the exact path of a TCP connection is unknown at
// the server side even if the five-tuple of the connection is known."
//
// We reproduce that property: the forward and reverse directions of a
// connection hash independently, and a new source port re-rolls every
// ECMP choice on the path. The resolver is deterministic in the tuple, which
// is what makes packet black-holes deterministic per connection.
#pragma once

#include <vector>

#include "common/types.h"
#include "topology/topology.h"

namespace pingmesh::netsim {

/// One switch traversal on a path.
struct Hop {
  SwitchId sw;
};

/// Resolved unidirectional path between two servers. Does not include the
/// end hosts. Empty for src == dst (loopback).
struct Path {
  std::vector<Hop> hops;
  bool cross_dc = false;
  bool cross_podset = false;
  bool cross_pod = false;
};

/// Deterministic ECMP resolver. Pure function of (topology, five-tuple).
class EcmpRouter {
 public:
  explicit EcmpRouter(const topo::Topology& topo) : topo_(&topo) {}

  /// Resolve the path taken by packets of `tuple` from the server owning
  /// tuple.src_ip to the server owning tuple.dst_ip.
  /// Throws std::out_of_range if either IP is unknown.
  [[nodiscard]] Path resolve(const FiveTuple& tuple) const;

  /// ECMP next-hop choice: stable hash of tuple + deciding switch stage.
  [[nodiscard]] static std::size_t ecmp_index(const FiveTuple& tuple,
                                              std::uint64_t stage_salt,
                                              std::size_t n_choices);

 private:
  const topo::Topology* topo_;
};

/// Reverse a five-tuple (for the SYN-ACK / echo direction).
[[nodiscard]] constexpr FiveTuple reverse(const FiveTuple& t) {
  return FiveTuple{t.dst_ip, t.src_ip, t.dst_port, t.src_port, t.protocol};
}

}  // namespace pingmesh::netsim

// SimNetwork: flow-level simulator of the data center network.
//
// It answers one question fast: "if server A sends a TCP probe to server B
// at time T with five-tuple F, what happens?" — sampling per-packet latency
// from the DC profiles, applying baseline loss and injected faults per hop,
// and modelling TCP SYN retransmission exactly as the paper's drop-rate
// heuristic assumes (initial RTO 3 s, doubling, two retries; §4.2).
//
// Ground truth (which element dropped which packet) is carried in the
// outcome so tests can validate the inference heuristics against it, the
// same way the paper validated against NIC/ToR counters.
//
// Thread safety: the probe path (tcp_probe, send_packet, tcp_session,
// traceroute_hop) is const and safe to call concurrently. Randomness comes
// from counter-based streams keyed by (seed, five-tuple hash, launch time,
// context salt), so every probe's outcome is a pure function of its inputs
// — bit-identical no matter how many threads fire probes or in what order.
// Mutators (set_dc_profile, faults()) must not race with in-flight probes.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "netsim/ecmp.h"
#include "netsim/fault.h"
#include "netsim/profile.h"
#include "topology/topology.h"

namespace pingmesh::netsim {

/// TCP SYN retransmission constants (paper §4.2: "the initial timeout value
/// is 3 seconds, and the sender will retry SYN two times").
constexpr SimTime kSynInitialRto = seconds(3);
constexpr int kSynRetries = 2;
/// Data-segment retransmission timeout after the handshake (min RTO).
constexpr SimTime kDataRto = millis(300);
constexpr int kDataRetries = 5;

struct ProbeSpec {
  int payload_bytes = 0;  ///< 0 = SYN/SYN-ACK only; else echo payload size
  bool low_priority = false;  ///< QoS class low (DSCP-marked, §6.2)
};

/// Multi-round-trip TCP session model (paper §6.4). Pingmesh itself only
/// measures single-packet RTT; this model exists to reproduce the paper's
/// documented blind spot — an initial-congestion-window (ICW) regression
/// that slowed long-haul transfers by hundreds of milliseconds while every
/// Pingmesh metric stayed green.
struct SessionSpec {
  std::int64_t total_bytes = 64 * 1024;
  int icw_segments = 16;  ///< initial congestion window, in MSS segments
  int mss = 1460;
};

struct SessionOutcome {
  bool success = false;
  SimTime finish_time = 0;  ///< SYN sent -> last byte acknowledged
  int round_trips = 0;      ///< data round trips after the handshake
};

/// Where a packet died, for ground truth accounting.
enum class DropSite : std::uint8_t { kNone, kSrcHost, kSwitch, kDstHost, kPodsetDown };

struct PacketResult {
  bool delivered = false;
  SimTime latency = 0;  ///< one-way latency when delivered
  DropSite drop_site = DropSite::kNone;
  SwitchId drop_switch;  ///< valid when drop_site == kSwitch
  bool blackholed = false;
};

struct ProbeOutcome {
  bool success = false;          ///< TCP connection established
  SimTime rtt = 0;               ///< connect RTT incl. retransmission waits
  int syn_transmissions = 1;     ///< 1..3
  bool payload_success = false;  ///< echo completed (when payload requested)
  SimTime payload_rtt = 0;       ///< send->echo-received, incl. data RTOs

  // --- ground truth (not visible to the measurement plane) ---
  int packets_dropped = 0;
  SwitchId first_drop_switch;  ///< invalid when first drop was at a host
  bool hit_blackhole = false;
};

class SimNetwork {
 public:
  SimNetwork(const topo::Topology& topo, std::uint64_t seed);

  /// Override the behaviour profile of one DC (defaults: DcProfile{}).
  void set_dc_profile(DcId dc, const DcProfile& profile);
  [[nodiscard]] const DcProfile& dc_profile(DcId dc) const;

  /// Override WAN characteristics between a DC pair (order-insensitive).
  void set_wan_profile(DcId a, DcId b, const WanProfile& profile);

  FaultInjector& faults() { return faults_; }
  [[nodiscard]] const FaultInjector& faults() const { return faults_; }
  [[nodiscard]] const EcmpRouter& router() const { return router_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

  /// Full TCP probe: connect (+ optional payload echo). Thread-safe.
  ProbeOutcome tcp_probe(ServerId src, ServerId dst, std::uint16_t src_port,
                         std::uint16_t dst_port, const ProbeSpec& spec,
                         SimTime now) const;

  /// Bulk transfer with slow start from the configured ICW: connect, then
  /// send windows that double per round trip (no-loss approximation with
  /// per-window latency sampling). The finish time is what applications
  /// perceive; Pingmesh's single-RTT probes cannot see ICW changes (§6.4).
  SessionOutcome tcp_session(ServerId src, ServerId dst, std::uint16_t src_port,
                             std::uint16_t dst_port, const SessionSpec& spec,
                             SimTime now) const;

  /// One-way transmission of a single packet along the tuple's ECMP path.
  /// Low-priority (DSCP-marked) packets queue behind high-priority traffic:
  /// their queueing delay scales up with congestion. Thread-safe.
  PacketResult send_packet(const FiveTuple& tuple, int size_bytes, SimTime now,
                           bool low_priority = false) const;

  /// Traceroute support: deliverability and responding hop for a TTL-limited
  /// packet. Returns the switch at position `ttl` (1-based) if the packet
  /// survives that far, nullopt if it is dropped earlier or the path is
  /// shorter. Silent random drops apply; this is how combining Pingmesh with
  /// TCP traceroute pinpoints a faulty switch (§5.2).
  std::optional<SwitchId> traceroute_hop(const FiveTuple& tuple, int ttl,
                                         SimTime now) const;

  /// Is this server responsive (its podset not powered down)?
  [[nodiscard]] bool server_up(ServerId server, SimTime now) const;

  /// Number of packets simulated so far (throughput accounting in benches).
  [[nodiscard]] std::uint64_t packets_sent() const {
    return packets_sent_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  double element_baseline_drop(const topo::Switch& sw, const DcProfile& prof) const;
  /// Counter stream for one packet/context: (seed, tuple, launch time, salt).
  [[nodiscard]] CounterRng stream_for(const FiveTuple& tuple, SimTime now,
                                      std::uint64_t salt) const;
  static SimTime sample_host_tx(const DcProfile& prof, CounterRng& rng);
  static SimTime sample_host_rx(const DcProfile& prof, CounterRng& rng);
  static SimTime sample_hop_latency(const DcProfile& prof, double queue_scale,
                                    int size_bytes, CounterRng& rng);
  const WanProfile& wan_between(DcId a, DcId b) const;

  const topo::Topology* topo_;
  EcmpRouter router_;
  FaultInjector faults_;
  std::uint64_t seed_;
  std::vector<DcProfile> dc_profiles_;
  std::unordered_map<std::uint64_t, WanProfile> wan_profiles_;
  WanProfile default_wan_;
  mutable std::atomic<std::uint64_t> packets_sent_{0};
};

}  // namespace pingmesh::netsim

#include "netsim/ecmp.h"

#include "common/rng.h"

namespace pingmesh::netsim {

std::size_t EcmpRouter::ecmp_index(const FiveTuple& tuple, std::uint64_t stage_salt,
                                   std::size_t n_choices) {
  if (n_choices == 0) return 0;
  std::uint64_t h = mix64((static_cast<std::uint64_t>(tuple.src_ip.v) << 32) | tuple.dst_ip.v);
  h = mix64(h ^ ((static_cast<std::uint64_t>(tuple.src_port) << 24) |
                 (static_cast<std::uint64_t>(tuple.dst_port) << 8) | tuple.protocol));
  h = mix64(h ^ stage_salt);
  return static_cast<std::size_t>(h % n_choices);
}

Path EcmpRouter::resolve(const FiveTuple& tuple) const {
  const topo::Topology& t = *topo_;
  ServerId src = t.server_by_ip(tuple.src_ip);
  ServerId dst = t.server_by_ip(tuple.dst_ip);
  Path path;
  if (src == dst) return path;  // loopback, no network hops

  const topo::Server& s = t.server(src);
  const topo::Server& d = t.server(dst);

  if (s.pod == d.pod) {
    // Same ToR: up and straight back down.
    path.hops.push_back(Hop{s.tor});
    return path;
  }
  path.cross_pod = true;

  if (s.podset == d.podset) {
    // ToR -> Leaf (ECMP among podset leaves) -> ToR.
    const auto& leaves = t.podset(s.podset).leaves;
    std::size_t li = ecmp_index(tuple, /*stage=*/0x1eaf, leaves.size());
    path.hops.push_back(Hop{s.tor});
    path.hops.push_back(Hop{leaves[li]});
    path.hops.push_back(Hop{d.tor});
    return path;
  }
  path.cross_podset = true;

  if (s.dc == d.dc) {
    // ToR -> Leaf(src podset) -> Spine -> Leaf(dst podset) -> ToR.
    const auto& up_leaves = t.podset(s.podset).leaves;
    const auto& spines = t.dc(s.dc).spines;
    const auto& down_leaves = t.podset(d.podset).leaves;
    path.hops.push_back(Hop{s.tor});
    path.hops.push_back(Hop{up_leaves[ecmp_index(tuple, 0x1eaf'0001, up_leaves.size())]});
    path.hops.push_back(Hop{spines[ecmp_index(tuple, 0x5b1e, spines.size())]});
    path.hops.push_back(Hop{down_leaves[ecmp_index(tuple, 0x1eaf'0002, down_leaves.size())]});
    path.hops.push_back(Hop{d.tor});
    return path;
  }
  path.cross_dc = true;

  // Cross-DC: climb to a border router, cross the WAN, descend.
  const auto& up_leaves = t.podset(s.podset).leaves;
  const auto& up_spines = t.dc(s.dc).spines;
  const auto& up_borders = t.dc(s.dc).borders;
  const auto& down_borders = t.dc(d.dc).borders;
  const auto& down_spines = t.dc(d.dc).spines;
  const auto& down_leaves = t.podset(d.podset).leaves;

  path.hops.push_back(Hop{s.tor});
  path.hops.push_back(Hop{up_leaves[ecmp_index(tuple, 0x1eaf'0001, up_leaves.size())]});
  path.hops.push_back(Hop{up_spines[ecmp_index(tuple, 0x5b1e'0001, up_spines.size())]});
  path.hops.push_back(Hop{up_borders[ecmp_index(tuple, 0xb0d0'0001, up_borders.size())]});
  path.hops.push_back(Hop{down_borders[ecmp_index(tuple, 0xb0d0'0002, down_borders.size())]});
  path.hops.push_back(Hop{down_spines[ecmp_index(tuple, 0x5b1e'0002, down_spines.size())]});
  path.hops.push_back(Hop{down_leaves[ecmp_index(tuple, 0x1eaf'0002, down_leaves.size())]});
  path.hops.push_back(Hop{d.tor});
  return path;
}

}  // namespace pingmesh::netsim

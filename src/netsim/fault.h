// Fault injection for the network simulator.
//
// These are the failure classes the paper's analyses exist to catch:
//  - packet black-holes (§5.1): deterministic drops of packets matching
//    certain src/dst (type 1, corrupted TCAM entries) or full five-tuple
//    (type 2, ECMP-related) patterns; fixed by reloading the switch;
//  - silent random packet drops (§5.2): probabilistic drops from fabric
//    bit flips / CRC errors / badly seated linecards; requires RMA;
//  - congestion: extra queueing plus overflow drops;
//  - FCS-style length-dependent drops (§4.1): drop probability grows with
//    packet size (bit-error-rate driven) — the reason payload pings exist;
//  - podset power-down (§6.3, Figure 8(b)): all servers of a podset gone.
//
// All faults have a [start, end) activity window in simulation time.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace pingmesh::netsim {

enum class BlackholeMode : std::uint8_t {
  kSrcDstPair,  ///< type 1: src/dst IP pair pattern (TCAM parity error)
  kFiveTuple,   ///< type 2: src/dst IP + ports pattern (ECMP error)
};

enum class FaultKind : std::uint8_t {
  kBlackhole,
  kSilentRandomDrop,
  kCongestion,
  kFcsErrors,
  kPodsetDown,
  kServerDown,
};

using FaultId = std::uint32_t;

/// Aggregate per-hop effect of all active faults on one switch for one
/// packet. Black-holing is deterministic; the rest stack multiplicatively /
/// additively onto the baseline model.
struct HopEffect {
  bool blackholed = false;
  double extra_drop_prob = 0.0;
  double queue_scale = 1.0;
  double per_kb_drop = 0.0;
};

/// Registry of active faults, queried by the simulator on every hop.
class FaultInjector {
 public:
  static constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

  /// Black-hole on `sw`: a fraction of the (src,dst[,ports]) pattern space
  /// is deterministically dropped. `entry_fraction` in (0,1]; `salt` selects
  /// which patterns are affected (models which TCAM entries corrupted).
  FaultId add_blackhole(SwitchId sw, BlackholeMode mode, double entry_fraction,
                        SimTime start = 0, SimTime end = kForever,
                        std::uint64_t salt = 0);

  /// Silent random drops on `sw` with per-packet probability `drop_prob`.
  FaultId add_silent_random_drop(SwitchId sw, double drop_prob, SimTime start = 0,
                                 SimTime end = kForever);

  /// Congestion on `sw`: queueing scaled by `queue_scale` (>1), plus
  /// overflow drop probability.
  FaultId add_congestion(SwitchId sw, double queue_scale, double drop_prob,
                         SimTime start = 0, SimTime end = kForever);

  /// Length-dependent (FCS/SerDes) drops on `sw`: extra drop probability of
  /// `per_kb_drop` per kilobyte of packet.
  FaultId add_fcs_errors(SwitchId sw, double per_kb_drop, SimTime start = 0,
                         SimTime end = kForever);

  /// Whole podset loses power: every server in it stops responding.
  FaultId add_podset_down(PodsetId podset, SimTime start = 0, SimTime end = kForever);

  /// One server crashes at `start` and restarts at `end`: its agent stops
  /// ticking and it answers no probes, but its state survives the outage
  /// (a reboot, not a reimage).
  FaultId add_server_down(ServerId server, SimTime start = 0, SimTime end = kForever);

  /// Remove one fault (e.g. switch isolated from live traffic).
  void remove(FaultId id);
  /// Remove all black-hole faults on a switch — the effect of a reload
  /// (paper §5.1: "these two types of packet black-holes can be fixed by
  /// reloading the switch"). Returns how many were cleared.
  int clear_blackholes_on(SwitchId sw);
  /// Remove every fault on a switch — the effect of RMA/replacement.
  int clear_all_on(SwitchId sw);
  void clear();

  /// Aggregate effect of active faults for a packet crossing `sw` at `now`.
  [[nodiscard]] HopEffect hop_effect(SwitchId sw, const FiveTuple& tuple,
                                     SimTime now) const;

  [[nodiscard]] bool podset_down(PodsetId podset, SimTime now) const;

  [[nodiscard]] bool server_down(ServerId server, SimTime now) const;

  /// Any active fault on this switch at `now`? (ground truth for tests)
  [[nodiscard]] bool has_active_fault(SwitchId sw, SimTime now) const;
  /// Active fault count (all switches) at `now`.
  [[nodiscard]] std::size_t active_fault_count(SimTime now) const;
  /// Switches with an active black-hole at `now` (ground truth for Fig. 6).
  [[nodiscard]] std::vector<SwitchId> blackholed_switches(SimTime now) const;

  /// Would this tuple be deterministically black-holed by `sw` at `now`?
  /// Exposed so tests can build affected tuples directly.
  [[nodiscard]] bool blackholes_tuple(SwitchId sw, const FiveTuple& tuple,
                                      SimTime now) const;

 private:
  struct Fault {
    FaultId id;
    FaultKind kind;
    SwitchId sw;        // invalid for podset/server faults
    PodsetId podset;    // invalid for switch/server faults
    ServerId server;    // invalid for switch/podset faults
    BlackholeMode mode = BlackholeMode::kSrcDstPair;
    double magnitude = 0.0;    // entry_fraction / drop_prob / per_kb_drop
    double queue_scale = 1.0;  // congestion only
    std::uint64_t salt = 0;
    SimTime start = 0;
    SimTime end = kForever;
    bool removed = false;

    [[nodiscard]] bool active(SimTime now) const {
      return !removed && now >= start && now < end;
    }
  };

  static bool pattern_hit(const Fault& f, const FiveTuple& tuple);

  FaultId next_id_ = 1;
  std::vector<Fault> faults_;
  // index: faults per switch for O(active-on-switch) hop queries
  std::unordered_map<SwitchId, std::vector<std::size_t>> by_switch_;
  std::unordered_map<PodsetId, std::vector<std::size_t>> by_podset_;
  std::unordered_map<ServerId, std::vector<std::size_t>> by_server_;
};

}  // namespace pingmesh::netsim

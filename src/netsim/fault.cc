#include "netsim/fault.h"

#include <stdexcept>

namespace pingmesh::netsim {

FaultId FaultInjector::add_blackhole(SwitchId sw, BlackholeMode mode,
                                     double entry_fraction, SimTime start, SimTime end,
                                     std::uint64_t salt) {
  if (entry_fraction <= 0.0 || entry_fraction > 1.0) {
    throw std::invalid_argument("entry_fraction must be in (0, 1]");
  }
  Fault f;
  f.id = next_id_++;
  f.kind = FaultKind::kBlackhole;
  f.sw = sw;
  f.mode = mode;
  f.magnitude = entry_fraction;
  f.salt = salt;
  f.start = start;
  f.end = end;
  by_switch_[sw].push_back(faults_.size());
  faults_.push_back(f);
  return f.id;
}

FaultId FaultInjector::add_silent_random_drop(SwitchId sw, double drop_prob,
                                              SimTime start, SimTime end) {
  if (drop_prob <= 0.0 || drop_prob > 1.0) {
    throw std::invalid_argument("drop_prob must be in (0, 1]");
  }
  Fault f;
  f.id = next_id_++;
  f.kind = FaultKind::kSilentRandomDrop;
  f.sw = sw;
  f.magnitude = drop_prob;
  f.start = start;
  f.end = end;
  by_switch_[sw].push_back(faults_.size());
  faults_.push_back(f);
  return f.id;
}

FaultId FaultInjector::add_congestion(SwitchId sw, double queue_scale, double drop_prob,
                                      SimTime start, SimTime end) {
  if (queue_scale < 1.0) throw std::invalid_argument("queue_scale must be >= 1");
  if (drop_prob < 0.0 || drop_prob > 1.0) {
    throw std::invalid_argument("drop_prob must be in [0, 1]");
  }
  Fault f;
  f.id = next_id_++;
  f.kind = FaultKind::kCongestion;
  f.sw = sw;
  f.magnitude = drop_prob;
  f.queue_scale = queue_scale;
  f.start = start;
  f.end = end;
  by_switch_[sw].push_back(faults_.size());
  faults_.push_back(f);
  return f.id;
}

FaultId FaultInjector::add_fcs_errors(SwitchId sw, double per_kb_drop, SimTime start,
                                      SimTime end) {
  if (per_kb_drop <= 0.0 || per_kb_drop > 1.0) {
    throw std::invalid_argument("per_kb_drop must be in (0, 1]");
  }
  Fault f;
  f.id = next_id_++;
  f.kind = FaultKind::kFcsErrors;
  f.sw = sw;
  f.magnitude = per_kb_drop;
  f.start = start;
  f.end = end;
  by_switch_[sw].push_back(faults_.size());
  faults_.push_back(f);
  return f.id;
}

FaultId FaultInjector::add_podset_down(PodsetId podset, SimTime start, SimTime end) {
  Fault f;
  f.id = next_id_++;
  f.kind = FaultKind::kPodsetDown;
  f.podset = podset;
  f.start = start;
  f.end = end;
  by_podset_[podset].push_back(faults_.size());
  faults_.push_back(f);
  return f.id;
}

FaultId FaultInjector::add_server_down(ServerId server, SimTime start, SimTime end) {
  Fault f;
  f.id = next_id_++;
  f.kind = FaultKind::kServerDown;
  f.server = server;
  f.start = start;
  f.end = end;
  by_server_[server].push_back(faults_.size());
  faults_.push_back(f);
  return f.id;
}

void FaultInjector::remove(FaultId id) {
  for (auto& f : faults_) {
    if (f.id == id) {
      f.removed = true;
      return;
    }
  }
}

int FaultInjector::clear_blackholes_on(SwitchId sw) {
  int n = 0;
  auto it = by_switch_.find(sw);
  if (it == by_switch_.end()) return 0;
  for (std::size_t idx : it->second) {
    Fault& f = faults_[idx];
    if (!f.removed && f.kind == FaultKind::kBlackhole) {
      f.removed = true;
      ++n;
    }
  }
  return n;
}

int FaultInjector::clear_all_on(SwitchId sw) {
  int n = 0;
  auto it = by_switch_.find(sw);
  if (it == by_switch_.end()) return 0;
  for (std::size_t idx : it->second) {
    Fault& f = faults_[idx];
    if (!f.removed) {
      f.removed = true;
      ++n;
    }
  }
  return n;
}

void FaultInjector::clear() {
  faults_.clear();
  by_switch_.clear();
  by_podset_.clear();
  by_server_.clear();
}

bool FaultInjector::pattern_hit(const Fault& f, const FiveTuple& tuple) {
  std::uint64_t h = (static_cast<std::uint64_t>(tuple.src_ip.v) << 32) | tuple.dst_ip.v;
  if (f.mode == BlackholeMode::kFiveTuple) {
    h = mix64(h) ^ ((static_cast<std::uint64_t>(tuple.src_port) << 16) | tuple.dst_port);
  }
  h = mix64(h ^ f.salt);
  // Map the pattern space onto [0,1) and black-hole the lowest fraction.
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  return u < f.magnitude;
}

HopEffect FaultInjector::hop_effect(SwitchId sw, const FiveTuple& tuple,
                                    SimTime now) const {
  HopEffect e;
  auto it = by_switch_.find(sw);
  if (it == by_switch_.end()) return e;
  for (std::size_t idx : it->second) {
    const Fault& f = faults_[idx];
    if (!f.active(now)) continue;
    switch (f.kind) {
      case FaultKind::kBlackhole:
        if (pattern_hit(f, tuple)) e.blackholed = true;
        break;
      case FaultKind::kSilentRandomDrop:
        e.extra_drop_prob += f.magnitude;
        break;
      case FaultKind::kCongestion:
        e.extra_drop_prob += f.magnitude;
        e.queue_scale *= f.queue_scale;
        break;
      case FaultKind::kFcsErrors:
        e.per_kb_drop += f.magnitude;
        break;
      case FaultKind::kPodsetDown:
        break;  // handled via podset_down()
      case FaultKind::kServerDown:
        break;  // handled via server_down()
    }
  }
  return e;
}

bool FaultInjector::podset_down(PodsetId podset, SimTime now) const {
  auto it = by_podset_.find(podset);
  if (it == by_podset_.end()) return false;
  for (std::size_t idx : it->second) {
    const Fault& f = faults_[idx];
    if (f.active(now) && f.kind == FaultKind::kPodsetDown) return true;
  }
  return false;
}

bool FaultInjector::server_down(ServerId server, SimTime now) const {
  auto it = by_server_.find(server);
  if (it == by_server_.end()) return false;
  for (std::size_t idx : it->second) {
    const Fault& f = faults_[idx];
    if (f.active(now) && f.kind == FaultKind::kServerDown) return true;
  }
  return false;
}

bool FaultInjector::has_active_fault(SwitchId sw, SimTime now) const {
  auto it = by_switch_.find(sw);
  if (it == by_switch_.end()) return false;
  for (std::size_t idx : it->second) {
    if (faults_[idx].active(now)) return true;
  }
  return false;
}

std::size_t FaultInjector::active_fault_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& f : faults_) {
    if (f.active(now)) ++n;
  }
  return n;
}

std::vector<SwitchId> FaultInjector::blackholed_switches(SimTime now) const {
  std::vector<SwitchId> out;
  for (const auto& f : faults_) {
    if (f.active(now) && f.kind == FaultKind::kBlackhole) out.push_back(f.sw);
  }
  return out;
}

bool FaultInjector::blackholes_tuple(SwitchId sw, const FiveTuple& tuple,
                                     SimTime now) const {
  auto it = by_switch_.find(sw);
  if (it == by_switch_.end()) return false;
  for (std::size_t idx : it->second) {
    const Fault& f = faults_[idx];
    if (f.active(now) && f.kind == FaultKind::kBlackhole && pattern_hit(f, tuple)) {
      return true;
    }
  }
  return false;
}

}  // namespace pingmesh::netsim

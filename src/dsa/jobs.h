// The SCOPE jobs of the DSA pipeline and the Job Manager that submits them
// (paper §3.5: "We have 10-min, 1-hour, 1-day jobs at different time
// scales. ... All our jobs are automatically and periodically submitted by
// a Job Manager to SCOPE without user intervention.")
//
//  - 10-minute job (near real-time): per pod-pair latency/drop aggregation —
//    feeds dashboards, heatmaps, and threshold alerts;
//  - 1-hour job: network SLA per pod/podset/DC/service;
//  - 1-day job: DC-level intra-/inter-pod drop-rate summary (Table 1) and
//    history for trend tracking.
//
// End-to-end freshness: a job over window [W, W+period) fires at
// W + period + ingestion_delay; with the paper's numbers (10-min period,
// ~10-min pipeline delay) data is consumed ~20 minutes after generation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "agent/record.h"
#include "common/stats.h"
#include "common/types.h"
#include "dsa/cosmos.h"
#include "dsa/database.h"
#include "dsa/scope.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/topology.h"

namespace pingmesh::dsa {

/// Shared aggregator for latency records: success/failure/drop-signature
/// counts plus latency percentiles of clean successes.
class LatencyAggregator {
 public:
  struct Result {
    std::uint64_t probes = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t drop_signatures = 0;
    std::int64_t p50_ns = 0;
    std::int64_t p99_ns = 0;

    [[nodiscard]] double drop_rate() const {
      return successes ? static_cast<double>(drop_signatures) / static_cast<double>(successes)
                       : 0.0;
    }
  };

  LatencyAggregator();
  void add(const agent::LatencyRecord& r);
  [[nodiscard]] Result finish() const;

 private:
  Result acc_{};
  LatencyHistogram hist_;
};

class DecodedExtentCache;

struct JobContext {
  const topo::Topology* topo = nullptr;
  const topo::ServiceMap* services = nullptr;  // may be null (no service SLAs)
  Database* db = nullptr;
  DecodedExtentCache* scan_cache = nullptr;  // may be null (decode every scan)
};

/// 10-minute job: pod-pair aggregation -> PodPairStatRow.
void run_pod_pair_job(const CosmosStream& stream, const JobContext& ctx, SimTime from,
                      SimTime to);

/// 1-hour job: SLA per pod, podset, DC, and service -> SlaRow.
/// `include_server_rows` additionally emits per-server rows (micro scope).
void run_sla_job(const CosmosStream& stream, const JobContext& ctx, SimTime from,
                 SimTime to, bool include_server_rows = false);

/// 1-day job: intra-/inter-pod drop rates per DC -> DcDropRow (Table 1).
void run_dc_drop_job(const CosmosStream& stream, const JobContext& ctx, SimTime from,
                     SimTime to);

/// Threshold alerting (paper §4.3: "If the packet drop rate is greater than
/// 1e-3 or the 99th percentile latency is larger than 5ms ... fire alerts").
struct AlertThresholds {
  double drop_rate = 1e-3;
  SimTime p99 = millis(5);
  /// Minimum probes in a window before its metrics are trusted.
  std::uint64_t min_probes = 20;
};

/// Evaluate thresholds over freshly written SLA rows; appends AlertRows.
/// Returns the number of alerts fired.
int evaluate_sla_alerts(const JobContext& ctx, const std::vector<SlaRow>& fresh_rows,
                        const AlertThresholds& thresholds, SimTime now);

/// Periodic job orchestration on virtual time.
class JobManager {
 public:
  struct JobStats {
    std::string name;
    SimTime period = 0;
    std::uint64_t runs = 0;
    SimTime last_window_start = 0;
    SimTime last_fire_time = 0;
    /// Data-generated -> data-consumed delay of the last run (oldest record
    /// in window to fire time).
    [[nodiscard]] SimTime last_e2e_delay() const {
      return last_fire_time - last_window_start;
    }
  };

  using JobFn = std::function<void(SimTime from, SimTime to)>;

  explicit JobManager(SimTime ingestion_delay = minutes(10))
      : ingestion_delay_(ingestion_delay) {}

  void register_job(std::string name, SimTime period, JobFn fn);

  /// Register the standard 10-min / 1-hour / 1-day pipeline over a stream.
  /// `server_sla_rows` additionally emits per-server SLA rows from the
  /// hourly job (micro scope; feeds server selection).
  void register_standard_jobs(const CosmosStream& stream, const JobContext& ctx,
                              const AlertThresholds& thresholds = {},
                              bool server_sla_rows = false);

  /// Run every job whose next window is complete (call from a scheduler
  /// tick; idempotent within a window).
  void on_tick(SimTime now);

  /// Register dsa.job_* instruments (run counters + e2e-delay gauges per
  /// job) and, with a tracer, emit an infra span (trace id 0) per job run.
  void enable_observability(obs::MetricsRegistry& registry,
                            const obs::Tracer* tracer = nullptr);

  [[nodiscard]] std::vector<JobStats> stats() const;

 private:
  struct Job {
    JobStats stats;
    JobFn fn;
    SimTime next_window_start = 0;
    obs::Counter* runs_counter = nullptr;
    obs::Gauge* delay_gauge = nullptr;
  };

  void attach_instruments(Job& j);

  SimTime ingestion_delay_;
  std::vector<Job> jobs_;
  obs::MetricsRegistry* registry_ = nullptr;
  const obs::Tracer* tracer_ = nullptr;
};

}  // namespace pingmesh::dsa

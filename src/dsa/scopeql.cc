#include "dsa/scopeql.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <optional>

#include "agent/counters.h"
#include "common/stats.h"

namespace pingmesh::dsa::scopeql {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kIdent,
  kNumber,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;       // idents (upper-cased for keywords happens later)
  std::int64_t number = 0;
  std::size_t pos = 0;
};

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw QueryError("ScopeQL error at offset " + std::to_string(pos) + ": " + what);
}

std::vector<Token> lex(std::string_view q) {
  std::vector<Token> out;
  std::size_t i = 0;
  auto push = [&](Tok kind, std::size_t pos, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.pos = pos;
    out.push_back(std::move(t));
  };
  while (i < q.size()) {
    char c = q[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      while (i < q.size() && std::isdigit(static_cast<unsigned char>(q[i]))) {
        // Checked accumulate: a long digit string must report overflow, not
        // wrap through signed-overflow UB (fuzz finding).
        if (__builtin_mul_overflow(value, std::int64_t{10}, &value) ||
            __builtin_add_overflow(value, std::int64_t{q[i] - '0'}, &value)) {
          fail(start, "integer literal overflows int64");
        }
        ++i;
      }
      // Time suffixes: ns (default), us, ms, s, m, h.
      std::string suffix;
      while (i < q.size() && std::isalpha(static_cast<unsigned char>(q[i]))) {
        suffix += static_cast<char>(std::tolower(q[i]));
        ++i;
      }
      std::int64_t scale = 1;
      if (suffix == "us") scale = kNanosPerMicro;
      else if (suffix == "ms") scale = kNanosPerMilli;
      else if (suffix == "s") scale = kNanosPerSecond;
      else if (suffix == "m") scale = kNanosPerMinute;
      else if (suffix == "h") scale = kNanosPerHour;
      else if (!suffix.empty() && suffix != "ns") fail(start, "unknown suffix '" + suffix + "'");
      if (__builtin_mul_overflow(value, scale, &value)) {
        fail(start, "time literal overflows int64 nanoseconds");
      }
      Token t;
      t.kind = Tok::kNumber;
      t.number = value;
      t.pos = start;
      out.push_back(t);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < q.size() &&
             (std::isalnum(static_cast<unsigned char>(q[i])) || q[i] == '_')) {
        ident += q[i++];
      }
      push(Tok::kIdent, start, ident);
      continue;
    }
    switch (c) {
      case ',': push(Tok::kComma, i++); break;
      case '(': push(Tok::kLParen, i++); break;
      case ')': push(Tok::kRParen, i++); break;
      case '*': push(Tok::kStar, i++); break;
      case '=': push(Tok::kEq, i++); break;
      case '!':
        if (i + 1 < q.size() && q[i + 1] == '=') {
          push(Tok::kNe, i);
          i += 2;
        } else {
          fail(i, "expected '!='");
        }
        break;
      case '<':
        if (i + 1 < q.size() && q[i + 1] == '=') {
          push(Tok::kLe, i);
          i += 2;
        } else if (i + 1 < q.size() && q[i + 1] == '>') {
          push(Tok::kNe, i);
          i += 2;
        } else {
          push(Tok::kLt, i++);
        }
        break;
      case '>':
        if (i + 1 < q.size() && q[i + 1] == '=') {
          push(Tok::kGe, i);
          i += 2;
        } else {
          push(Tok::kGt, i++);
        }
        break;
      default:
        fail(i, std::string("unexpected character '") + c + "'");
    }
  }
  push(Tok::kEnd, q.size());
  return out;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

enum class ColumnId {
  kTimestamp,
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kKind,
  kQos,
  kSuccess,
  kRtt,
  kPayloadSuccess,
  kPayloadRtt,
  kPayloadBytes,
};

std::optional<ColumnId> column_by_name(const std::string& lower) {
  static const std::map<std::string, ColumnId> kMap = {
      {"timestamp", ColumnId::kTimestamp},
      {"src_ip", ColumnId::kSrcIp},
      {"dst_ip", ColumnId::kDstIp},
      {"src_port", ColumnId::kSrcPort},
      {"dst_port", ColumnId::kDstPort},
      {"kind", ColumnId::kKind},
      {"qos", ColumnId::kQos},
      {"success", ColumnId::kSuccess},
      {"rtt", ColumnId::kRtt},
      {"payload_success", ColumnId::kPayloadSuccess},
      {"payload_rtt", ColumnId::kPayloadRtt},
      {"payload_bytes", ColumnId::kPayloadBytes},
  };
  auto it = kMap.find(lower);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

enum class TopoFn { kPod, kPodset, kDc, kTor };
enum class BinOp { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kLiteral, kColumn, kTopoFn, kBinary, kNot } kind;
  std::int64_t literal = 0;
  ColumnId column = ColumnId::kRtt;
  TopoFn topo_fn = TopoFn::kPod;
  BinOp op = BinOp::kEq;
  ExprPtr lhs;
  ExprPtr rhs;
  std::string source;  ///< original text-ish, for output headers
};

enum class AggFn { kNone, kCount, kSum, kMin, kMax, kAvg, kP50, kP99, kP999, kDropRate };

struct SelectItem {
  AggFn agg = AggFn::kNone;
  ExprPtr expr;  ///< null for COUNT(*) / DROPRATE()
  std::string label;
  bool renders_ip = false;  ///< bare src_ip/dst_ip column: render dotted
};

struct Query {
  std::vector<SelectItem> select;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  std::optional<std::string> order_by;  ///< output column label
  bool order_desc = false;
  std::optional<std::size_t> limit;
  bool aggregated = false;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Query parse() {
    expect_keyword("SELECT");
    Query query;
    query.select.push_back(parse_select_item());
    while (peek().kind == Tok::kComma) {
      ++i_;
      query.select.push_back(parse_select_item());
    }
    expect_keyword("FROM");
    Token table = expect(Tok::kIdent, "table name");
    if (upper(table.text) != "LATENCY") fail(table.pos, "unknown table '" + table.text + "'");

    if (accept_keyword("WHERE")) query.where = parse_or();
    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      query.group_by.push_back(parse_primary_expr());
      while (peek().kind == Tok::kComma) {
        ++i_;
        query.group_by.push_back(parse_primary_expr());
      }
    }
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      Token col = expect(Tok::kIdent, "output column");
      query.order_by = col.text;
      if (accept_keyword("DESC")) {
        query.order_desc = true;
      } else {
        accept_keyword("ASC");
      }
    }
    if (accept_keyword("LIMIT")) {
      Token n = expect(Tok::kNumber, "limit");
      query.limit = static_cast<std::size_t>(n.number);
    }
    if (peek().kind != Tok::kEnd) fail(peek().pos, "trailing input");

    for (const SelectItem& item : query.select) {
      if (item.agg != AggFn::kNone) query.aggregated = true;
    }
    if (!query.group_by.empty()) query.aggregated = true;
    if (query.aggregated) {
      // Non-aggregate select items must be group keys; approximated by
      // requiring that GROUP BY exists when mixing.
      for (const SelectItem& item : query.select) {
        if (item.agg == AggFn::kNone && query.group_by.empty()) {
          throw QueryError("ScopeQL error: bare column '" + item.label +
                           "' mixed with aggregates needs GROUP BY");
        }
      }
    }
    return query;
  }

 private:
  const Token& peek() const { return tokens_[i_]; }

  Token expect(Tok kind, const char* what) {
    if (peek().kind != kind) fail(peek().pos, std::string("expected ") + what);
    return tokens_[i_++];
  }

  void expect_keyword(const char* kw) {
    if (!accept_keyword(kw)) fail(peek().pos, std::string("expected ") + kw);
  }

  bool accept_keyword(const char* kw) {
    if (peek().kind == Tok::kIdent && upper(peek().text) == kw) {
      ++i_;
      return true;
    }
    return false;
  }

  static std::optional<AggFn> agg_by_name(const std::string& up) {
    static const std::map<std::string, AggFn> kMap = {
        {"COUNT", AggFn::kCount}, {"SUM", AggFn::kSum},     {"MIN", AggFn::kMin},
        {"MAX", AggFn::kMax},     {"AVG", AggFn::kAvg},     {"P50", AggFn::kP50},
        {"P99", AggFn::kP99},     {"P999", AggFn::kP999},   {"DROPRATE", AggFn::kDropRate},
    };
    auto it = kMap.find(up);
    if (it == kMap.end()) return std::nullopt;
    return it->second;
  }

  static std::optional<TopoFn> topo_by_name(const std::string& lower) {
    static const std::map<std::string, TopoFn> kMap = {
        {"pod", TopoFn::kPod},
        {"podset", TopoFn::kPodset},
        {"dc", TopoFn::kDc},
        {"tor", TopoFn::kTor},
    };
    auto it = kMap.find(lower);
    if (it == kMap.end()) return std::nullopt;
    return it->second;
  }

  SelectItem parse_select_item() {
    SelectItem item;
    const Token& t = peek();
    if (t.kind == Tok::kIdent) {
      std::string up = upper(t.text);
      auto agg = agg_by_name(up);
      if (agg && tokens_[i_ + 1].kind == Tok::kLParen) {
        ++i_;  // fn name
        ++i_;  // '('
        item.agg = *agg;
        item.label = up;
        if (peek().kind == Tok::kStar) {
          if (*agg != AggFn::kCount) fail(peek().pos, "'*' only valid in COUNT(*)");
          ++i_;
          item.label = "COUNT(*)";
        } else if (peek().kind == Tok::kRParen) {
          if (*agg != AggFn::kDropRate && *agg != AggFn::kCount) {
            fail(peek().pos, "aggregate needs an argument");
          }
          item.label = up + "()";
        } else {
          item.expr = parse_primary_expr();
          item.label = up + "(" + item.expr->source + ")";
        }
        expect(Tok::kRParen, "')'");
        return item;
      }
    }
    item.expr = parse_primary_expr();
    item.label = item.expr->source;
    item.renders_ip = item.expr->kind == Expr::Kind::kColumn &&
                      (item.expr->column == ColumnId::kSrcIp ||
                       item.expr->column == ColumnId::kDstIp);
    return item;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept_keyword("OR")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinOp::kOr;
      node->lhs = std::move(lhs);
      node->rhs = parse_and();
      node->source = node->lhs->source + " OR " + node->rhs->source;
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (accept_keyword("AND")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinOp::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = parse_not();
      node->source = node->lhs->source + " AND " + node->rhs->source;
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (accept_keyword("NOT")) {
      if (++depth_ > kMaxExprDepth) {
        fail(peek().pos, "expression nesting exceeds depth limit (" +
                             std::to_string(kMaxExprDepth) + ")");
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->lhs = parse_not();
      node->source = "NOT " + node->lhs->source;
      --depth_;
      return node;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_primary_expr();
    BinOp op;
    switch (peek().kind) {
      case Tok::kEq: op = BinOp::kEq; break;
      case Tok::kNe: op = BinOp::kNe; break;
      case Tok::kLt: op = BinOp::kLt; break;
      case Tok::kLe: op = BinOp::kLe; break;
      case Tok::kGt: op = BinOp::kGt; break;
      case Tok::kGe: op = BinOp::kGe; break;
      default: return lhs;  // bare boolean column
    }
    ++i_;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = parse_primary_expr();
    node->source = node->lhs->source + " <op> " + node->rhs->source;
    return node;
  }

  ExprPtr parse_primary_expr() {
    // Parenthesized expressions and NOT chains recurse; bound the depth so
    // an adversarial query cannot run the parser (or the AST destructor)
    // off the stack.
    if (++depth_ > kMaxExprDepth) {
      fail(peek().pos, "expression nesting exceeds depth limit (" +
                           std::to_string(kMaxExprDepth) + ")");
    }
    ExprPtr node = parse_primary_inner();
    --depth_;
    return node;
  }

  ExprPtr parse_primary_inner() {
    const Token& t = peek();
    if (t.kind == Tok::kNumber) {
      ++i_;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      node->literal = t.number;
      node->source = std::to_string(t.number);
      return node;
    }
    if (t.kind == Tok::kLParen) {
      ++i_;
      ExprPtr inner = parse_or();
      expect(Tok::kRParen, "')'");
      return inner;
    }
    if (t.kind == Tok::kIdent) {
      std::string lower;
      for (char c : t.text) lower += static_cast<char>(std::tolower(c));
      // Topology function?
      auto topo_fn = topo_by_name(lower);
      if (topo_fn && tokens_[i_ + 1].kind == Tok::kLParen) {
        ++i_;  // name
        ++i_;  // (
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kTopoFn;
        node->topo_fn = *topo_fn;
        node->lhs = parse_primary_expr();
        expect(Tok::kRParen, "')'");
        node->source = lower + "(" + node->lhs->source + ")";
        return node;
      }
      auto column = column_by_name(lower);
      if (!column) fail(t.pos, "unknown column or function '" + t.text + "'");
      ++i_;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kColumn;
      node->column = *column;
      node->source = lower;
      return node;
    }
    fail(t.pos, "expected expression");
  }

  static constexpr std::size_t kMaxExprDepth = 128;

  std::vector<Token> tokens_;
  std::size_t i_ = 0;
  std::size_t depth_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

std::int64_t column_value(const agent::LatencyRecord& r, ColumnId column) {
  switch (column) {
    case ColumnId::kTimestamp: return r.timestamp;
    case ColumnId::kSrcIp: return r.src_ip.v;
    case ColumnId::kDstIp: return r.dst_ip.v;
    case ColumnId::kSrcPort: return r.src_port;
    case ColumnId::kDstPort: return r.dst_port;
    case ColumnId::kKind: return static_cast<std::int64_t>(r.kind);
    case ColumnId::kQos: return static_cast<std::int64_t>(r.qos);
    case ColumnId::kSuccess: return r.success ? 1 : 0;
    case ColumnId::kRtt: return r.rtt;
    case ColumnId::kPayloadSuccess: return r.payload_success ? 1 : 0;
    case ColumnId::kPayloadRtt: return r.payload_rtt;
    case ColumnId::kPayloadBytes: return r.payload_bytes;
  }
  return 0;
}

struct EvalContext {
  const topo::Topology* topo;
};

std::int64_t eval(const Expr& e, const agent::LatencyRecord& r, const EvalContext& ctx) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: return e.literal;
    case Expr::Kind::kColumn: return column_value(r, e.column);
    case Expr::Kind::kNot: return eval(*e.lhs, r, ctx) == 0 ? 1 : 0;
    case Expr::Kind::kTopoFn: {
      if (ctx.topo == nullptr) {
        throw QueryError("ScopeQL error: topology function '" + e.source +
                         "' needs an attached topology");
      }
      auto ip = IpAddr(static_cast<std::uint32_t>(eval(*e.lhs, r, ctx)));
      auto server = ctx.topo->find_server_by_ip(ip);
      if (!server) return -1;
      const topo::Server& s = ctx.topo->server(*server);
      switch (e.topo_fn) {
        case TopoFn::kPod: return s.pod.value;
        case TopoFn::kPodset: return s.podset.value;
        case TopoFn::kDc: return s.dc.value;
        case TopoFn::kTor: return s.tor.value;
      }
      return -1;
    }
    case Expr::Kind::kBinary: {
      std::int64_t lhs = eval(*e.lhs, r, ctx);
      if (e.op == BinOp::kAnd) return (lhs != 0 && eval(*e.rhs, r, ctx) != 0) ? 1 : 0;
      if (e.op == BinOp::kOr) return (lhs != 0 || eval(*e.rhs, r, ctx) != 0) ? 1 : 0;
      std::int64_t rhs = eval(*e.rhs, r, ctx);
      switch (e.op) {
        case BinOp::kEq: return lhs == rhs;
        case BinOp::kNe: return lhs != rhs;
        case BinOp::kLt: return lhs < rhs;
        case BinOp::kLe: return lhs <= rhs;
        case BinOp::kGt: return lhs > rhs;
        case BinOp::kGe: return lhs >= rhs;
        default: return 0;
      }
    }
  }
  return 0;
}

struct Accumulator {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::unique_ptr<LatencyHistogram> hist;  // for percentiles
  std::uint64_t successes = 0;             // for DROPRATE
  std::uint64_t signatures = 0;

  void add_value(std::int64_t v, bool need_hist) {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
    if (need_hist) {
      if (!hist) hist = std::make_unique<LatencyHistogram>();
      hist->record(v);
    }
  }
};

bool needs_hist(AggFn fn) {
  return fn == AggFn::kP50 || fn == AggFn::kP99 || fn == AggFn::kP999;
}

std::int64_t finish(const Accumulator& acc, AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return static_cast<std::int64_t>(acc.count);
    case AggFn::kSum: return acc.sum;
    case AggFn::kMin: return acc.min;
    case AggFn::kMax: return acc.max;
    case AggFn::kAvg:
      return acc.count ? acc.sum / static_cast<std::int64_t>(acc.count) : 0;
    case AggFn::kP50: return acc.hist ? acc.hist->p50() : 0;
    case AggFn::kP99: return acc.hist ? acc.hist->p99() : 0;
    case AggFn::kP999: return acc.hist ? acc.hist->p999() : 0;
    case AggFn::kDropRate:
      // parts-per-million so the integer pipeline carries it; rendered /1e6.
      return acc.successes
                 ? static_cast<std::int64_t>(1e6 * static_cast<double>(acc.signatures) /
                                             static_cast<double>(acc.successes))
                 : 0;
    case AggFn::kNone: return 0;
  }
  return 0;
}

std::string render_cell(std::int64_t v, const SelectItem& item) {
  if (item.renders_ip) return IpAddr(static_cast<std::uint32_t>(v)).str();
  if (item.agg == AggFn::kDropRate) return format_rate(static_cast<double>(v) / 1e6);
  return std::to_string(v);
}

}  // namespace

std::string QueryResult::to_table() const {
  std::vector<std::size_t> width(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) width[c] = columns[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(width[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(columns);
  for (const auto& row : rows) emit_row(row);
  return out;
}

QueryResult Interpreter::run(std::string_view query_text,
                             const std::vector<agent::LatencyRecord>& data) const {
  Parser parser(lex(query_text));
  Query query = parser.parse();
  EvalContext ctx{topo_};

  QueryResult result;
  for (const SelectItem& item : query.select) result.columns.push_back(item.label);

  auto matches = [&](const agent::LatencyRecord& r) {
    return !query.where || eval(*query.where, r, ctx) != 0;
  };

  if (!query.aggregated) {
    for (const agent::LatencyRecord& r : data) {
      if (!matches(r)) continue;
      std::vector<std::int64_t> raw;
      std::vector<std::string> rendered;
      for (const SelectItem& item : query.select) {
        std::int64_t v = eval(*item.expr, r, ctx);
        raw.push_back(v);
        rendered.push_back(render_cell(v, item));
      }
      result.raw_rows.push_back(std::move(raw));
      result.rows.push_back(std::move(rendered));
    }
  } else {
    // Grouped aggregation: key -> (group key values, per-item accumulators).
    struct Group {
      std::vector<std::int64_t> keys;
      std::vector<Accumulator> accs;
    };
    std::map<std::vector<std::int64_t>, Group> groups;
    for (const agent::LatencyRecord& r : data) {
      if (!matches(r)) continue;
      std::vector<std::int64_t> key;
      key.reserve(query.group_by.size());
      for (const ExprPtr& g : query.group_by) key.push_back(eval(*g, r, ctx));
      Group& group = groups[key];
      if (group.accs.empty()) {
        group.keys = key;
        group.accs.resize(query.select.size());
      }
      for (std::size_t s = 0; s < query.select.size(); ++s) {
        const SelectItem& item = query.select[s];
        Accumulator& acc = group.accs[s];
        if (item.agg == AggFn::kDropRate) {
          if (r.success) {
            ++acc.successes;
            if (agent::syn_drop_signature(r.rtt) > 0) ++acc.signatures;
          }
        } else if (item.agg == AggFn::kCount && !item.expr) {
          ++acc.count;
        } else if (item.agg != AggFn::kNone) {
          acc.add_value(eval(*item.expr, r, ctx), needs_hist(item.agg));
        } else {
          acc.add_value(eval(*item.expr, r, ctx), false);  // group key column
        }
      }
    }
    for (auto& [key, group] : groups) {
      std::vector<std::int64_t> raw;
      std::vector<std::string> rendered;
      for (std::size_t s = 0; s < query.select.size(); ++s) {
        const SelectItem& item = query.select[s];
        std::int64_t v;
        if (item.agg == AggFn::kNone) {
          // A bare column in an aggregated query: its (constant-per-group)
          // last value — by SQL convention it should be a group key.
          v = group.accs[s].count ? group.accs[s].max : 0;
          // Prefer the exact key value when the expression matches one.
          for (std::size_t g = 0; g < query.group_by.size(); ++g) {
            if (query.group_by[g]->source == item.expr->source) v = group.keys[g];
          }
        } else {
          v = finish(group.accs[s], item.agg);
        }
        raw.push_back(v);
        rendered.push_back(render_cell(v, item));
      }
      result.raw_rows.push_back(std::move(raw));
      result.rows.push_back(std::move(rendered));
    }
  }

  // ORDER BY over output columns.
  if (query.order_by) {
    std::size_t col = result.columns.size();
    std::string want = upper(*query.order_by);
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
      if (upper(result.columns[c]) == want ||
          upper(result.columns[c]).rfind(want + "(", 0) == 0) {
        col = c;
        break;
      }
    }
    if (col == result.columns.size()) {
      throw QueryError("ScopeQL error: ORDER BY references unknown output column '" +
                       *query.order_by + "'");
    }
    std::vector<std::size_t> index(result.rows.size());
    for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
    std::stable_sort(index.begin(), index.end(), [&](std::size_t a, std::size_t b) {
      return query.order_desc ? result.raw_rows[a][col] > result.raw_rows[b][col]
                              : result.raw_rows[a][col] < result.raw_rows[b][col];
    });
    QueryResult sorted;
    sorted.columns = result.columns;
    for (std::size_t i : index) {
      sorted.rows.push_back(std::move(result.rows[i]));
      sorted.raw_rows.push_back(std::move(result.raw_rows[i]));
    }
    result = std::move(sorted);
  }

  if (query.limit && result.rows.size() > *query.limit) {
    result.rows.resize(*query.limit);
    result.raw_rows.resize(*query.limit);
  }
  return result;
}

}  // namespace pingmesh::dsa::scopeql

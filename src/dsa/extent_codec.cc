#include "dsa/extent_codec.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pingmesh::dsa {

namespace {

constexpr char kMagic = static_cast<char>(0xC1);

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

bool get_varint(std::string_view data, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= data.size()) return false;
    std::uint8_t byte = static_cast<std::uint8_t>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // > 10 continuation bytes: not a valid 64-bit varint
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

bool get_u32le(std::string_view data, std::size_t& pos, std::uint32_t& v) {
  if (data.size() - pos < 4) return false;
  v = static_cast<std::uint8_t>(data[pos]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + 1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + 2])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + 3])) << 24);
  pos += 4;
  return true;
}

}  // namespace

std::string encode_columnar(const agent::RecordColumns& batch, std::size_t from) {
  const std::size_t total = batch.size();
  const std::size_t n = from < total ? total - from : 0;
  std::string out;
  out.reserve(2 + n * 8);
  out.push_back(kMagic);
  put_varint(out, n);
  if (n == 0) return out;

  const std::uint32_t* src = batch.src_ips() + from;
  const std::uint32_t* dst = batch.dst_ips() + from;

  // Shared src/dst IP dictionary in first-appearance order: a batch from one
  // agent has 1 src and a pinglist's worth of dsts, so indexes stay tiny.
  std::unordered_map<std::uint32_t, std::uint32_t> index;
  std::vector<std::uint32_t> dict;
  index.reserve(64);
  auto intern = [&](std::uint32_t ip) {
    auto [it, fresh] = index.emplace(ip, static_cast<std::uint32_t>(dict.size()));
    if (fresh) dict.push_back(ip);
    return it->second;
  };
  std::vector<std::uint32_t> src_idx(n), dst_idx(n);
  for (std::size_t i = 0; i < n; ++i) src_idx[i] = intern(src[i]);
  for (std::size_t i = 0; i < n; ++i) dst_idx[i] = intern(dst[i]);

  put_varint(out, dict.size());
  for (std::uint32_t ip : dict) put_u32le(out, ip);
  for (std::size_t i = 0; i < n; ++i) put_varint(out, src_idx[i]);
  for (std::size_t i = 0; i < n; ++i) put_varint(out, dst_idx[i]);

  const SimTime* ts = batch.timestamps() + from;
  put_varint(out, zigzag(ts[0]));
  for (std::size_t i = 1; i < n; ++i) put_varint(out, zigzag(ts[i] - ts[i - 1]));

  const std::uint16_t* sp = batch.src_ports() + from;
  const std::uint16_t* dp = batch.dst_ports() + from;
  for (std::size_t i = 0; i < n; ++i) put_varint(out, sp[i]);
  for (std::size_t i = 0; i < n; ++i) put_varint(out, dp[i]);

  const std::uint8_t* kind = batch.kinds() + from;
  const std::uint8_t* qos = batch.qos() + from;
  const std::uint8_t* ok = batch.successes() + from;
  const std::uint8_t* pok = batch.payload_successes() + from;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>((kind[i] & 0x3) | ((qos[i] & 0x1) << 2) |
                                    ((ok[i] & 0x1) << 3) | ((pok[i] & 0x1) << 4)));
  }

  const SimTime* rtt = batch.rtts() + from;
  for (std::size_t i = 0; i < n; ++i) put_varint(out, zigzag(rtt[i]));
  const SimTime* prtt = batch.payload_rtts() + from;
  for (std::size_t i = 0; i < n; ++i) put_varint(out, zigzag(prtt[i]));
  const std::uint32_t* pbytes = batch.payload_bytes() + from;
  for (std::size_t i = 0; i < n; ++i) put_varint(out, pbytes[i]);
  return out;
}

bool decode_columnar_block(std::string_view data, std::size_t& pos,
                           agent::RecordColumns& out, agent::DecodeStats* stats) {
  const std::size_t start_rows = out.size();
  std::uint64_t n = 0;
  auto fail = [&](std::uint64_t claimed) {
    if (stats != nullptr) {
      stats->rows_decoded += out.size() - start_rows;
      // Everything the header promised but we could not recover is a drop;
      // an unreadable header itself counts as (at least) one lost row.
      std::uint64_t got = out.size() - start_rows;
      stats->rows_dropped += claimed > got ? claimed - got : 1;
    }
    return false;
  };
  if (pos >= data.size() || data[pos] != kMagic) return fail(0);
  ++pos;
  if (!get_varint(data, pos, n)) return fail(0);
  // Adversarial-size bound: every row needs >= 1 byte in each of the 8
  // per-row sections, so a count the remaining bytes cannot possibly hold
  // is rejected before any allocation.
  if (n > (data.size() - pos) / 8 + 1) return fail(n);
  if (n == 0) return true;

  std::uint64_t dict_size = 0;
  if (!get_varint(data, pos, dict_size)) return fail(n);
  if (dict_size > (data.size() - pos) / 4) return fail(n);
  std::vector<std::uint32_t> dict(dict_size);
  for (std::uint64_t i = 0; i < dict_size; ++i) {
    if (!get_u32le(data, pos, dict[i])) return fail(n);
  }

  std::vector<std::uint32_t> src(n), dst(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t idx = 0;
    if (!get_varint(data, pos, idx) || idx >= dict_size) return fail(n);
    src[i] = dict[idx];
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t idx = 0;
    if (!get_varint(data, pos, idx) || idx >= dict_size) return fail(n);
    dst[i] = dict[idx];
  }

  std::vector<SimTime> ts(n);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t raw = 0;
    if (!get_varint(data, pos, raw)) return fail(n);
    prev = (i == 0) ? unzigzag(raw) : prev + unzigzag(raw);
    ts[i] = prev;
  }

  std::vector<std::uint16_t> sp(n), dp(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if (!get_varint(data, pos, v) || v > 0xFFFF) return fail(n);
    sp[i] = static_cast<std::uint16_t>(v);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if (!get_varint(data, pos, v) || v > 0xFFFF) return fail(n);
    dp[i] = static_cast<std::uint16_t>(v);
  }

  if (data.size() - pos < n) return fail(n);
  const std::size_t flags_at = pos;
  pos += n;
  // Validate flags before committing rows: kind has 3 legal values.
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint8_t f = static_cast<std::uint8_t>(data[flags_at + i]);
    if ((f & 0x3) > 2 || (f & 0xE0) != 0) return fail(n);
  }

  std::vector<SimTime> rtt(n), prtt(n);
  std::vector<std::uint32_t> pbytes(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t raw = 0;
    if (!get_varint(data, pos, raw)) return fail(n);
    rtt[i] = unzigzag(raw);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t raw = 0;
    if (!get_varint(data, pos, raw)) return fail(n);
    prtt[i] = unzigzag(raw);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if (!get_varint(data, pos, v) || v > 0xFFFFFFFFu) return fail(n);
    pbytes[i] = static_cast<std::uint32_t>(v);
  }

  for (std::uint64_t i = 0; i < n; ++i) {
    agent::LatencyRecord r;
    std::uint8_t f = static_cast<std::uint8_t>(data[flags_at + i]);
    r.timestamp = ts[i];
    r.src_ip = IpAddr(src[i]);
    r.dst_ip = IpAddr(dst[i]);
    r.src_port = sp[i];
    r.dst_port = dp[i];
    r.kind = static_cast<controller::ProbeKind>(f & 0x3);
    r.qos = static_cast<controller::QosClass>((f >> 2) & 0x1);
    r.success = ((f >> 3) & 0x1) != 0;
    r.payload_success = ((f >> 4) & 0x1) != 0;
    r.rtt = rtt[i];
    r.payload_rtt = prtt[i];
    r.payload_bytes = pbytes[i];
    out.push_back(r);
  }
  if (stats != nullptr) stats->rows_decoded += n;
  return true;
}

agent::RecordColumns decode_columnar(std::string_view data, agent::DecodeStats* stats) {
  agent::RecordColumns out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (!decode_columnar_block(data, pos, out, stats)) break;
  }
  return out;
}

agent::RecordColumns decode_extent(const Extent& e, agent::DecodeStats* stats) {
  if (e.encoding == ExtentEncoding::kColumnar) return decode_columnar(e.data, stats);
  return agent::to_columns(agent::decode_batch(e.data, stats));
}

}  // namespace pingmesh::dsa

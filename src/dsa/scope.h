// A small SCOPE-like dataflow engine (paper §2.3: "SCOPE is a declarative
// and extensible scripting language ... to analyze massive data sets ...
// scripts similar to SQL").
//
// Our jobs are the SQL shapes the paper describes — EXTRACT from a Cosmos
// stream, WHERE, SELECT, GROUP BY + aggregate, OUTPUT to a database table —
// so the engine provides exactly those verbs, typed, with fluent chaining:
//
//   auto stats = scope::extract_records(stream, from, to)
//                    .where([](auto& r) { return r.success; })
//                    .aggregate_by<PodPairKey, LatencyAggregator>(key_fn);
//
// It is deliberately an in-memory, single-node engine: the distribution,
// partitioning, and failure handling Cosmos/SCOPE provide are not what the
// paper evaluates, the query shapes are.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "agent/record.h"
#include "dsa/cosmos.h"
#include "dsa/extent_codec.h"

namespace pingmesh::dsa::scope {

template <class Row>
class DataSet {
 public:
  DataSet() = default;
  explicit DataSet(std::vector<Row> rows) : rows_(std::move(rows)) {}

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// WHERE: keep rows matching the predicate.
  template <class Pred>
  [[nodiscard]] DataSet where(Pred pred) const {
    std::vector<Row> out;
    out.reserve(rows_.size());
    std::copy_if(rows_.begin(), rows_.end(), std::back_inserter(out), pred);
    return DataSet(std::move(out));
  }

  /// SELECT: project each row.
  template <class Fn>
  [[nodiscard]] auto select(Fn fn) const {
    using Out = decltype(fn(std::declval<const Row&>()));
    std::vector<Out> out;
    out.reserve(rows_.size());
    for (const Row& r : rows_) out.push_back(fn(r));
    return DataSet<Out>(std::move(out));
  }

  /// GROUP BY key + aggregate. `Agg` must provide:
  ///   void add(const Row&);
  ///   Result finish() const;  (any result type)
  /// Returns (key, result) pairs ordered by key.
  template <class Agg, class KeyFn>
  [[nodiscard]] auto aggregate_by(KeyFn key_fn) const {
    using Key = decltype(key_fn(std::declval<const Row&>()));
    std::map<Key, Agg> groups;
    for (const Row& r : rows_) groups[key_fn(r)].add(r);
    using Result = decltype(std::declval<const Agg&>().finish());
    std::vector<std::pair<Key, Result>> out;
    out.reserve(groups.size());
    for (const auto& [key, agg] : groups) out.emplace_back(key, agg.finish());
    return out;
  }

  /// Aggregate the whole set with one aggregator.
  template <class Agg>
  [[nodiscard]] auto aggregate() const {
    Agg agg;
    for (const Row& r : rows_) agg.add(r);
    return agg.finish();
  }

  /// ORDER BY a key extractor.
  template <class KeyFn>
  [[nodiscard]] DataSet order_by(KeyFn key_fn) const {
    std::vector<Row> out = rows_;
    std::stable_sort(out.begin(), out.end(), [&](const Row& a, const Row& b) {
      return key_fn(a) < key_fn(b);
    });
    return DataSet(std::move(out));
  }

  /// UNION ALL.
  [[nodiscard]] DataSet union_all(const DataSet& other) const {
    std::vector<Row> out = rows_;
    out.insert(out.end(), other.rows_.begin(), other.rows_.end());
    return DataSet(std::move(out));
  }

  /// OUTPUT: append rows into a sink (e.g. a database table's vector).
  void output_to(std::vector<Row>& sink) const {
    sink.insert(sink.end(), rows_.begin(), rows_.end());
  }

 private:
  std::vector<Row> rows_;
};

/// EXTRACT latency records from a Cosmos stream over [from, to).
/// Extent time ranges are coarse; the record-level filter is exact.
inline DataSet<agent::LatencyRecord> extract_records(const CosmosStream& stream,
                                                     SimTime from, SimTime to) {
  std::vector<agent::LatencyRecord> rows;
  stream.scan(from, to, [&](const Extent& e) {
    const agent::RecordColumns cols = decode_extent(e);
    const SimTime* ts = cols.timestamps();
    for (std::size_t i = 0, n = cols.size(); i < n; ++i) {
      if (ts[i] >= from && ts[i] < to) rows.push_back(cols.row(i));
    }
  });
  return DataSet<agent::LatencyRecord>(std::move(rows));
}

}  // namespace pingmesh::dsa::scope

// Perfcounter Aggregator — the fast path of the DSA design (paper §3.5):
// "The Autopilot PA pipeline is a distributed design with every data center
// has its own pipeline. The PA counter collection latency is 5 minutes,
// which is faster than our Cosmos/SCOPE pipeline. ... By using both of
// them, we provide higher availability for Pingmesh than either of them."
//
// The PA path consumes the agents' local counters (not raw records):
// coarser but cheap and independent of Cosmos.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "agent/counters.h"
#include "common/types.h"
#include "dsa/database.h"
#include "dsa/jobs.h"
#include "topology/topology.h"

namespace pingmesh::dsa {

/// Threshold alerting over the PA fast path: evaluates PaCounterRows with
/// time in (since, now]. This is what keeps alerting alive when the
/// Cosmos/SCOPE path is down — "By using both of them, we provide higher
/// availability for Pingmesh than either of them" (§3.5). Returns the
/// number of alerts appended.
int evaluate_pa_alerts(Database& db, const topo::Topology& topo,
                       const AlertThresholds& thresholds, SimTime since, SimTime now);

class PerfcounterAggregator {
 public:
  static constexpr SimTime kCollectionPeriod = minutes(5);

  PerfcounterAggregator(const topo::Topology& topo, Database& db)
      : topo_(&topo), db_(&db) {}

  /// Ingest one server's counter snapshot for the current 5-min bucket.
  void collect(ServerId server, const agent::CounterSnapshot& snapshot);

  /// Close the current bucket: aggregate per pod and write PaCounterRows.
  /// Pod-level percentiles come from merging the servers' window
  /// LatencySketches (true percentiles, bounded relative error). Snapshots
  /// carrying no sketch — bare counters built by hand or by legacy agents —
  /// fall back to the probe-weighted mean of server p50/p99.
  void flush(SimTime now);

  [[nodiscard]] std::uint64_t snapshots_collected() const { return collected_; }

 private:
  struct PodAcc {
    std::uint64_t probes = 0;
    std::uint64_t successes = 0;
    std::uint64_t signatures = 0;
    double p50_weighted = 0.0;  // sum of p50 * successes (sketchless fallback)
    double p99_weighted = 0.0;
    streaming::LatencySketch merged;  // union of server window sketches
  };

  const topo::Topology* topo_;
  Database* db_;
  std::unordered_map<std::uint32_t, PodAcc> current_;  // PodId -> acc
  std::uint64_t collected_ = 0;
};

}  // namespace pingmesh::dsa

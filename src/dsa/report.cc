#include "dsa/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "common/stats.h"

namespace pingmesh::dsa {

namespace {

struct Roll {
  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  std::uint64_t signatures = 0;
  std::int64_t worst_p99 = 0;
  std::int64_t last_p50 = 0;

  void add(const SlaRow& row) {
    probes += row.probes;
    successes += row.successes;
    signatures += row.drop_signatures;
    worst_p99 = std::max(worst_p99, row.p99_ns);
    last_p50 = row.p50_ns;
  }

  [[nodiscard]] double drop_rate() const {
    return successes ? static_cast<double>(signatures) / static_cast<double>(successes)
                     : 0.0;
  }
};

void line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string render_network_report(const Database& db, const topo::Topology& topo,
                                  const topo::ServiceMap* services,
                                  const ReportOptions& options) {
  SimTime from = options.window_start;
  SimTime to = options.window_end;
  if (to == 0) {
    for (const SlaRow& row : db.sla_rows) to = std::max(to, row.window_end);
  }

  auto in_window = [&](SimTime ws, SimTime we) { return we > from && (to == 0 || ws < to); };

  std::string out;
  line(out, "================ PINGMESH NETWORK REPORT ================");
  line(out, "window: %.1fh .. %.1fh", to_seconds(from) / 3600.0, to_seconds(to) / 3600.0);

  // --- per-DC SLA -----------------------------------------------------------
  std::map<std::uint32_t, Roll> per_dc;
  std::map<std::uint32_t, Roll> per_pod;
  std::map<std::uint32_t, Roll> per_service;
  for (const SlaRow& row : db.sla_rows) {
    if (!in_window(row.window_start, row.window_end)) continue;
    switch (row.scope) {
      case SlaScope::kDc: per_dc[row.scope_id].add(row); break;
      case SlaScope::kPod: per_pod[row.scope_id].add(row); break;
      case SlaScope::kService: per_service[row.scope_id].add(row); break;
      default: break;
    }
  }

  line(out, "");
  line(out, "-- data center SLA (drop rate | P50 | worst P99) --");
  for (const auto& [dc_id, roll] : per_dc) {
    if (dc_id >= topo.dcs().size()) continue;
    line(out, "  %-10s %10s | %8s | %8s   (%lu probes)",
         topo.dc(DcId{dc_id}).name.c_str(), format_rate(roll.drop_rate()).c_str(),
         format_latency_ns(roll.last_p50).c_str(),
         format_latency_ns(roll.worst_p99).c_str(),
         static_cast<unsigned long>(roll.probes));
  }

  // --- worst pods by drop rate ------------------------------------------------
  std::vector<std::pair<double, std::uint32_t>> pods;
  for (const auto& [pod_id, roll] : per_pod) {
    if (roll.probes < 20) continue;
    pods.emplace_back(roll.drop_rate(), pod_id);
  }
  std::sort(pods.begin(), pods.end(), std::greater<>());
  line(out, "");
  line(out, "-- worst pods by drop rate --");
  for (std::size_t i = 0; i < pods.size() && i < options.worst_pods; ++i) {
    std::uint32_t pod_id = pods[i].second;
    if (pod_id >= topo.pods().size()) continue;
    const topo::Pod& pod = topo.pod(PodId{pod_id});
    line(out, "  %-16s %10s  (tor %s)", topo.sw(pod.tor).name.c_str(),
         format_rate(pods[i].first).c_str(), topo.sw(pod.tor).name.c_str());
  }

  // --- services ----------------------------------------------------------------
  if (services != nullptr && !per_service.empty()) {
    line(out, "");
    line(out, "-- service SLA --");
    for (const auto& [svc_id, roll] : per_service) {
      if (svc_id >= services->service_count()) continue;
      line(out, "  %-16s drop %10s  worst P99 %8s  (%lu probes)",
           services->name(ServiceId{svc_id}).c_str(),
           format_rate(roll.drop_rate()).c_str(),
           format_latency_ns(roll.worst_p99).c_str(),
           static_cast<unsigned long>(roll.probes));
    }
  }

  // --- alerts --------------------------------------------------------------------
  line(out, "");
  std::size_t alert_count = 0;
  for (const AlertRow& alert : db.alerts) {
    if (alert.time >= from && (to == 0 || alert.time < to)) ++alert_count;
  }
  line(out, "-- alerts in window: %zu --", alert_count);
  std::size_t shown = 0;
  for (auto it = db.alerts.rbegin(); it != db.alerts.rend() && shown < 10; ++it) {
    if (it->time < from || (to != 0 && it->time >= to)) continue;
    line(out, "  [%s] t=%.1fh %s: %s",
         it->severity == AlertSeverity::kCritical ? "CRIT" : "WARN",
         to_seconds(it->time) / 3600.0, it->scope.c_str(), it->message.c_str());
    ++shown;
  }
  line(out, "==========================================================");
  return out;
}

}  // namespace pingmesh::dsa

// Cosmos store persistence: spill streams to disk and load them back.
//
// The production Cosmos is a durable distributed filesystem; this gives the
// reproduction the part of that durability the tooling needs — an
// experiment can archive its raw latency data and a later analysis session
// (or the pingmeshctl CLI) can reopen it. One file holds a whole store.
//
// Format (version 2): a text header per stream/extent (including the
// extent's payload encoding), raw extent bytes in-line. Version-1 files
// (pre-columnar, implicitly CSV) still load. Checksums are verified on
// load; corrupt extents are dropped and counted, mirroring the
// replicated-extent semantics.
#pragma once

#include <optional>
#include <string>

#include "dsa/cosmos.h"

namespace pingmesh::dsa {

struct LoadResult {
  CosmosStore store;
  std::size_t streams = 0;
  std::size_t extents = 0;
  std::size_t corrupt_dropped = 0;
};

/// Serialize the whole store. Returns false on IO error.
bool save_store(const CosmosStore& store, const std::string& path);

/// Load a store written by save_store. nullopt on missing/unparseable file.
/// An extent header declaring more than 4 * extent_size_limit bytes makes
/// the file unparseable (adversarial headers must not drive allocations).
std::optional<LoadResult> load_store(const std::string& path,
                                     std::size_t extent_size_limit = 4 * 1024 * 1024);

}  // namespace pingmesh::dsa

// Decoded-extent cache for the SCOPE scan path.
//
// extract_records decodes an extent's payload on every scan, and the
// periodic jobs (10-min / 1-hour / 1-day) plus dashboards re-scan windows
// that overlap the same extents many times. Sealed extents are immutable,
// so their decoded rows can be kept; only the open tail extent keeps
// growing. The cache keys rows by extent id and validates the stored
// checksum on each lookup, so a grown (or corrupted-then-restored) extent
// is transparently re-decoded and results are always identical to an
// uncached scan.
//
// Entries are columnar (RecordColumns): the window filter runs over the
// contiguous timestamp array — a branch-light linear pass the compiler can
// vectorize — and only matching rows are materialized.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "agent/record.h"
#include "agent/record_columns.h"
#include "common/clock.h"
#include "dsa/cosmos.h"
#include "dsa/extent_codec.h"
#include "dsa/scope.h"
#include "obs/trace.h"

namespace pingmesh::dsa {

class DecodedExtentCache {
 public:
  explicit DecodedExtentCache(std::size_t max_entries = 512)
      : max_entries_(max_entries) {}

  /// Decoded columns of `e`; decodes on a miss or when the extent's checksum
  /// changed since it was cached (the open tail extent grows in place).
  /// The reference stays valid until the next columns()/expire_before()/clear().
  const agent::RecordColumns& columns(const Extent& e);

  /// Drop entries whose newest record is older than `horizon` — the mirror
  /// of CosmosStream::expire_before, called on the same retention schedule.
  void expire_before(SimTime horizon);

  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Cumulative malformed rows encountered while decoding extents through
  /// this cache. Decoders used to drop such rows silently; the count feeds
  /// the dsa.decode_rows_dropped_total gauge and the chaos decode-integrity
  /// invariant (zero for plans without extent corruption).
  [[nodiscard]] std::uint64_t rows_dropped() const { return rows_dropped_; }

  /// Attach the data-path tracer (and the clock that stamps its spans).
  /// Cached extract_records then emits scope.scan spans for sampled rows.
  void set_observability(const obs::Tracer* tracer, const Clock* clock) {
    tracer_ = tracer;
    clock_ = clock;
  }
  [[nodiscard]] const obs::Tracer* tracer() const { return tracer_; }
  [[nodiscard]] const Clock* span_clock() const { return clock_; }

 private:
  struct Entry {
    std::uint32_t checksum = 0;
    SimTime last_ts = 0;
    agent::RecordColumns columns;
  };

  std::size_t max_entries_;
  // Extent ids are allocated monotonically, so the map's smallest key is
  // the oldest extent — eviction pops the front (FIFO in append order).
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rows_dropped_ = 0;
  const obs::Tracer* tracer_ = nullptr;
  const Clock* clock_ = nullptr;
};

namespace scope {

/// EXTRACT with a decoded-extent cache: identical result to the uncached
/// overload, decoding each extent at most once while it stays unchanged.
/// The time filter runs over the cached timestamp column; rows are only
/// materialized when they fall inside the window.
inline DataSet<agent::LatencyRecord> extract_records(const CosmosStream& stream,
                                                     SimTime from, SimTime to,
                                                     DecodedExtentCache& cache) {
  std::vector<agent::LatencyRecord> out;
  const obs::Tracer* tracer = cache.tracer();
  bool tracing = tracer != nullptr && tracer->enabled() && cache.span_clock() != nullptr;
  stream.scan(from, to, [&](const Extent& e) {
    std::uint64_t hits_before = cache.hits();
    const agent::RecordColumns& cols = cache.columns(e);
    bool hit = cache.hits() > hits_before;
    const SimTime* ts = cols.timestamps();
    const std::size_t n = cols.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (ts[i] < from || ts[i] >= to) continue;
      agent::LatencyRecord r = cols.row(i);
      out.push_back(r);
      if (tracing) {
        std::uint64_t key = obs::trace_key(r.timestamp, r.src_ip.v, r.dst_ip.v, r.src_port);
        if (tracer->sampled(key)) {
          SimTime now = cache.span_clock()->now();
          tracer->span(key, "scope.scan", now, now,
                       std::string("cache=") + (hit ? "hit" : "miss") +
                           ";extent=" + std::to_string(e.id));
        }
      }
    }
  });
  return DataSet<agent::LatencyRecord>(std::move(out));
}

}  // namespace scope
}  // namespace pingmesh::dsa

// Binary columnar extent encoding for latency records.
//
// The CSV extents the paper describes (§6.2) are schema-on-read text; at
// paper scale they cost ~90 bytes/record and a full text parse per scan.
// This codec stores one upload batch as a self-delimiting binary block:
//
//   magic 0xC1 | varint row_count
//   varint dict_size, dict_size x u32-LE IPs   (src+dst dictionary, in
//                                               first-appearance order)
//   row_count x varint src dict index
//   row_count x varint dst dict index
//   timestamps: zigzag varint, first absolute then deltas
//   row_count x varint src_port, row_count x varint dst_port
//   row_count x flags byte (kind:2 | qos:1 | success:1 | payload_success:1)
//   row_count x zigzag varint rtt
//   row_count x zigzag varint payload_rtt
//   row_count x varint payload_bytes
//
// Blocks are self-delimiting so multiple appends concatenated into one
// Cosmos extent decode with a loop, mirroring how CSV batches concatenate.
// Decoded output is column-major (RecordColumns), so scans can filter on
// the contiguous timestamp array without materializing rows.
//
// The decoder treats input as untrusted (extents cross a process/disk
// boundary via cosmos_io): every count is bounded against the remaining
// bytes before any allocation, and a malformed block reports its lost rows
// through DecodeStats instead of silently truncating.
#pragma once

#include <string>
#include <string_view>

#include "agent/record_columns.h"
#include "dsa/cosmos.h"

namespace pingmesh::dsa {

/// Encode rows [from, size()) of `batch` as one binary block.
std::string encode_columnar(const agent::RecordColumns& batch, std::size_t from = 0);

/// Decode one block starting at data[pos]; appends rows to `out` and
/// advances pos past the block. Returns false when the block is malformed
/// (pos then points at the failure and the caller should stop; claimed-but-
/// unrecovered rows are counted into stats->rows_dropped).
bool decode_columnar_block(std::string_view data, std::size_t& pos,
                           agent::RecordColumns& out,
                           agent::DecodeStats* stats = nullptr);

/// Decode a whole extent payload (a concatenation of blocks).
agent::RecordColumns decode_columnar(std::string_view data,
                                     agent::DecodeStats* stats = nullptr);

/// Decode an extent of either encoding into columns — the single entry
/// point for the scan paths (scan_cache, SCOPE EXTRACT, pingmeshctl).
agent::RecordColumns decode_extent(const Extent& e,
                                   agent::DecodeStats* stats = nullptr);

}  // namespace pingmesh::dsa

#include "dsa/scan_cache.h"

#include "common/check.h"

namespace pingmesh::dsa {

const agent::RecordColumns& DecodedExtentCache::columns(const Extent& e) {
  auto it = entries_.find(e.id);
  if (it != entries_.end() && it->second.checksum == e.checksum) {
    ++hits_;
    return it->second.columns;
  }
  ++misses_;
  Entry entry;
  entry.checksum = e.checksum;
  entry.last_ts = e.last_ts;
  agent::DecodeStats stats;
  entry.columns = decode_extent(e, &stats);
  rows_dropped_ += stats.rows_dropped;
  if (it != entries_.end()) {
    // Stale entry for a grown tail extent: replace in place.
    it->second = std::move(entry);
    return it->second.columns;
  }
  while (max_entries_ > 0 && entries_.size() >= max_entries_) {
    entries_.erase(entries_.begin());
    ++evictions_;
  }
  PINGMESH_DCHECK(max_entries_ == 0 || entries_.size() < max_entries_);
  return entries_.emplace(e.id, std::move(entry)).first->second.columns;
}

void DecodedExtentCache::expire_before(SimTime horizon) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_ts < horizon) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void DecodedExtentCache::clear() { entries_.clear(); }

}  // namespace pingmesh::dsa

#include "dsa/pa.h"

#include "common/stats.h"

namespace pingmesh::dsa {

int evaluate_pa_alerts(Database& db, const topo::Topology& topo,
                       const AlertThresholds& thresholds, SimTime since, SimTime now) {
  int fired = 0;
  const std::string rule = "pa:drop_rate>" + format_rate(thresholds.drop_rate);
  for (const PaCounterRow& row : db.pa_counters) {
    if (row.time <= since || row.time > now) continue;
    if (row.probes < thresholds.min_probes) continue;
    std::string scope = "pa pod " + (row.pod.value < topo.pods().size()
                                         ? topo.sw(topo.pod(row.pod).tor).name
                                         : "#" + std::to_string(row.pod.value));
    // The PA path alerts on drop rate only: its pod-level percentiles are
    // noisy against a 5 ms threshold (one host stall skews a whole pod).
    // Precise latency alerting belongs to the Cosmos/SCOPE path.
    // A 5-minute pod window holds only hundreds of probes; one retransmit
    // signature breaches 1e-3 by itself. Require a few before paging.
    if (row.drop_signatures >= 3 && row.drop_rate > thresholds.drop_rate) {
      // Dedup through the open-alert registry: a fault persisting across
      // many 5-min windows appends one AlertRow, not one per window.
      if (!db.open_alert(scope, rule, now)) continue;
      AlertRow a;
      a.time = now;
      a.severity = AlertSeverity::kCritical;
      a.rule = rule;
      a.scope = scope;
      a.value = row.drop_rate;
      a.message = "PA drop rate " + format_rate(row.drop_rate) + " exceeds SLA";
      db.alerts.push_back(std::move(a));
      ++fired;
    } else {
      // A trusted clean window clears the condition; the next breach may
      // page again.
      db.close_alert(scope, rule);
    }
  }
  return fired;
}

void PerfcounterAggregator::collect(ServerId server, const agent::CounterSnapshot& s) {
  ++collected_;
  PodId pod = topo_->server(server).pod;
  PodAcc& acc = current_[pod.value];
  acc.probes += s.probes;
  acc.successes += s.successes;
  acc.signatures += s.probes_3s + s.probes_9s;
  acc.p50_weighted += static_cast<double>(s.p50_ns) * static_cast<double>(s.successes);
  acc.p99_weighted += static_cast<double>(s.p99_ns) * static_cast<double>(s.successes);
  // Live snapshots carry the window's latency sketch: merging them yields
  // true pod-level percentiles (O(1) merge, bounded relative error).
  if (s.latency.count() > 0 && acc.merged.mergeable_with(s.latency)) {
    acc.merged.merge(s.latency);
  }
}

void PerfcounterAggregator::flush(SimTime now) {
  for (const auto& [pod, acc] : current_) {
    if (acc.probes == 0) continue;
    PaCounterRow row;
    row.time = now;
    row.pod = PodId{pod};
    row.probes = acc.probes;
    row.drop_signatures = acc.signatures;
    row.drop_rate = acc.successes
                        ? static_cast<double>(acc.signatures) / static_cast<double>(acc.successes)
                        : 0.0;
    if (acc.merged.count() > 0) {
      // Sketch-merged percentiles: exact aggregation up to the sketch's
      // documented relative error.
      row.p50_ns = acc.merged.p50();
      row.p99_ns = acc.merged.p99();
    } else if (acc.successes > 0) {
      // Snapshots built from bare counters (no sketch): fall back to the
      // historical probe-weighted approximation.
      row.p50_ns = static_cast<std::int64_t>(acc.p50_weighted /
                                             static_cast<double>(acc.successes));
      row.p99_ns = static_cast<std::int64_t>(acc.p99_weighted /
                                             static_cast<double>(acc.successes));
    }
    db_->pa_counters.push_back(row);
  }
  current_.clear();
}

}  // namespace pingmesh::dsa

#include "dsa/cosmos_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace pingmesh::dsa {

namespace {

// Version 2 adds the per-extent encoding token; version-1 files (no token,
// always CSV) still load.
constexpr const char* kMagic = "PMCOSMOS2";
constexpr const char* kMagicV1 = "PMCOSMOS1";

/// Stream names may contain '/', never newlines; reject anything else odd.
bool name_ok(const std::string& name) {
  return !name.empty() && name.find('\n') == std::string::npos &&
         name.find('\r') == std::string::npos;
}

}  // namespace

bool save_store(const CosmosStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << kMagic << '\n';
  for (const std::string& name : store.stream_names()) {
    if (!name_ok(name)) return false;
    const CosmosStream* stream = store.find(name);
    out << "stream " << name << ' ' << stream->extents().size() << '\n';
    for (const Extent& e : stream->extents()) {
      out << "extent " << e.id << ' ' << e.first_ts << ' ' << e.last_ts << ' '
          << e.appended_at << ' ' << e.record_count << ' ' << e.checksum << ' '
          << e.replicas << ' ' << static_cast<unsigned>(e.encoding) << ' '
          << e.data.size() << '\n';
      out.write(e.data.data(), static_cast<std::streamsize>(e.data.size()));
      out << '\n';
    }
  }
  return static_cast<bool>(out);
}

std::optional<LoadResult> load_store(const std::string& path,
                                     std::size_t extent_size_limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  const bool v1 = line == kMagicV1;
  if (!v1 && line != kMagic) return std::nullopt;

  LoadResult result{CosmosStore(extent_size_limit), 0, 0, 0};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string tag, name;
    std::size_t extent_count = 0;
    header >> tag >> name >> extent_count;
    if (tag != "stream" || !header) return std::nullopt;
    CosmosStream& stream = result.store.stream(name);
    ++result.streams;

    for (std::size_t i = 0; i < extent_count; ++i) {
      if (!std::getline(in, line)) return std::nullopt;
      std::istringstream eh(line);
      std::string etag;
      Extent e;
      std::size_t size = 0;
      unsigned encoding = 0;
      eh >> etag >> e.id >> e.first_ts >> e.last_ts >> e.appended_at >> e.record_count >>
          e.checksum >> e.replicas;
      if (!v1) eh >> encoding;
      eh >> size;
      if (etag != "extent" || !eh) return std::nullopt;
      if (encoding > static_cast<unsigned>(ExtentEncoding::kColumnar)) return std::nullopt;
      e.encoding = static_cast<ExtentEncoding>(encoding);
      // A single oversized append can legitimately produce an extent larger
      // than extent_size_limit, but only modestly so; an adversarial header
      // demanding a giant allocation makes the file unparseable instead of
      // taking the process down with bad_alloc (fuzz finding; see
      // tests/corpus/cosmos_io/giant_extent.pmcosmos).
      if (size > extent_size_limit * 4) return std::nullopt;
      e.data.resize(size);
      in.read(e.data.data(), static_cast<std::streamsize>(size));
      if (in.gcount() != static_cast<std::streamsize>(size)) return std::nullopt;
      in.get();  // trailing newline
      if (!e.verify()) {
        ++result.corrupt_dropped;  // replicated-extent recovery failed
        continue;
      }
      stream.restore_extent(std::move(e));
      ++result.extents;
    }
  }
  return result;
}

}  // namespace pingmesh::dsa

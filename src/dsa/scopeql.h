// ScopeQL: a declarative, SQL-like query language over latency records —
// the reproduction of SCOPE's role in the paper (§2.3: "SCOPE is a
// declarative and extensible scripting language ... Users only need to
// write scripts similar to SQL"; §3.2: "SCOPE jobs are written in
// declarative language similar to SQL").
//
// Supported shape (one table, the latency records handed to run()):
//
//   SELECT <item> [, <item>]...
//   FROM latency
//   [WHERE <boolean expr>]
//   [GROUP BY <expr> [, <expr>]...]
//   [ORDER BY <output column> [ASC|DESC]]
//   [LIMIT <n>]
//
// Items are expressions or aggregates over expressions:
//   COUNT(*), COUNT(expr), SUM(e), MIN(e), MAX(e), AVG(e),
//   P50(e), P99(e), P999(e)  — latency percentiles (histogram-backed),
//   DROPRATE()               — the paper's 3s/9s SYN heuristic over the group.
//
// Columns: timestamp, src_ip, dst_ip, src_port, dst_port, kind, qos,
// success, rtt, payload_success, payload_rtt, payload_bytes.
// Topology functions (when a Topology is attached): pod(ip), podset(ip),
// dc(ip), tor(ip) — the containment coordinates of the server owning `ip`.
// Time literals: plain integers are nanoseconds; suffixed literals 3s,
// 250ms, 10us are converted.
//
// Everything evaluates in int64 (booleans are 0/1). IP-typed outputs render
// dotted-quad; everything else renders as a number.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "agent/record.h"
#include "topology/topology.h"

namespace pingmesh::dsa::scopeql {

/// Thrown for lexing/parsing/evaluation errors, with position info.
class QueryError : public std::runtime_error {
 public:
  explicit QueryError(const std::string& what) : std::runtime_error(what) {}
};

struct QueryResult {
  std::vector<std::string> columns;                 ///< output header
  std::vector<std::vector<std::string>> rows;       ///< rendered cells
  std::vector<std::vector<std::int64_t>> raw_rows;  ///< numeric cells

  /// Render as an aligned text table.
  [[nodiscard]] std::string to_table() const;
};

class Interpreter {
 public:
  /// `topo` may be null: topology functions then raise QueryError.
  explicit Interpreter(const topo::Topology* topo = nullptr) : topo_(topo) {}

  /// Parse and execute one query against `data`.
  [[nodiscard]] QueryResult run(std::string_view query,
                                const std::vector<agent::LatencyRecord>& data) const;

 private:
  const topo::Topology* topo_;
};

}  // namespace pingmesh::dsa::scopeql

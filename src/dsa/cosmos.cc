#include "dsa/cosmos.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace pingmesh::dsa {

std::uint32_t fnv1a_continue(std::uint32_t state, std::string_view data) {
  std::uint32_t h = state;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

std::uint32_t fnv1a(std::string_view data) { return fnv1a_continue(2166136261u, data); }

bool Extent::verify() const { return fnv1a(data) == checksum; }

std::uint64_t CosmosStream::append(std::string_view blob, std::uint64_t record_count,
                                   SimTime first_ts, SimTime last_ts, SimTime now,
                                   ExtentEncoding encoding) {
  bool need_new = extents_.empty() ||
                  extents_.back().data.size() + blob.size() > extent_limit_ ||
                  extents_.back().encoding != encoding;
  if (need_new) {
    Extent e;
    e.id = next_extent_id_++;
    e.first_ts = first_ts;
    e.last_ts = last_ts;
    e.appended_at = now;
    e.encoding = encoding;
    extents_.push_back(std::move(e));
    prefix_max_last_ts_.push_back(std::numeric_limits<SimTime>::min());
  }
  Extent& e = extents_.back();
  bool was_empty = e.record_count == 0;
  e.data.append(blob);
  // Incremental checksum: FNV-1a streams, so appends stay O(|blob|).
  e.checksum = fnv1a_continue(was_empty ? 2166136261u : e.checksum, blob);
  e.record_count += record_count;
  e.first_ts = was_empty ? first_ts : std::min(e.first_ts, first_ts);
  e.last_ts = was_empty ? last_ts : std::max(e.last_ts, last_ts);
  e.appended_at = now;
  total_bytes_ += blob.size();
  total_records_ += record_count;
  appended_records_total_ += record_count;
  SimTime prev = prefix_max_last_ts_.size() >= 2
                     ? prefix_max_last_ts_[prefix_max_last_ts_.size() - 2]
                     : std::numeric_limits<SimTime>::min();
  prefix_max_last_ts_.back() = std::max(prev, e.last_ts);
  // The scan-path binary search relies on these two invariants.
  PINGMESH_DCHECK(prefix_max_last_ts_.size() == extents_.size());
  PINGMESH_DCHECK(prefix_max_last_ts_.back() >= prev);
  return e.id;
}

void CosmosStream::scan(SimTime from, SimTime to,
                        const std::function<void(const Extent&)>& fn) const {
  // Binary-search past the prefix of extents wholly older than the window:
  // every index before `start` has prefix-max last_ts < from, so each of
  // those extents would fail the `e.last_ts < from` test anyway.
  PINGMESH_DCHECK(prefix_max_last_ts_.size() == extents_.size());
  auto first = std::lower_bound(prefix_max_last_ts_.begin(), prefix_max_last_ts_.end(), from);
  auto start = static_cast<std::size_t>(first - prefix_max_last_ts_.begin());
  for (std::size_t i = start; i < extents_.size(); ++i) {
    const Extent& e = extents_[i];
    if (e.last_ts < from || e.first_ts >= to) continue;
    if (!e.verify()) {
      ++corrupt_skipped_;
      continue;
    }
    fn(e);
  }
}

void CosmosStream::corrupt_extent_for_test(std::size_t index) {
  if (index >= extents_.size() || extents_[index].data.empty()) return;
  extents_[index].data[0] ^= 0x1;
}

bool CosmosStream::corrupt_newest_extent() {
  if (extents_.empty() || extents_.back().data.empty()) return false;
  corrupt_extent_for_test(extents_.size() - 1);
  return true;
}

std::uint64_t CosmosStream::corrupt_records() const {
  std::uint64_t n = 0;
  for (const Extent& e : extents_) {
    if (!e.verify()) n += e.record_count;
  }
  return n;
}

void CosmosStream::restore_extent(Extent extent) {
  total_bytes_ += extent.data.size();
  total_records_ += extent.record_count;
  appended_records_total_ += extent.record_count;
  next_extent_id_ = std::max(next_extent_id_, extent.id + 1);
  SimTime prev = prefix_max_last_ts_.empty() ? std::numeric_limits<SimTime>::min()
                                             : prefix_max_last_ts_.back();
  prefix_max_last_ts_.push_back(std::max(prev, extent.last_ts));
  extents_.push_back(std::move(extent));
}

std::uint64_t CosmosStream::expire_before(SimTime horizon) {
  std::uint64_t reclaimed = 0;
  auto keep_from = extents_.begin();
  for (; keep_from != extents_.end(); ++keep_from) {
    if (keep_from->last_ts >= horizon) break;
    reclaimed += keep_from->data.size();
    total_bytes_ -= keep_from->data.size();
    total_records_ -= keep_from->record_count;
    expired_records_total_ += keep_from->record_count;
  }
  auto erased = static_cast<std::size_t>(keep_from - extents_.begin());
  extents_.erase(extents_.begin(), keep_from);
  prefix_max_last_ts_.erase(prefix_max_last_ts_.begin(),
                            prefix_max_last_ts_.begin() +
                                static_cast<std::ptrdiff_t>(erased));
  return reclaimed;
}

CosmosStream& CosmosStore::stream(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    it = streams_.emplace(name, CosmosStream(name, extent_limit_)).first;
  }
  return it->second;
}

const CosmosStream* CosmosStore::find(const std::string& name) const {
  auto it = streams_.find(name);
  return it != streams_.end() ? &it->second : nullptr;
}

std::vector<std::string> CosmosStore::stream_names() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) names.push_back(name);
  return names;
}

std::uint64_t CosmosStore::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [name, stream] : streams_) n += stream.total_bytes();
  return n;
}

std::uint64_t CosmosStore::total_records() const {
  std::uint64_t n = 0;
  for (const auto& [name, stream] : streams_) n += stream.total_records();
  return n;
}

}  // namespace pingmesh::dsa

#include "dsa/jobs.h"

#include <stdexcept>

#include "agent/counters.h"
#include "dsa/scan_cache.h"

namespace pingmesh::dsa {

LatencyAggregator::LatencyAggregator()
    : hist_(/*min_value=*/1'000, /*octaves=*/32, /*sub_buckets_per_octave=*/32) {}

void LatencyAggregator::add(const agent::LatencyRecord& r) {
  ++acc_.probes;
  if (!r.success) {
    ++acc_.failures;
    return;
  }
  ++acc_.successes;
  if (agent::syn_drop_signature(r.rtt) > 0) {
    ++acc_.drop_signatures;
    return;  // retransmit artifacts are not latency samples
  }
  hist_.record(r.rtt);
}

LatencyAggregator::Result LatencyAggregator::finish() const {
  Result r = acc_;
  r.p50_ns = hist_.p50();
  r.p99_ns = hist_.p99();
  return r;
}

namespace {

/// Pod of the server owning `ip`; invalid PodId if unknown.
PodId pod_of(const topo::Topology& topo, IpAddr ip) {
  auto server = topo.find_server_by_ip(ip);
  return server ? topo.server(*server).pod : PodId{};
}

struct PodPairKey {
  std::uint32_t src;
  std::uint32_t dst;
  auto operator<=>(const PodPairKey&) const = default;
};

/// EXTRACT through the context's decoded-extent cache when one is wired.
scope::DataSet<agent::LatencyRecord> extract(const CosmosStream& stream,
                                             const JobContext& ctx, SimTime from,
                                             SimTime to) {
  return ctx.scan_cache != nullptr
             ? scope::extract_records(stream, from, to, *ctx.scan_cache)
             : scope::extract_records(stream, from, to);
}

}  // namespace

void run_pod_pair_job(const CosmosStream& stream, const JobContext& ctx, SimTime from,
                      SimTime to) {
  const topo::Topology& topo = *ctx.topo;
  auto data = extract(stream, ctx, from, to);
  auto groups = data.where([&](const agent::LatencyRecord& r) {
                      return topo.find_server_by_ip(r.src_ip).has_value() &&
                             topo.find_server_by_ip(r.dst_ip).has_value();
                    })
                    .aggregate_by<LatencyAggregator>([&](const agent::LatencyRecord& r) {
                      return PodPairKey{pod_of(topo, r.src_ip).value,
                                        pod_of(topo, r.dst_ip).value};
                    });
  for (const auto& [key, stats] : groups) {
    PodPairStatRow row;
    row.window_start = from;
    row.window_end = to;
    row.src_pod = PodId{key.src};
    row.dst_pod = PodId{key.dst};
    row.probes = stats.probes;
    row.successes = stats.successes;
    row.failures = stats.failures;
    row.drop_signatures = stats.drop_signatures;
    row.p50_ns = stats.p50_ns;
    row.p99_ns = stats.p99_ns;
    ctx.db->pod_pair_stats.push_back(row);
  }
}

namespace {

void emit_sla_rows(const JobContext& ctx, SimTime from, SimTime to, SlaScope scope,
                   const std::vector<std::pair<std::uint32_t, LatencyAggregator::Result>>& groups) {
  for (const auto& [scope_id, stats] : groups) {
    SlaRow row;
    row.window_start = from;
    row.window_end = to;
    row.scope = scope;
    row.scope_id = scope_id;
    row.probes = stats.probes;
    row.successes = stats.successes;
    row.failures = stats.failures;
    row.drop_signatures = stats.drop_signatures;
    row.p50_ns = stats.p50_ns;
    row.p99_ns = stats.p99_ns;
    ctx.db->sla_rows.push_back(row);
  }
}

}  // namespace

void run_sla_job(const CosmosStream& stream, const JobContext& ctx, SimTime from,
                 SimTime to, bool include_server_rows) {
  const topo::Topology& topo = *ctx.topo;
  auto data = extract(stream, ctx, from, to)
                  .where([&](const agent::LatencyRecord& r) {
                    return topo.find_server_by_ip(r.src_ip).has_value();
                  });

  auto by_scope = [&](auto key_fn) {
    return data.aggregate_by<LatencyAggregator>(key_fn);
  };

  // SLA is attributed to the probing (source) server's scope: every server
  // measures its own view of the network.
  emit_sla_rows(ctx, from, to, SlaScope::kPod, by_scope([&](const agent::LatencyRecord& r) {
                  return topo.server(*topo.find_server_by_ip(r.src_ip)).pod.value;
                }));
  emit_sla_rows(ctx, from, to, SlaScope::kPodset,
                by_scope([&](const agent::LatencyRecord& r) {
                  return topo.server(*topo.find_server_by_ip(r.src_ip)).podset.value;
                }));
  emit_sla_rows(ctx, from, to, SlaScope::kDc, by_scope([&](const agent::LatencyRecord& r) {
                  return topo.server(*topo.find_server_by_ip(r.src_ip)).dc.value;
                }));
  if (include_server_rows) {
    emit_sla_rows(ctx, from, to, SlaScope::kServer,
                  by_scope([&](const agent::LatencyRecord& r) {
                    return topo.find_server_by_ip(r.src_ip)->value;
                  }));
  }

  // Per-service SLA: a record contributes to every service its source
  // server belongs to ("mapping the services and applications to the
  // servers they use", §1).
  if (ctx.services != nullptr) {
    for (std::uint32_t svc = 0; svc < ctx.services->service_count(); ++svc) {
      ServiceId service{svc};
      std::vector<bool> member(topo.server_count(), false);
      for (ServerId s : ctx.services->servers(service)) member[s.value] = true;
      auto stats = data.where([&](const agent::LatencyRecord& r) {
                         auto s = topo.find_server_by_ip(r.src_ip);
                         return s && member[s->value];
                       })
                       .aggregate<LatencyAggregator>();
      if (stats.probes == 0) continue;
      emit_sla_rows(ctx, from, to, SlaScope::kService, {{svc, stats}});
    }
  }
}

void run_dc_drop_job(const CosmosStream& stream, const JobContext& ctx, SimTime from,
                     SimTime to) {
  const topo::Topology& topo = *ctx.topo;
  struct DcAcc {
    LatencyAggregator intra;
    LatencyAggregator inter;
  };
  std::vector<DcAcc> acc(topo.dcs().size());

  auto data = extract(stream, ctx, from, to);
  for (const agent::LatencyRecord& r : data.rows()) {
    auto src = topo.find_server_by_ip(r.src_ip);
    auto dst = topo.find_server_by_ip(r.dst_ip);
    if (!src || !dst) continue;
    const topo::Server& s = topo.server(*src);
    const topo::Server& d = topo.server(*dst);
    if (s.dc != d.dc) continue;  // Table 1 is intra-DC only
    if (s.pod == d.pod) {
      acc[s.dc.value].intra.add(r);
    } else {
      acc[s.dc.value].inter.add(r);
    }
  }
  for (std::size_t dc = 0; dc < acc.size(); ++dc) {
    auto intra = acc[dc].intra.finish();
    auto inter = acc[dc].inter.finish();
    if (intra.probes == 0 && inter.probes == 0) continue;
    DcDropRow row;
    row.window_start = from;
    row.window_end = to;
    row.dc = DcId{static_cast<std::uint32_t>(dc)};
    row.intra_pod_drop_rate = intra.drop_rate();
    row.inter_pod_drop_rate = inter.drop_rate();
    row.intra_pod_probes = intra.probes;
    row.inter_pod_probes = inter.probes;
    ctx.db->dc_drop_rows.push_back(row);
  }
}

int evaluate_sla_alerts(const JobContext& ctx, const std::vector<SlaRow>& fresh_rows,
                        const AlertThresholds& thresholds, SimTime now) {
  int fired = 0;
  for (const SlaRow& row : fresh_rows) {
    if (row.probes < thresholds.min_probes) continue;
    std::string scope_desc = std::string(sla_scope_name(row.scope)) + " #" +
                             std::to_string(row.scope_id);
    if (row.drop_rate() > thresholds.drop_rate) {
      AlertRow a;
      a.time = now;
      a.severity = AlertSeverity::kCritical;
      a.rule = "drop_rate>" + format_rate(thresholds.drop_rate);
      a.scope = scope_desc;
      a.value = row.drop_rate();
      a.message = "packet drop rate " + format_rate(row.drop_rate()) + " exceeds SLA";
      ctx.db->alerts.push_back(std::move(a));
      ++fired;
    }
    if (row.p99_ns > thresholds.p99) {
      AlertRow a;
      a.time = now;
      a.severity = AlertSeverity::kWarning;
      a.rule = "p99>" + format_latency_ns(thresholds.p99);
      a.scope = scope_desc;
      a.value = static_cast<double>(row.p99_ns);
      a.message = "P99 latency " + format_latency_ns(row.p99_ns) + " exceeds SLA";
      ctx.db->alerts.push_back(std::move(a));
      ++fired;
    }
  }
  return fired;
}

void JobManager::register_job(std::string name, SimTime period, JobFn fn) {
  if (period <= 0) throw std::invalid_argument("job period must be positive");
  Job j;
  j.stats.name = std::move(name);
  j.stats.period = period;
  j.fn = std::move(fn);
  j.next_window_start = 0;
  jobs_.push_back(std::move(j));
  if (registry_ != nullptr) attach_instruments(jobs_.back());
}

void JobManager::attach_instruments(Job& j) {
  std::string label = "job=" + j.stats.name;
  j.runs_counter = &registry_->counter("dsa.job_runs_total", label);
  j.delay_gauge = &registry_->gauge("dsa.job_e2e_delay_seconds", label);
}

void JobManager::enable_observability(obs::MetricsRegistry& registry,
                                      const obs::Tracer* tracer) {
  registry_ = &registry;
  tracer_ = tracer;
  for (Job& j : jobs_) attach_instruments(j);
}

void JobManager::register_standard_jobs(const CosmosStream& stream, const JobContext& ctx,
                                        const AlertThresholds& thresholds,
                                        bool server_sla_rows) {
  const CosmosStream* s = &stream;
  JobContext c = ctx;
  register_job("pod-pair-10min", minutes(10), [s, c, thresholds](SimTime from, SimTime to) {
    run_pod_pair_job(*s, c, from, to);
    // Near-real-time alerting on pod scope straight from the 10-min rows is
    // done by the caller via evaluate_sla_alerts when needed.
  });
  register_job("sla-1h", hours(1), [s, c, thresholds, server_sla_rows](SimTime from,
                                                                       SimTime to) {
    std::size_t before = c.db->sla_rows.size();
    run_sla_job(*s, c, from, to, server_sla_rows);
    std::vector<SlaRow> fresh(c.db->sla_rows.begin() + static_cast<std::ptrdiff_t>(before),
                              c.db->sla_rows.end());
    evaluate_sla_alerts(c, fresh, thresholds, to);
  });
  register_job("dc-drop-1d", days(1),
               [s, c](SimTime from, SimTime to) { run_dc_drop_job(*s, c, from, to); });
}

void JobManager::on_tick(SimTime now) {
  for (Job& j : jobs_) {
    // A window [W, W+period) is processed once `now` passes
    // W + period + ingestion_delay. Catch up on multiple windows if the
    // tick cadence is coarse.
    while (now >= j.next_window_start + j.stats.period + ingestion_delay_) {
      SimTime from = j.next_window_start;
      SimTime to = from + j.stats.period;
      j.fn(from, to);
      ++j.stats.runs;
      j.stats.last_window_start = from;
      j.stats.last_fire_time = now;
      j.next_window_start = to;
      if (j.runs_counter != nullptr) {
        j.runs_counter->inc();
        j.delay_gauge->set(static_cast<double>(j.stats.last_e2e_delay()) /
                           static_cast<double>(kNanosPerSecond));
      }
      if (tracer_ != nullptr && tracer_->enabled()) {
        // Infra span (trace id 0): one per job run, spanning its window.
        tracer_->span(0, "dsa.job", from, now,
                      "job=" + j.stats.name + ";window_end=" + std::to_string(to));
      }
    }
  }
}

std::vector<JobManager::JobStats> JobManager::stats() const {
  std::vector<JobStats> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) out.push_back(j.stats);
  return out;
}

}  // namespace pingmesh::dsa

#include "dsa/database.h"

#include <algorithm>

namespace pingmesh::dsa {

const char* sla_scope_name(SlaScope s) {
  switch (s) {
    case SlaScope::kServer: return "server";
    case SlaScope::kPod: return "pod";
    case SlaScope::kPodset: return "podset";
    case SlaScope::kDc: return "dc";
    case SlaScope::kService: return "service";
  }
  return "?";
}

std::vector<SlaRow> Database::sla_series(SlaScope scope, std::uint32_t scope_id) const {
  std::vector<SlaRow> out;
  for (const SlaRow& r : sla_rows) {
    if (r.scope == scope && r.scope_id == scope_id) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const SlaRow& a, const SlaRow& b) { return a.window_start < b.window_start; });
  return out;
}

std::vector<PodPairStatRow> Database::latest_pod_pair_window() const {
  SimTime latest = 0;
  for (const PodPairStatRow& r : pod_pair_stats) latest = std::max(latest, r.window_start);
  std::vector<PodPairStatRow> out;
  for (const PodPairStatRow& r : pod_pair_stats) {
    if (r.window_start == latest) out.push_back(r);
  }
  return out;
}

std::vector<PodPairStatRow> Database::pod_pairs_between(SimTime from, SimTime to) const {
  std::vector<PodPairStatRow> out;
  for (const PodPairStatRow& r : pod_pair_stats) {
    if (r.window_start >= from && r.window_start < to) out.push_back(r);
  }
  return out;
}

bool Database::open_alert(const std::string& scope, const std::string& rule, SimTime now) {
  return open_alerts_.emplace(alert_key(scope, rule), now).second;
}

bool Database::close_alert(const std::string& scope, const std::string& rule) {
  return open_alerts_.erase(alert_key(scope, rule)) > 0;
}

bool Database::alert_open(const std::string& scope, const std::string& rule) const {
  return open_alerts_.contains(alert_key(scope, rule));
}

}  // namespace pingmesh::dsa

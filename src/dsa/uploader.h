// Agent -> Cosmos upload path. "The Pingmesh Agent uploads the results to
// Cosmos for data storage and analysis" (§3.2); the Cosmos front-end sits
// behind a load-balanced VIP, which we model as an availability flag plus
// an optional failure-injection hook for testing the agent's
// retry-then-discard behaviour.
#pragma once

#include <functional>
#include <string>

#include "agent/agent.h"
#include "agent/record_columns.h"
#include "common/check.h"
#include "common/clock.h"
#include "common/rng.h"
#include "dsa/cosmos.h"
#include "dsa/extent_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pingmesh::dsa {

/// Observer of record batches at ingest time. The streaming analytics
/// pipeline registers one on the uploader: it sees every record the moment
/// an agent's upload lands — before the batch SCOPE path, whose end-to-end
/// freshness is ~20 minutes (paper §3.5/§5 "moving towards streaming").
/// Called from the driver thread only (the serial upload-drain phase).
/// Batches arrive columnar; the reference is only valid for the call.
class RecordTap {
 public:
  virtual ~RecordTap() = default;
  virtual void on_records(const agent::RecordColumns& batch, SimTime now) = 0;
};

class CosmosUploader final : public agent::Uploader {
 public:
  CosmosUploader(CosmosStore& store, std::string stream_name, const Clock& clock)
      : store_(&store), stream_name_(std::move(stream_name)), clock_(&clock) {}

  bool upload(const agent::RecordColumns& batch) override {
    if (!available_) {
      if (uploads_failed_counter_ != nullptr) uploads_failed_counter_->inc();
      return false;
    }
    if (fail_next_ > 0) {
      --fail_next_;
      if (uploads_failed_counter_ != nullptr) uploads_failed_counter_->inc();
      return false;
    }
    if (chaos_fail_prob_ > 0.0) {
      // Chaos failure draws come from a counter stream keyed by (chaos
      // seed, tick, uploading entity) — never from shared sequential RNG
      // state — so a chaos run replays bit-identically at any worker count.
      std::uint32_t entity = batch.empty() ? 0 : batch.src_ips()[0];
      CounterRng rng(mix_key(chaos_seed_, static_cast<std::uint64_t>(clock_->now()),
                             entity));
      if (rng.chance(chaos_fail_prob_)) {
        ++chaos_failures_;
        if (uploads_failed_counter_ != nullptr) uploads_failed_counter_->inc();
        return false;
      }
    }
    const std::size_t n = batch.size();
    if (n == 0) return true;
    const SimTime* ts = batch.timestamps();
    SimTime first = ts[0];
    SimTime last = ts[0];
    for (std::size_t i = 1; i < n; ++i) {
      first = std::min(first, ts[i]);
      last = std::max(last, ts[i]);
    }
    std::string blob = encoding_ == ExtentEncoding::kColumnar
                           ? encode_columnar(batch)
                           : batch.encode_csv();
    std::uint64_t extent_id =
        store_->stream(stream_name_)
            .append(blob, n, first, last, clock_->now() + chaos_delay_, encoding_);
    ++uploads_;
    if (uploads_ok_counter_ != nullptr) {
      uploads_ok_counter_->inc();
      records_counter_->inc(n);
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      SimTime now = clock_->now();
      std::string note = "extent=" + std::to_string(extent_id);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t key = obs::trace_key(ts[i], batch.src_ips()[i], batch.dst_ips()[i],
                                           batch.src_ports()[i]);
        if (tracer_->sampled(key)) tracer_->span(key, "cosmos.append", now, now, note);
      }
    }
    if (tap_ != nullptr) tap_->on_records(batch, clock_->now());
    return true;
  }

  /// Extent payload encoding for subsequent uploads (default CSV, matching
  /// the paper; the columnar format is the paper-scale fast path).
  void set_encoding(ExtentEncoding encoding) { encoding_ = encoding; }
  [[nodiscard]] ExtentEncoding encoding() const { return encoding_; }

  /// Register dsa.upload* instruments and (optionally) the data-path
  /// tracer; sampled records get a cosmos.append span naming their extent.
  void enable_observability(obs::MetricsRegistry& registry,
                            const obs::Tracer* tracer = nullptr) {
    uploads_ok_counter_ = &registry.counter("dsa.uploads_total", "result=ok");
    uploads_failed_counter_ = &registry.counter("dsa.uploads_total", "result=fail");
    records_counter_ = &registry.counter("dsa.upload_records_total");
    tracer_ = tracer;
  }

  /// Streaming ingest tap: observes every batch that lands (null to detach).
  /// Invoked after the Cosmos append, so a tapped batch is exactly a stored
  /// batch — the streaming and SCOPE paths see the same record set.
  void set_tap(RecordTap* tap) { tap_ = tap; }

  /// Availability control (Cosmos front-end outage simulation).
  void set_available(bool available) { available_ = available; }
  /// Fail the next N uploads, then recover.
  void fail_next(int n) {
    PINGMESH_CHECK_MSG(n >= 0, "fail_next takes a non-negative count");
    fail_next_ = n;
  }
  /// Chaos window: while `prob` > 0, each upload fails with that
  /// probability, drawn from a CounterRng keyed by (seed, now, uploading
  /// agent). prob = 0 ends the window.
  void set_chaos_failure(double prob, std::uint64_t seed) {
    PINGMESH_CHECK_MSG(prob >= 0.0 && prob <= 1.0,
                       "chaos failure probability must be in [0, 1]");
    chaos_fail_prob_ = prob;
    chaos_seed_ = seed;
  }
  /// Chaos window: ingestion latency spike — accepted batches land with
  /// their appended_at pushed `delay` into the future, postponing batch-path
  /// visibility (the streaming tap, upstream of the front door, is
  /// unaffected). delay = 0 ends the window.
  void set_chaos_delay(SimTime delay) {
    PINGMESH_CHECK_MSG(delay >= 0, "chaos delay must be non-negative");
    chaos_delay_ = delay;
  }

  [[nodiscard]] std::uint64_t uploads() const { return uploads_; }
  [[nodiscard]] std::uint64_t chaos_failures() const { return chaos_failures_; }

 private:
  CosmosStore* store_;
  std::string stream_name_;
  const Clock* clock_;
  ExtentEncoding encoding_ = ExtentEncoding::kCsv;
  RecordTap* tap_ = nullptr;
  bool available_ = true;
  int fail_next_ = 0;
  double chaos_fail_prob_ = 0.0;
  std::uint64_t chaos_seed_ = 0;
  SimTime chaos_delay_ = 0;
  std::uint64_t chaos_failures_ = 0;
  std::uint64_t uploads_ = 0;
  obs::Counter* uploads_ok_counter_ = nullptr;
  obs::Counter* uploads_failed_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  const obs::Tracer* tracer_ = nullptr;
};

}  // namespace pingmesh::dsa

// The SQL-database stage of the DSA pipeline (paper §3.2: "The analyzed
// results are then stored in an SQL database. Visualization, reports and
// alerts are generated based on the data in this database").
//
// Typed tables; each row carries its aggregation window. Queries are simple
// time/scope filters — that is all the visualization and alerting layers
// need.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace pingmesh::dsa {

/// Aggregated latency/drop statistics for a (source pod, destination pod)
/// pair over one window. The backing data of the Figure-8 heatmaps.
struct PodPairStatRow {
  SimTime window_start = 0;
  SimTime window_end = 0;
  PodId src_pod;
  PodId dst_pod;
  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t drop_signatures = 0;  ///< 3s + 9s probes
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;

  [[nodiscard]] double drop_rate() const {
    return successes ? static_cast<double>(drop_signatures) / static_cast<double>(successes)
                     : 0.0;
  }
};

enum class SlaScope : std::uint8_t { kServer, kPod, kPodset, kDc, kService };

const char* sla_scope_name(SlaScope s);

/// Network SLA metrics for one scope instance over one window (paper §4.3:
/// "We define network SLA as a set of metrics including packet drop rate,
/// network latency at the 50th percentile and the 99th percentile").
struct SlaRow {
  SimTime window_start = 0;
  SimTime window_end = 0;
  SlaScope scope = SlaScope::kServer;
  std::uint32_t scope_id = 0;  ///< ServerId/PodId/PodsetId/DcId/ServiceId value
  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t drop_signatures = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;

  [[nodiscard]] double drop_rate() const {
    return successes ? static_cast<double>(drop_signatures) / static_cast<double>(successes)
                     : 0.0;
  }
};

/// Daily intra-/inter-pod drop-rate summary per DC (Table 1's shape).
struct DcDropRow {
  SimTime window_start = 0;
  SimTime window_end = 0;
  DcId dc;
  double intra_pod_drop_rate = 0.0;
  double inter_pod_drop_rate = 0.0;
  std::uint64_t intra_pod_probes = 0;
  std::uint64_t inter_pod_probes = 0;
};

enum class AlertSeverity : std::uint8_t { kWarning, kCritical };

struct AlertRow {
  SimTime time = 0;
  AlertSeverity severity = AlertSeverity::kWarning;
  std::string rule;     ///< e.g. "drop_rate>1e-3"
  std::string scope;    ///< human-readable scope ("pod DC1-PS0-P3", "service Search")
  double value = 0.0;
  std::string message;
};

/// Aggregated PA counters per pod (the 5-minute fast path, §3.5).
struct PaCounterRow {
  SimTime time = 0;
  PodId pod;
  std::uint64_t probes = 0;
  std::uint64_t drop_signatures = 0;  ///< 3s/9s probes behind drop_rate
  double drop_rate = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
};

class Database {
 public:
  std::vector<PodPairStatRow> pod_pair_stats;
  std::vector<SlaRow> sla_rows;
  std::vector<DcDropRow> dc_drop_rows;
  std::vector<AlertRow> alerts;
  std::vector<PaCounterRow> pa_counters;

  /// Rows of a scope instance ordered by window start (a time series).
  [[nodiscard]] std::vector<SlaRow> sla_series(SlaScope scope, std::uint32_t scope_id) const;

  /// Pod-pair rows belonging to the newest complete window.
  [[nodiscard]] std::vector<PodPairStatRow> latest_pod_pair_window() const;

  /// Pod-pair rows within a given window range.
  [[nodiscard]] std::vector<PodPairStatRow> pod_pairs_between(SimTime from, SimTime to) const;

  [[nodiscard]] std::size_t total_rows() const {
    return pod_pair_stats.size() + sla_rows.size() + dc_drop_rows.size() + alerts.size() +
           pa_counters.size();
  }

  // --- open-alert registry (deduplication) ---------------------------------
  // A (scope, rule) pair that is "open" suppresses further AlertRow appends
  // for the same condition: a persistent fault yields one row when it opens,
  // not one per evaluation. Shared by every alerting path (PA, streaming).

  /// Mark (scope, rule) open. Returns true if it was newly opened — the
  /// caller should append its AlertRow exactly then.
  bool open_alert(const std::string& scope, const std::string& rule, SimTime now);
  /// Mark (scope, rule) closed (condition cleared). True if it was open.
  bool close_alert(const std::string& scope, const std::string& rule);
  [[nodiscard]] bool alert_open(const std::string& scope, const std::string& rule) const;
  [[nodiscard]] std::size_t open_alert_count() const { return open_alerts_.size(); }

 private:
  static std::string alert_key(const std::string& scope, const std::string& rule) {
    return rule + '\x1f' + scope;
  }
  std::unordered_map<std::string, SimTime> open_alerts_;  // key -> open time
};

}  // namespace pingmesh::dsa

// CosmosStore: the Cosmos-like append-only storage substrate (paper §2.3).
//
// "Files in Cosmos are append-only and a file is split into multiple
// 'extents' and an extent is stored in multiple servers to provide high
// reliability."
//
// The reproduction keeps the same shape: named streams of sealed extents
// with checksums and a replication factor (accounting only — there is one
// process). The DSA jobs scan extents by time window, exactly the access
// pattern SCOPE jobs have.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace pingmesh::dsa {

/// Payload encoding of one extent. Extents are homogeneous: append() rolls
/// over to a fresh extent when the encoding changes, so a scan dispatches
/// one decoder per extent.
enum class ExtentEncoding : std::uint8_t {
  kCsv = 0,       ///< newline-delimited CSV rows (paper §6.2)
  kColumnar = 1,  ///< binary columnar blocks (dsa/extent_codec.h)
};

struct Extent {
  std::uint64_t id = 0;
  SimTime first_ts = 0;         ///< min record timestamp inside
  SimTime last_ts = 0;          ///< max record timestamp inside
  SimTime appended_at = 0;      ///< ingestion time (upload arrival)
  std::uint64_t record_count = 0;
  std::uint32_t checksum = 0;   ///< FNV-1a over the payload
  int replicas = 3;
  ExtentEncoding encoding = ExtentEncoding::kCsv;
  std::string data;             ///< encoded records (see `encoding`)

  [[nodiscard]] bool verify() const;
};

std::uint32_t fnv1a(std::string_view data);
/// Streaming continuation: feed more data into an existing FNV-1a state.
std::uint32_t fnv1a_continue(std::uint32_t state, std::string_view data);

class CosmosStream {
 public:
  explicit CosmosStream(std::string name, std::size_t extent_size_limit)
      : name_(std::move(name)), extent_limit_(extent_size_limit) {}

  /// Append a blob; starts a new extent when the open one would exceed the
  /// extent size limit or carries a different encoding. Returns the extent
  /// id written to.
  std::uint64_t append(std::string_view blob, std::uint64_t record_count,
                       SimTime first_ts, SimTime last_ts, SimTime now,
                       ExtentEncoding encoding = ExtentEncoding::kCsv);

  /// Scan all extents overlapping [from, to); calls fn(extent). Corrupt
  /// extents (checksum mismatch) are skipped and counted. The prefix of
  /// extents wholly older than `from` is skipped by binary search rather
  /// than visited.
  void scan(SimTime from, SimTime to, const std::function<void(const Extent&)>& fn) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Extent>& extents() const { return extents_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }
  [[nodiscard]] std::uint64_t corrupt_extents_skipped() const { return corrupt_skipped_; }

  // Monotonic ledger counters: unlike total_records() (which expire_before
  // decrements), these only grow, so
  //   appended_records_total == total_records + expired_records_total
  // holds at every instant — the conservation identity the chaos invariant
  // checker asserts after arbitrary fault schedules.
  [[nodiscard]] std::uint64_t appended_records_total() const {
    return appended_records_total_;
  }
  [[nodiscard]] std::uint64_t expired_records_total() const {
    return expired_records_total_;
  }
  /// Records sitting in extents whose checksum no longer verifies (they
  /// still count in total_records, but scans skip them).
  [[nodiscard]] std::uint64_t corrupt_records() const;

  /// Deliberately corrupt an extent's payload (failure-injection in tests).
  void corrupt_extent_for_test(std::size_t index);
  /// Corrupt the most recently written extent (chaos injection). Returns
  /// false when the stream is empty.
  bool corrupt_newest_extent();

  /// Re-attach a sealed extent loaded from persistent storage (cosmos_io).
  /// The extent is appended as-is; accounting and the id counter update.
  void restore_extent(Extent extent);

  /// Drop extents whose last record is older than `horizon` (the paper
  /// keeps ~2 months of Pingmesh history, §4.3). Returns bytes reclaimed.
  std::uint64_t expire_before(SimTime horizon);

 private:
  std::string name_;
  std::size_t extent_limit_;
  std::vector<Extent> extents_;
  /// prefix_max_last_ts_[i] >= max(extents_[0..i].last_ts). Nondecreasing by
  /// construction, so scan() can lower_bound the first extent that may
  /// overlap a query window. Per-extent last_ts is NOT monotone (batches
  /// from different agents interleave), hence the parallel vector. Values
  /// left over after expire_before are conservative upper bounds, which is
  /// safe: a too-large maximum only means fewer extents get skipped.
  std::vector<SimTime> prefix_max_last_ts_;
  std::uint64_t next_extent_id_ = 1;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t appended_records_total_ = 0;
  std::uint64_t expired_records_total_ = 0;
  mutable std::uint64_t corrupt_skipped_ = 0;
};

class CosmosStore {
 public:
  explicit CosmosStore(std::size_t extent_size_limit = 4 * 1024 * 1024)
      : extent_limit_(extent_size_limit) {}

  /// Get or create a stream.
  CosmosStream& stream(const std::string& name);
  [[nodiscard]] const CosmosStream* find(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> stream_names() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_records() const;

 private:
  std::size_t extent_limit_;
  std::map<std::string, CosmosStream> streams_;
};

/// Canonical stream names.
inline const std::string kLatencyStream = "pingmesh/latency";
inline const std::string kInterDcLatencyStream = "pingmesh/latency-interdc";

}  // namespace pingmesh::dsa

// Report generation (paper §3.2: "Visualization, reports and alerts are
// generated based on the data in this database"). Produces the operator-
// facing plain-text network report: per-DC SLA, the worst pods, per-service
// SLA, and recent alerts.
#pragma once

#include <string>

#include "common/types.h"
#include "dsa/database.h"
#include "topology/topology.h"

namespace pingmesh::dsa {

struct ReportOptions {
  SimTime window_start = 0;
  SimTime window_end = 0;   ///< 0 = everything in the database
  std::size_t worst_pods = 5;
};

/// Render the network SLA report over [window_start, window_end).
/// `services` may be null (service section omitted).
std::string render_network_report(const Database& db, const topo::Topology& topo,
                                  const topo::ServiceMap* services,
                                  const ReportOptions& options = {});

}  // namespace pingmesh::dsa

// Latency-pattern visualization (paper §6.3, Figure 8).
//
// "a small green, yellow, or red block or pixel shows the network latency
// at the 99th percentile between a source-destination pod-pair. Green means
// the latency is less than 4ms, yellow means the latency is between 4-5ms,
// and red is for latency larger than 5ms. A white block means there is no
// latency data available."
//
// The classifier recognizes the four canonical patterns of Figure 8:
//   (a) normal         — (almost) all green;
//   (b) podset-down    — a white cross the width of one podset;
//   (c) podset-failure — a red cross the width of one podset;
//   (d) spine-failure  — red everywhere except green squares on the
//                        diagonal (intra-podset traffic unaffected).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "dsa/database.h"
#include "topology/topology.h"

namespace pingmesh::analysis {

enum class CellColor : std::uint8_t { kGreen, kYellow, kRed, kWhite };

char cell_color_char(CellColor c);

struct HeatmapThresholds {
  SimTime green_below = millis(4);
  SimTime yellow_below = millis(5);
  /// A cell is also red when its drop rate alone breaks SLA.
  double red_drop_rate = 1e-3;
};

/// Pod-pair heatmap for one DC. Pods are ordered by podset then pod, so
/// podset structure is visible as diagonal blocks.
class Heatmap {
 public:
  Heatmap(const topo::Topology& topo, DcId dc, HeatmapThresholds thresholds = {});

  /// Load one window of pod-pair rows (rows for other DCs are ignored).
  void load(const std::vector<dsa::PodPairStatRow>& rows);

  [[nodiscard]] std::size_t size() const { return pods_.size(); }  ///< matrix dimension
  [[nodiscard]] CellColor cell(std::size_t src_idx, std::size_t dst_idx) const;
  [[nodiscard]] PodId pod_at(std::size_t idx) const { return pods_[idx]; }
  [[nodiscard]] PodsetId podset_at(std::size_t idx) const { return podsets_[idx]; }

  /// Text rendering: G/Y/R/. per cell, one row per line.
  [[nodiscard]] std::string ascii() const;
  /// Binary PPM (P6) rendering with `scale` pixels per cell.
  [[nodiscard]] std::string to_ppm(int scale = 4) const;

  /// Fraction of cells with each color (diagnostics + classification).
  [[nodiscard]] double fraction(CellColor c) const;

 private:
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    return i * pods_.size() + j;
  }

  const topo::Topology* topo_;
  DcId dc_;
  HeatmapThresholds thresholds_;
  std::vector<PodId> pods_;
  std::vector<PodsetId> podsets_;
  std::vector<std::int32_t> pod_index_;  // PodId.value -> matrix index or -1
  std::vector<CellColor> cells_;
};

enum class LatencyPattern : std::uint8_t {
  kNormal,
  kPodsetDown,
  kPodsetFailure,
  kSpineFailure,
  kUnknown,
};

const char* latency_pattern_name(LatencyPattern p);

struct PatternResult {
  LatencyPattern pattern = LatencyPattern::kUnknown;
  PodsetId podset;  ///< the cross's podset for (b)/(c)
  double green_fraction = 0.0;
  double white_fraction = 0.0;
  double red_fraction = 0.0;
};

/// Classify a loaded heatmap into one of the Figure-8 patterns.
PatternResult classify_pattern(const Heatmap& map);

}  // namespace pingmesh::analysis

#include "analysis/server_selection.h"

#include <algorithm>
#include <unordered_map>

namespace pingmesh::analysis {

std::vector<ServerNetworkScore> rank_servers_for_selection(
    const dsa::Database& db, const std::vector<ServerId>& candidates,
    const SelectionOptions& options) {
  struct Acc {
    std::uint64_t probes = 0;
    std::uint64_t successes = 0;
    std::uint64_t signatures = 0;
    std::int64_t worst_p99 = 0;
  };
  std::unordered_map<std::uint32_t, Acc> by_server;
  for (const dsa::SlaRow& row : db.sla_rows) {
    if (row.scope != dsa::SlaScope::kServer) continue;
    if (row.window_end <= options.window_start) continue;
    if (options.window_end != 0 && row.window_start >= options.window_end) continue;
    Acc& acc = by_server[row.scope_id];
    acc.probes += row.probes;
    acc.successes += row.successes;
    acc.signatures += row.drop_signatures;
    acc.worst_p99 = std::max(acc.worst_p99, row.p99_ns);
  }

  std::vector<ServerNetworkScore> out;
  out.reserve(candidates.size());
  for (ServerId server : candidates) {
    ServerNetworkScore score;
    score.server = server;
    auto it = by_server.find(server.value);
    if (it != by_server.end()) {
      const Acc& acc = it->second;
      score.probes = acc.probes;
      score.drop_rate = acc.successes ? static_cast<double>(acc.signatures) /
                                            static_cast<double>(acc.successes)
                                      : 0.0;
      score.p99_ns = acc.worst_p99;
    }
    if (score.probes < options.min_probes) {
      score.score = 1e9;  // unknown network health ranks last
    } else {
      score.score = score.drop_rate * 100.0 +
                    options.latency_weight * to_millis(score.p99_ns);
    }
    out.push_back(score);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ServerNetworkScore& a, const ServerNetworkScore& b) {
                     return a.score < b.score;
                   });
  return out;
}

}  // namespace pingmesh::analysis

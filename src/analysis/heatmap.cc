#include "analysis/heatmap.h"

#include <algorithm>

namespace pingmesh::analysis {

char cell_color_char(CellColor c) {
  switch (c) {
    case CellColor::kGreen: return 'G';
    case CellColor::kYellow: return 'Y';
    case CellColor::kRed: return 'R';
    case CellColor::kWhite: return '.';
  }
  return '?';
}

const char* latency_pattern_name(LatencyPattern p) {
  switch (p) {
    case LatencyPattern::kNormal: return "normal";
    case LatencyPattern::kPodsetDown: return "podset-down";
    case LatencyPattern::kPodsetFailure: return "podset-failure";
    case LatencyPattern::kSpineFailure: return "spine-failure";
    case LatencyPattern::kUnknown: return "unknown";
  }
  return "?";
}

Heatmap::Heatmap(const topo::Topology& topo, DcId dc, HeatmapThresholds thresholds)
    : topo_(&topo), dc_(dc), thresholds_(thresholds) {
  const topo::DataCenter& d = topo.dc(dc);
  for (PodsetId ps : d.podsets) {
    for (PodId p : topo.podset(ps).pods) {
      pods_.push_back(p);
      podsets_.push_back(ps);
    }
  }
  pod_index_.assign(topo.pods().size(), -1);
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    pod_index_[pods_[i].value] = static_cast<std::int32_t>(i);
  }
  cells_.assign(pods_.size() * pods_.size(), CellColor::kWhite);
}

void Heatmap::load(const std::vector<dsa::PodPairStatRow>& rows) {
  std::fill(cells_.begin(), cells_.end(), CellColor::kWhite);
  for (const dsa::PodPairStatRow& row : rows) {
    if (row.src_pod.value >= pod_index_.size() || row.dst_pod.value >= pod_index_.size()) {
      continue;
    }
    std::int32_t i = pod_index_[row.src_pod.value];
    std::int32_t j = pod_index_[row.dst_pod.value];
    if (i < 0 || j < 0) continue;  // other DC
    CellColor c;
    // A drop-rate breach needs at least two signatures: one retransmit in a
    // small window is statistically meaningless against a 1e-3 threshold.
    bool drops_red = row.drop_signatures >= 2 && row.drop_rate() > thresholds_.red_drop_rate;
    if (row.successes == 0) {
      c = CellColor::kWhite;  // no latency data available
    } else if (row.p99_ns > thresholds_.yellow_below || drops_red) {
      c = CellColor::kRed;
    } else if (row.p99_ns > thresholds_.green_below) {
      c = CellColor::kYellow;
    } else {
      c = CellColor::kGreen;
    }
    cells_[idx(static_cast<std::size_t>(i), static_cast<std::size_t>(j))] = c;
  }
}

CellColor Heatmap::cell(std::size_t src_idx, std::size_t dst_idx) const {
  return cells_.at(idx(src_idx, dst_idx));
}

std::string Heatmap::ascii() const {
  std::string out;
  std::size_t n = pods_.size();
  out.reserve(n * (n + 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out += cell_color_char(cells_[idx(i, j)]);
    out += '\n';
  }
  return out;
}

std::string Heatmap::to_ppm(int scale) const {
  std::size_t n = pods_.size();
  std::size_t wh = n * static_cast<std::size_t>(scale);
  std::string out = "P6\n" + std::to_string(wh) + " " + std::to_string(wh) + "\n255\n";
  auto rgb = [](CellColor c) -> std::array<unsigned char, 3> {
    switch (c) {
      case CellColor::kGreen: return {0x2e, 0xb8, 0x2e};
      case CellColor::kYellow: return {0xe8, 0xc5, 0x47};
      case CellColor::kRed: return {0xd6, 0x3a, 0x3a};
      case CellColor::kWhite: return {0xff, 0xff, 0xff};
    }
    return {0, 0, 0};
  };
  for (std::size_t py = 0; py < wh; ++py) {
    for (std::size_t px = 0; px < wh; ++px) {
      auto c = rgb(cells_[idx(py / static_cast<std::size_t>(scale),
                              px / static_cast<std::size_t>(scale))]);
      out.append(reinterpret_cast<const char*>(c.data()), 3);
    }
  }
  return out;
}

double Heatmap::fraction(CellColor c) const {
  if (cells_.empty()) return 0.0;
  std::size_t n = 0;
  for (CellColor x : cells_) {
    if (x == c) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(cells_.size());
}

PatternResult classify_pattern(const Heatmap& map) {
  PatternResult result;
  std::size_t n = map.size();
  if (n == 0) return result;
  result.green_fraction = map.fraction(CellColor::kGreen);
  result.white_fraction = map.fraction(CellColor::kWhite);
  result.red_fraction = map.fraction(CellColor::kRed);

  // Per-podset cross statistics: the fraction of white/red cells among all
  // cells in the podset's rows and columns (excluding its own diagonal
  // block, which is dark in the podset-down case too).
  struct CrossStat {
    PodsetId podset;
    std::size_t cells = 0;
    std::size_t white = 0;
    std::size_t red = 0;
    std::size_t green = 0;
  };
  std::vector<CrossStat> stats;
  for (std::size_t i = 0; i < n; ++i) {
    if (stats.empty() || !(stats.back().podset == map.podset_at(i))) {
      stats.push_back(CrossStat{map.podset_at(i), 0, 0, 0, 0});
    }
  }
  auto podset_rank = [&](std::size_t idx) {
    for (std::size_t k = 0; k < stats.size(); ++k) {
      if (stats[k].podset == map.podset_at(idx)) return k;
    }
    return std::size_t{0};
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      CellColor c = map.cell(i, j);
      std::size_t pi = podset_rank(i);
      std::size_t pj = podset_rank(j);
      auto account = [&](CrossStat& s) {
        ++s.cells;
        if (c == CellColor::kWhite) ++s.white;
        if (c == CellColor::kRed) ++s.red;
        if (c == CellColor::kGreen) ++s.green;
      };
      if (pi == pj) continue;  // cross arms only
      account(stats[pi]);
      account(stats[pj]);
    }
  }

  // A candidate podset's own diagonal block, used to disambiguate: in
  // podset-down the block is white (servers gone), in podset-failure it is
  // red-ish (the fault is inside the podset), while in spine-failure every
  // diagonal block stays green.
  auto own_block_fraction = [&](PodsetId candidate, CellColor color) {
    std::size_t total = 0;
    std::size_t hit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!(map.podset_at(i) == candidate) || !(map.podset_at(j) == candidate)) continue;
        ++total;
        if (map.cell(i, j) == color) ++hit;
      }
    }
    return total ? static_cast<double>(hit) / static_cast<double>(total) : 0.0;
  };

  // Also the "rest of the matrix is fine" check per candidate podset.
  auto rest_mostly_green = [&](PodsetId candidate) {
    std::size_t total = 0;
    std::size_t green = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (map.podset_at(i) == candidate || map.podset_at(j) == candidate) continue;
        ++total;
        if (map.cell(i, j) == CellColor::kGreen) ++green;
      }
    }
    return total == 0 ||
           static_cast<double>(green) / static_cast<double>(total) >= 0.9;
  };

  // (b) podset-down: one podset's cross is white.
  for (const CrossStat& s : stats) {
    if (s.cells == 0) continue;
    double whiteness = static_cast<double>(s.white) / static_cast<double>(s.cells);
    if (whiteness >= 0.9 && own_block_fraction(s.podset, CellColor::kWhite) >= 0.9 &&
        rest_mostly_green(s.podset)) {
      result.pattern = LatencyPattern::kPodsetDown;
      result.podset = s.podset;
      return result;
    }
  }
  // (c) podset-failure: one podset's cross is red.
  for (const CrossStat& s : stats) {
    if (s.cells == 0) continue;
    double redness = static_cast<double>(s.red) / static_cast<double>(s.cells);
    if (redness >= 0.8 && own_block_fraction(s.podset, CellColor::kRed) >= 0.5 &&
        rest_mostly_green(s.podset)) {
      result.pattern = LatencyPattern::kPodsetFailure;
      result.podset = s.podset;
      return result;
    }
  }
  // (d) spine-failure: cross-podset red, intra-podset (diagonal blocks) green.
  {
    std::size_t cross_total = 0;
    std::size_t cross_red = 0;
    std::size_t diag_total = 0;
    std::size_t diag_green = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (map.podset_at(i) == map.podset_at(j)) {
          ++diag_total;
          if (map.cell(i, j) == CellColor::kGreen) ++diag_green;
        } else {
          ++cross_total;
          if (map.cell(i, j) == CellColor::kRed) ++cross_red;
        }
      }
    }
    if (cross_total > 0 && diag_total > 0 &&
        static_cast<double>(cross_red) / static_cast<double>(cross_total) >= 0.6 &&
        static_cast<double>(diag_green) / static_cast<double>(diag_total) >= 0.8) {
      result.pattern = LatencyPattern::kSpineFailure;
      return result;
    }
  }
  // (a) normal: (almost) all green.
  if (result.green_fraction >= 0.95) {
    result.pattern = LatencyPattern::kNormal;
    return result;
  }
  result.pattern = LatencyPattern::kUnknown;
  return result;
}

}  // namespace pingmesh::analysis

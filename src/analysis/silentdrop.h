// Silent random packet drop detection and localization (paper §5.2).
//
// The incident playbook the paper describes:
//  1. Pingmesh data shows a DC-wide drop-rate jump (1e-4..1e-5 baseline to
//     ~2e-3) with non-deterministic drops;
//  2. the latency/drop pattern (Figure 8(d): intra-podset fine, cross-
//     podset broken) points at the Spine layer;
//  3. TCP traceroute against affected source-destination pairs pinpoints
//     the switch, which is isolated from live traffic and RMA'd.
//
// Steps 1-2 are passive (records only). Step 3 is active and runs against
// the simulator's data plane.
#pragma once

#include <optional>
#include <vector>

#include "agent/record.h"
#include "common/rng.h"
#include "common/types.h"
#include "netsim/simnet.h"
#include "topology/topology.h"

namespace pingmesh::analysis {

/// Full path discovery by TTL-walking, as TCP traceroute does. Retries each
/// TTL a few times (earlier hops may drop the probe). Returns the hop
/// switches in order; stops early if a hop never answers.
std::vector<SwitchId> tcp_traceroute(netsim::SimNetwork& net, const FiveTuple& tuple,
                                     SimTime now, int retries_per_hop = 3);

struct SilentDropConfig {
  double baseline_drop_rate = 1e-4;     ///< normal-condition ceiling (§4.2)
  double incident_threshold = 1e-3;     ///< DC-wide rate that means incident
  std::uint64_t min_probes = 200;       ///< statistical floor per aggregate
  double tier_elevation_factor = 5.0;   ///< cross vs intra podset ratio -> spine
  int pairs_to_probe = 24;              ///< affected pairs used for pinpointing
  int tuples_per_pair = 16;             ///< port variations per pair
  int probes_per_tuple = 50;            ///< e2e probes per tuple for loss estimate
  double culprit_min_loss = 0.005;      ///< measured per-spine loss marking culprit
};

enum class SuspectTier : std::uint8_t { kNone, kTor, kLeaf, kSpine };

const char* suspect_tier_name(SuspectTier t);

struct SpineLoss {
  SwitchId spine;
  std::uint64_t probes = 0;
  std::uint64_t losses = 0;
  [[nodiscard]] double loss_rate() const {
    return probes ? static_cast<double>(losses) / static_cast<double>(probes) : 0.0;
  }
};

struct SilentDropReport {
  bool incident = false;
  DcId affected_dc;
  double dc_drop_rate = 0.0;
  SuspectTier tier = SuspectTier::kNone;
  double intra_podset_rate = 0.0;
  double cross_podset_rate = 0.0;
  std::vector<SpineLoss> spine_losses;  ///< active-measurement results
  SwitchId culprit;                     ///< invalid when not pinpointed
  double culprit_loss = 0.0;
};

class SilentDropLocalizer {
 public:
  explicit SilentDropLocalizer(SilentDropConfig config = {}) : config_(config) {}

  /// Passive phase: find the affected DC (if any) from a record window.
  [[nodiscard]] std::optional<DcId> detect_affected_dc(
      const std::vector<agent::LatencyRecord>& window, const topo::Topology& topo) const;

  /// Passive + active: classify the suspect tier from the window, then (if
  /// Spine) traceroute+probe through `net` to pinpoint the culprit.
  [[nodiscard]] SilentDropReport localize(const std::vector<agent::LatencyRecord>& window,
                                          const topo::Topology& topo,
                                          netsim::SimNetwork& net, SimTime now) const;

  [[nodiscard]] const SilentDropConfig& config() const { return config_; }

 private:
  SilentDropConfig config_;
};

}  // namespace pingmesh::analysis

// Packet drop rate inference (paper §4.2).
//
// "Pingmesh does not directly measure packet drop rate. However, we can
// infer packet drop rate from the TCP connection setup time. ... we use the
// following heuristic to estimate packet drop rate:
//     (probes with 3s rtt + probes with 9s rtt) / total successful probes."
//
// Failed probes are excluded from the denominator (can't distinguish drops
// from a dead receiver), and a 9 s probe counts once, not twice (successive
// drops within a connection are correlated).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "agent/record.h"
#include "common/types.h"

namespace pingmesh::analysis {

struct DropEstimate {
  std::uint64_t successful_probes = 0;
  std::uint64_t failed_probes = 0;
  std::uint64_t probes_3s = 0;
  std::uint64_t probes_9s = 0;

  [[nodiscard]] double rate() const {
    if (successful_probes == 0) return 0.0;
    return static_cast<double>(probes_3s + probes_9s) /
           static_cast<double>(successful_probes);
  }
};

/// Aggregate estimate over a record set.
DropEstimate estimate_drop_rate(const std::vector<agent::LatencyRecord>& records);

/// Per source-destination pair estimates (input to black-hole detection).
struct PairKey {
  IpAddr src;
  IpAddr dst;
  auto operator<=>(const PairKey&) const = default;
};

struct PairStats {
  std::uint64_t probes = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t drop_signatures = 0;

  [[nodiscard]] double failure_rate() const {
    return probes ? static_cast<double>(failures) / static_cast<double>(probes) : 0.0;
  }
};

std::map<PairKey, PairStats> per_pair_stats(const std::vector<agent::LatencyRecord>& records);

}  // namespace pingmesh::analysis

#include "analysis/length_dependence.h"

#include "agent/counters.h"

namespace pingmesh::analysis {

LengthDependenceReport detect_length_dependent_loss(
    const std::vector<agent::LatencyRecord>& window,
    const LengthDependenceConfig& config) {
  LengthDependenceReport report;
  for (const agent::LatencyRecord& r : window) {
    if (!r.success) continue;  // connect failed: no payload leg to compare
    ++report.syn_probes;
    if (agent::syn_drop_signature(r.rtt) > 0) ++report.syn_drop_signatures;

    if (r.kind != controller::ProbeKind::kTcpPayload) continue;
    ++report.payload_probes;
    if (!r.payload_success) {
      ++report.payload_failures;
    } else if (r.payload_rtt - r.rtt >= millis(250)) {
      // A healthy echo takes about one more RTT than the connect; a gap of
      // an RTO or more means the data or echo packet was retransmitted.
      ++report.payload_retransmits;
    }
  }

  if (report.payload_probes > 0) {
    report.payload_loss_rate =
        static_cast<double>(report.payload_failures + report.payload_retransmits) /
        static_cast<double>(report.payload_probes);
  }
  if (report.syn_probes > 0) {
    report.syn_loss_rate = static_cast<double>(report.syn_drop_signatures) /
                           static_cast<double>(report.syn_probes);
  }
  report.length_dependent =
      report.payload_probes >= config.min_payload_probes &&
      report.payload_loss_rate >= config.min_payload_loss &&
      report.payload_loss_rate >= config.ratio_threshold *
                                      std::max(report.syn_loss_rate, 1e-9);
  return report;
}

}  // namespace pingmesh::analysis

#include "analysis/sla.h"

#include "common/stats.h"

namespace pingmesh::analysis {

IssueVerdict judge_network_issue(const dsa::Database& db, dsa::SlaScope scope,
                                 std::uint32_t scope_id, SimTime from, SimTime to,
                                 const dsa::AlertThresholds& thresholds) {
  IssueVerdict v;
  std::uint64_t successes = 0;
  std::uint64_t signatures = 0;
  std::int64_t worst_p99 = 0;
  for (const dsa::SlaRow& row : db.sla_rows) {
    if (row.scope != scope || row.scope_id != scope_id) continue;
    if (row.window_start >= to || row.window_end <= from) continue;
    v.probes += row.probes;
    successes += row.successes;
    signatures += row.drop_signatures;
    worst_p99 = std::max(worst_p99, row.p99_ns);
  }
  if (v.probes < thresholds.min_probes) {
    v.evidence = "insufficient Pingmesh data in window (" + std::to_string(v.probes) +
                 " probes); no network-issue indication";
    return v;
  }
  v.drop_rate = successes ? static_cast<double>(signatures) / static_cast<double>(successes)
                          : 0.0;
  v.p99_ns = worst_p99;

  bool drop_broken = v.drop_rate > thresholds.drop_rate;
  bool latency_broken = v.p99_ns > thresholds.p99;
  v.network_issue = drop_broken || latency_broken;
  if (drop_broken) {
    v.evidence = "drop rate " + format_rate(v.drop_rate) + " exceeds " +
                 format_rate(thresholds.drop_rate);
  } else if (latency_broken) {
    v.evidence = "P99 latency " + format_latency_ns(v.p99_ns) + " exceeds " +
                 format_latency_ns(thresholds.p99);
  } else {
    v.evidence = "drop rate " + format_rate(v.drop_rate) + " and P99 " +
                 format_latency_ns(v.p99_ns) + " are within SLA; not a network issue";
  }
  return v;
}

std::vector<SlaPoint> sla_time_series(const dsa::Database& db, dsa::SlaScope scope,
                                      std::uint32_t scope_id) {
  std::vector<SlaPoint> out;
  for (const dsa::SlaRow& row : db.sla_series(scope, scope_id)) {
    SlaPoint p;
    p.window_start = row.window_start;
    p.drop_rate = row.drop_rate();
    p.p99_ns = row.p99_ns;
    p.probes = row.probes;
    out.push_back(p);
  }
  return out;
}

}  // namespace pingmesh::analysis

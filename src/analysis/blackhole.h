// Packet black-hole detection (paper §5.1).
//
// "The idea of the algorithm is that if many servers under a ToR switch
// experience the black-hole symptom, then we mark the ToR switch as a
// black-hole candidate and assign it a score ... We then select the
// switches with black-hole score larger than a threshold as the candidates.
// Within a podset, if only part of the ToRs experience the black-hole
// symptom, then those ToRs are blacking hole packets. ... If all the ToRs
// in a podset experience the black-hole symptom, then the problem may be in
// the Leaf or Spine layer. Network engineers are notified."
//
// Symptom definition. Baseline loss essentially never kills a whole TCP
// connect (all three SYNs must drop), so a pair that fails repeatedly is a
// deterministic signal:
//   - type-1 (corrupted TCAM src/dst entries): a few pairs per ToR fail
//     100% of the time;
//   - type-2 (five-tuple): every pair crossing the ToR fails the fraction
//     of its probes whose fresh source port lands on a corrupted entry —
//     the new-port-per-probe design is what surfaces these.
// Both concentrate "black pairs" on the faulty ToR. Because a pair touches
// the ToRs of *both* endpoints, a healthy ToR whose servers talk to a
// black-holed pod also accumulates black pairs; attribution therefore uses
// greedy set-cover: repeatedly pick the ToR that explains the most
// remaining black pairs, remove the pairs it covers, stop when no ToR
// explains more than the noise floor. Pairs whose endpoints look dead (no
// successes at all) are excluded — that is a server/pod failure, not a
// switch black-hole.
#pragma once

#include <vector>

#include "agent/record.h"
#include "analysis/droprate.h"
#include "common/types.h"
#include "topology/topology.h"

namespace pingmesh::analysis {

struct BlackholeConfig {
  std::uint64_t min_probes_per_pair = 3;  ///< pairs with fewer probes are ignored
  std::uint64_t min_failures = 2;         ///< failed probes making a pair "black"
  double pair_failure_threshold = 0.15;   ///< failure rate making a pair "black"
  int min_black_pairs = 3;                ///< greedy-cover noise floor per ToR
  double podset_escalation_fraction = 0.99;  ///< all ToRs affected -> Leaf/Spine
  /// Liveness test for the dead-server exclusion. false (default): a server
  /// is alive iff it had >= 1 successful probe — a fully black-holed pod
  /// looks dead and is never blamed on its ToR (the paper's conservative
  /// stance: passively indistinguishable from a pod power-down). true: a
  /// server is alive iff it *reported* (appears as the source of any
  /// record) — agents upload over the management plane, so a pod whose
  /// servers keep reporting failures is alive behind a black-holing ToR,
  /// while a crashed server uploads nothing. The healing loop uses this
  /// mode so a full ToR black-hole is still attributable.
  bool reporting_liveness = false;
  /// Under reporting_liveness, a server only counts as alive if it reported
  /// *continuously*: its records-as-source cover the window with no gap
  /// (including the window edges) wider than this. A window spanning a
  /// server crash — or the recovery from one — still holds the victim's
  /// uploads from its healthy stretch, and counting its failed pairs blames
  /// the ToR for a dead host; an upload gap marks those failures as
  /// unattributable instead. Must exceed the upload period (10s in the
  /// streaming configs).
  SimTime liveness_max_gap = seconds(45);
};

struct TorScore {
  SwitchId tor;
  PodId pod;
  PodsetId podset;
  std::uint64_t pairs_total = 0;  ///< measurable pairs with an endpoint under this ToR
  std::uint64_t pairs_black = 0;  ///< black pairs attributed to this ToR by the cover

  [[nodiscard]] double score() const {
    return pairs_total ? static_cast<double>(pairs_black) /
                             static_cast<double>(pairs_total)
                       : 0.0;
  }
};

struct BlackholeReport {
  /// ToRs to reload (score stands out, not podset-wide).
  std::vector<TorScore> candidates;
  /// Podsets where (almost) every ToR is affected: fault above the ToR
  /// layer; humans notified instead of auto-reload.
  std::vector<PodsetId> escalations;
  /// All scored ToRs (diagnostics).
  std::vector<TorScore> all_scores;
};

class BlackholeDetector {
 public:
  explicit BlackholeDetector(BlackholeConfig config = {}) : config_(config) {}

  [[nodiscard]] BlackholeReport detect(const std::vector<agent::LatencyRecord>& window,
                                       const topo::Topology& topo) const;

  [[nodiscard]] const BlackholeConfig& config() const { return config_; }

 private:
  BlackholeConfig config_;
};

}  // namespace pingmesh::analysis

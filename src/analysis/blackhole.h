// Packet black-hole detection (paper §5.1).
//
// "The idea of the algorithm is that if many servers under a ToR switch
// experience the black-hole symptom, then we mark the ToR switch as a
// black-hole candidate and assign it a score ... We then select the
// switches with black-hole score larger than a threshold as the candidates.
// Within a podset, if only part of the ToRs experience the black-hole
// symptom, then those ToRs are blacking hole packets. ... If all the ToRs
// in a podset experience the black-hole symptom, then the problem may be in
// the Leaf or Spine layer. Network engineers are notified."
//
// Symptom definition. Baseline loss essentially never kills a whole TCP
// connect (all three SYNs must drop), so a pair that fails repeatedly is a
// deterministic signal:
//   - type-1 (corrupted TCAM src/dst entries): a few pairs per ToR fail
//     100% of the time;
//   - type-2 (five-tuple): every pair crossing the ToR fails the fraction
//     of its probes whose fresh source port lands on a corrupted entry —
//     the new-port-per-probe design is what surfaces these.
// Both concentrate "black pairs" on the faulty ToR. Because a pair touches
// the ToRs of *both* endpoints, a healthy ToR whose servers talk to a
// black-holed pod also accumulates black pairs; attribution therefore uses
// greedy set-cover: repeatedly pick the ToR that explains the most
// remaining black pairs, remove the pairs it covers, stop when no ToR
// explains more than the noise floor. Pairs whose endpoints look dead (no
// successes at all) are excluded — that is a server/pod failure, not a
// switch black-hole.
#pragma once

#include <vector>

#include "agent/record.h"
#include "analysis/droprate.h"
#include "common/types.h"
#include "topology/topology.h"

namespace pingmesh::analysis {

struct BlackholeConfig {
  std::uint64_t min_probes_per_pair = 3;  ///< pairs with fewer probes are ignored
  std::uint64_t min_failures = 2;         ///< failed probes making a pair "black"
  double pair_failure_threshold = 0.15;   ///< failure rate making a pair "black"
  int min_black_pairs = 3;                ///< greedy-cover noise floor per ToR
  double podset_escalation_fraction = 0.99;  ///< all ToRs affected -> Leaf/Spine
};

struct TorScore {
  SwitchId tor;
  PodId pod;
  PodsetId podset;
  std::uint64_t pairs_total = 0;  ///< measurable pairs with an endpoint under this ToR
  std::uint64_t pairs_black = 0;  ///< black pairs attributed to this ToR by the cover

  [[nodiscard]] double score() const {
    return pairs_total ? static_cast<double>(pairs_black) /
                             static_cast<double>(pairs_total)
                       : 0.0;
  }
};

struct BlackholeReport {
  /// ToRs to reload (score stands out, not podset-wide).
  std::vector<TorScore> candidates;
  /// Podsets where (almost) every ToR is affected: fault above the ToR
  /// layer; humans notified instead of auto-reload.
  std::vector<PodsetId> escalations;
  /// All scored ToRs (diagnostics).
  std::vector<TorScore> all_scores;
};

class BlackholeDetector {
 public:
  explicit BlackholeDetector(BlackholeConfig config = {}) : config_(config) {}

  [[nodiscard]] BlackholeReport detect(const std::vector<agent::LatencyRecord>& window,
                                       const topo::Topology& topo) const;

  [[nodiscard]] const BlackholeConfig& config() const { return config_; }

 private:
  BlackholeConfig config_;
};

}  // namespace pingmesh::analysis

// Server selection support (paper §6.2, "Network metrics for services"):
//
// "The Pingmesh Agent exposes two PA counters for every server: the 99th
// latency and the packet drop rate. Service developers can use the 99th
// latency to get better understanding of data center network latency at
// server level. The per-server packet drop rate has been used by several
// services as one of the metrics for server selection."
//
// rank_servers_for_selection() orders candidate servers by a composite of
// exactly those two metrics, from per-server SLA rows.
#pragma once

#include <vector>

#include "common/types.h"
#include "dsa/database.h"

namespace pingmesh::analysis {

struct ServerNetworkScore {
  ServerId server;
  double drop_rate = 0.0;
  std::int64_t p99_ns = 0;
  std::uint64_t probes = 0;
  /// Lower is better; dimensionless combination of drop rate (dominant)
  /// and P99 latency.
  double score = 0.0;
};

struct SelectionOptions {
  SimTime window_start = 0;
  SimTime window_end = 0;  ///< 0 = everything
  /// Weight of P99 milliseconds relative to one unit of drop rate percent.
  double latency_weight = 0.05;
  /// Servers with fewer probes than this rank last (unknown network health).
  std::uint64_t min_probes = 50;
};

/// Rank `candidates` best-first by their measured network health. Servers
/// without enough data sort after measured ones (unknown beats nothing but
/// loses to evidence).
std::vector<ServerNetworkScore> rank_servers_for_selection(
    const dsa::Database& db, const std::vector<ServerId>& candidates,
    const SelectionOptions& options = {});

}  // namespace pingmesh::analysis

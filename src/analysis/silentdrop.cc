#include "analysis/silentdrop.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "agent/counters.h"
#include "analysis/droprate.h"

namespace pingmesh::analysis {

const char* suspect_tier_name(SuspectTier t) {
  switch (t) {
    case SuspectTier::kNone: return "none";
    case SuspectTier::kTor: return "tor";
    case SuspectTier::kLeaf: return "leaf";
    case SuspectTier::kSpine: return "spine";
  }
  return "?";
}

std::vector<SwitchId> tcp_traceroute(netsim::SimNetwork& net, const FiveTuple& tuple,
                                     SimTime now, int retries_per_hop) {
  std::vector<SwitchId> hops;
  for (int ttl = 1; ttl <= 16; ++ttl) {
    std::optional<SwitchId> answer;
    for (int attempt = 0; attempt < retries_per_hop && !answer; ++attempt) {
      answer = net.traceroute_hop(tuple, ttl, now);
    }
    if (!answer) break;  // path end or a hop that never answers
    hops.push_back(*answer);
  }
  return hops;
}

namespace {

struct RateAcc {
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t signatures = 0;

  void add(const agent::LatencyRecord& r) {
    if (!r.success) {
      ++failures;
      return;
    }
    ++successes;
    if (agent::syn_drop_signature(r.rtt) > 0) ++signatures;
  }

  [[nodiscard]] std::uint64_t probes() const { return successes + failures; }
  [[nodiscard]] double rate() const {
    return successes ? static_cast<double>(signatures) / static_cast<double>(successes)
                     : 0.0;
  }
};

}  // namespace

std::optional<DcId> SilentDropLocalizer::detect_affected_dc(
    const std::vector<agent::LatencyRecord>& window, const topo::Topology& topo) const {
  std::unordered_map<std::uint32_t, RateAcc> per_dc;
  for (const agent::LatencyRecord& r : window) {
    auto src = topo.find_server_by_ip(r.src_ip);
    auto dst = topo.find_server_by_ip(r.dst_ip);
    if (!src || !dst) continue;
    const topo::Server& s = topo.server(*src);
    if (s.dc != topo.server(*dst).dc) continue;  // intra-DC view
    per_dc[s.dc.value].add(r);
  }
  std::optional<DcId> worst;
  double worst_rate = 0.0;
  for (const auto& [dc, acc] : per_dc) {
    if (acc.probes() < config_.min_probes) continue;
    double rate = acc.rate();
    if (rate >= config_.incident_threshold && rate > worst_rate) {
      worst = DcId{dc};
      worst_rate = rate;
    }
  }
  return worst;
}

SilentDropReport SilentDropLocalizer::localize(
    const std::vector<agent::LatencyRecord>& window, const topo::Topology& topo,
    netsim::SimNetwork& net, SimTime now) const {
  SilentDropReport report;
  auto affected = detect_affected_dc(window, topo);
  if (!affected) return report;
  report.incident = true;
  report.affected_dc = *affected;

  // --- tier classification from the record pattern ------------------------
  RateAcc intra_podset;
  RateAcc cross_podset;
  RateAcc dc_all;
  for (const agent::LatencyRecord& r : window) {
    auto src = topo.find_server_by_ip(r.src_ip);
    auto dst = topo.find_server_by_ip(r.dst_ip);
    if (!src || !dst) continue;
    const topo::Server& s = topo.server(*src);
    const topo::Server& d = topo.server(*dst);
    if (s.dc != report.affected_dc || d.dc != report.affected_dc) continue;
    dc_all.add(r);
    if (s.podset == d.podset) {
      intra_podset.add(r);
    } else {
      cross_podset.add(r);
    }
  }
  report.dc_drop_rate = dc_all.rate();
  report.intra_podset_rate = intra_podset.rate();
  report.cross_podset_rate = cross_podset.rate();

  bool cross_hot = report.cross_podset_rate >= config_.incident_threshold;
  bool intra_hot = report.intra_podset_rate >= config_.incident_threshold;
  if (cross_hot && (!intra_hot || report.cross_podset_rate >=
                                      config_.tier_elevation_factor *
                                          std::max(report.intra_podset_rate, 1e-9))) {
    // Only traffic that climbs to the Spine layer is affected (Fig. 8(d)).
    report.tier = SuspectTier::kSpine;
  } else if (intra_hot && !cross_hot) {
    report.tier = SuspectTier::kLeaf;
  } else if (intra_hot && cross_hot) {
    report.tier = SuspectTier::kTor;  // everything from some pods is bad
  }
  if (report.tier != SuspectTier::kSpine) return report;

  // --- active pinpointing via traceroute + focused probing ----------------
  // Pick the worst affected cross-podset pairs.
  auto pairs = per_pair_stats(window);
  std::vector<std::pair<double, PairKey>> affected_pairs;
  for (const auto& [key, stats] : pairs) {
    auto src = topo.find_server_by_ip(key.src);
    auto dst = topo.find_server_by_ip(key.dst);
    if (!src || !dst) continue;
    const topo::Server& s = topo.server(*src);
    const topo::Server& d = topo.server(*dst);
    if (s.dc != report.affected_dc || d.dc != report.affected_dc) continue;
    if (s.podset == d.podset) continue;
    double badness = static_cast<double>(stats.drop_signatures + stats.failures);
    if (badness > 0) affected_pairs.emplace_back(badness, key);
  }
  std::sort(affected_pairs.begin(), affected_pairs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (affected_pairs.size() > static_cast<std::size_t>(config_.pairs_to_probe)) {
    affected_pairs.resize(static_cast<std::size_t>(config_.pairs_to_probe));
  }

  std::map<std::uint32_t, SpineLoss> loss_by_spine;
  for (const auto& [badness, key] : affected_pairs) {
    for (int v = 0; v < config_.tuples_per_pair; ++v) {
      FiveTuple tuple{key.src, key.dst, static_cast<std::uint16_t>(40000 + v * 131), 33100, 6};
      // Which spine does this tuple ride? Discover it like traceroute does.
      std::vector<SwitchId> path = tcp_traceroute(net, tuple, now);
      SwitchId spine;
      for (SwitchId h : path) {
        if (topo.sw(h).kind == topo::SwitchKind::kSpine) {
          spine = h;
          break;
        }
      }
      if (!spine.valid()) continue;
      SpineLoss& acc = loss_by_spine
                           .try_emplace(spine.value, SpineLoss{spine, 0, 0})
                           .first->second;
      for (int k = 0; k < config_.probes_per_tuple; ++k) {
        netsim::PacketResult pr = net.send_packet(tuple, 64, now);
        ++acc.probes;
        if (!pr.delivered) ++acc.losses;
      }
    }
  }

  report.spine_losses.reserve(loss_by_spine.size());
  for (const auto& [id, loss] : loss_by_spine) report.spine_losses.push_back(loss);
  std::sort(report.spine_losses.begin(), report.spine_losses.end(),
            [](const SpineLoss& a, const SpineLoss& b) {
              return a.loss_rate() > b.loss_rate();
            });
  if (!report.spine_losses.empty() &&
      report.spine_losses.front().loss_rate() >= config_.culprit_min_loss) {
    report.culprit = report.spine_losses.front().spine;
    report.culprit_loss = report.spine_losses.front().loss_rate();
  }
  return report;
}

}  // namespace pingmesh::analysis

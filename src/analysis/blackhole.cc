#include "analysis/blackhole.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace pingmesh::analysis {

BlackholeReport BlackholeDetector::detect(const std::vector<agent::LatencyRecord>& window,
                                          const topo::Topology& topo) const {
  // 1. Per-pair failure statistics.
  auto pairs = per_pair_stats(window);

  // 2. Responsive servers: had at least one successful probe as source or
  //    destination. Pairs involving unresponsive servers are dead-server
  //    symptoms (e.g. podset power-down), not black-holes. Under
  //    reporting_liveness, "responsive" instead means the server uploaded
  //    records at all (uploads ride the management plane, so a pod that
  //    keeps reporting pure failures is alive behind a black-holing ToR;
  //    a crashed server reports nothing and stays excluded).
  std::unordered_set<std::uint32_t> responsive;
  if (config_.reporting_liveness) {
    // "Reported" must mean *continuously*: a lookback window that spans a
    // server crash (or the recovery from one) still holds the victim's
    // uploads from its healthy stretch, and counting its failed pairs would
    // blame the ToR for a dead host. Alive iff the server's records-as-
    // source cover the window with no gap — edges included — wider than
    // liveness_max_gap; failures around an upload gap are unattributable.
    std::unordered_map<std::uint32_t, std::vector<SimTime>> seen;
    SimTime window_min = 0;
    SimTime window_max = 0;
    bool first = true;
    for (const auto& r : window) {
      if (first || r.timestamp < window_min) window_min = r.timestamp;
      if (first || r.timestamp > window_max) window_max = r.timestamp;
      first = false;
      if (auto s = topo.find_server_by_ip(r.src_ip)) seen[s->value].push_back(r.timestamp);
    }
    for (auto& [server, times] : seen) {
      std::sort(times.begin(), times.end());
      SimTime max_gap = std::max(times.front() - window_min, window_max - times.back());
      for (std::size_t i = 1; i < times.size(); ++i) {
        max_gap = std::max(max_gap, times[i] - times[i - 1]);
      }
      if (max_gap <= config_.liveness_max_gap) responsive.insert(server);
    }
  } else {
    for (const auto& [key, stats] : pairs) {
      if (stats.successes == 0) continue;
      if (auto s = topo.find_server_by_ip(key.src)) responsive.insert(s->value);
      if (auto d = topo.find_server_by_ip(key.dst)) responsive.insert(d->value);
    }
  }

  // 3. Collect black pairs and per-ToR measurable totals.
  struct BlackPair {
    std::uint32_t tor_a;
    std::uint32_t tor_b;
    bool covered = false;
  };
  std::vector<BlackPair> black;
  std::unordered_map<std::uint32_t, std::uint64_t> total_per_tor;
  for (const auto& [key, stats] : pairs) {
    if (stats.probes < config_.min_probes_per_pair) continue;
    auto src = topo.find_server_by_ip(key.src);
    auto dst = topo.find_server_by_ip(key.dst);
    if (!src || !dst) continue;
    if (!responsive.contains(src->value) || !responsive.contains(dst->value)) continue;
    const topo::Server& s = topo.server(*src);
    const topo::Server& d = topo.server(*dst);
    ++total_per_tor[s.tor.value];
    if (d.tor != s.tor) ++total_per_tor[d.tor.value];
    if (stats.failures >= config_.min_failures &&
        stats.failure_rate() >= config_.pair_failure_threshold) {
      black.push_back(BlackPair{s.tor.value, d.tor.value, false});
    }
  }

  // 4. Diagnostics: raw (pre-attribution) black-pair counts per ToR.
  std::unordered_map<std::uint32_t, std::uint64_t> raw_black;
  for (const BlackPair& bp : black) {
    ++raw_black[bp.tor_a];
    if (bp.tor_b != bp.tor_a) ++raw_black[bp.tor_b];
  }
  BlackholeReport report;
  std::unordered_map<std::uint32_t, const topo::Pod*> pod_of_tor;
  report.all_scores.reserve(topo.pods().size());
  for (const topo::Pod& pod : topo.pods()) {
    pod_of_tor[pod.tor.value] = &pod;
    TorScore score;
    score.tor = pod.tor;
    score.pod = pod.id;
    score.podset = pod.podset;
    auto tot = total_per_tor.find(pod.tor.value);
    if (tot != total_per_tor.end()) score.pairs_total = tot->second;
    auto blk = raw_black.find(pod.tor.value);
    if (blk != raw_black.end()) score.pairs_black = blk->second;
    report.all_scores.push_back(score);
  }

  // 5. Greedy cover: the ToR explaining the most remaining black pairs is a
  //    candidate; its pairs are explained and removed. Stops at the noise
  //    floor, so a healthy ToR whose servers merely *talk to* a black-holed
  //    pod is never selected — its black pairs are already covered.
  std::vector<TorScore> flagged;
  for (;;) {
    std::unordered_map<std::uint32_t, std::uint64_t> coverage;
    for (const BlackPair& bp : black) {
      if (bp.covered) continue;
      ++coverage[bp.tor_a];
      if (bp.tor_b != bp.tor_a) ++coverage[bp.tor_b];
    }
    std::uint32_t best_tor = 0;
    std::uint64_t best_cover = 0;
    for (const auto& [tor, cover] : coverage) {
      if (cover > best_cover || (cover == best_cover && tor < best_tor)) {
        best_tor = tor;
        best_cover = cover;
      }
    }
    if (best_cover < static_cast<std::uint64_t>(config_.min_black_pairs)) break;
    auto pod_it = pod_of_tor.find(best_tor);
    if (pod_it == pod_of_tor.end()) break;  // black pairs point at no known ToR
    const topo::Pod& pod = *pod_it->second;
    TorScore score;
    score.tor = pod.tor;
    score.pod = pod.id;
    score.podset = pod.podset;
    score.pairs_total = total_per_tor[best_tor];
    score.pairs_black = best_cover;
    flagged.push_back(score);
    for (BlackPair& bp : black) {
      if (!bp.covered && (bp.tor_a == best_tor || bp.tor_b == best_tor)) bp.covered = true;
    }
  }

  // 6. Podset-wide symptom escalates to Leaf/Spine investigation instead of
  //    auto-reloading.
  std::unordered_map<std::uint32_t, int> podset_tors;
  for (const topo::Pod& pod : topo.pods()) ++podset_tors[pod.podset.value];
  std::unordered_map<std::uint32_t, int> podset_affected;
  for (const TorScore& s : flagged) ++podset_affected[s.podset.value];
  std::unordered_set<std::uint32_t> escalated;
  for (const auto& [podset, affected] : podset_affected) {
    double fraction =
        static_cast<double>(affected) / static_cast<double>(podset_tors[podset]);
    if (fraction >= config_.podset_escalation_fraction && podset_tors[podset] > 1) {
      escalated.insert(podset);
      report.escalations.push_back(PodsetId{podset});
    }
  }
  for (const TorScore& s : flagged) {
    if (!escalated.contains(s.podset.value)) report.candidates.push_back(s);
  }
  return report;
}

}  // namespace pingmesh::analysis

// Length-dependent packet loss detection (paper §4.1).
//
// "We introduced payload ping because it can help detect packet drops that
// are related to packet length (e.g., fiber FCS errors and switch SerDes
// errors that are related to bit error rate)." And §4.2: "This assumption
// [SYN drop rate ~ data drop rate], however, may not be true when packet
// drop rate is related to packet size ... We did see packets of larger size
// may experience higher drop rate in FCS error related incidents."
//
// Detection: compare the failure rate of the payload leg (800-1200+ byte
// packets) against the SYN/SYN-ACK leg (64-byte packets) of the *same*
// probes. Bit-error-driven loss scales with packet length, so a large
// payload/SYN loss ratio — well above the size ratio explained by normal
// loss — flags an FCS-style incident.
#pragma once

#include <vector>

#include "agent/record.h"
#include "common/types.h"

namespace pingmesh::analysis {

struct LengthDependenceConfig {
  std::uint64_t min_payload_probes = 500;  ///< statistical floor
  /// Flag when payload-leg loss exceeds SYN-leg loss by this factor AND is
  /// itself material.
  double ratio_threshold = 5.0;
  double min_payload_loss = 1e-4;
};

struct LengthDependenceReport {
  std::uint64_t payload_probes = 0;      ///< connected probes that sent payload
  std::uint64_t payload_failures = 0;    ///< echo never completed
  std::uint64_t payload_retransmits = 0; ///< echo needed data retransmission
  std::uint64_t syn_probes = 0;
  std::uint64_t syn_drop_signatures = 0; ///< 3s/9s connects across all probes

  bool length_dependent = false;
  double payload_loss_rate = 0.0;  ///< (failures + retransmits) / payload probes
  double syn_loss_rate = 0.0;      ///< signatures / probes

  [[nodiscard]] double ratio() const {
    return syn_loss_rate > 0 ? payload_loss_rate / syn_loss_rate : 0.0;
  }
};

LengthDependenceReport detect_length_dependent_loss(
    const std::vector<agent::LatencyRecord>& window,
    const LengthDependenceConfig& config = {});

}  // namespace pingmesh::analysis

#include "analysis/droprate.h"

#include "agent/counters.h"

namespace pingmesh::analysis {

DropEstimate estimate_drop_rate(const std::vector<agent::LatencyRecord>& records) {
  DropEstimate e;
  for (const agent::LatencyRecord& r : records) {
    if (!r.success) {
      ++e.failed_probes;
      continue;
    }
    ++e.successful_probes;
    switch (agent::syn_drop_signature(r.rtt)) {
      case 1: ++e.probes_3s; break;
      case 2: ++e.probes_9s; break;
      default: break;
    }
  }
  return e;
}

std::map<PairKey, PairStats> per_pair_stats(const std::vector<agent::LatencyRecord>& records) {
  std::map<PairKey, PairStats> out;
  for (const agent::LatencyRecord& r : records) {
    PairStats& s = out[PairKey{r.src_ip, r.dst_ip}];
    ++s.probes;
    if (r.success) {
      ++s.successes;
      if (agent::syn_drop_signature(r.rtt) > 0) ++s.drop_signatures;
    } else {
      ++s.failures;
    }
  }
  return out;
}

}  // namespace pingmesh::analysis

// Network SLA tracking and the "is it a network issue?" judgement
// (paper §4.3).
//
// "Because Pingmesh collects latency data from all the servers, we can
// always pull out Pingmesh data to tell if a specific service has network
// issue or not. If Pingmesh data does not correlate to the issue perceived
// by the applications, then it is not a network issue."
//
// The verdict uses the two metrics the paper found decisive: packet drop
// rate and P99 latency, against the same thresholds the alerting uses
// (drop > 1e-3 or P99 > 5 ms).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "dsa/database.h"
#include "dsa/jobs.h"

namespace pingmesh::analysis {

struct IssueVerdict {
  bool network_issue = false;
  double drop_rate = 0.0;
  std::int64_t p99_ns = 0;
  std::uint64_t probes = 0;
  std::string evidence;  ///< human-readable justification
};

/// Judge whether a scope (usually a service) had a network issue within
/// [from, to), from its SLA rows in the database. Windows with too few
/// probes return "not a network issue" with evidence saying data was thin —
/// the conservative answer the paper's workflow gives ("If Pingmesh data
/// does not indicate a network problem, then the live-site incident is not
/// caused by the network").
IssueVerdict judge_network_issue(const dsa::Database& db, dsa::SlaScope scope,
                                 std::uint32_t scope_id, SimTime from, SimTime to,
                                 const dsa::AlertThresholds& thresholds = {});

/// Time series of one scope's SLA metrics (Figure 5's two curves).
struct SlaPoint {
  SimTime window_start = 0;
  double drop_rate = 0.0;
  std::int64_t p99_ns = 0;
  std::uint64_t probes = 0;
};

std::vector<SlaPoint> sla_time_series(const dsa::Database& db, dsa::SlaScope scope,
                                      std::uint32_t scope_id);

}  // namespace pingmesh::analysis

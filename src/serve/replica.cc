#include "serve/replica.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace pingmesh::serve {

ServeReplicaSet::ServeReplicaSet(const topo::Topology& topo,
                                 const topo::ServiceMap* services, RollupConfig cfg,
                                 dsa::CosmosStore& cosmos, ReplicaSetConfig rcfg)
    : topo_(&topo),
      services_(services),
      cfg_(cfg),
      cosmos_(&cosmos),
      rcfg_(std::move(rcfg)),
      writer_(topo, services, cfg, cosmos, rcfg_.persist),
      vip_(rcfg_.slb_failure_threshold, rcfg_.slb_recovery_after) {
  PINGMESH_CHECK_MSG(rcfg_.replica_count > 0, "replica set needs >= 1 replica");
  replicas_.resize(rcfg_.replica_count);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    vip_.add_backend("replica-" + std::to_string(i));
    restart(i);  // cold start == recovery from whatever cosmos holds
  }
}

void ServeReplicaSet::on_records(const agent::RecordColumns& batch, SimTime now) {
  writer_.on_records(batch, now);  // durable before any replica applies
  for (Replica& r : replicas_) {
    if (r.store) r.store->on_records(batch, now);
  }
}

void ServeReplicaSet::advance(SimTime now) {
  writer_.advance(now);
  for (Replica& r : replicas_) {
    if (r.store) r.store->advance(now);
  }
}

void ServeReplicaSet::kill(std::size_t i) {
  Replica& r = replicas_.at(i);
  r.service.reset();  // service reads the store; tear down in that order
  r.store.reset();
}

void ServeReplicaSet::restart(std::size_t i) {
  Replica& r = replicas_.at(i);
  r.service.reset();
  r.store = std::make_unique<RollupStore>(*topo_, services_, cfg_);
  r.recovery = recover_rollup_store(*r.store, *cosmos_, rcfg_.persist);
  r.service = std::make_unique<QueryService>(*topo_, *r.store, services_, rcfg_.query);
}

std::size_t ServeReplicaSet::alive_count() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.store != nullptr ? 1 : 0;
  return n;
}

ReplicaQueryResult ServeReplicaSet::query(const net::HttpRequest& req) {
  ReplicaQueryResult out;
  const std::uint64_t flow = dsa::fnv1a(req.path);
  // Each failed pick removes that replica from rotation (threshold 1), so
  // one attempt per replica suffices; +1 covers a half-open trial landing
  // on a still-dead replica before rotation settles.
  for (std::size_t attempt = 0; attempt <= replicas_.size(); ++attempt) {
    std::optional<std::size_t> idx = vip_.pick(flow);
    if (!idx.has_value()) break;
    Replica& r = replicas_[*idx];
    if (!r.service) {
      vip_.report(*idx, false);
      ++out.dead_picks;
      continue;
    }
    vip_.report(*idx, true);
    out.replica = *idx;
    out.response = r.service->handle(req);
    return out;
  }
  out.response = net::HttpResponse::error(503, "Service Unavailable",
                                          "no live query replica");
  return out;
}

}  // namespace pingmesh::serve

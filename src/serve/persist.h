// Rollup persistence — crash-consistent serving tier (DESIGN.md §13.5).
//
// The paper's serving pipeline survives component restarts because rollups
// live in Cosmos, not process memory; a QueryService bounce must not
// silently serve empty heatmaps. This module makes RollupStore durable
// through the existing CosmosStore with the classic WAL + checkpoint
// scheme, tuned for the store's determinism contract:
//
//  - every ingest batch and every watermark advance is appended to a WAL
//    stream (`pingmesh/rollup-wal`) as a framed, checksummed record BEFORE
//    it is applied to the in-memory store (write-ahead ordering: a crash
//    between the append and the apply replays as if the apply happened);
//  - an advance with no records is the *write-ahead seal record* — replays
//    of the full WAL re-run the exact seal/merge/evict sequence, so a crash
//    mid-seal can neither double-count a cell (seals are deterministic
//    functions of the replayed watermark) nor drop one (the seal record is
//    durable before the seal mutates memory); the conservation ledger
//    verifies this after recovery;
//  - whenever the tier-1 sealed watermark advances, the COMPLETE store
//    state (RollupStore::encode_state()) is written to a segment stream
//    (`pingmesh/rollup-seg`) as a versioned checkpoint carrying the WAL
//    sequence number it covers; the WAL prefix up to that sequence is then
//    expired (bounded storage).
//
// Recovery (recover_rollup_store): pick the newest segment whose checksum
// verifies AND whose payload restores cleanly — torn or corrupt segments
// are quarantined (counted, skipped) with fallback to the next older one —
// then replay WAL frames with seq > checkpoint seq in order. A torn WAL
// tail (truncated or checksum-failing frame) drops the remainder of that
// extent with decode-drop accounting, mirroring the columnar extent
// decoder's contract. Because ingest is deterministic, the recovered store
// is digest()-byte-identical to the pre-crash store for any cleanly
// WAL-covered prefix — the restart invariant chaos and serve_test assert.
//
// Thread-safety: like RollupStore's ingest, all mutating entry points
// (on_records / advance / checkpoint) are driver-thread-only; the wrapped
// store stays internally locked for the concurrent read tier.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dsa/cosmos.h"
#include "dsa/uploader.h"
#include "obs/metrics.h"
#include "serve/rollup.h"

namespace pingmesh::serve {

/// Canonical stream names (alongside dsa::kLatencyStream).
inline const std::string kRollupWalStream = "pingmesh/rollup-wal";
inline const std::string kRollupSegmentStream = "pingmesh/rollup-seg";

struct PersistConfig {
  std::string wal_stream = kRollupWalStream;
  std::string segment_stream = kRollupSegmentStream;
  /// Write a checkpoint segment whenever the tier-1 sealed watermark
  /// advances (beyond that, checkpoint() forces one).
  bool checkpoint_on_tier1_seal = true;
  /// Keep this many previous checkpoints as corruption fallback before
  /// expiring older segment extents.
  std::uint64_t keep_segments = 2;
};

// -- WAL frame codec ---------------------------------------------------------
// Cosmos appends concatenate into extents, so WAL records are self-
// delimiting frames:  magic u32 | version u8 | seq u64 | now i64 |
// payload_len u32 | payload | crc u32 (FNV-1a over seq..payload).
// An empty payload is a seal record (advance(now)); otherwise the payload
// is one dsa::encode_columnar block.

struct WalFrame {
  std::uint64_t seq = 0;
  SimTime now = 0;
  std::string_view payload;  ///< view into the input buffer
};

/// Frame size ceiling (adversarial-input bound for the decoder).
constexpr std::uint32_t kMaxWalPayloadBytes = 16u * 1024 * 1024;

std::string encode_wal_frame(std::uint64_t seq, SimTime now, std::string_view payload);
/// Decode one frame at data[pos]; advances pos past it on success. Returns
/// false on truncation / bad magic / bad checksum (pos is left at the
/// failure; the caller drops the rest of the buffer). Safe on any bytes.
bool decode_wal_frame(std::string_view data, std::size_t& pos, WalFrame* out);

// -- checkpoint segment codec ------------------------------------------------
// Segment frame: magic "PMRSEG1\n" | seq u64 | payload_len u64 | payload |
// crc u32 (FNV-1a over the payload). The payload is
// RollupStore::encode_state() — itself strictly validated on restore.

struct SegmentFrame {
  std::uint64_t seq = 0;
  std::string_view payload;
};

std::string encode_segment_frame(std::uint64_t seq, std::string_view payload);
bool decode_segment_frame(std::string_view data, std::size_t& pos, SegmentFrame* out);

// -- recovery ----------------------------------------------------------------

struct RollupRecoveryStats {
  bool from_checkpoint = false;       ///< a segment restored successfully
  std::uint64_t checkpoint_seq = 0;   ///< WAL seq the restored segment covered
  std::uint64_t segments_seen = 0;
  std::uint64_t segments_quarantined = 0;  ///< torn / corrupt / failed restore
  std::uint64_t wal_frames_replayed = 0;
  std::uint64_t wal_frames_skipped = 0;  ///< seq <= checkpoint (already covered)
  std::uint64_t wal_bytes_dropped = 0;   ///< torn tails after a bad frame
  std::uint64_t wal_extents_skipped = 0; ///< extent-level checksum failures
  std::uint64_t replayed_records = 0;
  std::uint64_t max_seq = 0;  ///< highest WAL seq observed (resume point)
};

/// Rebuild `store` (freshly constructed, same config the persisted state
/// was written with) from the segment + WAL streams in `cosmos`. Read-only
/// on the cosmos store — restart storms never grow the streams. Returns
/// per-source accounting; when neither stream exists the store is left
/// empty and the stats are all zero.
RollupRecoveryStats recover_rollup_store(RollupStore& store, const dsa::CosmosStore& cosmos,
                                         const PersistConfig& pcfg = {});

// -- the durable store -------------------------------------------------------

class PersistentRollupStore final : public dsa::RecordTap {
 public:
  /// Recovers from `cosmos` (if the streams hold state) before accepting
  /// new ingest; `cosmos` must outlive the store.
  PersistentRollupStore(const topo::Topology& topo, const topo::ServiceMap* services,
                        RollupConfig cfg, dsa::CosmosStore& cosmos,
                        PersistConfig pcfg = {});

  /// Uploader-tap entry point: WAL-append the batch, apply it, then write a
  /// checkpoint if the tier-1 watermark moved. Driver thread only.
  void on_records(const agent::RecordColumns& batch, SimTime now) override;
  /// Durable watermark advance (writes the write-ahead seal record first).
  void advance(SimTime now);
  /// Force a checkpoint segment now (shutdown hooks, benches).
  void checkpoint();

  [[nodiscard]] RollupStore& store() { return store_; }
  [[nodiscard]] const RollupStore& store() const { return store_; }
  [[nodiscard]] const RollupRecoveryStats& recovery() const { return recovery_; }

  [[nodiscard]] std::uint64_t wal_frames() const { return wal_frames_; }
  [[nodiscard]] std::uint64_t wal_bytes() const { return wal_bytes_; }
  [[nodiscard]] std::uint64_t segments_written() const { return segments_written_; }
  [[nodiscard]] std::uint64_t next_seq() const { return seq_; }

  /// Register serve.persist.* instruments (WAL/segment counters and the
  /// recovery accounting).
  void enable_observability(obs::MetricsRegistry& registry);

 private:
  void append_wal(std::string_view payload, SimTime now);
  void maybe_checkpoint();
  void write_segment();

  dsa::CosmosStore* cosmos_;
  PersistConfig pcfg_;
  RollupStore store_;
  RollupRecoveryStats recovery_;

  std::uint64_t seq_ = 0;  ///< next WAL sequence number
  SimTime checkpointed_tier1_ = 0;  ///< sealed_until(1) at the last segment
  std::uint64_t wal_frames_ = 0;
  std::uint64_t wal_bytes_ = 0;
  std::uint64_t segments_written_ = 0;
  /// WAL seqs of retained checkpoints, oldest first; the front is the WAL
  /// trim floor (recovery may have to roll forward from it).
  std::vector<std::uint64_t> segment_seqs_;
};

}  // namespace pingmesh::serve

// QueryService — the interactive HTTP query API over materialized rollups
// (DESIGN.md §13).
//
// Three read endpoints, each answered from RollupStore cells (never a raw
// extent rescan):
//
//   GET /query/heatmap?minutes=60[&dc=DC1]      pod-pair latency/drop matrix
//   GET /query/sla?service=Search&minutes=60    one service's SLA summary
//   GET /query/topk?k=10&metric=p99&minutes=60  worst pairs by p99|drop|failure
//
// Serving machinery for the "millions of users" read path:
//  - every 200 carries an ETag derived from (store version, request path);
//    If-None-Match revalidation returns 304 with no body — a dashboard
//    polling an unchanged store costs headers only;
//  - a small LRU response cache keyed by full path holds rendered bodies;
//    an entry is fresh exactly while the store version it was rendered at
//    is current, so cache coherence is a single integer compare and a
//    version bump invalidates everything at once (no per-key tracking);
//  - windows are expressed in *sim time* relative to the store's ingest
//    watermark (`now()`), so answers are deterministic for a deterministic
//    workload and cache keys are stable across replays.
//
// handle() is exposed directly (pingmeshctl and tests call it without
// sockets); the HTTP constructor additionally binds an HttpServer on the
// reactor and routes /query/ to it.
//
// Thread-safety: the RollupStore is internally locked, so reads of it are
// safe from any thread. The service's own mutable state — the LRU response
// cache and the request counters — is PM_GUARDED_BY(cache_mu_). handle()
// captures the store version ONCE per request and keys both the ETag and
// the cache entry off that snapshot (re-reading version() mid-request could
// cache a body rendered at version N under version N+1). Rendering runs
// outside cache_mu_ so a slow render never blocks cache hits, and metrics
// are recorded after the lock is released so cache_mu_ never nests inside
// or around MetricsRegistry::mu_.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "net/http.h"
#include "net/reactor.h"
#include "net/sockaddr.h"
#include "obs/metrics.h"
#include "serve/rollup.h"
#include "topology/topology.h"

namespace pingmesh::serve {

struct QueryServiceConfig {
  std::size_t cache_capacity = 64;  ///< LRU rendered-response entries
  SimTime default_window = hours(1);
  int default_topk = 10;
};

class QueryService {
 public:
  using Config = QueryServiceConfig;

  /// Handle-only form (no sockets): pingmeshctl and unit tests.
  QueryService(const topo::Topology& topo, const RollupStore& store,
               const topo::ServiceMap* services, Config cfg = Config());
  /// HTTP form: binds an HttpServer on `bind_addr` and serves /query/*.
  QueryService(net::Reactor& reactor, const net::SockAddr& bind_addr,
               const topo::Topology& topo, const RollupStore& store,
               const topo::ServiceMap* services, Config cfg = Config());
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Answer one request (any method; HEAD/body stripping happens at the
  /// HTTP layer). Exposed for socket-less callers.
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& req);

  /// Bound port of the HTTP form; 0 in handle-only form.
  [[nodiscard]] std::uint16_t port() const;

  /// Register serve.* instruments: per-endpoint request counters and
  /// latency histograms, cache hit/miss, response status classes. Also
  /// registers callback gauges (cache size, rollup version) that read this
  /// object at expose() time — the service must outlive the registry's
  /// last expose().
  void enable_observability(obs::MetricsRegistry& registry);

  [[nodiscard]] std::uint64_t requests() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return requests_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_hits_;
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_misses_;
  }
  [[nodiscard]] std::uint64_t not_modified() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return not_modified_;
  }
  [[nodiscard]] std::size_t cache_size() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
  }

 private:
  struct CacheEntry {
    std::uint64_t version = 0;  ///< store version the body was rendered at
    std::string etag;
    std::string body;
    std::list<std::string>::iterator lru;
  };

  [[nodiscard]] std::string render(const std::string& endpoint,
                                   const std::unordered_map<std::string, std::string>& params,
                                   int* status);
  [[nodiscard]] std::string render_heatmap(
      const std::unordered_map<std::string, std::string>& params, int* status);
  [[nodiscard]] std::string render_sla(
      const std::unordered_map<std::string, std::string>& params, int* status);
  [[nodiscard]] std::string render_topk(
      const std::unordered_map<std::string, std::string>& params, int* status);
  [[nodiscard]] SimTime window_from_params(
      const std::unordered_map<std::string, std::string>& params) const;

  const topo::Topology* topo_;
  const RollupStore* store_;
  const topo::ServiceMap* services_;
  Config cfg_;
  std::unique_ptr<net::HttpServer> server_;  // null in handle-only form

  mutable std::mutex cache_mu_;
  // key: full path
  std::unordered_map<std::string, CacheEntry> cache_ PM_GUARDED_BY(cache_mu_);
  // front == most recent
  std::list<std::string> lru_ PM_GUARDED_BY(cache_mu_);

  std::uint64_t requests_ PM_GUARDED_BY(cache_mu_) = 0;
  std::uint64_t cache_hits_ PM_GUARDED_BY(cache_mu_) = 0;
  std::uint64_t cache_misses_ PM_GUARDED_BY(cache_mu_) = 0;
  std::uint64_t not_modified_ PM_GUARDED_BY(cache_mu_) = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pingmesh::serve

// RollupStore — materialized multi-resolution rollups for the interactive
// read path (DESIGN.md §13).
//
// The paper's users query heatmaps and per-service SLAs over months of
// data; re-scanning Cosmos extents per query is the ~20-minute batch path.
// The serving tier instead materializes three tiers of pre-merged cells —
// 10 min → 1 h → 1 day by default — keyed by pod pair and by service, and
// maintained incrementally from the uploader's RecordTap. A query merges
// O(cells-in-range) LatencySketches instead of touching raw records, so
// heatmap / SLA / top-k answers cost microseconds regardless of how much
// history the store holds.
//
// Seal-and-merge contract (the disjointness that makes queries correct):
//  - a record lands in the tier-0 cell of its *measurement* timestamp;
//  - a tier-0 cell SEALS once `now >= start + width0 + seal_grace`; sealing
//    merges it into its (unsealed) tier-1 parent accumulator, but the cell
//    itself stays queryable;
//  - when a tier-1 cell seals, its tier-0 children are ERASED (the parent
//    now answers for them) and the tier-1 cell merges into tier 2;
//  - when a tier-2 cell seals, its tier-1 children are erased;
//  - per series, the oldest sealed tier-2 cells beyond `max_tier2_cells`
//    are evicted (their probes counted in expired_records()).
// The queryable set — sealed tier-2 cells, sealed tier-1 cells, and ALL
// tier-0 cells — is therefore disjoint and covers every placed record
// except evicted ones. Unsealed tier-1/tier-2 accumulators are never
// queried (they duplicate live children). Old data degrades in resolution,
// never in coverage; memory is bounded by construction.
//
// Robustness against faulty inputs (chaos: clock skew, controller outage):
//  - records stamped further than `future_slack` past the ingest watermark
//    are rejected (rejected_future()) — a skewed agent cannot plant records
//    in windows that would seal out from under later arrivals;
//  - records for already-sealed tier-0 windows are dropped
//    (late_dropped()) — seals are final, so replays/retries cannot mutate
//    history and the digest of a sealed prefix never changes.
// check_conservation() asserts the resulting ledger exactly:
//   ingested == placed + skipped + rejected_future + late_dropped  and
//   sum(queryable pair-cell probes) + expired == placed.
//
// Determinism: ingest runs on the driver thread (serial upload-drain phase,
// like the streaming pipeline), all maps are ordered, and merge order is
// fixed by timestamp — digest() is byte-identical at any worker count.
//
// Thread-safety: the store is internally locked (mu_). Ingest stays a
// single-writer driver-thread affair, but the interactive serving tier
// (QueryService behind HttpServer) reads concurrently with it, so every
// public method takes mu_ and the mutable state is PM_GUARDED_BY(mu_);
// pingmesh_lint's lock-discipline pass checks the annotations.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agent/record_columns.h"
#include "common/annotations.h"
#include "common/types.h"
#include "dsa/uploader.h"
#include "streaming/sketch.h"
#include "streaming/window.h"
#include "topology/topology.h"

namespace pingmesh::serve {

struct RollupConfig {
  /// Cell widths, finest first; each must divide the next (10 min → 1 h →
  /// 1 day by default). Tests/benches shrink these to exercise sealing.
  SimTime tier_width[3] = {minutes(10), hours(1), days(1)};
  /// A tier-0 window seals `seal_grace` after it closes; until then late
  /// records within the window still land.
  SimTime seal_grace = seconds(30);
  /// Records stamped further than this past the ingest watermark are
  /// rejected (clock-skew guard).
  SimTime future_slack = minutes(1);
  /// Sealed tier-2 cells retained per series (default ~2 months of days).
  std::size_t max_tier2_cells = 64;
  /// Sketch geometry of every cell; matches the streaming sub-window
  /// geometry so rollup and streaming answers share an error bound.
  streaming::LatencySketch::Config sketch{/*relative_error=*/0.02,
                                          /*min_value_ns=*/1'000,
                                          /*max_value_ns=*/16 * kNanosPerSecond};
};

/// One pod pair's merged stats over a queried range (snapshot form).
struct PairRollup {
  PodId src_pod;
  PodId dst_pod;
  streaming::WindowStats stats;
};

class RollupStore final : public dsa::RecordTap {
 public:
  /// `services` may be null (pair scope only); when given, a record also
  /// rolls into every service its *source* server belongs to — per-service
  /// SLA tracks the latency the service's own servers experience (§4.3).
  /// Register services before constructing the store (membership is
  /// precomputed). Both referents must outlive the store.
  RollupStore(const topo::Topology& topo, const topo::ServiceMap* services,
              RollupConfig cfg);

  // -- ingest ---------------------------------------------------------------
  /// Uploader-tap entry point: classify + place each record, then advance
  /// the seal watermark to `now`. Driver thread only.
  void on_records(const agent::RecordColumns& batch, SimTime now) override;
  /// Advance the watermark without new records (seals/merges/evicts).
  void advance(SimTime now);

  // -- queries (all const; bounds round outward to tier-0 boundaries) -------
  [[nodiscard]] std::optional<streaming::WindowStats> query_pair(
      PodId src, PodId dst, SimTime from, SimTime to) const;
  [[nodiscard]] std::optional<streaming::WindowStats> query_service(
      ServiceId service, SimTime from, SimTime to) const;
  /// Every pair with queryable data overlapping [from, to), sorted by
  /// (src, dst) — the heatmap / top-k source.
  [[nodiscard]] std::vector<PairRollup> pair_stats(SimTime from, SimTime to) const;

  // -- serving metadata ------------------------------------------------------
  /// Monotone state version: bumps whenever a batch changes cell contents or
  /// a watermark moves. The QueryService derives ETags from it.
  [[nodiscard]] std::uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }
  /// Ingest watermark (max `now` seen).
  [[nodiscard]] SimTime now() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_now_;
  }
  /// Everything strictly before this is sealed at the given tier (0-2).
  [[nodiscard]] SimTime sealed_until(int tier) const {
    std::lock_guard<std::mutex> lock(mu_);
    return sealed_until_[tier];
  }
  /// FNV-1a digest over every queryable cell + the counter ledger, in
  /// deterministic order — the 1-vs-N-worker identity probe.
  [[nodiscard]] std::uint64_t digest() const;
  /// The ingest/coverage ledger described in the header comment.
  [[nodiscard]] bool check_conservation() const;

  // -- persistence (implemented in serve/persist.cc) -------------------------
  /// Serialize the COMPLETE store state — every cell in every tier (live
  /// tier-0 cells and unsealed tier-1/2 accumulators included), the counter
  /// ledger, the watermarks, and the version — as one binary payload.
  /// digest() covers all of that state, so a restore_state() round-trip is
  /// digest-identical by construction. The payload embeds the RollupConfig
  /// for validation; sketches serialize as sparse (index, count) pairs.
  [[nodiscard]] std::string encode_state() const;
  /// Rebuild from encode_state() bytes. The input is untrusted (segments
  /// cross a process/disk boundary through Cosmos): every length is bounds-
  /// checked before allocation, the embedded config must equal this store's
  /// config, keys must be strictly increasing and width-aligned, and cell
  /// counters must be internally consistent. Returns false and leaves the
  /// store untouched on any violation — the caller quarantines the segment
  /// and falls back to an older one. Intended for freshly constructed
  /// stores (recovery); on success it REPLACES all state.
  [[nodiscard]] bool restore_state(std::string_view data);

  // -- counters --------------------------------------------------------------
  [[nodiscard]] std::uint64_t ingested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ingested_;
  }
  [[nodiscard]] std::uint64_t placed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return placed_;
  }
  [[nodiscard]] std::uint64_t skipped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return skipped_;
  }
  [[nodiscard]] std::uint64_t rejected_future() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_future_;
  }
  [[nodiscard]] std::uint64_t late_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return late_dropped_;
  }
  [[nodiscard]] std::uint64_t expired_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return expired_;
  }
  [[nodiscard]] std::size_t pair_series_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_.size();
  }
  [[nodiscard]] std::size_t cell_count() const;
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] const RollupConfig& config() const { return cfg_; }
  /// Worst-case relative error of any percentile answered from the store.
  [[nodiscard]] double relative_error_bound() const;

 private:
  struct Cell {
    std::uint64_t probes = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t probes_3s = 0;
    std::uint64_t probes_9s = 0;
    streaming::LatencySketch sketch;

    explicit Cell(const streaming::LatencySketch::Config& c) : sketch(c) {}
    void merge_from(const Cell& o) {
      probes += o.probes;
      successes += o.successes;
      failures += o.failures;
      probes_3s += o.probes_3s;
      probes_9s += o.probes_9s;
      sketch.merge(o.sketch);
    }
  };

  /// One scope's three tiers, each keyed by cell start time.
  struct Series {
    std::map<SimTime, Cell> tier[3];
  };

  static std::uint64_t pair_key(PodId src, PodId dst) {
    return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
  }

  void place(Series& s, SimTime ts, bool success, SimTime rtt) PM_REQUIRES(mu_);
  void seal_series(Series& s) PM_REQUIRES(mu_);
  void advance_locked(SimTime now) PM_REQUIRES(mu_);
  [[nodiscard]] bool cell_queryable(int tier, SimTime start) const PM_REQUIRES(mu_);
  [[nodiscard]] std::size_t cell_count_locked() const PM_REQUIRES(mu_);
  /// Merge queryable cells of `s` overlapping [from, to); nullopt when none.
  [[nodiscard]] std::optional<streaming::WindowStats> merge_range(
      const Series& s, SimTime from, SimTime to) const PM_REQUIRES(mu_);

  const topo::Topology* topo_;
  RollupConfig cfg_;
  /// services_of(src server), precomputed; empty when no ServiceMap.
  std::vector<std::vector<std::uint32_t>> server_services_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Series> pairs_ PM_GUARDED_BY(mu_);     // src<<32|dst
  std::map<std::uint32_t, Series> services_ PM_GUARDED_BY(mu_);  // ServiceId

  SimTime last_now_ PM_GUARDED_BY(mu_) = 0;
  SimTime sealed_until_[3] PM_GUARDED_BY(mu_) = {0, 0, 0};
  std::uint64_t version_ PM_GUARDED_BY(mu_) = 0;

  std::uint64_t ingested_ PM_GUARDED_BY(mu_) = 0;
  std::uint64_t placed_ PM_GUARDED_BY(mu_) = 0;
  std::uint64_t skipped_ PM_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_future_ PM_GUARDED_BY(mu_) = 0;
  std::uint64_t late_dropped_ PM_GUARDED_BY(mu_) = 0;
  std::uint64_t expired_ PM_GUARDED_BY(mu_) = 0;

  mutable streaming::LatencySketch scratch_ PM_GUARDED_BY(mu_);  // query merges
};

/// Fan a single uploader tap out to several consumers (the sim exposes one
/// tap slot; bench/tools attach both the streaming pipeline and a
/// RollupStore through this).
class RecordTapFanout final : public dsa::RecordTap {
 public:
  void add(dsa::RecordTap* tap) { taps_.push_back(tap); }
  void on_records(const agent::RecordColumns& batch, SimTime now) override {
    for (dsa::RecordTap* t : taps_) t->on_records(batch, now);
  }

 private:
  std::vector<dsa::RecordTap*> taps_;
};

}  // namespace pingmesh::serve

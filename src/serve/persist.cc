#include "serve/persist.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.h"
#include "dsa/extent_codec.h"

namespace pingmesh::serve {

namespace {

constexpr std::uint32_t kWalMagic = 0x4C574D50u;  // "PMWL" little-endian
constexpr std::uint8_t kWalVersion = 1;
constexpr std::size_t kWalHeaderBytes = 4 + 1 + 8 + 8 + 4;  // magic..payload_len
constexpr char kSegMagic[8] = {'P', 'M', 'R', 'S', 'E', 'G', '1', '\n'};
constexpr std::size_t kSegHeaderBytes = 8 + 8 + 8;  // magic, seq, payload_len
constexpr std::uint64_t kMaxSegmentPayloadBytes = 256ull * 1024 * 1024;

constexpr std::uint32_t kStateFormatVersion = 1;
/// Adversarial-input caps for restore_state (a hostile length field must
/// not drive allocation; real stores sit far below these).
constexpr std::uint64_t kMaxSeriesPerScope = 1u << 20;
constexpr std::uint64_t kMaxCellsPerTier = 1u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian reader over untrusted bytes. Every getter
/// fails sticky (ok == false) past the end; callers check once per record.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (i * 8);
    }
    pos += 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i])) << (i * 8);
    }
    pos += 8;
    return v;
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string_view take(std::size_t n) {
    if (!need(n)) return {};
    std::string_view v = data.substr(pos, n);
    pos += n;
    return v;
  }
  [[nodiscard]] std::size_t remaining() const { return ok ? data.size() - pos : 0; }
};

}  // namespace

// ---------------------------------------------------------------------------
// WAL frame codec
// ---------------------------------------------------------------------------

std::string encode_wal_frame(std::uint64_t seq, SimTime now, std::string_view payload) {
  PINGMESH_CHECK_MSG(payload.size() <= kMaxWalPayloadBytes, "WAL payload over frame cap");
  std::string out;
  out.reserve(kWalHeaderBytes + payload.size() + 4);
  put_u32(out, kWalMagic);
  out.push_back(static_cast<char>(kWalVersion));
  put_u64(out, seq);
  put_i64(out, now);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  // CRC covers seq..payload: corruption of any field the replay acts on is
  // detected; the magic is its own resync check.
  std::uint32_t crc = dsa::fnv1a(std::string_view(out).substr(5));
  put_u32(out, crc);
  return out;
}

bool decode_wal_frame(std::string_view data, std::size_t& pos, WalFrame* out) {
  if (data.size() - pos < kWalHeaderBytes + 4) return false;
  Cursor c{data, pos};
  if (c.get_u32() != kWalMagic) return false;
  if (static_cast<std::uint8_t>(c.take(1)[0]) != kWalVersion) return false;
  WalFrame f;
  f.seq = c.get_u64();
  f.now = c.get_i64();
  std::uint32_t len = c.get_u32();
  if (len > kMaxWalPayloadBytes) return false;
  f.payload = c.take(len);
  std::uint32_t crc = c.get_u32();
  if (!c.ok) return false;
  if (crc != dsa::fnv1a(data.substr(pos + 5, kWalHeaderBytes - 5 + len))) return false;
  pos = c.pos;
  *out = f;
  return true;
}

// ---------------------------------------------------------------------------
// Segment frame codec
// ---------------------------------------------------------------------------

std::string encode_segment_frame(std::uint64_t seq, std::string_view payload) {
  std::string out;
  out.reserve(kSegHeaderBytes + payload.size() + 4);
  out.append(kSegMagic, sizeof(kSegMagic));
  put_u64(out, seq);
  put_u64(out, payload.size());
  out.append(payload);
  put_u32(out, dsa::fnv1a(payload));
  return out;
}

bool decode_segment_frame(std::string_view data, std::size_t& pos, SegmentFrame* out) {
  if (data.size() - pos < kSegHeaderBytes + 4) return false;
  Cursor c{data, pos};
  std::string_view magic = c.take(sizeof(kSegMagic));
  if (std::memcmp(magic.data(), kSegMagic, sizeof(kSegMagic)) != 0) return false;
  SegmentFrame f;
  f.seq = c.get_u64();
  std::uint64_t len = c.get_u64();
  if (len > kMaxSegmentPayloadBytes || len > c.remaining()) return false;
  f.payload = c.take(static_cast<std::size_t>(len));
  std::uint32_t crc = c.get_u32();
  if (!c.ok || crc != dsa::fnv1a(f.payload)) return false;
  pos = c.pos;
  *out = f;
  return true;
}

// ---------------------------------------------------------------------------
// RollupStore state codec (member functions; see rollup.h)
// ---------------------------------------------------------------------------

namespace {

void encode_sketch(std::string& out, const streaming::LatencySketch& sk) {
  put_u64(out, sk.count());
  put_f64(out, sk.sum());
  put_i64(out, sk.observed_min_raw());
  put_i64(out, sk.observed_max_raw());
  const std::vector<std::uint64_t>& counts = sk.bucket_counts();
  std::uint32_t nonzero = 0;
  for (std::uint64_t c : counts) nonzero += c != 0 ? 1 : 0;
  put_u32(out, nonzero);
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    put_u32(out, i);
    put_u64(out, counts[i]);
  }
}

bool decode_sketch(Cursor& c, streaming::LatencySketch& sk) {
  std::uint64_t total = c.get_u64();
  double sum = c.get_f64();
  std::int64_t omin = c.get_i64();
  std::int64_t omax = c.get_i64();
  std::uint32_t nonzero = c.get_u32();
  if (!c.ok || nonzero > sk.bucket_count()) return false;
  std::vector<std::uint64_t> counts(sk.bucket_count(), 0);
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    std::uint32_t idx = c.get_u32();
    std::uint64_t cnt = c.get_u64();
    if (!c.ok || idx >= counts.size() || static_cast<std::int64_t>(idx) <= prev ||
        cnt == 0) {
      return false;
    }
    prev = idx;
    counts[idx] = cnt;
  }
  return c.ok && sk.restore_state(counts, total, sum, omin, omax);
}

}  // namespace

std::string RollupStore::encode_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  put_u32(out, kStateFormatVersion);
  // Config echo: a segment written under one geometry must never restore
  // into a store built with another (cell alignment and sketch layout both
  // depend on it).
  for (int t = 0; t < 3; ++t) put_i64(out, cfg_.tier_width[t]);
  put_i64(out, cfg_.seal_grace);
  put_i64(out, cfg_.future_slack);
  put_u64(out, cfg_.max_tier2_cells);
  put_f64(out, cfg_.sketch.relative_error);
  put_i64(out, cfg_.sketch.min_value_ns);
  put_i64(out, cfg_.sketch.max_value_ns);

  put_u64(out, version_);
  put_i64(out, last_now_);
  for (int t = 0; t < 3; ++t) put_i64(out, sealed_until_[t]);
  put_u64(out, ingested_);
  put_u64(out, placed_);
  put_u64(out, skipped_);
  put_u64(out, rejected_future_);
  put_u64(out, late_dropped_);
  put_u64(out, expired_);

  auto encode_series = [&out](const Series& s) {
    for (int tier = 0; tier < 3; ++tier) {
      put_u64(out, s.tier[tier].size());
      for (const auto& [start, cell] : s.tier[tier]) {
        put_i64(out, start);
        put_u64(out, cell.probes);
        put_u64(out, cell.successes);
        put_u64(out, cell.failures);
        put_u64(out, cell.probes_3s);
        put_u64(out, cell.probes_9s);
        encode_sketch(out, cell.sketch);
      }
    }
  };
  put_u64(out, pairs_.size());
  for (const auto& [key, series] : pairs_) {
    put_u64(out, key);
    encode_series(series);
  }
  put_u64(out, services_.size());
  for (const auto& [key, series] : services_) {
    put_u64(out, key);
    encode_series(series);
  }
  return out;
}

bool RollupStore::restore_state(std::string_view data) {
  Cursor c{data};
  if (c.get_u32() != kStateFormatVersion) return false;
  RollupConfig echo;
  for (int t = 0; t < 3; ++t) echo.tier_width[t] = c.get_i64();
  echo.seal_grace = c.get_i64();
  echo.future_slack = c.get_i64();
  echo.max_tier2_cells = static_cast<std::size_t>(c.get_u64());
  echo.sketch.relative_error = c.get_f64();
  echo.sketch.min_value_ns = c.get_i64();
  echo.sketch.max_value_ns = c.get_i64();
  if (!c.ok || echo.tier_width[0] != cfg_.tier_width[0] ||
      echo.tier_width[1] != cfg_.tier_width[1] ||
      echo.tier_width[2] != cfg_.tier_width[2] || echo.seal_grace != cfg_.seal_grace ||
      echo.future_slack != cfg_.future_slack ||
      echo.max_tier2_cells != cfg_.max_tier2_cells || !(echo.sketch == cfg_.sketch)) {
    return false;
  }

  std::uint64_t version = c.get_u64();
  SimTime last_now = c.get_i64();
  SimTime sealed[3];
  for (int t = 0; t < 3; ++t) sealed[t] = c.get_i64();
  std::uint64_t ingested = c.get_u64();
  std::uint64_t placed = c.get_u64();
  std::uint64_t skipped = c.get_u64();
  std::uint64_t rejected_future = c.get_u64();
  std::uint64_t late_dropped = c.get_u64();
  std::uint64_t expired = c.get_u64();
  if (!c.ok || last_now < 0) return false;
  // Ledger identity 1 (overflow-safe: each term must fit under ingested).
  if (placed > ingested) return false;
  std::uint64_t accounted = placed;
  for (std::uint64_t term : {skipped, rejected_future, late_dropped}) {
    if (term > ingested - accounted) return false;
    accounted += term;
  }
  if (accounted != ingested) return false;
  for (int t = 0; t < 3; ++t) {
    if (sealed[t] < 0 || sealed[t] % cfg_.tier_width[t] != 0) return false;
  }

  auto decode_series = [this, &c](Series& s) -> bool {
    for (int tier = 0; tier < 3; ++tier) {
      std::uint64_t n = c.get_u64();
      // A cell is >= 84 encoded bytes; a count the remaining bytes cannot
      // hold is hostile, not truncated-but-valid.
      if (!c.ok || n > kMaxCellsPerTier || n > c.remaining() / 84) return false;
      SimTime prev_start = -1;
      const SimTime w = cfg_.tier_width[tier];
      for (std::uint64_t i = 0; i < n; ++i) {
        SimTime start = c.get_i64();
        if (!c.ok || start < 0 || start % w != 0 || start <= prev_start) return false;
        prev_start = start;
        auto [it, inserted] = s.tier[tier].try_emplace(start, cfg_.sketch);
        PINGMESH_DCHECK(inserted);
        Cell& cell = it->second;
        cell.probes = c.get_u64();
        cell.successes = c.get_u64();
        cell.failures = c.get_u64();
        cell.probes_3s = c.get_u64();
        cell.probes_9s = c.get_u64();
        if (!c.ok || cell.probes == 0 || cell.successes > cell.probes ||
            cell.failures != cell.probes - cell.successes) {
          return false;
        }
        if (cell.probes_3s > cell.successes ||
            cell.probes_9s > cell.successes - cell.probes_3s) {
          return false;
        }
        if (!decode_sketch(c, cell.sketch)) return false;
        // Every success is a latency sample, a 3 s signature, or a 9 s one.
        if (cell.sketch.count() != cell.successes - cell.probes_3s - cell.probes_9s) {
          return false;
        }
      }
    }
    return true;
  };

  std::map<std::uint64_t, Series> pairs;
  std::map<std::uint32_t, Series> services;
  std::uint64_t n_pairs = c.get_u64();
  if (!c.ok || n_pairs > kMaxSeriesPerScope || n_pairs > c.remaining() / 32) return false;
  std::int64_t prev_key = -1;
  for (std::uint64_t i = 0; i < n_pairs; ++i) {
    std::uint64_t key = c.get_u64();
    if (!c.ok || (prev_key >= 0 && key <= static_cast<std::uint64_t>(prev_key))) {
      return false;
    }
    if (key > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      return false;  // pair keys are (pod << 32 | pod): top bit never set
    }
    prev_key = static_cast<std::int64_t>(key);
    if (!decode_series(pairs[key])) return false;
  }
  std::uint64_t n_services = c.get_u64();
  if (!c.ok || n_services > kMaxSeriesPerScope || n_services > c.remaining() / 32) {
    return false;
  }
  if (n_services > 0 && server_services_.empty()) return false;  // geometry mismatch
  std::int64_t prev_sid = -1;
  for (std::uint64_t i = 0; i < n_services; ++i) {
    std::uint64_t key = c.get_u64();
    if (!c.ok || key > 0xffffffffu || static_cast<std::int64_t>(key) <= prev_sid) {
      return false;
    }
    prev_sid = static_cast<std::int64_t>(key);
    if (!decode_series(services[static_cast<std::uint32_t>(key)])) return false;
  }
  if (!c.ok || c.remaining() != 0) return false;  // trailing bytes are hostile

  // Ledger identity 2: the queryable pair cells plus evictions must account
  // for every placed record (the same conservation check_conservation pins
  // on the live store — a segment that fails it cannot have been written by
  // a consistent store).
  if (expired > placed) return false;
  const std::uint64_t coverable = placed - expired;
  std::uint64_t covered = 0;
  for (const auto& [key, s] : pairs) {
    (void)key;
    for (int tier = 0; tier < 3; ++tier) {
      for (const auto& [start, cell] : s.tier[tier]) {
        bool queryable = tier == 0 || start < sealed[tier];
        if (!queryable) continue;
        if (cell.probes > coverable - covered) return false;  // overflow guard
        covered += cell.probes;
      }
    }
  }
  if (covered != coverable) return false;

  std::lock_guard<std::mutex> lock(mu_);
  pairs_ = std::move(pairs);
  services_ = std::move(services);
  version_ = version;
  last_now_ = last_now;
  for (int t = 0; t < 3; ++t) sealed_until_[t] = sealed[t];
  ingested_ = ingested;
  placed_ = placed;
  skipped_ = skipped;
  rejected_future_ = rejected_future;
  late_dropped_ = late_dropped;
  expired_ = expired;
  return true;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

RollupRecoveryStats recover_rollup_store(RollupStore& store, const dsa::CosmosStore& cosmos,
                                         const PersistConfig& pcfg) {
  RollupRecoveryStats st;

  // 1. Newest restorable checkpoint. Frames are collected across every
  // extent (appends concatenate), then tried newest-seq-first; a frame that
  // fails its checksum or its restore is quarantined and the next older
  // one tried — recovery degrades to a longer WAL replay, never to a wrong
  // answer.
  if (const dsa::CosmosStream* seg = cosmos.find(pcfg.segment_stream)) {
    std::vector<SegmentFrame> frames;
    for (const dsa::Extent& ext : seg->extents()) {
      if (!ext.verify()) {
        ++st.segments_quarantined;
        continue;
      }
      std::size_t pos = 0;
      while (pos < ext.data.size()) {
        SegmentFrame f;
        if (!decode_segment_frame(ext.data, pos, &f)) {
          ++st.segments_quarantined;  // torn tail of this extent
          break;
        }
        ++st.segments_seen;
        frames.push_back(f);
      }
    }
    std::stable_sort(frames.begin(), frames.end(),
                     [](const SegmentFrame& a, const SegmentFrame& b) {
                       return a.seq > b.seq;
                     });
    for (const SegmentFrame& f : frames) {
      if (store.restore_state(f.payload)) {
        st.from_checkpoint = true;
        st.checkpoint_seq = f.seq;
        break;
      }
      ++st.segments_quarantined;
    }
  }
  st.max_seq = st.checkpoint_seq;

  // 2. Replay the WAL suffix. Frames at or below the checkpoint seq are
  // already folded into the restored state.
  if (const dsa::CosmosStream* wal = cosmos.find(pcfg.wal_stream)) {
    for (const dsa::Extent& ext : wal->extents()) {
      if (!ext.verify()) {
        ++st.wal_extents_skipped;
        continue;
      }
      std::size_t pos = 0;
      while (pos < ext.data.size()) {
        WalFrame f;
        if (!decode_wal_frame(ext.data, pos, &f)) {
          st.wal_bytes_dropped += ext.data.size() - pos;  // torn tail
          break;
        }
        st.max_seq = std::max(st.max_seq, f.seq);
        if (f.seq <= st.checkpoint_seq) {
          ++st.wal_frames_skipped;
          continue;
        }
        if (f.payload.empty()) {
          store.advance(f.now);  // write-ahead seal record
        } else {
          agent::DecodeStats ds;
          agent::RecordColumns batch = dsa::decode_columnar(f.payload, &ds);
          store.on_records(batch, f.now);
          st.replayed_records += batch.size();
        }
        ++st.wal_frames_replayed;
      }
    }
  }
  return st;
}

// ---------------------------------------------------------------------------
// PersistentRollupStore
// ---------------------------------------------------------------------------

PersistentRollupStore::PersistentRollupStore(const topo::Topology& topo,
                                             const topo::ServiceMap* services,
                                             RollupConfig cfg, dsa::CosmosStore& cosmos,
                                             PersistConfig pcfg)
    : cosmos_(&cosmos), pcfg_(std::move(pcfg)), store_(topo, services, cfg) {
  recovery_ = recover_rollup_store(store_, cosmos, pcfg_);
  seq_ = recovery_.max_seq;
  checkpointed_tier1_ = store_.sealed_until(1);
  if (recovery_.checkpoint_seq > 0) segment_seqs_.push_back(recovery_.checkpoint_seq);
}

void PersistentRollupStore::append_wal(std::string_view payload, SimTime now) {
  ++seq_;
  std::string frame = encode_wal_frame(seq_, now, payload);
  wal_bytes_ += frame.size();
  ++wal_frames_;
  // The seq doubles as the extent timestamp so WAL trimming can use the
  // stream's expire_before in the seq domain.
  cosmos_->stream(pcfg_.wal_stream)
      .append(frame, 1, static_cast<SimTime>(seq_), static_cast<SimTime>(seq_), now,
              dsa::ExtentEncoding::kColumnar);
}

void PersistentRollupStore::on_records(const agent::RecordColumns& batch, SimTime now) {
  std::string payload;
  if (!batch.empty()) payload = dsa::encode_columnar(batch);
  append_wal(payload, now);  // write-ahead: durable before the apply
  store_.on_records(batch, now);
  maybe_checkpoint();
}

void PersistentRollupStore::advance(SimTime now) {
  append_wal({}, now);  // the write-ahead seal record
  store_.advance(now);
  maybe_checkpoint();
}

void PersistentRollupStore::checkpoint() { write_segment(); }

void PersistentRollupStore::maybe_checkpoint() {
  if (!pcfg_.checkpoint_on_tier1_seal) return;
  if (store_.sealed_until(1) > checkpointed_tier1_) write_segment();
}

void PersistentRollupStore::write_segment() {
  const std::string payload = store_.encode_state();
  const std::string frame = encode_segment_frame(seq_, payload);
  dsa::CosmosStream& seg = cosmos_->stream(pcfg_.segment_stream);
  seg.append(frame, 1, static_cast<SimTime>(seq_), static_cast<SimTime>(seq_),
             store_.now(), dsa::ExtentEncoding::kColumnar);
  ++segments_written_;
  checkpointed_tier1_ = store_.sealed_until(1);
  // Retain keep_segments previous checkpoints as corruption fallback, and —
  // critically — keep the WAL replayable from the OLDEST retained
  // checkpoint, not just the newest. Trimming to the newest seq would turn
  // a quarantined segment into a replay gap (old state + missing frames):
  // recovery would be wrong rather than merely slower. (Extent granularity:
  // a partially covered open extent is kept whole — its already-covered
  // frames are skipped on replay by the seq comparison.)
  segment_seqs_.push_back(seq_);
  while (segment_seqs_.size() > pcfg_.keep_segments + 1) {
    segment_seqs_.erase(segment_seqs_.begin());
  }
  const std::uint64_t floor = segment_seqs_.front();
  if (floor > 0) seg.expire_before(static_cast<SimTime>(floor));
  cosmos_->stream(pcfg_.wal_stream).expire_before(static_cast<SimTime>(floor) + 1);
}

void PersistentRollupStore::enable_observability(obs::MetricsRegistry& registry) {
  registry.gauge_fn("serve.persist.wal_frames", "",
                    [this] { return static_cast<double>(wal_frames_); });
  registry.gauge_fn("serve.persist.wal_bytes", "",
                    [this] { return static_cast<double>(wal_bytes_); });
  registry.gauge_fn("serve.persist.segments_written", "",
                    [this] { return static_cast<double>(segments_written_); });
  registry.gauge_fn("serve.persist.segments_quarantined", "", [this] {
    return static_cast<double>(recovery_.segments_quarantined);
  });
  registry.gauge_fn("serve.persist.wal_replayed", "", [this] {
    return static_cast<double>(recovery_.wal_frames_replayed);
  });
  registry.gauge_fn("serve.persist.wal_bytes_dropped", "", [this] {
    return static_cast<double>(recovery_.wal_bytes_dropped);
  });
}

}  // namespace pingmesh::serve

#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

namespace pingmesh::serve {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// path -> (endpoint segment after /query/, key=value params)
void parse_path(const std::string& path, std::string* endpoint,
                std::unordered_map<std::string, std::string>* params) {
  std::string::size_type q = path.find('?');
  std::string base = path.substr(0, q);
  constexpr std::string_view kPrefix = "/query/";
  if (base.rfind(kPrefix, 0) == 0) {
    *endpoint = base.substr(kPrefix.size());
  }
  if (q == std::string::npos) return;
  std::string_view rest = std::string_view(path).substr(q + 1);
  while (!rest.empty()) {
    std::string_view item = rest.substr(0, rest.find('&'));
    rest = item.size() == rest.size() ? std::string_view{} : rest.substr(item.size() + 1);
    std::string_view::size_type eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    (*params)[std::string(item.substr(0, eq))] = std::string(item.substr(eq + 1));
  }
}

std::optional<long> param_long(const std::unordered_map<std::string, std::string>& params,
                               const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) return std::nullopt;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

QueryService::QueryService(const topo::Topology& topo, const RollupStore& store,
                           const topo::ServiceMap* services, Config cfg)
    : topo_(&topo), store_(&store), services_(services), cfg_(cfg) {}

QueryService::QueryService(net::Reactor& reactor, const net::SockAddr& bind_addr,
                           const topo::Topology& topo, const RollupStore& store,
                           const topo::ServiceMap* services, Config cfg)
    : QueryService(topo, store, services, cfg) {
  server_ = std::make_unique<net::HttpServer>(reactor, bind_addr);
  server_->route("/query/", [this](const net::HttpRequest& req) { return handle(req); });
}

QueryService::~QueryService() = default;

std::uint16_t QueryService::port() const { return server_ ? server_->port() : 0; }

void QueryService::enable_observability(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  registry.gauge_fn("serve.cache_entries", "",
                    [this] { return static_cast<double>(cache_size()); });
  registry.gauge_fn("serve.rollup_version", "",
                    [this] { return static_cast<double>(store_->version()); });
}

SimTime QueryService::window_from_params(
    const std::unordered_map<std::string, std::string>& params) const {
  if (auto m = param_long(params, "minutes"); m && *m > 0) return minutes(*m);
  return cfg_.default_window;
}

net::HttpResponse QueryService::handle(const net::HttpRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string endpoint;
  std::unordered_map<std::string, std::string> params;
  parse_path(req.path, &endpoint, &params);
  const std::string ep_label =
      (endpoint == "heatmap" || endpoint == "sla" || endpoint == "topk") ? endpoint
                                                                         : "other";
  // Snapshot the store version once: the ETag and any cache entry written
  // below must agree on it, or a body rendered at version N could be cached
  // as fresh at N+1.
  const std::uint64_t version = store_->version();
  std::string etag = "\"q-" + std::to_string(version) + "-" + hex16(fnv1a(req.path)) + "\"";

  net::HttpResponse resp;
  const char* cache_result = nullptr;
  bool need_render = false;
  auto inm = req.headers.find("if-none-match");
  if (inm != req.headers.end() && net::etag_match(inm->second, etag)) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++requests_;
    ++not_modified_;
    resp = net::HttpResponse::not_modified(etag);
  } else {
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      ++requests_;
      auto cached = cache_.find(req.path);
      if (cached != cache_.end() && cached->second.version == version) {
        ++cache_hits_;
        cache_result = "hit";
        lru_.splice(lru_.begin(), lru_, cached->second.lru);
        resp = net::HttpResponse::ok(cached->second.body, "application/json");
        resp.headers["etag"] = cached->second.etag;
      } else {
        need_render = true;
      }
    }
    if (need_render) {
      // Render outside cache_mu_ — the store is internally locked, and a
      // slow render must not block concurrent cache hits.
      int status = 200;
      std::string body = render(endpoint, params, &status);
      if (status == 200) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        ++cache_misses_;
        cache_result = "miss";
        auto cached = cache_.find(req.path);
        if (cached != cache_.end()) {
          lru_.erase(cached->second.lru);
          cache_.erase(cached);
        }
        while (cache_.size() >= cfg_.cache_capacity && !lru_.empty()) {
          cache_.erase(lru_.back());
          lru_.pop_back();
        }
        lru_.push_front(req.path);
        cache_[req.path] = CacheEntry{version, etag, body, lru_.begin()};
        resp = net::HttpResponse::ok(std::move(body), "application/json");
        resp.headers["etag"] = etag;
      } else {
        resp = net::HttpResponse::error(status, status == 404 ? "Not Found" : "Bad Request",
                                        std::move(body));
      }
    }
  }

  if (metrics_ != nullptr) {
    metrics_->counter("serve.requests_total", "endpoint=" + ep_label).inc();
    metrics_->counter("serve.responses_total", "status=" + std::to_string(resp.status))
        .inc();
    if (cache_result != nullptr) {
      metrics_->counter("serve.cache_total", std::string("result=") + cache_result).inc();
    }
    auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    metrics_->histogram("serve.request_latency_ns", "endpoint=" + ep_label).observe(dt);
  }
  return resp;
}

std::string QueryService::render(const std::string& endpoint,
                                 const std::unordered_map<std::string, std::string>& params,
                                 int* status) {
  if (endpoint == "heatmap") return render_heatmap(params, status);
  if (endpoint == "sla") return render_sla(params, status);
  if (endpoint == "topk") return render_topk(params, status);
  *status = 404;
  return "{\"error\":\"unknown endpoint; expected heatmap|sla|topk\"}";
}

std::string QueryService::render_heatmap(
    const std::unordered_map<std::string, std::string>& params, int* status) {
  const SimTime to = store_->now();
  const SimTime from = std::max<SimTime>(0, to - window_from_params(params));
  std::optional<std::string> dc_filter;
  if (auto it = params.find("dc"); it != params.end()) dc_filter = it->second;

  std::string out = "{\"from_s\":" + std::to_string(from / kNanosPerSecond) +
                    ",\"to_s\":" + std::to_string(to / kNanosPerSecond) + ",\"pairs\":[";
  bool first = true;
  for (const PairRollup& row : store_->pair_stats(from, to)) {
    if (dc_filter) {
      const topo::Pod& pod = topo_->pod(row.src_pod);
      if (topo_->dc(pod.dc).name != *dc_filter) continue;
    }
    if (!first) out += ',';
    first = false;
    out += "{\"src_pod\":" + std::to_string(row.src_pod.value) +
           ",\"dst_pod\":" + std::to_string(row.dst_pod.value) +
           ",\"probes\":" + std::to_string(row.stats.probes) +
           ",\"p50_us\":" + std::to_string(row.stats.p50_ns / kNanosPerMicro) +
           ",\"p99_us\":" + std::to_string(row.stats.p99_ns / kNanosPerMicro) +
           ",\"drop_rate\":" + fmt_rate(row.stats.drop_rate()) +
           ",\"failure_rate\":" + fmt_rate(row.stats.failure_rate()) + "}";
  }
  out += "]}";
  *status = 200;
  return out;
}

std::string QueryService::render_sla(
    const std::unordered_map<std::string, std::string>& params, int* status) {
  auto name_it = params.find("service");
  if (services_ == nullptr || name_it == params.end()) {
    *status = 404;
    return "{\"error\":\"sla requires ?service=NAME and a registered service map\"}";
  }
  std::optional<ServiceId> id;
  for (std::uint32_t i = 0; i < services_->service_count(); ++i) {
    if (services_->name(ServiceId{i}) == name_it->second) {
      id = ServiceId{i};
      break;
    }
  }
  if (!id) {
    *status = 404;
    return "{\"error\":\"unknown service: " + name_it->second + "\"}";
  }
  const SimTime to = store_->now();
  const SimTime from = std::max<SimTime>(0, to - window_from_params(params));
  auto stats = store_->query_service(*id, from, to);
  std::string out = "{\"service\":\"" + name_it->second +
                    "\",\"from_s\":" + std::to_string(from / kNanosPerSecond) +
                    ",\"to_s\":" + std::to_string(to / kNanosPerSecond);
  if (stats) {
    out += ",\"probes\":" + std::to_string(stats->probes) +
           ",\"successes\":" + std::to_string(stats->successes) +
           ",\"failures\":" + std::to_string(stats->failures) +
           ",\"drop_rate\":" + fmt_rate(stats->drop_rate()) +
           ",\"failure_rate\":" + fmt_rate(stats->failure_rate()) +
           ",\"sla\":" + fmt_rate(1.0 - stats->failure_rate()) +
           ",\"p50_us\":" + std::to_string(stats->p50_ns / kNanosPerMicro) +
           ",\"p99_us\":" + std::to_string(stats->p99_ns / kNanosPerMicro) +
           ",\"p999_us\":" + std::to_string(stats->p999_ns / kNanosPerMicro);
  } else {
    out += ",\"probes\":0";
  }
  out += "}";
  *status = 200;
  return out;
}

std::string QueryService::render_topk(
    const std::unordered_map<std::string, std::string>& params, int* status) {
  int k = cfg_.default_topk;
  if (auto v = param_long(params, "k"); v && *v > 0) k = static_cast<int>(*v);
  std::string metric = "p99";
  if (auto it = params.find("metric"); it != params.end()) metric = it->second;
  if (metric != "p99" && metric != "drop" && metric != "failure") {
    *status = 400;
    return "{\"error\":\"metric must be p99|drop|failure\"}";
  }
  const SimTime to = store_->now();
  const SimTime from = std::max<SimTime>(0, to - window_from_params(params));
  std::vector<PairRollup> rows = store_->pair_stats(from, to);
  auto score = [&metric](const PairRollup& r) {
    if (metric == "drop") return r.stats.drop_rate();
    if (metric == "failure") return r.stats.failure_rate();
    return static_cast<double>(r.stats.p99_ns);
  };
  // Deterministic order: score descending, then (src, dst) ascending.
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const PairRollup& a, const PairRollup& b) {
                     double sa = score(a);
                     double sb = score(b);
                     if (sa != sb) return sa > sb;
                     if (a.src_pod.value != b.src_pod.value)
                       return a.src_pod.value < b.src_pod.value;
                     return a.dst_pod.value < b.dst_pod.value;
                   });
  if (rows.size() > static_cast<std::size_t>(k)) rows.resize(k);

  std::string out = "{\"metric\":\"" + metric + "\",\"k\":" + std::to_string(k) +
                    ",\"from_s\":" + std::to_string(from / kNanosPerSecond) +
                    ",\"to_s\":" + std::to_string(to / kNanosPerSecond) + ",\"pairs\":[";
  bool first = true;
  for (const PairRollup& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"src_pod\":" + std::to_string(row.src_pod.value) +
           ",\"dst_pod\":" + std::to_string(row.dst_pod.value) +
           ",\"probes\":" + std::to_string(row.stats.probes) +
           ",\"p99_us\":" + std::to_string(row.stats.p99_ns / kNanosPerMicro) +
           ",\"drop_rate\":" + fmt_rate(row.stats.drop_rate()) +
           ",\"failure_rate\":" + fmt_rate(row.stats.failure_rate()) + "}";
  }
  out += "]}";
  *status = 200;
  return out;
}

}  // namespace pingmesh::serve

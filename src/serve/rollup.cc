#include "serve/rollup.h"

#include <algorithm>

#include "agent/counters.h"
#include "common/check.h"

namespace pingmesh::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

RollupStore::RollupStore(const topo::Topology& topo, const topo::ServiceMap* services,
                         RollupConfig cfg)
    : topo_(&topo), cfg_(cfg), scratch_(cfg.sketch) {
  PINGMESH_CHECK_MSG(cfg_.tier_width[0] > 0, "tier-0 width must be positive");
  PINGMESH_CHECK_MSG(cfg_.tier_width[1] % cfg_.tier_width[0] == 0 &&
                         cfg_.tier_width[2] % cfg_.tier_width[1] == 0,
                     "rollup tier widths must nest (w0 | w1 | w2)");
  PINGMESH_CHECK_MSG(cfg_.seal_grace >= 0 && cfg_.future_slack >= 0,
                     "seal_grace / future_slack must be non-negative");
  if (services != nullptr) {
    server_services_.resize(topo.server_count());
    for (const topo::Server& srv : topo.servers()) {
      for (ServiceId sid : services->services_of(srv.id)) {
        server_services_[srv.id.value].push_back(sid.value);
      }
    }
  }
}

void RollupStore::place(Series& s, SimTime ts, bool success, SimTime rtt) {
  const SimTime w0 = cfg_.tier_width[0];
  const SimTime start = w0 * (ts / w0);
  auto [it, _] = s.tier[0].try_emplace(start, cfg_.sketch);
  Cell& cell = it->second;
  ++cell.probes;
  if (!success) {
    ++cell.failures;
    return;
  }
  ++cell.successes;
  // Retransmit artifacts count as drop signatures, never as latency samples
  // (same classification as streaming/window and the batch aggregator).
  switch (agent::syn_drop_signature(rtt)) {
    case 1:
      ++cell.probes_3s;
      break;
    case 2:
      ++cell.probes_9s;
      break;
    default:
      cell.sketch.record(rtt);
  }
}

void RollupStore::on_records(const agent::RecordColumns& batch, SimTime now) {
  const std::size_t n = batch.size();
  const SimTime* ts = batch.timestamps();
  const std::uint32_t* src_ips = batch.src_ips();
  const std::uint32_t* dst_ips = batch.dst_ips();
  const std::uint8_t* successes = batch.successes();
  const SimTime* rtts = batch.rtts();
  std::lock_guard<std::mutex> lock(mu_);
  const SimTime horizon = std::max(last_now_, now) + cfg_.future_slack;
  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    ++ingested_;
    if (ts[i] > horizon) {  // clock-skew guard: refuse to extend the future
      ++rejected_future_;
      continue;
    }
    if (ts[i] < sealed_until_[0]) {  // seals are final
      ++late_dropped_;
      continue;
    }
    auto src = topo_->find_server_by_ip(IpAddr(src_ips[i]));
    auto dst = topo_->find_server_by_ip(IpAddr(dst_ips[i]));
    if (!src || !dst) {  // mirrors the batch pod-pair job's filter
      ++skipped_;
      continue;
    }
    const bool ok = successes[i] != 0;
    PodId src_pod = topo_->server(*src).pod;
    PodId dst_pod = topo_->server(*dst).pod;
    place(pairs_[pair_key(src_pod, dst_pod)], ts[i], ok, rtts[i]);
    ++placed_;
    changed = true;
    if (!server_services_.empty()) {
      for (std::uint32_t sid : server_services_[src->value]) {
        place(services_[sid], ts[i], ok, rtts[i]);
      }
    }
  }
  if (changed) ++version_;
  advance_locked(now);
}

void RollupStore::advance(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  advance_locked(now);
}

void RollupStore::advance_locked(SimTime now) {
  last_now_ = std::max(last_now_, now);
  const SimTime basis = std::max<SimTime>(0, last_now_ - cfg_.seal_grace);
  SimTime next[3];
  for (int t = 0; t < 3; ++t) {
    next[t] = cfg_.tier_width[t] * (basis / cfg_.tier_width[t]);
  }
  if (next[0] == sealed_until_[0] && next[1] == sealed_until_[1] &&
      next[2] == sealed_until_[2]) {
    return;
  }
  // seal_series derives the same `next` watermarks from last_now_; the
  // members are only moved after every series has sealed, so the merge
  // ranges [sealed_until_, next) are consistent across all scopes.
  for (auto& [key, series] : pairs_) {
    (void)key;
    seal_series(series);
  }
  for (auto& [key, series] : services_) {
    (void)key;
    seal_series(series);
  }
  sealed_until_[0] = next[0];
  sealed_until_[1] = next[1];
  sealed_until_[2] = next[2];
  ++version_;
}

void RollupStore::seal_series(Series& s) {
  const SimTime basis = std::max<SimTime>(0, last_now_ - cfg_.seal_grace);
  const SimTime w1 = cfg_.tier_width[1];
  const SimTime w2 = cfg_.tier_width[2];
  SimTime next[3];
  for (int t = 0; t < 3; ++t) {
    next[t] = cfg_.tier_width[t] * (basis / cfg_.tier_width[t]);
  }
  // Newly sealed tier-0 cells merge into their tier-1 parent accumulator
  // (ascending start order — the deterministic merge order contract).
  for (auto it = s.tier[0].lower_bound(sealed_until_[0]);
       it != s.tier[0].end() && it->first < next[0]; ++it) {
    auto [parent, _] = s.tier[1].try_emplace(w1 * (it->first / w1), cfg_.sketch);
    parent->second.merge_from(it->second);
  }
  // Newly sealed tier-1 cells merge into tier 2 and shed their children.
  for (auto it = s.tier[1].lower_bound(sealed_until_[1]);
       it != s.tier[1].end() && it->first < next[1]; ++it) {
    auto [parent, _] = s.tier[2].try_emplace(w2 * (it->first / w2), cfg_.sketch);
    parent->second.merge_from(it->second);
    s.tier[0].erase(s.tier[0].lower_bound(it->first),
                    s.tier[0].lower_bound(it->first + w1));
  }
  // Newly sealed tier-2 cells shed their tier-1 children.
  for (auto it = s.tier[2].lower_bound(sealed_until_[2]);
       it != s.tier[2].end() && it->first < next[2]; ++it) {
    s.tier[1].erase(s.tier[1].lower_bound(it->first),
                    s.tier[1].lower_bound(it->first + w2));
  }
  // Bounded memory: evict the oldest sealed tier-2 cells beyond the cap.
  std::size_t sealed2 = 0;
  for (const auto& [start, cell] : s.tier[2]) {
    (void)cell;
    if (start >= next[2]) break;
    ++sealed2;
  }
  while (sealed2 > cfg_.max_tier2_cells) {
    auto oldest = s.tier[2].begin();
    expired_ += oldest->second.probes;
    s.tier[2].erase(oldest);
    --sealed2;
  }
}

bool RollupStore::cell_queryable(int tier, SimTime start) const {
  if (tier == 0) return true;  // live + sealed tier-0 cells both serve
  return start < sealed_until_[tier];
}

std::optional<streaming::WindowStats> RollupStore::merge_range(const Series& s,
                                                               SimTime from,
                                                               SimTime to) const {
  const SimTime w0 = cfg_.tier_width[0];
  const SimTime from_al = w0 * (std::max<SimTime>(0, from) / w0);
  const SimTime to_al = to <= 0 ? 0 : w0 * ((to + w0 - 1) / w0);
  streaming::WindowStats stats;
  scratch_.clear();
  bool any = false;
  for (int tier = 2; tier >= 0; --tier) {
    const SimTime w = cfg_.tier_width[tier];
    // Cell starts are w-aligned, so the first cell that can overlap from_al
    // is the one containing it.
    auto it = s.tier[tier].lower_bound(w * (from_al / w));
    for (; it != s.tier[tier].end() && it->first < to_al; ++it) {
      if (!cell_queryable(tier, it->first)) continue;
      const Cell& c = it->second;
      stats.probes += c.probes;
      stats.successes += c.successes;
      stats.failures += c.failures;
      stats.probes_3s += c.probes_3s;
      stats.probes_9s += c.probes_9s;
      scratch_.merge(c.sketch);
      if (!any) {
        stats.window_start = it->first;
        stats.window_end = it->first + w;
        any = true;
      } else {
        stats.window_start = std::min(stats.window_start, it->first);
        stats.window_end = std::max(stats.window_end, it->first + w);
      }
    }
  }
  if (!any) return std::nullopt;
  stats.p50_ns = scratch_.p50();
  stats.p99_ns = scratch_.p99();
  stats.p999_ns = scratch_.p999();
  return stats;
}

std::optional<streaming::WindowStats> RollupStore::query_pair(PodId src, PodId dst,
                                                              SimTime from,
                                                              SimTime to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pairs_.find(pair_key(src, dst));
  if (it == pairs_.end()) return std::nullopt;
  return merge_range(it->second, from, to);
}

std::optional<streaming::WindowStats> RollupStore::query_service(ServiceId service,
                                                                 SimTime from,
                                                                 SimTime to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(service.value);
  if (it == services_.end()) return std::nullopt;
  return merge_range(it->second, from, to);
}

std::vector<PairRollup> RollupStore::pair_stats(SimTime from, SimTime to) const {
  std::vector<PairRollup> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, series] : pairs_) {
    auto stats = merge_range(series, from, to);
    if (!stats) continue;
    PairRollup row;
    row.src_pod = PodId{static_cast<std::uint32_t>(key >> 32)};
    row.dst_pod = PodId{static_cast<std::uint32_t>(key & 0xffffffffu)};
    row.stats = *stats;
    out.push_back(row);
  }
  return out;
}

std::uint64_t RollupStore::digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = kFnvOffset;
  auto mix_series = [&](std::uint64_t scope_key, const Series& s) {
    fnv_mix(h, scope_key);
    for (int tier = 0; tier < 3; ++tier) {
      for (const auto& [start, c] : s.tier[tier]) {
        fnv_mix(h, static_cast<std::uint64_t>(tier));
        fnv_mix(h, static_cast<std::uint64_t>(start));
        fnv_mix(h, c.probes);
        fnv_mix(h, c.successes);
        fnv_mix(h, c.failures);
        fnv_mix(h, c.probes_3s);
        fnv_mix(h, c.probes_9s);
        fnv_mix(h, c.sketch.count());
        fnv_mix(h, static_cast<std::uint64_t>(c.sketch.quantile(0.5)));
        fnv_mix(h, static_cast<std::uint64_t>(c.sketch.quantile(0.99)));
      }
    }
  };
  for (const auto& [key, series] : pairs_) mix_series(key, series);
  for (const auto& [key, series] : services_) mix_series(0x8000000000000000ULL | key, series);
  fnv_mix(h, ingested_);
  fnv_mix(h, placed_);
  fnv_mix(h, skipped_);
  fnv_mix(h, rejected_future_);
  fnv_mix(h, late_dropped_);
  fnv_mix(h, expired_);
  fnv_mix(h, static_cast<std::uint64_t>(sealed_until_[0]));
  fnv_mix(h, static_cast<std::uint64_t>(sealed_until_[1]));
  fnv_mix(h, static_cast<std::uint64_t>(sealed_until_[2]));
  return h;
}

bool RollupStore::check_conservation() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ingested_ != placed_ + skipped_ + rejected_future_ + late_dropped_) return false;
  // Coverage over the pair keyspace: the disjoint queryable set plus
  // evictions accounts for every placed record exactly once. (Service
  // series overlap — a server can belong to several services — so they are
  // excluded from the ledger.)
  std::uint64_t covered = 0;
  for (const auto& [key, s] : pairs_) {
    (void)key;
    for (int tier = 0; tier < 3; ++tier) {
      for (const auto& [start, c] : s.tier[tier]) {
        if (cell_queryable(tier, start)) covered += c.probes;
      }
    }
  }
  return covered + expired_ == placed_;
}

std::size_t RollupStore::cell_count_locked() const {
  std::size_t n = 0;
  for (const auto& [key, s] : pairs_) {
    (void)key;
    n += s.tier[0].size() + s.tier[1].size() + s.tier[2].size();
  }
  for (const auto& [key, s] : services_) {
    (void)key;
    n += s.tier[0].size() + s.tier[1].size() + s.tier[2].size();
  }
  return n;
}

std::size_t RollupStore::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cell_count_locked();
}

std::size_t RollupStore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t per_cell = sizeof(Cell) + scratch_.memory_bytes();
  return cell_count_locked() * per_cell +
         (pairs_.size() + services_.size()) * sizeof(Series);
}

double RollupStore::relative_error_bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scratch_.relative_error_bound();
}

}  // namespace pingmesh::serve

// ServeReplicaSet — N QueryService replicas behind one SLB VIP, backed by
// a crash-consistent rollup tier (DESIGN.md §13.5).
//
// The paper serves its visualization/query load from a replicated web
// tier: any replica must answer any request, and a replica bounce must be
// invisible to clients. Two properties make that work here:
//
//  - *Replica-consistent ETags.* Every replica ingests the same batches in
//    the same order from the single uploader tap, and RollupStore is
//    deterministic, so all live replicas hold byte-identical state with
//    the SAME version counter. QueryService derives its ETag from
//    (version, path) only — never from replica identity — so a client can
//    take a 200 + ETag from replica A and revalidate it as a 304 against
//    replica B.
//  - *Crash consistency.* One PersistentRollupStore (the writer) WALs and
//    checkpoints every batch through Cosmos before it is applied anywhere.
//    restart(i) rebuilds a dead replica from those streams; because the
//    WAL is write-ahead and complete, the recovered store's digest is
//    byte-identical to the survivors' — which also re-synchronizes its
//    version, keeping the ETag contract intact across restarts.
//
// The front door (query()) picks a replica through the existing
// controller::SlbVip (flow = FNV-1a of the request path so a client's
// polling loop sticks to one replica while healthy). A pick that lands on
// a dead replica reports failure to the VIP — with failure_threshold 1 the
// replica leaves rotation immediately — and retries; only when every
// replica is dead does the set answer 503.
//
// Thread-safety: like the rest of the ingest path, on_records / advance /
// kill / restart are driver-thread-only; query() is driver-thread-only too
// (it mutates SLB health). The per-replica stores remain internally locked
// for their own readers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "controller/slb.h"
#include "dsa/cosmos.h"
#include "dsa/uploader.h"
#include "serve/persist.h"
#include "serve/query_service.h"
#include "serve/rollup.h"
#include "topology/topology.h"

namespace pingmesh::serve {

struct ReplicaSetConfig {
  std::size_t replica_count = 2;
  PersistConfig persist;
  /// One failed request removes a dead replica from rotation (it cannot
  /// half-answer), and readmission probes quickly after restarts.
  int slb_failure_threshold = 1;
  std::uint64_t slb_recovery_after = 8;
  QueryServiceConfig query;
};

/// One answered (or refused) front-door request.
struct ReplicaQueryResult {
  net::HttpResponse response;
  std::size_t replica = 0;  ///< replica that answered; meaningless on 503
  std::size_t dead_picks = 0;  ///< picks that hit a dead replica first
};

class ServeReplicaSet final : public dsa::RecordTap {
 public:
  /// All replicas (and the writer) recover from `cosmos` if it holds
  /// persisted rollup state, so a cold start of the whole set resumes
  /// where the previous incarnation sealed. `cosmos` and the topology
  /// referents must outlive the set.
  ServeReplicaSet(const topo::Topology& topo, const topo::ServiceMap* services,
                  RollupConfig cfg, dsa::CosmosStore& cosmos,
                  ReplicaSetConfig rcfg = {});

  // -- ingest (driver thread) ------------------------------------------------
  /// Fan one uploader batch out: the durable writer first (WAL before any
  /// apply), then every live replica.
  void on_records(const agent::RecordColumns& batch, SimTime now) override;
  void advance(SimTime now);

  // -- chaos surface ---------------------------------------------------------
  /// Drop replica `i`'s in-memory state entirely (process kill).
  void kill(std::size_t i);
  /// Bring replica `i` back: recover a fresh store from Cosmos. The VIP
  /// readmits it through its normal half-open probe.
  void restart(std::size_t i);
  [[nodiscard]] bool alive(std::size_t i) const { return replicas_[i].store != nullptr; }
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }

  // -- front door ------------------------------------------------------------
  /// Route one request through the VIP to a live replica; 503 only when
  /// every replica is dead. Driver thread only (mutates SLB health).
  [[nodiscard]] ReplicaQueryResult query(const net::HttpRequest& req);

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] PersistentRollupStore& writer() { return writer_; }
  [[nodiscard]] const PersistentRollupStore& writer() const { return writer_; }
  /// Null while the replica is dead.
  [[nodiscard]] const RollupStore* replica_store(std::size_t i) const {
    return replicas_[i].store.get();
  }
  [[nodiscard]] controller::SlbVip& vip() { return vip_; }
  /// Recovery accounting of replica `i`'s most recent restart (zeros if it
  /// never restarted).
  [[nodiscard]] const RollupRecoveryStats& last_recovery(std::size_t i) const {
    return replicas_[i].recovery;
  }

 private:
  struct Replica {
    std::unique_ptr<RollupStore> store;
    std::unique_ptr<QueryService> service;
    RollupRecoveryStats recovery;
  };

  const topo::Topology* topo_;
  const topo::ServiceMap* services_;
  RollupConfig cfg_;
  dsa::CosmosStore* cosmos_;
  ReplicaSetConfig rcfg_;

  PersistentRollupStore writer_;
  std::vector<Replica> replicas_;
  controller::SlbVip vip_;
};

}  // namespace pingmesh::serve

// Statistics sketches used across the agent (perf counters), the DSA
// pipeline (SCOPE aggregations) and the benchmarks (CDF reports).
//
// LatencyHistogram is a log-bucketed histogram, similar in spirit to
// HdrHistogram: bounded memory, ~1-2% relative quantile error over a
// microsecond..minutes dynamic range, mergeable. That is exactly the
// aggregation shape the paper's per-server counters and SCOPE jobs need.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pingmesh {

/// Log-bucketed histogram over positive values (we use nanoseconds).
///
/// Buckets: `sub_buckets_per_octave` linear sub-buckets per power-of-two
/// octave, starting at `min_value`. Values below the minimum clamp into the
/// first bucket, values above the max into the last.
class LatencyHistogram {
 public:
  /// Covers [min_value, min_value << octaves). Defaults cover
  /// 1us .. ~1.2 hours with 32 sub-buckets/octave (~2.2% max quantile error).
  explicit LatencyHistogram(std::int64_t min_value = 1'000,
                            int octaves = 32,
                            int sub_buckets_per_octave = 32);

  void record(std::int64_t value) { record(value, 1); }
  void record(std::int64_t value, std::uint64_t count);

  /// Merge another histogram with identical geometry.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::int64_t min() const { return total_ ? observed_min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return total_ ? observed_max_ : 0; }
  [[nodiscard]] double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Quantile in [0, 1]; returns a representative value of the bucket
  /// containing the q-th ranked sample. 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] std::int64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::int64_t p99() const { return quantile(0.99); }
  [[nodiscard]] std::int64_t p999() const { return quantile(0.999); }
  [[nodiscard]] std::int64_t p9999() const { return quantile(0.9999); }

  void clear();

  /// (value, cumulative_fraction) pairs for plotting a CDF; one point per
  /// non-empty bucket.
  [[nodiscard]] std::vector<std::pair<std::int64_t, double>> cdf_points() const;

  /// Geometry accessors (merge compatibility checks, tests).
  [[nodiscard]] std::int64_t min_trackable() const { return min_value_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }

  /// Approximate memory footprint in bytes, for agent memory budgeting.
  [[nodiscard]] std::size_t memory_bytes() const {
    return counts_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
  }

 private:
  [[nodiscard]] std::size_t bucket_index(std::int64_t value) const;
  [[nodiscard]] std::int64_t bucket_representative(std::size_t idx) const;

  std::int64_t min_value_;
  int octaves_;
  int sub_per_octave_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  std::int64_t observed_min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t observed_max_ = std::numeric_limits<std::int64_t>::min();
};

/// Simple accumulating counter set with mean/min/max, for perf counters that
/// are not latency-shaped (CPU %, memory bytes, probe counts).
class RunningStat {
 public:
  void record(double v);
  void merge(const RunningStat& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Population variance / stddev.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantiles from a batch of samples (used in tests to validate the
/// histogram sketch, and by small-scale reports).
double exact_quantile(std::vector<double> samples, double q);

/// Render nanoseconds as a human-readable latency ("216us", "1.34ms", "3.0s").
std::string format_latency_ns(std::int64_t ns);

/// Render a probability/rate in scientific-ish form ("1.31e-5").
std::string format_rate(double r);

}  // namespace pingmesh

#include "common/xml.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace pingmesh::xml {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view cooked) {
  std::string out;
  out.reserve(cooked.size());
  for (std::size_t i = 0; i < cooked.size(); ++i) {
    if (cooked[i] != '&') {
      out += cooked[i];
      continue;
    }
    auto rest = cooked.substr(i);
    if (rest.starts_with("&amp;")) { out += '&'; i += 4; }
    else if (rest.starts_with("&lt;")) { out += '<'; i += 3; }
    else if (rest.starts_with("&gt;")) { out += '>'; i += 3; }
    else if (rest.starts_with("&quot;")) { out += '"'; i += 5; }
    else if (rest.starts_with("&apos;")) { out += '\''; i += 5; }
    else out += '&';
  }
  return out;
}

Writer::Writer() { out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"; }

void Writer::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ += "  ";
}

void Writer::finish_open_tag() {
  if (tag_open_) {
    out_ += ">\n";
    tag_open_ = false;
  }
}

Writer& Writer::open(std::string_view element) {
  finish_open_tag();
  indent();
  out_ += '<';
  out_ += element;
  stack_.emplace_back(element);
  tag_open_ = true;
  had_children_ = false;
  return *this;
}

Writer& Writer::attr(std::string_view name, std::string_view value) {
  if (!tag_open_) throw std::logic_error("attr() outside open tag");
  out_ += ' ';
  out_ += name;
  out_ += "=\"";
  out_ += escape(value);
  out_ += '"';
  return *this;
}

Writer& Writer::attr(std::string_view name, std::int64_t value) {
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return attr(name, std::string_view(buf, static_cast<std::size_t>(p - buf)));
}

Writer& Writer::attr(std::string_view name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return attr(name, std::string_view(buf));
}

Writer& Writer::text(std::string_view body) {
  if (tag_open_) {
    out_ += '>';
    tag_open_ = false;
    had_children_ = true;  // text counts as inline content: close on same line
    out_ += escape(body);
    return *this;
  }
  indent();
  out_ += escape(body);
  out_ += '\n';
  return *this;
}

Writer& Writer::close() {
  if (stack_.empty()) throw std::logic_error("close() with no open element");
  std::string name = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    out_ += "/>\n";
    tag_open_ = false;
  } else if (had_children_) {
    // inline text content: </name> on the same line
    out_ += "</";
    out_ += name;
    out_ += ">\n";
    had_children_ = false;
  } else {
    indent();
    out_ += "</";
    out_ += name;
    out_ += ">\n";
  }
  return *this;
}

Writer& Writer::leaf(std::string_view element, std::string_view body) {
  open(element);
  text(body);
  return close();
}

std::string Writer::str() const {
  if (!stack_.empty()) throw std::logic_error("unclosed XML elements at str()");
  return out_;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  std::unique_ptr<Element> run() {
    if (doc_.size() > kMaxDocumentBytes) {
      fail("document exceeds size cap (" + std::to_string(kMaxDocumentBytes) + " bytes)");
    }
    skip_ws_and_prolog();
    auto root = parse_element();
    skip_ws();
    if (pos_ != doc_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("xml parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  [[nodiscard]] char peek() const { return pos_ < doc_.size() ? doc_[pos_] : '\0'; }
  [[nodiscard]] bool eof() const { return pos_ >= doc_.size(); }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(doc_[pos_]))) ++pos_;
  }

  void skip_ws_and_prolog() {
    skip_ws();
    while (!eof()) {
      if (doc_.substr(pos_).starts_with("<?")) {
        auto end = doc_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated <? ... ?>");
        pos_ = end + 2;
        skip_ws();
      } else if (doc_.substr(pos_).starts_with("<!--")) {
        skip_comment();
        skip_ws();
      } else {
        break;
      }
    }
  }

  void skip_comment() {
    auto end = doc_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  std::string parse_name() {
    std::size_t start = pos_;
    while (!eof()) {
      char c = doc_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.' || c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected name");
    return std::string(doc_.substr(start, pos_ - start));
  }

  std::unique_ptr<Element> parse_element() {
    // Bounded recursion: adversarial pinglists cannot run the parser off
    // the stack (fuzz finding; see tests/corpus/xml/depth_bomb.xml).
    if (++depth_ > kMaxDepth) {
      fail("element nesting exceeds depth limit (" + std::to_string(kMaxDepth) + ")");
    }
    auto el = parse_element_body();
    --depth_;
    return el;
  }

  std::unique_ptr<Element> parse_element_body() {
    if (peek() != '<') fail("expected '<'");
    ++pos_;
    auto el = std::make_unique<Element>();
    el->name = parse_name();
    // attributes
    for (;;) {
      skip_ws();
      if (eof()) fail("unterminated start tag");
      char c = peek();
      if (c == '/') {
        ++pos_;
        if (peek() != '>') fail("expected '>' after '/'");
        ++pos_;
        return el;  // self-closing
      }
      if (c == '>') {
        ++pos_;
        break;
      }
      std::string aname = parse_name();
      skip_ws();
      if (peek() != '=') fail("expected '=' in attribute");
      ++pos_;
      skip_ws();
      char quote = peek();
      if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
      ++pos_;
      auto end = doc_.find(quote, pos_);
      if (end == std::string_view::npos) fail("unterminated attribute value");
      el->attributes[aname] = unescape(doc_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // content
    for (;;) {
      if (eof()) fail("unterminated element <" + el->name + ">");
      if (peek() == '<') {
        if (doc_.substr(pos_).starts_with("<!--")) {
          pos_ += 0;
          skip_comment();
          continue;
        }
        if (doc_.substr(pos_).starts_with("</")) {
          pos_ += 2;
          std::string closing = parse_name();
          if (closing != el->name) {
            fail("mismatched close tag </" + closing + "> for <" + el->name + ">");
          }
          skip_ws();
          if (peek() != '>') fail("expected '>' in close tag");
          ++pos_;
          return el;
        }
        el->children.push_back(parse_element());
      } else {
        std::size_t start = pos_;
        while (!eof() && peek() != '<') ++pos_;
        auto chunk = doc_.substr(start, pos_ - start);
        // keep non-whitespace character data
        bool all_ws = true;
        for (char c : chunk) {
          if (!std::isspace(static_cast<unsigned char>(c))) { all_ws = false; break; }
        }
        if (!all_ws) el->text += unescape(chunk);
      }
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const Element* Element::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view child_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

std::string Element::attr_or(std::string_view name, std::string_view def) const {
  auto it = attributes.find(name);
  return it != attributes.end() ? it->second : std::string(def);
}

std::int64_t Element::attr_int(std::string_view name, std::int64_t def) const {
  auto it = attributes.find(name);
  if (it == attributes.end()) return def;
  std::int64_t v = def;
  const std::string& s = it->second;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  (void)p;
  return ec == std::errc{} ? v : def;
}

double Element::attr_double(std::string_view name, double def) const {
  auto it = attributes.find(name);
  if (it == attributes.end()) return def;
  try {
    return std::stod(it->second);
  } catch (...) {
    return def;
  }
}

std::unique_ptr<Element> parse(std::string_view doc) { return Parser(doc).run(); }

}  // namespace pingmesh::xml

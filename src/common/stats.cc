#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pingmesh {

LatencyHistogram::LatencyHistogram(std::int64_t min_value, int octaves,
                                   int sub_buckets_per_octave)
    : min_value_(min_value), octaves_(octaves), sub_per_octave_(sub_buckets_per_octave) {
  if (min_value <= 0) throw std::invalid_argument("min_value must be positive");
  if (octaves < 1 || octaves > 48) throw std::invalid_argument("octaves out of range");
  if (sub_buckets_per_octave < 1 || sub_buckets_per_octave > 4096) {
    throw std::invalid_argument("sub_buckets_per_octave out of range");
  }
  counts_.assign(static_cast<std::size_t>(octaves_) * sub_per_octave_ + 1, 0);
}

std::size_t LatencyHistogram::bucket_index(std::int64_t value) const {
  if (value < min_value_) return 0;
  // Position of the value relative to min_value_ in units of min_value_.
  auto ratio = static_cast<std::uint64_t>(value / min_value_);
  int octave = 63 - std::countl_zero(ratio | 1);  // floor(log2(ratio))
  if (octave >= octaves_) return counts_.size() - 1;
  // Within the octave [2^o, 2^(o+1)) * min_value_, linear sub-buckets.
  std::int64_t octave_lo = min_value_ << octave;
  std::int64_t octave_width = octave_lo;  // same as lo for powers of two
  std::int64_t offset = value - octave_lo;
  auto sub = static_cast<std::size_t>(
      (static_cast<__int128>(offset) * sub_per_octave_) / octave_width);
  if (sub >= static_cast<std::size_t>(sub_per_octave_)) sub = sub_per_octave_ - 1;
  return static_cast<std::size_t>(octave) * sub_per_octave_ + sub;
}

std::int64_t LatencyHistogram::bucket_representative(std::size_t idx) const {
  if (idx >= counts_.size() - 1) {
    return (min_value_ << (octaves_ - 1)) * 2;  // saturating top
  }
  auto octave = static_cast<int>(idx / sub_per_octave_);
  auto sub = static_cast<int>(idx % sub_per_octave_);
  std::int64_t octave_lo = min_value_ << octave;
  std::int64_t octave_width = octave_lo;
  // Midpoint of the sub-bucket.
  return octave_lo + (octave_width * (2 * sub + 1)) / (2 * sub_per_octave_);
}

void LatencyHistogram::record(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value < 1) value = 1;
  counts_[bucket_index(value)] += count;
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  observed_min_ = std::min(observed_min_, value);
  observed_max_ = std::max(observed_max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.min_value_ != min_value_ || other.octaves_ != octaves_ ||
      other.sub_per_octave_ != sub_per_octave_) {
    throw std::invalid_argument("histogram geometry mismatch in merge");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  if (other.total_ > 0) {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
}

std::int64_t LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based ceil of q * total).
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) {
      std::int64_t rep = bucket_representative(i);
      // Clamp to observed range so that min/max quantiles are exact-ish.
      return std::clamp(rep, observed_min_, observed_max_);
    }
  }
  return observed_max_;
}

void LatencyHistogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  observed_min_ = std::numeric_limits<std::int64_t>::max();
  observed_max_ = std::numeric_limits<std::int64_t>::min();
}

std::vector<std::pair<std::int64_t, double>> LatencyHistogram::cdf_points() const {
  std::vector<std::pair<std::int64_t, double>> out;
  if (total_ == 0) return out;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    out.emplace_back(bucket_representative(i),
                     static_cast<double>(cum) / static_cast<double>(total_));
  }
  return out;
}

void RunningStat::record(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  sum_sq_ += v * v;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void RunningStat::clear() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ == 0) return 0.0;
  double m = mean();
  double v = sum_sq_ / static_cast<double>(n_) - m * m;
  return v > 0.0 ? v : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
  if (idx >= samples.size()) idx = samples.size() - 1;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

std::string format_latency_ns(std::int64_t ns) {
  char buf[64];
  if (ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.0fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string format_rate(double r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", r);
  return buf;
}

}  // namespace pingmesh

// A small persistent thread pool with static sharding, built for the fleet
// tick path: the same parallel_for is invoked every simulated tick, so
// workers stay parked on a condition variable between calls instead of
// being respawned.
//
// Design rules (enforced by construction, relied on by callers):
//  - parallel_for splits [0, n) into exactly `worker_count()` contiguous
//    shards, deterministically: shard i covers [n*i/W, n*(i+1)/W). The
//    caller's thread runs shard 0, spawned workers run shards 1..W-1.
//  - parallel_for is a barrier: it returns only after every shard finished.
//  - Shard boundaries depend only on (n, W) — never on timing — so any
//    per-shard accumulation drained in shard order is deterministic.
//  - worker_count() == 1 means no threads are spawned and parallel_for runs
//    the body inline: the serial path and the parallel path are the same
//    code.
//
// Not reentrant: parallel_for must not be called from inside a body.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace pingmesh {

class ThreadPool {
 public:
  /// Body invoked per shard with its half-open index range [begin, end).
  using ShardFn = std::function<void(std::size_t begin, std::size_t end)>;
  /// Body that also receives its shard index. Shard i always executes on
  /// the same OS thread for the pool's lifetime (the caller thread for
  /// shard 0, spawned worker i otherwise), so state indexed by shard —
  /// arenas, scratch buffers — stays core- and NUMA-local across calls.
  using IndexedShardFn =
      std::function<void(int shard, std::size_t begin, std::size_t end)>;

  /// `workers` is the total parallelism including the calling thread;
  /// values < 1 are clamped to 1. A pool of 1 spawns no threads.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int worker_count() const { return workers_; }

  /// Run `body` over [0, n) in worker_count() static shards; blocks until
  /// all shards complete. Exceptions thrown by shard 0 propagate; a spawned
  /// worker's exception terminates (bodies must not throw).
  void parallel_for(std::size_t n, const ShardFn& body);

  /// parallel_for variant passing the shard index to the body — the hook
  /// for shard-affine scratch reuse (see IndexedShardFn). Same barrier,
  /// sharding, and determinism rules as parallel_for.
  void parallel_for_shards(std::size_t n, const IndexedShardFn& body);

  /// Pool-level counters maintained on the caller thread (parallel_for is a
  /// barrier and not reentrant, so no synchronization is needed to read
  /// them between calls). busy_ns figures are real elapsed time — they are
  /// for observability only and must never feed back into simulation logic.
  struct Stats {
    std::uint64_t parallel_for_calls = 0;
    std::uint64_t items_total = 0;   ///< sum of n over all calls
    std::uint64_t max_items = 0;     ///< largest single n
    std::uint64_t busy_ns_total = 0; ///< wall time spent inside parallel_for
    std::uint64_t max_task_ns = 0;   ///< slowest single parallel_for
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// A sensible default worker count for this machine.
  static int hardware_workers();

 private:
  void worker_loop(int shard_index);
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_bounds(int shard) const
      PM_REQUIRES(mutex_);

  int workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t epoch_ PM_GUARDED_BY(mutex_) = 0;  // bumped per parallel_for
  std::size_t task_n_ PM_GUARDED_BY(mutex_) = 0;   // current task's range size
  const IndexedShardFn* task_body_ PM_GUARDED_BY(mutex_) = nullptr;
  int remaining_ PM_GUARDED_BY(mutex_) = 0;  // workers still running the epoch
  bool stopping_ PM_GUARDED_BY(mutex_) = false;
  Stats stats_;  // caller-thread only; parallel_for is a barrier
};

}  // namespace pingmesh

#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace pingmesh {

namespace {
std::uint64_t mono_ns() {  // lint: determinism-sink
  // Monotonic elapsed time for Stats only; never observable by sim logic.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(int workers) : workers_(std::max(1, workers)) {
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::hardware_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::pair<std::size_t, std::size_t> ThreadPool::shard_bounds(int shard) const {
  auto w = static_cast<std::size_t>(workers_);
  auto s = static_cast<std::size_t>(shard);
  return {task_n_ * s / w, task_n_ * (s + 1) / w};
}

void ThreadPool::worker_loop(int shard_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const IndexedShardFn* body = nullptr;
    std::size_t begin = 0, end = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      body = task_body_;
      std::tie(begin, end) = shard_bounds(shard_index);
    }
    if (begin < end) (*body)(shard_index, begin, end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) work_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const ShardFn& body) {
  parallel_for_shards(
      n, [&body](int /*shard*/, std::size_t begin, std::size_t end) { body(begin, end); });
}

void ThreadPool::parallel_for_shards(std::size_t n, const IndexedShardFn& body) {
  if (n == 0) return;
  std::uint64_t t0 = mono_ns();
  ++stats_.parallel_for_calls;
  stats_.items_total += n;
  stats_.max_items = std::max<std::uint64_t>(stats_.max_items, n);
  if (threads_.empty()) {
    body(0, 0, n);
  } else {
    std::size_t begin0 = 0, end0 = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_n_ = n;
      task_body_ = &body;
      remaining_ = static_cast<int>(threads_.size());
      ++epoch_;
      std::tie(begin0, end0) = shard_bounds(0);
    }
    work_ready_.notify_all();
    if (begin0 < end0) body(0, begin0, end0);
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return remaining_ == 0; });
    task_body_ = nullptr;
  }
  std::uint64_t elapsed = mono_ns() - t0;
  stats_.busy_ns_total += elapsed;
  stats_.max_task_ns = std::max(stats_.max_task_ns, elapsed);
}

}  // namespace pingmesh

// Basic value types shared by every Pingmesh module.
//
// Identifiers are strong typedef-style wrappers so that a ServerId cannot be
// confused with a SwitchId at compile time. Time inside the simulation is
// virtual and counted in nanoseconds from an arbitrary epoch.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace pingmesh {

/// Virtual simulation time in nanoseconds since the simulation epoch.
using SimTime = std::int64_t;

constexpr SimTime kNanosPerMicro = 1'000;
constexpr SimTime kNanosPerMilli = 1'000'000;
constexpr SimTime kNanosPerSecond = 1'000'000'000;
constexpr SimTime kNanosPerMinute = 60 * kNanosPerSecond;
constexpr SimTime kNanosPerHour = 60 * kNanosPerMinute;
constexpr SimTime kNanosPerDay = 24 * kNanosPerHour;

constexpr double to_micros(SimTime t) { return static_cast<double>(t) / kNanosPerMicro; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / kNanosPerMilli; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / kNanosPerSecond; }

constexpr SimTime micros(std::int64_t us) { return us * kNanosPerMicro; }
constexpr SimTime millis(std::int64_t ms) { return ms * kNanosPerMilli; }
constexpr SimTime seconds(std::int64_t s) { return s * kNanosPerSecond; }
constexpr SimTime minutes(std::int64_t m) { return m * kNanosPerMinute; }
constexpr SimTime hours(std::int64_t h) { return h * kNanosPerHour; }
constexpr SimTime days(std::int64_t d) { return d * kNanosPerDay; }

/// Strongly typed integer id. Tag is an empty struct used only to
/// distinguish instantiations.
template <class Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Id() = default;
  explicit constexpr Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  auto operator<=>(const Id&) const = default;
};

struct ServerTag {};
struct SwitchTag {};
struct PodTag {};
struct PodsetTag {};
struct DcTag {};
struct LinkTag {};
struct ServiceTag {};

using ServerId = Id<ServerTag>;
using SwitchId = Id<SwitchTag>;
using PodId = Id<PodTag>;
using PodsetId = Id<PodsetTag>;
using DcId = Id<DcTag>;
using LinkId = Id<LinkTag>;
using ServiceId = Id<ServiceTag>;

/// IPv4 address in host byte order.
struct IpAddr {
  std::uint32_t v = 0;

  constexpr IpAddr() = default;
  explicit constexpr IpAddr(std::uint32_t host_order) : v(host_order) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : v((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  auto operator<=>(const IpAddr&) const = default;

  /// Dotted-quad rendering, e.g. "10.1.2.3".
  [[nodiscard]] std::string str() const;
};

/// TCP/UDP five tuple; protocol is implicitly TCP for Pingmesh probes.
struct FiveTuple {
  IpAddr src_ip;
  IpAddr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // IPPROTO_TCP

  auto operator<=>(const FiveTuple&) const = default;
};

}  // namespace pingmesh

template <class Tag>
struct std::hash<pingmesh::Id<Tag>> {
  std::size_t operator()(const pingmesh::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<pingmesh::IpAddr> {
  std::size_t operator()(const pingmesh::IpAddr& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.v);
  }
};

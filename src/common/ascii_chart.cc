#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pingmesh {

std::string ascii_chart(const std::vector<std::pair<std::string, double>>& series,
                        const AsciiChartOptions& options) {
  if (series.empty()) return "";
  double max_value = 0;
  double min_positive = 0;
  for (const auto& [label, value] : series) {
    max_value = std::max(max_value, value);
    if (value > 0 && (min_positive == 0 || value < min_positive)) min_positive = value;
  }

  auto bar_len = [&](double v) -> int {
    if (v <= 0 || max_value <= 0) return 0;
    double frac;
    if (options.log_scale && min_positive > 0 && max_value > min_positive) {
      frac = (std::log10(v) - std::log10(min_positive) + 0.3) /
             (std::log10(max_value) - std::log10(min_positive) + 0.3);
    } else {
      frac = v / max_value;
    }
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<int>(frac * options.width + 0.5);
  };

  std::size_t label_width = 0;
  for (const auto& [label, value] : series) label_width = std::max(label_width, label.size());

  std::string out;
  char buf[64];
  for (const auto& [label, value] : series) {
    out += "  ";
    out += label;
    out.append(label_width - label.size(), ' ');
    out += " |";
    int len = bar_len(value);
    out.append(static_cast<std::size_t>(len), '#');
    out.append(static_cast<std::size_t>(options.width - len), ' ');
    std::snprintf(buf, sizeof(buf), " %.3g", value);
    out += buf;
    if (!options.unit.empty()) {
      out += ' ';
      out += options.unit;
    }
    out += '\n';
  }
  return out;
}

}  // namespace pingmesh

#include "common/types.h"

#include <cstdio>

namespace pingmesh {

std::string IpAddr::str() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xff, (v >> 16) & 0xff,
                (v >> 8) & 0xff, v & 0xff);
  return buf;
}

}  // namespace pingmesh

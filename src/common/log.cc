#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/annotations.h"

namespace pingmesh {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
std::mutex g_sink_mutex;
Log::Sink g_sink PM_GUARDED_BY(g_sink_mutex);  // empty => default stderr sink

void default_sink(LogLevel level, std::string_view component, std::string_view msg) {
  // The logging backend is the one place stderr writes belong.
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", log_level_name(level),  // lint: allow(printf)
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void Log::set_min_level(LogLevel level) { g_min_level.store(level); }
LogLevel Log::min_level() { return g_min_level.load(); }

void Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < g_min_level.load()) return;
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) g_sink(level, component, msg);
  else default_sink(level, component, msg);
}

}  // namespace pingmesh

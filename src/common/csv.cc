#include "common/csv.h"

namespace pingmesh::csv {

std::string encode_field(std::string_view field) {
  bool needs_quote = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string encode_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += encode_field(fields[i]);
  }
  return out;
}

bool parse_row(std::string_view data, std::size_t& pos, std::vector<std::string>& out) {
  out.clear();
  if (pos >= data.size()) return false;
  std::string field;
  bool in_quotes = false;
  for (;;) {
    if (pos >= data.size()) {
      out.push_back(std::move(field));
      return true;
    }
    char c = data[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < data.size() && data[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        ++pos;
        break;
      case ',':
        out.push_back(std::move(field));
        field.clear();
        ++pos;
        break;
      case '\r':
        ++pos;
        if (pos < data.size() && data[pos] == '\n') ++pos;
        out.push_back(std::move(field));
        return true;
      case '\n':
        ++pos;
        out.push_back(std::move(field));
        return true;
      default:
        field += c;
        ++pos;
    }
  }
}

std::vector<std::vector<std::string>> parse(std::string_view data) {
  std::vector<std::vector<std::string>> rows;
  std::size_t pos = 0;
  std::vector<std::string> row;
  while (parse_row(data, pos, row)) rows.push_back(row);
  return rows;
}

}  // namespace pingmesh::csv

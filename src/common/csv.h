// CSV reading/writing. The Pingmesh Agent "provides latency data as both CSV
// files and standard performance counters" (paper §6.2); Cosmos streams in
// this reproduction hold CSV-encoded LatencyRecords.
//
// Dialect: RFC-4180-ish — comma separator, double-quote quoting with "" as
// the embedded quote, \n or \r\n row terminators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pingmesh::csv {

/// Quote a field if it contains comma, quote, or newline.
std::string encode_field(std::string_view field);

/// Encode one row (no trailing newline).
std::string encode_row(const std::vector<std::string>& fields);

/// Parse one row; `pos` advances past the row and its terminator. Returns
/// false when `pos` is already at the end of input.
bool parse_row(std::string_view data, std::size_t& pos, std::vector<std::string>& out);

/// Parse an entire document into rows.
std::vector<std::vector<std::string>> parse(std::string_view data);

}  // namespace pingmesh::csv

// Tiny leveled logger. Components tag their messages; tests can capture the
// sink. Not a general logging framework — just enough for operability of the
// examples and watchdog messages.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace pingmesh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

/// Global log configuration. Thread-safe for sink replacement is NOT
/// guaranteed; set the sink once at startup (examples) or per-test.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view msg)>;

  static void set_min_level(LogLevel level);
  static LogLevel min_level();
  /// Replace the sink; pass nullptr to restore the default stderr sink.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view component, std::string_view msg);

  static void debug(std::string_view component, std::string_view msg) {
    write(LogLevel::kDebug, component, msg);
  }
  static void info(std::string_view component, std::string_view msg) {
    write(LogLevel::kInfo, component, msg);
  }
  static void warn(std::string_view component, std::string_view msg) {
    write(LogLevel::kWarn, component, msg);
  }
  static void error(std::string_view component, std::string_view msg) {
    write(LogLevel::kError, component, msg);
  }
};

}  // namespace pingmesh

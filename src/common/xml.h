// Minimal XML support: a streaming writer and a recursive-descent parser for
// the element/attribute/text subset that Pinglist files use (paper §6.2:
// "Pingmesh Controller and Pingmesh Agent interact only through the pinglist
// files, which are standard XML files").
//
// Not a general XML library: no namespaces, DTDs, or processing instructions
// beyond the leading <?xml ...?> declaration, which is tolerated and skipped.
// The five standard entities are escaped/unescaped.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pingmesh::xml {

/// Escape &<>"' for use in attribute values and text nodes.
std::string escape(std::string_view raw);
/// Reverse of escape(); unknown entities are preserved literally.
std::string unescape(std::string_view cooked);

/// Streaming writer producing indented XML.
class Writer {
 public:
  Writer();

  Writer& open(std::string_view element);
  Writer& attr(std::string_view name, std::string_view value);
  Writer& attr(std::string_view name, std::int64_t value);
  Writer& attr(std::string_view name, double value);
  Writer& text(std::string_view body);
  Writer& close();

  /// Convenience: <element>text</element> leaf.
  Writer& leaf(std::string_view element, std::string_view body);

  /// Finish the document; all elements must be closed.
  [[nodiscard]] std::string str() const;

 private:
  void finish_open_tag();
  void indent();

  std::string out_;
  std::vector<std::string> stack_;
  bool tag_open_ = false;
  bool had_children_ = false;
};

/// Parsed XML element tree.
struct Element {
  std::string name;
  std::map<std::string, std::string, std::less<>> attributes;
  std::string text;  // concatenated character data directly inside this element
  std::vector<std::unique_ptr<Element>> children;

  /// First child with the given name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view child_name) const;
  /// All children with the given name.
  [[nodiscard]] std::vector<const Element*> children_named(std::string_view child_name) const;
  /// Attribute value or default.
  [[nodiscard]] std::string attr_or(std::string_view name, std::string_view def) const;
  [[nodiscard]] std::int64_t attr_int(std::string_view name, std::int64_t def) const;
  [[nodiscard]] double attr_double(std::string_view name, double def) const;
};

/// Adversarial-input bounds enforced by parse(). Pinglists for ~100k-server
/// data centers serialize to tens of MB, so the size cap is generous; the
/// depth cap is far above any legitimate pinglist (which nests 3-4 levels)
/// and exists to keep recursive descent off the guard page.
inline constexpr std::size_t kMaxDocumentBytes = 64 * 1024 * 1024;
inline constexpr std::size_t kMaxDepth = 256;

/// Parse a document; throws std::runtime_error with position info on
/// malformed input, on documents larger than kMaxDocumentBytes, and on
/// element nesting deeper than kMaxDepth. Returns the root element.
std::unique_ptr<Element> parse(std::string_view doc);

}  // namespace pingmesh::xml

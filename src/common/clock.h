// Virtual time and a deterministic event scheduler.
//
// All large-scale experiments run on virtual time so a "day" of Pingmesh
// operation completes in seconds of wall-clock. Components that must also
// run against real sockets accept a Clock interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace pingmesh {

/// Abstract clock so agent/controller logic is testable on virtual time and
/// runnable on real time.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Manually advanced clock for simulation and tests.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(SimTime start = 0) : now_(start) {}
  [[nodiscard]] SimTime now() const override { return now_; }
  void advance(SimTime delta) { now_ += delta; }
  void set(SimTime t) { now_ = t; }

 private:
  SimTime now_;
};

/// Monotonic wall clock (nanoseconds since an arbitrary epoch).
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] SimTime now() const override;
};

/// Deterministic discrete-event scheduler over a VirtualClock.
///
/// Events scheduled for the same instant fire in insertion order (stable),
/// which keeps multi-agent simulations reproducible.
class EventScheduler {
 public:
  using Callback = std::function<void(SimTime now)>;

  explicit EventScheduler(SimTime start = 0) : clock_(start) {}

  [[nodiscard]] SimTime now() const { return clock_.now(); }
  [[nodiscard]] const VirtualClock& clock() const { return clock_; }
  VirtualClock& clock() { return clock_; }

  /// Schedule a one-shot event at absolute time `when` (must be >= now).
  void schedule_at(SimTime when, Callback cb);
  /// Schedule a one-shot event `delay` after now.
  void schedule_after(SimTime delay, Callback cb) {
    schedule_at(clock_.now() + delay, std::move(cb));
  }
  /// Schedule a recurring event every `period`, first firing at now+period.
  /// The callback may return false (via the bool overload) to cancel.
  void schedule_every(SimTime period, std::function<bool(SimTime)> cb);

  /// Run all events with time <= until; the clock ends at `until`.
  void run_until(SimTime until);
  /// Run events until the queue drains.
  void run_all();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;                                           // one-shot
    std::shared_ptr<std::function<bool(SimTime)>> recurring;  // or recurring
    SimTime period = 0;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  VirtualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace pingmesh

// Deterministic pseudo-random number generation for reproducible
// experiments. Two generator families share one set of distribution
// helpers:
//
//  - Rng: PCG32 (O'Neill 2014), a classic sequential stream. State is
//    small and splits cheaply so every simulated entity can own an
//    independent stream derived from the experiment seed.
//  - CounterRng: a counter-based (splitmix64-style) stream whose entire
//    state is the key it was constructed from. Because the n-th draw is a
//    pure function of (key, n), code that derives its key from stable
//    inputs — e.g. (seed, five-tuple hash, timestamp) — produces the same
//    values no matter which thread runs it or in what order. This is what
//    makes the network simulator's probe path const-callable and
//    embarrassingly parallel while staying bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace pingmesh {

/// 64-bit mix (splitmix64 finalizer) used for hashing tuples, ECMP, etc.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine values into one well-mixed 64-bit key (for CounterRng keys).
constexpr std::uint64_t mix_key(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ mix64(b));
}
constexpr std::uint64_t mix_key(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix64(mix_key(a, b) ^ mix64(c));
}
constexpr std::uint64_t mix_key(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                                std::uint64_t d) {
  return mix64(mix_key(a, b, c) ^ mix64(d));
}

/// Distribution helpers layered over any generator exposing next_u32().
/// CRTP so Rng and CounterRng share one implementation with no virtual
/// dispatch on the simulator's hottest path.
template <class Derived>
class RngDistributions {
 public:
  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(self().next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint32_t uniform_u32(std::uint32_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t m = static_cast<std::uint64_t>(self().next_u32()) * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      std::uint32_t t = (0u - n) % n;
      while (lo < t) {
        m = static_cast<std::uint64_t>(self().next_u32()) * n;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with given mean (mean = 1/lambda).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (one value per call; simple and stateless).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail for queueing).
  double pareto(double xm, double alpha) {
    double u = uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

/// PCG32 generator: 64-bit state, 64-bit stream selector, 32-bit output.
class Rng : public RngDistributions<Rng> {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Derive an independent child generator; `salt` distinguishes siblings.
  [[nodiscard]] Rng split(std::uint64_t salt) const {
    std::uint64_t s = state_ ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
    std::uint64_t c = inc_ ^ (0xbf58476d1ce4e5b9ULL * (salt + 0x1234567));
    return Rng(s, c >> 1);
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  // UniformRandomBitGenerator interface for <algorithm> shuffles.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Counter-based generator: draw i is mix64(key + i * golden) — the
/// splitmix64 sequence starting from `key`. A value type with no shared
/// state; construct one wherever a local stream is needed. Streams with
/// distinct keys are independent; the same key always replays the same
/// sequence regardless of thread or call order.
class CounterRng : public RngDistributions<CounterRng> {
 public:
  using result_type = std::uint32_t;

  explicit CounterRng(std::uint64_t key) : key_(key) {}

  std::uint64_t next_u64() { return mix64(key_ + 0x9e3779b97f4a7c15ULL * counter_++); }

  /// High half of the 64-bit draw (the best-mixed bits of the finalizer).
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  [[nodiscard]] std::uint64_t key() const { return key_; }
  [[nodiscard]] std::uint64_t draws() const { return counter_; }

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
};

}  // namespace pingmesh

// Tiny ASCII time-series chart for the benchmark harnesses and CLI: renders
// a (t, value) series as rows of bars so the Figure 5 / Figure 7 shapes are
// visible directly in terminal output.
#pragma once

#include <string>
#include <vector>

namespace pingmesh {

struct AsciiChartOptions {
  int width = 60;             ///< bar width in characters
  bool log_scale = false;     ///< log10 bars (drop-rate style series)
  std::string unit;           ///< printed after each value
};

/// Render one labeled series. Values must be >= 0. Each row:
///   label | ####______ value unit
std::string ascii_chart(const std::vector<std::pair<std::string, double>>& series,
                        const AsciiChartOptions& options = {});

}  // namespace pingmesh

// Lock-discipline annotations, checked statically by pingmesh_lint
// (DESIGN.md §9.1: lock-discipline / lock-order).
//
// The macros are documentation that a tool can verify:
//
//   class PinglistCache {
//     std::mutex mutex_;
//     std::vector<Slot> slots_ PM_GUARDED_BY(mutex_);   // field needs the lock
//    public:
//     void rebuild_slot(ServerId id) PM_REQUIRES(mutex_);  // caller holds it
//     void refresh() PM_ACQUIRE(mutex_);                   // body takes it
//   };
//
//  - PM_GUARDED_BY(m): reads and writes of the annotated field are only legal
//    while `m` is held (an enclosing std::lock_guard/unique_lock/scoped_lock
//    on `m`, or a function annotated PM_REQUIRES(m)). Constructors and
//    destructors are exempt — no concurrent access can exist yet/anymore.
//  - PM_REQUIRES(m): the function must only be called with `m` already held;
//    inside its body, `m` counts as held.
//  - PM_ACQUIRE(m): declares that the function acquires `m` internally; call
//    sites must NOT hold `m` (self-deadlock), and calls into it contribute
//    edges to the global lock-order graph.
//
// The macros expand to nothing by default, so they cost nothing and work on
// every compiler. Building with -DPINGMESH_CLANG_THREAD_SAFETY (clang only,
// together with -Wthread-safety) additionally maps them onto clang's native
// thread-safety attributes, so the compiler cross-checks the same
// annotations the lint enforces.
#pragma once

#if defined(PINGMESH_CLANG_THREAD_SAFETY) && defined(__clang__)
#define PM_GUARDED_BY(m) __attribute__((guarded_by(m)))
#define PM_REQUIRES(m) __attribute__((requires_capability(m)))
#define PM_ACQUIRE(m) __attribute__((acquire_capability(m)))
#else
#define PM_GUARDED_BY(m)
#define PM_REQUIRES(m)
#define PM_ACQUIRE(m)
#endif

#include "common/clock.h"

#include <chrono>
#include <stdexcept>

namespace pingmesh {

SimTime SteadyClock::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EventScheduler::schedule_at(SimTime when, Callback cb) {
  if (when < clock_.now()) throw std::invalid_argument("schedule_at in the past");
  queue_.push(Event{when, seq_++, std::move(cb), nullptr, 0});
}

void EventScheduler::schedule_every(SimTime period, std::function<bool(SimTime)> cb) {
  if (period <= 0) throw std::invalid_argument("period must be positive");
  auto shared = std::make_shared<std::function<bool(SimTime)>>(std::move(cb));
  queue_.push(Event{clock_.now() + period, seq_++, nullptr, std::move(shared), period});
}

void EventScheduler::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Event ev = queue_.top();
    queue_.pop();
    clock_.set(ev.when);
    if (ev.recurring) {
      if ((*ev.recurring)(ev.when)) {
        queue_.push(Event{ev.when + ev.period, seq_++, nullptr, ev.recurring, ev.period});
      }
    } else {
      ev.cb(ev.when);
    }
  }
  if (clock_.now() < until) clock_.set(until);
}

void EventScheduler::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    clock_.set(ev.when);
    if (ev.recurring) {
      if ((*ev.recurring)(ev.when)) {
        queue_.push(Event{ev.when + ev.period, seq_++, nullptr, ev.recurring, ev.period});
      }
    } else {
      ev.cb(ev.when);
    }
  }
}

}  // namespace pingmesh
